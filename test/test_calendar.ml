(* Property tests pinning the two Engine calendars to each other: heap
   and wheel must execute the exact same events, in the same order, at
   the same virtual times — including cancels, nested scheduling, the
   wheel's overdue/overflow tiers, and the sequence-counter renumbering
   path. *)

open Draconis_sim

(* One randomized workload, fully determined by [seed]: the execution
   log is (event id, virtual time) in firing order.  All rng draws
   happen either before the run or inside handlers; since both calendars
   must execute handlers in the same order, the draw streams coincide
   and the two runs see byte-identical schedules. *)
let exec_log ~calendar ~seed ~n =
  let engine = Engine.create ~calendar () in
  let rng = Rng.create ~seed in
  let log = ref [] in
  let note i () = log := (i, Engine.now engine) :: !log in
  let delay () =
    match Rng.int rng 10 with
    | 0 -> Rng.int rng 5 (* near-ties at the same instants *)
    | 1 | 2 -> 1 + Rng.int rng 100
    | 3 -> (1 lsl 25) + Rng.int rng (1 lsl 26) (* wheel overflow tier *)
    | _ -> 1 + Rng.int rng 100_000
  in
  let cancelable = ref [] in
  for i = 0 to n - 1 do
    let h =
      if i mod 7 = 0 then
        (* Nested: this handler schedules a child with a fresh draw. *)
        Engine.schedule engine ~after:(delay ()) (fun () ->
            note i ();
            ignore (Engine.schedule engine ~after:(1 + delay ()) (note (n + i))))
      else Engine.schedule engine ~after:(delay ()) (note i)
    in
    if Rng.int rng 4 = 0 then cancelable := h :: !cancelable
  done;
  List.iteri
    (fun j h -> if j mod 2 = 0 then Engine.cancel engine h)
    !cancelable;
  (* Stop mid-horizon, then schedule closer than anything still queued:
     on the wheel these land behind the cursor (the overdue tier). *)
  Engine.run ~until:50_000 engine;
  for i = 2 * n to (2 * n) + 19 do
    ignore (Engine.schedule engine ~after:(1 + Rng.int rng 50) (note i))
  done;
  Engine.run engine;
  (List.rev !log, Engine.executed engine, Engine.now engine)

let prop_calendars_agree =
  QCheck.Test.make ~name:"heap and wheel calendars execute identical orders"
    ~count:25
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      exec_log ~calendar:Engine.Heap ~seed ~n:400
      = exec_log ~calendar:Engine.Wheel ~seed ~n:400)

(* Enough schedule/cancel churn to overflow the 21-bit sequence counter
   while ties are pending, forcing the renumbering path; FIFO order of
   the ties must survive on both calendars. *)
let renumber_log calendar =
  let engine = Engine.create ~calendar () in
  let order = ref [] in
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 2 :: !order));
  let churn = (1 lsl 21) + 100_000 in
  for _ = 1 to churn / 500 do
    let hs = List.init 500 (fun _ -> Engine.schedule engine ~after:10 ignore) in
    List.iter (Engine.cancel engine) hs;
    Engine.run ~until:(Engine.now engine + 10) engine
  done;
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 4 :: !order));
  Engine.run engine;
  (List.rev !order, Engine.executed engine, Engine.now engine)

let test_renumber_crossing () =
  let heap = renumber_log Engine.Heap in
  let wheel = renumber_log Engine.Wheel in
  let order, _, _ = heap in
  Alcotest.(check (list int)) "FIFO ties survive renumbering" [ 1; 2; 3; 4 ] order;
  let pp = Alcotest.(triple (list int) int int) in
  Alcotest.check pp "calendars agree across renumbering" heap wheel

let test_env_selection () =
  Alcotest.(check string) "heap name" "heap" (Engine.calendar_name Engine.Heap);
  Alcotest.(check string) "wheel name" "wheel" (Engine.calendar_name Engine.Wheel);
  let e = Engine.create ~calendar:Engine.Heap () in
  Alcotest.(check bool) "explicit calendar wins" true (Engine.calendar e = Engine.Heap)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_calendars_agree;
    Alcotest.test_case "renumbering crossing, both calendars" `Quick
      test_renumber_crossing;
    Alcotest.test_case "calendar selection" `Quick test_env_selection;
  ]
