(* The PIFO rank store: direct unit tests of admit/scan/claim under the
   one-access-per-register rule, rank-store edge cases (clamping,
   tie-break stability across renumbering, probe-budget exhaustion), and
   an end-to-end cluster run per PIFO discipline. *)

open Draconis_sim
open Draconis_proto
open Draconis
module Pifo = Draconis_pifo.Pifo
module Packet_ctx = Draconis_p4.Packet_ctx

let ctx () = Packet_ctx.create ()

let make_pifo ?(capacity = 32) ?(scan_width = 8) ?(word_count = 2) ?max_rank () =
  Pifo.create ~name:"t" ~capacity ~scan_width ~word_count ?max_rank ()

let words a b = [| a; b |]

(* Admit one entry, driving probe recirculations to completion. *)
let admit_exn p ~rank ~payload =
  let rec go = function
    | Pifo.Admitted { slot; packed } -> (slot, packed)
    | Pifo.Probing probe -> go (Pifo.probe p (ctx ()) probe)
    | Pifo.Full -> Alcotest.fail "unexpected Full"
  in
  go (Pifo.admit p (ctx ()) ~rank ~words:payload)

(* Pop one entry, driving scan and claim traversals to completion. *)
let rec pop p =
  let rec scan = function
    | Pifo.Empty -> None
    | Pifo.Drained -> Alcotest.fail "unexpected Drained"
    | Pifo.Scanning s -> scan (Pifo.scan_step p (ctx ()) s)
    | Pifo.Ready c -> (
      match Pifo.claim p (ctx ()) c with
      | Pifo.Claimed { words; packed; _ } -> Some (words, packed)
      | Pifo.Lost -> pop p)
  in
  scan (Pifo.scan_start p (ctx ()))

let pop_payload_exn p =
  match pop p with
  | Some (w, _) -> w
  | None -> Alcotest.fail "expected a claimable entry"

let test_rank_order () =
  let p = make_pifo () in
  List.iter
    (fun (rank, v) -> ignore (admit_exn p ~rank ~payload:(words v 0)))
    [ (50, 1); (10, 2); (30, 3); (20, 4); (40, 5) ];
  let out = List.init 5 (fun _ -> (pop_payload_exn p).(0)) in
  Alcotest.(check (list int)) "min-rank first" [ 2; 4; 3; 5; 1 ] out;
  Alcotest.(check (option reject)) "then empty"
    None
    (Option.map (fun _ -> ()) (pop p))

let test_fifo_tie_break () =
  let p = make_pifo () in
  (* Same rank: release order must be admission order. *)
  for v = 1 to 6 do
    ignore (admit_exn p ~rank:7 ~payload:(words v 0))
  done;
  let out = List.init 6 (fun _ -> (pop_payload_exn p).(0)) in
  Alcotest.(check (list int)) "same-rank FIFO" [ 1; 2; 3; 4; 5; 6 ] out

let test_tie_break_survives_renumber () =
  let p = make_pifo () in
  for v = 1 to 4 do
    ignore (admit_exn p ~rank:9 ~payload:(words v 0))
  done;
  ignore (admit_exn p ~rank:3 ~payload:(words 100 0));
  let before = Pifo.peek_slots p in
  Pifo.renumber p;
  let after = Pifo.peek_slots p in
  Alcotest.(check int) "renumber ran" 1 (Pifo.renumbers p);
  Alcotest.(check (list (triple int int int)))
    "packed order preserved, stamps compacted"
    (List.mapi (fun i (slot, rank, _) -> (slot, rank, i)) before)
    after;
  let out = List.init 5 (fun _ -> (pop_payload_exn p).(0)) in
  Alcotest.(check (list int)) "order across renumber" [ 100; 1; 2; 3; 4 ] out

let test_rank_clamp () =
  let p = make_pifo ~max_rank:1000 () in
  ignore (admit_exn p ~rank:5_000_000 ~payload:(words 1 0));
  ignore (admit_exn p ~rank:(-3) ~payload:(words 2 0));
  ignore (admit_exn p ~rank:999 ~payload:(words 3 0));
  Alcotest.(check int) "one clamp counted" 1 (Pifo.rank_clamps p);
  let ranks = List.map (fun (_, rank, _) -> rank) (Pifo.peek_slots p) in
  Alcotest.(check (list int)) "clamped into [0, max_rank]" [ 0; 999; 1000 ] ranks

let test_occupancy_gate_full () =
  let p = make_pifo ~capacity:8 ~scan_width:4 () in
  for v = 1 to 8 do
    ignore (admit_exn p ~rank:v ~payload:(words v 0))
  done;
  Alcotest.(check int) "full" 8 (Pifo.occupancy p);
  (match Pifo.admit p (ctx ()) ~rank:1 ~words:(words 99 0) with
  | Pifo.Full -> ()
  | _ -> Alcotest.fail "expected Full");
  Alcotest.(check int) "gate did not leak occupancy" 8 (Pifo.occupancy p);
  ignore (pop_payload_exn p);
  ignore (admit_exn p ~rank:1 ~payload:(words 99 0));
  Alcotest.(check int) "slot reusable after pop" 8 (Pifo.occupancy p)

(* Probe-budget exhaustion.  The occupancy gate guarantees a free cell
   exists when an admit passes it, so exhaustion needs a race: another
   claimer steals the free cell between the probe's traversals.  With 7
   of 8 cells filled (probes fill row 0 first, so the hole is in row 1),
   the gated admit leaves its first traversal [Probing]; a simulated
   racing claim then takes the hole, every later probe row is full, and
   the budget must trip [Full] — releasing the gate reservation. *)
let test_probe_budget_exhaustion () =
  let p = make_pifo ~capacity:8 ~scan_width:4 () in
  for v = 1 to 7 do
    ignore (admit_exn p ~rank:v ~payload:(words v 0))
  done;
  match Pifo.admit p (ctx ()) ~rank:50 ~words:(words 50 0) with
  | Pifo.Admitted _ -> Alcotest.fail "row 0 should be full"
  | Pifo.Full -> Alcotest.fail "gate should have admitted"
  | Pifo.Probing probe ->
    (* Racing claimer: stamp the one free cell (bank 3, row 1) from the
       control plane; [registers] lists the banks first. *)
    Draconis_p4.Register.poke (List.nth (Pifo.registers p) 3) 1 999;
    let rec exhaust probe n =
      if n > 2 * Pifo.probe_budget p then
        Alcotest.fail "probe never exhausted its budget"
      else
        match Pifo.probe p (ctx ()) probe with
        | Pifo.Full -> ()
        | Pifo.Probing probe -> exhaust probe (n + 1)
        | Pifo.Admitted _ -> Alcotest.fail "every cell is full"
    in
    exhaust probe 0;
    Alcotest.(check int) "occupancy reservation released" 7 (Pifo.occupancy p)

let test_claim_lost_on_renumber () =
  let p = make_pifo () in
  ignore (admit_exn p ~rank:5 ~payload:(words 1 0));
  let cand =
    let rec scan = function
      | Pifo.Ready c -> c
      | Pifo.Scanning s -> scan (Pifo.scan_step p (ctx ()) s)
      | Pifo.Empty | Pifo.Drained -> Alcotest.fail "expected a candidate"
    in
    scan (Pifo.scan_start p (ctx ()))
  in
  (* Control plane renumbers between scan and claim: epoch bump. *)
  Pifo.renumber p;
  (match Pifo.claim p (ctx ()) cand with
  | Pifo.Lost -> ()
  | Pifo.Claimed _ -> Alcotest.fail "stale claim must lose");
  Alcotest.(check int) "entry still stored" 1 (Pifo.occupancy p);
  Alcotest.(check int) "restarted pop still pops it" 1 (pop_payload_exn p).(0)

let test_claim_lost_on_race () =
  let p = make_pifo () in
  ignore (admit_exn p ~rank:5 ~payload:(words 1 0));
  let scan_candidate () =
    let rec scan = function
      | Pifo.Ready c -> c
      | Pifo.Scanning s -> scan (Pifo.scan_step p (ctx ()) s)
      | Pifo.Empty | Pifo.Drained -> Alcotest.fail "expected a candidate"
    in
    scan (Pifo.scan_start p (ctx ()))
  in
  let c1 = scan_candidate () in
  let c2 = scan_candidate () in
  (match Pifo.claim p (ctx ()) c1 with
  | Pifo.Claimed _ -> ()
  | Pifo.Lost -> Alcotest.fail "first claim should win");
  match Pifo.claim p (ctx ()) c2 with
  | Pifo.Lost -> ()
  | Pifo.Claimed _ -> Alcotest.fail "second claim of the same cell must lose"

(* §2.1.1: a single traversal may touch each register array once.  A
   true PIFO pop — reading two cells of one bank in one traversal, the
   O(capacity) min-extraction — must raise. *)
let test_true_pifo_scan_is_illegal () =
  let p = make_pifo () in
  ignore (admit_exn p ~rank:1 ~payload:(words 1 0));
  let bank0 = List.hd (Pifo.registers p) in
  let one_traversal = ctx () in
  ignore (Draconis_p4.Register.read bank0 one_traversal 0);
  Alcotest.check_raises "second cell of the same bank"
    (Packet_ctx.Access_violation "t.rank0") (fun () ->
      ignore (Draconis_p4.Register.read bank0 one_traversal 1))

(* Reusing one context across two PIFO operations trips the same rule
   on the first register both touch (the occupancy gate). *)
let test_single_traversal_access_violation () =
  let p = make_pifo () in
  ignore (admit_exn p ~rank:1 ~payload:(words 1 0));
  let shared = ctx () in
  ignore (Pifo.scan_start p shared);
  Alcotest.check_raises "second scan on one ctx"
    (Packet_ctx.Access_violation "t.occ") (fun () ->
      ignore (Pifo.scan_start p shared))

let test_create_validation () =
  let bad f = Alcotest.check_raises "invalid" (Invalid_argument f) in
  bad "Pifo.create: capacity must be a multiple of scan_width" (fun () ->
      ignore (Pifo.create ~name:"x" ~capacity:10 ~scan_width:4 ~word_count:1 ()));
  bad "Pifo.create: capacity too large for the tie-break stamp width" (fun () ->
      ignore
        (Pifo.create ~name:"x" ~capacity:(Pifo.seq_limit / 2) ~scan_width:1
           ~word_count:1 ()))

(* -- switch-program integration ------------------------------------------- *)

let pifo_pipeline =
  {
    Draconis_p4.Pipeline.default_config with
    recirc_slot = Time.ns 10;
    recirc_queue_limit = 4096;
  }

let cluster_config policy =
  {
    Cluster.default_config with
    workers = 2;
    executors_per_worker = 4;
    clients = 1;
    queue_capacity = 64;
    policy_of = (fun _ -> policy);
    pipeline_config = pifo_pipeline;
  }

let run_cluster ?(tasks = 50) ?(gap_us = 50) ~tprops_of policy =
  let cluster = Cluster.create (cluster_config policy) in
  Cluster.start cluster;
  let engine = Cluster.engine cluster in
  for i = 0 to tasks - 1 do
    ignore
      (Engine.schedule engine ~after:(Time.us (gap_us * i)) (fun () ->
           ignore
             (Client.submit_job (Cluster.client cluster 0)
                [
                  Task.make ~uid:0 ~jid:0 ~tid:i ~tprops:(tprops_of i)
                    ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 100) ();
                ])))
  done;
  Cluster.run cluster ~until:(Time.ms 10);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  (cluster, drained)

let check_cluster name (cluster, drained) =
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) (name ^ " drained") true drained;
  Alcotest.(check int) (name ^ " all started") 50 (Metrics.started m);
  Alcotest.(check int) (name ^ " all completed") 50 (Metrics.completed m);
  Alcotest.(check int)
    (name ^ " rank store empty")
    0
    (Switch_program.total_occupancy (Cluster.program cluster))

let test_cluster_edf () =
  check_cluster "edf"
    (run_cluster
       ~tprops_of:(fun i -> Task.Deadline (Time.us (200 + (37 * i mod 900))))
       (Policy.Edf { default_deadline = Time.us 800 }))

let test_cluster_wfq () =
  check_cluster "wfq"
    (run_cluster
       ~tprops_of:(fun i -> Task.Tenant (i mod 3))
       (Policy.Wfq { quantum = Time.us 10; weights = [| 4; 2; 1 |] }))

let test_cluster_aging () =
  check_cluster "aging"
    (run_cluster
       ~tprops_of:(fun i -> Task.Priority (1 + (i mod 4)))
       (Policy.Aging_priority { levels = 4; quantum = Time.us 200 }))

(* Each PIFO discipline's full register allocation must place onto the
   default switch profile (the ISSUE's acceptance gate). *)
let test_layout_fits_tofino1 () =
  List.iter
    (fun policy ->
      let program =
        Switch_program.create ~engine:(Engine.create ()) ~policy
          ~queue_capacity:64 ()
      in
      let constraints =
        Draconis_p4.Layout.of_profile Draconis_p4.Resources.tofino1
      in
      Alcotest.(check bool)
        (Format.asprintf "%a fits tofino1" Policy.pp policy)
        true
        (Draconis_p4.Layout.fits constraints (Switch_program.registers program)))
    [
      Policy.Edf { default_deadline = Time.us 800 };
      Policy.Wfq { quantum = Time.us 10; weights = [| 8; 4; 2; 1 |] };
      Policy.Aging_priority { levels = 4; quantum = Time.us 200 };
    ]

let suite =
  [
    Alcotest.test_case "rank order" `Quick test_rank_order;
    Alcotest.test_case "same-rank FIFO tie-break" `Quick test_fifo_tie_break;
    Alcotest.test_case "tie-break survives renumber" `Quick
      test_tie_break_survives_renumber;
    Alcotest.test_case "rank overflow clamps" `Quick test_rank_clamp;
    Alcotest.test_case "occupancy gate rejects when full" `Quick
      test_occupancy_gate_full;
    Alcotest.test_case "probe-budget exhaustion releases the gate" `Quick
      test_probe_budget_exhaustion;
    Alcotest.test_case "claim lost on renumber epoch bump" `Quick
      test_claim_lost_on_renumber;
    Alcotest.test_case "claim lost on race" `Quick test_claim_lost_on_race;
    Alcotest.test_case "true PIFO scan is illegal" `Quick
      test_true_pifo_scan_is_illegal;
    Alcotest.test_case "single-traversal access violation" `Quick
      test_single_traversal_access_violation;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "cluster end-to-end: EDF" `Quick test_cluster_edf;
    Alcotest.test_case "cluster end-to-end: WFQ" `Quick test_cluster_wfq;
    Alcotest.test_case "cluster end-to-end: aging" `Quick test_cluster_aging;
    Alcotest.test_case "register layouts fit tofino1" `Quick
      test_layout_fits_tofino1;
  ]
