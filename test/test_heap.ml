(* Unit and property tests for the binary heap backing the event queue. *)

open Draconis_sim

let make () = Heap.create ~compare:Stdlib.compare ()

let test_empty () =
  let heap = make () in
  Alcotest.(check int) "length" 0 (Heap.length heap);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty heap);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Heap.pop heap));
  Alcotest.check_raises "peek raises" Not_found (fun () -> ignore (Heap.peek heap))

let test_ordering () =
  let heap = make () in
  List.iter (fun k -> Heap.push heap k (10 * k)) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length heap);
  Alcotest.(check (pair int int)) "peek min" (1, 10) (Heap.peek heap);
  let keys = ref [] in
  Heap.drain heap (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !keys);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty heap)

let test_clear () =
  let heap = make () in
  for i = 0 to 9 do
    Heap.push heap i i
  done;
  Heap.clear heap;
  Alcotest.(check int) "cleared" 0 (Heap.length heap)

let test_interleaved () =
  let heap = make () in
  Heap.push heap 3 30;
  Heap.push heap 1 10;
  Alcotest.(check (pair int int)) "pop 1" (1, 10) (Heap.pop heap);
  Heap.push heap 2 20;
  Heap.push heap 0 0;
  Alcotest.(check (pair int int)) "pop 0" (0, 0) (Heap.pop heap);
  Alcotest.(check (pair int int)) "pop 2" (2, 20) (Heap.pop heap);
  Alcotest.(check (pair int int)) "pop 3" (3, 30) (Heap.pop heap)

let test_growth () =
  let heap = make () in
  for i = 1000 downto 1 do
    Heap.push heap i i
  done;
  Alcotest.(check int) "length after growth" 1000 (Heap.length heap);
  Alcotest.(check (pair int int)) "min after growth" (1, 1) (Heap.peek heap)

let test_capacity_hint () =
  (* A tiny capacity hint must still grow transparently... *)
  let heap = Heap.create ~capacity:1 ~compare:Stdlib.compare () in
  for i = 100 downto 1 do
    Heap.push heap i i
  done;
  Alcotest.(check int) "length" 100 (Heap.length heap);
  Alcotest.(check (pair int int)) "min" (1, 1) (Heap.peek heap);
  (* ...and a large one must be accepted up front. *)
  let big = Heap.create ~capacity:4096 ~compare:Stdlib.compare () in
  Heap.push big 1 1;
  Alcotest.(check (pair int int)) "big capacity works" (1, 1) (Heap.peek big)

let test_int_heap_matches_generic () =
  let keys = List.init 500 (fun i -> (i * 7919) mod 257) in
  let generic = Heap.create ~compare:Int.compare () in
  let mono = Int_heap.create ~capacity:8 () in
  List.iter
    (fun k ->
      Heap.push generic k k;
      Int_heap.push mono k k)
    keys;
  Alcotest.(check int) "peek_key" (fst (Heap.peek generic)) (Int_heap.peek_key mono);
  let out_generic = ref [] and out_mono = ref [] in
  Heap.drain generic (fun k _ -> out_generic := k :: !out_generic);
  Int_heap.drain mono (fun k _ -> out_mono := k :: !out_mono);
  Alcotest.(check (list int)) "same drain order" !out_generic !out_mono;
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Int_heap.pop mono));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Int_heap.peek mono))

let prop_int_heap_sorts =
  QCheck.Test.make ~name:"int_heap pops any int list in sorted order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let heap = Int_heap.create () in
      List.iter (fun k -> Int_heap.push heap k ()) keys;
      let out = ref [] in
      Int_heap.drain heap (fun k () -> out := k :: !out);
      List.rev !out = List.sort compare keys)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops any int list in sorted order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let heap = make () in
      List.iter (fun k -> Heap.push heap k ()) keys;
      let out = ref [] in
      Heap.drain heap (fun k () -> out := k :: !out);
      List.rev !out = List.sort compare keys)

let prop_heap_partial =
  QCheck.Test.make ~name:"push/pop prefix matches sorted prefix" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (keys, take) ->
      QCheck.assume (keys <> []);
      let take = take mod List.length keys in
      let heap = make () in
      List.iter (fun k -> Heap.push heap k ()) keys;
      let popped = List.init take (fun _ -> fst (Heap.pop heap)) in
      let expected = List.filteri (fun i _ -> i < take) (List.sort compare keys) in
      popped = expected)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "growth past initial capacity" `Quick test_growth;
    Alcotest.test_case "capacity hint honoured" `Quick test_capacity_hint;
    Alcotest.test_case "int heap matches generic heap" `Quick
      test_int_heap_matches_generic;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_partial;
    QCheck_alcotest.to_alcotest prop_int_heap_sorts;
  ]
