(* Unit and property tests for the two calendar structures behind the
   engine's event queue: the monomorphic binary heap and the
   hierarchical timing wheel. *)

open Draconis_sim

(* -- Int_heap ---------------------------------------------------------------- *)

let test_empty () =
  let heap = Int_heap.create () in
  Alcotest.(check int) "length" 0 (Int_heap.length heap);
  Alcotest.(check bool) "is_empty" true (Int_heap.is_empty heap);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Int_heap.pop heap));
  Alcotest.check_raises "peek raises" Not_found (fun () ->
      ignore (Int_heap.peek heap))

let test_ordering () =
  let heap = Int_heap.create () in
  List.iter (fun k -> Int_heap.push heap k (10 * k)) [ 5; 1; 4; 8; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Int_heap.length heap);
  Alcotest.(check int) "peek min key" 1 (Int_heap.peek_key heap);
  let keys = ref [] in
  Int_heap.drain heap (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5; 8; 9 ] (List.rev !keys);
  Alcotest.(check bool) "empty after drain" true (Int_heap.is_empty heap)

let test_clear () =
  let heap = Int_heap.create () in
  for i = 0 to 9 do
    Int_heap.push heap i i
  done;
  Int_heap.clear heap;
  Alcotest.(check int) "cleared" 0 (Int_heap.length heap)

let test_interleaved () =
  let heap = Int_heap.create () in
  Int_heap.push heap 3 30;
  Int_heap.push heap 1 10;
  Alcotest.(check (pair int int)) "pop 1" (1, 10) (Int_heap.pop heap);
  Int_heap.push heap 2 20;
  Int_heap.push heap 0 0;
  Alcotest.(check (pair int int)) "pop 0" (0, 0) (Int_heap.pop heap);
  Alcotest.(check (pair int int)) "pop 2" (2, 20) (Int_heap.pop heap);
  Alcotest.(check (pair int int)) "pop 3" (3, 30) (Int_heap.pop heap)

let test_capacity_hint () =
  (* A tiny capacity hint must still grow transparently... *)
  let heap = Int_heap.create ~capacity:1 () in
  for i = 1000 downto 1 do
    Int_heap.push heap i i
  done;
  Alcotest.(check int) "length after growth" 1000 (Int_heap.length heap);
  Alcotest.(check (pair int int)) "min after growth" (1, 1) (Int_heap.peek heap);
  (* ...and a large one must be accepted up front. *)
  let big = Int_heap.create ~capacity:4096 () in
  Int_heap.push big 1 1;
  Alcotest.(check (pair int int)) "big capacity works" (1, 1) (Int_heap.peek big)

let prop_int_heap_sorts =
  QCheck.Test.make ~name:"int_heap pops any int list in sorted order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let heap = Int_heap.create () in
      List.iter (fun k -> Int_heap.push heap k 0) keys;
      let out = ref [] in
      Int_heap.drain heap (fun k _ -> out := k :: !out);
      List.rev !out = List.sort compare keys)

(* -- Wheel ------------------------------------------------------------------- *)

(* [shift:0] makes every key its own tick, so plain ints exercise the
   bucket machinery directly. *)
let make_wheel () = Wheel.create ~shift:0 ()

let test_wheel_empty () =
  let w = make_wheel () in
  Alcotest.(check int) "length" 0 (Wheel.length w);
  Alcotest.(check bool) "is_empty" true (Wheel.is_empty w);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Wheel.pop w));
  Alcotest.check_raises "peek raises" Not_found (fun () ->
      ignore (Wheel.peek_key w))

let test_wheel_ordering () =
  let w = make_wheel () in
  List.iter (fun k -> Wheel.push w k (10 * k)) [ 5; 1; 4; 8; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Wheel.length w);
  Alcotest.(check int) "peek min key" 1 (Wheel.peek_key w);
  let keys = ref [] in
  Wheel.drain w (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5; 8; 9 ] (List.rev !keys);
  Alcotest.(check bool) "empty after drain" true (Wheel.is_empty w)

let test_wheel_cascade () =
  (* Keys spanning several levels force cascading as the cursor sweeps
     forward; values must stay attached to their keys. *)
  let w = make_wheel () in
  let keys = [ 3; 40; 1_100; 33_000; 1_050_000; 20_000_000 ] in
  List.iter (fun k -> Wheel.push w k (k * 2)) keys;
  let out = ref [] in
  Wheel.drain w (fun k v ->
      Alcotest.(check int) "value rides its key" (k * 2) v;
      out := k :: !out);
  Alcotest.(check (list int)) "cross-level order" keys (List.rev !out)

let test_wheel_overflow_tier () =
  let w = make_wheel () in
  let far = 1 lsl 30 in
  (* Near key first: an empty wheel snaps its cursor to the first push,
     so pushing [far] first would just re-anchor the window around it. *)
  Wheel.push w 5 2;
  Wheel.push w far 1;
  Alcotest.(check int) "far key parked in overflow" 1 (Wheel.overflow_length w);
  Alcotest.(check (pair int int)) "near key first" (5, 2) (Wheel.pop w);
  Alcotest.(check (pair int int)) "overflow key still pops" (far, 1) (Wheel.pop w);
  Alcotest.(check bool) "empty" true (Wheel.is_empty w)

let test_wheel_overdue_tier () =
  let w = make_wheel () in
  Wheel.push w 100 1;
  Alcotest.(check (pair int int)) "advance cursor" (100, 1) (Wheel.pop w);
  Wheel.push w 200 2;
  (* The cursor sits at 100 now; a push behind it lands overdue but must
     still pop first. *)
  Wheel.push w 50 3;
  Alcotest.(check int) "behind-cursor key parked overdue" 1 (Wheel.overdue_length w);
  Alcotest.(check (pair int int)) "overdue pops first" (50, 3) (Wheel.pop w);
  Alcotest.(check (pair int int)) "then the wheel" (200, 2) (Wheel.pop w)

let test_wheel_fifo_within_tick () =
  (* Same tick, distinct pushes: bucket order is FIFO, so values come
     back in insertion order. *)
  let w = make_wheel () in
  List.iter (fun v -> Wheel.push w 7 v) [ 1; 2; 3; 4 ];
  let out = ref [] in
  Wheel.drain w (fun _ v -> out := v :: !out);
  Alcotest.(check (list int)) "insertion order" [ 1; 2; 3; 4 ] (List.rev !out)

let test_wheel_clear () =
  let w = make_wheel () in
  List.iter (fun k -> Wheel.push w k k) [ 1; 2; 1 lsl 28 ];
  Wheel.clear w;
  Alcotest.(check int) "cleared" 0 (Wheel.length w);
  Alcotest.(check bool) "empty" true (Wheel.is_empty w);
  Wheel.push w 9 9;
  Alcotest.(check (pair int int)) "usable after clear" (9, 9) (Wheel.pop w)

let prop_wheel_sorts =
  QCheck.Test.make ~name:"wheel pops any key list in sorted order" ~count:200
    QCheck.(list (int_range 0 (1 lsl 28)))
    (fun keys ->
      let w = make_wheel () in
      List.iteri (fun i k -> Wheel.push w k i) keys;
      let out = ref [] in
      Wheel.drain w (fun k _ -> out := k :: !out);
      List.rev !out = List.sort compare keys)

let prop_wheel_matches_int_heap =
  (* Interleaved pushes and pops against the reference heap, including
     pushes behind the cursor (the overdue tier) and far beyond the
     window (the overflow tier). *)
  QCheck.Test.make ~name:"wheel and int_heap agree under interleaved push/pop"
    ~count:200
    QCheck.(list (int_range 0 (1 lsl 28)))
    (fun keys ->
      let w = make_wheel () in
      let h = Int_heap.create () in
      let ok = ref true in
      List.iteri
        (fun i k ->
          Wheel.push w k i;
          Int_heap.push h k i;
          if i mod 3 = 0 && not (Int_heap.is_empty h) then begin
            let wk, wv = Wheel.pop w in
            let hk, _ = Int_heap.pop h in
            (* Equal keys are possible here (unlike engine keys), and
               the two structures may break such ties differently, so
               compare keys only. *)
            ignore wv;
            if wk <> hk then ok := false
          end)
        keys;
      while not (Int_heap.is_empty h) do
        let wk, _ = Wheel.pop w in
        let hk, _ = Int_heap.pop h in
        if wk <> hk then ok := false
      done;
      !ok && Wheel.is_empty w)

let suite =
  [
    Alcotest.test_case "int_heap empty" `Quick test_empty;
    Alcotest.test_case "int_heap ordering" `Quick test_ordering;
    Alcotest.test_case "int_heap clear" `Quick test_clear;
    Alcotest.test_case "int_heap interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "int_heap capacity hint honoured" `Quick test_capacity_hint;
    QCheck_alcotest.to_alcotest prop_int_heap_sorts;
    Alcotest.test_case "wheel empty" `Quick test_wheel_empty;
    Alcotest.test_case "wheel ordering" `Quick test_wheel_ordering;
    Alcotest.test_case "wheel cross-level cascade" `Quick test_wheel_cascade;
    Alcotest.test_case "wheel overflow tier" `Quick test_wheel_overflow_tier;
    Alcotest.test_case "wheel overdue tier" `Quick test_wheel_overdue_tier;
    Alcotest.test_case "wheel FIFO within a tick" `Quick test_wheel_fifo_within_tick;
    Alcotest.test_case "wheel clear" `Quick test_wheel_clear;
    QCheck_alcotest.to_alcotest prop_wheel_sorts;
    QCheck_alcotest.to_alcotest prop_wheel_matches_int_heap;
  ]
