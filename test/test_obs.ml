(* Tests for the observability subsystem: the JSON validator, the typed
   recorder and registry, Chrome trace-export round-trips, agreement
   between ambient counters and the experiment metrics on a real run,
   probe time series, and determinism under the domain pool. *)

open Draconis_sim
open Draconis_proto
open Draconis
open Draconis_workload
module H = Draconis_harness
module Obs = Draconis_obs

(* -- JSON reader ----------------------------------------------------------- *)

let test_json_values () =
  match Obs.Json.parse {| {"a":[1,-2.5,3e2],"s":"x\nA","b":[true,false,null]} |} with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok json ->
    (match Obs.Json.member "a" json with
    | Some (Obs.Json.List [ Number a; Number b; Number c ]) ->
      Alcotest.(check (float 1e-9)) "1" 1.0 a;
      Alcotest.(check (float 1e-9)) "-2.5" (-2.5) b;
      Alcotest.(check (float 1e-9)) "3e2" 300.0 c
    | _ -> Alcotest.fail "number array shape");
    (match Obs.Json.member "s" json with
    | Some (Obs.Json.String s) -> Alcotest.(check string) "escapes" "x\nA" s
    | _ -> Alcotest.fail "string member");
    (match Obs.Json.member "b" json with
    | Some (Obs.Json.List [ Bool true; Bool false; Null ]) -> ()
    | _ -> Alcotest.fail "bool/null array shape")

let test_json_rejects_garbage () =
  List.iter
    (fun input ->
      match Obs.Json.parse input with
      | Ok _ -> Alcotest.failf "accepted %S" input
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "{\"a\":1}x"; "nul" ]

(* -- recorder and registry -------------------------------------------------- *)

let test_recorder_registry () =
  let r = Obs.Recorder.create ~label:"t" () in
  Obs.Recorder.add r "c" 2;
  Obs.Recorder.add r "c" 3;
  Obs.Recorder.set_gauge r "g" 7;
  Obs.Recorder.observe r "h" 10;
  Obs.Recorder.observe r "h" 30;
  Alcotest.(check int) "counter" 5 (Obs.Recorder.counter_value r "c");
  Alcotest.(check int) "missing counter" 0 (Obs.Recorder.counter_value r "nope");
  Alcotest.(check (list (pair string int))) "counters" [ ("c", 5) ]
    (Obs.Recorder.counters r);
  Alcotest.(check (list (pair string int))) "gauges" [ ("g", 7) ] (Obs.Recorder.gauges r);
  match Obs.Recorder.histograms r with
  | [ ("h", s) ] -> Alcotest.(check int) "histogram count" 2 (Draconis_stats.Sampler.count s)
  | _ -> Alcotest.fail "histogram listing"

let test_recorder_capacity () =
  let r = Obs.Recorder.create ~capacity:4 ~label:"t" () in
  for i = 1 to 10 do
    Obs.Recorder.instant r ~at:i ~track:"x" "e"
  done;
  Alcotest.(check int) "kept prefix" 4 (Obs.Recorder.event_count r);
  Alcotest.(check int) "dropped rest" 6 (Obs.Recorder.dropped r);
  match Obs.Recorder.events r with
  | { Obs.Event.at = 1; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest event must survive (drop-newest)"

let test_ambient_noop_when_uninstalled () =
  Alcotest.(check bool) "inactive" false (Obs.Recorder.active ());
  (* Must not raise or record anywhere. *)
  Obs.Recorder.count "c" 1;
  Obs.Recorder.mark ~at:0 ~track:"t" "e";
  let r = Obs.Recorder.create ~label:"t" () in
  Obs.Recorder.with_recorder r (fun () -> Obs.Recorder.count "c" 1);
  Alcotest.(check bool) "restored" false (Obs.Recorder.active ());
  Alcotest.(check int) "only installed emission counted" 1
    (Obs.Recorder.counter_value r "c")

(* -- chrome trace round-trip on a real cluster run -------------------------- *)

let small_cluster_run recorder =
  Obs.Recorder.with_recorder recorder (fun () ->
      let cluster =
        Cluster.create
          {
            Cluster.default_config with
            workers = 2;
            executors_per_worker = 2;
            clients = 1;
            queue_capacity = 64;
          }
      in
      Cluster.start cluster;
      for jid = 0 to 19 do
        ignore jid;
        ignore
          (Client.submit_job (Cluster.client cluster 0)
             [ Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:Task.Fn.busy_loop
                 ~fn_par:(Time.us 50) ();
             ])
      done;
      ignore (Cluster.run_until_drained cluster ~deadline:(Time.s 1)))

let test_chrome_trace_round_trip () =
  let recorder = Obs.Recorder.create ~label:"unit" () in
  small_cluster_run recorder;
  Alcotest.(check bool) "events recorded" true (Obs.Recorder.event_count recorder > 0);
  let out = Obs.Chrome_trace.to_string [ recorder ] in
  match Obs.Json.parse out with
  | Error msg -> Alcotest.failf "export is not valid JSON: %s" msg
  | Ok json ->
    let events =
      match Obs.Json.member "traceEvents" json with
      | Some l -> Option.get (Obs.Json.to_list l)
      | None -> Alcotest.fail "no traceEvents"
    in
    Alcotest.(check bool) "non-empty" true (events <> []);
    (* Timestamps non-decreasing per (pid, tid) track. *)
    let last : (float * float, float) Hashtbl.t = Hashtbl.create 16 in
    let names = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let field name = Obs.Json.member name e in
        (match field "name" with
        | Some (Obs.Json.String n) -> Hashtbl.replace names n ()
        | _ -> ());
        match (field "ph", field "pid", field "tid", field "ts") with
        | Some (Obs.Json.String "M"), _, _, _ -> ()
        | _, Some pid, Some tid, Some ts ->
          let pid = Option.get (Obs.Json.to_number pid) in
          let tid = Option.get (Obs.Json.to_number tid) in
          let ts = Option.get (Obs.Json.to_number ts) in
          (match Hashtbl.find_opt last (pid, tid) with
          | Some prev when ts < prev ->
            Alcotest.failf "ts regressed on track (%g,%g): %g < %g" pid tid ts prev
          | _ -> ());
          Hashtbl.replace last (pid, tid) ts
        | _ -> Alcotest.fail "event missing pid/tid/ts")
      events;
    (* Executor spans land on the timeline; the other layers report
       through the registry (probes replay them onto bench timelines). *)
    if not (Hashtbl.mem names "task") then Alcotest.fail "no executor task span";
    List.iter
      (fun counter ->
        if Obs.Recorder.counter_value recorder counter <= 0 then
          Alcotest.failf "counter %S not bumped" counter)
      [ "fabric.sent"; "fabric.delivered"; "pipeline.processed";
        "switch.assignments"; "client.submitted"; "exec.tasks" ]

(* -- registry agrees with the experiment metrics ---------------------------- *)

let small_spec =
  { H.Systems.workers = 4; executors_per_worker = 4; clients = 1; seed = 7 }

let sweep_once ~loads () =
  List.map
    (fun load ->
      let system = H.Systems.draconis small_spec in
      let horizon = Time.ms 10 in
      let driver =
        H.Exp_common.synthetic_driver Synthetic.Fixed_100us ~rate_tps:load ~horizon
      in
      H.Runner.run system ~driver ~load_tps:load ~horizon ())
    loads

let test_registry_matches_metrics () =
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.Sink.disable ())
    (fun () ->
      let outcomes = sweep_once ~loads:[ 40_000.0 ] () in
      let o = List.hd outcomes in
      match Obs.Sink.drain () with
      | [ r ] ->
        Alcotest.(check string) "label" "Draconis@40000tps" (Obs.Recorder.label r);
        let counter = Obs.Recorder.counter_value r in
        Alcotest.(check int) "submitted" o.H.Runner.submitted (counter "client.submitted");
        Alcotest.(check int) "completed" o.H.Runner.completed (counter "client.completed");
        Alcotest.(check int) "assignments = started" o.H.Runner.started
          (counter "switch.assignments");
        Alcotest.(check int) "recirculations" o.H.Runner.recirculations
          (counter "switch.recirculations");
        Alcotest.(check int) "repair flags" o.H.Runner.repair_flags
          (counter "queue.repair_flags");
        (* Probes sampled the queue and executors over the whole run. *)
        let series = Obs.Recorder.series r in
        Alcotest.(check bool) "occupancy series present" true
          (List.mem_assoc "queue.occupancy" series);
        (match List.assoc_opt "executors.busy" series with
        | Some ((_ :: _ :: _) as points) ->
          let rec chrono = function
            | (a, _) :: ((b, _) :: _ as rest) -> a <= b && chrono rest
            | _ -> true
          in
          Alcotest.(check bool) "series chronological" true (chrono points)
        | _ -> Alcotest.fail "executors.busy series too short");
        (* The metrics dump over this run must itself re-parse. *)
        (match Obs.Json.parse (Obs.Dump.metrics_json [ r ]) with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "metrics dump invalid: %s" msg)
      | runs -> Alcotest.failf "expected 1 recorder, got %d" (List.length runs))

(* -- determinism under the domain pool -------------------------------------- *)

let pooled_sweep () =
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.Sink.disable ())
    (fun () ->
      let loads = [ 20_000.0; 30_000.0; 40_000.0 ] in
      ignore
        (H.Pool.map ~jobs:2
           (List.map (fun load () -> List.hd (sweep_once ~loads:[ load ] ())) loads));
      Obs.Sink.drain ()
        |> List.map (fun r ->
               ( Obs.Recorder.label r,
                 Obs.Recorder.event_count r,
                 Obs.Recorder.counters r,
                 Obs.Recorder.events r )))

let test_pool_determinism () =
  let a = pooled_sweep () in
  let b = pooled_sweep () in
  Alcotest.(check int) "3 runs" 3 (List.length a);
  List.iter2
    (fun (la, ea, ca, eva) (lb, eb, cb, evb) ->
      Alcotest.(check string) "label" la lb;
      Alcotest.(check int) "event count" ea eb;
      Alcotest.(check (list (pair string int))) "counters" ca cb;
      if eva <> evb then Alcotest.failf "event streams differ for %s" la)
    a b

(* -- probes ----------------------------------------------------------------- *)

let test_probe_sampling () =
  let engine = Engine.create () in
  let state = ref 0 in
  ignore (Engine.schedule engine ~after:(Time.us 150) (fun () -> state := 5));
  let r = Obs.Recorder.create ~label:"probe" () in
  Obs.Recorder.with_recorder r (fun () ->
      Obs.Probe.attach engine ~interval:(Time.us 100) ~until:(Time.us 450)
        [ ("s", fun () -> !state) ];
      Engine.run ~until:(Time.ms 1) engine);
  match Obs.Recorder.series r with
  | [ ("s", points) ] ->
    (* Immediate sample at t=0 plus every 100us through 400us. *)
    Alcotest.(check int) "5 samples" 5 (List.length points);
    Alcotest.(check (list (pair int int))) "values track state"
      [ (0, 0); (Time.us 100, 0); (Time.us 200, 5); (Time.us 300, 5); (Time.us 400, 5) ]
      points
  | _ -> Alcotest.fail "expected one series"

let test_probe_rejects_bad_interval () =
  let engine = Engine.create () in
  Alcotest.check_raises "zero interval"
    (Invalid_argument "Probe.attach: interval must be positive") (fun () ->
      Obs.Probe.attach engine ~interval:0 ~until:(Time.us 10) [ ("x", fun () -> 0) ])

let test_probe_expired_until () =
  (* [until <= now] still takes the immediate anchor sample but schedules
     no recurring timer — the series holds exactly one point even after
     the engine runs on. *)
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~after:(Time.us 500) (fun () -> ()));
  Engine.run ~until:(Time.us 200) engine;
  let r = Obs.Recorder.create ~label:"probe" () in
  Obs.Recorder.with_recorder r (fun () ->
      Obs.Probe.attach engine ~interval:(Time.us 100) ~until:(Time.us 200)
        [ ("s", fun () -> 3) ];
      Engine.run ~until:(Time.ms 1) engine);
  match Obs.Recorder.series r with
  | [ ("s", points) ] ->
    Alcotest.(check (list (pair int int))) "anchor sample only"
      [ (Time.us 200, 3) ]
      points
  | _ -> Alcotest.fail "expected one series"

let suite =
  [
    Alcotest.test_case "json values" `Quick test_json_values;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
    Alcotest.test_case "recorder registry" `Quick test_recorder_registry;
    Alcotest.test_case "recorder capacity" `Quick test_recorder_capacity;
    Alcotest.test_case "ambient no-op when uninstalled" `Quick
      test_ambient_noop_when_uninstalled;
    Alcotest.test_case "chrome trace round-trip" `Quick test_chrome_trace_round_trip;
    Alcotest.test_case "registry matches metrics" `Quick test_registry_matches_metrics;
    Alcotest.test_case "pool determinism" `Quick test_pool_determinism;
    Alcotest.test_case "probe sampling" `Quick test_probe_sampling;
    Alcotest.test_case "probe rejects bad interval" `Quick test_probe_rejects_bad_interval;
    Alcotest.test_case "probe expired until" `Quick test_probe_expired_until;
  ]
