(* Unit tests for the policy layer: queue mapping, satisfaction checks,
   swap bounds. *)

open Draconis_net
open Draconis_proto
open Draconis

let info ?(rsrc = 0) ~node () : Message.executor_info =
  { exec_addr = Addr.Host node; exec_port = 0; exec_rsrc = rsrc; exec_node = node }

let entry ?(skip = 0) ~tprops () =
  Entry.make ~skip
    ~task:(Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops ~fn_id:1 ~fn_par:1 ())
    ~client:(Addr.Host 9) ()

let test_queue_count () =
  Alcotest.(check int) "fcfs one queue" 1 (Policy.queue_count Policy.Fcfs);
  Alcotest.(check int) "resource one queue" 1
    (Policy.queue_count (Policy.Resource_aware { max_swaps = 3 }));
  Alcotest.(check int) "priority n queues" 4
    (Policy.queue_count (Policy.Priority { levels = 4 }))

let test_queue_of_task () =
  let priority = Policy.Priority { levels = 4 } in
  let task p = Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Priority p) ~fn_id:0 ~fn_par:0 () in
  Alcotest.(check int) "p1 -> queue 0" 0 (Policy.queue_of_task priority (task 1));
  Alcotest.(check int) "p4 -> queue 3" 3 (Policy.queue_of_task priority (task 4));
  Alcotest.(check int) "p9 clamps to lowest" 3 (Policy.queue_of_task priority (task 9));
  let untagged = Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:0 ~fn_par:0 () in
  Alcotest.(check int) "untagged -> queue 0 (priority 1)" 0
    (Policy.queue_of_task priority untagged);
  Alcotest.(check int) "fcfs always 0" 0 (Policy.queue_of_task Policy.Fcfs (task 3))

let test_fcfs_always_satisfied () =
  let e = entry ~tprops:(Task.Resources 0xFF) () in
  Alcotest.(check bool) "fcfs ignores props" true
    (Policy.satisfies Policy.Fcfs ~entry:e ~info:(info ~node:0 ()))

let test_resource_subset () =
  let policy = Policy.Resource_aware { max_swaps = 3 } in
  let needs_ab = entry ~tprops:(Task.Resources 0b11) () in
  Alcotest.(check bool) "exact match" true
    (Policy.satisfies policy ~entry:needs_ab ~info:(info ~rsrc:0b11 ~node:0 ()));
  Alcotest.(check bool) "superset ok" true
    (Policy.satisfies policy ~entry:needs_ab ~info:(info ~rsrc:0b111 ~node:0 ()));
  Alcotest.(check bool) "missing bit fails" false
    (Policy.satisfies policy ~entry:needs_ab ~info:(info ~rsrc:0b01 ~node:0 ()));
  let needs_nothing = entry ~tprops:(Task.Resources 0) () in
  Alcotest.(check bool) "no requirement runs anywhere" true
    (Policy.satisfies policy ~entry:needs_nothing ~info:(info ~rsrc:0 ~node:0 ()))

let locality rack_limit global_limit =
  Policy.Locality_aware
    {
      rack_start_limit = rack_limit;
      global_start_limit = global_limit;
      topology = Topology.create ~nodes:4 ~racks:2;
    }

let test_locality_levels () =
  let policy = locality 2 5 in
  (* Data on node 0 (rack 0); node 1 same rack; node 3 other rack. *)
  let at skip = entry ~skip ~tprops:(Task.Locality [ 0 ]) () in
  Alcotest.(check bool) "local always ok" true
    (Policy.satisfies policy ~entry:(at 0) ~info:(info ~node:0 ()));
  Alcotest.(check bool) "same rack blocked below rack limit" false
    (Policy.satisfies policy ~entry:(at 1) ~info:(info ~node:1 ()));
  Alcotest.(check bool) "same rack allowed past rack limit" true
    (Policy.satisfies policy ~entry:(at 3) ~info:(info ~node:1 ()));
  Alcotest.(check bool) "other rack still blocked" false
    (Policy.satisfies policy ~entry:(at 3) ~info:(info ~node:3 ()));
  Alcotest.(check bool) "anywhere past global limit" true
    (Policy.satisfies policy ~entry:(at 6) ~info:(info ~node:3 ()));
  Alcotest.(check bool) "no locality tag runs anywhere" true
    (Policy.satisfies policy
       ~entry:(entry ~tprops:Task.No_props ())
       ~info:(info ~node:3 ()))

let test_swap_bounds () =
  Alcotest.(check int) "fcfs never swaps" 0
    (Policy.swap_bound Policy.Fcfs ~queue_occupancy:100);
  Alcotest.(check int) "resource bound by max_swaps" 5
    (Policy.swap_bound (Policy.Resource_aware { max_swaps = 5 }) ~queue_occupancy:100);
  Alcotest.(check int) "resource bound by occupancy" 2
    (Policy.swap_bound (Policy.Resource_aware { max_swaps = 5 }) ~queue_occupancy:2);
  Alcotest.(check int) "locality bound by global limit" 10
    (Policy.swap_bound (locality 3 9) ~queue_occupancy:100);
  Alcotest.(check bool) "fcfs/priority do not swap" false
    (Policy.uses_swapping Policy.Fcfs || Policy.uses_swapping (Policy.Priority { levels = 2 }));
  Alcotest.(check bool) "constraint policies swap" true
    (Policy.uses_swapping (locality 1 2)
    && Policy.uses_swapping (Policy.Resource_aware { max_swaps = 1 }))

(* -- PIFO-backed disciplines --------------------------------------------------- *)

let test_backend () =
  let circular =
    [
      Policy.Fcfs;
      Policy.Resource_aware { max_swaps = 3 };
      Policy.Priority { levels = 4 };
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Format.asprintf "%a circular" Policy.pp p)
        true
        (Policy.backend p = Policy.Circular))
    circular;
  let pifo =
    [
      Policy.Edf { default_deadline = 1_000 };
      Policy.Wfq { quantum = 1_000; weights = [| 2; 1 |] };
      Policy.Aging_priority { levels = 4; quantum = 1_000 };
    ]
  in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Format.asprintf "%a pifo" Policy.pp p)
        true
        (Policy.backend p = Policy.Pifo))
    pifo

let test_validate_pifo () =
  let rejects name p =
    match Policy.validate p with
    | () -> Alcotest.fail (name ^ ": expected Invalid_argument")
    | exception Invalid_argument _ -> ()
  in
  Policy.validate (Policy.Edf { default_deadline = 1 });
  rejects "zero deadline" (Policy.Edf { default_deadline = 0 });
  rejects "no tenants" (Policy.Wfq { quantum = 1_000; weights = [||] });
  rejects "zero weight" (Policy.Wfq { quantum = 1_000; weights = [| 2; 0 |] });
  rejects "zero quantum" (Policy.Wfq { quantum = 0; weights = [| 1 |] });
  rejects "zero levels" (Policy.Aging_priority { levels = 0; quantum = 1_000 })

let test_of_string_accepts () =
  let check name s expected =
    Alcotest.(check bool) name true (Policy.of_string s = expected)
  in
  check "fcfs" "fcfs" Policy.Fcfs;
  check "priority" "priority:4" (Policy.Priority { levels = 4 });
  check "edf (us -> ns)" "edf:250" (Policy.Edf { default_deadline = 250_000 });
  check "wfq" "wfq:10:8,4,2,1"
    (Policy.Wfq { quantum = 10_000; weights = [| 8; 4; 2; 1 |] });
  check "aging" "aging:4:200"
    (Policy.Aging_priority { levels = 4; quantum = 200_000 });
  check "whitespace trimmed" "  fcfs " Policy.Fcfs

(* Fail-loud: unknown disciplines and malformed parameters raise, never
   fall back to a default policy. *)
let test_of_string_rejects () =
  let rejects s =
    match Policy.of_string s with
    | _ -> Alcotest.fail (Printf.sprintf "%S: expected Invalid_argument" s)
    | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%S message names the input" s)
        true
        (Astring.String.is_infix ~affix:(String.trim s) msg)
  in
  List.iter rejects
    [
      "sjf";  (* unknown discipline *)
      "edf";  (* missing parameter *)
      "edf:abc";  (* malformed parameter *)
      "edf:0";  (* validation failure flows through *)
      "wfq:10";  (* missing weight list *)
      "wfq:10:";  (* empty weight list *)
      "wfq:10:2,0";  (* invalid weight *)
      "aging:4";  (* missing quantum *)
      "priority:0";  (* invalid levels *)
      "resource:3";  (* needs a topology *)
      "locality:1:2";
    ]

(* -- Fn_model ------------------------------------------------------------------ *)

let test_fn_model () =
  let open Draconis_sim in
  let topo = Topology.create ~nodes:4 ~racks:2 in
  let model = Fn_model.with_topology topo in
  let noop = Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:Task.Fn.noop ~fn_par:999 () in
  Alcotest.(check int) "noop is instant" 0 (Fn_model.service_time model noop ~node:0);
  let busy = Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 100) () in
  Alcotest.(check int) "busy loop runs fn_par" (Time.us 100)
    (Fn_model.service_time model busy ~node:0);
  let data =
    Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Locality [ 0 ]) ~fn_id:Task.Fn.data_task
      ~fn_par:(Time.us 100) ()
  in
  Alcotest.(check int) "local data free" (Time.us 100)
    (Fn_model.service_time model data ~node:0);
  Alcotest.(check int) "same rack +20us" (Time.us 120)
    (Fn_model.service_time model data ~node:1);
  Alcotest.(check int) "other rack +100us" (Time.us 200)
    (Fn_model.service_time model data ~node:3);
  (* Without a topology, any non-local access is inter-rack. *)
  Alcotest.(check int) "no topology worst-cases" (Time.us 200)
    (Fn_model.service_time Fn_model.default data ~node:1);
  let unknown = Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:77 ~fn_par:(Time.us 5) () in
  Alcotest.(check int) "unknown fn behaves like busy loop" (Time.us 5)
    (Fn_model.service_time model unknown ~node:0)

let suite =
  [
    Alcotest.test_case "queue count" `Quick test_queue_count;
    Alcotest.test_case "queue of task" `Quick test_queue_of_task;
    Alcotest.test_case "fcfs always satisfied" `Quick test_fcfs_always_satisfied;
    Alcotest.test_case "resource subset check" `Quick test_resource_subset;
    Alcotest.test_case "locality escalation levels" `Quick test_locality_levels;
    Alcotest.test_case "swap bounds" `Quick test_swap_bounds;
    Alcotest.test_case "backend classification" `Quick test_backend;
    Alcotest.test_case "validate: pifo parameters" `Quick test_validate_pifo;
    Alcotest.test_case "of_string accepts the grammar" `Quick test_of_string_accepts;
    Alcotest.test_case "of_string fails loud" `Quick test_of_string_rejects;
    Alcotest.test_case "fn model service times" `Quick test_fn_model;
  ]
