let () =
  Alcotest.run "draconis"
    [
      ("heap", Test_heap.suite);
      ("calendar", Test_calendar.suite);
      ("sim", Test_sim.suite);
      ("trace", Test_trace.suite);
      ("stats", Test_stats.suite);
      ("net", Test_net.suite);
      ("p4", Test_p4.suite);
      ("layout", Test_layout.suite);
      ("proto", Test_proto.suite);
      ("table", Test_table.suite);
      ("param-fetch", Test_param_fetch.suite);
      ("circular-queue", Test_circular_queue.suite);
      ("wraparound", Test_wraparound.suite);
      ("switch-program", Test_switch_program.suite);
      ("policy", Test_policy.suite);
      ("pifo", Test_pifo.suite);
      ("client-executor", Test_client_executor.suite);
      ("cluster", Test_cluster.suite);
      ("baselines", Test_baselines.suite);
      ("fault-tolerance", Test_fault_tolerance.suite);
      ("fault", Test_fault.suite);
      ("workload", Test_workload.suite);
      ("trace-file", Test_trace_file.suite);
      ("harness", Test_harness.suite);
      ("pool", Test_pool.suite);
      ("ws-deque", Test_ws_deque.suite);
      ("sharded-cluster", Test_sharded_cluster.suite);
      ("shard", Test_shard.suite);
      ("obs", Test_obs.suite);
      ("int-telemetry", Test_int_telemetry.suite);
      ("attribution", Test_attribution.suite);
      ("fuzz", Test_fuzz.suite);
    ]
