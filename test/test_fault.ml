(* Fault-plan subsystem tests: plan parsing/validation, fabric fault
   knobs (Gilbert-Elliott bursts, partitions, config validation),
   executor crash/restart and straggler injection, the client
   resubmission cap, and end-to-end determinism of injected runs. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis
open Draconis_fault
module B = Draconis_baselines

let busy_task ~us n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us us) ()

(* -- Plan parsing and validation ------------------------------------------- *)

let test_plan_parse () =
  let plan =
    Plan.of_string
      "failover@5ms; crash@2ms:node=3,down=1ms; burst@1ms:dur=500us,loss=0.8; \
       partition@1500us:hosts=0+1+2,dur=2ms; straggler@1ms:node=2,factor=4,dur=2ms"
  in
  let events = Plan.events plan in
  Alcotest.(check int) "five events" 5 (List.length events);
  (* Sorted by firing time. *)
  Alcotest.(check (list int)) "sorted times"
    [ Time.ms 1; Time.ms 1; Time.us 1500; Time.ms 2; Time.ms 5 ]
    (List.map (fun { Plan.at; _ } -> at) events);
  (match (List.nth events 4).Plan.event with
  | Plan.Switch_failover -> ()
  | _ -> Alcotest.fail "last event should be the failover");
  match (List.nth events 3).Plan.event with
  | Plan.Crash { node; down_for } ->
    Alcotest.(check int) "crash node" 3 node;
    Alcotest.(check (option int)) "crash down window" (Some (Time.ms 1)) down_for
  | _ -> Alcotest.fail "expected the crash at 2ms"

let test_plan_round_trip () =
  let spec =
    "burst@1ms:dur=500us,loss=0.8;failover@5ms;crash@2ms:node=3,down=1ms;\
     partition@1ms:hosts=0+1+2,dur=2ms;straggler@1ms:node=2,factor=4,dur=2ms"
  in
  let plan = Plan.of_string spec in
  let reparsed = Plan.of_string (Plan.to_string plan) in
  Alcotest.(check string) "to_string round-trips" (Plan.to_string plan)
    (Plan.to_string reparsed);
  Alcotest.(check int) "same event count" (List.length (Plan.events plan))
    (List.length (Plan.events reparsed))

let check_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")

let test_plan_validation () =
  check_invalid "loss > 1" (fun () -> Plan.of_string "burst@1ms:dur=1ms,loss=1.5");
  check_invalid "factor < 1" (fun () ->
      Plan.of_string "straggler@1ms:node=0,factor=0.5,dur=1ms");
  check_invalid "empty hosts" (fun () ->
      Plan.create
        [ { Plan.at = 0; event = Plan.Partition { hosts = []; duration = 1 } } ]);
  check_invalid "negative time" (fun () ->
      Plan.create [ { Plan.at = -1; event = Plan.Switch_failover } ]);
  check_invalid "zero duration" (fun () ->
      Plan.of_string "partition@1ms:hosts=0,dur=0ms");
  check_invalid "unknown kind" (fun () -> Plan.of_string "meteor@1ms");
  check_invalid "unknown parameter" (fun () -> Plan.of_string "failover@1ms:color=red");
  check_invalid "missing parameter" (fun () -> Plan.of_string "crash@1ms:down=1ms");
  check_invalid "bad time unit" (fun () -> Plan.of_string "failover@1h");
  Alcotest.(check bool) "empty plan is empty" true (Plan.is_empty (Plan.of_string ""))

(* -- Fabric config validation (satellite: Fabric.create validates) --------- *)

let test_fabric_config_validation () =
  let engine = Engine.create () in
  let try_config config =
    ignore (Fabric.create ~config engine (Rng.create ~seed:1) : unit Fabric.t)
  in
  let base = Fabric.default_config in
  check_invalid "loss > 1" (fun () -> try_config { base with loss = 1.5 });
  check_invalid "loss < 0" (fun () -> try_config { base with loss = -0.1 });
  check_invalid "negative latency" (fun () ->
      try_config { base with host_to_switch = -1 });
  check_invalid "negative jitter" (fun () -> try_config { base with jitter = -5 });
  check_invalid "detour_fraction > 1" (fun () ->
      try_config { base with detour_fraction = 2.0 });
  check_invalid "burst p_enter > 1" (fun () ->
      try_config
        { base with burst = Some { p_enter = 1.5; p_exit = 0.5; loss_bad = 0.5 } });
  check_invalid "burst loss_bad < 0" (fun () ->
      try_config
        { base with burst = Some { p_enter = 0.5; p_exit = 0.5; loss_bad = -0.5 } });
  (* A valid config still creates. *)
  try_config
    { base with loss = 0.1; burst = Some { p_enter = 0.1; p_exit = 0.5; loss_bad = 0.9 } }

(* -- Gilbert-Elliott bursts ------------------------------------------------- *)

let burst_fabric ~seed =
  let engine = Engine.create () in
  let config =
    {
      Fabric.default_config with
      burst = Some { p_enter = 0.2; p_exit = 0.3; loss_bad = 1.0 };
    }
  in
  let fabric = Fabric.create ~config engine (Rng.create ~seed) in
  Fabric.register fabric (Addr.Host 1) (fun _ -> ());
  for i = 0 to 499 do
    ignore
      (Engine.schedule engine ~after:(Time.us i) (fun () ->
           Fabric.send fabric ~src:(Addr.Host 0) ~dst:(Addr.Host 1) ()))
  done;
  Engine.run engine;
  fabric

let test_burst_losses_and_determinism () =
  let a = burst_fabric ~seed:7 in
  Alcotest.(check bool) "bursts drop some packets" true (Fabric.lost a > 0);
  Alcotest.(check bool) "good state delivers some packets" true
    (Fabric.delivered a > 0);
  Alcotest.(check int) "all packets accounted" 500
    (Fabric.delivered a + Fabric.lost a);
  let b = burst_fabric ~seed:7 in
  Alcotest.(check int) "same seed, same losses" (Fabric.lost a) (Fabric.lost b);
  let c = burst_fabric ~seed:8 in
  Alcotest.(check bool) "different seed, different channel walk" true
    (Fabric.lost a <> Fabric.lost c || Fabric.delivered a <> Fabric.delivered c)

let test_drops_are_traced () =
  let (), records =
    Trace.with_capture (fun () ->
        let engine = Engine.create () in
        let fabric = Fabric.create engine (Rng.create ~seed:1) in
        Fabric.register fabric (Addr.Host 1) (fun _ -> ());
        Fabric.set_loss_override fabric (Some 1.0);
        Fabric.send fabric ~src:(Addr.Host 0) ~dst:(Addr.Host 1) ();
        Fabric.set_loss_override fabric None;
        Fabric.partition fabric [ 1 ];
        Fabric.send fabric ~src:(Addr.Host 0) ~dst:(Addr.Host 1) ();
        Engine.run engine)
  in
  let drops =
    List.filter
      (fun r ->
        r.Trace.category = Trace.Fabric
        && Astring.String.is_infix ~affix:"DROP" r.Trace.message)
      records
  in
  Alcotest.(check int) "both drop paths traced" 2 (List.length drops);
  Alcotest.(check bool) "partition drop labelled" true
    (List.exists
       (fun r -> Astring.String.is_infix ~affix:"partition" r.Trace.message)
       drops)

(* -- Partitions ------------------------------------------------------------- *)

let test_partition_and_heal () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine (Rng.create ~seed:1) in
  let delivered = ref 0 in
  Fabric.register fabric (Addr.Host 1) (fun _ -> incr delivered);
  Fabric.partition fabric [ 1 ];
  Fabric.partition fabric [ 1 ];
  Alcotest.(check bool) "partitioned" true (Fabric.partitioned fabric (Addr.Host 1));
  Fabric.send fabric ~src:(Addr.Host 0) ~dst:(Addr.Host 1) ();
  Engine.run engine;
  Alcotest.(check int) "dropped while partitioned" 0 !delivered;
  Alcotest.(check int) "counted as partition drop" 1 (Fabric.partition_dropped fabric);
  (* Refcounted: one heal is not enough after two partitions. *)
  Fabric.heal fabric [ 1 ];
  Alcotest.(check bool) "still partitioned after one heal" true
    (Fabric.partitioned fabric (Addr.Host 1));
  Fabric.heal fabric [ 1 ];
  Alcotest.(check bool) "healed" false (Fabric.partitioned fabric (Addr.Host 1));
  Fabric.send fabric ~src:(Addr.Host 0) ~dst:(Addr.Host 1) ();
  Engine.run engine;
  Alcotest.(check int) "delivers after heal" 1 !delivered;
  Alcotest.(check bool) "switch never partitioned" false
    (Fabric.partitioned fabric Addr.Switch)

(* -- Straggler slowdown ------------------------------------------------------ *)

let test_cpu_slowdown () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine in
  Cpu.set_slowdown cpu 2.0;
  let done_at = ref 0 in
  Cpu.submit cpu ~cost:(Time.us 100) (fun () -> done_at := Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "100us of work takes 200us at 2x slowdown" (Time.us 200)
    !done_at;
  check_invalid "slowdown below 1" (fun () -> Cpu.set_slowdown cpu 0.5)

(* -- Crash / restart through the injector ------------------------------------ *)

let faulted_cluster () =
  Cluster.create
    {
      Cluster.default_config with
      workers = 2;
      executors_per_worker = 2;
      clients = 1;
      client_timeout = Some (Time.ms 1);
    }

let test_crash_restart_recovery () =
  let cluster = faulted_cluster () in
  Cluster.start cluster;
  let target = Target.of_cluster cluster in
  let plan = Plan.of_string "crash@300us:node=0,down=1ms" in
  let injector = Injector.arm plan target in
  let (drained, m), records =
    Trace.with_capture (fun () ->
        ignore
          (Client.submit_job (Cluster.client cluster 0)
             (List.init 8 (busy_task ~us:200)));
        Cluster.run cluster ~until:(Time.ms 3);
        let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
        (drained, Cluster.metrics cluster))
  in
  Alcotest.(check bool) "drained despite the crash" true drained;
  Alcotest.(check int) "every task completed" 8 (Metrics.completed m);
  Alcotest.(check bool) "crash lost work was recovered by timeouts" true
    (Metrics.resubmitted m > 0);
  Alcotest.(check int) "crash and restart both fired" 2
    (List.length (Injector.fired injector));
  let has affix =
    List.exists (fun r -> Astring.String.is_infix ~affix r.Trace.message) records
  in
  Alcotest.(check bool) "executor crash traced" true (has "CRASH");
  Alcotest.(check bool) "executor restart traced" true (has "RESTART")

let test_straggler_window () =
  let cluster = faulted_cluster () in
  Cluster.start cluster;
  let target = Target.of_cluster cluster in
  let injector =
    Injector.arm (Plan.of_string "straggler@100us:node=0,factor=8,dur=1ms") target
  in
  ignore (Client.submit_job (Cluster.client cluster 0) (List.init 8 (busy_task ~us:200)));
  Cluster.run cluster ~until:(Time.us 500);
  (* Mid-window: node 0 executors are degraded, node 1 untouched. *)
  Alcotest.(check bool) "fired the degradation" true
    (List.length (Injector.fired injector) = 1);
  Cluster.run cluster ~until:(Time.ms 2);
  Alcotest.(check int) "degradation window closed" 2
    (List.length (Injector.fired injector));
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  Alcotest.(check bool) "drained despite the straggler" true drained;
  Alcotest.(check int) "all completed" 8 (Metrics.completed (Cluster.metrics cluster))

let test_arm_rejects_unsupported () =
  let r2p2 =
    B.R2p2.create
      { B.R2p2.default_config with workers = 2; executors_per_worker = 2; clients = 1 }
  in
  let target = Target.of_r2p2 r2p2 in
  check_invalid "crash against push executors" (fun () ->
      Injector.arm (Plan.of_string "crash@1ms:node=0") target);
  check_invalid "straggler against push executors" (fun () ->
      Injector.arm (Plan.of_string "straggler@1ms:node=0,factor=2,dur=1ms") target);
  (* Fabric-level faults arm fine. *)
  ignore (Injector.arm (Plan.of_string "failover@1ms;burst@1ms:dur=1ms,loss=0.5") target)

(* -- Overlapping burst windows compose by max -------------------------------- *)

let test_burst_overlap_max () =
  let cluster = faulted_cluster () in
  let fabric = Cluster.fabric cluster in
  let target = Target.of_cluster cluster in
  ignore
    (Injector.arm
       (Plan.of_string "burst@0ns:dur=2ms,loss=0.5;burst@1ms:dur=2ms,loss=0.9")
       target);
  let engine = Cluster.engine cluster in
  Engine.run engine ~until:(Time.us 500);
  Alcotest.(check (option (float 0.0))) "first window alone" (Some 0.5)
    (Fabric.loss_override fabric);
  Engine.run engine ~until:(Time.us 1500);
  Alcotest.(check (option (float 0.0))) "overlap takes the max" (Some 0.9)
    (Fabric.loss_override fabric);
  Engine.run engine ~until:(Time.us 2500);
  Alcotest.(check (option (float 0.0))) "survivor wins after first ends" (Some 0.9)
    (Fabric.loss_override fabric);
  Engine.run engine ~until:(Time.us 3500);
  Alcotest.(check (option (float 0.0))) "cleared after both end" None
    (Fabric.loss_override fabric)

(* -- Client resubmission cap (satellite) ------------------------------------- *)

let test_resubmission_cap () =
  (* Executors never started: every submission times out forever.  The
     cap must stop the retry loop and drain the client. *)
  let cluster = faulted_cluster () in
  let client = Cluster.client cluster 0 in
  ignore (Client.submit_job client (List.init 5 (busy_task ~us:100)));
  Cluster.run cluster ~until:(Time.ms 10);
  let m = Cluster.metrics cluster in
  Alcotest.(check int) "outstanding drained by abandonment" 0 (Cluster.outstanding cluster);
  Alcotest.(check int) "one abandonment per task" 5 (Client.abandoned client);
  Alcotest.(check int) "exactly max_resubmissions retries per task" 15
    (Client.resubmitted client);
  Alcotest.(check int) "initial try + 3 retries each time out" 20 (Metrics.timeouts m);
  Alcotest.(check int) "metrics mirror the client counters" 5 (Metrics.abandoned m);
  Alcotest.(check int) "nothing completed" 0 (Metrics.completed m)

(* -- Fail-over recovery bounded by the client timeout ------------------------- *)

let failover_run () =
  let cluster = faulted_cluster () in
  Cluster.start cluster;
  let target = Target.of_cluster cluster in
  let injector = Injector.arm (Plan.of_string "failover@500us") target in
  (* 20 x 200us on 4 executors: a deep backlog is queued when the switch
     dies at 500us. *)
  ignore (Client.submit_job (Cluster.client cluster 0) (List.init 20 (busy_task ~us:200)));
  Cluster.run cluster ~until:(Time.ms 2);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  let report =
    Recovery.measure ~metrics:(Cluster.metrics cluster) ~injector ~until:(Time.ms 2) ()
  in
  (drained, report)

let test_failover_recovery_bounded () =
  let drained, report = failover_run () in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "one fail-over" 1 report.Recovery.failovers;
  Alcotest.(check bool) "queued tasks were lost" true (report.Recovery.queued_lost > 0);
  Alcotest.(check int) "every task completed" 20 report.Recovery.completed;
  Alcotest.(check bool) "lost tasks were resubmitted, not abandoned" true
    (report.Recovery.resubmitted >= report.Recovery.queued_lost);
  Alcotest.(check int) "no task exhausted its budget" 0 report.Recovery.abandoned;
  (match report.Recovery.recovery with
  | None -> Alcotest.fail "no recovery time measured"
  | Some r ->
    Alcotest.(check bool) "standby assigns within the client timeout" true
      (r <= Time.ms 1));
  Alcotest.(check bool) "availability over the fault window" true
    (report.Recovery.availability > 0.0)

(* -- Determinism -------------------------------------------------------------- *)

let deterministic_scenario () =
  let cluster = faulted_cluster () in
  Cluster.start cluster;
  let target = Target.of_cluster cluster in
  let injector =
    Injector.arm
      (Plan.of_string
         "burst@200us:dur=300us,loss=0.6;failover@500us;crash@700us:node=1,down=500us")
      target
  in
  let engine = Cluster.engine cluster in
  for i = 0 to 29 do
    ignore
      (Engine.schedule engine ~after:(Time.us (30 * i)) (fun () ->
           ignore (Client.submit_job (Cluster.client cluster 0) [ busy_task ~us:200 i ])))
  done;
  Cluster.run cluster ~until:(Time.ms 3);
  ignore (Cluster.run_until_drained cluster ~deadline:(Time.s 2));
  ( Recovery.measure ~metrics:(Cluster.metrics cluster) ~injector ~until:(Time.ms 3) (),
    Injector.fired injector )

let test_fault_determinism () =
  let report_a, fired_a = deterministic_scenario () in
  let report_b, fired_b = deterministic_scenario () in
  Alcotest.(check bool) "identical recovery reports" true (report_a = report_b);
  Alcotest.(check (list (pair int string))) "identical fault logs" fired_a fired_b;
  Alcotest.(check bool) "scenario exercised losses" true
    (report_a.Recovery.timeouts > 0)

(* -- Baseline fail-over hooks ------------------------------------------------- *)

let test_central_server_failover () =
  let server =
    B.Central_server.create
      {
        B.Central_server.default_config with
        workers = 2;
        executors_per_worker = 2;
        clients = 1;
      }
  in
  (* Workers never started: submissions sit in the server queue. *)
  ignore (Client.submit_job (B.Central_server.client server 0) (List.init 7 (busy_task ~us:100)));
  B.Central_server.run server ~until:(Time.ms 1);
  Alcotest.(check int) "tasks queued at the server" 7
    (B.Central_server.queue_length server);
  Alcotest.(check int) "fail-over reports the losses" 7
    (B.Central_server.fail_over_server server);
  Alcotest.(check int) "standby starts empty" 0 (B.Central_server.queue_length server)

let test_r2p2_failover_resets_registers () =
  let r2p2 =
    B.R2p2.create
      { B.R2p2.default_config with workers = 2; executors_per_worker = 2; clients = 1 }
  in
  ignore (Client.submit_job (B.R2p2.client r2p2 0) (List.init 4 (busy_task ~us:500)));
  B.R2p2.run r2p2 ~until:(Time.us 100);
  let believed = ref 0 in
  for e = 0 to B.R2p2.total_executors r2p2 - 1 do
    believed := !believed + B.R2p2.counter r2p2 e
  done;
  Alcotest.(check bool) "counters track pushed tasks" true (!believed > 0);
  Alcotest.(check int) "fail-over wipes the believed occupancy" !believed
    (B.R2p2.fail_over_switch r2p2);
  for e = 0 to B.R2p2.total_executors r2p2 - 1 do
    Alcotest.(check int) "counter reset" 0 (B.R2p2.counter r2p2 e)
  done

let suite =
  [
    Alcotest.test_case "plan: parse and sort" `Quick test_plan_parse;
    Alcotest.test_case "plan: string round-trip" `Quick test_plan_round_trip;
    Alcotest.test_case "plan: validation" `Quick test_plan_validation;
    Alcotest.test_case "fabric: config validation" `Quick test_fabric_config_validation;
    Alcotest.test_case "fabric: GE bursts deterministic" `Quick
      test_burst_losses_and_determinism;
    Alcotest.test_case "fabric: drops are traced" `Quick test_drops_are_traced;
    Alcotest.test_case "fabric: partition and heal" `Quick test_partition_and_heal;
    Alcotest.test_case "cpu: straggler slowdown" `Quick test_cpu_slowdown;
    Alcotest.test_case "injector: crash and restart" `Quick test_crash_restart_recovery;
    Alcotest.test_case "injector: straggler window" `Quick test_straggler_window;
    Alcotest.test_case "injector: rejects unsupported faults" `Quick
      test_arm_rejects_unsupported;
    Alcotest.test_case "injector: overlapping bursts take max" `Quick
      test_burst_overlap_max;
    Alcotest.test_case "client: resubmission cap" `Quick test_resubmission_cap;
    Alcotest.test_case "fail-over: recovery bounded by timeout" `Quick
      test_failover_recovery_bounded;
    Alcotest.test_case "fault runs are deterministic" `Quick test_fault_determinism;
    Alcotest.test_case "central server fail-over" `Quick test_central_server_failover;
    Alcotest.test_case "r2p2 fail-over resets registers" `Quick
      test_r2p2_failover_resets_registers;
  ]
