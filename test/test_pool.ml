(* Tests for the domain work pool and the parallel-sweep determinism
   guarantee: --jobs 1 and --jobs N must produce identical rows. *)

open Draconis_sim
open Draconis_workload
module H = Draconis_harness

let test_map_ordered () =
  let results = H.Pool.map ~jobs:4 (List.init 32 (fun i () -> i * i)) in
  Alcotest.(check (list int))
    "submission order" (List.init 32 (fun i -> i * i)) results

let test_map_sequential () =
  (* jobs = 1 runs inline in the submitting domain. *)
  let ran_in = ref [] in
  let results =
    H.Pool.map ~jobs:1
      (List.init 8 (fun i () ->
           ran_in := (Domain.self () :> int) :: !ran_in;
           i))
  in
  Alcotest.(check (list int)) "results" (List.init 8 Fun.id) results;
  let self = (Domain.self () :> int) in
  Alcotest.(check bool) "all inline" true (List.for_all (( = ) self) !ran_in)

let test_all_jobs_run () =
  let count = Atomic.make 0 in
  let results =
    H.Pool.map ~jobs:3
      (List.init 20 (fun i () ->
           Atomic.incr count;
           i))
  in
  Alcotest.(check int) "20 results" 20 (List.length results);
  Alcotest.(check int) "20 executions" 20 (Atomic.get count)

let test_exception_propagates () =
  let count = Atomic.make 0 in
  let jobs =
    List.init 10 (fun i () ->
        Atomic.incr count;
        if i = 3 then failwith "job 3 exploded";
        i)
  in
  (try
     ignore (H.Pool.map ~jobs:4 jobs);
     Alcotest.fail "expected Failure"
   with Failure msg -> Alcotest.(check string) "message" "job 3 exploded" msg);
  (* A failing job does not cancel the rest of the grid. *)
  Alcotest.(check int) "all jobs still ran" 10 (Atomic.get count)

let test_earliest_exception_wins () =
  let jobs =
    List.init 6 (fun i () ->
        if i >= 2 then failwith (Printf.sprintf "job %d" i);
        i)
  in
  try
    ignore (H.Pool.map ~jobs:4 jobs);
    Alcotest.fail "expected Failure"
  with Failure msg -> Alcotest.(check string) "lowest index" "job 2" msg

let test_submit_after_results_rejected () =
  let pool = H.Pool.create ~jobs:2 () in
  H.Pool.submit pool (fun () -> 1);
  Alcotest.(check (list int)) "results" [ 1 ] (H.Pool.results pool);
  Alcotest.check_raises "closed"
    (Invalid_argument "Pool.submit: pool already closed") (fun () ->
      H.Pool.submit pool (fun () -> 2))

let test_empty_pool () =
  Alcotest.(check (list int)) "no jobs" [] (H.Pool.map ~jobs:4 []);
  Alcotest.(check (list int)) "no jobs seq" [] (H.Pool.map ~jobs:1 [])

(* -- worker-count cap ------------------------------------------------------ *)

let test_set_jobs_cap () =
  let raises f = try f () ; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "0 rejected" true (raises (fun () -> H.Pool.set_jobs 0));
  Alcotest.(check bool) "above cap rejected" true
    (raises (fun () -> H.Pool.set_jobs (H.Pool.max_jobs + 1)));
  H.Pool.set_jobs 1;
  Alcotest.(check int) "cap itself accepted" 1 (H.Pool.jobs ())

let test_env_jobs_fails_loudly () =
  (* A bad DRACONIS_JOBS is a configuration error: it must raise, not
     warn and silently fall back to the default parallelism. *)
  let with_env v f =
    Unix.putenv "DRACONIS_JOBS" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "DRACONIS_JOBS" "") f
  in
  let rejects v =
    with_env v (fun () ->
        try
          ignore (H.Pool.default_jobs ());
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "garbage rejected" true (rejects "three");
  Alcotest.(check bool) "zero rejected" true (rejects "0");
  Alcotest.(check bool) "above cap rejected" true
    (rejects (string_of_int (H.Pool.max_jobs + 1)));
  with_env "2" (fun () ->
      Alcotest.(check int) "valid setting honoured" 2 (H.Pool.default_jobs ()));
  with_env "" (fun () ->
      Alcotest.(check bool) "empty means unset" true (H.Pool.default_jobs () >= 1))

(* -- persistent worker team ------------------------------------------------ *)

let test_team_runs_batches () =
  let team = H.Pool.Team.create ~size:3 in
  Fun.protect
    ~finally:(fun () -> H.Pool.Team.shutdown team)
    (fun () ->
      Alcotest.(check int) "size" 3 (H.Pool.Team.size team);
      let total = Atomic.make 0 in
      (* Many small batches, like barrier windows. *)
      for _ = 1 to 50 do
        H.Pool.Team.run team
          (Array.init 8 (fun i () -> ignore (Atomic.fetch_and_add total (i + 1))))
      done;
      Alcotest.(check int) "every thunk of every batch ran" (50 * 36)
        (Atomic.get total);
      H.Pool.Team.run team [||])

let test_team_exception_propagates () =
  let team = H.Pool.Team.create ~size:2 in
  Fun.protect
    ~finally:(fun () -> H.Pool.Team.shutdown team)
    (fun () ->
      let ran = Atomic.make 0 in
      (try
         H.Pool.Team.run team
           (Array.init 6 (fun i () ->
                Atomic.incr ran;
                if i = 2 then failwith "window 2 exploded"));
         Alcotest.fail "expected Failure"
       with Failure msg -> Alcotest.(check string) "message" "window 2 exploded" msg);
      Alcotest.(check int) "batch barrier completed" 6 (Atomic.get ran);
      (* The team survives a failed batch. *)
      let ok = Atomic.make 0 in
      H.Pool.Team.run team (Array.init 4 (fun _ () -> Atomic.incr ok));
      Alcotest.(check int) "next batch healthy" 4 (Atomic.get ok))

let test_team_shutdown () =
  let team = H.Pool.Team.create ~size:2 in
  H.Pool.Team.shutdown team;
  H.Pool.Team.shutdown team;
  (* idempotent *)
  (try
     H.Pool.Team.run team [| (fun () -> ()) |];
     Alcotest.fail "expected rejection after shutdown"
   with Invalid_argument _ -> ());
  let raises f = try f () ; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "size 0 rejected" true (raises (fun () ->
      ignore (H.Pool.Team.create ~size:0)));
  Alcotest.(check bool) "oversized team rejected" true (raises (fun () ->
      ignore (H.Pool.Team.create ~size:(H.Pool.max_jobs + 1))))

(* -- determinism: the tentpole guarantee ----------------------------------- *)

let small_spec =
  { H.Systems.workers = 4; executors_per_worker = 4; clients = 1; seed = 7 }

(* A fig5a-style grid: (system x load) points, each a self-contained
   closure building its own engine and workload RNG. *)
let grid_closures () =
  let kind = Synthetic.Fixed_100us in
  let systems =
    [
      (fun () -> H.Systems.draconis small_spec);
      (fun () -> H.Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) small_spec);
    ]
  in
  let loads = [ 20_000.0; 40_000.0 ] in
  List.concat_map
    (fun make ->
      List.map
        (fun load () ->
          let horizon = Time.ms 10 in
          let driver = H.Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
          H.Runner.run (make ()) ~driver ~load_tps:load ~horizon ())
        loads)
    systems

let test_jobs1_jobs4_identical () =
  let sequential = H.Pool.map ~jobs:1 (grid_closures ()) in
  let parallel = H.Pool.map ~jobs:4 (grid_closures ()) in
  Alcotest.(check int) "same length" (List.length sequential) (List.length parallel);
  List.iter2
    (fun (a : H.Runner.outcome) (b : H.Runner.outcome) ->
      if a <> b then
        Alcotest.failf "outcome mismatch for %s@%.0ftps: %a vs %a" a.system
          a.load_tps H.Runner.pp_outcome a H.Runner.pp_outcome b)
    sequential parallel

let test_repeated_parallel_runs_identical () =
  let a = H.Pool.map ~jobs:4 (grid_closures ()) in
  let b = H.Pool.map ~jobs:4 (grid_closures ()) in
  Alcotest.(check bool) "identical across runs" true (a = b)

(* -- engine seq-counter renumbering ---------------------------------------- *)

(* Schedule enough events to overflow the packed key's 21-bit sequence
   field; the engine must renumber the pending queue and keep both
   timestamp order and FIFO tie-breaking intact. *)
let test_engine_seq_renumber () =
  let engine = Engine.create () in
  let target = (1 lsl 21) + 50_000 in
  let executed = ref 0 in
  let last_at = ref (-1) in
  let rec reschedule n =
    if n > 0 then
      ignore
        (Engine.schedule engine ~after:((n mod 7) + 1) (fun () ->
             incr executed;
             let now = Engine.now engine in
             if now < !last_at then Alcotest.fail "clock went backwards";
             last_at := now;
             reschedule (n - 1)))
  in
  (* Keep ~1000 events pending while churning through > 2^21 total
     schedules, so renumbering triggers with a non-trivial queue. *)
  let pending = 1000 in
  let per_chain = target / pending in
  for _ = 1 to pending do
    reschedule per_chain
  done;
  Engine.run engine;
  Alcotest.(check int) "all events executed" (pending * per_chain) !executed

let test_engine_fifo_ties_across_renumber () =
  let engine = Engine.create () in
  let order = ref [] in
  (* Two events at the same instant scheduled before the churn... *)
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 2 :: !order));
  (* ...then enough churn to overflow the sequence counter while those
     two are still pending.  Each batch is drained (cancelled events pop
     without firing) so the queue stays small and the clock stays well
     short of the ties' timestamp: ~4400 batches x 10ns << 1ms. *)
  let churn = (1 lsl 21) + 100_000 in
  for _ = 1 to churn / 500 do
    let hs = List.init 500 (fun _ -> Engine.schedule engine ~after:10 ignore) in
    List.iter (Engine.cancel engine) hs;
    Engine.run ~until:(Engine.now engine + 10) engine
  done;
  (* ...and two more ties scheduled after the renumber. *)
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 3 :: !order));
  ignore (Engine.schedule engine ~after:1_000_000 (fun () -> order := 4 :: !order));
  Engine.run engine;
  Alcotest.(check (list int)) "FIFO at equal timestamps" [ 1; 2; 3; 4 ]
    (List.rev !order)

let suite =
  [
    Alcotest.test_case "map returns submission order" `Quick test_map_ordered;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_map_sequential;
    Alcotest.test_case "all jobs run" `Quick test_all_jobs_run;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "earliest exception wins" `Quick test_earliest_exception_wins;
    Alcotest.test_case "submit after results rejected" `Quick
      test_submit_after_results_rejected;
    Alcotest.test_case "empty pool" `Quick test_empty_pool;
    Alcotest.test_case "set_jobs validates the cap" `Quick test_set_jobs_cap;
    Alcotest.test_case "DRACONIS_JOBS fails loudly" `Quick test_env_jobs_fails_loudly;
    Alcotest.test_case "team runs repeated batches" `Quick test_team_runs_batches;
    Alcotest.test_case "team propagates exceptions" `Quick
      test_team_exception_propagates;
    Alcotest.test_case "team shutdown" `Quick test_team_shutdown;
    Alcotest.test_case "determinism: jobs=1 vs jobs=4" `Slow test_jobs1_jobs4_identical;
    Alcotest.test_case "determinism: repeated parallel runs" `Slow
      test_repeated_parallel_runs_identical;
    Alcotest.test_case "engine renumbers past 2^21 schedules" `Slow
      test_engine_seq_renumber;
    Alcotest.test_case "engine FIFO ties survive renumber" `Slow
      test_engine_fifo_ties_across_renumber;
  ]
