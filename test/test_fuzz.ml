(* Tests of the lib/fuzz property-fuzzing subsystem: generator
   determinism, schedule serialization round-trips, the semantic
   oracle, clean campaigns over the real pipeline, and the harness's
   self-test — an intentionally re-introduced protocol bug must be
   caught, shrunk to a small reproducer, and the reproducer must
   replay to the same violation. *)

open Draconis_proto
module Fz = Draconis_fuzz

let id ~tid : Task.id = { uid = 1; jid = 1; tid }

let test_gen_deterministic () =
  List.iter
    (fun seed ->
      let a = Fz.Gen.schedule ~seed () in
      let b = Fz.Gen.schedule ~seed () in
      Alcotest.(check string) "same seed, same schedule"
        (Fz.Schedule.to_string a) (Fz.Schedule.to_string b))
    [ 1; 7; 42; 1_000_003 ];
  let a = Fz.Gen.schedule ~seed:1 () in
  let b = Fz.Gen.schedule ~seed:2 () in
  Alcotest.(check bool) "different seeds differ" false
    (Fz.Schedule.to_string a = Fz.Schedule.to_string b)

let test_schedule_round_trip () =
  List.iter
    (fun seed ->
      let s = Fz.Gen.schedule ~seed () in
      let text = Fz.Schedule.to_string s in
      let reparsed = Fz.Schedule.of_string text in
      Alcotest.(check string)
        (Printf.sprintf "seed %d round-trips" seed)
        text
        (Fz.Schedule.to_string reparsed))
    (List.init 25 (fun i -> i + 1))

let test_schedule_rejects_garbage () =
  List.iter
    (fun text ->
      match Fz.Schedule.of_string text with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted garbage %S" text)
    [
      "";
      "not-a-header\n";
      "draconis-fuzz/1\nseed=1 capacity=0 policy=fcfs clients=1 executors=1 \
       service=1000\n";
      "draconis-fuzz/1\nseed=1 capacity=4 policy=bogus clients=1 executors=1 \
       service=1000\n";
    ]

(* Pin the pifo additions to the schedule grammar: policy spellings,
   deadline/tenant props, and the geometry rules Validate enforces. *)
let test_pifo_schedule_grammar () =
  let text =
    "draconis-fuzz/1\n\
     seed=7 capacity=16 policy=wfq:10000:3+1 clients=1 executors=2 service=1000\n\
     submit at=0 client=0 uid=0 jid=0 count=1 tenant=1\n\
     submit at=5 client=0 uid=1 jid=0 count=2\n\
     request at=10 executor=0 prio=1\n"
  in
  let s = Fz.Schedule.of_string text in
  Alcotest.(check string) "wfq schedule round-trips" text (Fz.Schedule.to_string s);
  let edf =
    "draconis-fuzz/1\n\
     seed=7 capacity=8 policy=edf:50000 clients=1 executors=1 service=1000\n\
     submit at=0 client=0 uid=0 jid=0 count=1 deadline=4294967295\n"
  in
  Alcotest.(check string) "edf deadline round-trips" edf
    (Fz.Schedule.to_string (Fz.Schedule.of_string edf));
  List.iter
    (fun text ->
      match Fz.Schedule.of_string text with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "accepted invalid pifo schedule %S" text)
    [
      (* wrap_offset is meaningless without queue pointers *)
      "draconis-fuzz/1\n\
       seed=1 capacity=16 policy=edf:1000 clients=1 executors=1 service=1000 \
       wrap_offset=3\n";
      (* capacity must match the bank geometry *)
      "draconis-fuzz/1\n\
       seed=1 capacity=24 policy=aging:2:1000 clients=1 executors=1 service=1000\n";
      (* conflicting task properties *)
      "draconis-fuzz/1\n\
       seed=1 capacity=16 policy=edf:1000 clients=1 executors=1 service=1000\n\
       submit at=0 client=0 uid=0 jid=0 count=1 deadline=5 tenant=1\n";
      (* malformed weight list *)
      "draconis-fuzz/1\n\
       seed=1 capacity=16 policy=wfq:1000: clients=1 executors=1 service=1000\n";
    ]

let test_oracle_fifo () =
  let o = Fz.Oracle.create ~levels:2 ~capacity:2 () in
  Alcotest.(check bool) "push 1" true (Fz.Oracle.push o ~level:0 (id ~tid:1) = Fz.Oracle.Pushed);
  Alcotest.(check bool) "push 2" true (Fz.Oracle.push o ~level:0 (id ~tid:2) = Fz.Oracle.Pushed);
  Alcotest.(check bool) "overflow at capacity" true
    (Fz.Oracle.push o ~level:0 (id ~tid:3) = Fz.Oracle.Overflow);
  Alcotest.(check int) "other level empty" 0 (Fz.Oracle.size o ~level:1);
  Alcotest.(check bool) "mem finds queued id" true (Fz.Oracle.mem o (id ~tid:2));
  (match Fz.Oracle.pop o ~level:0 with
  | Some popped -> Alcotest.(check int) "FIFO head first" 1 popped.tid
  | None -> Alcotest.fail "pop on non-empty level");
  Alcotest.(check bool) "swap replaces in place" true
    (Fz.Oracle.swap o ~out_id:(id ~tid:2) ~in_id:(id ~tid:9) = Fz.Oracle.Swapped);
  Alcotest.(check bool) "swap misses absent id" true
    (Fz.Oracle.swap o ~out_id:(id ~tid:2) ~in_id:(id ~tid:9) = Fz.Oracle.Not_found);
  Alcotest.(check bool) "remove finds swapped-in id" true (Fz.Oracle.remove o (id ~tid:9));
  Alcotest.(check int) "empty after remove" 0 (Fz.Oracle.total o)

let test_clean_campaign_exercises_all_invariants () =
  (* The real pipeline over a seed sweep — with the sharded smoke legs
     on, so the cross-LP outcome-equality invariant is exercised too:
     zero violations, and every registered invariant actually evaluated
     at least once. *)
  let seeds = List.init 150 (fun i -> i + 1) in
  let campaign = Fz.Fuzz.run_campaign ~sharded:true ~seeds () in
  (match campaign.Fz.Fuzz.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "seed %d violated %s: %s" f.Fz.Fuzz.seed f.Fz.Fuzz.invariant
      f.Fz.Fuzz.detail);
  Alcotest.(check (list string)) "all invariants exercised" []
    (Fz.Fuzz.unexercised campaign);
  List.iter
    (fun inv ->
      let n = List.assoc inv campaign.Fz.Fuzz.checks in
      Alcotest.(check bool) (inv ^ " evaluated") true (n > 0))
    Fz.Checker.invariants

let test_sharded_rig_consistency () =
  (* The sharded execution path directly: the same schedule through one
     LP and through a switch-LP/host-LP split must agree on everything
     partition-independent, and the rig must not be vacuous — across
     the seeds, tasks actually reach executors. *)
  let delivered = ref 0 in
  List.iter
    (fun seed ->
      let schedule = Fz.Gen.schedule ~seed () in
      let one = Fz.Exec.run_sharded ~shards:1 schedule in
      let two = Fz.Exec.run_sharded ~shards:2 schedule in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: sharded run recorded events" seed)
        true
        (Array.length one.Fz.Checker.events > 0);
      Array.iter
        (function Fz.Checker.Delivered _ -> incr delivered | _ -> ())
        two.Fz.Checker.events;
      let report =
        Fz.Checker.check ~sharded:(one, two) schedule (Fz.Exec.run schedule)
      in
      match report.Fz.Checker.violations with
      | [] -> ()
      | v :: _ ->
        Alcotest.failf "seed %d violated %s: %s" seed v.Fz.Checker.invariant
          v.Fz.Checker.detail)
    [ 3; 11; 42 ];
  Alcotest.(check bool) "sharded legs delivered tasks" true (!delivered > 0);
  (* Only the two supported partitionings exist: LP0 = switch is fixed. *)
  Alcotest.(check bool) "shards=3 fails loud" true
    (try
       ignore (Fz.Exec.run_sharded ~shards:3 (Fz.Gen.schedule ~seed:1 ()));
       false
     with Invalid_argument _ -> true)

let test_injected_bug_caught_and_shrunk () =
  (* Harness self-test: re-introduce the stamp-validity bug, catch it,
     and shrink the failing schedule to a <= 20 op reproducer that
     still replays to the same violation. *)
  let campaign =
    Fz.Fuzz.run_campaign ~bug:Fz.Exec.Skip_stamp_check ~ops:10 ~shrink_budget:60
      ~seeds:[ 1 ] ()
  in
  match campaign.Fz.Fuzz.failures with
  | [] -> Alcotest.fail "injected stamp bug escaped the campaign"
  | f :: _ ->
    let op_count = List.length f.Fz.Fuzz.shrunk.Fz.Schedule.ops in
    Alcotest.(check bool)
      (Printf.sprintf "shrunk to %d ops (<= 20)" op_count)
      true (op_count <= 20);
    let replay = Fz.Exec.run_checked ~bug:Fz.Exec.Skip_stamp_check f.Fz.Fuzz.shrunk in
    let invariants =
      List.map (fun v -> v.Fz.Checker.invariant) replay.Fz.Checker.violations
    in
    Alcotest.(check bool)
      (Printf.sprintf "reproducer replays %s" f.Fz.Fuzz.invariant)
      true
      (List.mem f.Fz.Fuzz.invariant invariants)

let test_dropped_repair_caught () =
  let campaign =
    Fz.Fuzz.run_campaign ~bug:Fz.Exec.Drop_retrieve_repair ~shrink_budget:60
      ~seeds:[ 1 ] ()
  in
  match campaign.Fz.Fuzz.failures with
  | [] -> Alcotest.fail "injected dropped-repair bug escaped the campaign"
  | f :: _ ->
    Alcotest.(check bool) "shrunk reproducer is small" true
      (List.length f.Fz.Fuzz.shrunk.Fz.Schedule.ops <= 20);
    let replay =
      Fz.Exec.run_checked ~bug:Fz.Exec.Drop_retrieve_repair f.Fz.Fuzz.shrunk
    in
    Alcotest.(check bool) "reproducer still fails" false
      (Fz.Checker.ok replay)

let suite =
  [
    Alcotest.test_case "generator is seed-deterministic" `Quick test_gen_deterministic;
    Alcotest.test_case "schedule text round-trips" `Quick test_schedule_round_trip;
    Alcotest.test_case "schedule parser rejects garbage" `Quick
      test_schedule_rejects_garbage;
    Alcotest.test_case "pifo schedule grammar" `Quick test_pifo_schedule_grammar;
    Alcotest.test_case "oracle FIFO / overflow / swap / remove" `Quick test_oracle_fifo;
    Alcotest.test_case "clean campaign exercises every invariant" `Quick
      test_clean_campaign_exercises_all_invariants;
    Alcotest.test_case "sharded execution matches across LP partitionings" `Quick
      test_sharded_rig_consistency;
    Alcotest.test_case "injected stamp bug caught and shrunk" `Quick
      test_injected_bug_caught_and_shrunk;
    Alcotest.test_case "injected dropped-repair bug caught" `Quick
      test_dropped_repair_caught;
  ]
