(* The sharded Draconis cluster: outcome equality across shard counts
   (the tentpole guarantee — partitioning the data path over logical
   processes must not change a single metric), work-stealing executor
   neutrality, static fault windows, and the fail-loud guards. *)

open Draconis_sim
open Draconis_workload
module H = Draconis_harness

let spec = { H.Systems.workers = 4; executors_per_worker = 4; clients = 2; seed = 7 }
let kind = Synthetic.Fixed_100us
let horizon = Time.ms 10
let rate_tps = 90_000.0

let driver = H.Exp_common.synthetic_driver kind ~rate_tps ~horizon

(* Everything in an outcome except wall-clock throughput, which is the
   one field allowed to differ between runs. *)
let digest (o : H.Runner.outcome) =
  [
    ("submitted", o.submitted);
    ("started", o.started);
    ("completed", o.completed);
    ("timeouts", o.timeouts);
    ("rejected", o.rejected);
    ("p50", o.sched_p50);
    ("p99", o.sched_p99);
    ("mean_ns", int_of_float o.sched_mean);
    ("swaps", o.swaps);
    ("recirculations", o.recirculations);
    ("repair_flags", o.repair_flags);
    ("events", o.events);
    ("drained", if o.drained then 1 else 0);
  ]

let run_sharded ?faults shards =
  let system = H.Systems.draconis ~racks:2 ~shards ?faults spec in
  H.Runner.run system ~driver ~load_tps:rate_tps ~horizon ()

let check_digests name reference other =
  Alcotest.(check (list (pair string int))) name (digest reference) (digest other)

let test_outcome_equality () =
  let reference = run_sharded 1 in
  Alcotest.(check bool) "work happened" true (reference.completed > 100);
  Alcotest.(check bool) "drained" true reference.drained;
  List.iter
    (fun shards ->
      check_digests
        (Printf.sprintf "shards=%d == shards=1" shards)
        reference (run_sharded shards))
    [ 2; 4 ]

let faults =
  {
    Draconis.Cluster.loss_windows = [| (Time.ms 2, Time.ms 4, 0.05) |];
    cut_windows = [| (Time.ms 3, Time.ms 4, [ 1 ]) |];
    slow_windows = [| (Time.ms 1, Time.ms 6, 2, 3.0) |];
  }

let test_fault_equality () =
  let system shards =
    H.Systems.draconis ~racks:2 ~shards ~faults ~client_timeout:(Time.ms 2) spec
  in
  let run shards = H.Runner.run (system shards) ~driver ~load_tps:rate_tps ~horizon () in
  let reference = run 1 in
  Alcotest.(check bool) "faults bit (losses recovered)" true
    (reference.timeouts > 0 && reference.completed > 100);
  List.iter
    (fun shards ->
      check_digests
        (Printf.sprintf "faulted shards=%d == shards=1" shards)
        reference (run shards))
    [ 2; 4 ]

let test_executor_neutrality () =
  (* The barrier-window executor is pure execution vehicle: fanning each
     window over a 2-lane work-stealing team must reproduce the inline
     run bit for bit.  Driven below Systems/Runner so the team size is
     ours to pick (the harness sizes it to the machine). *)
  let build () =
    let cluster =
      Draconis.Cluster.create
        {
          Draconis.Cluster.default_config with
          seed = 7;
          workers = 4;
          executors_per_worker = 4;
          clients = 2;
          racks = 2;
          shards = Some 4;
        }
    in
    Draconis.Cluster.start cluster;
    (* Stage a fixed workload directly onto the owning client LPs. *)
    Array.iteri
      (fun c client ->
        for j = 0 to 39 do
          ignore
            (Engine.schedule_at
               (Draconis.Client.engine client)
               ~at:(Time.us (50 + (j * 200) + c))
               (fun () ->
                 ignore
                   (Draconis.Client.submit_job client
                      (List.init 3 (fun tid ->
                           Draconis_proto.Task.make ~uid:0 ~jid:0 ~tid
                             ~fn_id:Draconis_proto.Task.Fn.busy_loop
                             ~fn_par:(Time.us 100) ())))))
        done)
      (Draconis.Cluster.clients cluster);
    cluster
  in
  let digest cluster =
    let m = Draconis.Cluster.metrics cluster in
    [
      Draconis.Metrics.submitted m;
      Draconis.Metrics.started m;
      Draconis.Metrics.completed m;
      Draconis.Cluster.events cluster;
    ]
  in
  let inline_cluster = build () in
  Draconis.Cluster.run inline_cluster ~until:horizon;
  let team = H.Pool.Team.create ~size:2 in
  let teamed =
    Fun.protect
      ~finally:(fun () -> H.Pool.Team.shutdown team)
      (fun () ->
        let cluster = build () in
        Draconis.Cluster.run ~executor:(H.Pool.Team.run team) cluster ~until:horizon;
        digest cluster)
  in
  Alcotest.(check (list int)) "teamed == inline" (digest inline_cluster) teamed

let test_shards_exceed_lp_groups () =
  (* 4 workers + 2 clients admit 1 + 6 LP groups; 8 must fail loud. *)
  Alcotest.check_raises "too many shards"
    (Invalid_argument
       "Cluster.create: 8 shards exceed the 7 LP groups this topology admits \
        (1 switch LP + 6 hosts: 4 workers + 2 clients); lower --shards")
    (fun () -> ignore (run_sharded 8))

let test_static_faults_require_shards () =
  Alcotest.(check bool) "legacy cluster rejects static faults" true
    (try
       ignore (H.Systems.draconis ~racks:2 ~faults spec);
       false
     with Invalid_argument _ -> true)

let test_feed_noop_rejects_staged () =
  let system = H.Systems.draconis ~racks:2 ~shards:2 spec in
  Fun.protect
    ~finally:(fun () -> system.control.H.Systems.close ())
    (fun () ->
      Alcotest.(check bool) "closed-loop feeder fails loud" true
        (try
           H.Exp_common.feed_noop system ~in_flight:16 ~horizon;
           false
         with Invalid_argument _ -> true))

let suite =
  [
    Alcotest.test_case "outcomes bit-identical across shards {1,2,4}" `Quick
      test_outcome_equality;
    Alcotest.test_case "static faults bit-identical across shards" `Quick
      test_fault_equality;
    Alcotest.test_case "work-stealing executor is outcome-neutral" `Quick
      test_executor_neutrality;
    Alcotest.test_case "shards > LP groups fails loud" `Quick
      test_shards_exceed_lp_groups;
    Alcotest.test_case "static faults require sharding" `Quick
      test_static_faults_require_shards;
    Alcotest.test_case "feed_noop rejects staged systems" `Quick
      test_feed_noop_rejects_staged;
  ]
