(* Tests for the in-band telemetry channel: configuration and the
   DRACONIS_INT grammar, stamp-stack budget/loss accounting, the
   per-traversal builder lifecycle, host-side collector aggregation and
   its JSON section, the ambient collector, the offline occupancy
   re-check, the sink drain tie-break, and an end-to-end
   run -> dump -> reload -> recheck round trip. *)

open Draconis_sim
open Draconis_workload
module H = Draconis_harness
module Obs = Draconis_obs
module Int_t = Draconis_obs.Int_telemetry

(* Every test restores the process-global telemetry switches: the suite
   shares them with the observability and fuzz suites. *)
let with_clean_config f =
  let was_enabled = Int_t.enabled () in
  let was_budget = Int_t.budget () in
  Fun.protect
    ~finally:(fun () ->
      Int_t.set_budget was_budget;
      if was_enabled then Int_t.enable () else Int_t.disable ())
    f

(* -- configuration ---------------------------------------------------------- *)

let test_budget_validation () =
  with_clean_config (fun () ->
      Alcotest.check_raises "zero"
        (Invalid_argument "Int_telemetry.set_budget: header budget must be in 1..64, got 0")
        (fun () -> Int_t.set_budget 0);
      Alcotest.check_raises "over max"
        (Invalid_argument
           "Int_telemetry.set_budget: header budget must be in 1..64, got 65") (fun () ->
          Int_t.set_budget 65);
      Int_t.set_budget 8;
      Alcotest.(check int) "accepted" 8 (Int_t.budget ());
      Alcotest.(check int) "default" 4 Int_t.default_budget;
      Alcotest.(check int) "max" 64 Int_t.max_budget)

let test_configure_of_string () =
  with_clean_config (fun () ->
      Alcotest.check_raises "garbage"
        (Invalid_argument
           "DRACONIS_INT: expected 0 (disabled) or a header budget in 1..64, got \"banana\"")
        (fun () -> Int_t.configure_of_string "banana");
      Alcotest.check_raises "out of range"
        (Invalid_argument
           "DRACONIS_INT: expected 0 (disabled) or a header budget in 1..64, got \"65\"")
        (fun () -> Int_t.configure_of_string "65");
      Int_t.configure_of_string "6";
      Alcotest.(check bool) "enabled" true (Int_t.enabled ());
      Alcotest.(check int) "budget" 6 (Int_t.budget ());
      Int_t.configure_of_string "0";
      Alcotest.(check bool) "disabled" false (Int_t.enabled ()))

let test_apply_env () =
  with_clean_config (fun () ->
      Fun.protect
        ~finally:(fun () -> Unix.putenv "DRACONIS_INT" "0")
        (fun () ->
          Unix.putenv "DRACONIS_INT" "12";
          Int_t.apply_env ();
          Alcotest.(check bool) "enabled from env" true (Int_t.enabled ());
          Alcotest.(check int) "budget from env" 12 (Int_t.budget ());
          Unix.putenv "DRACONIS_INT" "0";
          Int_t.apply_env ();
          Alcotest.(check bool) "disabled from env" false (Int_t.enabled ())))

(* -- stamp stack ------------------------------------------------------------ *)

let commit_stamp ~stage ~level ~occupancy ~at stack =
  Int_t.begin_traversal ();
  Int_t.note_stage stage;
  Int_t.note_level level;
  Int_t.note_occupancy occupancy;
  Int_t.commit_traversal ~at stack

let test_stack_budget_and_lost () =
  with_clean_config (fun () ->
      Int_t.enable ~budget:2 ();
      let s = Int_t.ingress_stack ~sent_at:0 in
      Alcotest.(check int) "ingress depth" 1 (Int_t.stack_depth s);
      Alcotest.(check int) "ingress lost" 0 (Int_t.stack_lost s);
      let s = commit_stamp ~stage:Int_t.Submission ~level:0 ~occupancy:3 ~at:(Time.us 10) s in
      Alcotest.(check int) "second stamp stored" 2 (Int_t.stack_depth s);
      (* Budget exhausted: further commits are counted, not stored. *)
      let s = commit_stamp ~stage:Int_t.Request ~level:0 ~occupancy:2 ~at:(Time.us 20) s in
      let s = commit_stamp ~stage:Int_t.Swap ~level:1 ~occupancy:1 ~at:(Time.us 30) s in
      Alcotest.(check int) "depth capped at budget" 2 (Int_t.stack_depth s);
      Alcotest.(check int) "overflow counted in lost" 2 (Int_t.stack_lost s);
      match Int_t.stack_stamps s with
      | [ first; second ] ->
        Alcotest.(check string) "oldest first" "ingress"
          (Int_t.stage_to_string first.Int_t.stage);
        Alcotest.(check string) "then submission" "submission"
          (Int_t.stage_to_string second.Int_t.stage);
        Alcotest.(check int) "occupancy carried" 3 second.Int_t.occupancy;
        Alcotest.(check int) "level carried" 0 second.Int_t.level
      | stamps -> Alcotest.failf "expected 2 stored stamps, got %d" (List.length stamps))

let test_builder_lifecycle () =
  with_clean_config (fun () ->
      Int_t.enable ();
      let s = Int_t.ingress_stack ~sent_at:0 in
      Int_t.begin_traversal ();
      Alcotest.(check (option int)) "armed but nothing noted" None (Int_t.noted_occupancy ());
      Int_t.note_occupancy 7;
      Alcotest.(check (option int)) "noted" (Some 7) (Int_t.noted_occupancy ());
      let _ = Int_t.commit_traversal ~at:(Time.us 1) s in
      Alcotest.(check (option int)) "commit disarms" None (Int_t.noted_occupancy ());
      (* Notes outside an armed traversal are dropped. *)
      Int_t.note_occupancy 9;
      Alcotest.(check (option int)) "unarmed note ignored" None (Int_t.noted_occupancy ());
      Int_t.begin_traversal ();
      Alcotest.(check (option int)) "re-arm resets" None (Int_t.noted_occupancy ()))

(* -- host-side collector ---------------------------------------------------- *)

let delivered_stack () =
  let s = Int_t.ingress_stack ~sent_at:0 in
  let s = commit_stamp ~stage:Int_t.Submission ~level:0 ~occupancy:3 ~at:(Time.us 10) s in
  commit_stamp ~stage:Int_t.Request ~level:0 ~occupancy:2 ~at:(Time.us 150) s

let test_collector_accounting () =
  with_clean_config (fun () ->
      Int_t.enable ~budget:4 ();
      let c = Int_t.Collector.create ~window:(Time.us 100) () in
      Int_t.Collector.deliver c (delivered_stack ());
      Alcotest.(check int) "stacks" 1 (Int_t.Collector.stacks c);
      Alcotest.(check int) "stamps" 3 (Int_t.Collector.stamps c);
      Alcotest.(check int) "lost" 0 (Int_t.Collector.lost c);
      Alcotest.(check (option int)) "depth p99" (Some 3)
        (Int_t.Collector.depth_percentile c ~level:0 99.0);
      Alcotest.(check (option int)) "unseen level" None
        (Int_t.Collector.depth_percentile c ~level:5 99.0);
      Alcotest.(check (list (pair string int))) "chain"
        [ ("ingress>submission>request", 1) ]
        (Int_t.Collector.chains c);
      (* A stack that overflowed its budget carries its loss into the
         collector; a dropped stack is accounted separately. *)
      Int_t.set_budget 1;
      let s = Int_t.ingress_stack ~sent_at:0 in
      let s = commit_stamp ~stage:Int_t.Swap ~level:1 ~occupancy:1 ~at:(Time.us 20) s in
      Int_t.Collector.deliver c s;
      Alcotest.(check int) "overflow surfaces as lost" 1 (Int_t.Collector.lost c);
      Int_t.Collector.drop c (Int_t.ingress_stack ~sent_at:0);
      Alcotest.(check int) "dropped stack" 1 (Int_t.Collector.dropped_stacks c);
      Alcotest.(check int) "drop does not count stamps" 4 (Int_t.Collector.stamps c);
      (* The bucketed series steps at window boundaries: occupancy 3 at
         10us lands in bucket 0, occupancy 2 at 150us in bucket 1. *)
      let samples = ref [] in
      Int_t.Collector.emit_series c (fun ~at ~name v -> samples := (at, name, v) :: !samples);
      (match List.rev !samples with
      | (0, "int.depth.q0", 3) :: (at1, "int.depth.q0", 2) :: _ ->
        Alcotest.(check int) "second bucket start" (Time.us 100) at1
      | _ -> Alcotest.fail "unexpected depth series shape"))

let test_collector_rejects_bad_window () =
  Alcotest.check_raises "non-positive window"
    (Invalid_argument "Int_telemetry.Collector.create: window must be positive") (fun () ->
      ignore (Int_t.Collector.create ~window:0 ()))

let test_collector_json_section () =
  with_clean_config (fun () ->
      Int_t.enable ~budget:4 ();
      let c = Int_t.Collector.create ~window:(Time.us 100) () in
      Int_t.Collector.deliver c (delivered_stack ());
      let out = Int_t.Collector.to_json c in
      match Obs.Json.parse out with
      | Error msg -> Alcotest.failf "int section is not valid JSON: %s" msg
      | Ok json ->
        let num name =
          match Obs.Json.member name json with
          | Some n -> Option.get (Obs.Json.to_number n)
          | None -> Alcotest.failf "missing %S" name
        in
        Alcotest.(check (float 0.)) "stacks" 1.0 (num "stacks");
        Alcotest.(check (float 0.)) "stamps" 3.0 (num "stamps");
        Alcotest.(check (float 0.)) "budget" 4.0 (num "budget");
        (match Obs.Json.member "queues" json with
        | Some queues when Obs.Json.member "0" queues <> None -> ()
        | _ -> Alcotest.fail "queue 0 missing from section");
        (match Obs.Json.member "chains" json with
        | Some (Obs.Json.List (_ :: _)) -> ()
        | _ -> Alcotest.fail "chains missing from section"))

let test_ambient_collector () =
  with_clean_config (fun () ->
      Int_t.enable ();
      Alcotest.(check bool) "no ambient collector" true (Int_t.current_collector () = None);
      (* Must be a no-op, not a crash. *)
      Int_t.deliver_stack (Int_t.ingress_stack ~sent_at:0);
      Int_t.drop_stack (Int_t.ingress_stack ~sent_at:0);
      let c = Int_t.Collector.create () in
      Int_t.with_collector c (fun () ->
          Alcotest.(check bool) "installed" true (Int_t.current_collector () <> None);
          Int_t.deliver_stack (Int_t.ingress_stack ~sent_at:0));
      Alcotest.(check bool) "restored" true (Int_t.current_collector () = None);
      Alcotest.(check int) "ambient delivery counted" 1 (Int_t.Collector.stacks c))

(* -- offline occupancy re-check --------------------------------------------- *)

let consistent_section () =
  let open Obs.Int_report in
  {
    budget = 4;
    window_ns = Time.us 100;
    stacks = 2;
    dropped_stacks = 0;
    stamps = 4;
    lost = 0;
    stages =
      [ { sname = "ingress"; s_count = 2; s_p50 = 0; s_p99 = 0; s_max = 0 };
        { sname = "submission"; s_count = 2; s_p50 = 10; s_p99 = 12; s_max = 12 } ];
    queues =
      [ { qname = "q0"; samples = 3; qmax = 5; overall_p50 = 2; overall_p99 = 5;
          series =
            [ { b_at = 0; b_count = 2; b_p50 = 1; b_p99 = 2; b_max = 2 };
              { b_at = Time.us 100; b_count = 1; b_p50 = 5; b_p99 = 5; b_max = 5 } ] } ];
    banks = [];
    chains = [ ("ingress>submission", 2) ];
  }

let test_recheck_catches_inconsistency () =
  let open Obs.Int_report in
  Alcotest.(check (list string)) "consistent section passes" [] (recheck (consistent_section ()));
  (* Per-queue sample counts must re-derive from the bucketed series. *)
  let s = consistent_section () in
  let bad_samples =
    { s with queues = List.map (fun q -> { q with samples = q.samples + 1 }) s.queues }
  in
  Alcotest.(check bool) "sample drift detected" true (recheck bad_samples <> []);
  (* Per-stage stamp counts must sum to the section total. *)
  let bad_stamps = { s with stamps = s.stamps + 1 } in
  Alcotest.(check bool) "stage sum drift detected" true (recheck bad_stamps <> []);
  (* A bucket max above the queue max means the series and the totals
     disagree about what the switch observed. *)
  let bad_max = { s with queues = List.map (fun q -> { q with qmax = 1 }) s.queues } in
  Alcotest.(check bool) "max drift detected" true (recheck bad_max <> [])

(* -- sink drain tie-break --------------------------------------------------- *)

let test_sink_drain_tiebreak () =
  Obs.Sink.enable ();
  Fun.protect
    ~finally:(fun () -> Obs.Sink.disable ())
    (fun () ->
      (* Same label, same event count: only the first-event timestamp can
         order them.  Deposit late-starting first to prove drain does not
         fall back to deposit order. *)
      let late = Obs.Recorder.create ~label:"dup" () in
      Obs.Recorder.instant late ~at:(Time.us 50) ~track:"t" "e";
      Obs.Recorder.instant late ~at:(Time.us 60) ~track:"t" "e";
      let early = Obs.Recorder.create ~label:"dup" () in
      Obs.Recorder.instant early ~at:(Time.us 10) ~track:"t" "e";
      Obs.Recorder.instant early ~at:(Time.us 60) ~track:"t" "e";
      Obs.Sink.put late;
      Obs.Sink.put early;
      match Obs.Sink.drain () with
      | [ a; b ] ->
        Alcotest.(check int) "earliest first event first" (Time.us 10)
          (Obs.Recorder.first_event_at a);
        Alcotest.(check int) "latest first event second" (Time.us 50)
          (Obs.Recorder.first_event_at b)
      | runs -> Alcotest.failf "expected 2 recorders, got %d" (List.length runs))

(* -- end to end: run -> dump -> reload -> recheck ---------------------------- *)

let test_end_to_end_dump_roundtrip () =
  with_clean_config (fun () ->
      Int_t.enable ();
      Obs.Sink.enable ();
      Fun.protect
        ~finally:(fun () -> Obs.Sink.disable ())
        (fun () ->
          let spec =
            { H.Systems.workers = 4; executors_per_worker = 4; clients = 1; seed = 7 }
          in
          let system = H.Systems.draconis spec in
          let horizon = Time.ms 10 in
          let driver =
            H.Exp_common.synthetic_driver Synthetic.Fixed_100us ~rate_tps:40_000.0 ~horizon
          in
          ignore (H.Runner.run system ~driver ~load_tps:40_000.0 ~horizon ());
          let runs = Obs.Sink.drain () in
          let r = List.hd runs in
          (match Obs.Recorder.int_telemetry r with
          | None -> Alcotest.fail "run carries no INT section"
          | Some _ -> ());
          let path = Filename.temp_file "draconis_int" ".json" in
          Fun.protect
            ~finally:(fun () -> Sys.remove path)
            (fun () ->
              Obs.Dump.write_metrics ~path runs;
              match Obs.Int_report.load ~path with
              | Error msg -> Alcotest.failf "reload failed: %s" msg
              | Ok [ run ] -> (
                match run.Obs.Int_report.int_ with
                | None -> Alcotest.fail "reloaded run lost its INT section"
                | Some section ->
                  Alcotest.(check (list string)) "occupancy re-check passes" []
                    (Obs.Int_report.recheck section);
                  Alcotest.(check bool) "stacks observed" true
                    (section.Obs.Int_report.stacks > 0);
                  Alcotest.(check bool) "depth series observed" true
                    (List.exists
                       (fun q -> q.Obs.Int_report.series <> [])
                       section.Obs.Int_report.queues))
              | Ok runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs))))

let suite =
  [
    Alcotest.test_case "budget validation" `Quick test_budget_validation;
    Alcotest.test_case "configure of string" `Quick test_configure_of_string;
    Alcotest.test_case "apply env" `Quick test_apply_env;
    Alcotest.test_case "stack budget and lost" `Quick test_stack_budget_and_lost;
    Alcotest.test_case "builder lifecycle" `Quick test_builder_lifecycle;
    Alcotest.test_case "collector accounting" `Quick test_collector_accounting;
    Alcotest.test_case "collector rejects bad window" `Quick
      test_collector_rejects_bad_window;
    Alcotest.test_case "collector json section" `Quick test_collector_json_section;
    Alcotest.test_case "ambient collector" `Quick test_ambient_collector;
    Alcotest.test_case "recheck catches inconsistency" `Quick
      test_recheck_catches_inconsistency;
    Alcotest.test_case "sink drain tie-break" `Quick test_sink_drain_tiebreak;
    Alcotest.test_case "end-to-end dump round trip" `Quick test_end_to_end_dump_roundtrip;
  ]
