(* Tests for the tracing facility and its integration points. *)

open Draconis_sim
open Draconis_proto
open Draconis

let test_disabled_by_default () =
  Trace.disable ();
  Trace.emit ~at:1 Trace.Host (lazy (Alcotest.fail "must not force when disabled"));
  Alcotest.(check bool) "off" false (Trace.enabled ())

let test_ring_buffer_bounds () =
  let (), captured =
    Trace.with_capture ~capacity:4 (fun () ->
        for i = 1 to 10 do
          Trace.emit ~at:i Trace.Host (lazy (Printf.sprintf "event %d" i))
        done)
  in
  Alcotest.(check int) "bounded to capacity" 4 (List.length captured);
  (match captured with
  | { Trace.message = "event 7"; _ } :: _ -> ()
  | _ -> Alcotest.fail "oldest surviving record should be event 7");
  Alcotest.(check bool) "off after capture" false (Trace.enabled ())

let test_recent_and_counts () =
  Trace.enable ~capacity:16 ();
  for i = 1 to 5 do
    Trace.emit ~at:i Trace.Queue (lazy (string_of_int i))
  done;
  Alcotest.(check int) "emitted" 5 (Trace.emitted ());
  (match Trace.recent 2 with
  | [ { Trace.message = "4"; _ }; { Trace.message = "5"; _ } ] -> ()
  | _ -> Alcotest.fail "recent 2 wrong");
  Trace.clear ();
  Alcotest.(check int) "cleared" 0 (List.length (Trace.records ()));
  Trace.disable ()

let test_cluster_emits_traces () =
  let (), captured =
    Trace.with_capture ~capacity:65536 (fun () ->
        let cluster =
          Cluster.create
            { Cluster.default_config with workers = 2; executors_per_worker = 2; clients = 1 }
        in
        Cluster.start cluster;
        ignore
          (Client.submit_job (Cluster.client cluster 0)
             [ Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 50) () ]);
        ignore (Cluster.run_until_drained cluster ~deadline:(Time.s 1)))
  in
  let fabric_events =
    List.filter (fun r -> r.Trace.category = Trace.Fabric) captured
  in
  Alcotest.(check bool) "fabric sends traced" true (List.length fabric_events > 3);
  let rendered = Format.asprintf "%a" Trace.dump () in
  ignore rendered;
  (* Timestamps are monotone within the ring. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Trace.at <= b.Trace.at && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps ordered" true (monotone captured)

let test_dump_format () =
  let (), _ =
    Trace.with_capture (fun () ->
        Trace.emit ~at:(Time.us 3) Trace.Pipeline (lazy "hello"))
  in
  Trace.enable ();
  Trace.emit ~at:(Time.us 3) Trace.Pipeline (lazy "hello");
  let out = Format.asprintf "%a" Trace.dump () in
  Trace.disable ();
  Alcotest.(check bool) "category in dump" true
    (Astring.String.is_infix ~affix:"pipeline" out);
  Alcotest.(check bool) "message in dump" true
    (Astring.String.is_infix ~affix:"hello" out)

let test_domain_isolation () =
  Trace.enable ~capacity:16 ();
  Trace.emit ~at:1 Trace.Host (lazy "main");
  let spawned =
    Domain.spawn (fun () ->
        (* Trace state is domain-local: a fresh domain starts disabled
           with an empty ring, and nothing it emits reaches ours. *)
        let started_off = not (Trace.enabled ()) in
        Trace.emit ~at:2 Trace.Host (lazy "other");
        (started_off, List.length (Trace.records ())))
  in
  let started_off, spawned_records = Domain.join spawned in
  Alcotest.(check bool) "fresh domain starts disabled" true started_off;
  Alcotest.(check int) "disabled emit records nothing" 0 spawned_records;
  Alcotest.(check int) "main ring unaffected" 1 (List.length (Trace.records ()));
  Trace.disable ()

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "per-domain isolation" `Quick test_domain_isolation;
    Alcotest.test_case "ring buffer bounds" `Quick test_ring_buffer_bounds;
    Alcotest.test_case "recent and counters" `Quick test_recent_and_counts;
    Alcotest.test_case "cluster emits traces" `Quick test_cluster_emits_traces;
    Alcotest.test_case "dump format" `Quick test_dump_format;
  ]
