(* Tests for the P4-compatible circular queue — the paper's central data
   structure.  Covers FIFO semantics, the full/empty optimistic-increment
   mistakes and their repairs, repair-flag behaviour, task swapping, and
   a model-based property test that drives random operation sequences
   against a plain functional queue model. *)

open Draconis_net
open Draconis_proto
open Draconis

let ctx () = Draconis_p4.Packet_ctx.create ()

let entry ?(skip = 0) n =
  Entry.make ~skip
    ~task:(Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(1000 * n) ())
    ~client:(Addr.Host 99) ()

let tid (e : Entry.t) = e.task.id.tid

let enqueue_ok q e =
  match Circular_queue.enqueue q (ctx ()) e with
  | Circular_queue.Enqueued { retrieve_repair; _ } -> retrieve_repair
  | Circular_queue.Rejected _ -> Alcotest.fail "unexpected rejection"

let dequeue_ok q =
  match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Dequeued { entry; _ } -> entry
  | Circular_queue.Empty -> Alcotest.fail "unexpected empty"
  | Circular_queue.Repair_pending -> Alcotest.fail "unexpected repair-pending"

(* -- basic FIFO ------------------------------------------------------------- *)

let test_fifo_order () =
  let q = Circular_queue.create ~name:"q" ~capacity:8 () in
  List.iter (fun n -> ignore (enqueue_ok q (entry n))) [ 1; 2; 3 ];
  Alcotest.(check int) "occupancy" 3 (Circular_queue.occupancy q);
  Alcotest.(check (list int)) "FIFO" [ 1; 2; 3 ]
    (List.init 3 (fun _ -> tid (dequeue_ok q)));
  Alcotest.(check int) "empty occupancy" 0 (Circular_queue.occupancy q)

let test_entry_payload_preserved () =
  let q = Circular_queue.create ~name:"q" ~capacity:4 () in
  let original =
    Entry.make ~skip:7
      ~task:
        (Task.make ~uid:3 ~jid:9 ~tid:1 ~tprops:(Task.Locality [ 2; 5 ])
           ~fn_id:Task.Fn.data_task ~fn_par:123_456 ())
      ~client:(Addr.Host 42) ()
  in
  ignore (enqueue_ok q original);
  Alcotest.(check bool) "entry round-trips through registers" true
    (Entry.equal original (dequeue_ok q))

let test_wraparound () =
  let q = Circular_queue.create ~name:"q" ~capacity:3 () in
  (* Push/pop more than capacity to force slot reuse. *)
  for round = 0 to 9 do
    ignore (enqueue_ok q (entry round));
    Alcotest.(check int) "drains in order" round (tid (dequeue_ok q))
  done

(* -- empty-queue behaviour (lazy retrieve repair, §4.5) ----------------------- *)

let test_empty_dequeue_and_lazy_repair () =
  let q = Circular_queue.create ~name:"q" ~capacity:4 () in
  (* Dequeue on empty: optimistic increment overruns. *)
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Empty -> ()
  | _ -> Alcotest.fail "expected Empty");
  Alcotest.(check int) "retrieve_ptr overran" 1 (Circular_queue.peek_retrieve_ptr q);
  Alcotest.(check bool) "no flag yet (lazy)" false
    (Circular_queue.peek_retrieve_repair_flag q);
  (* Next enqueue detects the overrun and requests a repair. *)
  (match Circular_queue.enqueue q (ctx ()) (entry 1) with
  | Circular_queue.Enqueued { index; retrieve_repair = Some target } ->
    Alcotest.(check int) "repair targets the new task" index target
  | _ -> Alcotest.fail "expected enqueue with retrieve repair");
  Alcotest.(check bool) "flag set" true (Circular_queue.peek_retrieve_repair_flag q);
  (* While the repair is in flight, dequeues answer Repair_pending. *)
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Repair_pending -> ()
  | _ -> Alcotest.fail "expected Repair_pending");
  (* The repair packet lands. *)
  Circular_queue.apply_repair_retrieve q (ctx ()) ~target:0;
  Alcotest.(check bool) "flag cleared" false (Circular_queue.peek_retrieve_repair_flag q);
  Alcotest.(check int) "pointer repaired" 0 (Circular_queue.peek_retrieve_ptr q);
  (* And the queued task is now retrievable. *)
  Alcotest.(check int) "task recovered" 1 (tid (dequeue_ok q))

let test_only_one_retrieve_repair () =
  let q = Circular_queue.create ~name:"q" ~capacity:4 () in
  ignore (Circular_queue.dequeue q (ctx ()));
  ignore (Circular_queue.dequeue q (ctx ()));
  (* First enqueue launches the repair... *)
  (match Circular_queue.enqueue q (ctx ()) (entry 1) with
  | Circular_queue.Enqueued { retrieve_repair = Some _; _ } -> ()
  | _ -> Alcotest.fail "first enqueue should repair");
  (* ...and while it is in flight further submissions store normally
     (true occupancy 1 < 4, read from the repair target the flag word
     carries) but never launch a second retrieve repair. *)
  match Circular_queue.enqueue q (ctx ()) (entry 2) with
  | Circular_queue.Enqueued { retrieve_repair = None; _ } -> ()
  | Circular_queue.Enqueued { retrieve_repair = Some _; _ } ->
    Alcotest.fail "second enqueue must not launch another retrieve repair"
  | Circular_queue.Rejected _ ->
    Alcotest.fail "room remains during the repair window: store must proceed"

let test_no_overwrite_during_retrieve_repair () =
  (* Capacity 1 makes the hazard sharp: while a retrieve repair is in
     flight the retrieve pointer is inflated, so the naive pointer
     occupancy reads 0 even though the slot holds a live task.  The
     true occupancy (from the repair target in the flag word) must
     reject the store instead of overwriting the live slot. *)
  let q = Circular_queue.create ~name:"q" ~capacity:1 () in
  ignore (enqueue_ok q (entry 1));
  Alcotest.(check int) "first task drains" 1 (tid (dequeue_ok q));
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Empty -> ()
  | _ -> Alcotest.fail "expected Empty overrun");
  let target =
    match Circular_queue.enqueue q (ctx ()) (entry 2) with
    | Circular_queue.Enqueued { retrieve_repair = Some target; _ } -> target
    | _ -> Alcotest.fail "overrun-detecting enqueue should store and repair"
  in
  let add_target =
    match Circular_queue.enqueue q (ctx ()) (entry 3) with
    | Circular_queue.Rejected { add_repair = Some t; retrieve_repair = None } -> t
    | Circular_queue.Rejected _ -> Alcotest.fail "rejection must launch the add repair"
    | Circular_queue.Enqueued _ ->
      Alcotest.fail "store during the window would overwrite the live slot"
  in
  Circular_queue.apply_repair_retrieve q (ctx ()) ~target;
  Circular_queue.apply_repair_add q (ctx ()) ~target:add_target;
  (* The live task survived the window and drains; the queue then
     accepts the bounced task on resubmission. *)
  Alcotest.(check int) "live task survives" 2 (tid (dequeue_ok q));
  ignore (enqueue_ok q (entry 3));
  Alcotest.(check int) "bounced task resubmits" 3 (tid (dequeue_ok q))

(* -- full-queue behaviour (add repair, §4.5/§4.7.1) ---------------------------- *)

let fill q n =
  for i = 1 to n do
    ignore (enqueue_ok q (entry i))
  done

let test_full_rejection_and_repair () =
  let q = Circular_queue.create ~name:"q" ~capacity:2 () in
  fill q 2;
  (* Full: the mistaken increment must be repaired by this packet. *)
  let repair_target =
    match Circular_queue.enqueue q (ctx ()) (entry 3) with
    | Circular_queue.Rejected { add_repair = Some target; _ } -> target
    | _ -> Alcotest.fail "expected rejection with repair"
  in
  Alcotest.(check int) "add_ptr inflated" 3 (Circular_queue.peek_add_ptr q);
  Alcotest.(check bool) "add flag set" true (Circular_queue.peek_add_repair_flag q);
  (* A second full submission sees the flag: rejected, no second repair. *)
  (match Circular_queue.enqueue q (ctx ()) (entry 4) with
  | Circular_queue.Rejected { add_repair = None; _ } -> ()
  | _ -> Alcotest.fail "second rejection must not repair");
  (* Repair lands: pointer restored, flag cleared. *)
  Circular_queue.apply_repair_add q (ctx ()) ~target:repair_target;
  Alcotest.(check int) "add_ptr restored" 2 (Circular_queue.peek_add_ptr q);
  Alcotest.(check bool) "flag cleared" false (Circular_queue.peek_add_repair_flag q);
  (* Queue still serves its 2 tasks, in order. *)
  Alcotest.(check int) "head" 1 (tid (dequeue_ok q));
  Alcotest.(check int) "second" 2 (tid (dequeue_ok q))

let test_enqueue_while_add_repair_pending_rejected () =
  let q = Circular_queue.create ~name:"q" ~capacity:2 () in
  fill q 2;
  ignore (Circular_queue.enqueue q (ctx ()) (entry 3));
  (* Drain one slot: space exists, but the pending repair makes the
     pointer untrustworthy — submissions are still bounced (§4.7.1). *)
  ignore (dequeue_ok q);
  (match Circular_queue.enqueue q (ctx ()) (entry 4) with
  | Circular_queue.Rejected { add_repair = None; _ } -> ()
  | _ -> Alcotest.fail "must reject while add repair pending");
  Circular_queue.apply_repair_add q (ctx ()) ~target:2;
  (* Now the slot is usable again. *)
  ignore (enqueue_ok q (entry 5));
  Alcotest.(check int) "drains old then new" 2 (tid (dequeue_ok q));
  Alcotest.(check int) "new task" 5 (tid (dequeue_ok q))

(* -- stamp validity check -------------------------------------------------------- *)

let test_stale_slot_not_returned () =
  let q = Circular_queue.create ~name:"q" ~capacity:2 () in
  fill q 2;
  (* Inflate add_ptr via a full-queue mistake; do NOT apply the repair yet. *)
  ignore (Circular_queue.enqueue q (ctx ()) (entry 3));
  (* Drain both real tasks. *)
  ignore (dequeue_ok q);
  ignore (dequeue_ok q);
  (* retrieve_ptr = 2 < add_ptr = 3, but slot 2 mod 2 holds stale data;
     the stamp check must catch it. *)
  match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Empty -> ()
  | Circular_queue.Dequeued _ -> Alcotest.fail "returned a stale slot!"
  | Circular_queue.Repair_pending -> Alcotest.fail "unexpected repair state"

(* -- swapping (§5.1) --------------------------------------------------------------- *)

let test_swap_exchanges_entries () =
  let q = Circular_queue.create ~name:"q" ~capacity:8 () in
  fill q 3;
  (* Swap a travelling task with the task at index 1. *)
  let travelling = entry ~skip:5 42 in
  (match Circular_queue.swap q (ctx ()) ~index:1 travelling with
  | Circular_queue.Swapped popped -> Alcotest.(check int) "old occupant" 2 (tid popped)
  | Circular_queue.Slot_invalid -> Alcotest.fail "slot should be valid");
  (* Pointers untouched. *)
  Alcotest.(check int) "retrieve_ptr unchanged" 0 (Circular_queue.peek_retrieve_ptr q);
  Alcotest.(check int) "add_ptr unchanged" 3 (Circular_queue.peek_add_ptr q);
  (* Queue order now 1, 42, 3; skip counter preserved through registers. *)
  Alcotest.(check int) "head" 1 (tid (dequeue_ok q));
  let swapped_in = dequeue_ok q in
  Alcotest.(check int) "swapped task" 42 (tid swapped_in);
  Alcotest.(check int) "skip preserved" 5 swapped_in.Entry.skip;
  Alcotest.(check int) "tail" 3 (tid (dequeue_ok q))

let test_swap_invalid_slot () =
  let q = Circular_queue.create ~name:"q" ~capacity:4 () in
  fill q 1;
  (match Circular_queue.swap q (ctx ()) ~index:3 (entry 9) with
  | Circular_queue.Slot_invalid -> ()
  | Circular_queue.Swapped _ -> Alcotest.fail "empty slot must be invalid");
  (* The probe must not corrupt the pending task. *)
  Alcotest.(check int) "pending task intact" 1 (tid (dequeue_ok q))

let test_read_pointers () =
  let q = Circular_queue.create ~name:"q" ~capacity:4 () in
  fill q 2;
  ignore (dequeue_ok q);
  let add_ptr, retrieve_ptr = Circular_queue.read_pointers q (ctx ()) in
  Alcotest.(check (pair int int)) "pointers" (2, 1) (add_ptr, retrieve_ptr)

let test_peek_entry () =
  let q = Circular_queue.create ~name:"q" ~capacity:4 () in
  fill q 1;
  (match Circular_queue.peek_entry q ~index:0 with
  | Some e -> Alcotest.(check int) "peek sees task" 1 (tid e)
  | None -> Alcotest.fail "expected entry");
  Alcotest.(check bool) "empty slot peeks None" true
    (Circular_queue.peek_entry q ~index:1 = None)

let test_register_bits_accounting () =
  let q = Circular_queue.create ~name:"q" ~capacity:100 () in
  (* 11 word arrays + stamp array, each 100 cells, plus 4 single cells. *)
  Alcotest.(check int) "register bits" ((12 * 100 * 32) + (4 * 32))
    (Circular_queue.register_bits q)

let test_create_validation () =
  match Circular_queue.create ~name:"bad" ~capacity:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must raise"

(* -- model-based property test ---------------------------------------------------- *)

(* Drive random enqueue/dequeue sequences (applying requested repairs
   immediately, as the pipeline's recirculation would within ~1us) and
   compare against a plain FIFO model. *)
let prop_matches_fifo_model =
  QCheck.Test.make ~name:"circular queue behaves as a bounded FIFO under repairs"
    ~count:300
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 1 200) bool))
    (fun (capacity, ops) ->
      let q = Circular_queue.create ~name:"model" ~capacity () in
      let model = Queue.create () in
      let next = ref 0 in
      let ok = ref true in
      List.iter
        (fun is_enqueue ->
          if is_enqueue then begin
            incr next;
            let e = entry !next in
            match Circular_queue.enqueue q (ctx ()) e with
            | Circular_queue.Enqueued { retrieve_repair; _ } ->
              if Queue.length model >= capacity then ok := false;
              Queue.add !next model;
              (match retrieve_repair with
              | Some target -> Circular_queue.apply_repair_retrieve q (ctx ()) ~target
              | None -> ())
            | Circular_queue.Rejected { add_repair; _ } -> (
              if Queue.length model < capacity then ok := false;
              match add_repair with
              | Some target -> Circular_queue.apply_repair_add q (ctx ()) ~target
              | None -> ())
          end
          else begin
            match Circular_queue.dequeue q (ctx ()) with
            | Circular_queue.Dequeued { entry = e; _ } -> (
              match Queue.take_opt model with
              | Some expected -> if tid e <> expected then ok := false
              | None -> ok := false)
            | Circular_queue.Empty -> if not (Queue.is_empty model) then ok := false
            | Circular_queue.Repair_pending -> ok := false
          end)
        ops;
      !ok && Circular_queue.occupancy q = Queue.length model)

(* With repairs applied immediately, every data-path op leaves the
   registers consistent: pointers never differ by more than capacity. *)
let prop_pointer_invariant =
  QCheck.Test.make ~name:"pointer gap never exceeds capacity (repairs applied)"
    ~count:200
    QCheck.(pair (int_range 1 6) (list_of_size (Gen.int_range 1 100) bool))
    (fun (capacity, ops) ->
      let q = Circular_queue.create ~name:"inv" ~capacity () in
      let ok = ref true in
      List.iter
        (fun is_enqueue ->
          (if is_enqueue then begin
             match Circular_queue.enqueue q (ctx ()) (entry 1) with
             | Circular_queue.Enqueued { retrieve_repair = Some target; _ } ->
               Circular_queue.apply_repair_retrieve q (ctx ()) ~target
             | Circular_queue.Rejected { add_repair = Some target; _ } ->
               Circular_queue.apply_repair_add q (ctx ()) ~target
             | Circular_queue.Enqueued { retrieve_repair = None; _ }
             | Circular_queue.Rejected { add_repair = None; _ } ->
               ()
           end
           else ignore (Circular_queue.dequeue q (ctx ())));
          let gap =
            Circular_queue.peek_add_ptr q - Circular_queue.peek_retrieve_ptr q
          in
          if gap > capacity then ok := false)
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "FIFO order" `Quick test_fifo_order;
    Alcotest.test_case "entry payload preserved" `Quick test_entry_payload_preserved;
    Alcotest.test_case "wraparound slot reuse" `Quick test_wraparound;
    Alcotest.test_case "empty dequeue + lazy retrieve repair" `Quick
      test_empty_dequeue_and_lazy_repair;
    Alcotest.test_case "single retrieve repair in flight" `Quick
      test_only_one_retrieve_repair;
    Alcotest.test_case "no overwrite during retrieve repair" `Quick
      test_no_overwrite_during_retrieve_repair;
    Alcotest.test_case "full rejection + add repair" `Quick test_full_rejection_and_repair;
    Alcotest.test_case "reject while add repair pending" `Quick
      test_enqueue_while_add_repair_pending_rejected;
    Alcotest.test_case "stale slot caught by stamp" `Quick test_stale_slot_not_returned;
    Alcotest.test_case "swap exchanges entries" `Quick test_swap_exchanges_entries;
    Alcotest.test_case "swap into invalid slot" `Quick test_swap_invalid_slot;
    Alcotest.test_case "read_pointers" `Quick test_read_pointers;
    Alcotest.test_case "peek_entry" `Quick test_peek_entry;
    Alcotest.test_case "register bits accounting" `Quick test_register_bits_accounting;
    Alcotest.test_case "create validation" `Quick test_create_validation;
    QCheck_alcotest.to_alcotest prop_matches_fifo_model;
    QCheck_alcotest.to_alcotest prop_pointer_invariant;
  ]
