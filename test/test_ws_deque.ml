(* Chase-Lev work-stealing deque: sequential semantics, and the
   progress/consistency contract under real concurrency — every pushed
   element comes back from exactly one [pop] or [steal], including while
   the owner is growing the buffer mid-stream. *)

module H = Draconis_harness

let test_lifo_owner () =
  let d = H.Ws_deque.create () in
  for i = 0 to 9 do
    H.Ws_deque.push d i
  done;
  Alcotest.(check int) "size" 10 (H.Ws_deque.size d);
  for i = 9 downto 0 do
    Alcotest.(check (option int)) "pop LIFO" (Some i) (H.Ws_deque.pop d)
  done;
  Alcotest.(check (option int)) "empty pop" None (H.Ws_deque.pop d);
  Alcotest.(check (option int)) "empty steal" None (H.Ws_deque.steal d)

let test_steal_fifo () =
  let d = H.Ws_deque.create () in
  for i = 0 to 4 do
    H.Ws_deque.push d i
  done;
  (* Thieves take from the opposite end: oldest first. *)
  for i = 0 to 4 do
    Alcotest.(check (option int)) "steal FIFO" (Some i) (H.Ws_deque.steal d)
  done

let test_grow_preserves () =
  (* size_exponent 1 = capacity 2, so 100 pushes force repeated grows. *)
  let d = H.Ws_deque.create ~size_exponent:1 () in
  for i = 0 to 99 do
    H.Ws_deque.push d i
  done;
  Alcotest.(check bool) "capacity grew" true (H.Ws_deque.capacity d >= 100);
  let seen = ref [] in
  let rec drain () =
    match H.Ws_deque.pop d with
    | Some v ->
      seen := v :: !seen;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "all elements, order kept" (List.init 100 Fun.id)
    !seen

(* The concurrent harness behind the QCheck properties: one owner domain
   interleaves pushes (elements [0..n-1]) with [owner_pops] pops;
   [thieves] domains steal until the owner is done and the deque is
   drained.  Returns the sorted union of everything popped and stolen —
   the contract says it must be exactly [0..n-1]. *)
let run_owner_vs_thieves ~size_exponent ~n ~owner_pops ~thieves ~seed =
  let d = H.Ws_deque.create ~size_exponent () in
  let done_ = Atomic.make false in
  let popped = ref [] in
  let stolen = Array.make thieves [] in
  let workers =
    Array.init thieves (fun w ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            let rec go () =
              match H.Ws_deque.steal d with
              | Some v ->
                acc := v :: !acc;
                go ()
              | None -> if not (Atomic.get done_) then go ()
            in
            go ();
            (* One last sweep after the owner finished so nothing is
               stranded between the done flag and the final steal. *)
            let rec sweep () =
              match H.Ws_deque.steal d with
              | Some v ->
                acc := v :: !acc;
                sweep ()
              | None -> ()
            in
            sweep ();
            stolen.(w) <- !acc))
  in
  let rng = Random.State.make [| seed |] in
  let pops_left = ref owner_pops in
  for i = 0 to n - 1 do
    H.Ws_deque.push d i;
    if !pops_left > 0 && Random.State.int rng 4 = 0 then begin
      decr pops_left;
      match H.Ws_deque.pop d with
      | Some v -> popped := v :: !popped
      | None -> ()
    end
  done;
  let rec drain () =
    match H.Ws_deque.pop d with
    | Some v ->
      popped := v :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  Atomic.set done_ true;
  Array.iter Domain.join workers;
  (* The owner can race a final steal: drain once more. *)
  drain ();
  List.sort compare
    (Array.fold_left (fun acc l -> l @ acc) !popped stolen)

let prop_no_loss_no_dup =
  QCheck.Test.make ~count:30
    ~name:"owner push/pop vs concurrent stealers loses and duplicates nothing"
    QCheck.(triple (int_range 1 400) (int_range 0 100) small_nat)
    (fun (n, owner_pops, seed) ->
      let got =
        run_owner_vs_thieves ~size_exponent:2 ~n ~owner_pops ~thieves:2 ~seed
      in
      got = List.init n Fun.id)

let prop_steal_under_resize =
  QCheck.Test.make ~count:20
    ~name:"steals racing buffer grows lose and duplicate nothing"
    QCheck.(pair (int_range 50 600) small_nat)
    (fun (n, seed) ->
      (* Capacity 2 start: nearly every push early on grows the buffer
         while the thieves are mid-steal. *)
      let got =
        run_owner_vs_thieves ~size_exponent:1 ~n ~owner_pops:0 ~thieves:3 ~seed
      in
      got = List.init n Fun.id)

(* Team batches must be execution-order independent: the set of effects
   (here: each thunk records its index, possibly from a stolen slot) is
   the same for every team size, across repeated epochs on one team. *)
let test_team_size_independence () =
  let batch = 97 in
  let run_with size =
    let team = H.Pool.Team.create ~size in
    Fun.protect
      ~finally:(fun () -> H.Pool.Team.shutdown team)
      (fun () ->
        let out = ref [] in
        for epoch = 0 to 2 do
          let slots = Array.make batch (-1) in
          H.Pool.Team.run team
            (Array.init batch (fun i () -> slots.(i) <- (epoch * batch) + i));
          out := Array.to_list slots :: !out
        done;
        List.rev !out)
  in
  let reference = run_with 1 in
  List.iter
    (fun size ->
      Alcotest.(check (list (list int)))
        (Printf.sprintf "team size %d matches size 1" size)
        reference (run_with size))
    [ 2; 3 ]

let suite =
  [
    Alcotest.test_case "owner LIFO" `Quick test_lifo_owner;
    Alcotest.test_case "thief FIFO" `Quick test_steal_fifo;
    Alcotest.test_case "grow preserves contents" `Quick test_grow_preserves;
    QCheck_alcotest.to_alcotest prop_no_loss_no_dup;
    QCheck_alcotest.to_alcotest prop_steal_under_resize;
    Alcotest.test_case "team is size-independent" `Quick
      test_team_size_independence;
  ]
