(* Tests for Time, Rng, Dist, and the Engine event loop. *)

open Draconis_sim

(* -- Time ------------------------------------------------------------------ *)

let test_time_units () =
  Alcotest.(check int) "us" 1_000 (Time.us 1);
  Alcotest.(check int) "ms" 1_000_000 (Time.ms 1);
  Alcotest.(check int) "s" 1_000_000_000 (Time.s 1);
  Alcotest.(check int) "us_f rounds" 1_500 (Time.us_f 1.5);
  Alcotest.(check (float 1e-9)) "to_us" 2.5 (Time.to_us 2_500);
  Alcotest.(check (float 1e-9)) "to_s" 1.0 (Time.to_s (Time.s 1))

let test_time_pp () =
  let render t = Format.asprintf "%a" Time.pp t in
  Alcotest.(check string) "ns" "42ns" (render 42);
  Alcotest.(check string) "us" "4.20us" (render 4_200);
  Alcotest.(check string) "ms" "3.50ms" (render 3_500_000);
  Alcotest.(check string) "s" "2.000s" (render (Time.s 2))

(* -- Rng -------------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create ~seed:3 in
  let child = Rng.split parent in
  Alcotest.(check bool) "split differs from parent" false
    (Rng.bits64 parent = Rng.bits64 child)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:11 in
  for _ = 1 to 1_000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 1_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let prop_rng_int_covers =
  QCheck.Test.make ~name:"Rng.int eventually hits every residue" ~count:20
    QCheck.(int_range 2 8)
    (fun bound ->
      let rng = Rng.create ~seed:bound in
      let seen = Array.make bound false in
      for _ = 1 to 1_000 do
        seen.(Rng.int rng bound) <- true
      done;
      Array.for_all Fun.id seen)

(* -- Dist -------------------------------------------------------------------- *)

let test_dist_constant () =
  let rng = Rng.create ~seed:1 in
  Alcotest.(check int) "constant" 42 (Dist.constant 42 rng)

let test_dist_uniform_bounds () =
  let rng = Rng.create ~seed:2 in
  let dist = Dist.uniform ~lo:10 ~hi:20 in
  for _ = 1 to 500 do
    let v = dist rng in
    if v < 10 || v > 20 then Alcotest.fail "uniform out of bounds"
  done

let test_dist_exponential_mean () =
  let rng = Rng.create ~seed:3 in
  let mean = Dist.mean_estimate (Dist.exponential ~mean:250_000) rng ~n:50_000 in
  Alcotest.(check bool) "mean within 5%" true (abs_float (mean -. 250_000.) < 12_500.)

let test_dist_bimodal_mix () =
  let rng = Rng.create ~seed:4 in
  let dist = Dist.bimodal (100, 0.5) 500 in
  let short = ref 0 in
  for _ = 1 to 10_000 do
    if dist rng = 100 then incr short
  done;
  Alcotest.(check bool) "roughly half short" true (abs (!short - 5_000) < 400)

let test_dist_pareto_min () =
  let rng = Rng.create ~seed:5 in
  let dist = Dist.pareto ~scale:1_000 ~alpha:1.5 in
  for _ = 1 to 1_000 do
    if dist rng < 1_000 then Alcotest.fail "pareto below scale"
  done

let prop_dist_nonnegative =
  QCheck.Test.make ~name:"all distributions sample non-negative durations"
    ~count:100
    QCheck.(pair (int_range 1 1_000_000) (int_range 0 5))
    (fun (mean, pick) ->
      let rng = Rng.create ~seed:(mean + pick) in
      let dist =
        match pick with
        | 0 -> Dist.constant mean
        | 1 -> Dist.uniform ~lo:0 ~hi:mean
        | 2 -> Dist.exponential ~mean
        | 3 -> Dist.lognormal ~mu:(log (float_of_int mean)) ~sigma:1.0
        | 4 -> Dist.pareto ~scale:(max 1 mean) ~alpha:1.2
        | _ -> Dist.scale 0.5 (Dist.constant mean)
      in
      let ok = ref true in
      for _ = 1 to 50 do
        if dist rng < 0 then ok := false
      done;
      !ok)

(* -- Engine ------------------------------------------------------------------ *)

let test_engine_order () =
  let engine = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule engine ~after:30 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule engine ~after:10 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule engine ~after:20 (fun () -> log := 2 :: !log));
  Engine.run engine;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Engine.now engine)

let test_engine_fifo_ties () =
  let engine = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule engine ~after:10 (fun () -> log := i :: !log))
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "ties in submission order" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_schedule () =
  let engine = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule engine ~after:5 (fun () ->
         fired := `Outer :: !fired;
         ignore (Engine.schedule engine ~after:5 (fun () -> fired := `Inner :: !fired))));
  Engine.run engine;
  Alcotest.(check int) "both fired" 2 (List.length !fired);
  Alcotest.(check int) "clock" 10 (Engine.now engine)

let test_engine_until () =
  let engine = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule engine ~after:(i * 10) (fun () -> incr count))
  done;
  Engine.run ~until:50 engine;
  Alcotest.(check int) "events up to 50 only" 5 !count;
  Alcotest.(check int) "clock clamped to until" 50 (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "rest run" 10 !count

let test_engine_until_advances_clock_when_empty () =
  let engine = Engine.create () in
  Engine.run ~until:1_000 engine;
  Alcotest.(check int) "clock advanced to until" 1_000 (Engine.now engine)

let test_engine_until_advances_past_horizon_queue () =
  (* Regression: queued events strictly beyond the horizon must not keep
     the clock from reaching [until], even when this call executes
     nothing at all. *)
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~after:100 ignore);
  Engine.run ~until:50 engine;
  Alcotest.(check int) "clock at horizon, future event queued" 50 (Engine.now engine);
  Engine.run ~until:60 engine;
  Alcotest.(check int) "zero-event call still advances" 60 (Engine.now engine);
  Engine.run engine;
  Alcotest.(check int) "queued event still fires" 100 (Engine.now engine)

let test_engine_until_max_events_past_horizon () =
  let engine = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule engine ~after:10 (fun () -> incr fired));
  ignore (Engine.schedule engine ~after:100 (fun () -> incr fired));
  (* The budget runs out, but all remaining work lies beyond the
     horizon, so the clock must still land on [until]. *)
  Engine.run ~until:50 ~max_events:1 engine;
  Alcotest.(check int) "one event ran" 1 !fired;
  Alcotest.(check int) "clock at horizon" 50 (Engine.now engine);
  (* With work still due before the horizon, an exhausted budget leaves
     the clock at the last executed event instead. *)
  let engine2 = Engine.create () in
  ignore (Engine.schedule engine2 ~after:10 ignore);
  ignore (Engine.schedule engine2 ~after:20 ignore);
  Engine.run ~until:50 ~max_events:1 engine2;
  Alcotest.(check int) "clock at last executed event" 10 (Engine.now engine2)

let test_engine_cancel () =
  let engine = Engine.create () in
  let fired = ref false in
  let handle = Engine.schedule engine ~after:10 (fun () -> fired := true) in
  Engine.cancel engine handle;
  Alcotest.(check bool) "marked cancelled" true (Engine.cancelled engine handle);
  Engine.run engine;
  Alcotest.(check bool) "cancelled event does not fire" false !fired

let test_engine_stale_cancel_is_safe () =
  (* A handle whose event already fired must stay inert even after its
     pooled slot has been recycled by newer events. *)
  let engine = Engine.create () in
  let stale = Engine.schedule engine ~after:1 ignore in
  Engine.run engine;
  let fired = ref 0 in
  (* Enough fresh events to cycle the freelist through the old slot. *)
  let fresh =
    List.init 64 (fun i -> Engine.schedule engine ~after:(10 + i) (fun () -> incr fired))
  in
  Engine.cancel engine stale;
  Alcotest.(check bool) "stale handle not cancelled" false
    (Engine.cancelled engine stale);
  Engine.run engine;
  Alcotest.(check int) "no fresh event lost to the stale cancel"
    (List.length fresh) !fired

let test_engine_past_raises () =
  let engine = Engine.create () in
  ignore (Engine.schedule engine ~after:10 (fun () -> ()));
  Engine.run engine;
  (match Engine.schedule_at engine ~at:5 (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "scheduling in the past must raise");
  match Engine.schedule engine ~after:(-1) (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay must raise"

let test_engine_every () =
  let engine = Engine.create () in
  let count = ref 0 in
  Engine.every engine ~interval:10 ~until:55 (fun () -> incr count);
  Engine.run engine;
  Alcotest.(check int) "periodic fires floor(55/10) times" 5 !count

let test_engine_max_events () =
  let engine = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule engine ~after:i (fun () -> incr count))
  done;
  Engine.run ~max_events:3 engine;
  Alcotest.(check int) "bounded" 3 !count

let prop_engine_executes_all =
  QCheck.Test.make ~name:"engine executes every scheduled event exactly once"
    ~count:100
    QCheck.(list (int_range 0 10_000))
    (fun delays ->
      let engine = Engine.create () in
      let count = ref 0 in
      List.iter
        (fun d -> ignore (Engine.schedule engine ~after:d (fun () -> incr count)))
        delays;
      Engine.run engine;
      !count = List.length delays && Engine.executed engine = List.length delays)

let suite =
  [
    Alcotest.test_case "time units" `Quick test_time_units;
    Alcotest.test_case "time pretty-printing" `Quick test_time_pp;
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seeds differ" `Quick test_rng_seeds_differ;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    QCheck_alcotest.to_alcotest prop_rng_int_covers;
    Alcotest.test_case "dist constant" `Quick test_dist_constant;
    Alcotest.test_case "dist uniform bounds" `Quick test_dist_uniform_bounds;
    Alcotest.test_case "dist exponential mean" `Quick test_dist_exponential_mean;
    Alcotest.test_case "dist bimodal mix" `Quick test_dist_bimodal_mix;
    Alcotest.test_case "dist pareto minimum" `Quick test_dist_pareto_min;
    QCheck_alcotest.to_alcotest prop_dist_nonnegative;
    Alcotest.test_case "engine timestamp order" `Quick test_engine_order;
    Alcotest.test_case "engine FIFO on ties" `Quick test_engine_fifo_ties;
    Alcotest.test_case "engine nested scheduling" `Quick test_engine_nested_schedule;
    Alcotest.test_case "engine run ~until" `Quick test_engine_until;
    Alcotest.test_case "engine until advances empty clock" `Quick
      test_engine_until_advances_clock_when_empty;
    Alcotest.test_case "engine until advances past-horizon queue" `Quick
      test_engine_until_advances_past_horizon_queue;
    Alcotest.test_case "engine until with exhausted max_events" `Quick
      test_engine_until_max_events_past_horizon;
    Alcotest.test_case "engine cancellation" `Quick test_engine_cancel;
    Alcotest.test_case "engine stale cancel is inert" `Quick
      test_engine_stale_cancel_is_safe;
    Alcotest.test_case "engine rejects past/negative" `Quick test_engine_past_raises;
    Alcotest.test_case "engine periodic events" `Quick test_engine_every;
    Alcotest.test_case "engine max_events" `Quick test_engine_max_events;
    QCheck_alcotest.to_alcotest prop_engine_executes_all;
  ]
