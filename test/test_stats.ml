(* Tests for the statistics library: Sampler, Histogram, Meter, Table. *)

open Draconis_stats

(* -- Sampler ---------------------------------------------------------------- *)

let test_sampler_basic () =
  let s = Sampler.create () in
  List.iter (Sampler.record s) [ 5; 1; 9; 3; 7 ];
  Alcotest.(check int) "count" 5 (Sampler.count s);
  Alcotest.(check int) "min" 1 (Sampler.min s);
  Alcotest.(check int) "max" 9 (Sampler.max s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Sampler.mean s);
  Alcotest.(check int) "p0" 1 (Sampler.percentile s 0.0);
  Alcotest.(check int) "p50" 5 (Sampler.percentile s 50.0);
  Alcotest.(check int) "p100" 9 (Sampler.percentile s 100.0)

let test_sampler_empty_raises () =
  let s = Sampler.create () in
  Alcotest.check_raises "percentile on empty"
    (Invalid_argument "Sampler.percentile: no samples") (fun () ->
      ignore (Sampler.percentile s 50.0))

let test_sampler_bad_percentile () =
  let s = Sampler.create () in
  Sampler.record s 1;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Sampler.percentile: p out of range") (fun () ->
      ignore (Sampler.percentile s 101.0));
  Alcotest.check_raises "NaN rejected"
    (Invalid_argument "Sampler.percentile: p out of range") (fun () ->
      ignore (Sampler.percentile s Float.nan))

let test_sampler_percentile_edges () =
  (* Ranks that round to the ends must stay in bounds on large samples. *)
  let s = Sampler.create () in
  for i = 1 to 100_000 do
    Sampler.record s i
  done;
  Alcotest.(check int) "p100" 100_000 (Sampler.percentile s 100.0);
  Alcotest.(check int) "p99.9999" 100_000 (Sampler.percentile s 99.9999);
  Alcotest.(check int) "p0" 1 (Sampler.percentile s 0.0);
  Alcotest.(check int) "p0.00001" 1 (Sampler.percentile s 0.00001)

let test_sampler_cache_invalidation () =
  let s = Sampler.create () in
  Sampler.record s 10;
  Alcotest.(check int) "first" 10 (Sampler.percentile s 50.0);
  Sampler.record s 0;
  Alcotest.(check int) "min updates after new record" 0 (Sampler.min s)

let test_sampler_merge () =
  let a = Sampler.create () and b = Sampler.create () in
  Sampler.record a 1;
  Sampler.record b 2;
  let m = Sampler.merge a b in
  Alcotest.(check int) "merged count" 2 (Sampler.count m);
  Alcotest.(check int) "merged max" 2 (Sampler.max m)

let test_sampler_cdf () =
  let s = Sampler.create () in
  for i = 1 to 100 do
    Sampler.record s i
  done;
  let cdf = Sampler.cdf s ~points:4 in
  Alcotest.(check int) "cdf points" 4 (Array.length cdf);
  let _, last_frac = cdf.(3) in
  Alcotest.(check (float 1e-9)) "cdf reaches 1" 1.0 last_frac

let test_sampler_clear () =
  let s = Sampler.create () in
  Sampler.record s 1;
  Sampler.clear s;
  Alcotest.(check int) "cleared" 0 (Sampler.count s)

let prop_sampler_percentile_member =
  QCheck.Test.make ~name:"sampler percentile is always a recorded sample" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 50) int) (int_range 0 100))
    (fun (samples, p) ->
      let s = Sampler.create () in
      List.iter (Sampler.record s) samples;
      List.mem (Sampler.percentile s (float_of_int p)) samples)

let prop_sampler_monotone =
  QCheck.Test.make ~name:"sampler percentiles are monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) int)
    (fun samples ->
      let s = Sampler.create () in
      List.iter (Sampler.record s) samples;
      let prev = ref min_int in
      List.for_all
        (fun p ->
          let v = Sampler.percentile s (float_of_int p) in
          let ok = v >= !prev in
          prev := v;
          ok)
        [ 0; 25; 50; 75; 90; 99; 100 ])

(* -- Histogram --------------------------------------------------------------- *)

let test_histogram_small_exact () =
  let h = Histogram.create ~max_value:1_000_000 () in
  List.iter (Histogram.record h) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  (* Values below sub_buckets are exact. *)
  Alcotest.(check int) "p0 exact" 1 (Histogram.percentile h 0.0);
  Alcotest.(check int) "p100 exact" 5 (Histogram.percentile h 100.0)

let test_histogram_bounded_error () =
  let h = Histogram.create ~max_value:10_000_000 () in
  for _ = 1 to 1_000 do
    Histogram.record h 123_456
  done;
  let p50 = Histogram.percentile h 50.0 in
  let err = abs_float (float_of_int p50 -. 123_456.) /. 123_456. in
  Alcotest.(check bool) "relative error < 10%" true (err < 0.10)

let test_histogram_overflow () =
  let h = Histogram.create ~max_value:1_000 () in
  Histogram.record h 5_000;
  Alcotest.(check int) "overflow counted" 1 (Histogram.overflows h);
  Alcotest.(check int) "max recorded raw" 5_000 (Histogram.max_recorded h)

let test_histogram_mean_clear () =
  let h = Histogram.create ~max_value:1_000 () in
  List.iter (Histogram.record h) [ 10; 20; 30 ];
  Alcotest.(check (float 1e-9)) "mean" 20.0 (Histogram.mean h);
  Histogram.clear h;
  Alcotest.(check int) "cleared" 0 (Histogram.count h)

let prop_histogram_quantile_error =
  QCheck.Test.make ~name:"histogram p50 within bounded relative error" ~count:100
    QCheck.(int_range 1 50_000_000)
    (fun v ->
      let h = Histogram.create ~max_value:100_000_000 () in
      for _ = 1 to 100 do
        Histogram.record h v
      done;
      let p50 = float_of_int (Histogram.percentile h 50.0) in
      abs_float (p50 -. float_of_int v) /. float_of_int v < 0.10)

(* -- Meter -------------------------------------------------------------------- *)

let test_meter_rate () =
  let m = Meter.create () in
  for i = 1 to 11 do
    Meter.mark m ~now:(i * 100_000_000) ()
  done;
  Alcotest.(check int) "total" 11 (Meter.total m);
  (* 11 marks over 1 simulated second (span first..last). *)
  Alcotest.(check (float 0.5)) "rate over window" 11.0
    (Meter.rate_over m ~duration:1_000_000_000)

let test_meter_weight_and_timeline () =
  let m = Meter.create () in
  Meter.mark m ~weight:5 ~now:100 ();
  Meter.mark m ~weight:3 ~now:1_100 ();
  Alcotest.(check int) "weighted total" 8 (Meter.total m);
  let timeline = Meter.timeline m ~bucket:1_000 in
  Alcotest.(check int) "two buckets" 2 (Array.length timeline);
  Alcotest.(check (pair int int)) "bucket 0" (0, 5) timeline.(0);
  Alcotest.(check (pair int int)) "bucket 1" (1, 3) timeline.(1)

let test_meter_empty () =
  let m = Meter.create () in
  Alcotest.(check (float 0.0)) "empty rate" 0.0 (Meter.rate_per_sec m);
  Alcotest.(check int) "empty timeline" 0 (Array.length (Meter.timeline m ~bucket:10))

(* -- Table --------------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let out = Table.render t in
  Alcotest.(check bool) "contains header" true
    (Astring.String.is_infix ~affix:"name" out);
  Alcotest.(check int) "row count" 2 (Table.row_count t)

let test_table_pads_rows () =
  let t = Table.create ~columns:[ "a"; "b"; "c" ] in
  Table.add_row t [ "only" ];
  Table.add_row t [ "x"; "y"; "z"; "extra" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "truncated extra" false
    (Astring.String.is_infix ~affix:"extra" rendered)

let test_table_csv () =
  let t = Table.create ~columns:[ "a"; "b" ] in
  Table.add_row t [ "plain"; "with,comma" ];
  Table.add_row t [ "with\"quote"; "x" ];
  Table.add_row t [ "line\nbreak"; "carriage\rreturn" ];
  let csv = Table.to_csv t in
  Alcotest.(check bool) "header line" true
    (Astring.String.is_prefix ~affix:"a,b\n" csv);
  Alcotest.(check bool) "comma field quoted" true
    (Astring.String.is_infix ~affix:"\"with,comma\"" csv);
  Alcotest.(check bool) "quote doubled" true
    (Astring.String.is_infix ~affix:"\"with\"\"quote\"" csv);
  (* RFC 4180: both CR and LF force quoting. *)
  Alcotest.(check bool) "newline field quoted" true
    (Astring.String.is_infix ~affix:"\"line\nbreak\"" csv);
  Alcotest.(check bool) "carriage-return field quoted" true
    (Astring.String.is_infix ~affix:"\"carriage\rreturn\"" csv)

let suite =
  [
    Alcotest.test_case "sampler basics" `Quick test_sampler_basic;
    Alcotest.test_case "sampler empty raises" `Quick test_sampler_empty_raises;
    Alcotest.test_case "sampler bad percentile" `Quick test_sampler_bad_percentile;
    Alcotest.test_case "sampler percentile edges" `Quick test_sampler_percentile_edges;
    Alcotest.test_case "sampler cache invalidation" `Quick test_sampler_cache_invalidation;
    Alcotest.test_case "sampler merge" `Quick test_sampler_merge;
    Alcotest.test_case "sampler cdf" `Quick test_sampler_cdf;
    Alcotest.test_case "sampler clear" `Quick test_sampler_clear;
    QCheck_alcotest.to_alcotest prop_sampler_percentile_member;
    QCheck_alcotest.to_alcotest prop_sampler_monotone;
    Alcotest.test_case "histogram exact small values" `Quick test_histogram_small_exact;
    Alcotest.test_case "histogram bounded error" `Quick test_histogram_bounded_error;
    Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
    Alcotest.test_case "histogram mean and clear" `Quick test_histogram_mean_clear;
    QCheck_alcotest.to_alcotest prop_histogram_quantile_error;
    Alcotest.test_case "meter rate" `Quick test_meter_rate;
    Alcotest.test_case "meter weights and timeline" `Quick test_meter_weight_and_timeline;
    Alcotest.test_case "meter empty" `Quick test_meter_empty;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table pads/truncates rows" `Quick test_table_pads_rows;
    Alcotest.test_case "table csv export" `Quick test_table_csv;
  ]
