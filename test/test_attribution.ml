(* Tests for per-task causal phase attribution: on seeded end-to-end
   runs — including recirculation-heavy multi-task jobs, resource-aware
   swaps, and a switch fail-over recovered by client timeouts — every
   completed task's phase buckets must telescope to exactly the
   end-to-end delay the metrics measured.  Also covers the offline
   analyzer round-trip and the bench-report regression guard behind
   draconis-trace. *)

open Draconis_sim
open Draconis_proto
module H = Draconis_harness
module F = Draconis_fault
module Obs = Draconis_obs
module Sampler = Draconis_stats.Sampler

let spec = { H.Systems.workers = 4; executors_per_worker = 4; clients = 2; seed = 11 }

(* Evenly spaced jobs of [tasks_per_job] tasks each; multi-task jobs
   ride the recirculation port for their continuations. *)
let burst_driver ?tprops ~jobs ~tasks_per_job ~gap ~fn_par () :
    H.Runner.driver =
 fun engine _rng ~submit ->
  for i = 0 to jobs - 1 do
    ignore
      (Engine.schedule engine ~after:(i * gap) (fun () ->
           submit
             (List.init tasks_per_job (fun tid ->
                  Task.make ~uid:0 ~jid:0 ~tid ?tprops ~fn_id:Task.Fn.busy_loop
                    ~fn_par ()))))
  done

(* Run [system] under a fresh checking context and return the outcome
   plus the finished collector.  [~check:true] makes every seal raise
   on any telescoping discrepancy, so the run itself is the property
   test; the postconditions below re-check the aggregates. *)
let run_attributed system ~driver ~horizon =
  let ctx = Obs.Trace_ctx.create ~check:true () in
  let outcome =
    Obs.Trace_ctx.with_ctx ctx (fun () ->
        H.Runner.run system ~driver ~load_tps:0.0 ~horizon ())
  in
  (outcome, Obs.Trace_ctx.finish ctx)

(* The collector's totals must be a permutation of the end-to-end
   delays the metrics recorded: same multiset, task by task. *)
let check_totals_match_metrics (system : H.Systems.running) collector =
  let metric = Sampler.sorted (Draconis.Metrics.end_to_end_delay system.metrics) in
  let attributed = Sampler.sorted (Obs.Attribution.total_sampler collector) in
  Alcotest.(check (array int)) "attributed totals = measured end-to-end delays"
    metric attributed;
  Alcotest.(check bool) "exact" true (Obs.Attribution.exact collector);
  (* Aggregate cross-check: per-phase sums telescope globally too. *)
  let phase_total =
    List.fold_left
      (fun acc p -> acc + Obs.Attribution.phase_sum collector p)
      0 Obs.Phase.all
  in
  Alcotest.(check int) "phase sums add to total sum"
    (Obs.Attribution.total_sum collector) phase_total

let test_multi_task_recirculation () =
  let system = H.Systems.draconis spec in
  let driver = burst_driver ~jobs:60 ~tasks_per_job:4 ~gap:(Time.us 40) ~fn_par:(Time.us 80) () in
  let outcome, collector = run_attributed system ~driver ~horizon:(Time.ms 3) in
  Alcotest.(check bool) "drained" true outcome.H.Runner.drained;
  Alcotest.(check int) "all completed" 240 outcome.H.Runner.completed;
  Alcotest.(check bool) "recirculated" true (outcome.H.Runner.recirculations > 0);
  Alcotest.(check int) "sealed = completed" 240 (Obs.Attribution.sealed collector);
  Alcotest.(check int) "no incomplete journeys" 0 (Obs.Attribution.incomplete collector);
  check_totals_match_metrics system collector;
  (* Continuation hops were charged somewhere visible. *)
  Alcotest.(check bool) "recirc phase charged" true
    (Obs.Attribution.phase_sum collector Obs.Phase.Recirc > 0);
  (* The runner surfaced the decomposition on the outcome. *)
  Alcotest.(check bool) "outcome carries phases" true (outcome.H.Runner.phases <> [])

let test_swaps_attributed () =
  (* Half the nodes expose resource 1, half resource 2; tasks demanding
     resource 2 behind resource-1 tasks force swaps (paper sec 5.2). *)
  let system =
    H.Systems.draconis
      ~policy_of:(fun _ -> Draconis.Policy.Resource_aware { max_swaps = 4 })
      ~rsrc_of_node:(fun node -> if node mod 2 = 0 then 1 else 2)
      spec
  in
  let driver engine _rng ~submit =
    for i = 0 to 299 do
      let rsrc = if i mod 2 = 0 then 1 else 2 in
      ignore
        (Engine.schedule engine ~after:(i * Time.us 8) (fun () ->
             submit
               [ Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Resources rsrc)
                   ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 200) ();
               ]))
    done
  in
  let outcome, collector = run_attributed system ~driver ~horizon:(Time.ms 6) in
  Alcotest.(check bool) "drained" true outcome.H.Runner.drained;
  Alcotest.(check bool) "swaps happened" true (outcome.H.Runner.swaps > 0);
  Alcotest.(check int) "no incomplete journeys" 0 (Obs.Attribution.incomplete collector);
  check_totals_match_metrics system collector;
  let swapped = List.assoc "swapped" (Obs.Attribution.anomalies collector) in
  Alcotest.(check bool) "swapped tasks tagged" true (swapped > 0)

let test_failover_resubmission_attributed () =
  (* A fail-over loses the queue mid-run; client timeouts resubmit the
     lost tasks.  Journeys restart, so the buckets still telescope to
     the delay measured from the first submission. *)
  let cluster, system =
    H.Systems.draconis_cluster ~client_timeout:(Time.ms 1) spec
  in
  let plan =
    F.Plan.create [ { F.Plan.at = Time.us 300; event = F.Plan.Switch_failover } ]
  in
  let injector =
    F.Injector.arm plan (F.Target.of_cluster ~name:system.H.Systems.name cluster)
  in
  (* A near-simultaneous burst of 500 us tasks: 16 run, the rest sit
     queued when the switch dies at 300 us. *)
  let driver = burst_driver ~jobs:60 ~tasks_per_job:1 ~gap:(Time.us 5) ~fn_par:(Time.us 500) () in
  let outcome, collector = run_attributed system ~driver ~horizon:(Time.ms 8) in
  Alcotest.(check bool) "drained" true outcome.H.Runner.drained;
  Alcotest.(check bool) "fail-over lost queued tasks" true
    (F.Injector.queued_lost injector > 0);
  Alcotest.(check int) "all recovered" 60 outcome.H.Runner.completed;
  Alcotest.(check int) "no incomplete journeys" 0 (Obs.Attribution.incomplete collector);
  check_totals_match_metrics system collector;
  let resubmitted = List.assoc "resubmitted" (Obs.Attribution.anomalies collector) in
  Alcotest.(check bool) "resubmissions tagged" true (resubmitted > 0)

(* -- offline analyzer round-trip -------------------------------------------- *)

let with_temp_file contents f =
  let path = Filename.temp_file "draconis_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      f path)

let test_analyzer_round_trip () =
  (* Under an enabled sink the runner installs the context itself; the
     metrics dump then carries the attribution, and the analyzer must
     re-verify exactness offline from the JSON alone. *)
  Obs.Sink.enable ();
  let dump =
    Fun.protect
      ~finally:(fun () -> Obs.Sink.disable ())
      (fun () ->
        let system = H.Systems.draconis spec in
        let driver =
          burst_driver ~jobs:40 ~tasks_per_job:2 ~gap:(Time.us 50) ~fn_par:(Time.us 100) ()
        in
        let outcome = H.Runner.run system ~driver ~load_tps:0.0 ~horizon:(Time.ms 3) () in
        Alcotest.(check bool) "drained" true outcome.H.Runner.drained;
        Obs.Dump.metrics_json (Obs.Sink.drain ()))
  in
  with_temp_file dump (fun path ->
      match Obs.Analyze.load ~path with
      | Error msg -> Alcotest.failf "analyzer rejected its own dump: %s" msg
      | Ok [ run ] -> (
        match run.Obs.Analyze.attribution with
        | None -> Alcotest.fail "attribution missing from dump"
        | Some a ->
          Alcotest.(check int) "tasks" 80 a.Obs.Analyze.tasks;
          Alcotest.(check bool) "writer claim" true a.Obs.Analyze.exact;
          Alcotest.(check bool) "offline re-check" true a.Obs.Analyze.verified;
          let table_total =
            List.fold_left (fun acc r -> acc + r.Obs.Analyze.sum_ns) 0 a.Obs.Analyze.phases
          in
          Alcotest.(check int) "phase rows sum to total" a.Obs.Analyze.total_sum_ns
            table_total)
      | Ok runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs))

(* -- bench-report regression guard ------------------------------------------ *)

let report ~p99 ~drained ~extra_outcome =
  Printf.sprintf
    {|{
  "schema": "draconis-bench/1",
  "jobs": 1,
  "quick": true,
  "total_wall_s": 0.1,
  "total_events": 1000,
  "experiments": [
    {"name":"fig5a","wall_s":0.1,"events":1000,"events_per_sec":10000,
     "outcomes":[
       {"system":"Draconis","load_tps":96000,"sched_p50_ns":4600,"sched_p99_ns":%d,
        "sched_mean_ns":4590.5,"decisions_per_sec":95000,"submitted":5000,
        "completed":5000,"timeouts":0,"rejected":0,"recirc_fraction":0.005,
        "recirc_drops":0,"swaps":0,"recirculations":4400,"repair_flags":4400,
        "events":400000,"drained":%b,
        "phases":{"queue":{"p50_ns":1000,"p99_ns":1800}}}%s
     ]}
  ]
}|}
    p99 drained
    (if extra_outcome then
       {|,
       {"system":"R2P2","load_tps":96000,"sched_p50_ns":9000,"sched_p99_ns":12000,
        "sched_mean_ns":9100.0,"decisions_per_sec":94000,"submitted":5000,
        "completed":5000,"timeouts":0,"rejected":0,"recirc_fraction":0.0,
        "recirc_drops":0,"swaps":0,"recirculations":0,"repair_flags":0,
        "events":300000,"drained":true}|}
     else "")

let compare_reports ?tol_pct base cur =
  with_temp_file base (fun base_path ->
      with_temp_file cur (fun cur_path ->
          match Obs.Bench_compare.compare_files ?tol_pct ~base_path ~cur_path () with
          | Error msg -> Alcotest.failf "compare failed to load: %s" msg
          | Ok t -> t))

let test_compare_self_passes () =
  let r = report ~p99:5400 ~drained:true ~extra_outcome:true in
  let t = compare_reports r r in
  Alcotest.(check bool) "identical reports pass" true (Obs.Bench_compare.passed t);
  Alcotest.(check bool) "verdict rendered" true
    (Astring.String.is_infix ~affix:"PASS: no regressions" (Obs.Bench_compare.render t))

let test_compare_within_tolerance () =
  (* +2% on a percentile and a delta under the count floor: both pass. *)
  let base = report ~p99:5400 ~drained:true ~extra_outcome:false in
  let cur = report ~p99:5508 ~drained:true ~extra_outcome:false in
  Alcotest.(check bool) "2% drift tolerated" true
    (Obs.Bench_compare.passed (compare_reports base cur))

let test_compare_catches_regression () =
  let base = report ~p99:5400 ~drained:true ~extra_outcome:false in
  let cur = report ~p99:8100 ~drained:true ~extra_outcome:false in
  let t = compare_reports base cur in
  Alcotest.(check bool) "50% regression fails" false (Obs.Bench_compare.passed t);
  let rendered = Obs.Bench_compare.render t in
  (* Golden failure line: field, both values, and the allowed band. *)
  Alcotest.(check bool) "failure names the field" true
    (Astring.String.is_infix
       ~affix:"FAIL fig5a/Draconis@96000 sched_p99_ns: base 5400, current 8100" rendered);
  (* Tightening the tolerance cannot turn a failure into a pass. *)
  Alcotest.(check bool) "still fails at 1%" false
    (Obs.Bench_compare.passed (compare_reports ~tol_pct:0.01 base cur))

let test_compare_drained_flip_fails () =
  let base = report ~p99:5400 ~drained:true ~extra_outcome:false in
  let cur = report ~p99:5400 ~drained:false ~extra_outcome:false in
  let t = compare_reports base cur in
  Alcotest.(check bool) "drained flip fails" false (Obs.Bench_compare.passed t);
  Alcotest.(check bool) "failure names drained" true
    (Astring.String.is_infix ~affix:"drained: base true, current false"
       (Obs.Bench_compare.render t))

let test_compare_missing_and_extra_outcomes () =
  let full = report ~p99:5400 ~drained:true ~extra_outcome:true in
  let partial = report ~p99:5400 ~drained:true ~extra_outcome:false in
  (* Baseline outcome gone from current: a failure. *)
  let t = compare_reports full partial in
  Alcotest.(check bool) "missing outcome fails" false (Obs.Bench_compare.passed t);
  Alcotest.(check (list string)) "missing key listed" [ "fig5a/R2P2@96000" ]
    t.Obs.Bench_compare.missing;
  (* Current-only outcome: informational, not a failure. *)
  let t = compare_reports partial full in
  Alcotest.(check bool) "extra outcome passes" true (Obs.Bench_compare.passed t);
  Alcotest.(check (list string)) "extra key noted" [ "fig5a/R2P2@96000" ]
    t.Obs.Bench_compare.extra

let test_compare_rejects_wrong_schema () =
  with_temp_file {|{"schema":"draconis-obs/2","runs":[]}|} (fun path ->
      match Obs.Bench_compare.compare_files ~base_path:path ~cur_path:path () with
      | Ok _ -> Alcotest.fail "accepted a metrics dump as a bench report"
      | Error msg ->
        Alcotest.(check bool) "error names the schema" true
          (Astring.String.is_infix ~affix:"draconis-obs/2" msg))

let test_phase_check_env_fails_loudly () =
  (* DRACONIS_PHASE_CHECK takes explicit booleans only: junk must raise
     rather than silently arming (or disarming) the exact-sum check. *)
  let with_env v f =
    Unix.putenv "DRACONIS_PHASE_CHECK" v;
    Fun.protect ~finally:(fun () -> Unix.putenv "DRACONIS_PHASE_CHECK" "") f
  in
  with_env "ture" (fun () ->
      (try
         ignore (Obs.Trace_ctx.create ());
         Alcotest.fail "junk DRACONIS_PHASE_CHECK accepted"
       with Invalid_argument _ -> ());
      (* An explicit [check] never consults the environment. *)
      ignore (Obs.Trace_ctx.create ~check:true ()));
  with_env "1" (fun () -> ignore (Obs.Trace_ctx.create ()));
  with_env "0" (fun () -> ignore (Obs.Trace_ctx.create ()))

let suite =
  [
    Alcotest.test_case "multi-task recirculation sums exactly" `Quick
      test_multi_task_recirculation;
    Alcotest.test_case "DRACONIS_PHASE_CHECK fails loudly" `Quick
      test_phase_check_env_fails_loudly;
    Alcotest.test_case "swaps attributed and exact" `Quick test_swaps_attributed;
    Alcotest.test_case "fail-over resubmission sums exactly" `Quick
      test_failover_resubmission_attributed;
    Alcotest.test_case "analyzer round-trip re-verifies" `Quick test_analyzer_round_trip;
    Alcotest.test_case "compare: identical reports pass" `Quick test_compare_self_passes;
    Alcotest.test_case "compare: drift within tolerance" `Quick
      test_compare_within_tolerance;
    Alcotest.test_case "compare: regression fails" `Quick test_compare_catches_regression;
    Alcotest.test_case "compare: drained flip fails" `Quick test_compare_drained_flip_fails;
    Alcotest.test_case "compare: missing vs extra outcomes" `Quick
      test_compare_missing_and_extra_outcomes;
    Alcotest.test_case "compare: wrong schema rejected" `Quick
      test_compare_rejects_wrong_schema;
  ]
