(* Tests of 32-bit pointer wraparound in the circular queue.  At the
   paper's 58M decisions/s a 32-bit pointer wraps in ~74 seconds, so the
   queue must stay correct across the wrap boundary: the wrap modulus is
   a multiple of the capacity (continuous slot mapping), comparisons are
   wrap-aware, and repairs still work when pointers sit just below the
   modulus. *)

open Draconis_net
open Draconis_proto
open Draconis

let ctx () = Draconis_p4.Packet_ctx.create ()

let entry n =
  Entry.make
    ~task:(Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(1000 * n) ())
    ~client:(Addr.Host 99) ()

let tid (e : Entry.t) = e.task.id.tid

let enqueue_ok q e =
  match Circular_queue.enqueue q (ctx ()) e with
  | Circular_queue.Enqueued { retrieve_repair = Some target; _ } ->
    Circular_queue.apply_repair_retrieve q (ctx ()) ~target
  | Circular_queue.Enqueued { retrieve_repair = None; _ } -> ()
  | Circular_queue.Rejected _ -> Alcotest.fail "unexpected rejection"

let dequeue_ok q =
  match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Dequeued { entry; _ } -> entry
  | Circular_queue.Empty -> Alcotest.fail "unexpected empty"
  | Circular_queue.Repair_pending -> Alcotest.fail "unexpected repair-pending"

let test_wrap_modulus_multiple () =
  List.iter
    (fun capacity ->
      let q = Circular_queue.create ~name:"w" ~capacity () in
      let wrap = Circular_queue.wrap_modulus q in
      Alcotest.(check int) "wrap divisible by capacity" 0 (wrap mod capacity);
      Alcotest.(check bool) "wrap fits 32 bits" true (wrap <= 1 lsl 32);
      Alcotest.(check bool) "wrap maximal" true (wrap + capacity > 1 lsl 32))
    [ 1; 2; 3; 7; 164_000; 1 lsl 16 ]

let test_fifo_across_wrap () =
  let q = Circular_queue.create ~name:"w" ~capacity:5 () in
  let wrap = Circular_queue.wrap_modulus q in
  (* Park both pointers three increments before the wrap boundary. *)
  Circular_queue.unsafe_set_pointers_for_test q ~add:(wrap - 3) ~retrieve:(wrap - 3);
  for i = 1 to 5 do
    enqueue_ok q (entry i)
  done;
  Alcotest.(check int) "occupancy across wrap" 5 (Circular_queue.occupancy q);
  Alcotest.(check bool) "add pointer wrapped" true (Circular_queue.peek_add_ptr q < 5);
  for i = 1 to 5 do
    Alcotest.(check int) "FIFO across wrap" i (tid (dequeue_ok q))
  done;
  Alcotest.(check int) "empty after drain" 0 (Circular_queue.occupancy q)

let test_full_rejection_at_wrap () =
  let q = Circular_queue.create ~name:"w" ~capacity:2 () in
  let wrap = Circular_queue.wrap_modulus q in
  Circular_queue.unsafe_set_pointers_for_test q ~add:(wrap - 1) ~retrieve:(wrap - 1);
  enqueue_ok q (entry 1);
  enqueue_ok q (entry 2);
  (match Circular_queue.enqueue q (ctx ()) (entry 3) with
  | Circular_queue.Rejected { add_repair = Some target; _ } ->
    Circular_queue.apply_repair_add q (ctx ()) ~target
  | _ -> Alcotest.fail "expected full rejection at wrap");
  Alcotest.(check int) "add pointer repaired across wrap" 1
    (Circular_queue.peek_add_ptr q);
  Alcotest.(check int) "head still intact" 1 (tid (dequeue_ok q));
  Alcotest.(check int) "tail still intact" 2 (tid (dequeue_ok q))

let test_empty_overrun_repair_at_wrap () =
  let q = Circular_queue.create ~name:"w" ~capacity:4 () in
  let wrap = Circular_queue.wrap_modulus q in
  Circular_queue.unsafe_set_pointers_for_test q ~add:(wrap - 1) ~retrieve:(wrap - 1);
  (* Two empty polls overrun the retrieve pointer across the boundary. *)
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Empty -> ()
  | _ -> Alcotest.fail "expected empty");
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Empty -> ()
  | _ -> Alcotest.fail "expected empty");
  Alcotest.(check int) "retrieve wrapped to 1" 1 (Circular_queue.peek_retrieve_ptr q);
  (* The next enqueue must detect the (wrapped) overrun and repair. *)
  (match Circular_queue.enqueue q (ctx ()) (entry 7) with
  | Circular_queue.Enqueued { index; retrieve_repair = Some target } ->
    Alcotest.(check int) "repair targets new task" index target;
    Circular_queue.apply_repair_retrieve q (ctx ()) ~target
  | _ -> Alcotest.fail "expected overrun repair across wrap");
  Alcotest.(check int) "task recovered" 7 (tid (dequeue_ok q))

let test_repair_in_flight_across_exact_boundary () =
  (* A retrieve-repair window that straddles the exact wrap boundary
     (the largest multiple of the capacity): the overrun is detected
     pre-wrap, the repair target carried in the flag register sits at
     wrap-1, and the next store lands at the wrapped index 0.
     Admission during the window must compute true occupancy against
     the pre-wrap target, and FIFO order must survive once the repair
     lands. *)
  let q = Circular_queue.create ~name:"w" ~capacity:4 () in
  let wrap = Circular_queue.wrap_modulus q in
  Alcotest.(check int) "boundary is a capacity multiple" 0 (wrap mod 4);
  Circular_queue.unsafe_set_pointers_for_test q ~add:(wrap - 1) ~retrieve:(wrap - 1);
  (* Two empty polls push the retrieve pointer across the boundary. *)
  for _ = 1 to 2 do
    match Circular_queue.dequeue q (ctx ()) with
    | Circular_queue.Empty -> ()
    | _ -> Alcotest.fail "expected empty poll"
  done;
  Alcotest.(check int) "retrieve overran across wrap" 1
    (Circular_queue.peek_retrieve_ptr q);
  (* The enqueue at wrap-1 detects the wrapped overrun and launches the
     repair; hold the repair in flight. *)
  let target =
    match Circular_queue.enqueue q (ctx ()) (entry 1) with
    | Circular_queue.Enqueued { index; retrieve_repair = Some target } ->
      Alcotest.(check int) "stored at the last pre-wrap index" (wrap - 1) index;
      Alcotest.(check int) "repair targets the new task" (wrap - 1) target;
      target
    | _ -> Alcotest.fail "expected overrun repair at the boundary"
  in
  Alcotest.(check bool) "repair window open" true
    (Circular_queue.peek_retrieve_repair_flag q);
  (* While the window straddles the boundary, the next enqueue wraps to
     index 0 and must still be admitted: true occupancy against the
     flag-carried target is 1 < capacity. *)
  (match Circular_queue.enqueue q (ctx ()) (entry 2) with
  | Circular_queue.Enqueued { index = 0; retrieve_repair = None } -> ()
  | _ -> Alcotest.fail "expected store at wrapped index 0 during the window");
  (* Dequeues are no-ops until the repair lands. *)
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Repair_pending -> ()
  | _ -> Alcotest.fail "expected repair-pending during the window");
  Circular_queue.apply_repair_retrieve q (ctx ()) ~target;
  Alcotest.(check int) "FIFO head across boundary" 1 (tid (dequeue_ok q));
  Alcotest.(check int) "FIFO tail across boundary" 2 (tid (dequeue_ok q));
  Alcotest.(check int) "empty after drain" 0 (Circular_queue.occupancy q)

let test_stamp_collision_across_wrap () =
  (* Stamps store the full 32-bit write-index, not the slot: an index
     that maps to the same physical slot one lap later must fail the
     validity check instead of delivering the stale pre-wrap task. *)
  let q = Circular_queue.create ~name:"w" ~capacity:4 () in
  let wrap = Circular_queue.wrap_modulus q in
  Circular_queue.unsafe_set_pointers_for_test q ~add:(wrap - 4) ~retrieve:(wrap - 4);
  for i = 1 to 4 do
    enqueue_ok q (entry i)
  done;
  (* Same slots, one lap later: post-wrap indices 0..3 alias slots 0..3. *)
  Circular_queue.unsafe_set_pointers_for_test q ~add:0 ~retrieve:0;
  (match Circular_queue.dequeue q (ctx ()) with
  | Circular_queue.Empty -> ()
  | Circular_queue.Dequeued { entry; _ } ->
    Alcotest.failf "stale pre-wrap task %d delivered" (tid entry)
  | Circular_queue.Repair_pending -> Alcotest.fail "unexpected repair-pending");
  (* The pre-wrap tasks not touched by the colliding poll are still
     intact under their true indices. *)
  List.iter
    (fun i ->
      match Circular_queue.peek_entry q ~index:(wrap - 4 + i) with
      | Some e -> Alcotest.(check int) "pre-wrap task intact" (i + 1) (tid e)
      | None -> Alcotest.fail "pre-wrap task lost")
    [ 1; 2; 3 ]

let test_is_ahead_semantics () =
  let q = Circular_queue.create ~name:"w" ~capacity:8 () in
  let wrap = Circular_queue.wrap_modulus q in
  Alcotest.(check bool) "simple ahead" true (Circular_queue.is_ahead q 5 3);
  Alcotest.(check bool) "simple behind" false (Circular_queue.is_ahead q 3 5);
  Alcotest.(check bool) "equal not ahead" false (Circular_queue.is_ahead q 4 4);
  (* 1 is "ahead" of wrap-2: it is two increments later in wrap order. *)
  Alcotest.(check bool) "ahead across wrap" true (Circular_queue.is_ahead q 1 (wrap - 2));
  Alcotest.(check bool) "behind across wrap" false
    (Circular_queue.is_ahead q (wrap - 2) 1);
  Alcotest.(check int) "next at boundary" 0 (Circular_queue.next_index q (wrap - 1));
  Alcotest.(check int) "distance across wrap" 3
    (Circular_queue.distance q ~ahead:1 ~behind:(wrap - 2))

let prop_fifo_survives_any_start =
  QCheck.Test.make ~name:"queue is FIFO from any pointer position incl. near wrap"
    ~count:100
    QCheck.(pair (int_range 1 6) (int_range 0 20))
    (fun (capacity, offset) ->
      let q = Circular_queue.create ~name:"pw" ~capacity () in
      let wrap = Circular_queue.wrap_modulus q in
      let start = (wrap - 10 + offset + wrap) mod wrap in
      Circular_queue.unsafe_set_pointers_for_test q ~add:start ~retrieve:start;
      let ok = ref true in
      (* Several full fill/drain cycles rolling across the boundary. *)
      for round = 0 to 3 do
        for i = 1 to capacity do
          enqueue_ok q (entry ((round * 100) + i))
        done;
        for i = 1 to capacity do
          if tid (dequeue_ok q) <> (round * 100) + i then ok := false
        done
      done;
      !ok)

let test_swap_across_wrap () =
  let q = Circular_queue.create ~name:"w" ~capacity:6 () in
  let wrap = Circular_queue.wrap_modulus q in
  Circular_queue.unsafe_set_pointers_for_test q ~add:(wrap - 1) ~retrieve:(wrap - 1);
  enqueue_ok q (entry 1);
  enqueue_ok q (entry 2);
  (* Entry 2 sits at wrapped index 0. *)
  (match Circular_queue.swap q (ctx ()) ~index:0 (entry 42) with
  | Circular_queue.Swapped popped -> Alcotest.(check int) "swapped out" 2 (tid popped)
  | Circular_queue.Slot_invalid -> Alcotest.fail "slot should be valid across wrap");
  Alcotest.(check int) "head unchanged" 1 (tid (dequeue_ok q));
  Alcotest.(check int) "swapped task in place" 42 (tid (dequeue_ok q))

let suite =
  [
    Alcotest.test_case "wrap modulus is a capacity multiple" `Quick
      test_wrap_modulus_multiple;
    Alcotest.test_case "FIFO across the wrap boundary" `Quick test_fifo_across_wrap;
    Alcotest.test_case "full rejection + repair at wrap" `Quick
      test_full_rejection_at_wrap;
    Alcotest.test_case "empty overrun repair at wrap" `Quick
      test_empty_overrun_repair_at_wrap;
    Alcotest.test_case "repair in flight across the exact boundary" `Quick
      test_repair_in_flight_across_exact_boundary;
    Alcotest.test_case "stamp collision across a full wrap" `Quick
      test_stamp_collision_across_wrap;
    Alcotest.test_case "is_ahead / next_index / distance" `Quick test_is_ahead_semantics;
    QCheck_alcotest.to_alcotest prop_fifo_survives_any_start;
    Alcotest.test_case "task swap across wrap" `Quick test_swap_across_wrap;
  ]
