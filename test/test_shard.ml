(* Tests for parallel-in-run sharding: the topology partitioner, the
   Lp/Sync conservative-window protocol, the cross-LP mailbox, and the
   headline determinism contract — the sharded cluster model produces
   identical outcomes across 1/2/4 logical processes, with and without
   worker domains, faults, and seq-counter renumbering. *)

open Draconis_sim
module H = Draconis_harness
module Fabric = Draconis_net.Fabric
module Topology = Draconis_net.Topology
module Plan = Draconis_fault.Plan

(* -- topology partitioning ------------------------------------------------- *)

let test_partition_rack_aligned () =
  let topo = Topology.create ~nodes:12 ~racks:4 in
  let part = Topology.partition topo ~groups:2 in
  Alcotest.(check int) "covers all hosts" 12 (Array.length part);
  (* Rack-aligned: no rack straddles a group boundary. *)
  for rack = 0 to 3 do
    let groups =
      List.sort_uniq compare
        (List.map (fun h -> part.(h)) (Topology.hosts_in_rack topo rack))
    in
    Alcotest.(check int)
      (Printf.sprintf "rack %d in one group" rack)
      1 (List.length groups)
  done;
  (* Contiguous and onto [0, groups). *)
  Alcotest.(check int) "first group" 0 part.(0);
  Alcotest.(check int) "last group" 1 part.(11);
  Array.iteri
    (fun h g ->
      if h > 0 && g < part.(h - 1) then
        Alcotest.failf "groups not monotone at host %d" h)
    part;
  Alcotest.(check int) "group_of matches" part.(7)
    (Topology.group_of topo ~groups:2 7)

let test_partition_more_groups_than_racks () =
  let topo = Topology.create ~nodes:10 ~racks:2 in
  let part = Topology.partition topo ~groups:5 in
  let sizes = Array.make 5 0 in
  Array.iter (fun g -> sizes.(g) <- sizes.(g) + 1) part;
  Array.iteri
    (fun g n -> Alcotest.(check int) (Printf.sprintf "group %d size" g) 2 n)
    sizes

let test_partition_bounds () =
  let topo = Topology.create ~nodes:4 ~racks:2 in
  let raises f = try f () ; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "groups=0 rejected" true (raises (fun () ->
      ignore (Topology.partition topo ~groups:0)));
  Alcotest.(check bool) "groups>nodes rejected" true (raises (fun () ->
      ignore (Topology.partition topo ~groups:5)));
  let ident = Topology.partition topo ~groups:4 in
  Array.iteri (fun h g -> Alcotest.(check int) "one host per group" h g) ident

(* -- Lp / Mailbox safety --------------------------------------------------- *)

let test_lp_post_floor_violation () =
  let lp = Lp.create ~id:0 ~seed:1 () in
  Lp.set_floor lp 100;
  (try
     Lp.post lp ~at:100 ~src:0 ~seq:1 ignore;
     Alcotest.fail "expected lookahead violation"
   with Invalid_argument _ -> ());
  Lp.post lp ~at:101 ~src:0 ~seq:2 ignore;
  Alcotest.(check int) "accepted post pending" 1 (Lp.inbox_length lp)

let test_mailbox_lookahead_enforced () =
  let lp = Lp.create ~id:0 ~seed:1 () in
  let box = Fabric.Mailbox.create ~lookahead:500 lp in
  (try
     Fabric.Mailbox.post box ~now:0 ~latency:499 ~src:1 ~seq:1 ignore;
     Alcotest.fail "expected lookahead violation"
   with Invalid_argument _ -> ());
  Fabric.Mailbox.post box ~now:0 ~latency:500 ~src:1 ~seq:2 ignore;
  Alcotest.(check int) "posted" 1 (Fabric.Mailbox.posted box);
  try
    ignore (Fabric.Mailbox.create ~lookahead:0 lp);
    Alcotest.fail "expected zero-lookahead rejection"
  with Invalid_argument _ -> ()

(* Injection order must follow the (at, src, seq) stamp, not the post
   (domain-schedule) order. *)
let test_injection_sorted_by_stamp () =
  let lp = Lp.create ~id:0 ~seed:1 () in
  let order = ref [] in
  let mark n () = order := n :: !order in
  Lp.post lp ~at:50 ~src:9 ~seq:1 (mark 3);
  Lp.post lp ~at:50 ~src:2 ~seq:7 (mark 2);
  Lp.post lp ~at:40 ~src:9 ~seq:2 (mark 1);
  Lp.post lp ~at:50 ~src:9 ~seq:9 (mark 4);
  Lp.inject lp ~upto:100;
  Engine.run (Lp.engine lp);
  Alcotest.(check (list int)) "stamp order" [ 1; 2; 3; 4 ] (List.rev !order)

(* -- Sync across a seq-counter renumber ------------------------------------ *)

(* Mirror test_pool's FIFO-ties-across-renumber, but with the churn
   driven through barrier windows and a cross-LP message landing at the
   same instant as the direct ties: the packed-key renumber must neither
   reorder ties nor disturb mailbox injection. *)
let test_sync_ties_survive_renumber () =
  let lp0 = Lp.create ~id:0 ~seed:1 () in
  let lp1 = Lp.create ~id:1 ~seed:1 () in
  let box0 = Fabric.Mailbox.create ~lookahead:100 lp0 in
  let sync = Sync.create ~lookahead:100 [| lp0; lp1 |] in
  let e0 = Lp.engine lp0 in
  let target = 3_000_000 in
  let order = ref [] in
  let mark n () = order := n :: !order in
  ignore (Engine.schedule e0 ~after:target (mark 1));
  ignore (Engine.schedule e0 ~after:target (mark 2));
  (* Churn > 2^21 schedule+cancel pairs in drained batches, advancing
     the clocks through Sync windows (10ns per batch, far short of the
     ties' timestamp). *)
  let churn = (1 lsl 21) + 100_000 in
  for _ = 1 to churn / 500 do
    let hs = List.init 500 (fun _ -> Engine.schedule e0 ~after:10 ignore) in
    List.iter (Engine.cancel e0) hs;
    Sync.run ~until:(Engine.now e0 + 10) sync
  done;
  (* Two more direct ties after the renumber... *)
  ignore (Engine.schedule e0 ~after:(target - Engine.now e0) (mark 3));
  ignore (Engine.schedule e0 ~after:(target - Engine.now e0) (mark 4));
  (* ...and a cross-LP message arriving at the same instant. *)
  let e1 = Lp.engine lp1 in
  ignore
    (Engine.schedule e1 ~after:10 (fun () ->
         Fabric.Mailbox.post box0 ~now:(Engine.now e1)
           ~latency:(target - Engine.now e1)
           ~src:1 ~seq:1 (mark 5)));
  Sync.run sync;
  Alcotest.(check (list int)) "ties + injection in order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order);
  Alcotest.(check int) "cross-post injected" 1 (Lp.injected lp0);
  Alcotest.(check bool) "drained" true (Sync.drained sync)

(* -- the determinism contract on the cluster model ------------------------- *)

let model ?(faults = Plan.empty) ?(service = Dist.exponential ~mean:(Time.us 50))
    ~seed () =
  {
    H.Shard.clients = 4;
    executors = 6;
    interarrival = Dist.exponential ~mean:(Time.us 25);
    service;
    horizon = Time.ms 1;
    seed;
    fabric = Fabric.default_config;
    faults;
  }

let check_equal_across_lps ?(lp_counts = [ 1; 2; 4 ]) config =
  let results =
    List.map (fun lps -> H.Shard.run_model ~lps ~workers:1 config) lp_counts
  in
  let reference = List.hd results in
  List.iter
    (fun (r : H.Shard.result) ->
      if r.outcome <> reference.outcome then
        Alcotest.failf "outcome with %d LPs diverges: %a vs %a" r.lps
          H.Runner.pp_outcome r.outcome H.Runner.pp_outcome reference.outcome;
      Alcotest.(check int) "windows" reference.windows r.windows;
      Alcotest.(check int) "messages" reference.cross_posts r.cross_posts;
      Alcotest.(check int) "fault drops" reference.dropped r.dropped)
    results;
  reference

let test_sharded_equals_sequential () =
  let r = check_equal_across_lps (model ~seed:42 ()) in
  Alcotest.(check bool) "work happened" true (r.outcome.submitted > 50);
  Alcotest.(check bool) "drained" true r.outcome.drained

(* fig6 shape: bimodal service times (short tasks with a heavy tail). *)
let test_bimodal_equality () =
  let service = Dist.bimodal (Time.us 25, 0.9) (Time.us 500) in
  let r = check_equal_across_lps (model ~service ~seed:7 ()) in
  Alcotest.(check bool) "tail produced queueing" true (r.outcome.sched_p99 > 0)

(* Randomized workloads: the contract must hold for arbitrary seeds. *)
let test_random_seeds_equality =
  QCheck.Test.make ~count:8 ~name:"sharded = sequential on random seeds"
    QCheck.(pair (int_bound 1_000_000) bool)
    (fun (seed, bimodal) ->
      let service =
        if bimodal then Dist.bimodal (Time.us 25, 0.9) (Time.us 500)
        else Dist.exponential ~mean:(Time.us 50)
      in
      let config = model ~service ~seed () in
      let a = (H.Shard.run_model ~lps:1 ~workers:1 config).outcome in
      let b = (H.Shard.run_model ~lps:3 ~workers:1 config).outcome in
      a = b)

(* Worker domains must not change anything either: same model, 4 LPs,
   executed by 1 vs 2 domains through the persistent team. *)
let test_workers_equality () =
  let config = model ~seed:11 () in
  let one = H.Shard.run_model ~lps:4 ~workers:1 config in
  let two = H.Shard.run_model ~lps:4 ~workers:2 config in
  if one.outcome <> two.outcome then
    Alcotest.failf "worker count changed the outcome: %a vs %a"
      H.Runner.pp_outcome one.outcome H.Runner.pp_outcome two.outcome;
  Alcotest.(check int) "windows" one.windows two.windows

(* Faults compose with the window protocol: loss burst + partition +
   straggler windows produce the same (degraded) outcome everywhere. *)
let test_fault_plan_equality () =
  let faults =
    Plan.create
      [
        { Plan.at = Time.us 50;
          event = Plan.Straggler { node = 1; factor = 4.0; duration = Time.us 800 } };
        { Plan.at = Time.us 100;
          event = Plan.Partition { hosts = [ 0; 5 ]; duration = Time.us 400 } };
        { Plan.at = Time.us 200;
          event = Plan.Loss_burst { duration = Time.us 300; loss = 0.5 } };
      ]
  in
  let r = check_equal_across_lps (model ~faults ~seed:42 ()) in
  Alcotest.(check bool) "faults dropped messages" true (r.dropped > 0);
  Alcotest.(check bool) "drops become timeouts" true (r.outcome.timeouts > 0);
  Alcotest.(check int) "timeouts = submitted - completed"
    (r.outcome.submitted - r.outcome.completed)
    r.outcome.timeouts

let test_unsupported_faults_rejected () =
  let faults = Plan.create [ { Plan.at = Time.us 10; event = Plan.Switch_failover } ] in
  try
    ignore (H.Shard.run_model ~lps:1 ~workers:1 (model ~faults ~seed:1 ()));
    Alcotest.fail "expected rejection of Switch_failover"
  with Invalid_argument msg ->
    Alcotest.(check bool) "names the fault" true
      (Astring.String.is_infix ~affix:"failover" msg)

(* The sequential path is the bit-deterministic reference: re-running
   the exact same config reproduces the outcome exactly. *)
let test_sequential_reproducible () =
  let config = model ~seed:123 () in
  let a = (H.Shard.run_model ~lps:1 ~workers:1 config).outcome in
  let b = (H.Shard.run_model ~lps:1 ~workers:1 config).outcome in
  Alcotest.(check bool) "bit-identical rerun" true (a = b)

(* -- the DRACONIS_SHARDS knob ---------------------------------------------- *)

let test_shards_knob () =
  let raises f = try f () ; false with Invalid_argument _ -> true in
  Alcotest.(check bool) "0 rejected" true (raises (fun () -> H.Shard.set_shards 0));
  Alcotest.(check bool) "above cap rejected" true
    (raises (fun () -> H.Shard.set_shards (H.Shard.max_shards + 1)));
  H.Shard.set_shards 2;
  Alcotest.(check int) "override sticks" 2 (H.Shard.shards ());
  H.Shard.set_shards 1

let test_env_shards_fails_loudly () =
  (* A bad DRACONIS_SHARDS must raise, not warn and run unsharded. *)
  let with_env v f =
    Unix.putenv H.Shard.env_var v;
    Fun.protect ~finally:(fun () -> Unix.putenv H.Shard.env_var "") f
  in
  let rejects v =
    with_env v (fun () ->
        try
          ignore (H.Shard.env_shards ());
          false
        with Invalid_argument _ -> true)
  in
  Alcotest.(check bool) "garbage rejected" true (rejects "two");
  Alcotest.(check bool) "zero rejected" true (rejects "0");
  Alcotest.(check bool) "above cap rejected" true
    (rejects (string_of_int (H.Shard.max_shards + 1)));
  with_env "4" (fun () ->
      Alcotest.(check (option int)) "valid setting honoured" (Some 4)
        (H.Shard.env_shards ()));
  with_env "" (fun () ->
      Alcotest.(check (option int)) "empty means unset" None (H.Shard.env_shards ()))

let suite =
  [
    Alcotest.test_case "topology partition is rack-aligned" `Quick
      test_partition_rack_aligned;
    Alcotest.test_case "partition with more groups than racks" `Quick
      test_partition_more_groups_than_racks;
    Alcotest.test_case "partition bounds" `Quick test_partition_bounds;
    Alcotest.test_case "Lp.post rejects stamps below the floor" `Quick
      test_lp_post_floor_violation;
    Alcotest.test_case "mailbox enforces the lookahead" `Quick
      test_mailbox_lookahead_enforced;
    Alcotest.test_case "injection sorts by (at, src, seq)" `Quick
      test_injection_sorted_by_stamp;
    Alcotest.test_case "ties + injection survive renumber" `Slow
      test_sync_ties_survive_renumber;
    Alcotest.test_case "sharded = sequential outcomes" `Quick
      test_sharded_equals_sequential;
    Alcotest.test_case "bimodal (fig6-shape) equality" `Quick test_bimodal_equality;
    QCheck_alcotest.to_alcotest test_random_seeds_equality;
    Alcotest.test_case "worker domains do not change outcomes" `Quick
      test_workers_equality;
    Alcotest.test_case "fault plans compose with sharding" `Quick
      test_fault_plan_equality;
    Alcotest.test_case "unsupported faults rejected" `Quick
      test_unsupported_faults_rejected;
    Alcotest.test_case "sequential path is reproducible" `Quick
      test_sequential_reproducible;
    Alcotest.test_case "DRACONIS_SHARDS knob validation" `Quick test_shards_knob;
    Alcotest.test_case "DRACONIS_SHARDS fails loudly" `Quick
      test_env_shards_fails_loudly;
  ]
