(* draconis-sim: command-line front end for the Draconis reproduction.

   Subcommands:
     run        simulate one scheduler under a synthetic workload
     figures    regenerate the paper's tables/figures (same as bench)
     resources  print the sec-7 switch-capacity estimates *)

open Cmdliner
open Draconis_sim
module H = Draconis_harness
module W = Draconis_workload
module Obs = Draconis_obs

(* -- observability options (shared by run and figures) --------------------- *)

(* [with_obs (trace, metrics, int, probe_us, max_events) f] enables the
   observability sink around [f] when an export path was given, then
   writes (and self-checks) the requested files.  --int-out also turns
   on in-band telemetry stamping; DRACONIS_INT applies first, so the
   flags win. *)
let with_obs (trace_out, metrics_out, int_out, int_budget, probe_interval_us, max_events)
    f =
  let wanted = trace_out <> None || metrics_out <> None || int_out <> None in
  (try Obs.Int_telemetry.apply_env () with
  | Invalid_argument msg ->
    (* [msg] already carries the DRACONIS_INT prefix. *)
    Printf.eprintf "%s\n" msg;
    exit 1);
  (match int_budget with
  | None -> ()
  | Some n -> (
    try Obs.Int_telemetry.set_budget n with
    | Invalid_argument msg ->
      Printf.eprintf "--int-budget: %s\n" msg;
      exit 1));
  if int_out <> None then
    Obs.Int_telemetry.enable ~budget:(Obs.Int_telemetry.budget ()) ();
  (match probe_interval_us with
  | Some us when us < 1 ->
    Printf.eprintf "--probe-interval-us must be >= 1 (got %d)\n" us;
    exit 1
  | Some _ | None -> ());
  (match max_events with
  | Some n when n < 1 ->
    Printf.eprintf "--max-trace-events must be >= 1 (got %d)\n" n;
    exit 1
  | Some _ | None -> ());
  if wanted then begin
    let probe_interval =
      match probe_interval_us with
      | None -> Obs.Probe.default_interval
      | Some us -> Time.us us
    in
    Obs.Sink.enable ~probe_interval ?capacity:max_events ()
  end;
  f ();
  if wanted then begin
    let runs = Obs.Sink.drain () in
    Option.iter
      (fun path ->
        Obs.Chrome_trace.write ~path runs;
        match Obs.Json.parse_file path with
        | Ok _ ->
          Printf.printf "wrote %s (%d runs; re-parsed OK)\n%!" path (List.length runs)
        | Error msg ->
          Printf.eprintf "trace export is not valid JSON: %s\n" msg;
          exit 1)
      trace_out;
    Option.iter
      (fun path ->
        Obs.Dump.write_metrics ~path runs;
        Printf.printf "wrote %s\n%!" path)
      metrics_out;
    Option.iter
      (fun path ->
        Obs.Dump.write_metrics ~path runs;
        let with_int =
          List.length
            (List.filter (fun r -> Obs.Recorder.int_telemetry r <> None) runs)
        in
        Printf.printf "wrote %s (%d/%d runs carry INT sections)\n%!" path with_int
          (List.length runs))
      int_out
  end

let obs_term =
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Export a Chrome trace-event timeline of the run(s) to $(docv) \
             (load into Perfetto or chrome://tracing).")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Export per-run counters, gauges, histograms and probe series to \
             $(docv); a .csv extension selects CSV instead of JSON.")
  in
  let probe =
    Arg.(
      value & opt (some int) None
      & info [ "probe-interval-us" ] ~docv:"US"
          ~doc:"Probe sampling period in simulated microseconds (default 100).")
  in
  let max_events =
    Arg.(
      value & opt (some int) None
      & info [ "max-trace-events" ] ~docv:"N"
          ~doc:
            "Per-run event-buffer bound (default 2^20); events past the bound \
             are counted as dropped_events in the metrics export instead of \
             stored.")
  in
  let int_out =
    Arg.(
      value & opt (some string) None
      & info [ "int-out" ] ~docv:"FILE"
          ~doc:
            "Enable in-band telemetry stamping on the switch data path and \
             export a draconis-obs/3 metrics dump (with per-run \"int\" \
             sections) to $(docv); analyze it with $(b,draconis-trace int).  \
             The $(b,DRACONIS_INT) environment variable applies first \
             (0 disables, N sets the budget); flags win.")
  in
  let int_budget =
    Arg.(
      value & opt (some int) None
      & info [ "int-budget" ] ~docv:"N"
          ~doc:
            "In-band telemetry header budget, 1..64 stamps per packet \
             (default 4); stamps past the budget are counted as lost, not \
             stored.")
  in
  Term.(
    const (fun t m i b p n -> (t, m, i, b, p, n))
    $ trace_out $ metrics_out $ int_out $ int_budget $ probe $ max_events)

(* -- run ------------------------------------------------------------------- *)

let system_names =
  [ "draconis"; "r2p2-1"; "r2p2-3"; "r2p2-5"; "racksched"; "sparrow"; "sparrow2";
    "dpdk-server"; "socket-server" ]

(* Returns the running handle plus, where the system supports it, the
   fault-injection target for --fault plans (sparrow has no timeout
   path, so no target). *)
let make_system_with_target name (spec : H.Systems.spec) timeout_us =
  let module F = Draconis_fault in
  let timeout = Option.map Time.us timeout_us in
  match name with
  | "draconis" ->
    let cluster, running = H.Systems.draconis_cluster ?client_timeout:timeout spec in
    (running, Some (F.Target.of_cluster ~name:running.H.Systems.name cluster))
  | "r2p2-1" | "r2p2-3" | "r2p2-5" ->
    let k = int_of_string (String.sub name 5 1) in
    let r2p2, running = H.Systems.r2p2_system ~k ?client_timeout:timeout spec in
    (running, Some (F.Target.of_r2p2 ~name:running.H.Systems.name r2p2))
  | "racksched" ->
    let racksched, running = H.Systems.racksched_system ?client_timeout:timeout spec in
    (running, Some (F.Target.of_racksched ~name:running.H.Systems.name racksched))
  | "sparrow" -> (H.Systems.sparrow ~schedulers:1 spec, None)
  | "sparrow2" -> (H.Systems.sparrow ~schedulers:2 spec, None)
  | "dpdk-server" ->
    let server, running =
      H.Systems.central_server_system ?client_timeout:timeout
        Draconis_baselines.Central_server.Dpdk spec
    in
    (running, Some (F.Target.of_central_server ~name:running.H.Systems.name server))
  | "socket-server" ->
    let server, running =
      H.Systems.central_server_system ?client_timeout:timeout
        Draconis_baselines.Central_server.Socket spec
    in
    (running, Some (F.Target.of_central_server ~name:running.H.Systems.name server))
  | other -> invalid_arg ("unknown system: " ^ other)

let make_system name spec timeout_us = fst (make_system_with_target name spec timeout_us)

let run_cmd obs system_name workload_name load_tps utilization workers epw clients
    seed horizon_ms timeout_us fault_spec =
  with_obs obs @@ fun () ->
  match W.Synthetic.of_name workload_name with
  | None ->
    Printf.eprintf "unknown workload %S; try: %s\n" workload_name
      (String.concat ", " (List.map W.Synthetic.name W.Synthetic.all));
    exit 1
  | Some kind ->
    let spec = { H.Systems.workers; executors_per_worker = epw; clients; seed } in
    let executors = workers * epw in
    let load =
      match (load_tps, utilization) with
      | Some tps, _ -> tps
      | None, u -> u *. H.Exp_common.capacity_tps kind ~executors
    in
    let horizon = Time.ms horizon_ms in
    let module F = Draconis_fault in
    let plan =
      match fault_spec with
      | None -> F.Plan.empty
      | Some spec -> (
        try F.Plan.of_string spec
        with Invalid_argument msg ->
          Printf.eprintf "bad --fault plan: %s\n" msg;
          exit 1)
    in
    let system, target = make_system_with_target system_name spec timeout_us in
    let injector =
      if F.Plan.is_empty plan then None
      else
        match target with
        | None ->
          Printf.eprintf "--fault is not supported for system %S\n" system_name;
          exit 1
        | Some target -> (
          try Some (F.Injector.arm plan target)
          with Invalid_argument msg ->
            Printf.eprintf "bad --fault plan: %s\n" msg;
            exit 1)
    in
    let driver = H.Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
    let o = H.Runner.run system ~driver ~load_tps:load ~horizon () in
    Format.printf "%a@." H.Runner.pp_outcome o;
    Printf.printf
      "  p50 %.1f us | p99 %.1f us | mean %.1f us | decisions %.0f/s\n"
      (float_of_int o.sched_p50 /. 1e3)
      (float_of_int o.sched_p99 /. 1e3)
      (o.sched_mean /. 1e3) o.decisions_per_sec;
    Printf.printf
      "  submitted %d | started %d | completed %d | timeouts %d | rejected %d\n"
      o.submitted o.started o.completed o.timeouts o.rejected;
    Printf.printf "  recirculation %.3f%% | recirc drops %d | drained %b\n"
      (100.0 *. o.recirc_fraction) o.recirc_drops o.drained;
    match injector with
    | None -> ()
    | Some injector ->
      List.iter
        (fun (at, what) -> Printf.printf "  [%.1f us] %s\n" (Time.to_us at) what)
        (F.Injector.fired injector);
      let report =
        F.Recovery.measure ~metrics:system.H.Systems.metrics ~injector ~until:horizon
          ()
      in
      Format.printf "%a@." F.Recovery.pp report

let run_term =
  let system =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) system_names)) "draconis"
      & info [ "s"; "system" ] ~docv:"SYSTEM"
          ~doc:"Scheduler to simulate: $(docv) is one of draconis, r2p2-{1,3,5}, \
                racksched, sparrow, sparrow2, dpdk-server, socket-server.")
  in
  let workload =
    Arg.(
      value & opt string "500us"
      & info [ "w"; "workload" ] ~docv:"KIND"
          ~doc:"Synthetic workload: 100us, 250us, 500us, bimodal, trimodal, exp-250us.")
  in
  let load =
    Arg.(
      value & opt (some float) None
      & info [ "load" ] ~docv:"TPS" ~doc:"Offered load in tasks per second.")
  in
  let util =
    Arg.(
      value & opt float 0.5
      & info [ "u"; "utilization" ] ~docv:"FRACTION"
          ~doc:"Offered load as a fraction of cluster capacity (ignored if --load is set).")
  in
  let workers =
    Arg.(value & opt int 10 & info [ "workers" ] ~docv:"N" ~doc:"Worker nodes.")
  in
  let epw =
    Arg.(
      value & opt int 16
      & info [ "executors-per-worker" ] ~docv:"N" ~doc:"Executors per worker node.")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Client hosts.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let horizon =
    Arg.(
      value & opt int 200
      & info [ "horizon-ms" ] ~docv:"MS" ~doc:"Submission window, milliseconds.")
  in
  let timeout =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-us" ] ~docv:"US"
          ~doc:"Client per-task timeout in microseconds (enables resubmission).")
  in
  let fault =
    Arg.(
      value & opt (some string) None
      & info [ "fault" ] ~docv:"PLAN"
          ~doc:
            "Deterministic fault plan: ';'-separated timed events, e.g. \
             $(b,failover\\@5ms), $(b,crash\\@2ms:node=3,down=1ms), \
             $(b,burst\\@1ms:dur=500us,loss=0.8), \
             $(b,partition\\@1ms:hosts=0+1,dur=2ms), \
             $(b,straggler\\@1ms:node=2,factor=4,dur=2ms).  Pair with \
             $(b,--timeout-us) so clients recover lost tasks.")
  in
  Term.(
    const run_cmd $ obs_term $ system $ workload $ load $ util $ workers $ epw
    $ clients $ seed $ horizon $ timeout $ fault)

let run_info =
  Cmd.info "run" ~doc:"Simulate one scheduler under a synthetic workload"

(* -- figures ------------------------------------------------------------------ *)

let figures_cmd obs quick jobs names =
  with_obs obs @@ fun () ->
  (match jobs with
  | Some n when n >= 1 -> H.Pool.set_jobs n
  | Some n ->
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" n;
    exit 1
  | None -> ());
  let all =
    [
      ("fig5a", H.Fig5a.run); ("fig5b", H.Fig5b.run); ("fig6", H.Fig6.run);
      ("fig7", H.Fig7.run); ("fig8", H.Fig8.run); ("fig9", H.Fig9.run);
      ("fig10", H.Fig10.run); ("fig11", H.Fig11.run); ("fig12", H.Fig12.run);
      ("fig13", H.Fig13.run); ("figf", H.Figf.run);
      ("resources", H.Resource_table.run);
      ("scaling", H.Scaling.run); ("others", H.Others.run);
      ("ablations", H.Ablations.run);
    ]
  in
  let selected =
    if names = [] then all
    else
      List.map
        (fun name ->
          match List.assoc_opt name all with
          | Some run -> (name, run)
          | None ->
            Printf.eprintf "unknown figure %S\n" name;
            exit 1)
        names
  in
  List.iter
    (fun (_, (run : ?quick:bool -> unit -> unit)) -> run ~quick ())
    selected

let figures_term =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller grids and horizons.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the experiment grids (default: \
             \\$(b,DRACONIS_JOBS) or number of cores minus one).  Results \
             are merged in submission order, so tables are identical for \
             any $(docv).")
  in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"FIGURE" ~doc:"Figures to run.")
  in
  Term.(const figures_cmd $ obs_term $ quick $ jobs $ names)

let figures_info =
  Cmd.info "figures" ~doc:"Regenerate the paper's evaluation tables and figures"

(* -- trace ------------------------------------------------------------------ *)

let trace_generate_cmd path mean_us rate horizon_ms seed levels =
  let spec =
    {
      W.Google_trace.default_spec with
      mean_duration = Time.us mean_us;
      rate_tps = rate;
      horizon = Time.ms horizon_ms;
      priority_levels = levels;
    }
  in
  let trace = W.Trace_file.generate (Rng.create ~seed) spec in
  W.Trace_file.save trace ~path;
  Printf.printf "wrote %d tasks in %d jobs to %s\n" (W.Trace_file.task_count trace)
    (List.length trace) path

let trace_replay_cmd path system_name workers epw timeout_us =
  let spec =
    { H.Systems.default_spec with workers; executors_per_worker = epw; clients = 1 }
  in
  let trace = W.Trace_file.load ~path in
  let horizon =
    List.fold_left (fun acc job -> max acc job.W.Trace_file.arrival) 0 trace
  in
  let system = make_system system_name spec timeout_us in
  let driver engine _rng ~submit = W.Trace_file.drive engine trace ~submit in
  let o =
    H.Runner.run system ~driver
      ~load_tps:(float_of_int (W.Trace_file.task_count trace) /. Time.to_s horizon)
      ~horizon ()
  in
  Format.printf "%a@." H.Runner.pp_outcome o

let trace_term =
  let path =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"FILE" ~doc:"Trace file.")
  in
  let action =
    Arg.(
      required
      & pos 0 (some (enum [ ("generate", `Generate); ("replay", `Replay) ])) None
      & info [] ~docv:"ACTION" ~doc:"generate or replay.")
  in
  let mean_us =
    Arg.(value & opt int 500 & info [ "mean-us" ] ~docv:"US" ~doc:"Mean task duration.")
  in
  let rate =
    Arg.(value & opt float 100_000.0 & info [ "rate" ] ~docv:"TPS" ~doc:"Task rate.")
  in
  let horizon =
    Arg.(value & opt int 200 & info [ "horizon-ms" ] ~docv:"MS" ~doc:"Trace length.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let levels =
    Arg.(value & opt int 0 & info [ "priority-levels" ] ~docv:"N" ~doc:"0 disables.")
  in
  let system =
    Arg.(
      value
      & opt (enum (List.map (fun n -> (n, n)) system_names)) "draconis"
      & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc:"Scheduler for replay.")
  in
  let workers =
    Arg.(value & opt int 10 & info [ "workers" ] ~docv:"N" ~doc:"Worker nodes.")
  in
  let epw =
    Arg.(
      value & opt int 16
      & info [ "executors-per-worker" ] ~docv:"N" ~doc:"Executors per worker.")
  in
  let timeout =
    Arg.(
      value & opt (some int) None
      & info [ "timeout-us" ] ~docv:"US" ~doc:"Client per-task timeout.")
  in
  let run action path mean_us rate horizon seed levels system workers epw timeout =
    match action with
    | `Generate -> trace_generate_cmd path mean_us rate horizon seed levels
    | `Replay -> trace_replay_cmd path system workers epw timeout
  in
  Term.(
    const run $ action $ path $ mean_us $ rate $ horizon $ seed $ levels $ system
    $ workers $ epw $ timeout)

let trace_info =
  Cmd.info "trace" ~doc:"Generate a workload trace file or replay one"

(* -- resources ------------------------------------------------------------------ *)

let resources_cmd () = H.Resource_table.run ()

let resources_info =
  Cmd.info "resources" ~doc:"Print the sec-7 switch resource estimates"

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "draconis-sim" ~version:"1.0.0"
      ~doc:"Simulated reproduction of Draconis (EuroSys '24)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            Cmd.v run_info run_term;
            Cmd.v figures_info figures_term;
            Cmd.v trace_info trace_term;
            Cmd.v resources_info (Term.(const resources_cmd $ const ()));
          ]))
