(* draconis-trace: offline analysis of exported observability data.

   Subcommands:
     analyze  per-phase latency decomposition of a metrics export
     int      in-band telemetry report (queue depth, recirc chains)
     compare  regression-guard diff of two bench JSON reports *)

open Cmdliner
module Obs = Draconis_obs

(* -- analyze ---------------------------------------------------------------- *)

let analyze_cmd path format =
  match Obs.Analyze.load ~path with
  | Error msg ->
    Printf.eprintf "draconis-trace: %s\n" msg;
    exit 1
  | Ok runs ->
    print_string
      (match format with
      | `Text -> Obs.Analyze.render_text runs
      | `Json -> Obs.Analyze.render_json runs
      | `Csv -> Obs.Analyze.render_csv runs);
    (* Exactness is the analyzer's contract: a run that claims phase
       attribution must decompose to the tick.  Fail loudly if not. *)
    let broken =
      List.filter
        (fun (r : Obs.Analyze.run) ->
          match r.attribution with
          | Some a -> not (a.exact && a.verified)
          | None -> false)
        runs
    in
    if broken <> [] then begin
      List.iter
        (fun (r : Obs.Analyze.run) ->
          Printf.eprintf "draconis-trace: phase sums are not exact for run %S\n" r.label)
        broken;
      exit 1
    end

let analyze_term =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"METRICS" ~doc:"Metrics export (draconis-obs JSON).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
      & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"Output format: text, json, or csv.")
  in
  Term.(const analyze_cmd $ path $ format)

let analyze_info =
  Cmd.info "analyze"
    ~doc:
      "Per-phase latency decomposition (client/fabric/pipeline/queue/recirc/\
       dispatch/service/reply) of a metrics export, with critical-path, anomaly, \
       and slowest-task breakdowns; exits non-zero if any run's phases fail to \
       sum exactly to its end-to-end delays"

(* -- int -------------------------------------------------------------------- *)

let int_cmd path format top =
  if top < 1 then begin
    Printf.eprintf "--top must be >= 1 (got %d)\n" top;
    exit 1
  end;
  match Obs.Int_report.load ~path with
  | Error msg ->
    Printf.eprintf "draconis-trace: %s\n" msg;
    exit 1
  | Ok runs ->
    print_string
      (match format with
      | `Text -> Obs.Int_report.render_text ~top runs
      | `Json -> Obs.Int_report.render_json runs
      | `Csv -> Obs.Int_report.render_csv runs);
    (* The dump's per-queue totals are redundant with the bucketed
       series on purpose: re-derive them here and fail loudly on any
       mismatch (the offline occupancy re-check). *)
    let broken =
      List.filter
        (fun (r : Obs.Int_report.run) ->
          match r.int_ with
          | Some s -> Obs.Int_report.recheck s <> []
          | None -> false)
        runs
    in
    if broken <> [] then begin
      List.iter
        (fun (r : Obs.Int_report.run) ->
          Printf.eprintf "draconis-trace: occupancy re-check failed for run %S\n"
            r.label)
        broken;
      exit 1
    end

let int_term =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"METRICS" ~doc:"Metrics export (draconis-obs/3 JSON with INT sections).")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
      & info [ "f"; "format" ] ~docv:"FORMAT" ~doc:"Output format: text, json, or csv.")
  in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"K" ~doc:"How many recirculation chains to list.")
  in
  Term.(const int_cmd $ path $ format $ top)

let int_info =
  Cmd.info "int"
    ~doc:
      "In-band telemetry report from a metrics export: per-queue depth heatmaps \
       over time, per-stage hop latency, rank-store bank activity, top-K \
       recirculation chains, and stamp-loss accounting; exits non-zero if the \
       offline occupancy re-check finds the depth series inconsistent with the \
       recorded totals"

(* -- compare ---------------------------------------------------------------- *)

let compare_cmd base_path cur_path tol_pct =
  if tol_pct < 0.0 || Float.is_nan tol_pct then begin
    Printf.eprintf "--tol-pct must be >= 0 (got %g)\n" tol_pct;
    exit 1
  end;
  match
    Obs.Bench_compare.compare_files ~tol_pct:(tol_pct /. 100.0) ~base_path ~cur_path ()
  with
  | Error msg ->
    Printf.eprintf "draconis-trace: %s\n" msg;
    exit 1
  | Ok report ->
    print_string (Obs.Bench_compare.render report);
    if not (Obs.Bench_compare.passed report) then exit 1

let compare_term =
  let base =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASELINE" ~doc:"Baseline bench report (draconis-bench JSON).")
  in
  let cur =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"CURRENT" ~doc:"Current bench report to check.")
  in
  let tol =
    Arg.(
      value & opt float 10.0
      & info [ "tol-pct" ] ~docv:"PCT"
          ~doc:
            "Relative tolerance in percent applied per field (small absolute \
             floors absorb tick-level noise near zero).")
  in
  Term.(const compare_cmd $ base $ cur $ tol)

let compare_info =
  Cmd.info "compare"
    ~doc:
      "Diff two bench --json reports field by field and exit non-zero on any \
       regression beyond tolerance (missing outcomes and drained flips always \
       fail; event counts and wall time are informational)"

let main =
  Cmd.group
    (Cmd.info "draconis-trace" ~version:"%%VERSION%%"
       ~doc:"Offline analysis of Draconis observability exports")
    [
      Cmd.v analyze_info analyze_term;
      Cmd.v int_info int_term;
      Cmd.v compare_info compare_term;
    ]

let () = exit (Cmd.eval main)
