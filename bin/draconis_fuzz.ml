(* draconis-fuzz: property-fuzz the switch pipeline against an oracle.

   Subcommands:
     run     sweep generated schedules over a seed range
     replay  re-execute one saved reproducer
     corpus  re-execute every reproducer in a directory *)

open Cmdliner
module Fuzz = Draconis_fuzz.Fuzz
module Exec = Draconis_fuzz.Exec
module Schedule = Draconis_fuzz.Schedule

let bug_conv =
  let parse s =
    try Ok (Exec.bug_of_string s)
    with Invalid_argument msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Exec.bug_to_string b))

let inject_arg =
  Arg.(
    value
    & opt (some bug_conv) None
    & info [ "inject" ] ~docv:"BUG"
        ~doc:
          "Inject a known bug (skip-stamp-check or drop-retrieve-repair) to \
           prove the harness catches and shrinks it; the run then $(i,fails) \
           if no violation is found.")

(* -- run --------------------------------------------------------------------- *)

let run_cmd seeds seed_base ops inject json artifacts require_all shrink_budget
    sharded =
  if seeds < 1 then begin
    Printf.eprintf "draconis-fuzz: --seeds must be >= 1\n";
    exit 1
  end;
  let seed_list = List.init seeds (fun i -> seed_base + i) in
  let campaign =
    Fuzz.run_campaign ?bug:inject ~ops ~shrink_budget ?artifacts ~sharded
      ~seeds:seed_list ()
  in
  print_string (if json then Fuzz.to_json campaign else Fuzz.render_text campaign);
  match inject with
  | None ->
    let missing = Fuzz.unexercised campaign in
    if require_all && missing <> [] then begin
      Printf.eprintf "draconis-fuzz: invariants never exercised: %s\n"
        (String.concat ", " missing);
      exit 1
    end;
    if not (Fuzz.ok campaign) then exit 1
  | Some bug ->
    (* Self-test: the injected bug must be caught on at least one seed. *)
    if Fuzz.ok campaign then begin
      Printf.eprintf "draconis-fuzz: injected bug %s escaped %d seed(s)\n"
        (Exec.bug_to_string bug) seeds;
      exit 1
    end

let run_term =
  let seeds =
    Arg.(
      value & opt int 200
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of consecutive seeds to sweep.")
  in
  let seed_base =
    Arg.(
      value & opt int 1
      & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed of the sweep.")
  in
  let ops =
    Arg.(
      value
      & opt int Fuzz.default_ops
      & info [ "ops" ] ~docv:"N" ~doc:"Operations per generated schedule.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the campaign report as JSON.")
  in
  let artifacts =
    Arg.(
      value
      & opt (some string) None
      & info [ "artifacts" ] ~docv:"DIR"
          ~doc:"Directory to write shrunk reproducers into (seed-N.fuzz).")
  in
  let require_all =
    Arg.(
      value & flag
      & info [ "require-all-invariants" ]
          ~doc:
            "Fail if any invariant was never evaluated during the sweep (used \
             by the smoke gate to keep the sweep honest).")
  in
  let shrink_budget =
    Arg.(
      value
      & opt int Fuzz.default_shrink_budget
      & info [ "max-shrink-execs" ] ~docv:"N"
          ~doc:"Execution budget for minimizing each failure.")
  in
  let sharded =
    Arg.(
      value & flag
      & info [ "sharded" ]
          ~doc:
            "Sharded-execution smoke: additionally run every schedule through \
             the LP-partitioned data path at 1 and 2 shards and check cross-LP \
             outcome equality (the sharded-consistency invariant).  The extra \
             legs are skipped when --inject is set (the bug self-test belongs \
             to the single-engine rig).")
  in
  Term.(
    const run_cmd $ seeds $ seed_base $ ops $ inject_arg $ json $ artifacts
    $ require_all $ shrink_budget $ sharded)

let run_info =
  Cmd.info "run"
    ~doc:
      "Generate adversarial schedules over a seed range, drive each through \
       the real switch pipeline twice (replication check), and verify every \
       invariant against the oracle queue, shrinking any failure to a minimal \
       reproducer; exits non-zero on violations"

(* -- replay ------------------------------------------------------------------ *)

let replay_cmd path inject =
  let schedule =
    try Schedule.load path
    with
    | Invalid_argument msg | Sys_error msg ->
      Printf.eprintf "draconis-fuzz: %s\n" msg;
      exit 1
  in
  let report = Exec.run_checked ?bug:inject schedule in
  print_string (Fuzz.render_report schedule report);
  if report.Draconis_fuzz.Checker.violations <> [] then exit 1

let replay_term =
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Saved schedule (draconis-fuzz/1 format).")
  in
  Term.(const replay_cmd $ path $ inject_arg)

let replay_info =
  Cmd.info "replay"
    ~doc:
      "Re-execute one saved reproducer deterministically and re-check every \
       invariant; exits non-zero if the violation still fires"

(* -- corpus ------------------------------------------------------------------ *)

let corpus_cmd dir inject =
  let entries =
    try Sys.readdir dir
    with Sys_error msg ->
      Printf.eprintf "draconis-fuzz: %s\n" msg;
      exit 1
  in
  let files =
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".fuzz")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then begin
    Printf.eprintf "draconis-fuzz: no .fuzz reproducers under %s\n" dir;
    exit 1
  end;
  let failed = ref 0 in
  List.iter
    (fun path ->
      let schedule =
        try Schedule.load path
        with Invalid_argument msg | Sys_error msg ->
          Printf.eprintf "draconis-fuzz: %s: %s\n" path msg;
          exit 1
      in
      let report = Exec.run_checked ?bug:inject schedule in
      let bad = report.Draconis_fuzz.Checker.violations <> [] in
      if bad then incr failed;
      Printf.printf "%-8s %s\n" (if bad then "FAIL" else "ok") path)
    files;
  Printf.printf "%d reproducer(s), %d failing\n" (List.length files) !failed;
  if !failed > 0 then exit 1

let corpus_term =
  let dir =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory of .fuzz reproducers.")
  in
  Term.(const corpus_cmd $ dir $ inject_arg)

let corpus_info =
  Cmd.info "corpus"
    ~doc:
      "Replay every .fuzz reproducer in a directory (a regression corpus of \
       previously shrunk failures) and exit non-zero if any still violates"

let main =
  Cmd.group
    (Cmd.info "draconis-fuzz" ~version:"%%VERSION%%"
       ~doc:"Deterministic property-fuzzing of the Draconis switch pipeline")
    [ Cmd.v run_info run_term; Cmd.v replay_info replay_term;
      Cmd.v corpus_info corpus_term ]

let () = exit (Cmd.eval main)
