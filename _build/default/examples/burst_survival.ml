(* Burst survival: the paper's Fig 7 story as a runnable scenario.

   A client slams the cluster with submission bursts at ~93% average
   utilization.  R2P2-1 has no queue anywhere to absorb them, so its
   recirculating search saturates the switch's loop-back port and tasks
   are dropped (the client times out and resubmits, inflating the tail);
   Draconis parks the burst in the switch-resident central queue and
   keeps the tail flat.

   Run with:  dune exec examples/burst_survival.exe *)

open Draconis_sim
open Draconis_proto
module H = Draconis_harness

let task_us = 250
let burst_size = 32
let utilization = 0.93

let bursty_driver ~rate_tps ~horizon : H.Runner.driver =
 fun engine rng ~submit ->
  let burst_rate = rate_tps /. float_of_int burst_size in
  let mean_gap_ns = 1e9 /. burst_rate in
  let rec arrive () =
    if Engine.now engine <= horizon then begin
      submit
        (List.init burst_size (fun tid ->
             Task.make ~uid:0 ~jid:0 ~tid ~fn_id:Task.Fn.busy_loop
               ~fn_par:(Time.us task_us) ()));
      let u = 1.0 -. Rng.float rng in
      let gap = max 1 (int_of_float (Float.round (-.mean_gap_ns *. log u))) in
      ignore (Engine.schedule engine ~after:gap arrive)
    end
  in
  ignore (Engine.schedule engine ~after:1 arrive)

let () =
  let spec = H.Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let rate = utilization *. float_of_int executors /. (float_of_int task_us *. 1e-6) in
  let horizon = Time.ms 150 in
  Printf.printf
    "Bursts of %d x %dus tasks at %.0f ktps (%.0f%% utilization) on %d executors:\n\n"
    burst_size task_us (rate /. 1e3) (100. *. utilization) executors;
  List.iter
    (fun make ->
      let system : H.Systems.running = make () in
      let o =
        H.Runner.run system
          ~driver:(bursty_driver ~rate_tps:rate ~horizon)
          ~load_tps:rate ~horizon ()
      in
      Printf.printf
        "%-10s p50 %8.1f us | p99 %9.1f us | recirculated %5.1f%% of packets | dropped %6d | timeouts %5d\n"
        o.system
        (float_of_int o.sched_p50 /. 1e3)
        (float_of_int o.sched_p99 /. 1e3)
        (100.0 *. o.recirc_fraction) o.recirc_drops o.timeouts)
    [
      (fun () -> H.Systems.draconis spec);
      (fun () -> H.Systems.r2p2 ~k:1 ~client_timeout:(Time.us (2 * task_us)) spec);
      (fun () -> H.Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 1) spec);
    ];
  print_newline ();
  print_endline
    "Draconis' central switch queue absorbs the bursts: its recirculations\n\
     are the bounded per-task submission splits of multi-task packets, and\n\
     nothing is dropped.  R2P2-1 recirculates every unplaceable task until\n\
     the loop-back port overflows and drops it; the client timeouts that\n\
     recover those tasks are what blow up its tail."
