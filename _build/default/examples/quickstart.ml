(* Quickstart: bring up a simulated Draconis deployment, submit a batch
   of microsecond-scale tasks, and read back the scheduling metrics.

   Run with:  dune exec examples/quickstart.exe *)

open Draconis_sim
open Draconis_proto
open Draconis

let () =
  (* A small cluster: 4 worker nodes x 8 executors, one client, the
     switch running the plain cFCFS policy (paper sec 4.8). *)
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers = 4;
        executors_per_worker = 8;
        clients = 1;
      }
  in
  Cluster.start cluster;
  let client = Cluster.client cluster 0 in
  let engine = Cluster.engine cluster in

  (* Submit 1000 jobs of four 100us tasks each, Poisson-ish spaced over
     50 ms of simulated time (~80 ktps against a 320 ktps cluster). *)
  let rng = Rng.create ~seed:1 in
  for i = 0 to 999 do
    let at = Time.us (50 * i) + Rng.int rng (Time.us 25) in
    ignore
      (Engine.schedule engine ~after:at (fun () ->
           let tasks =
             List.init 4 (fun tid ->
                 Task.make ~uid:0 ~jid:0 ~tid ~fn_id:Task.Fn.busy_loop
                   ~fn_par:(Time.us 100) ())
           in
           ignore (Client.submit_job client tasks)))
  done;

  (* Run the submission window, then let the cluster drain. *)
  Cluster.run cluster ~until:(Time.ms 60);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in

  let m = Cluster.metrics cluster in
  let delays = Metrics.scheduling_delay m in
  Printf.printf "drained: %b\n" drained;
  Printf.printf "tasks submitted/completed: %d/%d\n" (Metrics.submitted m)
    (Metrics.completed m);
  Printf.printf "scheduling delay p50 = %.1f us, p99 = %.1f us\n"
    (float_of_int (Draconis_stats.Sampler.percentile delays 50.0) /. 1e3)
    (float_of_int (Draconis_stats.Sampler.percentile delays 99.0) /. 1e3);
  Printf.printf "switch pipeline: %d packets, %.3f%% recirculated, %d repairs\n"
    (Draconis_p4.Pipeline.processed (Cluster.pipeline cluster))
    (100.0 *. Draconis_p4.Pipeline.recirculation_fraction (Cluster.pipeline cluster))
    (Switch_program.repairs_launched (Cluster.program cluster))
