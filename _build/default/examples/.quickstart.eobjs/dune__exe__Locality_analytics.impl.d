examples/locality_analytics.ml: Client Cluster Draconis Draconis_proto Draconis_sim Draconis_stats Engine Metrics Policy Printf Rng Task Time
