examples/burst_survival.ml: Draconis_harness Draconis_proto Draconis_sim Engine Float List Printf Rng Task Time
