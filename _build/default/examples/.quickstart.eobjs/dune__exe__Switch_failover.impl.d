examples/switch_failover.ml: Client Cluster Draconis Draconis_proto Draconis_sim Draconis_stats Engine Metrics Printf Task Time
