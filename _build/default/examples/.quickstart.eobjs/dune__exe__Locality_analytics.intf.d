examples/locality_analytics.mli:
