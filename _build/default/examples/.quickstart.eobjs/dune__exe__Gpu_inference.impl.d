examples/gpu_inference.ml: Array Client Cluster Draconis Draconis_proto Draconis_sim Engine List Metrics Policy Printf Rng Switch_program Task Time Worker
