examples/quickstart.ml: Client Cluster Draconis Draconis_p4 Draconis_proto Draconis_sim Draconis_stats Engine List Metrics Printf Rng Switch_program Task Time
