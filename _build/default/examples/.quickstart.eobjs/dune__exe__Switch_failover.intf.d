examples/switch_failover.mli:
