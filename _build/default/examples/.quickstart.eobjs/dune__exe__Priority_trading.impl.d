examples/priority_trading.ml: Client Cluster Dist Draconis Draconis_proto Draconis_sim Draconis_stats Engine List Metrics Policy Printf Rng Task Time
