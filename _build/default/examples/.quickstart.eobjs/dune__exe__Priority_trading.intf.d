examples/priority_trading.mli:
