examples/quickstart.mli:
