examples/burst_survival.mli:
