examples/gpu_inference.mli:
