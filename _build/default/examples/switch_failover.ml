(* Switch fail-over (paper sec 3.3): the scheduler dies mid-run, a
   standby takes over with an empty pipeline, and clients recover every
   queued-but-lost task through timeouts and resubmission.

   Run with:  dune exec examples/switch_failover.exe *)

open Draconis_sim
open Draconis_proto
open Draconis

let () =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers = 4;
        executors_per_worker = 4;
        clients = 1;
        client_timeout = Some (Time.ms 2);
      }
  in
  Cluster.start cluster;
  let client = Cluster.client cluster 0 in
  let engine = Cluster.engine cluster in
  (* Offer ~1.5x the cluster's capacity so the switch queue holds a
     real backlog worth losing. *)
  for i = 0 to 2_999 do
    ignore
      (Engine.schedule engine ~after:(Time.us (8 * i)) (fun () ->
           ignore
             (Client.submit_job client
                [
                  Task.make ~uid:0 ~jid:0 ~tid:i ~fn_id:Task.Fn.busy_loop
                    ~fn_par:(Time.us 200) ();
                ])))
  done;
  (* The switch fails 10 ms in. *)
  let lost = ref 0 in
  ignore
    (Engine.schedule engine ~after:(Time.ms 10) (fun () ->
         lost := Cluster.fail_over_switch cluster));
  Cluster.run cluster ~until:(Time.ms 40);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 5) in
  let m = Cluster.metrics cluster in
  Printf.printf "switch failed over at t=10ms, losing %d queued tasks\n" !lost;
  Printf.printf "client timeouts fired: %d (each resubmits the lost task)\n"
    (Metrics.timeouts m);
  Printf.printf "final: %d/%d tasks completed, drained=%b\n" (Metrics.completed m)
    (Metrics.submitted m) drained;
  let delays = Metrics.scheduling_delay m in
  Printf.printf
    "scheduling delay p50 %.1f us vs p99.9 %.1f us — the tail carries the\n\
     timeout-resubmission spike, exactly the paper's fault-recovery cost\n"
    (float_of_int (Draconis_stats.Sampler.percentile delays 50.0) /. 1e3)
    (float_of_int (Draconis_stats.Sampler.percentile delays 99.9) /. 1e3)
