(* Priority scheduling for a latency-critical service mix (paper sec 6).

   A trading-style workload: a thin stream of market-critical orders
   (priority 1), a modest stream of risk checks (priority 2), and a
   flood of background analytics (priorities 3-4), all sharing one
   cluster near saturation.  Task-level priority queues on the switch
   keep the critical stream's queueing delay flat while the analytics
   absorb the backlog; the same mix under FCFS drags everyone down.

   Run with:  dune exec examples/priority_trading.exe *)

open Draconis_sim
open Draconis_proto
open Draconis

let levels = 4
let horizon = Time.ms 400

(* (share of tasks, priority, service us, label) *)
let classes =
  [
    (0.02, 1, 80, "orders");
    (0.08, 2, 120, "risk checks");
    (0.60, 3, 250, "analytics");
    (0.30, 4, 400, "batch reports");
  ]

let pick_class rng =
  let u = Rng.float rng in
  let rec go acc = function
    | [] -> List.nth classes (List.length classes - 1)
    | ((share, _, _, _) as c) :: rest -> if u < acc +. share then c else go (acc +. share) rest
  in
  go 0.0 classes

let run_policy ~name ~fcfs ~policy_of =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers = 8;
        executors_per_worker = 8;
        clients = 1;
        policy_of;
      }
  in
  Cluster.start cluster;
  let client = Cluster.client cluster 0 in
  let engine = Cluster.engine cluster in
  let rng = Rng.create ~seed:23 in
  (* ~64 executors x ~(weighted mean 270us) => capacity ~237 ktps; offer
     ~95% of it so queues form. *)
  let rec submit () =
    if Engine.now engine <= horizon then begin
      let _, priority, us, _ = pick_class rng in
      ignore
        (Client.submit_job client
           [
             Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Priority priority)
               ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us us) ();
           ]);
      let gap = max 1 (Dist.exponential ~mean:(Time.ns 4_450) rng) in
      ignore (Engine.schedule engine ~after:gap submit)
    end
  in
  ignore (Engine.schedule engine ~after:1 submit);
  Cluster.run cluster ~until:horizon;
  ignore (Cluster.run_until_drained cluster ~deadline:(4 * horizon));
  let m = Cluster.metrics cluster in
  Printf.printf "%s:\n" name;
  let print_level ~label level =
    let s = Metrics.queueing_delay m ~level in
    if Draconis_stats.Sampler.count s > 0 then
      Printf.printf "  %-17s queueing p50 %8.1f us   p99 %10.1f us   (%d tasks)\n"
        label
        (float_of_int (Draconis_stats.Sampler.percentile s 50.0) /. 1e3)
        (float_of_int (Draconis_stats.Sampler.percentile s 99.0) /. 1e3)
        (Draconis_stats.Sampler.count s)
  in
  if fcfs then print_level ~label:"all classes" 0
  else
    List.iteri
      (fun level (_, _, _, label) ->
        print_level ~label:(Printf.sprintf "p%d %s" (level + 1) label) level)
      classes;
  print_newline ()

let () =
  Printf.printf "Mixed-criticality workload near saturation (%d priority levels):\n\n"
    levels;
  run_policy ~name:"Draconis priority queues" ~fcfs:false
    ~policy_of:(fun _ -> Policy.Priority { levels });
  run_policy ~name:"Same mix under FCFS (all classes share one queue)" ~fcfs:true
    ~policy_of:(fun _ -> Policy.Fcfs)
