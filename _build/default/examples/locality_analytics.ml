(* Locality-aware scheduling for a data-analytics scan (paper sec 5.3).

   A 3-rack cluster holds an unreplicated, evenly partitioned dataset;
   each scan task wants to run where its partition lives (free access),
   tolerates the local rack (20 us penalty), and only reluctantly runs
   across racks (100 us penalty).  The example runs the same workload
   under the locality-aware policy and plain FCFS and compares placement
   quality and end-to-end times.

   Run with:  dune exec examples/locality_analytics.exe *)

open Draconis_sim
open Draconis_proto
open Draconis

let workers = 9
let tasks_total = 3_000

let run_policy ~name ~policy_of =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers;
        executors_per_worker = 8;
        clients = 1;
        racks = 3;
        policy_of;
      }
  in
  Cluster.start cluster;
  let client = Cluster.client cluster 0 in
  let engine = Cluster.engine cluster in
  let rng = Rng.create ~seed:11 in
  (* One 100us scan task per partition access; each partition lives on
     exactly one node. *)
  for i = 0 to tasks_total - 1 do
    ignore
      (Engine.schedule engine ~after:(Time.us (3 * i)) (fun () ->
           let home = Rng.int rng workers in
           ignore
             (Client.submit_job client
                [
                  Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Locality [ home ])
                    ~fn_id:Task.Fn.data_task ~fn_par:(Time.us 100) ();
                ])))
  done;
  Cluster.run cluster ~until:(Time.ms 15);
  ignore (Cluster.run_until_drained cluster ~deadline:(Time.s 2));
  let m = Cluster.metrics cluster in
  let p = Metrics.placement m in
  let total = max 1 (p.Metrics.local + p.Metrics.same_rack + p.Metrics.remote) in
  let pct n = 100.0 *. float_of_int n /. float_of_int total in
  let e2e = Metrics.end_to_end_delay m in
  Printf.printf
    "%-18s local %5.1f%%  same-rack %5.1f%%  remote %5.1f%%   e2e p50 %7.1f us  p90 %7.1f us\n"
    name (pct p.Metrics.local) (pct p.Metrics.same_rack) (pct p.Metrics.remote)
    (float_of_int (Draconis_stats.Sampler.percentile e2e 50.0) /. 1e3)
    (float_of_int (Draconis_stats.Sampler.percentile e2e 90.0) /. 1e3)

let () =
  Printf.printf "Scan of %d partition tasks on a %d-node, 3-rack cluster:\n\n"
    tasks_total workers;
  run_policy ~name:"locality-aware"
    ~policy_of:(fun topology ->
      Policy.Locality_aware { rack_start_limit = 3; global_start_limit = 9; topology });
  run_policy ~name:"plain FCFS" ~policy_of:(fun _ -> Policy.Fcfs);
  print_newline ();
  print_endline
    "The locality policy trades a little scheduling delay (tasks wait for a\n\
     data-local or rack-local executor) for far fewer remote reads, which\n\
     shows up as a lower median end-to-end time."
