(* Resource-aware scheduling for a heterogeneous inference fleet
   (paper sec 5.2).

   Half the worker nodes carry accelerators.  The workload mixes plain
   CPU pre-processing tasks with GPU inference tasks; the resource-aware
   policy must keep GPU tasks off CPU-only nodes (a hard constraint)
   while still letting CPU tasks soak up idle accelerator nodes.

   Run with:  dune exec examples/gpu_inference.exe *)

open Draconis_sim
open Draconis_proto
open Draconis

let cpu = 1 (* resource bit: general-purpose core *)
let gpu = 2 (* resource bit: accelerator *)
let workers = 8
let gpu_nodes = [ 4; 5; 6; 7 ]

let () =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers;
        executors_per_worker = 8;
        clients = 1;
        policy_of = (fun _ -> Policy.Resource_aware { max_swaps = 8 });
        rsrc_of_node = (fun node -> if List.mem node gpu_nodes then cpu lor gpu else cpu);
      }
  in
  Cluster.start cluster;
  (* Count placements per class. *)
  let gpu_tasks_on_cpu_nodes = ref 0 in
  let starts_per_node = Array.make workers 0 in
  Array.iter
    (fun worker ->
      Worker.set_on_task_start worker (fun task ~node ->
          starts_per_node.(node) <- starts_per_node.(node) + 1;
          if Task.required_resources task land gpu <> 0 && not (List.mem node gpu_nodes)
          then incr gpu_tasks_on_cpu_nodes))
    (Cluster.workers cluster);
  let client = Cluster.client cluster 0 in
  let engine = Cluster.engine cluster in
  let rng = Rng.create ~seed:31 in
  (* 30% GPU inference (400us on the accelerator), 70% CPU prep (120us). *)
  for i = 0 to 9_999 do
    ignore
      (Engine.schedule engine ~after:(Time.us (4 * i)) (fun () ->
           let is_gpu = Rng.float rng < 0.3 in
           let tprops = Task.Resources (if is_gpu then gpu else cpu) in
           let fn_par = Time.us (if is_gpu then 400 else 120) in
           ignore
             (Client.submit_job client
                [ Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops ~fn_id:Task.Fn.busy_loop ~fn_par () ])))
  done;
  Cluster.run cluster ~until:(Time.ms 50);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 4) in
  let m = Cluster.metrics cluster in
  Printf.printf "drained: %b — %d/%d tasks completed\n" drained (Metrics.completed m)
    (Metrics.submitted m);
  Printf.printf "GPU tasks placed on CPU-only nodes: %d (must be 0)\n\n"
    !gpu_tasks_on_cpu_nodes;
  Printf.printf "tasks started per node (nodes 4-7 have accelerators):\n";
  Array.iteri
    (fun node count ->
      Printf.printf "  node %d%s: %d\n" node
        (if List.mem node gpu_nodes then " [GPU]" else "      ")
        count)
    starts_per_node;
  Printf.printf "\nswitch swaps performed: %d, tasks re-inserted: %d\n"
    (Switch_program.swaps (Cluster.program cluster))
    (Switch_program.resubmissions (Cluster.program cluster))
