(* Tests for trace-file recording and replay. *)

open Draconis_sim
open Draconis_proto
open Draconis_workload

let sample_trace () =
  [
    {
      Trace_file.arrival = Time.us 10;
      tasks =
        [
          Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id:Task.Fn.busy_loop ~fn_par:100_000 ();
          Task.make ~uid:0 ~jid:0 ~tid:1 ~tprops:(Task.Priority 2) ~fn_id:Task.Fn.busy_loop
            ~fn_par:50_000 ();
        ];
    };
    {
      Trace_file.arrival = Time.us 40;
      tasks =
        [
          Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Locality [ 3; 5 ])
            ~fn_id:Task.Fn.busy_loop ~fn_par:250_000 ();
        ];
    };
  ]

let test_string_roundtrip () =
  let trace = sample_trace () in
  let parsed = Trace_file.of_string (Trace_file.to_string trace) in
  Alcotest.(check int) "job count" 2 (List.length parsed);
  Alcotest.(check int) "task count" 3 (Trace_file.task_count parsed);
  let first = List.hd parsed in
  Alcotest.(check int) "arrival preserved" (Time.us 10) first.Trace_file.arrival;
  (match (List.nth first.Trace_file.tasks 1).tprops with
  | Task.Priority 2 -> ()
  | _ -> Alcotest.fail "priority lost");
  match (List.hd (List.nth parsed 1).Trace_file.tasks).tprops with
  | Task.Locality [ 3; 5 ] -> ()
  | _ -> Alcotest.fail "locality lost"

let test_file_roundtrip () =
  let path = Filename.temp_file "draconis" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace = sample_trace () in
      Trace_file.save trace ~path;
      let loaded = Trace_file.load ~path in
      Alcotest.(check int) "task count round-trips" (Trace_file.task_count trace)
        (Trace_file.task_count loaded))

let test_malformed_rejected () =
  (match Trace_file.of_string "header\n1,2,3\n" with
  | exception Failure msg ->
    Alcotest.(check bool) "line number reported" true
      (Astring.String.is_infix ~affix:"line 2" msg)
  | _ -> Alcotest.fail "short line accepted");
  match Trace_file.of_string "header\nx,0,0,1,0,\n" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "non-numeric accepted"

let test_generate_matches_generator () =
  let spec =
    { Google_trace.default_spec with rate_tps = 50_000.0; horizon = Time.ms 50 }
  in
  let trace = Trace_file.generate (Rng.create ~seed:9) spec in
  let n = Trace_file.task_count trace in
  (* ~2500 tasks expected; generous bounds for burstiness. *)
  Alcotest.(check bool) "plausible task count" true (n > 1_200 && n < 4_500);
  List.iter
    (fun job ->
      Alcotest.(check bool) "arrivals within horizon" true
        (job.Trace_file.arrival <= spec.horizon + Time.ms 1))
    trace

let test_generate_deterministic () =
  let spec = { Google_trace.default_spec with rate_tps = 20_000.0; horizon = Time.ms 20 } in
  let a = Trace_file.generate (Rng.create ~seed:4) spec in
  let b = Trace_file.generate (Rng.create ~seed:4) spec in
  Alcotest.(check string) "same seed, same trace" (Trace_file.to_string a)
    (Trace_file.to_string b)

let test_drive_replays () =
  let engine = Engine.create () in
  let trace = sample_trace () in
  let seen = ref [] in
  Trace_file.drive engine trace ~submit:(fun tasks ->
      seen := (Engine.now engine, List.length tasks) :: !seen);
  Engine.run engine;
  Alcotest.(check (list (pair int int)))
    "jobs replayed at recorded instants"
    [ (Time.us 10, 2); (Time.us 40, 1) ]
    (List.rev !seen)

let test_replay_through_cluster () =
  let trace =
    Trace_file.generate (Rng.create ~seed:12)
      { Google_trace.default_spec with rate_tps = 30_000.0; horizon = Time.ms 20 }
  in
  let cluster =
    Draconis.Cluster.create
      { Draconis.Cluster.default_config with workers = 4; executors_per_worker = 8; clients = 1 }
  in
  Draconis.Cluster.start cluster;
  Trace_file.drive
    (Draconis.Cluster.engine cluster)
    trace
    ~submit:(fun tasks ->
      ignore (Draconis.Client.submit_job (Draconis.Cluster.client cluster 0) tasks));
  Draconis.Cluster.run cluster ~until:(Time.ms 25);
  let drained = Draconis.Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  Alcotest.(check bool) "trace replay drains" true drained;
  Alcotest.(check int) "every trace task completed" (Trace_file.task_count trace)
    (Draconis.Metrics.completed (Draconis.Cluster.metrics cluster))

let suite =
  [
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "generate plausible" `Quick test_generate_matches_generator;
    Alcotest.test_case "generate deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "drive replays" `Quick test_drive_replays;
    Alcotest.test_case "replay through cluster" `Quick test_replay_through_cluster;
  ]
