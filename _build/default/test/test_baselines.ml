(* Tests for the baseline schedulers: R2P2 (JBSQ), RackSched (power-of-k
   + intra-node), Sparrow (probing + late binding), and the centralized
   socket/DPDK servers. *)

open Draconis_sim
open Draconis_proto
open Draconis
module B = Draconis_baselines

let busy_task ~us n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us us) ()

(* -- Push_executor --------------------------------------------------------- *)

let test_push_executor_fcfs () =
  let engine = Engine.create () in
  let order = ref [] in
  let exec =
    B.Push_executor.create ~engine ~node:0 ~port:0 ~fn_model:Fn_model.default
      ~on_complete:(fun task ~client:_ -> order := task.Task.id.tid :: !order)
      ()
  in
  B.Push_executor.push exec (busy_task ~us:10 1) ~client:(Draconis_net.Addr.Host 9);
  B.Push_executor.push exec (busy_task ~us:10 2) ~client:(Draconis_net.Addr.Host 9);
  B.Push_executor.push exec (busy_task ~us:10 3) ~client:(Draconis_net.Addr.Host 9);
  Alcotest.(check int) "occupancy counts in-service" 3 (B.Push_executor.occupancy exec);
  Engine.run engine;
  Alcotest.(check (list int)) "FCFS completion order" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "clock = serial service" (Time.us 30) (Engine.now engine);
  Alcotest.(check int) "executed" 3 (B.Push_executor.tasks_executed exec)

(* -- Node_worker ------------------------------------------------------------ *)

let test_node_worker_parallelism_and_overhead () =
  let engine = Engine.create () in
  let starts = ref [] in
  let worker =
    B.Node_worker.create ~engine ~node:0 ~executors:2 ~fn_model:Fn_model.default
      ~dispatch_overhead:(Time.us 3)
      ~on_complete:(fun _ ~client:_ -> ())
      ()
  in
  B.Node_worker.set_on_task_start worker (fun task ~node:_ ->
      starts := (task.Task.id.tid, Engine.now engine) :: !starts);
  for i = 1 to 3 do
    B.Node_worker.deliver worker (busy_task ~us:100 i) ~client:(Draconis_net.Addr.Host 9)
  done;
  Engine.run engine;
  let starts = List.rev !starts in
  (match starts with
  | [ (1, t1); (2, t2); (3, t3) ] ->
    Alcotest.(check int) "task 1 starts after overhead" (Time.us 3) t1;
    Alcotest.(check int) "task 2 starts in parallel" (Time.us 3) t2;
    (* Task 3 waits for an executor (node-level queueing), then pays
       dispatch overhead again. *)
    Alcotest.(check int) "task 3 blocked behind the node" (Time.us 106) t3
  | _ -> Alcotest.fail "expected three starts");
  Alcotest.(check int) "executed" 3 (B.Node_worker.tasks_executed worker)

(* -- R2P2 ---------------------------------------------------------------------- *)

let r2p2_config k =
  {
    B.R2p2.default_config with
    workers = 2;
    executors_per_worker = 4;
    clients = 1;
    jbsq_k = k;
    window = 4;
  }

let test_r2p2_completes_and_balances () =
  let sys = B.R2p2.create (r2p2_config 3) in
  let engine = B.R2p2.engine sys in
  for i = 0 to 39 do
    ignore
      (Engine.schedule engine ~after:(Time.us (40 * i)) (fun () ->
           ignore (Client.submit_job (B.R2p2.client sys 0) [ busy_task ~us:100 i ])))
  done;
  B.R2p2.run sys ~until:(Time.ms 5);
  let drained = B.R2p2.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "all completed" 40 (Metrics.completed (B.R2p2.metrics sys));
  (* All counters back to zero once idle. *)
  for e = 0 to B.R2p2.total_executors sys - 1 do
    Alcotest.(check int) "counter drained" 0 (B.R2p2.counter sys e)
  done

let test_r2p2_counter_bound () =
  let sys = B.R2p2.create (r2p2_config 3) in
  (* A burst larger than total slots: counters must never exceed k. *)
  ignore (Client.submit_job (B.R2p2.client sys 0) (List.init 40 (busy_task ~us:500)));
  let ok = ref true in
  let engine = B.R2p2.engine sys in
  for _ = 1 to 200 do
    Engine.run ~until:(Engine.now engine + Time.us 50) engine;
    for e = 0 to B.R2p2.total_executors sys - 1 do
      if B.R2p2.counter sys e > 3 then ok := false
    done
  done;
  Alcotest.(check bool) "JBSQ bound respected at all times" true !ok

let test_r2p2_k1_recirculates_when_full () =
  let sys = B.R2p2.create (r2p2_config 1) in
  (* 8 executors, k=1: the 9th concurrent task must recirculate. *)
  ignore (Client.submit_job (B.R2p2.client sys 0) (List.init 12 (busy_task ~us:500)));
  B.R2p2.run sys ~until:(Time.us 300);
  Alcotest.(check bool) "search recirculation happening" true
    (Draconis_p4.Pipeline.recirculated (B.R2p2.pipeline sys) > 0);
  ignore (B.R2p2.run_until_drained sys ~deadline:(Time.s 1))

let test_r2p2_work_stealing () =
  (* One busy node with stacked tasks + one idle node: stealing must
     move work across nodes and keep counters consistent. *)
  let sys =
    B.R2p2.create { (r2p2_config 3) with work_stealing = true; workers = 2 }
  in
  (* A burst that stacks tasks 2-3 deep on the 8 executors. *)
  ignore (Client.submit_job (B.R2p2.client sys 0) (List.init 20 (busy_task ~us:300)));
  B.R2p2.run sys ~until:(Time.ms 2);
  let drained = B.R2p2.run_until_drained sys ~deadline:(Time.s 2) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "all completed exactly once" 20
    (Metrics.completed (B.R2p2.metrics sys));
  Alcotest.(check bool) "steals happened" true (B.R2p2.steals sys > 0);
  (* Counters settle to zero despite the out-of-band moves. *)
  for e = 0 to B.R2p2.total_executors sys - 1 do
    Alcotest.(check int) "counters consistent after steals" 0 (B.R2p2.counter sys e)
  done

(* -- RackSched ------------------------------------------------------------------- *)

let racksched_config =
  {
    B.Racksched.default_config with
    workers = 4;
    executors_per_worker = 2;
    clients = 1;
  }

let test_racksched_completes () =
  let sys = B.Racksched.create racksched_config in
  let engine = B.Racksched.engine sys in
  for i = 0 to 49 do
    ignore
      (Engine.schedule engine ~after:(Time.us (30 * i)) (fun () ->
           ignore (Client.submit_job (B.Racksched.client sys 0) [ busy_task ~us:100 i ])))
  done;
  B.Racksched.run sys ~until:(Time.ms 5);
  let drained = B.Racksched.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "completed" 50 (Metrics.completed (B.Racksched.metrics sys));
  (* Queue-length counters must return to zero. *)
  for node = 0 to 3 do
    Alcotest.(check int) "qlen drained" 0 (B.Racksched.queue_length sys node)
  done

let test_racksched_dispatch_overhead_floor () =
  let sys = B.Racksched.create racksched_config in
  ignore (Client.submit_job (B.Racksched.client sys 0) [ busy_task ~us:100 0 ]);
  ignore (B.Racksched.run_until_drained sys ~deadline:(Time.s 1));
  let delays = Metrics.scheduling_delay (B.Racksched.metrics sys) in
  let p50 = Draconis_stats.Sampler.percentile delays 50.0 in
  (* One-way hop (~1.5us) + 3.5us dispatch + jitter: at least 5us. *)
  Alcotest.(check bool) "intra-node overhead visible" true (p50 >= Time.us 5)

let test_racksched_spreads_load () =
  let sys = B.Racksched.create racksched_config in
  ignore (Client.submit_job (B.Racksched.client sys 0) (List.init 16 (busy_task ~us:400)));
  B.Racksched.run sys ~until:(Time.us 200);
  (* Power-of-two on 4 nodes: no node may receive everything. *)
  let max_qlen =
    List.fold_left max 0 (List.init 4 (fun n -> B.Racksched.queue_length sys n))
  in
  Alcotest.(check bool) "no herd onto one node" true (max_qlen < 16);
  ignore (B.Racksched.run_until_drained sys ~deadline:(Time.s 1))

(* -- Sparrow ----------------------------------------------------------------------- *)

let sparrow_config =
  {
    B.Sparrow.default_config with
    workers = 4;
    executors_per_worker = 2;
    clients = 1;
    schedulers = 1;
  }

let test_sparrow_completes () =
  let sys = B.Sparrow.create sparrow_config in
  let engine = B.Sparrow.engine sys in
  for i = 0 to 29 do
    ignore
      (Engine.schedule engine ~after:(Time.us (50 * i)) (fun () ->
           B.Sparrow.submit_job sys ~client:0 [ busy_task ~us:100 i; busy_task ~us:100 (100 + i) ]))
  done;
  B.Sparrow.run sys ~until:(Time.ms 5);
  let drained = B.Sparrow.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "completed" 60 (Metrics.completed (B.Sparrow.metrics sys));
  Alcotest.(check int) "started = submitted" 60 (Metrics.started (B.Sparrow.metrics sys));
  (* Late binding cleans up its probes. *)
  for node = 0 to 3 do
    Alcotest.(check int) "probe queue drained" 0 (B.Sparrow.probe_backlog sys node)
  done

let test_sparrow_two_schedulers_share () =
  let sys = B.Sparrow.create { sparrow_config with schedulers = 2; clients = 2 } in
  for i = 0 to 9 do
    B.Sparrow.submit_job sys ~client:(i mod 2) [ busy_task ~us:50 i ]
  done;
  let drained = B.Sparrow.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "completed" 10 (Metrics.completed (B.Sparrow.metrics sys))

(* -- Central server ------------------------------------------------------------------ *)

let server_config variant =
  {
    B.Central_server.default_config with
    workers = 2;
    executors_per_worker = 4;
    clients = 1;
    variant;
  }

let test_server_completes () =
  let sys = B.Central_server.create (server_config B.Central_server.Dpdk) in
  B.Central_server.start sys;
  let engine = B.Central_server.engine sys in
  for i = 0 to 49 do
    ignore
      (Engine.schedule engine ~after:(Time.us (20 * i)) (fun () ->
           ignore
             (Client.submit_job (B.Central_server.client sys 0) [ busy_task ~us:100 i ])))
  done;
  B.Central_server.run sys ~until:(Time.ms 5);
  let drained = B.Central_server.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "completed" 50 (Metrics.completed (B.Central_server.metrics sys));
  Alcotest.(check int) "queue empty" 0 (B.Central_server.queue_length sys);
  Alcotest.(check bool) "cpu actually billed" true
    (B.Central_server.packets_processed sys > 100)

let test_server_parks_idle_executors () =
  let sys = B.Central_server.create (server_config B.Central_server.Dpdk) in
  B.Central_server.start sys;
  B.Central_server.run sys ~until:(Time.ms 2);
  (* No work: all 8 executors end up parked, none spinning. *)
  Alcotest.(check int) "all executors parked" 8 (B.Central_server.idle_executors sys)

let test_framework_variants_exist () =
  (* The sec-8 "other schedulers": Spark-native is slower per packet
     than Firmament, which is slower than DPDK. *)
  let cost v = B.Central_server.per_packet_cost v in
  Alcotest.(check bool) "spark slowest" true
    (cost B.Central_server.Spark_native > cost B.Central_server.Firmament);
  Alcotest.(check bool) "firmament above dpdk" true
    (cost B.Central_server.Firmament > cost B.Central_server.Dpdk);
  (* And a Spark-native server still completes a tiny workload. *)
  let sys = B.Central_server.create (server_config B.Central_server.Spark_native) in
  B.Central_server.start sys;
  ignore (Client.submit_job (B.Central_server.client sys 0) (List.init 5 (busy_task ~us:100)));
  B.Central_server.run sys ~until:(Time.ms 1);
  let drained = B.Central_server.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained

let test_socket_slower_than_dpdk () =
  let measure variant =
    let sys = B.Central_server.create (server_config variant) in
    B.Central_server.start sys;
    let engine = B.Central_server.engine sys in
    for i = 0 to 199 do
      ignore
        (Engine.schedule engine ~after:(Time.us (2 * i)) (fun () ->
             ignore
               (Client.submit_job (B.Central_server.client sys 0) [ busy_task ~us:20 i ])))
    done;
    B.Central_server.run sys ~until:(Time.ms 1);
    ignore (B.Central_server.run_until_drained sys ~deadline:(Time.s 2));
    Draconis_stats.Sampler.percentile
      (Metrics.scheduling_delay (B.Central_server.metrics sys))
      99.0
  in
  let dpdk = measure B.Central_server.Dpdk in
  let socket = measure B.Central_server.Socket in
  Alcotest.(check bool) "socket p99 above dpdk p99" true (socket > dpdk)

let suite =
  [
    Alcotest.test_case "push executor FCFS" `Quick test_push_executor_fcfs;
    Alcotest.test_case "node worker parallelism + overhead" `Quick
      test_node_worker_parallelism_and_overhead;
    Alcotest.test_case "r2p2 completes, counters drain" `Quick
      test_r2p2_completes_and_balances;
    Alcotest.test_case "r2p2 JBSQ bound invariant" `Quick test_r2p2_counter_bound;
    Alcotest.test_case "r2p2-1 recirculates when full" `Quick
      test_r2p2_k1_recirculates_when_full;
    Alcotest.test_case "r2p2 work stealing" `Quick test_r2p2_work_stealing;
    Alcotest.test_case "racksched completes, counters drain" `Quick
      test_racksched_completes;
    Alcotest.test_case "racksched dispatch overhead floor" `Quick
      test_racksched_dispatch_overhead_floor;
    Alcotest.test_case "racksched spreads load" `Quick test_racksched_spreads_load;
    Alcotest.test_case "sparrow completes, probes drain" `Quick test_sparrow_completes;
    Alcotest.test_case "sparrow dual schedulers" `Quick test_sparrow_two_schedulers_share;
    Alcotest.test_case "central server completes" `Quick test_server_completes;
    Alcotest.test_case "central server parks idle pulls" `Quick
      test_server_parks_idle_executors;
    Alcotest.test_case "socket slower than dpdk" `Quick test_socket_slower_than_dpdk;
    Alcotest.test_case "framework scheduler variants" `Quick
      test_framework_variants_exist;
  ]
