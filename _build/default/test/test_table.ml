(* Tests for the match-action table model. *)

open Draconis_p4

let test_default_on_miss () =
  let table = Table.create ~name:"t" ~default:"drop" () in
  Alcotest.(check string) "miss yields default" "drop" (Table.lookup table ~key:42);
  Alcotest.(check int) "miss counted" 1 (Table.misses table);
  Alcotest.(check int) "no hits" 0 (Table.hits table)

let test_exact_match () =
  let table = Table.create ~name:"t" ~default:0 () in
  Table.add_exact table ~key:7 70;
  Table.add_exact table ~key:9 90;
  Alcotest.(check int) "hit 7" 70 (Table.lookup table ~key:7);
  Alcotest.(check int) "hit 9" 90 (Table.lookup table ~key:9);
  Alcotest.(check int) "miss" 0 (Table.lookup table ~key:8);
  Alcotest.(check int) "size" 2 (Table.size table);
  Alcotest.(check int) "hits" 2 (Table.hits table)

let test_exact_replace_and_remove () =
  let table = Table.create ~name:"t" ~default:0 () in
  Table.add_exact table ~key:1 10;
  Table.add_exact table ~key:1 11;
  Alcotest.(check int) "replaced" 11 (Table.lookup table ~key:1);
  Table.remove_exact table ~key:1;
  Alcotest.(check int) "removed" 0 (Table.lookup table ~key:1);
  Table.remove_exact table ~key:1 (* idempotent *)

let test_ternary_priority () =
  let table = Table.create ~name:"t" ~default:"default" () in
  (* Match any key with low nibble 0x4. *)
  Table.add_ternary table ~value:0x4 ~mask:0xF ~priority:1 "low-nibble-4";
  (* Higher-priority broader rule. *)
  Table.add_ternary table ~value:0x24 ~mask:0xFF ~priority:5 "exact-byte-24";
  Alcotest.(check string) "higher priority wins" "exact-byte-24"
    (Table.lookup table ~key:0x124);
  Alcotest.(check string) "falls to lower rule" "low-nibble-4"
    (Table.lookup table ~key:0x14);
  Alcotest.(check string) "no match" "default" (Table.lookup table ~key:0x15)

let test_exact_beats_ternary () =
  let table = Table.create ~name:"t" ~default:"default" () in
  Table.add_ternary table ~value:0 ~mask:0 ~priority:100 "catch-all";
  Table.add_exact table ~key:3 "exact";
  Alcotest.(check string) "exact wins over ternary" "exact" (Table.lookup table ~key:3);
  Alcotest.(check string) "ternary catches the rest" "catch-all"
    (Table.lookup table ~key:4)

let test_ternary_tie_break () =
  let table = Table.create ~name:"t" ~default:"d" () in
  Table.add_ternary table ~value:0 ~mask:0 ~priority:1 "first";
  Table.add_ternary table ~value:0 ~mask:0 ~priority:1 "second";
  Alcotest.(check string) "equal priority: first installed wins" "first"
    (Table.lookup table ~key:0)

let prop_installed_keys_hit =
  QCheck.Test.make ~name:"every installed exact key is retrievable" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 0 10_000))
    (fun keys ->
      let table = Table.create ~name:"p" ~default:(-1) () in
      List.iter (fun k -> Table.add_exact table ~key:k (k * 2)) keys;
      List.for_all (fun k -> Table.lookup table ~key:k = k * 2) keys)

let suite =
  [
    Alcotest.test_case "default on miss" `Quick test_default_on_miss;
    Alcotest.test_case "exact match" `Quick test_exact_match;
    Alcotest.test_case "replace and remove" `Quick test_exact_replace_and_remove;
    Alcotest.test_case "ternary priority" `Quick test_ternary_priority;
    Alcotest.test_case "exact beats ternary" `Quick test_exact_beats_ternary;
    Alcotest.test_case "ternary tie-break" `Quick test_ternary_tie_break;
    QCheck_alcotest.to_alcotest prop_installed_keys_hit;
  ]
