(* Focused tests of the host components: client job splitting and
   retries, executor pull loop and no-op backoff, worker demux, and the
   metrics correlation layer. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

let no_jitter = { Fabric.default_config with host_to_switch = Time.us 1; jitter = 0 }

let make_env () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:3 in
  let fabric = Fabric.create ~config:no_jitter engine rng in
  let metrics = Metrics.create engine in
  (engine, fabric, metrics)

let busy_task n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 10) ()

(* -- Client ------------------------------------------------------------------ *)

let test_client_splits_large_jobs () =
  let engine, fabric, metrics = make_env () in
  let packets = ref [] in
  Fabric.register fabric Addr.Switch (fun env -> packets := env.Fabric.payload :: !packets);
  let client =
    Client.create ~config:(Client.default_config ~host:5 ~uid:7) ~fabric ~metrics ()
  in
  let n = Codec.max_tasks_per_packet + 10 in
  ignore (Client.submit_job client (List.init n busy_task));
  Engine.run engine;
  let sizes =
    List.filter_map
      (function Message.Job_submission { tasks; _ } -> Some (List.length tasks) | _ -> None)
      !packets
  in
  Alcotest.(check int) "two packets" 2 (List.length sizes);
  Alcotest.(check int) "all tasks shipped" n (List.fold_left ( + ) 0 sizes);
  List.iter
    (fun size ->
      Alcotest.(check bool) "each within MTU" true (size <= Codec.max_tasks_per_packet))
    sizes;
  Alcotest.(check int) "outstanding tracked" n (Client.outstanding client)

let test_client_rewrites_ids () =
  let engine, fabric, metrics = make_env () in
  let seen = ref [] in
  Fabric.register fabric Addr.Switch (fun env ->
      match env.Fabric.payload with
      | Message.Job_submission { uid; jid; tasks; _ } ->
        List.iter (fun (t : Task.t) -> seen := (uid, jid, t.id) :: !seen) tasks
      | _ -> ());
  let client =
    Client.create ~config:(Client.default_config ~host:5 ~uid:7) ~fabric ~metrics ()
  in
  let jid0 = Client.submit_job client [ busy_task 99 ] in
  let jid1 = Client.submit_job client [ busy_task 99; busy_task 99 ] in
  Engine.run engine;
  Alcotest.(check bool) "jids increase" true (jid1 = jid0 + 1);
  List.iter
    (fun (uid, jid, (id : Task.id)) ->
      Alcotest.(check int) "uid stamped" 7 uid;
      Alcotest.(check bool) "task id matches packet header" true
        (id.uid = 7 && id.jid = jid))
    !seen

let test_client_queue_full_retry () =
  let engine, fabric, metrics = make_env () in
  let submissions = ref 0 in
  (* A "switch" that bounces the first submission and accepts the rest. *)
  Fabric.register fabric Addr.Switch (fun env ->
      match env.Fabric.payload with
      | Message.Job_submission { client; uid; jid; tasks } ->
        incr submissions;
        if !submissions = 1 then
          Fabric.send fabric ~src:Addr.Switch ~dst:client
            (Message.Queue_full { uid; jid; tasks })
      | _ -> ());
  let client =
    Client.create ~config:(Client.default_config ~host:5 ~uid:0) ~fabric ~metrics ()
  in
  ignore (Client.submit_job client [ busy_task 1; busy_task 2 ]);
  Engine.run engine;
  Alcotest.(check int) "retried once" 2 !submissions;
  Alcotest.(check int) "bounce counted" 2 (Client.queue_full_bounces client)

let test_client_completion_dedup () =
  let engine, fabric, metrics = make_env () in
  Fabric.register fabric Addr.Switch (fun _ -> ());
  let client =
    Client.create ~config:(Client.default_config ~host:5 ~uid:0) ~fabric ~metrics ()
  in
  let jid = Client.submit_job client [ busy_task 0 ] in
  let completion =
    Message.Task_completion
      {
        task_id = { uid = 0; jid; tid = 0 };
        client = Addr.Host 5;
        info = { exec_addr = Addr.Host 0; exec_port = 0; exec_rsrc = 0; exec_node = 0 };
        rtrv_prio = 1;
      }
  in
  Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 5) completion;
  Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 5) completion;
  Engine.run engine;
  Alcotest.(check int) "duplicate completion counted once" 1 (Client.completions client);
  Alcotest.(check int) "metrics counted once" 1 (Metrics.completed metrics)

(* -- Executor ------------------------------------------------------------------ *)

let exec_config ?(watchdog = None) () =
  {
    Executor.node = 0;
    port = 2;
    rsrc = 0xF;
    noop_retry = Time.us 4;
    fn_model = Fn_model.default;
    scheduler = Addr.Switch;
    watchdog;
  }

let test_executor_pull_loop () =
  let engine, fabric, _ = make_env () in
  let requests = ref 0 in
  let completions = ref [] in
  Fabric.register fabric Addr.Switch (fun env ->
      match env.Fabric.payload with
      | Message.Task_request { info; _ } ->
        incr requests;
        Alcotest.(check int) "request carries port" 2 info.exec_port;
        if !requests = 1 then
          Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 0)
            (Message.Task_assignment
               { task = busy_task 1; client = Addr.Host 9; port = 2 })
      | Message.Task_completion { task_id; rtrv_prio; _ } ->
        completions := (task_id.tid, rtrv_prio) :: !completions
      | _ -> ());
  let exec = Executor.create ~config:(exec_config ()) ~fabric () in
  (* Route switch->host traffic to the executor directly. *)
  Fabric.register fabric (Addr.Host 0) (fun env -> Executor.deliver exec env.Fabric.payload);
  Executor.start exec;
  Engine.run ~until:(Time.us 100) engine;
  Alcotest.(check (list (pair int int))) "completed with piggyback prio" [ (1, 1) ]
    !completions;
  Alcotest.(check int) "one task executed" 1 (Executor.tasks_executed exec);
  Alcotest.(check int) "busy time recorded" (Time.us 10) (Executor.busy_time exec)

let test_executor_noop_backoff () =
  let engine, fabric, _ = make_env () in
  let request_times = ref [] in
  Fabric.register fabric Addr.Switch (fun env ->
      match env.Fabric.payload with
      | Message.Task_request _ ->
        request_times := Engine.now engine :: !request_times;
        Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 0)
          (Message.Noop_assignment { port = 2 })
      | _ -> ());
  let exec = Executor.create ~config:(exec_config ()) ~fabric () in
  Fabric.register fabric (Addr.Host 0) (fun env -> Executor.deliver exec env.Fabric.payload);
  Executor.start exec;
  Engine.run ~until:(Time.us 40) engine;
  let times = List.rev !request_times in
  Alcotest.(check bool) "several polls" true (List.length times >= 3);
  (* Consecutive polls are spaced by RTT + noop_retry (= 6 us here). *)
  (match times with
  | t0 :: t1 :: _ -> Alcotest.(check int) "poll period" (Time.us 6) (t1 - t0)
  | _ -> Alcotest.fail "unreachable");
  Alcotest.(check int) "nothing executed" 0 (Executor.tasks_executed exec)

let test_executor_watchdog_resends () =
  let engine, fabric, _ = make_env () in
  let requests = ref 0 in
  (* A scheduler that never answers. *)
  Fabric.register fabric Addr.Switch (fun _ -> incr requests);
  let exec =
    Executor.create ~config:(exec_config ~watchdog:(Some (Time.us 50)) ()) ~fabric ()
  in
  Fabric.register fabric (Addr.Host 0) (fun env -> Executor.deliver exec env.Fabric.payload);
  Executor.start exec;
  Engine.run ~until:(Time.us 220) engine;
  Alcotest.(check bool) "watchdog re-sent the pull" true (!requests >= 4)

let test_executor_stop () =
  let engine, fabric, _ = make_env () in
  let requests = ref 0 in
  Fabric.register fabric Addr.Switch (fun _ -> incr requests);
  let exec = Executor.create ~config:(exec_config ()) ~fabric () in
  Executor.stop exec;
  Executor.start exec;
  Engine.run engine;
  Alcotest.(check int) "stopped executor stays silent" 0 !requests

(* -- Worker demux ----------------------------------------------------------------- *)

let test_worker_routes_by_port () =
  let engine, fabric, _ = make_env () in
  Fabric.register fabric Addr.Switch (fun _ -> ());
  let worker =
    Worker.create ~node:0 ~executors:4 ~fabric
      ~make_config:(fun ~port -> { (exec_config ()) with port })
      ()
  in
  Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 0)
    (Message.Task_assignment { task = busy_task 1; client = Addr.Host 9; port = 2 });
  (* Out-of-range port must be ignored, not crash. *)
  Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 0)
    (Message.Task_assignment { task = busy_task 2; client = Addr.Host 9; port = 9 });
  Engine.run ~until:(Time.us 50) engine;
  Alcotest.(check int) "port 2 executed" 1 (Executor.tasks_executed (Worker.executor worker 2));
  Alcotest.(check int) "port 0 idle" 0 (Executor.tasks_executed (Worker.executor worker 0));
  Alcotest.(check int) "worker total" 1 (Worker.tasks_executed worker)

(* -- Metrics ---------------------------------------------------------------------- *)

let test_metrics_correlation () =
  let engine = Engine.create () in
  let metrics = Metrics.create engine in
  let id : Task.id = { uid = 1; jid = 2; tid = 3 } in
  let task = Task.make ~uid:1 ~jid:2 ~tid:3 ~fn_id:1 ~fn_par:1 () in
  Metrics.note_submit metrics id;
  ignore
    (Engine.schedule engine ~after:(Time.us 7) (fun () ->
         Metrics.note_exec_start metrics task ~node:0));
  Engine.run engine;
  let delays = Metrics.scheduling_delay metrics in
  Alcotest.(check int) "delay = start - submit" (Time.us 7)
    (Draconis_stats.Sampler.percentile delays 50.0);
  (* Re-submission does not reset the clock. *)
  Metrics.note_submit metrics id;
  Alcotest.(check int) "first submission wins" 1 (Metrics.submitted metrics)

let test_metrics_queueing_by_level () =
  let engine = Engine.create () in
  let metrics = Metrics.create engine in
  let id : Task.id = { uid = 0; jid = 0; tid = 1 } in
  Metrics.note_enqueue metrics id ~level:2;
  ignore
    (Engine.schedule engine ~after:(Time.us 30) (fun () ->
         Metrics.note_assign metrics id ~requested_at:(Time.us 25)));
  Engine.run engine;
  let q = Metrics.queueing_delay metrics ~level:2 in
  Alcotest.(check int) "queueing delay" (Time.us 30)
    (Draconis_stats.Sampler.percentile q 50.0);
  let g = Metrics.get_task_delay metrics ~level:2 in
  Alcotest.(check int) "get_task delay" (Time.us 5)
    (Draconis_stats.Sampler.percentile g 50.0);
  Alcotest.(check int) "other level empty" 0
    (Draconis_stats.Sampler.count (Metrics.queueing_delay metrics ~level:0))

let suite =
  [
    Alcotest.test_case "client splits large jobs" `Quick test_client_splits_large_jobs;
    Alcotest.test_case "client rewrites task ids" `Quick test_client_rewrites_ids;
    Alcotest.test_case "client queue-full retry" `Quick test_client_queue_full_retry;
    Alcotest.test_case "client dedups completions" `Quick test_client_completion_dedup;
    Alcotest.test_case "executor pull loop" `Quick test_executor_pull_loop;
    Alcotest.test_case "executor no-op backoff" `Quick test_executor_noop_backoff;
    Alcotest.test_case "executor watchdog" `Quick test_executor_watchdog_resends;
    Alcotest.test_case "executor stop" `Quick test_executor_stop;
    Alcotest.test_case "worker routes by port" `Quick test_worker_routes_by_port;
    Alcotest.test_case "metrics correlation" `Quick test_metrics_correlation;
    Alcotest.test_case "metrics per-level queueing" `Quick test_metrics_queueing_by_level;
  ]
