(* Tests for the structural stage-placement model, including mechanical
   verification of the paper's sec-7 capacity claims against the real
   register allocations of the switch program. *)

open Draconis_sim
open Draconis_p4
open Draconis

let reg name size = Register.create ~name ~size ()

let tiny = { Layout.stages = 2; arrays_per_stage = 2; bits_per_stage = 1024 }

let test_simple_placement () =
  let regs = [ reg "a" 8; reg "b" 8; reg "c" 4 ] in
  match Layout.place tiny regs with
  | Error e -> Alcotest.failf "placement failed: %a" Layout.pp_error e
  | Ok placement ->
    Alcotest.(check int) "all placed" 3 (List.length placement.Layout.stage_of);
    Array.iteri
      (fun stage used ->
        Alcotest.(check bool) "slot budget" true (used <= tiny.arrays_per_stage);
        Alcotest.(check bool) "bit budget" true
          (placement.Layout.bits_used.(stage) <= tiny.bits_per_stage))
      placement.Layout.arrays_used

let test_register_too_large () =
  match Layout.place tiny [ reg "huge" 64 ] with
  | Error (Layout.Register_too_large "huge") -> ()
  | _ -> Alcotest.fail "expected Register_too_large"

let test_out_of_slots () =
  (* Five small arrays on 2x2 slots cannot fit. *)
  match Layout.place tiny (List.init 5 (fun i -> reg (string_of_int i) 1)) with
  | Error (Layout.Out_of_stage_slots _) -> ()
  | _ -> Alcotest.fail "expected Out_of_stage_slots"

let test_bit_budget_respected () =
  (* Two 768-bit arrays cannot share one 1024-bit stage but fit in two. *)
  match Layout.place tiny [ reg "x" 24; reg "y" 24 ] with
  | Ok placement ->
    let stage_of name = List.assoc name placement.Layout.stage_of in
    Alcotest.(check bool) "split across stages" true (stage_of "x" <> stage_of "y")
  | Error e -> Alcotest.failf "placement failed: %a" Layout.pp_error e

let test_render () =
  match Layout.place tiny [ reg "a" 4 ] with
  | Ok placement ->
    Alcotest.(check bool) "render mentions stage" true
      (Astring.String.is_infix ~affix:"stage" (Layout.render placement))
  | Error _ -> Alcotest.fail "placement failed"

(* -- the paper's sec-7 claims, structurally ---------------------------------- *)

let program_registers ~policy ~queue_capacity =
  let engine = Engine.create () in
  let program = Switch_program.create ~engine ~policy ~queue_capacity () in
  Switch_program.registers program

let test_fcfs_164k_fits_tofino1 () =
  let regs = program_registers ~policy:Policy.Fcfs ~queue_capacity:164_000 in
  Alcotest.(check bool) "164K-entry FCFS queue places on Tofino 1" true
    (Layout.fits (Layout.of_profile Resources.tofino1) regs)

let test_fcfs_1m_fits_tofino2_not_tofino1 () =
  let regs = program_registers ~policy:Policy.Fcfs ~queue_capacity:1_000_000 in
  Alcotest.(check bool) "1M-entry queue places on Tofino 2" true
    (Layout.fits (Layout.of_profile Resources.tofino2) regs);
  Alcotest.(check bool) "1M-entry queue does not place on Tofino 1" false
    (Layout.fits (Layout.of_profile Resources.tofino1) regs)

let test_four_priority_levels_fit_tofino1 () =
  let capacity = Resources.max_queue_entries Resources.tofino1 ~priority_levels:4 in
  let regs =
    program_registers ~policy:(Policy.Priority { levels = 4 }) ~queue_capacity:capacity
  in
  Alcotest.(check bool) "4 x per-level queues place on Tofino 1" true
    (Layout.fits (Layout.of_profile Resources.tofino1) regs)

let test_twelve_levels_fit_tofino2_not_tofino1 () =
  let capacity = Resources.max_queue_entries Resources.tofino2 ~priority_levels:12 in
  let regs =
    program_registers ~policy:(Policy.Priority { levels = 12 }) ~queue_capacity:capacity
  in
  Alcotest.(check bool) "12 levels place on Tofino 2" true
    (Layout.fits (Layout.of_profile Resources.tofino2) regs);
  Alcotest.(check bool) "12 levels do not place on Tofino 1" false
    (Layout.fits (Layout.of_profile Resources.tofino1) regs)

let prop_arithmetic_and_structural_agree =
  QCheck.Test.make
    ~name:"Resources arithmetic capacity always places structurally (FCFS)" ~count:10
    QCheck.(int_range 1 4)
    (fun levels ->
      let profile = Resources.tofino1 in
      let capacity = Resources.max_queue_entries profile ~priority_levels:levels in
      QCheck.assume (capacity > 0);
      (* Use a scaled-down capacity to keep the test fast; proportional
         scaling preserves placeability. *)
      let capacity = max 1 (capacity / 1000) in
      let scaled =
        {
          Layout.stages = profile.Resources.stages - profile.Resources.overhead_stages;
          arrays_per_stage = profile.Resources.arrays_per_stage;
          bits_per_stage = profile.Resources.register_bits_per_stage / 1000;
        }
      in
      let regs =
        program_registers
          ~policy:(if levels = 1 then Policy.Fcfs else Policy.Priority { levels })
          ~queue_capacity:capacity
      in
      Layout.fits scaled regs)

let suite =
  [
    Alcotest.test_case "simple placement" `Quick test_simple_placement;
    Alcotest.test_case "register too large" `Quick test_register_too_large;
    Alcotest.test_case "out of slots" `Quick test_out_of_slots;
    Alcotest.test_case "bit budget respected" `Quick test_bit_budget_respected;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "sec7: 164K FCFS on Tofino 1" `Quick test_fcfs_164k_fits_tofino1;
    Alcotest.test_case "sec7: 1M on Tofino 2 only" `Quick
      test_fcfs_1m_fits_tofino2_not_tofino1;
    Alcotest.test_case "sec7: 4 levels on Tofino 1" `Quick
      test_four_priority_levels_fit_tofino1;
    Alcotest.test_case "sec7: 12 levels on Tofino 2 only" `Quick
      test_twelve_levels_fit_tofino2_not_tofino1;
    QCheck_alcotest.to_alcotest prop_arithmetic_and_structural_agree;
  ]
