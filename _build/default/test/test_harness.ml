(* Tests for the experiment harness: the unified system handles, the
   runner, and paper-shape regression checks that pin the headline
   qualitative results of the evaluation. *)

open Draconis_sim
open Draconis_workload
module H = Draconis_harness

let small_spec =
  { H.Systems.workers = 4; executors_per_worker = 4; clients = 1; seed = 7 }

let driver_of kind ~rate ~horizon = H.Exp_common.synthetic_driver kind ~rate_tps:rate ~horizon

let run_system system kind ~rate ~horizon =
  H.Runner.run system ~driver:(driver_of kind ~rate ~horizon) ~load_tps:rate ~horizon ()

(* -- plumbing --------------------------------------------------------------- *)

let test_capacity_and_loads () =
  let capacity = H.Exp_common.capacity_tps Synthetic.Fixed_500us ~executors:160 in
  Alcotest.(check (float 1.0)) "160 executors / 500us" 320_000.0 capacity;
  match H.Exp_common.loads Synthetic.Fixed_100us ~executors:10 ~utilizations:[ 0.5 ] with
  | [ load ] -> Alcotest.(check (float 1.0)) "half of 100k" 50_000.0 load
  | _ -> Alcotest.fail "expected one load"

let test_horizon_for_clamps () =
  let h = H.Exp_common.horizon_for ~rate_tps:1e9 () in
  Alcotest.(check int) "min clamp" (Time.ms 50) h;
  let h = H.Exp_common.horizon_for ~rate_tps:1.0 () in
  Alcotest.(check int) "max clamp" (Time.ms 400) h

let test_runner_outcome_consistency () =
  let system = H.Systems.draconis small_spec in
  let o = run_system system Synthetic.Fixed_100us ~rate:40_000.0 ~horizon:(Time.ms 20) in
  Alcotest.(check bool) "submitted > 0" true (o.submitted > 0);
  Alcotest.(check bool) "drained" true o.drained;
  Alcotest.(check int) "completed all" o.submitted o.completed;
  Alcotest.(check bool) "p50 <= p99" true (o.sched_p50 <= o.sched_p99);
  Alcotest.(check string) "name" "Draconis" o.system

let test_all_systems_run () =
  List.iter
    (fun make ->
      let system : H.Systems.running = make () in
      let o =
        run_system system Synthetic.Fixed_100us ~rate:20_000.0 ~horizon:(Time.ms 10)
      in
      if not o.drained then Alcotest.failf "%s did not drain" o.system;
      if o.completed <> o.submitted then Alcotest.failf "%s lost tasks" o.system)
    [
      (fun () -> H.Systems.draconis small_spec);
      (fun () -> H.Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) small_spec);
      (fun () -> H.Systems.r2p2 ~k:1 ~client_timeout:(Time.ms 2) small_spec);
      (fun () -> H.Systems.racksched small_spec);
      (fun () -> H.Systems.sparrow ~schedulers:1 small_spec);
      (fun () -> H.Systems.central_server Draconis_baselines.Central_server.Dpdk small_spec);
      (fun () -> H.Systems.central_server Draconis_baselines.Central_server.Socket small_spec);
    ]

(* -- paper-shape regressions (the headline qualitative claims) ---------------- *)

let paper_spec = H.Systems.default_spec

let test_shape_draconis_low_tail_at_moderate_load () =
  let system = H.Systems.draconis paper_spec in
  let o = run_system system Synthetic.Fixed_500us ~rate:160_000.0 ~horizon:(Time.ms 80) in
  (* Paper: ~4.7us p99 below 90% utilization. *)
  Alcotest.(check bool) "p99 below 15us" true (o.sched_p99 < Time.us 15)

let test_shape_r2p2_3_blocked_at_service_time () =
  let system = H.Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) paper_spec in
  let o = run_system system Synthetic.Fixed_500us ~rate:200_000.0 ~horizon:(Time.ms 80) in
  (* Node-level blocking pins the tail near the 500us service time. *)
  Alcotest.(check bool) "p99 within [250us, 1.5ms]" true
    (o.sched_p99 > Time.us 250 && o.sched_p99 < Time.us 1500)

let test_shape_r2p2_1_drops_under_overload () =
  let system = H.Systems.r2p2 ~k:1 ~client_timeout:(Time.us 500) paper_spec in
  let o = run_system system Synthetic.Fixed_250us ~rate:610_000.0 ~horizon:(Time.ms 60) in
  Alcotest.(check bool) "recirculation storm" true (o.recirc_fraction > 0.3);
  Alcotest.(check bool) "tasks dropped" true (o.recirc_drops > 0)

let test_shape_draconis_beats_r2p2_tail () =
  let rate = 200_000.0 and horizon = Time.ms 60 in
  let d = run_system (H.Systems.draconis paper_spec) Synthetic.Fixed_500us ~rate ~horizon in
  let r =
    run_system
      (H.Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) paper_spec)
      Synthetic.Fixed_500us ~rate ~horizon
  in
  Alcotest.(check bool) "draconis p99 at least 10x lower" true
    (r.sched_p99 > 10 * d.sched_p99)

let test_shape_racksched_overhead_floor () =
  let rate = 64_000.0 and horizon = Time.ms 60 in
  let d = run_system (H.Systems.draconis paper_spec) Synthetic.Fixed_500us ~rate ~horizon in
  let r = run_system (H.Systems.racksched paper_spec) Synthetic.Fixed_500us ~rate ~horizon in
  (* RackSched pays the intra-node dispatch even at 20% load. *)
  Alcotest.(check bool) "racksched above draconis" true (r.sched_p50 > d.sched_p50)

let test_shape_socket_server_saturates () =
  let system =
    H.Systems.central_server Draconis_baselines.Central_server.Socket paper_spec
  in
  (* 200 ktps >> the ~160 ktps socket ceiling: must fail to drain and
     queue severely. *)
  let o =
    H.Runner.run system
      ~driver:(driver_of Synthetic.Fixed_500us ~rate:200_000.0 ~horizon:(Time.ms 60))
      ~load_tps:200_000.0 ~horizon:(Time.ms 60) ~drain:(Time.ms 30) ()
  in
  Alcotest.(check bool) "overloaded socket server" true
    ((not o.drained) || o.sched_p99 > Time.ms 1)

let test_shape_throughput_ordering () =
  (* No-op decision throughput: Draconis >> DPDK server > socket server. *)
  let feed_rate make =
    let system : H.Systems.running = make () in
    let horizon = Time.ms 4 in
    (* Closed-loop no-op feeding, as in Fig 5b. *)
    let submitted = ref 0 in
    let submit n =
      let open Draconis_proto in
      let rec go n =
        if n > 0 then begin
          let chunk = min n Codec.max_tasks_per_packet in
          system.H.Systems.submit
            (List.init chunk (fun tid ->
                 Task.make ~uid:0 ~jid:0 ~tid ~fn_id:Task.Fn.noop ~fn_par:0 ()));
          submitted := !submitted + chunk;
          go (n - chunk)
        end
      in
      go n
    in
    submit 1024;
    Engine.every system.H.Systems.engine ~interval:(Time.us 10) ~until:horizon (fun () ->
        let deficit =
          Draconis.Metrics.started system.H.Systems.metrics + 1024 - !submitted
        in
        if deficit > 0 then submit deficit);
    Engine.run ~until:horizon system.H.Systems.engine;
    Draconis_stats.Meter.rate_over
      (Draconis.Metrics.decisions system.H.Systems.metrics)
      ~duration:horizon
  in
  let fat_recirc =
    {
      Draconis_p4.Pipeline.default_config with
      recirc_slot = Time.ns 10;
      recirc_queue_limit = 8192;
    }
  in
  let draconis =
    feed_rate (fun () -> H.Systems.draconis ~pipeline_config:fat_recirc small_spec)
  in
  let dpdk =
    feed_rate (fun () ->
        H.Systems.central_server Draconis_baselines.Central_server.Dpdk small_spec)
  in
  let socket =
    feed_rate (fun () ->
        H.Systems.central_server Draconis_baselines.Central_server.Socket small_spec)
  in
  Alcotest.(check bool) "draconis >> dpdk" true (draconis > 2.0 *. dpdk);
  Alcotest.(check bool) "dpdk > socket" true (dpdk > socket)

let suite =
  [
    Alcotest.test_case "capacity and load grid" `Quick test_capacity_and_loads;
    Alcotest.test_case "horizon clamps" `Quick test_horizon_for_clamps;
    Alcotest.test_case "runner outcome consistency" `Quick test_runner_outcome_consistency;
    Alcotest.test_case "all systems run and drain" `Slow test_all_systems_run;
    Alcotest.test_case "shape: draconis low tail" `Slow
      test_shape_draconis_low_tail_at_moderate_load;
    Alcotest.test_case "shape: r2p2-3 node-level blocking" `Slow
      test_shape_r2p2_3_blocked_at_service_time;
    Alcotest.test_case "shape: r2p2-1 drops at overload" `Slow
      test_shape_r2p2_1_drops_under_overload;
    Alcotest.test_case "shape: draconis beats r2p2 tail" `Slow
      test_shape_draconis_beats_r2p2_tail;
    Alcotest.test_case "shape: racksched overhead floor" `Slow
      test_shape_racksched_overhead_floor;
    Alcotest.test_case "shape: socket server saturates" `Slow
      test_shape_socket_server_saturates;
    Alcotest.test_case "shape: no-op throughput ordering" `Slow
      test_shape_throughput_ordering;
  ]
