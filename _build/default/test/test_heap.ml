(* Unit and property tests for the binary heap backing the event queue. *)

open Draconis_sim

let make () = Heap.create ~compare:Stdlib.compare ()

let test_empty () =
  let heap = make () in
  Alcotest.(check int) "length" 0 (Heap.length heap);
  Alcotest.(check bool) "is_empty" true (Heap.is_empty heap);
  Alcotest.check_raises "pop raises" Not_found (fun () -> ignore (Heap.pop heap));
  Alcotest.check_raises "peek raises" Not_found (fun () -> ignore (Heap.peek heap))

let test_ordering () =
  let heap = make () in
  List.iter (fun k -> Heap.push heap k (10 * k)) [ 5; 1; 4; 1; 3; 9; 2 ];
  Alcotest.(check int) "length" 7 (Heap.length heap);
  Alcotest.(check (pair int int)) "peek min" (1, 10) (Heap.peek heap);
  let keys = ref [] in
  Heap.drain heap (fun k _ -> keys := k :: !keys);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 2; 3; 4; 5; 9 ] (List.rev !keys);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty heap)

let test_clear () =
  let heap = make () in
  for i = 0 to 9 do
    Heap.push heap i i
  done;
  Heap.clear heap;
  Alcotest.(check int) "cleared" 0 (Heap.length heap)

let test_interleaved () =
  let heap = make () in
  Heap.push heap 3 30;
  Heap.push heap 1 10;
  Alcotest.(check (pair int int)) "pop 1" (1, 10) (Heap.pop heap);
  Heap.push heap 2 20;
  Heap.push heap 0 0;
  Alcotest.(check (pair int int)) "pop 0" (0, 0) (Heap.pop heap);
  Alcotest.(check (pair int int)) "pop 2" (2, 20) (Heap.pop heap);
  Alcotest.(check (pair int int)) "pop 3" (3, 30) (Heap.pop heap)

let test_growth () =
  let heap = make () in
  for i = 1000 downto 1 do
    Heap.push heap i i
  done;
  Alcotest.(check int) "length after growth" 1000 (Heap.length heap);
  Alcotest.(check (pair int int)) "min after growth" (1, 1) (Heap.peek heap)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops any int list in sorted order" ~count:200
    QCheck.(list int)
    (fun keys ->
      let heap = make () in
      List.iter (fun k -> Heap.push heap k ()) keys;
      let out = ref [] in
      Heap.drain heap (fun k () -> out := k :: !out);
      List.rev !out = List.sort compare keys)

let prop_heap_partial =
  QCheck.Test.make ~name:"push/pop prefix matches sorted prefix" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (keys, take) ->
      QCheck.assume (keys <> []);
      let take = take mod List.length keys in
      let heap = make () in
      List.iter (fun k -> Heap.push heap k ()) keys;
      let popped = List.init take (fun _ -> fst (Heap.pop heap)) in
      let expected = List.filteri (fun i _ -> i < take) (List.sort compare keys) in
      popped = expected)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "growth past initial capacity" `Quick test_growth;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    QCheck_alcotest.to_alcotest prop_heap_partial;
  ]
