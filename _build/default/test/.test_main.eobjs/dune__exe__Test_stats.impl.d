test/test_stats.ml: Alcotest Array Astring Draconis_stats Gen Histogram List Meter QCheck QCheck_alcotest Sampler Table
