test/test_workload.ml: Alcotest Array Arrival Dist Draconis_proto Draconis_sim Draconis_workload Engine Google_trace List Rng Synthetic Task Time
