test/test_trace_file.ml: Alcotest Astring Draconis Draconis_proto Draconis_sim Draconis_workload Engine Filename Fun Google_trace List Rng Sys Task Time Trace_file
