test/test_circular_queue.ml: Addr Alcotest Circular_queue Draconis Draconis_net Draconis_p4 Draconis_proto Entry Gen List QCheck QCheck_alcotest Queue Task
