test/test_wraparound.ml: Addr Alcotest Circular_queue Draconis Draconis_net Draconis_p4 Draconis_proto Entry List QCheck QCheck_alcotest Task
