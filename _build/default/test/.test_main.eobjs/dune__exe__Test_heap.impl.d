test/test_heap.ml: Alcotest Draconis_sim Heap List QCheck QCheck_alcotest Stdlib
