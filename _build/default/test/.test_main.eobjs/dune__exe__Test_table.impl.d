test/test_table.ml: Alcotest Draconis_p4 Gen List QCheck QCheck_alcotest Table
