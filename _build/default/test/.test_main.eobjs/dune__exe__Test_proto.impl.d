test/test_proto.ml: Addr Alcotest Array Bytes Codec Draconis Draconis_net Draconis_proto Format Gen List Message QCheck QCheck_alcotest Task
