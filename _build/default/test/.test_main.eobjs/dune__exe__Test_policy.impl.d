test/test_policy.ml: Addr Alcotest Draconis Draconis_net Draconis_proto Draconis_sim Entry Fn_model Message Policy Task Time Topology
