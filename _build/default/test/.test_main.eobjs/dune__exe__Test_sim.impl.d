test/test_sim.ml: Alcotest Array Dist Draconis_sim Engine Format Fun List QCheck QCheck_alcotest Rng Time
