test/test_fault_tolerance.ml: Addr Alcotest Client Cluster Draconis Draconis_baselines Draconis_net Draconis_proto Draconis_sim Engine Fn_model List Metrics Policy Switch_program Task Time
