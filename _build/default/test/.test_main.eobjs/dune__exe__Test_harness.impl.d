test/test_harness.ml: Alcotest Codec Draconis Draconis_baselines Draconis_harness Draconis_p4 Draconis_proto Draconis_sim Draconis_stats Draconis_workload Engine List Synthetic Task Time
