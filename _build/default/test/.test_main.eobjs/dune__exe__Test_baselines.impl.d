test/test_baselines.ml: Alcotest Client Draconis Draconis_baselines Draconis_net Draconis_p4 Draconis_proto Draconis_sim Draconis_stats Engine Fn_model List Metrics Task Time
