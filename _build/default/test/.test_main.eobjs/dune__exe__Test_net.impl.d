test/test_net.ml: Addr Alcotest Cpu Draconis_net Draconis_sim Engine Fabric Fun Gen List QCheck QCheck_alcotest Rng Time Topology
