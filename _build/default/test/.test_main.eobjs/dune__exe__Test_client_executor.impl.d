test/test_client_executor.ml: Addr Alcotest Client Codec Draconis Draconis_net Draconis_proto Draconis_sim Draconis_stats Engine Executor Fabric Fn_model List Message Metrics Rng Task Time Worker
