test/test_param_fetch.ml: Addr Alcotest Array Client Cluster Codec Draconis Draconis_net Draconis_proto Draconis_sim Engine Executor Fabric Fn_model List Message Metrics Option Rng Task Time Worker
