test/test_layout.ml: Alcotest Array Astring Draconis Draconis_p4 Draconis_sim Engine Layout List Policy QCheck QCheck_alcotest Register Resources Switch_program
