test/test_trace.ml: Alcotest Astring Client Cluster Draconis Draconis_proto Draconis_sim Format List Printf Task Time Trace
