test/test_p4.ml: Addr Alcotest Array Draconis_net Draconis_p4 Draconis_sim Engine Fabric List Packet_ctx Pipeline QCheck QCheck_alcotest Register Resources Rng Time
