test/test_switch_program.ml: Addr Alcotest Draconis Draconis_net Draconis_p4 Draconis_proto Draconis_sim Engine Fabric Hashtbl List Message Policy Rng Switch_packet Switch_program Task Time Topology
