(* Fault-tolerance tests (paper sec 3.3): switch fail-over with loss of
   all queued state, recovered by client timeouts; plus the
   processor-sharing intra-node mode of the RackSched baseline. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis
module B = Draconis_baselines

let busy_task ~us n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us us) ()

let test_failover_loses_queue () =
  let cluster =
    Cluster.create
      { Cluster.default_config with workers = 2; executors_per_worker = 2; clients = 1 }
  in
  (* No executors started: everything submitted stays queued. *)
  ignore (Client.submit_job (Cluster.client cluster 0) (List.init 10 (busy_task ~us:100)));
  Cluster.run cluster ~until:(Time.ms 1);
  Alcotest.(check int) "tasks queued" 10
    (Switch_program.total_occupancy (Cluster.program cluster));
  let lost = Cluster.fail_over_switch cluster in
  Alcotest.(check int) "fail-over reports losses" 10 lost;
  Alcotest.(check int) "fresh switch empty" 0
    (Switch_program.total_occupancy (Cluster.program cluster))

let test_failover_clients_recover () =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers = 2;
        executors_per_worker = 2;
        clients = 1;
        client_timeout = Some (Time.ms 1);
      }
  in
  Cluster.start cluster;
  let engine = Cluster.engine cluster in
  for i = 0 to 49 do
    ignore
      (Engine.schedule engine ~after:(Time.us (40 * i)) (fun () ->
           ignore (Client.submit_job (Cluster.client cluster 0) [ busy_task ~us:200 i ])))
  done;
  (* Kill the switch mid-run: tasks queued at that moment vanish. *)
  ignore (Engine.schedule engine ~after:(Time.us 800) (fun () ->
      ignore (Cluster.fail_over_switch cluster)));
  Cluster.run cluster ~until:(Time.ms 5);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 5) in
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "drained after fail-over" true drained;
  Alcotest.(check int) "all tasks eventually completed" 50 (Metrics.completed m)

let test_failover_preserves_policy () =
  let cluster =
    Cluster.create
      {
        Cluster.default_config with
        workers = 2;
        executors_per_worker = 2;
        clients = 1;
        policy_of = (fun _ -> Policy.Priority { levels = 4 });
      }
  in
  ignore (Cluster.fail_over_switch cluster);
  (* The standby switch runs the same policy: four queues exist. *)
  (match Switch_program.queue (Cluster.program cluster) 3 with
  | _ -> ());
  match Switch_program.queue (Cluster.program cluster) 4 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unexpected fifth queue"

(* -- processor-sharing intra-node scheduler -------------------------------- *)

let test_ps_preempts_long_task () =
  let engine = Engine.create () in
  let starts = ref [] in
  let completions = ref [] in
  let worker =
    B.Node_worker.create ~engine ~node:0 ~executors:1 ~fn_model:Fn_model.default
      ~dispatch_overhead:0
      ~intra:(B.Node_worker.Processor_sharing { quantum = Time.us 10; overhead = 0 })
      ~on_complete:(fun task ~client:_ ->
        completions := (task.Task.id.tid, Engine.now engine) :: !completions)
      ()
  in
  B.Node_worker.set_on_task_start worker (fun task ~node:_ ->
      starts := (task.Task.id.tid, Engine.now engine) :: !starts);
  (* A 100us task arrives, then a 10us task right behind it. *)
  B.Node_worker.deliver worker (busy_task ~us:100 1) ~client:(Addr.Host 9);
  B.Node_worker.deliver worker (busy_task ~us:10 2) ~client:(Addr.Host 9);
  Engine.run engine;
  (* Under PS the short task starts after one quantum, not after 100us. *)
  (match List.assoc_opt 2 (List.rev !starts) with
  | Some t -> Alcotest.(check int) "short task starts after one quantum" (Time.us 10) t
  | None -> Alcotest.fail "short task never started");
  (match List.assoc_opt 2 !completions with
  | Some t ->
    Alcotest.(check bool) "short task finishes long before the 100us task" true
      (t <= Time.us 30)
  | None -> Alcotest.fail "short task never finished");
  Alcotest.(check bool) "preemptions recorded" true (B.Node_worker.preemptions worker > 0);
  Alcotest.(check int) "both done" 2 (B.Node_worker.tasks_executed worker)

let test_ps_work_conserving () =
  let engine = Engine.create () in
  let worker =
    B.Node_worker.create ~engine ~node:0 ~executors:2 ~fn_model:Fn_model.default
      ~dispatch_overhead:0
      ~intra:(B.Node_worker.Processor_sharing { quantum = Time.us 20; overhead = 0 })
      ~on_complete:(fun _ ~client:_ -> ())
      ()
  in
  for i = 1 to 6 do
    B.Node_worker.deliver worker (busy_task ~us:40 i) ~client:(Addr.Host 9)
  done;
  Engine.run engine;
  Alcotest.(check int) "all complete" 6 (B.Node_worker.tasks_executed worker);
  (* 6 x 40us of work on 2 executors with zero-cost preemption: exactly
     120us of wall time. *)
  Alcotest.(check int) "no capacity lost to slicing" (Time.us 120) (Engine.now engine);
  Alcotest.(check int) "queue drained" 0 (B.Node_worker.occupancy worker)

let test_ps_racksched_end_to_end () =
  let sys =
    B.Racksched.create
      {
        B.Racksched.default_config with
        workers = 2;
        executors_per_worker = 2;
        clients = 1;
        intra = B.Node_worker.Processor_sharing { quantum = Time.us 25; overhead = Time.us 1 };
      }
  in
  let engine = B.Racksched.engine sys in
  for i = 0 to 29 do
    ignore
      (Engine.schedule engine ~after:(Time.us (40 * i)) (fun () ->
           ignore
             (Client.submit_job (B.Racksched.client sys 0)
                [ busy_task ~us:(if i mod 5 = 0 then 300 else 30) i ])))
  done;
  B.Racksched.run sys ~until:(Time.ms 3);
  let drained = B.Racksched.run_until_drained sys ~deadline:(Time.s 1) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "completed" 30 (Metrics.completed (B.Racksched.metrics sys))

let suite =
  [
    Alcotest.test_case "fail-over empties the switch" `Quick test_failover_loses_queue;
    Alcotest.test_case "clients recover from fail-over" `Quick
      test_failover_clients_recover;
    Alcotest.test_case "fail-over preserves policy" `Quick test_failover_preserves_policy;
    Alcotest.test_case "PS preempts long tasks" `Quick test_ps_preempts_long_task;
    Alcotest.test_case "PS is work conserving" `Quick test_ps_work_conserving;
    Alcotest.test_case "PS RackSched end-to-end" `Quick test_ps_racksched_end_to_end;
  ]
