(* Tests for the P4 switch model: the one-access-per-packet rule,
   register semantics, pipeline behaviour including recirculation
   bandwidth and drops, and the resource estimates. *)

open Draconis_sim
open Draconis_net
open Draconis_p4

(* -- Packet_ctx / Register: the memory-model rule ---------------------------- *)

let test_single_access_enforced () =
  let reg = Register.create ~name:"r" ~size:4 () in
  let ctx = Packet_ctx.create () in
  ignore (Register.read reg ctx 0);
  (match Register.read reg ctx 1 with
  | exception Packet_ctx.Access_violation "r" -> ()
  | _ -> Alcotest.fail "second access to the same register must raise");
  (* A different packet may access it again. *)
  let ctx2 = Packet_ctx.create () in
  ignore (Register.read reg ctx2 0)

let test_distinct_registers_ok () =
  let a = Register.create ~name:"a" ~size:1 () in
  let b = Register.create ~name:"b" ~size:1 () in
  let ctx = Packet_ctx.create () in
  ignore (Register.read a ctx 0);
  ignore (Register.read b ctx 0);
  Alcotest.(check int) "two registers accessed" 2 (Packet_ctx.access_count ctx)

let test_read_and_increment () =
  let reg = Register.create ~name:"ptr" ~size:1 () in
  let old1 = Register.read_and_increment reg (Packet_ctx.create ()) 0 in
  let old2 = Register.read_and_increment reg (Packet_ctx.create ()) 0 in
  Alcotest.(check int) "returns old" 0 old1;
  Alcotest.(check int) "increments" 1 old2;
  Alcotest.(check int) "value" 2 (Register.peek reg 0)

let test_rmw_and_write () =
  let reg = Register.create ~name:"x" ~size:2 () in
  Register.write reg (Packet_ctx.create ()) 1 42;
  let old = Register.read_modify_write reg (Packet_ctx.create ()) 1 (fun v -> v * 2) in
  Alcotest.(check int) "rmw returns old" 42 old;
  Alcotest.(check int) "rmw applied" 84 (Register.peek reg 1)

let test_register_bounds () =
  let reg = Register.create ~name:"b" ~size:2 () in
  (match Register.read reg (Packet_ctx.create ()) 2 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds read must raise");
  match Register.poke reg (-1) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-bounds poke must raise"

let test_register_metadata () =
  let reg = Register.create ~name:"meta" ~size:8 () in
  Alcotest.(check int) "size" 8 (Register.size reg);
  Alcotest.(check int) "bits" 256 (Register.bits reg);
  Alcotest.(check string) "name" "meta" (Register.name reg);
  ignore (Register.read reg (Packet_ctx.create ()) 0);
  Alcotest.(check int) "access counter" 1 (Register.access_count reg)

let prop_one_access_per_packet =
  QCheck.Test.make ~name:"a packet can access n distinct registers but no repeats"
    ~count:50
    QCheck.(int_range 1 20)
    (fun n ->
      let regs = Array.init n (fun i -> Register.create ~name:(string_of_int i) ~size:1 ()) in
      let ctx = Packet_ctx.create () in
      Array.iter (fun reg -> ignore (Register.read reg ctx 0)) regs;
      (* Now every repeat must raise. *)
      Array.for_all
        (fun reg ->
          match Register.read reg ctx 0 with
          | exception Packet_ctx.Access_violation _ -> true
          | _ -> false)
        regs)

(* -- Pipeline ------------------------------------------------------------------ *)

type pkt = Ping of int | Loop of int

let make_pipeline ?config program =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:9 in
  let fabric =
    Fabric.create
      ~config:{ Fabric.default_config with host_to_switch = Time.us 1; jitter = 0 }
      engine rng
  in
  let pipeline = Pipeline.attach ?config fabric ~wrap:(fun m -> m) program in
  (engine, fabric, pipeline)

let test_pipeline_emit () =
  let engine, fabric, pipeline =
    make_pipeline (fun _ctx pkt ->
        match pkt with
        | Ping n -> [ Pipeline.Emit (Addr.Host 1, Ping (n + 1)) ]
        | Loop _ -> [ Pipeline.Drop ])
  in
  let got = ref [] in
  Fabric.register fabric (Addr.Host 1) (fun env -> got := env.Fabric.payload :: !got);
  Fabric.send fabric ~src:(Addr.Host 0) ~dst:Addr.Switch (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "one emitted" 1 (List.length !got);
  (match !got with
  | [ Ping 2 ] -> ()
  | _ -> Alcotest.fail "program output wrong");
  Alcotest.(check int) "processed" 1 (Pipeline.processed pipeline);
  Alcotest.(check int) "emitted" 1 (Pipeline.emitted pipeline)

let test_pipeline_recirculation () =
  let engine, _fabric, pipeline =
    make_pipeline (fun _ctx pkt ->
        match pkt with
        | Loop n when n > 0 -> [ Pipeline.Recirculate (Loop (n - 1)) ]
        | Loop _ -> [ Pipeline.Drop ]
        | Ping _ -> [ Pipeline.Drop ])
  in
  Pipeline.inject pipeline (Loop 5);
  Engine.run engine;
  Alcotest.(check int) "traversals = 1 + recircs" 6 (Pipeline.processed pipeline);
  Alcotest.(check int) "recirculated" 5 (Pipeline.recirculated pipeline);
  Alcotest.(check (float 1e-3)) "recirc fraction" (5.0 /. 6.0)
    (Pipeline.recirculation_fraction pipeline)

let test_pipeline_recirc_drops_when_saturated () =
  (* Slow recirculation port with a tiny queue: a burst must overflow. *)
  let config =
    {
      Pipeline.default_config with
      recirc_slot = Time.us 10;
      recirc_queue_limit = 4;
    }
  in
  let engine, _fabric, pipeline =
    make_pipeline ~config (fun _ctx pkt ->
        match pkt with
        | Ping _ -> [ Pipeline.Recirculate (Loop 0) ]
        | Loop _ -> [ Pipeline.Drop ])
  in
  for i = 1 to 50 do
    Pipeline.inject pipeline (Ping i)
  done;
  Engine.run engine;
  Alcotest.(check bool) "some dropped" true (Pipeline.recirc_dropped pipeline > 0);
  Alcotest.(check int) "dropped + recirculated = offered" 50
    (Pipeline.recirc_dropped pipeline + Pipeline.recirculated pipeline)

let test_pipeline_fresh_ctx_per_traversal () =
  (* A recirculated packet must be able to access the same register
     again: it is a new packet. *)
  let reg = Register.create ~name:"shared" ~size:1 () in
  let engine, _fabric, pipeline =
    make_pipeline (fun ctx pkt ->
        ignore (Register.read_and_increment reg ctx 0);
        match pkt with
        | Ping n when n > 0 -> [ Pipeline.Recirculate (Ping (n - 1)) ]
        | Ping _ | Loop _ -> [ Pipeline.Drop ])
  in
  Pipeline.inject pipeline (Ping 3);
  Engine.run engine;
  Alcotest.(check int) "register touched once per traversal" 4 (Register.peek reg 0)

let test_pipeline_set_program () =
  let engine, fabric, pipeline = make_pipeline (fun _ _ -> [ Pipeline.Drop ]) in
  let got = ref 0 in
  Fabric.register fabric (Addr.Host 1) (fun _ -> incr got);
  Pipeline.set_program pipeline (fun _ _ -> [ Pipeline.Emit (Addr.Host 1, Ping 0) ]);
  Pipeline.inject pipeline (Ping 9);
  Engine.run engine;
  Alcotest.(check int) "new program in effect" 1 !got

(* -- Resources -------------------------------------------------------------------- *)

let test_resources_paper_numbers () =
  Alcotest.(check bool) "tofino1 fits 164K FCFS" true
    (Resources.fits Resources.tofino1 ~queue_entries:164_000 ~priority_levels:1);
  Alcotest.(check int) "tofino1 max levels" 4
    (Resources.max_priority_levels Resources.tofino1);
  Alcotest.(check bool) "tofino2 fits 1M FCFS" true
    (Resources.fits Resources.tofino2 ~queue_entries:1_000_000 ~priority_levels:1);
  Alcotest.(check int) "tofino2 max levels" 12
    (Resources.max_priority_levels Resources.tofino2)

let test_resources_monotone () =
  let e1 = Resources.max_queue_entries Resources.tofino1 ~priority_levels:1 in
  let e4 = Resources.max_queue_entries Resources.tofino1 ~priority_levels:4 in
  Alcotest.(check bool) "more levels, less capacity" true (e4 <= e1);
  Alcotest.(check bool) "oversubscribed does not fit" false
    (Resources.fits Resources.tofino1 ~queue_entries:(e1 + 1) ~priority_levels:1)

let test_resources_validation () =
  match Resources.max_queue_entries Resources.tofino1 ~priority_levels:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero levels must raise"

let suite =
  [
    Alcotest.test_case "one access per packet enforced" `Quick test_single_access_enforced;
    Alcotest.test_case "distinct registers allowed" `Quick test_distinct_registers_ok;
    Alcotest.test_case "read_and_increment" `Quick test_read_and_increment;
    Alcotest.test_case "rmw and write" `Quick test_rmw_and_write;
    Alcotest.test_case "register bounds" `Quick test_register_bounds;
    Alcotest.test_case "register metadata" `Quick test_register_metadata;
    QCheck_alcotest.to_alcotest prop_one_access_per_packet;
    Alcotest.test_case "pipeline emit" `Quick test_pipeline_emit;
    Alcotest.test_case "pipeline recirculation" `Quick test_pipeline_recirculation;
    Alcotest.test_case "pipeline recirc saturation drops" `Quick
      test_pipeline_recirc_drops_when_saturated;
    Alcotest.test_case "pipeline fresh ctx per traversal" `Quick
      test_pipeline_fresh_ctx_per_traversal;
    Alcotest.test_case "pipeline program swap" `Quick test_pipeline_set_program;
    Alcotest.test_case "resource estimates match paper" `Quick test_resources_paper_numbers;
    Alcotest.test_case "resource capacity monotone" `Quick test_resources_monotone;
    Alcotest.test_case "resource validation" `Quick test_resources_validation;
  ]
