(* Tests for the workload generators: the synthetic suite, the
   open-loop arrival driver, and the Google-trace stand-in. *)

open Draconis_sim
open Draconis_proto
open Draconis_workload

(* -- Synthetic -------------------------------------------------------------- *)

let test_synthetic_names_roundtrip () =
  List.iter
    (fun kind ->
      match Synthetic.of_name (Synthetic.name kind) with
      | Some k -> Alcotest.(check bool) "roundtrip" true (k = kind)
      | None -> Alcotest.fail "name roundtrip failed")
    Synthetic.all;
  Alcotest.(check bool) "unknown name" true (Synthetic.of_name "nope" = None)

let test_synthetic_means () =
  let rng = Rng.create ~seed:1 in
  List.iter
    (fun kind ->
      let expected = Synthetic.mean_duration kind in
      let measured = Dist.mean_estimate (Synthetic.duration kind) rng ~n:30_000 in
      let err = abs_float (measured -. expected) /. expected in
      if err > 0.05 then
        Alcotest.failf "%s mean off by %.1f%%" (Synthetic.name kind) (100. *. err))
    Synthetic.all

let test_trimodal_support () =
  let rng = Rng.create ~seed:2 in
  let dist = Synthetic.duration Synthetic.Trimodal in
  for _ = 1 to 1_000 do
    let v = dist rng in
    if v <> Time.us 100 && v <> Time.us 250 && v <> Time.us 500 then
      Alcotest.fail "trimodal produced an unexpected duration"
  done

(* -- Arrival ----------------------------------------------------------------- *)

let test_arrival_rate () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:3 in
  let count = ref 0 in
  let spec =
    Arrival.uniform_spec ~rate_tps:100_000.0 ~duration:(Dist.constant 1) ~horizon:(Time.ms 100)
  in
  Arrival.drive engine rng spec ~submit:(fun tasks -> count := !count + List.length tasks);
  Engine.run engine;
  (* 100k tps over 100ms => ~10_000 tasks; Poisson sd ~ 100. *)
  Alcotest.(check bool) "rate within 5%" true (abs (!count - 10_000) < 500);
  Alcotest.(check (float 1.0)) "expected_tasks" 10_000.0 (Arrival.expected_tasks spec)

let test_arrival_batch () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:4 in
  let sizes = ref [] in
  let spec =
    {
      (Arrival.uniform_spec ~rate_tps:50_000.0 ~duration:(Dist.constant 1)
         ~horizon:(Time.ms 10))
      with
      batch = 5;
    }
  in
  Arrival.drive engine rng spec ~submit:(fun tasks -> sizes := List.length tasks :: !sizes);
  Engine.run engine;
  Alcotest.(check bool) "jobs produced" true (!sizes <> []);
  List.iter (fun s -> Alcotest.(check int) "batch size" 5 s) !sizes

let test_arrival_props_applied () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  let all_have_props = ref true in
  let spec =
    {
      (Arrival.uniform_spec ~rate_tps:50_000.0 ~duration:(Dist.constant 1)
         ~horizon:(Time.ms 5))
      with
      tprops_of = (fun _ -> Task.Priority 2);
      fn_id = Task.Fn.noop;
    }
  in
  Arrival.drive engine rng spec ~submit:(fun tasks ->
      List.iter
        (fun (t : Task.t) ->
          if Task.priority_level t <> 2 || t.fn_id <> Task.Fn.noop then
            all_have_props := false)
        tasks);
  Engine.run engine;
  Alcotest.(check bool) "props and fn applied" true !all_have_props

let test_arrival_validation () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:6 in
  let spec = Arrival.uniform_spec ~rate_tps:0.0 ~duration:(Dist.constant 1) ~horizon:1 in
  match Arrival.drive engine rng spec ~submit:(fun _ -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "zero rate must raise"

(* -- Google trace ----------------------------------------------------------------- *)

let test_trace_duration_mean () =
  let rng = Rng.create ~seed:7 in
  let spec = { Google_trace.default_spec with mean_duration = Time.us 500 } in
  let n = 50_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. float_of_int (Google_trace.task_duration rng spec)
  done;
  let mean = !total /. float_of_int n in
  (* Lognormal with sigma 1.3 converges slowly; 15% tolerance. *)
  Alcotest.(check bool) "mean near 500us" true (abs_float (mean -. 500_000.) < 75_000.)

let test_trace_priorities_mix () =
  let rng = Rng.create ~seed:8 in
  let spec = { Google_trace.default_spec with priority_levels = 4 } in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let p = Google_trace.priority rng spec in
    counts.(p) <- counts.(p) + 1
  done;
  (* Paper mix: 1.2 / 1.7 / 64.6 / 32.2 %. *)
  let frac level = float_of_int counts.(level) /. float_of_int n in
  Alcotest.(check bool) "level 1 rare" true (frac 1 < 0.03);
  Alcotest.(check bool) "level 3 dominant" true (frac 3 > 0.55);
  Alcotest.(check bool) "level 4 large" true (frac 4 > 0.25)

let test_trace_priorities_clamped () =
  let rng = Rng.create ~seed:9 in
  let spec = { Google_trace.default_spec with priority_levels = 2 } in
  for _ = 1 to 1_000 do
    let p = Google_trace.priority rng spec in
    if p < 1 || p > 2 then Alcotest.fail "priority out of range"
  done

let test_trace_burstiness () =
  let rng = Rng.create ~seed:10 in
  let spec = { Google_trace.default_spec with burst_fraction = 0.05; burst_scale = 100 } in
  let bursts = ref 0 and total = ref 0 in
  for _ = 1 to 5_000 do
    incr total;
    if Google_trace.job_size rng spec >= 100 then incr bursts
  done;
  let frac = float_of_int !bursts /. float_of_int !total in
  Alcotest.(check bool) "bursts present at ~5%" true (frac > 0.02 && frac < 0.10)

let test_trace_drive_rate () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:11 in
  let count = ref 0 in
  let spec =
    { Google_trace.default_spec with rate_tps = 100_000.0; horizon = Time.ms 200 }
  in
  Google_trace.drive engine rng spec ~submit:(fun tasks -> count := !count + List.length tasks);
  Engine.run engine;
  (* Bursty arrivals: generous 25% tolerance around 20k tasks. *)
  Alcotest.(check bool) "aggregate rate respected" true
    (!count > 15_000 && !count < 25_000)

let suite =
  [
    Alcotest.test_case "synthetic names roundtrip" `Quick test_synthetic_names_roundtrip;
    Alcotest.test_case "synthetic means" `Quick test_synthetic_means;
    Alcotest.test_case "trimodal support" `Quick test_trimodal_support;
    Alcotest.test_case "arrival rate" `Quick test_arrival_rate;
    Alcotest.test_case "arrival batching" `Quick test_arrival_batch;
    Alcotest.test_case "arrival applies props" `Quick test_arrival_props_applied;
    Alcotest.test_case "arrival validation" `Quick test_arrival_validation;
    Alcotest.test_case "trace duration mean" `Quick test_trace_duration_mean;
    Alcotest.test_case "trace priority mix" `Quick test_trace_priorities_mix;
    Alcotest.test_case "trace priorities clamped" `Quick test_trace_priorities_clamped;
    Alcotest.test_case "trace burstiness" `Quick test_trace_burstiness;
    Alcotest.test_case "trace drive rate" `Quick test_trace_drive_rate;
  ]
