(* Pipeline-level tests of the Draconis switch program: job submission
   (including multi-task recirculation and full-queue bounces), pull
   retrieval, completion piggybacking, task swapping under the
   resource-aware and locality policies, and the priority multi-queue. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

type harness = {
  engine : Engine.t;
  fabric : Message.t Fabric.t;
  pipeline : (Message.t, Switch_packet.t) Draconis_p4.Pipeline.t;
  program : Switch_program.t;
  inbox : (Addr.t, Message.t list ref) Hashtbl.t;
}

let make ?(policy = Policy.Fcfs) ?(capacity = 16) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:21 in
  let fabric =
    Fabric.create
      ~config:{ Fabric.default_config with host_to_switch = Time.us 1; jitter = 0 }
      engine rng
  in
  let program = Switch_program.create ~engine ~policy ~queue_capacity:capacity () in
  let pipeline =
    Draconis_p4.Pipeline.attach fabric
      ~wrap:(fun msg -> Switch_packet.Wire msg)
      (Switch_program.program program)
  in
  let inbox = Hashtbl.create 8 in
  { engine; fabric; pipeline; program; inbox }

let listen h addr =
  let box = ref [] in
  Hashtbl.replace h.inbox addr box;
  Fabric.register h.fabric addr (fun env -> box := env.Fabric.payload :: !box);
  box

let task ?(tprops = Task.No_props) n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~tprops ~fn_id:Task.Fn.busy_loop ~fn_par:1000 ()

let submit h ~client tasks =
  Fabric.send h.fabric ~src:client ~dst:Addr.Switch
    (Message.Job_submission { client; uid = 0; jid = 0; tasks })

let request h ~node ~port ?(rsrc = 0xFFFFFFFF) ?(rtrv_prio = 1) () =
  Fabric.send h.fabric ~src:(Addr.Host node) ~dst:Addr.Switch
    (Message.Task_request
       {
         info = { exec_addr = Addr.Host node; exec_port = port; exec_rsrc = rsrc; exec_node = node };
         rtrv_prio;
       })

(* -- FCFS basics ------------------------------------------------------------- *)

let test_submission_ack_and_retrieval () =
  let h = make () in
  let client_box = listen h (Addr.Host 10) in
  let worker_box = listen h (Addr.Host 0) in
  submit h ~client:(Addr.Host 10) [ task 1; task 2 ];
  Engine.run h.engine;
  (* Multi-task packet: one recirculation for the second task. *)
  Alcotest.(check int) "recirculated once" 1
    (Draconis_p4.Pipeline.recirculated h.pipeline);
  (match !client_box with
  | [ Message.Job_ack _ ] -> ()
  | _ -> Alcotest.fail "expected a single job_ack");
  Alcotest.(check int) "two tasks queued" 2 (Switch_program.total_occupancy h.program);
  request h ~node:0 ~port:3 ();
  Engine.run h.engine;
  (match !worker_box with
  | [ Message.Task_assignment { task = t; client; port } ] ->
    Alcotest.(check int) "FCFS head" 1 t.Task.id.tid;
    Alcotest.(check int) "port routed" 3 port;
    Alcotest.(check bool) "client info preserved" true (Addr.equal client (Addr.Host 10))
  | _ -> Alcotest.fail "expected one assignment");
  Alcotest.(check int) "assignments" 1 (Switch_program.assignments h.program)

let test_empty_queue_noop () =
  let h = make () in
  let worker_box = listen h (Addr.Host 0) in
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  (match !worker_box with
  | [ Message.Noop_assignment { port = 0 } ] -> ()
  | _ -> Alcotest.fail "expected a no-op");
  Alcotest.(check int) "noop counter" 1 (Switch_program.noops h.program)

let test_full_queue_bounce () =
  let h = make ~capacity:2 () in
  let client_box = listen h (Addr.Host 10) in
  submit h ~client:(Addr.Host 10) [ task 1; task 2; task 3 ];
  Engine.run h.engine;
  let bounced =
    List.find_map
      (function Message.Queue_full { tasks; _ } -> Some tasks | _ -> None)
      !client_box
  in
  (match bounced with
  | Some [ t ] -> Alcotest.(check int) "third task bounced" 3 t.Task.id.tid
  | _ -> Alcotest.fail "expected queue_full with one task");
  Alcotest.(check int) "rejected counter" 1 (Switch_program.rejected_tasks h.program);
  (* The repair must leave the queue usable: drain and refill. *)
  let worker_box = listen h (Addr.Host 0) in
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  (match !worker_box with
  | [ Message.Task_assignment { task = t; _ } ] ->
    Alcotest.(check int) "first task intact" 1 t.Task.id.tid
  | _ -> Alcotest.fail "expected assignment after repair");
  submit h ~client:(Addr.Host 10) [ task 4 ];
  Engine.run h.engine;
  Alcotest.(check int) "space reused" 2 (Switch_program.total_occupancy h.program)

let test_completion_piggyback () =
  let h = make () in
  let client_box = listen h (Addr.Host 10) in
  let worker_box = listen h (Addr.Host 0) in
  submit h ~client:(Addr.Host 10) [ task 1 ];
  Engine.run h.engine;
  (* Executor reports completion of some earlier task; the switch must
     forward it to the client AND serve the piggybacked request. *)
  Fabric.send h.fabric ~src:(Addr.Host 0) ~dst:Addr.Switch
    (Message.Task_completion
       {
         task_id = { uid = 0; jid = 0; tid = 99 };
         client = Addr.Host 10;
         info = { exec_addr = Addr.Host 0; exec_port = 1; exec_rsrc = 0; exec_node = 0 };
         rtrv_prio = 1;
       });
  Engine.run h.engine;
  Alcotest.(check bool) "completion forwarded" true
    (List.exists (function Message.Task_completion _ -> true | _ -> false) !client_box);
  (match
     List.find_opt (function Message.Task_assignment _ -> true | _ -> false) !worker_box
   with
  | Some (Message.Task_assignment { task = t; port; _ }) ->
    Alcotest.(check int) "piggyback served" 1 t.Task.id.tid;
    Alcotest.(check int) "to the completing executor" 1 port
  | _ -> Alcotest.fail "expected piggybacked assignment")

let test_retrieve_repair_after_empty_poll () =
  let h = make () in
  let worker_box = listen h (Addr.Host 0) in
  (* Poll the empty queue: pointer overruns. *)
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  (* A submission now triggers the lazy repair via recirculation; after
     it lands, the task must be retrievable. *)
  submit h ~client:(Addr.Host 10) [ task 7 ];
  Engine.run h.engine;
  Alcotest.(check bool) "repair recirculated" true
    (Switch_program.repairs_launched h.program >= 1);
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  (match
     List.find_opt (function Message.Task_assignment _ -> true | _ -> false) !worker_box
   with
  | Some (Message.Task_assignment { task = t; _ }) ->
    Alcotest.(check int) "task recovered after repair" 7 t.Task.id.tid
  | _ -> Alcotest.fail "task lost after empty-poll repair")

(* -- resource-aware swapping (§5.2) ------------------------------------------- *)

let test_resource_swap () =
  let h = make ~policy:(Policy.Resource_aware { max_swaps = 8 }) () in
  let gpu_box = listen h (Addr.Host 1) in
  let plain_box = listen h (Addr.Host 0) in
  (* Queue: [needs-GPU; plain]. *)
  submit h ~client:(Addr.Host 10)
    [ task ~tprops:(Task.Resources 2) 1; task ~tprops:(Task.Resources 0) 2 ];
  Engine.run h.engine;
  (* A GPU-less executor pulls: must get task 2 via swapping. *)
  request h ~node:0 ~port:0 ~rsrc:1 ();
  Engine.run h.engine;
  (match
     List.find_opt (function Message.Task_assignment _ -> true | _ -> false) !plain_box
   with
  | Some (Message.Task_assignment { task = t; _ }) ->
    Alcotest.(check int) "swapped past GPU task" 2 t.Task.id.tid
  | _ -> Alcotest.fail "plain executor should get the plain task");
  Alcotest.(check bool) "swap happened" true (Switch_program.swaps h.program >= 1);
  (* The GPU task is still queued and goes to a GPU executor. *)
  request h ~node:1 ~port:0 ~rsrc:3 ();
  Engine.run h.engine;
  (match
     List.find_opt (function Message.Task_assignment _ -> true | _ -> false) !gpu_box
   with
  | Some (Message.Task_assignment { task = t; _ }) ->
    Alcotest.(check int) "GPU task preserved" 1 t.Task.id.tid
  | _ -> Alcotest.fail "GPU task lost in swap")

let test_resource_no_eligible_noop_and_reinsert () =
  let h = make ~policy:(Policy.Resource_aware { max_swaps = 8 }) () in
  let plain_box = listen h (Addr.Host 0) in
  submit h ~client:(Addr.Host 10) [ task ~tprops:(Task.Resources 2) 1 ];
  Engine.run h.engine;
  (* No eligible task for this executor: no-op, task re-inserted. *)
  request h ~node:0 ~port:0 ~rsrc:1 ();
  Engine.run h.engine;
  (match
     List.find_opt (function Message.Noop_assignment _ -> true | _ -> false) !plain_box
   with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a no-op");
  Alcotest.(check int) "task re-inserted" 1 (Switch_program.total_occupancy h.program);
  Alcotest.(check bool) "resubmission counted" true
    (Switch_program.resubmissions h.program >= 1)

(* -- locality (§5.3) ------------------------------------------------------------ *)

let test_locality_skip_counter_escalation () =
  let topology = Topology.create ~nodes:4 ~racks:2 in
  let h =
    make
      ~policy:(Policy.Locality_aware { rack_start_limit = 2; global_start_limit = 4; topology })
      ()
  in
  let local_box = listen h (Addr.Host 3) in
  let remote_box = listen h (Addr.Host 0) in
  (* Task data lives on node 3 (rack 1). Node 0 is in rack 0. *)
  submit h ~client:(Addr.Host 10) [ task ~tprops:(Task.Locality [ 3 ]) 1 ];
  Engine.run h.engine;
  (* First two remote pulls are refused (skip counter below limits). *)
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  Alcotest.(check bool) "remote refused initially" true
    (List.for_all (function Message.Noop_assignment _ -> true | _ -> false) !remote_box);
  (* A data-local pull gets it immediately. *)
  request h ~node:3 ~port:0 ();
  Engine.run h.engine;
  (match
     List.find_opt (function Message.Task_assignment _ -> true | _ -> false) !local_box
   with
  | Some _ -> ()
  | None -> Alcotest.fail "data-local executor should win the task")

let test_locality_global_limit_releases_task () =
  let topology = Topology.create ~nodes:4 ~racks:2 in
  let h =
    make
      ~policy:(Policy.Locality_aware { rack_start_limit = 1; global_start_limit = 2; topology })
      ()
  in
  let remote_box = listen h (Addr.Host 0) in
  submit h ~client:(Addr.Host 10) [ task ~tprops:(Task.Locality [ 3 ]) 1 ];
  Engine.run h.engine;
  (* Keep pulling from a remote node; after the skip counter passes the
     global limit the task must be released to it. *)
  let assigned = ref false in
  for _ = 1 to 6 do
    if not !assigned then begin
      request h ~node:0 ~port:0 ();
      Engine.run h.engine;
      if List.exists (function Message.Task_assignment _ -> true | _ -> false) !remote_box
      then assigned := true
    end
  done;
  Alcotest.(check bool) "task eventually scheduled anywhere" true !assigned

(* -- priority (§6.1) -------------------------------------------------------------- *)

let test_priority_ordering () =
  let h = make ~policy:(Policy.Priority { levels = 4 }) () in
  let box = listen h (Addr.Host 0) in
  submit h ~client:(Addr.Host 10)
    [ task ~tprops:(Task.Priority 3) 31; task ~tprops:(Task.Priority 1) 11;
      task ~tprops:(Task.Priority 4) 41; task ~tprops:(Task.Priority 1) 12 ];
  Engine.run h.engine;
  let pull () =
    request h ~node:0 ~port:0 ();
    Engine.run h.engine;
    match !box with
    | Message.Task_assignment { task = t; _ } :: _ -> t.Task.id.tid
    | _ -> Alcotest.fail "expected assignment"
  in
  (* Highest priority first; FCFS within a level. *)
  Alcotest.(check int) "prio 1 first" 11 (pull ());
  Alcotest.(check int) "prio 1 FCFS" 12 (pull ());
  Alcotest.(check int) "then prio 3" 31 (pull ());
  Alcotest.(check int) "then prio 4" 41 (pull ());
  (* Lower-priority retrieval recirculates through empty levels. *)
  Alcotest.(check bool) "recirculation used for level scan" true
    (Draconis_p4.Pipeline.recirculated h.pipeline > 3)

let test_priority_empty_noop () =
  let h = make ~policy:(Policy.Priority { levels = 4 }) () in
  let box = listen h (Addr.Host 0) in
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  match !box with
  | [ Message.Noop_assignment _ ] -> ()
  | _ -> Alcotest.fail "all levels empty must answer no-op"

let test_priority_clamps_out_of_range () =
  let h = make ~policy:(Policy.Priority { levels = 2 }) () in
  let box = listen h (Addr.Host 0) in
  submit h ~client:(Addr.Host 10) [ task ~tprops:(Task.Priority 9) 1 ];
  Engine.run h.engine;
  request h ~node:0 ~port:0 ();
  Engine.run h.engine;
  match
    List.find_opt (function Message.Task_assignment _ -> true | _ -> false) !box
  with
  | Some _ -> ()
  | None -> Alcotest.fail "out-of-range priority must land in the lowest queue"

let suite =
  [
    Alcotest.test_case "submission, ack, retrieval" `Quick test_submission_ack_and_retrieval;
    Alcotest.test_case "empty queue answers no-op" `Quick test_empty_queue_noop;
    Alcotest.test_case "full queue bounces and repairs" `Quick test_full_queue_bounce;
    Alcotest.test_case "completion piggybacks a request" `Quick test_completion_piggyback;
    Alcotest.test_case "retrieve repair after empty poll" `Quick
      test_retrieve_repair_after_empty_poll;
    Alcotest.test_case "resource-aware swapping" `Quick test_resource_swap;
    Alcotest.test_case "resource: no eligible task" `Quick
      test_resource_no_eligible_noop_and_reinsert;
    Alcotest.test_case "locality skip-counter escalation" `Quick
      test_locality_skip_counter_escalation;
    Alcotest.test_case "locality global limit releases" `Quick
      test_locality_global_limit_releases_task;
    Alcotest.test_case "priority ordering across levels" `Quick test_priority_ordering;
    Alcotest.test_case "priority empty no-op" `Quick test_priority_empty_noop;
    Alcotest.test_case "priority clamps out-of-range" `Quick
      test_priority_clamps_out_of_range;
  ]
