(* Tests for the transmission-function mechanism (paper §4.4): tasks
   submitted without parameters; the executor fetches them from the
   client before running. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

let fetch_task ~us n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.fetch_params ~fn_par:(Time.us us) ()

let make_cluster ?(param_size = 0) () =
  let cluster =
    Cluster.create
      { Cluster.default_config with workers = 2; executors_per_worker = 2; clients = 1 }
  in
  (* Reconfigure the client's parameter store size via a fresh client is
     not possible post-hoc; instead park the size in the config by
     rebuilding when needed.  For simplicity the tests that need a size
     build their own client below. *)
  ignore param_size;
  Cluster.start cluster;
  cluster

let test_fetch_roundtrip_completes () =
  let cluster = make_cluster () in
  ignore (Client.submit_job (Cluster.client cluster 0) (List.init 10 (fetch_task ~us:100)));
  Cluster.run cluster ~until:(Time.ms 2);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 1) in
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "all fetch tasks completed" 10 (Metrics.completed m)

let test_fetch_adds_client_roundtrip () =
  (* Compare scheduling->start latency of a plain task vs a fetch task:
     the fetch task pays one extra executor<->client round trip. *)
  let run_kind fn_id =
    let cluster = make_cluster () in
    let started_at = ref None in
    Array.iter
      (fun worker ->
        Worker.set_on_task_start worker (fun _ ~node:_ ->
            if !started_at = None then
              started_at := Some (Engine.now (Cluster.engine cluster))))
      (Cluster.workers cluster);
    ignore
      (Client.submit_job (Cluster.client cluster 0)
         [ Task.make ~uid:0 ~jid:0 ~tid:0 ~fn_id ~fn_par:(Time.us 50) () ]);
    ignore (Cluster.run_until_drained cluster ~deadline:(Time.s 1));
    Option.get !started_at
  in
  let plain = run_kind Task.Fn.busy_loop in
  let fetch = run_kind Task.Fn.fetch_params in
  (* Executor -> client -> executor is two host-to-host hops = 4
     host-to-switch latencies (~6 us + jitter). *)
  let extra = fetch - plain in
  Alcotest.(check bool) "fetch adds roughly one extra round trip" true
    (extra >= Time.us 5 && extra <= Time.us 12)

let test_param_size_adds_transfer_time () =
  (* A client serving 10 MB parameters at ~100 Gbps adds ~0.8 ms. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:3 in
  let fabric =
    Fabric.create
      ~config:{ Fabric.default_config with host_to_switch = Time.us 1; jitter = 0 }
      engine rng
  in
  let metrics = Metrics.create engine in
  let client =
    Client.create
      ~config:
        { (Client.default_config ~host:5 ~uid:0) with param_size = 10_000_000 }
      ~fabric ~metrics ()
  in
  (* A stub switch that assigns the submitted task to executor 0. *)
  Fabric.register fabric Addr.Switch (fun env ->
      match env.Fabric.payload with
      | Message.Job_submission { client; tasks = task :: _; _ } ->
        Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 0)
          (Message.Task_assignment { task; client; port = 0 })
      | _ -> ());
  let started_at = ref None in
  let worker =
    Worker.create ~node:0 ~executors:1 ~fabric
      ~make_config:(fun ~port ->
        {
          Executor.node = 0;
          port;
          rsrc = 0;
          noop_retry = Time.us 4;
          fn_model = Fn_model.default;
          scheduler = Addr.Switch;
          watchdog = None;
        })
      ()
  in
  Worker.set_on_task_start worker (fun _ ~node:_ -> started_at := Some (Engine.now engine));
  ignore (Client.submit_job client [ fetch_task ~us:10 0 ]);
  Engine.run ~until:(Time.ms 10) engine;
  match !started_at with
  | None -> Alcotest.fail "task never started"
  | Some t ->
    (* 10 MB * 0.08 ns/B = 800 us of transfer before execution. *)
    Alcotest.(check bool) "transfer time dominates" true (t >= Time.us 800)

let test_codec_roundtrip_param_messages () =
  let id : Task.id = { uid = 1; jid = 2; tid = 3 } in
  List.iter
    (fun msg ->
      match Codec.decode (Codec.encode msg) with
      | Ok decoded -> Alcotest.(check bool) "roundtrip" true (decoded = msg)
      | Error _ -> Alcotest.fail "decode failed")
    [
      Message.Param_fetch { task_id = id; node = 4; port = 7 };
      Message.Param_data { task_id = id; port = 7; size = 123_456 };
    ]

let suite =
  [
    Alcotest.test_case "fetch tasks complete end-to-end" `Quick
      test_fetch_roundtrip_completes;
    Alcotest.test_case "fetch adds one client round trip" `Quick
      test_fetch_adds_client_roundtrip;
    Alcotest.test_case "parameter size adds transfer time" `Quick
      test_param_size_adds_transfer_time;
    Alcotest.test_case "param message codec roundtrip" `Quick
      test_codec_roundtrip_param_messages;
  ]
