(* Tests for the network substrate: Addr, Topology, Fabric, Cpu. *)

open Draconis_sim
open Draconis_net

(* -- Addr -------------------------------------------------------------------- *)

let test_addr () =
  Alcotest.(check bool) "switch = switch" true (Addr.equal Addr.Switch Addr.Switch);
  Alcotest.(check bool) "host eq" true (Addr.equal (Addr.Host 3) (Addr.Host 3));
  Alcotest.(check bool) "host neq" false (Addr.equal (Addr.Host 3) (Addr.Host 4));
  Alcotest.(check bool) "switch != host" false (Addr.equal Addr.Switch (Addr.Host 0));
  Alcotest.(check string) "to_string" "host-7" (Addr.to_string (Addr.Host 7));
  Alcotest.(check int) "host_id" 7 (Addr.host_id (Addr.Host 7));
  Alcotest.(check bool) "is_switch" true (Addr.is_switch Addr.Switch);
  Alcotest.check_raises "host_id of switch"
    (Invalid_argument "Addr.host_id: switch has no host id") (fun () ->
      ignore (Addr.host_id Addr.Switch))

let test_addr_ordering () =
  Alcotest.(check int) "switch sorts first" (-1) (Addr.compare Addr.Switch (Addr.Host 0));
  Alcotest.(check bool) "host order" true (Addr.compare (Addr.Host 1) (Addr.Host 2) < 0)

(* -- Topology ------------------------------------------------------------------ *)

let test_topology_even_split () =
  let topo = Topology.create ~nodes:9 ~racks:3 in
  Alcotest.(check (list int)) "rack 0" [ 0; 1; 2 ] (Topology.hosts_in_rack topo 0);
  Alcotest.(check (list int)) "rack 1" [ 3; 4; 5 ] (Topology.hosts_in_rack topo 1);
  Alcotest.(check (list int)) "rack 2" [ 6; 7; 8 ] (Topology.hosts_in_rack topo 2);
  Alcotest.(check bool) "same rack" true (Topology.same_rack topo 0 2);
  Alcotest.(check bool) "different rack" false (Topology.same_rack topo 2 3)

let test_topology_uneven () =
  let topo = Topology.create ~nodes:10 ~racks:3 in
  let sizes =
    List.map (fun r -> List.length (Topology.hosts_in_rack topo r)) [ 0; 1; 2 ]
  in
  Alcotest.(check int) "all nodes covered" 10 (List.fold_left ( + ) 0 sizes);
  List.iter
    (fun size -> Alcotest.(check bool) "balanced" true (size >= 3 && size <= 4))
    sizes

let test_topology_validation () =
  Alcotest.check_raises "zero racks"
    (Invalid_argument "Topology.create: need 1 <= racks <= nodes") (fun () ->
      ignore (Topology.create ~nodes:4 ~racks:0));
  Alcotest.check_raises "more racks than nodes"
    (Invalid_argument "Topology.create: need 1 <= racks <= nodes") (fun () ->
      ignore (Topology.create ~nodes:2 ~racks:3))

let prop_topology_partition =
  QCheck.Test.make ~name:"racks partition the nodes" ~count:100
    QCheck.(pair (int_range 1 64) (int_range 1 64))
    (fun (nodes, racks) ->
      QCheck.assume (racks <= nodes);
      let topo = Topology.create ~nodes ~racks in
      let total =
        List.fold_left
          (fun acc r -> acc + List.length (Topology.hosts_in_rack topo r))
          0
          (List.init racks Fun.id)
      in
      total = nodes
      && List.for_all
           (fun h ->
             let r = Topology.rack_of topo h in
             r >= 0 && r < racks)
           (List.init nodes Fun.id))

(* -- Fabric ---------------------------------------------------------------------- *)

let make_fabric ?config () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:5 in
  (engine, Fabric.create ?config engine rng)

let no_jitter = { Fabric.default_config with host_to_switch = Time.us 1; jitter = 0 }

let test_fabric_delivery_latency () =
  let engine, fabric = make_fabric ~config:no_jitter () in
  let delivered_at = ref (-1) in
  Fabric.register fabric (Addr.Host 1) (fun env ->
      Alcotest.(check string) "payload" "hello" env.Fabric.payload;
      Alcotest.(check bool) "src" true (Addr.equal env.Fabric.src Addr.Switch);
      delivered_at := Engine.now engine);
  Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 1) "hello";
  Engine.run engine;
  Alcotest.(check int) "one-way latency" (Time.us 1) !delivered_at;
  Alcotest.(check int) "delivered counter" 1 (Fabric.delivered fabric)

let test_fabric_host_to_host_two_hops () =
  let engine, fabric = make_fabric ~config:no_jitter () in
  let delivered_at = ref (-1) in
  Fabric.register fabric (Addr.Host 2) (fun _ -> delivered_at := Engine.now engine);
  Fabric.send fabric ~src:(Addr.Host 1) ~dst:(Addr.Host 2) "x";
  Engine.run engine;
  Alcotest.(check int) "two-hop latency" (Time.us 2) !delivered_at

let test_fabric_unregistered () =
  let engine, fabric = make_fabric ~config:no_jitter () in
  Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 9) "lost";
  Engine.run engine;
  Alcotest.(check int) "undeliverable" 1 (Fabric.undeliverable fabric)

let test_fabric_loss () =
  let engine, fabric =
    make_fabric ~config:{ no_jitter with loss = 1.0 } ()
  in
  let got = ref 0 in
  Fabric.register fabric (Addr.Host 1) (fun _ -> incr got);
  for _ = 1 to 50 do
    Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 1) "drop me"
  done;
  Engine.run engine;
  Alcotest.(check int) "all lost" 0 !got;
  Alcotest.(check int) "lost counter" 50 (Fabric.lost fabric)

let test_fabric_self_send_rejected () =
  let _, fabric = make_fabric () in
  match Fabric.send fabric ~src:(Addr.Host 1) ~dst:(Addr.Host 1) "loop" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "self-send must raise"

let test_fabric_jitter_bounded () =
  let engine, fabric =
    make_fabric ~config:{ no_jitter with jitter = Time.ns 200 } ()
  in
  let latencies = ref [] in
  Fabric.register fabric (Addr.Host 1) (fun env ->
      latencies := (Engine.now engine - env.Fabric.sent_at) :: !latencies);
  (* Send at distinct times to observe per-message latency. *)
  for i = 0 to 49 do
    ignore
      (Engine.schedule engine ~after:(i * Time.us 10) (fun () ->
           Fabric.send fabric ~src:Addr.Switch ~dst:(Addr.Host 1) "j"))
  done;
  Engine.run engine;
  List.iter
    (fun l ->
      if l < Time.us 1 || l > Time.us 1 + Time.ns 200 then
        Alcotest.fail "jitter out of bounds")
    !latencies

let test_fabric_detour () =
  let config =
    { no_jitter with detour_fraction = 0.5; detour_extra = Time.us 3 }
  in
  let engine, fabric = make_fabric ~config () in
  (* Deterministic membership, and roughly the configured fraction. *)
  let members = List.filter (fun h -> Fabric.detoured fabric h) (List.init 100 Fun.id) in
  Alcotest.(check bool) "fraction roughly honored" true
    (List.length members > 30 && List.length members < 70);
  let member = List.hd members in
  let outsider = List.hd (List.filter (fun h -> not (Fabric.detoured fabric h)) (List.init 100 Fun.id)) in
  let arrival = ref 0 in
  Fabric.register fabric Addr.Switch (fun _ -> arrival := Engine.now engine);
  Fabric.send fabric ~src:(Addr.Host outsider) ~dst:Addr.Switch "direct";
  Engine.run engine;
  Alcotest.(check int) "direct path" (Time.us 1) !arrival;
  let engine2, fabric2 = make_fabric ~config () in
  let arrival2 = ref 0 in
  Fabric.register fabric2 Addr.Switch (fun _ -> arrival2 := Engine.now engine2);
  Fabric.send fabric2 ~src:(Addr.Host member) ~dst:Addr.Switch "detoured";
  Engine.run engine2;
  Alcotest.(check int) "detoured path" (Time.us 4) !arrival2

let test_fabric_no_detour_by_default () =
  let _, fabric = make_fabric () in
  Alcotest.(check bool) "no hosts detoured" true
    (List.for_all (fun h -> not (Fabric.detoured fabric h)) (List.init 50 Fun.id))

(* -- Cpu --------------------------------------------------------------------------- *)

let test_cpu_serial_service () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine in
  let finished = ref [] in
  for i = 1 to 3 do
    Cpu.submit cpu ~cost:100 (fun () -> finished := (i, Engine.now engine) :: !finished)
  done;
  Alcotest.(check int) "backlog while queued" 3 (Cpu.backlog cpu);
  Engine.run engine;
  Alcotest.(check (list (pair int int)))
    "serial completion times"
    [ (1, 100); (2, 200); (3, 300) ]
    (List.rev !finished);
  Alcotest.(check int) "completed" 3 (Cpu.completed cpu);
  Alcotest.(check int) "busy time" 300 (Cpu.busy_time cpu)

let test_cpu_idle_gap () =
  let engine = Engine.create () in
  let cpu = Cpu.create engine in
  let second_done = ref 0 in
  Cpu.submit cpu ~cost:50 (fun () -> ());
  ignore
    (Engine.schedule engine ~after:1_000 (fun () ->
         Cpu.submit cpu ~cost:50 (fun () -> second_done := Engine.now engine)));
  Engine.run engine;
  Alcotest.(check int) "idle gap not billed" 1_050 !second_done;
  Alcotest.(check (float 1e-9)) "utilization" 0.1
    (Cpu.utilization cpu ~over:1_000)

let prop_cpu_work_conserving =
  QCheck.Test.make ~name:"cpu finishes all work after sum of costs" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 20) (int_range 1 1_000))
    (fun costs ->
      let engine = Engine.create () in
      let cpu = Cpu.create engine in
      let done_count = ref 0 in
      List.iter (fun cost -> Cpu.submit cpu ~cost (fun () -> incr done_count)) costs;
      Engine.run engine;
      !done_count = List.length costs
      && Engine.now engine = List.fold_left ( + ) 0 costs)

let suite =
  [
    Alcotest.test_case "addr basics" `Quick test_addr;
    Alcotest.test_case "addr ordering" `Quick test_addr_ordering;
    Alcotest.test_case "topology even split" `Quick test_topology_even_split;
    Alcotest.test_case "topology uneven split" `Quick test_topology_uneven;
    Alcotest.test_case "topology validation" `Quick test_topology_validation;
    QCheck_alcotest.to_alcotest prop_topology_partition;
    Alcotest.test_case "fabric delivery and latency" `Quick test_fabric_delivery_latency;
    Alcotest.test_case "fabric host-to-host is two hops" `Quick
      test_fabric_host_to_host_two_hops;
    Alcotest.test_case "fabric unregistered destination" `Quick test_fabric_unregistered;
    Alcotest.test_case "fabric loss injection" `Quick test_fabric_loss;
    Alcotest.test_case "fabric rejects self-send" `Quick test_fabric_self_send_rejected;
    Alcotest.test_case "fabric jitter bounded" `Quick test_fabric_jitter_bounded;
    Alcotest.test_case "fabric multi-rack detour" `Quick test_fabric_detour;
    Alcotest.test_case "fabric no detour by default" `Quick
      test_fabric_no_detour_by_default;
    Alcotest.test_case "cpu serial service" `Quick test_cpu_serial_service;
    Alcotest.test_case "cpu idle gap" `Quick test_cpu_idle_gap;
    QCheck_alcotest.to_alcotest prop_cpu_work_conserving;
  ]
