(* End-to-end integration tests of the Draconis cluster: clients,
   switch, pull executors, metrics, fault injection. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

let small_config =
  {
    Cluster.default_config with
    workers = 2;
    executors_per_worker = 4;
    clients = 1;
    queue_capacity = 1024;
  }

let busy_task ~us n =
  Task.make ~uid:0 ~jid:0 ~tid:n ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us us) ()

let run_jobs ?(config = small_config) ~jobs ~tasks_per_job ~task_us () =
  let cluster = Cluster.create config in
  Cluster.start cluster;
  let engine = Cluster.engine cluster in
  for i = 0 to jobs - 1 do
    ignore
      (Engine.schedule engine ~after:(Time.us (50 * i)) (fun () ->
           ignore
             (Client.submit_job (Cluster.client cluster 0)
                (List.init tasks_per_job (busy_task ~us:task_us)))))
  done;
  Cluster.run cluster ~until:(Time.ms 10);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  (cluster, drained)

let test_all_tasks_complete () =
  let cluster, drained = run_jobs ~jobs:50 ~tasks_per_job:4 ~task_us:100 () in
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "submitted" 200 (Metrics.submitted m);
  Alcotest.(check int) "started" 200 (Metrics.started m);
  Alcotest.(check int) "completed" 200 (Metrics.completed m);
  Alcotest.(check int) "no unstarted" 0 (Metrics.unstarted m);
  Alcotest.(check int) "queue empty at end" 0
    (Switch_program.total_occupancy (Cluster.program cluster))

let test_executor_conservation () =
  let cluster, _ = run_jobs ~jobs:30 ~tasks_per_job:2 ~task_us:50 () in
  let executed =
    Array.fold_left
      (fun acc worker -> acc + Worker.tasks_executed worker)
      0 (Cluster.workers cluster)
  in
  Alcotest.(check int) "every task executed exactly once" 60 executed

let test_scheduling_delay_sane () =
  let cluster, _ = run_jobs ~jobs:40 ~tasks_per_job:1 ~task_us:100 () in
  let delays = Metrics.scheduling_delay (Cluster.metrics cluster) in
  let p50 = Draconis_stats.Sampler.percentile delays 50.0 in
  (* One client->switch hop (~1.5us) plus pull wait; must sit in the
     microsecond range, not milliseconds. *)
  Alcotest.(check bool) "p50 within [1us, 40us]" true (p50 >= Time.us 1 && p50 <= Time.us 40)

let test_no_duplicate_execution_under_load () =
  let cluster, drained = run_jobs ~jobs:100 ~tasks_per_job:8 ~task_us:30 () in
  Alcotest.(check bool) "drained" true drained;
  let m = Cluster.metrics cluster in
  Alcotest.(check int) "started equals submitted" (Metrics.submitted m)
    (Metrics.started m)

let test_queue_full_retry_eventually_completes () =
  (* Tiny queue: bursts bounce, the client retries, everything finishes. *)
  let config = { small_config with queue_capacity = 8 } in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  ignore
    (Client.submit_job (Cluster.client cluster 0) (List.init 40 (busy_task ~us:200)));
  Cluster.run cluster ~until:(Time.ms 5);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "drained despite bounces" true drained;
  Alcotest.(check int) "all 40 completed" 40 (Metrics.completed m);
  Alcotest.(check bool) "bounces actually happened" true
    (Client.queue_full_bounces (Cluster.client cluster 0) > 0)

let test_client_timeout_recovers_lost_packets () =
  (* Inject 2% fabric loss; client timeouts must recover every task. *)
  let config =
    {
      small_config with
      fabric_config = { Fabric.default_config with loss = 0.02 };
      client_timeout = Some (Time.ms 1);
    }
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  let engine = Cluster.engine cluster in
  for i = 0 to 99 do
    ignore
      (Engine.schedule engine ~after:(Time.us (20 * i)) (fun () ->
           ignore (Client.submit_job (Cluster.client cluster 0) [ busy_task ~us:50 i ])))
  done;
  Cluster.run cluster ~until:(Time.ms 5);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 5) in
  let m = Cluster.metrics cluster in
  Alcotest.(check bool) "drained with loss" true drained;
  Alcotest.(check int) "all completed" 100 (Metrics.completed m)

let test_priority_cluster_end_to_end () =
  let config =
    { small_config with policy_of = (fun _ -> Policy.Priority { levels = 4 }) }
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  let tasks =
    List.init 40 (fun i ->
        Task.make ~uid:0 ~jid:0 ~tid:i ~tprops:(Task.Priority ((i mod 4) + 1))
          ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 100) ())
  in
  ignore (Client.submit_job (Cluster.client cluster 0) tasks);
  Cluster.run cluster ~until:(Time.ms 2);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  Alcotest.(check bool) "drained" true drained;
  let m = Cluster.metrics cluster in
  (* With an 8-executor backlog, higher priorities must clear faster. *)
  let median level =
    let s = Metrics.queueing_delay m ~level in
    if Draconis_stats.Sampler.count s = 0 then 0
    else Draconis_stats.Sampler.percentile s 50.0
  in
  Alcotest.(check bool) "p1 <= p4 queueing" true (median 0 <= median 3)

let test_locality_cluster_prefers_local () =
  let config =
    {
      small_config with
      workers = 4;
      racks = 2;
      policy_of =
        (fun topology ->
          Policy.Locality_aware { rack_start_limit = 3; global_start_limit = 9; topology });
    }
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  let rng = Rng.create ~seed:5 in
  let engine = Cluster.engine cluster in
  for i = 0 to 199 do
    ignore
      (Engine.schedule engine ~after:(Time.us (30 * i)) (fun () ->
           let home = Rng.int rng 4 in
           ignore
             (Client.submit_job (Cluster.client cluster 0)
                [
                  Task.make ~uid:0 ~jid:0 ~tid:i ~tprops:(Task.Locality [ home ])
                    ~fn_id:Task.Fn.data_task ~fn_par:(Time.us 100) ();
                ])))
  done;
  Cluster.run cluster ~until:(Time.ms 10);
  ignore (Cluster.run_until_drained cluster ~deadline:(Time.s 2));
  let placement = Metrics.placement (Cluster.metrics cluster) in
  let locality_hits = placement.Metrics.local in
  (* Random placement would land ~25% local; the policy must beat it. *)
  Alcotest.(check bool) "locality beats random placement" true (locality_hits > 70)

let test_resource_cluster_respects_constraints () =
  let config =
    {
      small_config with
      workers = 2;
      policy_of = (fun _ -> Policy.Resource_aware { max_swaps = 8 });
      rsrc_of_node = (fun node -> if node = 0 then 1 else 3);
    }
  in
  let cluster = Cluster.create config in
  Cluster.start cluster;
  (* Track where resource-2 tasks run. *)
  let wrong_node = ref 0 in
  Array.iter
    (fun worker ->
      Worker.set_on_task_start worker (fun task ~node ->
          if Task.required_resources task land 2 <> 0 && node <> 1 then incr wrong_node))
    (Cluster.workers cluster);
  let tasks =
    List.init 30 (fun i ->
        Task.make ~uid:0 ~jid:0 ~tid:i
          ~tprops:(Task.Resources (if i mod 2 = 0 then 2 else 0))
          ~fn_id:Task.Fn.busy_loop ~fn_par:(Time.us 100) ())
  in
  ignore (Client.submit_job (Cluster.client cluster 0) tasks);
  Cluster.run cluster ~until:(Time.ms 2);
  let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 2) in
  Alcotest.(check bool) "drained" true drained;
  Alcotest.(check int) "no constraint violations" 0 !wrong_node

let test_pipeline_recirc_modest_fcfs () =
  let cluster, _ = run_jobs ~jobs:100 ~tasks_per_job:1 ~task_us:100 () in
  let frac = Draconis_p4.Pipeline.recirculation_fraction (Cluster.pipeline cluster) in
  (* Single-task jobs: only pointer-repair packets recirculate.  At low
     load the queue empties between jobs, so idle-poll overruns make a
     repair follow most submissions; the fraction must still stay far
     below R2P2's search storms (tens of percent). *)
  Alcotest.(check bool) "recirculation below 15%" true (frac < 0.15)

(* Random mini-scenarios: for any cluster shape, job mix, and policy,
   every submitted task is executed exactly once and completes. *)
let prop_conservation =
  QCheck.Test.make ~name:"conservation under random scenarios" ~count:15
    QCheck.(
      quad (int_range 1 4) (int_range 1 4)
        (list_of_size (Gen.int_range 1 25) (int_range 1 12))
        (int_range 0 2))
    (fun (workers, epw, job_sizes, policy_pick) ->
      let policy_of topology =
        match policy_pick with
        | 0 -> Policy.Fcfs
        | 1 -> Policy.Priority { levels = 4 }
        | _ ->
          Policy.Locality_aware
            { rack_start_limit = 2; global_start_limit = 5; topology }
      in
      let config =
        { small_config with workers; executors_per_worker = epw; policy_of }
      in
      let cluster = Cluster.create config in
      Cluster.start cluster;
      let engine = Cluster.engine cluster in
      let rng = Rng.create ~seed:(workers + (17 * epw) + (291 * policy_pick)) in
      List.iteri
        (fun i size ->
          ignore
            (Engine.schedule engine ~after:(Time.us (40 * i)) (fun () ->
                 let tasks =
                   List.init size (fun tid ->
                       let tprops =
                         match policy_pick with
                         | 1 -> Task.Priority (1 + Rng.int rng 4)
                         | 2 -> Task.Locality [ Rng.int rng workers ]
                         | _ -> Task.No_props
                       in
                       Task.make ~uid:0 ~jid:0 ~tid ~tprops ~fn_id:Task.Fn.busy_loop
                         ~fn_par:(Time.us (20 + Rng.int rng 200)) ())
                 in
                 ignore (Client.submit_job (Cluster.client cluster 0) tasks))))
        job_sizes;
      Cluster.run cluster ~until:(Time.ms 5);
      let drained = Cluster.run_until_drained cluster ~deadline:(Time.s 3) in
      let m = Cluster.metrics cluster in
      let executed =
        Array.fold_left
          (fun acc w -> acc + Worker.tasks_executed w)
          0 (Cluster.workers cluster)
      in
      let total = List.fold_left ( + ) 0 job_sizes in
      drained && Metrics.submitted m = total && Metrics.completed m = total
      && executed = total)

let suite =
  [
    Alcotest.test_case "all tasks complete" `Quick test_all_tasks_complete;
    Alcotest.test_case "conservation across executors" `Quick test_executor_conservation;
    Alcotest.test_case "scheduling delay sane" `Quick test_scheduling_delay_sane;
    Alcotest.test_case "no duplicates under load" `Quick
      test_no_duplicate_execution_under_load;
    Alcotest.test_case "queue-full retry completes" `Quick
      test_queue_full_retry_eventually_completes;
    Alcotest.test_case "client timeout recovers packet loss" `Quick
      test_client_timeout_recovers_lost_packets;
    Alcotest.test_case "priority end-to-end" `Quick test_priority_cluster_end_to_end;
    Alcotest.test_case "locality end-to-end" `Quick test_locality_cluster_prefers_local;
    Alcotest.test_case "resource constraints end-to-end" `Quick
      test_resource_cluster_respects_constraints;
    Alcotest.test_case "FCFS recirculation modest" `Quick test_pipeline_recirc_modest_fcfs;
    QCheck_alcotest.to_alcotest prop_conservation;
  ]
