(* Tests for the wire protocol: task metadata and the binary codec,
   including round-trip property tests over all message shapes. *)

open Draconis_net
open Draconis_proto

(* -- Task -------------------------------------------------------------------- *)

let test_task_accessors () =
  let t =
    Task.make ~uid:1 ~jid:2 ~tid:3 ~tprops:(Task.Priority 2) ~fn_id:Task.Fn.busy_loop
      ~fn_par:100 ()
  in
  Alcotest.(check int) "priority" 2 (Task.priority_level t);
  Alcotest.(check int) "default resources" 0 (Task.required_resources t);
  Alcotest.(check (list int)) "default locality" [] (Task.locality_nodes t);
  let r = Task.make ~uid:1 ~jid:2 ~tid:4 ~tprops:(Task.Resources 5) ~fn_id:0 ~fn_par:0 () in
  Alcotest.(check int) "resources" 5 (Task.required_resources r);
  Alcotest.(check int) "priority defaults to 1" 1 (Task.priority_level r);
  let l =
    Task.make ~uid:1 ~jid:2 ~tid:5 ~tprops:(Task.Locality [ 7; 8 ]) ~fn_id:0 ~fn_par:0 ()
  in
  Alcotest.(check (list int)) "locality" [ 7; 8 ] (Task.locality_nodes l)

let test_task_id_compare () =
  let id a b c : Task.id = { uid = a; jid = b; tid = c } in
  Alcotest.(check bool) "equal" true (Task.equal_id (id 1 2 3) (id 1 2 3));
  Alcotest.(check bool) "tid differs" false (Task.equal_id (id 1 2 3) (id 1 2 4));
  Alcotest.(check bool) "ordering" true (Task.compare_id (id 1 2 3) (id 1 2 4) < 0)

(* -- generators ---------------------------------------------------------------- *)

let tprops_gen =
  QCheck.Gen.(
    oneof
      [
        return Task.No_props;
        map (fun r -> Task.Resources r) (int_range 0 0xFFFFFFFF);
        map (fun nodes -> Task.Locality nodes) (list_size (int_range 0 4) (int_range 0 0xFFFF));
        map (fun p -> Task.Priority p) (int_range 1 255);
      ])

let task_gen =
  QCheck.Gen.(
    map
      (fun (uid, jid, tid, fn_id, fn_par, tprops) ->
        Task.make ~uid ~jid ~tid ~tprops ~fn_id ~fn_par ())
      (tup6 (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF)
         (int_range 0 0xFFFF)
         (int_range 0 (1 lsl 48))
         tprops_gen))

let addr_gen =
  QCheck.Gen.(
    oneof [ return Addr.Switch; map (fun h -> Addr.Host h) (int_range 0 0xFFFE) ])

let info_gen =
  QCheck.Gen.(
    map
      (fun (node, port, rsrc) ->
        {
          Message.exec_addr = Addr.Host node;
          exec_port = port;
          exec_rsrc = rsrc;
          exec_node = node;
        })
      (tup3 (int_range 0 0xFFFE) (int_range 0 0xFFFF) (int_range 0 0xFFFFFFFF)))

let message_gen =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (client, uid, jid, tasks) -> Message.Job_submission { client; uid; jid; tasks })
          (tup4 addr_gen (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF)
             (list_size (int_range 0 10) task_gen));
        map (fun (uid, jid) -> Message.Job_ack { uid; jid })
          (tup2 (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF));
        map
          (fun (uid, jid, tasks) -> Message.Queue_full { uid; jid; tasks })
          (tup3 (int_range 0 0xFFFFFFFF) (int_range 0 0xFFFFFFFF)
             (list_size (int_range 0 10) task_gen));
        map
          (fun (info, rtrv_prio) -> Message.Task_request { info; rtrv_prio })
          (tup2 info_gen (int_range 1 12));
        map
          (fun (task, client, port) -> Message.Task_assignment { task; client; port })
          (tup3 task_gen addr_gen (int_range 0 0xFFFF));
        map (fun port -> Message.Noop_assignment { port }) (int_range 0 0xFFFF);
        map
          (fun (task, client, info, rtrv_prio) ->
            Message.Task_completion { task_id = task.Task.id; client; info; rtrv_prio })
          (tup4 task_gen addr_gen info_gen (int_range 1 12));
      ])

let message_equal (a : Message.t) (b : Message.t) =
  (* Structural equality is fine: messages are pure data. *)
  a = b

(* -- codec tests ----------------------------------------------------------------- *)

let roundtrip msg =
  match Codec.decode (Codec.encode msg) with
  | Ok decoded -> message_equal msg decoded
  | Error _ -> false

let test_codec_simple_roundtrips () =
  let task = Task.make ~uid:1 ~jid:2 ~tid:3 ~fn_id:1 ~fn_par:500_000 () in
  let info =
    { Message.exec_addr = Addr.Host 4; exec_port = 7; exec_rsrc = 3; exec_node = 4 }
  in
  List.iter
    (fun msg -> Alcotest.(check bool) "roundtrip" true (roundtrip msg))
    [
      Message.Job_submission { client = Addr.Host 11; uid = 1; jid = 2; tasks = [ task ] };
      Message.Job_ack { uid = 1; jid = 2 };
      Message.Queue_full { uid = 1; jid = 2; tasks = [ task; task ] };
      Message.Task_request { info; rtrv_prio = 1 };
      Message.Task_assignment { task; client = Addr.Host 11; port = 7 };
      Message.Noop_assignment { port = 9 };
      Message.Task_completion
        { task_id = task.Task.id; client = Addr.Host 11; info; rtrv_prio = 1 };
    ]

let test_codec_sizes () =
  let task = Task.make ~uid:1 ~jid:2 ~tid:3 ~fn_id:1 ~fn_par:1 () in
  let msg =
    Message.Job_submission { client = Addr.Host 1; uid = 1; jid = 1; tasks = [ task; task ] }
  in
  Alcotest.(check int) "encoded_size matches" (Bytes.length (Codec.encode msg))
    (Codec.encoded_size msg);
  Alcotest.(check int) "task_info is 32 bytes" 32 Codec.task_info_size;
  Alcotest.(check bool) "max tasks fits MTU" true
    (13 + (Codec.max_tasks_per_packet * Codec.task_info_size) <= Codec.mtu_payload)

let test_codec_mtu_guard () =
  let tasks =
    List.init (Codec.max_tasks_per_packet + 1) (fun tid ->
        Task.make ~uid:0 ~jid:0 ~tid ~fn_id:0 ~fn_par:0 ())
  in
  match Codec.encode (Message.Job_submission { client = Addr.Host 0; uid = 0; jid = 0; tasks }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "over-MTU submission must be rejected"

let test_codec_locality_limit () =
  let task =
    Task.make ~uid:0 ~jid:0 ~tid:0 ~tprops:(Task.Locality [ 1; 2; 3; 4; 5 ]) ~fn_id:0
      ~fn_par:0 ()
  in
  match Codec.encode (Message.Task_assignment { task; client = Addr.Host 0; port = 0 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "5 locality nodes must be rejected"

let test_codec_decode_errors () =
  (match Codec.decode (Bytes.create 0) with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "empty buffer");
  (match Codec.decode (Bytes.make 1 '\xee') with
  | Error (Codec.Bad_opcode 0xee) -> ()
  | _ -> Alcotest.fail "bad opcode");
  (* opcode 2 (job_ack) but only 3 bytes *)
  (match Codec.decode (Bytes.make 3 '\x02') with
  | Error Codec.Truncated -> ()
  | _ -> Alcotest.fail "truncated body");
  Alcotest.(check string) "error printer" "bad opcode 9"
    (Format.asprintf "%a" Codec.pp_error (Codec.Bad_opcode 9))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips every message" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Message.pp) message_gen)
    roundtrip

let prop_codec_never_crashes_on_noise =
  QCheck.Test.make ~name:"decode never raises on random bytes" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 64))
    (fun s ->
      match Codec.decode (Bytes.of_string s) with Ok _ | Error _ -> true)

(* -- Entry packing ----------------------------------------------------------------- *)

let entry_gen =
  QCheck.Gen.(
    map
      (fun (task, host, skip) ->
        Draconis.Entry.make ~skip ~task ~client:(Addr.Host host) ())
      (tup3 task_gen (int_range 0 0xFFFE) (int_range 0 1_000)))

let prop_entry_roundtrip =
  QCheck.Test.make ~name:"entry packs and unpacks through register words" ~count:500
    (QCheck.make ~print:(Format.asprintf "%a" Draconis.Entry.pp) entry_gen)
    (fun entry ->
      let words = Draconis.Entry.to_words entry in
      Array.length words = Draconis.Entry.word_count
      && Draconis.Entry.equal entry (Draconis.Entry.of_words words))

let test_entry_word_bounds () =
  let task = Task.make ~uid:(1 lsl 40) ~jid:0 ~tid:0 ~fn_id:0 ~fn_par:0 () in
  let entry = Draconis.Entry.make ~task ~client:(Addr.Host 0) () in
  match Draconis.Entry.to_words entry with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "uid beyond 32 bits must be rejected"

let suite =
  [
    Alcotest.test_case "task accessors" `Quick test_task_accessors;
    Alcotest.test_case "task id comparison" `Quick test_task_id_compare;
    Alcotest.test_case "codec simple roundtrips" `Quick test_codec_simple_roundtrips;
    Alcotest.test_case "codec sizes" `Quick test_codec_sizes;
    Alcotest.test_case "codec MTU guard" `Quick test_codec_mtu_guard;
    Alcotest.test_case "codec locality limit" `Quick test_codec_locality_limit;
    Alcotest.test_case "codec decode errors" `Quick test_codec_decode_errors;
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_never_crashes_on_noise;
    QCheck_alcotest.to_alcotest prop_entry_roundtrip;
    Alcotest.test_case "entry rejects out-of-width fields" `Quick test_entry_word_bounds;
  ]
