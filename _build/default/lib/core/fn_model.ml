open Draconis_sim
open Draconis_net
open Draconis_proto

type t = {
  topology : Topology.t option;
  intra_rack_access : Time.t;
  inter_rack_access : Time.t;
}

let default =
  { topology = None; intra_rack_access = Time.us 20; inter_rack_access = Time.us 100 }

let with_topology topology = { default with topology = Some topology }

let access_penalty t (task : Task.t) ~node =
  let locals = Task.locality_nodes task in
  if locals = [] || List.mem node locals then 0
  else begin
    match t.topology with
    | Some topo when List.exists (fun local -> Topology.same_rack topo node local) locals
      -> t.intra_rack_access
    | Some _ | None -> t.inter_rack_access
  end

let service_time t (task : Task.t) ~node =
  if task.fn_id = Task.Fn.noop then 0
  else if task.fn_id = Task.Fn.data_task then access_penalty t task ~node + task.fn_par
  else task.fn_par
