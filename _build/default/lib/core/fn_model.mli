(** Execution model of the pre-compiled task functions.

    Every scheduler under evaluation runs the same functions, so this
    model is shared with the baselines: a no-op completes immediately, a
    busy-loop spins for [fn_par] nanoseconds, and a data task busy-loops
    after fetching its input — free if a data-local node runs it, 20 us
    from the same rack, 100 us across racks (paper §8.5's storage access
    times). *)

open Draconis_sim
open Draconis_net
open Draconis_proto

type t = {
  topology : Topology.t option;  (** for rack classification *)
  intra_rack_access : Time.t;
  inter_rack_access : Time.t;
}

(** 20 us intra-rack, 100 us inter-rack, no topology (every non-local
    access counts as inter-rack until a topology is supplied). *)
val default : t

val with_topology : Topology.t -> t

(** [service_time t task ~node] is how long the task occupies an
    executor on worker [node].  Unknown function ids behave like
    busy-loops (forward compatibility for user-registered functions). *)
val service_time : t -> Task.t -> node:int -> Time.t
