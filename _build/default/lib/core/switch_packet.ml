open Draconis_sim
open Draconis_proto

type t =
  | Wire of Message.t
  | Repair_add of { level : int; target : int }
  | Repair_retrieve of { level : int; target : int }
  | Swap of {
      level : int;
      entry : Entry.t;
      swap_indx : int;
      info : Message.executor_info;
      pkt_retrieve_ptr : int;
      attempts : int;
      requested_at : Time.t;
    }
  | Resubmit of { level : int; entry : Entry.t }
  | Prio_request of {
      info : Message.executor_info;
      rtrv_prio : int;
      requested_at : Time.t;
    }

let pp fmt = function
  | Wire msg -> Format.fprintf fmt "wire(%a)" Message.pp msg
  | Repair_add { level; target } ->
    Format.fprintf fmt "repair_add(level=%d target=%d)" level target
  | Repair_retrieve { level; target } ->
    Format.fprintf fmt "repair_retrieve(level=%d target=%d)" level target
  | Swap { level; entry; swap_indx; attempts; _ } ->
    Format.fprintf fmt "swap(level=%d %a indx=%d attempts=%d)" level Entry.pp entry
      swap_indx attempts
  | Resubmit { level; entry } ->
    Format.fprintf fmt "resubmit(level=%d %a)" level Entry.pp entry
  | Prio_request { rtrv_prio; requested_at; _ } ->
    Format.fprintf fmt "prio_request(prio=%d at=%a)" rtrv_prio Time.pp requested_at
