open Draconis_sim
open Draconis_proto

type t = {
  on_enqueue : Task.id -> level:int -> unit;
  on_dequeue : Task.id -> level:int -> unit;
  on_assign : Task.id -> node:int -> requested_at:Time.t -> unit;
  on_reject : int -> unit;
  on_noop : unit -> unit;
}

let default =
  {
    on_enqueue = (fun _ ~level:_ -> ());
    on_dequeue = (fun _ ~level:_ -> ());
    on_assign = (fun _ ~node:_ ~requested_at:_ -> ());
    on_reject = (fun _ -> ());
    on_noop = (fun () -> ());
  }
