lib/core/client.ml: Addr Array Codec Draconis_net Draconis_proto Draconis_sim Engine Fabric Hashtbl List Message Metrics Option Task Time
