lib/core/instrument.ml: Draconis_proto Draconis_sim Task Time
