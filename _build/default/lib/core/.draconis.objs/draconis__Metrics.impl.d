lib/core/metrics.ml: Draconis_net Draconis_proto Draconis_sim Draconis_stats Engine Hashtbl Instrument List Meter Sampler Task Time Topology
