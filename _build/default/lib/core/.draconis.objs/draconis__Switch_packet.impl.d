lib/core/switch_packet.ml: Draconis_proto Draconis_sim Entry Format Message Time
