lib/core/metrics.mli: Draconis_net Draconis_proto Draconis_sim Draconis_stats Engine Instrument Meter Sampler Task Time Topology
