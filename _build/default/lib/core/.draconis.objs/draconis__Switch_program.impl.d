lib/core/switch_program.ml: Array Circular_queue Draconis_p4 Draconis_proto Draconis_sim Engine Entry Instrument List Message Pipeline Policy Printf Switch_packet Trace
