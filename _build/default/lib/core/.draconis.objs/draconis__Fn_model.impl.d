lib/core/fn_model.ml: Draconis_net Draconis_proto Draconis_sim List Task Time Topology
