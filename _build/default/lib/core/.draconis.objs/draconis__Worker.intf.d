lib/core/worker.mli: Draconis_net Draconis_proto Draconis_sim Executor Fabric Message Task Time
