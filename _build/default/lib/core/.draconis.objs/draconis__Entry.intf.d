lib/core/entry.mli: Addr Draconis_net Draconis_proto Format Task
