lib/core/instrument.mli: Draconis_proto Draconis_sim Task Time
