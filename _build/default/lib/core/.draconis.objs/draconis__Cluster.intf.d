lib/core/cluster.mli: Client Draconis_net Draconis_p4 Draconis_proto Draconis_sim Engine Fabric Metrics Pipeline Policy Switch_packet Switch_program Time Topology Worker
