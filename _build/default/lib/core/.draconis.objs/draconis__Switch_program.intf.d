lib/core/switch_program.mli: Circular_queue Draconis_p4 Draconis_proto Draconis_sim Engine Instrument Policy Switch_packet
