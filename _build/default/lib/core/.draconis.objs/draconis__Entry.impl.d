lib/core/entry.ml: Addr Array Draconis_net Draconis_proto Format List Task
