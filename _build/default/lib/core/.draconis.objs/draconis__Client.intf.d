lib/core/client.mli: Addr Draconis_net Draconis_proto Draconis_sim Fabric Message Metrics Task Time
