lib/core/policy.ml: Draconis_net Draconis_proto Entry Format List Message Task Topology
