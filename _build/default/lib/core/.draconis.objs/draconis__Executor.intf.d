lib/core/executor.mli: Addr Draconis_net Draconis_proto Draconis_sim Fabric Fn_model Message Task Time
