lib/core/executor.ml: Addr Draconis_net Draconis_proto Draconis_sim Engine Fabric Fn_model Message Task Time
