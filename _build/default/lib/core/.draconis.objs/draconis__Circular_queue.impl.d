lib/core/circular_queue.ml: Array Draconis_p4 Entry Printf Register
