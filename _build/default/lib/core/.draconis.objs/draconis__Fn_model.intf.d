lib/core/fn_model.mli: Draconis_net Draconis_proto Draconis_sim Task Time Topology
