lib/core/worker.ml: Addr Array Draconis_net Draconis_proto Executor Fabric Message
