lib/core/switch_packet.mli: Draconis_proto Draconis_sim Entry Format Message Time
