lib/core/circular_queue.mli: Draconis_p4 Entry Packet_ctx Register
