lib/core/policy.mli: Draconis_net Draconis_proto Entry Format Message Task Topology
