(** Measurement hooks into the switch program.

    The experiment harness observes scheduler-internal events (enqueue,
    dequeue, assignment, rejection) through these callbacks; a real
    deployment would gather the same numbers from switch counters.
    All hooks default to no-ops. *)

open Draconis_sim
open Draconis_proto

type t = {
  on_enqueue : Task.id -> level:int -> unit;
      (** task stored in the switch queue at [level] *)
  on_dequeue : Task.id -> level:int -> unit;
      (** task left the switch queue (popped or swap-assigned) *)
  on_assign : Task.id -> node:int -> requested_at:Time.t -> unit;
      (** task_assignment emitted to an executor on [node];
          [requested_at] is when the winning task_request reached the
          switch (get_task() latency, Fig. 13) *)
  on_reject : int -> unit;  (** tasks bounced by a full queue *)
  on_noop : unit -> unit;  (** no-op assignment sent *)
}

val default : t
