(** Circular-queue entries and their register-word packing.

    Each queued task occupies one slot spread across parallel 32-bit
    register arrays (one array per word, paper §4.2).  This module
    defines the logical entry — the task, the submitting client, and
    the locality skip counter (§5.3) — and its exact packing into
    {!word_count} words, so the queue's register layout matches what a
    real P4 deployment would allocate. *)

open Draconis_net
open Draconis_proto

type t = {
  task : Task.t;
  client : Addr.t;  (** submitting client, stored for the reply path *)
  skip : int;  (** locality skip counter (§5.3) *)
}

val make : ?skip:int -> task:Task.t -> client:Addr.t -> unit -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Number of 32-bit words an entry occupies: UID, JID, TID, FN_ID,
    FN_PAR lo/hi, TPROPS tag, TPROPS lo/hi, client, skip. *)
val word_count : int

(** [to_words t] packs the entry; the result has length [word_count].
    @raise Invalid_argument if a field exceeds its wire width (e.g.
    more than 4 locality nodes). *)
val to_words : t -> int array

(** [of_words w] unpacks; inverse of [to_words].
    @raise Invalid_argument on a malformed image. *)
val of_words : int array -> t
