(** Scheduling policies supported by the Draconis switch program.

    - {b FCFS} (§4.8): the plain centralized single-queue policy —
      optimal for light-tailed microsecond workloads.
    - {b Resource-aware} (§5.2): tasks carry a required-resource bitmap
      and only run on executors advertising those resources; realized
      with task swapping.
    - {b Locality-aware} (§5.3): tasks prefer their data-local nodes,
      then the local rack, then anywhere, driven by a per-task skip
      counter with [rack_start_limit] / [global_start_limit] thresholds.
    - {b Priority} (§6.1): one replicated queue per priority level;
      task requests scan levels from highest (1) to lowest. *)

open Draconis_net
open Draconis_proto

type t =
  | Fcfs
  | Resource_aware of { max_swaps : int }
  | Locality_aware of {
      rack_start_limit : int;
      global_start_limit : int;
      topology : Topology.t;
    }
  | Priority of { levels : int }

val pp : Format.formatter -> t -> unit

(** Number of switch queues the policy deploys (1 except [Priority]). *)
val queue_count : t -> int

(** [queue_of_task p task] is the queue a submitted task belongs to, in
    [\[0, queue_count p)].  Priorities outside [\[1, levels\]] are
    clamped to the lowest level. *)
val queue_of_task : t -> Task.t -> int

(** [satisfies p ~entry ~info] decides whether the policy allows
    scheduling [entry] on the requesting executor right now.  For
    locality this consults the entry's (already bumped) skip counter. *)
val satisfies : t -> entry:Entry.t -> info:Message.executor_info -> bool

(** [swap_bound p ~queue_occupancy] is how many times one task request
    may swap before giving up and re-inserting (§5.1: "a bounded number
    of times ... or until it reaches the end of the queue"). *)
val swap_bound : t -> queue_occupancy:int -> int

(** [uses_swapping p] is true for the constraint-based policies. *)
val uses_swapping : t -> bool
