open Draconis_net
open Draconis_proto

type t =
  | Fcfs
  | Resource_aware of { max_swaps : int }
  | Locality_aware of {
      rack_start_limit : int;
      global_start_limit : int;
      topology : Topology.t;
    }
  | Priority of { levels : int }

let pp fmt = function
  | Fcfs -> Format.pp_print_string fmt "fcfs"
  | Resource_aware { max_swaps } -> Format.fprintf fmt "resource-aware(max_swaps=%d)" max_swaps
  | Locality_aware { rack_start_limit; global_start_limit; _ } ->
    Format.fprintf fmt "locality-aware(rack=%d,global=%d)" rack_start_limit
      global_start_limit
  | Priority { levels } -> Format.fprintf fmt "priority(levels=%d)" levels

let queue_count = function
  | Fcfs | Resource_aware _ | Locality_aware _ -> 1
  | Priority { levels } -> levels

let queue_of_task t (task : Task.t) =
  match t with
  | Fcfs | Resource_aware _ | Locality_aware _ -> 0
  | Priority { levels } ->
    let p = Task.priority_level task in
    if p < 1 || p > levels then levels - 1 else p - 1

let satisfies t ~entry ~info =
  let task = entry.Entry.task in
  match t with
  | Fcfs | Priority _ -> true
  | Resource_aware _ ->
    let required = Task.required_resources task in
    required land info.Message.exec_rsrc = required
  | Locality_aware { rack_start_limit; global_start_limit; topology } ->
    let locals = Task.locality_nodes task in
    let node = info.Message.exec_node in
    if locals = [] || List.mem node locals then true
    else if entry.Entry.skip > global_start_limit then true
    else if entry.Entry.skip > rack_start_limit then
      List.exists (fun local -> Topology.same_rack topology node local) locals
    else false

let swap_bound t ~queue_occupancy =
  match t with
  | Fcfs | Priority _ -> 0
  | Resource_aware { max_swaps } -> min max_swaps queue_occupancy
  | Locality_aware { global_start_limit; _ } ->
    (* §5.3: recirculation per request is bounded by the global limit. *)
    min (global_start_limit + 1) queue_occupancy

let uses_swapping = function
  | Fcfs | Priority _ -> false
  | Resource_aware _ | Locality_aware _ -> true
