open Draconis_p4

type t = {
  name : string;
  capacity : int;
  wrap : int;  (* pointer modulus: largest multiple of capacity <= 2^32 *)
  add_ptr : Register.t;
  retrieve_ptr : Register.t;
  add_repair_flag : Register.t;
  retrieve_repair_flag : Register.t;
  words : Register.t array;  (* one array per entry word *)
  stamps : Register.t;  (* write-index of the occupying task *)
}

(* The stamp value marking a free slot.  On hardware this is a separate
   valid bit; here we use the (unreachable) wrap modulus itself. *)
let free_stamp t = t.wrap

let max_capacity = 1 lsl 28

let create ~name ~capacity () =
  if capacity < 1 then invalid_arg "Circular_queue.create: capacity must be >= 1";
  if capacity > max_capacity then
    invalid_arg "Circular_queue.create: capacity too large for 32-bit pointers";
  let wrap = (1 lsl 32) / capacity * capacity in
  let reg suffix size = Register.create ~name:(name ^ "." ^ suffix) ~size () in
  let stamps = reg "stamp" capacity in
  let t =
    {
      name;
      capacity;
      wrap;
      add_ptr = reg "add_ptr" 1;
      retrieve_ptr = reg "retrieve_ptr" 1;
      add_repair_flag = reg "add_repair_flag" 1;
      retrieve_repair_flag = reg "retrieve_repair_flag" 1;
      words = Array.init Entry.word_count (fun i -> reg (Printf.sprintf "word%d" i) capacity);
      stamps;
    }
  in
  (* Stamps are initialised to the free sentinel from the control plane,
     as the switch CPU would do before enabling the pipeline. *)
  for i = 0 to capacity - 1 do
    Register.poke stamps i (free_stamp t)
  done;
  t

let capacity t = t.capacity
let name t = t.name
let wrap_modulus t = t.wrap

(* -- wrap-aware pointer arithmetic ---------------------------------------- *)

let next_index t p = if p + 1 >= t.wrap then 0 else p + 1
let distance t ~ahead ~behind = (ahead - behind + t.wrap) mod t.wrap

(* Pointers never legitimately drift more than a few capacities apart, so
   any distance beyond half the wrap range means "actually behind". *)
let is_ahead t a b =
  let d = distance t ~ahead:a ~behind:b in
  d > 0 && d <= t.wrap / 2

type enqueue_outcome =
  | Enqueued of { index : int; retrieve_repair : int option }
  | Rejected of { add_repair : int option }

let read_and_advance t reg ctx =
  Register.read_modify_write reg ctx 0 (fun v -> next_index t v)

let enqueue t ctx entry =
  (* (1) pointer stage: optimistic read-and-increment (§4.2). *)
  let a = read_and_advance t t.add_ptr ctx in
  let r = Register.read t.retrieve_ptr ctx 0 in
  let occupancy = distance t ~ahead:a ~behind:r in
  (* [occupancy] beyond half the range means the retrieve pointer has
     overrun (queue empty + polled); that is never "full". *)
  let full = occupancy >= t.capacity && occupancy <= t.wrap / 2 in
  (* (3) flag stage: one RMW per flag.  The add flag is set by the first
     full-detecting packet; while it is set, later submissions treat the
     queue as full because add_ptr is inflated and their index would be
     unreliable (§4.7.1). *)
  let old_add_flag =
    Register.read_modify_write t.add_repair_flag ctx 0 (fun f ->
        if full && f = 0 then 1 else f)
  in
  if full || old_add_flag = 1 then begin
    (* Touch the retrieve flag too so the access pattern is uniform for
       every job_submission packet (P4 programs have a static layout). *)
    ignore (Register.read t.retrieve_repair_flag ctx 0);
    Rejected { add_repair = (if full && old_add_flag = 0 then Some a else None) }
  end
  else begin
    (* Lazy retrieve-pointer repair: r overran past the slot we are
       filling, so point it back at the newly added task (§4.5). *)
    let overrun = is_ahead t r a in
    let old_retrieve_flag =
      Register.read_modify_write t.retrieve_repair_flag ctx 0 (fun f ->
          if overrun && f = 0 then 1 else f)
    in
    (* (5) egress queue access: write the entry words and stamp. *)
    let slot = a mod t.capacity in
    let image = Entry.to_words entry in
    Array.iteri (fun i word -> Register.write t.words.(i) ctx slot word) image;
    Register.write t.stamps ctx slot a;
    Enqueued
      {
        index = a;
        retrieve_repair = (if overrun && old_retrieve_flag = 0 then Some a else None);
      }
  end

type dequeue_outcome =
  | Dequeued of { index : int; entry : Entry.t }
  | Empty
  | Repair_pending

let dequeue t ctx =
  (* (1) pointer stage. *)
  let r = read_and_advance t t.retrieve_ptr ctx in
  (* (3) flag stage: a pending retrieve repair means r is unreliable;
     answer with a no-op and let the repair land (§4.7.2). *)
  let flag = Register.read t.retrieve_repair_flag ctx 0 in
  if flag = 1 then Repair_pending
  else begin
    (* (5) egress: the stamp check is the task-validity test of §4.5 —
       it fails when the queue is empty (the optimistic increment was a
       mistake, to be lazily repaired) and in pointer-repair windows. *)
    let slot = r mod t.capacity in
    let stamp = Register.read_modify_write t.stamps ctx slot (fun _ -> free_stamp t) in
    if stamp <> r then Empty
    else begin
      let image =
        Array.init Entry.word_count (fun i -> Register.read t.words.(i) ctx slot)
      in
      Dequeued { index = r; entry = Entry.of_words image }
    end
  end

let apply_repair_add t ctx ~target =
  Register.write t.add_ptr ctx 0 (target mod t.wrap);
  Register.write t.add_repair_flag ctx 0 0

let apply_repair_retrieve t ctx ~target =
  Register.write t.retrieve_ptr ctx 0 (target mod t.wrap);
  Register.write t.retrieve_repair_flag ctx 0 0

let read_pointers t ctx =
  let a = Register.read t.add_ptr ctx 0 in
  let r = Register.read t.retrieve_ptr ctx 0 in
  (a, r)

type swap_outcome = Swapped of Entry.t | Slot_invalid

let swap t ctx ~index entry =
  let index = index mod t.wrap in
  let slot = index mod t.capacity in
  (* The stamp RMW both validates the slot and claims it for the
     incoming task in a single access. *)
  let old_stamp = Register.read_modify_write t.stamps ctx slot (fun _ -> index) in
  if old_stamp <> index then begin
    (* Not a pending task: restore the stamp we clobbered.  On hardware
       the stamp RMW would be conditional on the predicate computed in
       an earlier stage; the model performs the restore through the
       control plane to keep the data-path access single. *)
    Register.poke t.stamps slot old_stamp;
    Slot_invalid
  end
  else begin
    let image = Entry.to_words entry in
    let old_image =
      Array.mapi
        (fun i word -> Register.read_modify_write t.words.(i) ctx slot (fun _ -> word))
        image
    in
    Swapped (Entry.of_words old_image)
  end

let occupancy t =
  let d =
    distance t ~ahead:(Register.peek t.add_ptr 0) ~behind:(Register.peek t.retrieve_ptr 0)
  in
  if d > t.wrap / 2 then 0 else d

let peek_add_ptr t = Register.peek t.add_ptr 0
let peek_retrieve_ptr t = Register.peek t.retrieve_ptr 0
let peek_add_repair_flag t = Register.peek t.add_repair_flag 0 = 1
let peek_retrieve_repair_flag t = Register.peek t.retrieve_repair_flag 0 = 1

let peek_entry t ~index =
  let index = index mod t.wrap in
  let slot = index mod t.capacity in
  if Register.peek t.stamps slot <> index then None
  else begin
    let image = Array.init Entry.word_count (fun i -> Register.peek t.words.(i) slot) in
    Some (Entry.of_words image)
  end

let register_bits t =
  Register.bits t.add_ptr + Register.bits t.retrieve_ptr
  + Register.bits t.add_repair_flag
  + Register.bits t.retrieve_repair_flag
  + Register.bits t.stamps
  + Array.fold_left (fun acc reg -> acc + Register.bits reg) 0 t.words

let registers t =
  t.add_ptr :: t.retrieve_ptr :: t.add_repair_flag :: t.retrieve_repair_flag
  :: t.stamps :: Array.to_list t.words

let unsafe_set_pointers_for_test t ~add ~retrieve =
  Register.poke t.add_ptr 0 (((add mod t.wrap) + t.wrap) mod t.wrap);
  Register.poke t.retrieve_ptr 0 (((retrieve mod t.wrap) + t.wrap) mod t.wrap)
