(** Push-model executor with a local task queue.

    The building block of the R2P2 and RackSched baselines (paper §2.2):
    the scheduler {e pushes} tasks to the executor, which queues and
    runs them FCFS.  A queued task waits even if executors elsewhere are
    free — the node-level blocking Draconis eliminates.

    The executor does not talk to the fabric itself; the owning worker
    delivers tasks and is told about completions through a callback
    (R2P2 and RackSched route replies differently). *)

open Draconis_sim
open Draconis_net
open Draconis_proto

type t

(** [create ~engine ~node ~port ~fn_model ~on_complete ()] —
    [on_complete task ~client] fires when a task finishes service. *)
val create :
  engine:Engine.t ->
  node:int ->
  port:int ->
  fn_model:Draconis.Fn_model.t ->
  on_complete:(Task.t -> client:Addr.t -> unit) ->
  unit ->
  t

(** [push t task ~client] queues the task (or starts it if idle). *)
val push : t -> Task.t -> client:Addr.t -> unit

(** [set_on_task_start t f] installs the measurement hook. *)
val set_on_task_start : t -> (Task.t -> node:int -> unit) -> unit

(** [try_steal t] removes and returns the most recently queued task
    that has not started running (work-stealing extension); [None] if
    nothing is waiting. *)
val try_steal : t -> (Task.t * Addr.t) option

(** Queued tasks, including the one in service. *)
val occupancy : t -> int

val busy : t -> bool
val node : t -> int
val port : t -> int
val tasks_executed : t -> int
