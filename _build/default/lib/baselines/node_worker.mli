(** RackSched-style worker node: a node-level task queue feeding
    multiple executors through an intra-node scheduler (paper §2.2).

    The inter-node scheduler (the switch) addresses whole nodes; the
    intra-node component dispatches arriving tasks to executors and
    adds [dispatch_overhead] to every task — the 3–4 us the paper
    measures even at low load.  Two intra-node policies are provided,
    mirroring RackSched's recommendations:

    - {!Fcfs}: centralized FCFS without preemption (light-tailed
      workloads).  A queued task waits for a whole executor — short
      tasks can be stuck behind long ones (head-of-line blocking).
    - {!Processor_sharing}: preemptive round-robin time slicing
      (heavy-tailed workloads), as RackSched runs via Shinjuku.  Every
      preemption costs [overhead]. *)

open Draconis_sim
open Draconis_net
open Draconis_proto

type intra_policy =
  | Fcfs
  | Processor_sharing of { quantum : Time.t; overhead : Time.t }

type t

(** [dispatch_jitter] adds a uniform [0, jitter] extra delay per
    dispatch (default 0), reflecting the intra-node scheduler's
    variable per-task cost.  [intra] defaults to {!Fcfs}. *)
val create :
  engine:Engine.t ->
  node:int ->
  executors:int ->
  fn_model:Draconis.Fn_model.t ->
  dispatch_overhead:Time.t ->
  ?dispatch_jitter:Time.t ->
  ?rng:Rng.t ->
  ?intra:intra_policy ->
  on_complete:(Task.t -> client:Addr.t -> unit) ->
  unit ->
  t

(** [deliver t task ~client] hands the node a task from the switch. *)
val deliver : t -> Task.t -> client:Addr.t -> unit

val set_on_task_start : t -> (Task.t -> node:int -> unit) -> unit

(** Tasks at the node: queued plus in service. *)
val occupancy : t -> int

val node : t -> int
val tasks_executed : t -> int

(** Preemptions performed (PS mode only). *)
val preemptions : t -> int
