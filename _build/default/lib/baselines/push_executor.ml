open Draconis_sim
open Draconis_net
open Draconis_proto

type pending = { task : Task.t; client : Addr.t }

type t = {
  engine : Engine.t;
  node : int;
  port : int;
  fn_model : Draconis.Fn_model.t;
  on_complete : Task.t -> client:Addr.t -> unit;
  queue : pending Queue.t;
  mutable busy : bool;
  mutable on_task_start : Task.t -> node:int -> unit;
  mutable tasks_executed : int;
}

let create ~engine ~node ~port ~fn_model ~on_complete () =
  {
    engine;
    node;
    port;
    fn_model;
    on_complete;
    queue = Queue.create ();
    busy = false;
    on_task_start = (fun _ ~node:_ -> ());
    tasks_executed = 0;
  }

let rec run_next t =
  match Queue.take_opt t.queue with
  | None -> t.busy <- false
  | Some { task; client } ->
    t.busy <- true;
    t.on_task_start task ~node:t.node;
    let service = Draconis.Fn_model.service_time t.fn_model task ~node:t.node in
    let finish () =
      t.tasks_executed <- t.tasks_executed + 1;
      t.on_complete task ~client;
      run_next t
    in
    if service = 0 then finish ()
    else ignore (Engine.schedule t.engine ~after:service finish)

let push t task ~client =
  Queue.add { task; client } t.queue;
  if not t.busy then run_next t

let try_steal t =
  (* Steal from the queue's tail: the task that would otherwise wait the
     longest behind this executor. *)
  match List.rev (List.of_seq (Queue.to_seq t.queue)) with
  | [] -> None
  | newest :: older_rev ->
    Queue.clear t.queue;
    List.iter (fun item -> Queue.add item t.queue) (List.rev older_rev);
    Some (newest.task, newest.client)

let set_on_task_start t f = t.on_task_start <- f
let occupancy t = Queue.length t.queue + if t.busy then 1 else 0
let busy t = t.busy
let node t = t.node
let port t = t.port
let tasks_executed t = t.tasks_executed
