(** Sparrow baseline: distributed scheduling with batch sampling and
    late binding (paper §2.3.2, §8.1).

    One or two scheduler processes run on server hosts.  For a job of
    [m] tasks a scheduler sends [probe_ratio x m] probes to randomly
    sampled worker nodes; workers queue the probes and, when an executor
    frees up, call back ({e late binding}) to fetch a task — the
    scheduler hands tasks to the earliest callbacks, so probe-queue
    position rather than queue-length guesses decides placement.

    Every message occupies the scheduler's CPU, so a deployment's
    throughput is capped by its host (the paper measures ~500 ktps for
    one scheduler, ~900 ktps for two) and its latency carries the
    probing round trips that Draconis avoids. *)

open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  schedulers : int;  (** 1 or 2 in the paper's deployments *)
  probe_ratio : int;  (** probes per task (d = 2 in the paper) *)
  per_message_cost : Time.t;  (** scheduler CPU per handled message *)
  per_probe_cost : Time.t;  (** additional CPU per probe sent *)
  fabric_config : Fabric.config;
}

(** Paper shape: 10x16 executors, 2 clients, 1 scheduler, d = 2. *)
val default_config : config

type t

val create : config -> t

val engine : t -> Engine.t
val metrics : t -> Metrics.t

(** [submit_job t ~client tasks] submits a job from client index
    [client]; jobs round-robin across schedulers. *)
val submit_job : t -> client:int -> Task.t list -> unit

val run : t -> until:Time.t -> unit
val run_until_drained : t -> deadline:Time.t -> bool
val outstanding : t -> int
val total_executors : t -> int

(** Probes currently queued at a node (tests). *)
val probe_backlog : t -> int -> int
