open Draconis_sim
open Draconis_net
open Draconis_proto

type intra_policy =
  | Fcfs
  | Processor_sharing of { quantum : Time.t; overhead : Time.t }

type pending = {
  task : Task.t;
  client : Addr.t;
  mutable remaining : Time.t;
  mutable started : bool;  (* first slice began (for measurement hooks) *)
}

type t = {
  engine : Engine.t;
  node : int;
  fn_model : Draconis.Fn_model.t;
  dispatch_overhead : Time.t;
  dispatch_jitter : Time.t;
  rng : Rng.t option;
  intra : intra_policy;
  on_complete : Task.t -> client:Addr.t -> unit;
  queue : pending Queue.t;
  mutable free_executors : int;
  mutable on_task_start : Task.t -> node:int -> unit;
  mutable tasks_executed : int;
  mutable occupancy : int;
  mutable preemptions : int;
}

let create ~engine ~node ~executors ~fn_model ~dispatch_overhead
    ?(dispatch_jitter = 0) ?rng ?(intra = Fcfs) ~on_complete () =
  if executors < 1 then invalid_arg "Node_worker.create: need executors";
  if dispatch_jitter > 0 && rng = None then
    invalid_arg "Node_worker.create: jitter needs an rng";
  (match intra with
  | Processor_sharing { quantum; _ } when quantum <= 0 ->
    invalid_arg "Node_worker.create: quantum must be positive"
  | Processor_sharing _ | Fcfs -> ());
  {
    engine;
    node;
    fn_model;
    dispatch_overhead;
    dispatch_jitter;
    rng;
    intra;
    on_complete;
    queue = Queue.create ();
    free_executors = executors;
    on_task_start = (fun _ ~node:_ -> ());
    tasks_executed = 0;
    occupancy = 0;
    preemptions = 0;
  }

let jitter t =
  match (t.rng, t.dispatch_jitter) with
  | Some rng, amount when amount > 0 -> Rng.int rng (amount + 1)
  | _ -> 0

let finish t item =
  t.tasks_executed <- t.tasks_executed + 1;
  t.occupancy <- t.occupancy - 1;
  t.free_executors <- t.free_executors + 1;
  t.on_complete item.task ~client:item.client

(* Centralized FCFS: the head task owns an executor to completion. *)
let rec dispatch_fcfs t =
  if t.free_executors > 0 then begin
    match Queue.take_opt t.queue with
    | None -> ()
    | Some item ->
      t.free_executors <- t.free_executors - 1;
      (* The intra-node scheduler costs a few microseconds per dispatch
         before the task starts executing. *)
      ignore
        (Engine.schedule t.engine ~after:(t.dispatch_overhead + jitter t) (fun () ->
             t.on_task_start item.task ~node:t.node;
             ignore
               (Engine.schedule t.engine ~after:item.remaining (fun () ->
                    finish t item;
                    dispatch_fcfs t))));
      dispatch_fcfs t
  end

(* Processor sharing: round-robin time slices with preemption, so short
   tasks are never stuck behind long ones (the paper's heavy-tailed
   configuration, run via Shinjuku in the original). *)
let rec dispatch_ps t ~quantum ~overhead =
  if t.free_executors > 0 then begin
    match Queue.take_opt t.queue with
    | None -> ()
    | Some item ->
      t.free_executors <- t.free_executors - 1;
      let startup =
        if item.started then overhead else t.dispatch_overhead + jitter t
      in
      ignore
        (Engine.schedule t.engine ~after:startup (fun () ->
             if not item.started then begin
               item.started <- true;
               t.on_task_start item.task ~node:t.node
             end;
             let slice = min quantum item.remaining in
             ignore
               (Engine.schedule t.engine ~after:slice (fun () ->
                    item.remaining <- item.remaining - slice;
                    if item.remaining <= 0 then finish t item
                    else begin
                      t.preemptions <- t.preemptions + 1;
                      t.free_executors <- t.free_executors + 1;
                      Queue.add item t.queue
                    end;
                    dispatch_ps t ~quantum ~overhead))));
      dispatch_ps t ~quantum ~overhead
  end

let dispatch t =
  match t.intra with
  | Fcfs -> dispatch_fcfs t
  | Processor_sharing { quantum; overhead } -> dispatch_ps t ~quantum ~overhead

let deliver t task ~client =
  t.occupancy <- t.occupancy + 1;
  let remaining = Draconis.Fn_model.service_time t.fn_model task ~node:t.node in
  Queue.add { task; client; remaining; started = false } t.queue;
  dispatch t

let set_on_task_start t f = t.on_task_start <- f
let occupancy t = t.occupancy
let node t = t.node
let tasks_executed t = t.tasks_executed
let preemptions t = t.preemptions
