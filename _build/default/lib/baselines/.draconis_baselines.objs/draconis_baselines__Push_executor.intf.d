lib/baselines/push_executor.mli: Addr Draconis Draconis_net Draconis_proto Draconis_sim Engine Task
