lib/baselines/central_server.ml: Addr Array Client Cpu Draconis Draconis_net Draconis_proto Draconis_sim Engine Executor Fabric Fn_model Hashtbl List Message Metrics Queue Rng Task Time Worker
