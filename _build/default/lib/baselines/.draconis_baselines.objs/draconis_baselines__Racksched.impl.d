lib/baselines/racksched.ml: Addr Array Client Draconis Draconis_net Draconis_p4 Draconis_proto Draconis_sim Engine Fabric Fn_model Message Metrics Node_worker Pipeline Printf Register Rng Task Time
