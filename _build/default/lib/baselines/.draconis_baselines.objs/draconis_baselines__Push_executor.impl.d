lib/baselines/push_executor.ml: Addr Draconis Draconis_net Draconis_proto Draconis_sim Engine List Queue Task
