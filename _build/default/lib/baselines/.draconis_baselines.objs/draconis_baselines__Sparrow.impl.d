lib/baselines/sparrow.ml: Addr Array Cpu Draconis Draconis_net Draconis_proto Draconis_sim Engine Fabric Fn_model Hashtbl List Metrics Queue Rng Task Time
