lib/baselines/r2p2.mli: Addr Client Draconis Draconis_net Draconis_p4 Draconis_proto Draconis_sim Engine Fabric Message Metrics Pipeline Task Time
