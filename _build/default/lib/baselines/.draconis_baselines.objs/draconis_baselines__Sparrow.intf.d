lib/baselines/sparrow.mli: Draconis Draconis_net Draconis_proto Draconis_sim Engine Fabric Metrics Task Time
