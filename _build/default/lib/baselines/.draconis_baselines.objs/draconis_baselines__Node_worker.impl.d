lib/baselines/node_worker.ml: Addr Draconis Draconis_net Draconis_proto Draconis_sim Engine Queue Rng Task Time
