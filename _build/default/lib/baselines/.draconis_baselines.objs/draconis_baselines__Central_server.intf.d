lib/baselines/central_server.mli: Client Draconis Draconis_net Draconis_sim Engine Fabric Metrics Time
