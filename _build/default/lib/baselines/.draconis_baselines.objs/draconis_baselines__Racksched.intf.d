lib/baselines/racksched.mli: Client Draconis Draconis_net Draconis_p4 Draconis_proto Draconis_sim Engine Fabric Message Metrics Node_worker Pipeline Time
