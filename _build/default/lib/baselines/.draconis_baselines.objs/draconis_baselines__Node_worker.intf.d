lib/baselines/node_worker.mli: Addr Draconis Draconis_net Draconis_proto Draconis_sim Engine Rng Task Time
