open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  schedulers : int;
  probe_ratio : int;
  per_message_cost : Time.t;
  per_probe_cost : Time.t;
  fabric_config : Fabric.config;
}

let default_config =
  {
    seed = 42;
    workers = 10;
    executors_per_worker = 16;
    clients = 2;
    schedulers = 1;
    probe_ratio = 2;
    per_message_cost = Time.ns 1_000;
    per_probe_cost = Time.ns 500;
    fabric_config = Fabric.default_config;
  }

type msg =
  | Submit of { client : Addr.t; tasks : Task.t list }
  | Probe of { scheduler : Addr.t; probe_id : int }
  | Get_task of { probe_id : int; node : int }
  | Launch of { task : Task.t; probe_id : int }
  | No_task of { probe_id : int }
  | Finished of { task_id : Task.id; client : Addr.t }
  | Done of { task_id : Task.id }

type job = { mutable pending : Task.t list; job_client : Addr.t }

type scheduler = {
  sched_addr : Addr.t;
  cpu : Cpu.t;
  jobs : (int, job) Hashtbl.t;  (* probe_id -> job *)
  sched_rng : Rng.t;
  mutable next_probe : int;
}

type client_state = {
  client_addr : Addr.t;
  uid : int;
  mutable next_jid : int;
  mutable unfinished : int;
}

type worker = {
  node : int;
  probes : (Addr.t * int) Queue.t;  (* (scheduler, probe_id) *)
  mutable free : int;
  (* (scheduler, probe_id) pairs with a get_task in flight; probe ids
     are only unique per scheduler. *)
  waiting : (Addr.t * int, unit) Hashtbl.t;
}

type t = {
  config : config;
  engine : Engine.t;
  fabric : msg Fabric.t;
  metrics : Metrics.t;
  schedulers : scheduler array;
  client_states : client_state array;
  workers : worker array;
}

(* -- scheduler ------------------------------------------------------------- *)

(* Batch sampling: pick [count] worker nodes, distinct while possible. *)
let sample_nodes rng ~workers ~count =
  let chosen = Array.make count 0 in
  let used = Hashtbl.create count in
  for i = 0 to count - 1 do
    let pick = ref (Rng.int rng workers) in
    if Hashtbl.length used < workers then
      while Hashtbl.mem used !pick do
        pick := (!pick + 1) mod workers
      done;
    Hashtbl.replace used !pick ();
    chosen.(i) <- !pick
  done;
  chosen

let scheduler_handle t sched msg =
  match msg with
  | Submit { client; tasks } ->
    let job = { pending = tasks; job_client = client } in
    List.iter
      (fun (task : Task.t) -> Metrics.note_enqueue t.metrics task.id ~level:0)
      tasks;
    let count = t.config.probe_ratio * List.length tasks in
    let nodes = sample_nodes sched.sched_rng ~workers:t.config.workers ~count in
    Array.iter
      (fun node ->
        let probe_id = sched.next_probe in
        sched.next_probe <- sched.next_probe + 1;
        Hashtbl.replace sched.jobs probe_id job;
        Fabric.send t.fabric ~src:sched.sched_addr ~dst:(Addr.Host node)
          (Probe { scheduler = sched.sched_addr; probe_id }))
      nodes
  | Get_task { probe_id; node } ->
    (match Hashtbl.find_opt sched.jobs probe_id with
    | None ->
      Fabric.send t.fabric ~src:sched.sched_addr ~dst:(Addr.Host node)
        (No_task { probe_id })
    | Some job ->
      Hashtbl.remove sched.jobs probe_id;
      (match job.pending with
      | [] ->
        Fabric.send t.fabric ~src:sched.sched_addr ~dst:(Addr.Host node)
          (No_task { probe_id })
      | task :: rest ->
        job.pending <- rest;
        Metrics.note_assign t.metrics task.id ~requested_at:(Engine.now t.engine);
        Fabric.send t.fabric ~src:sched.sched_addr ~dst:(Addr.Host node)
          (Launch { task; probe_id })))
  | Finished { task_id; client } ->
    Fabric.send t.fabric ~src:sched.sched_addr ~dst:client (Done { task_id })
  | Probe _ | Launch _ | No_task _ | Done _ -> ()

let scheduler_cost t msg =
  match msg with
  | Submit { tasks; _ } ->
    t.config.per_message_cost
    + (t.config.probe_ratio * List.length tasks * t.config.per_probe_cost)
  | Get_task _ | Finished _ | Probe _ | Launch _ | No_task _ | Done _ ->
    t.config.per_message_cost

(* -- worker ---------------------------------------------------------------- *)

let rec worker_bind t w =
  (* Late binding: a free executor claims the oldest probe and calls the
     scheduler back for an actual task. *)
  if w.free > 0 then begin
    match Queue.take_opt w.probes with
    | None -> ()
    | Some (scheduler, probe_id) ->
      w.free <- w.free - 1;
      Hashtbl.replace w.waiting (scheduler, probe_id) ();
      Fabric.send t.fabric ~src:(Addr.Host w.node) ~dst:scheduler
        (Get_task { probe_id; node = w.node });
      worker_bind t w
  end

let worker_handle t w fn_model ~from msg =
  match msg with
  | Probe { scheduler; probe_id } ->
    Queue.add (scheduler, probe_id) w.probes;
    worker_bind t w
  | Launch { task; probe_id } ->
    let scheduler = from in
    if Hashtbl.mem w.waiting (scheduler, probe_id) then begin
      Hashtbl.remove w.waiting (scheduler, probe_id);
      Metrics.note_exec_start t.metrics task ~node:w.node;
      let service = Fn_model.service_time fn_model task ~node:w.node in
      let client =
        (* Sparrow replies to the submitting client via the scheduler;
           recover the client from the task's uid. *)
        t.client_states.(task.id.uid).client_addr
      in
      ignore
        (Engine.schedule t.engine ~after:service (fun () ->
             w.free <- w.free + 1;
             Fabric.send t.fabric ~src:(Addr.Host w.node) ~dst:scheduler
               (Finished { task_id = task.id; client });
             worker_bind t w))
    end
  | No_task { probe_id } ->
    if Hashtbl.mem w.waiting (from, probe_id) then begin
      Hashtbl.remove w.waiting (from, probe_id);
      w.free <- w.free + 1;
      worker_bind t w
    end
  | Submit _ | Get_task _ | Finished _ | Done _ -> ()

(* -- assembly -------------------------------------------------------------- *)

let create (config : config) =
  if config.schedulers < 1 then invalid_arg "Sparrow.create: need schedulers";
  if config.probe_ratio < 1 then invalid_arg "Sparrow.create: probe_ratio >= 1";
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric = Fabric.create ~config:config.fabric_config engine rng in
  let metrics = Metrics.create engine in
  let client_states =
    Array.init config.clients (fun i ->
        {
          client_addr = Addr.Host (config.workers + config.schedulers + i);
          uid = i;
          next_jid = 0;
          unfinished = 0;
        })
  in
  let schedulers =
    Array.init config.schedulers (fun i ->
        {
          sched_addr = Addr.Host (config.workers + i);
          cpu = Cpu.create engine;
          jobs = Hashtbl.create 4096;
          sched_rng = Rng.split rng;
          next_probe = 0;
        })
  in
  let workers =
    Array.init config.workers (fun node ->
        {
          node;
          probes = Queue.create ();
          free = config.executors_per_worker;
          waiting = Hashtbl.create 16;
        })
  in
  let t = { config; engine; fabric; metrics; schedulers; client_states; workers } in
  Array.iter
    (fun sched ->
      Fabric.register fabric sched.sched_addr (fun env ->
          let msg = env.Fabric.payload in
          Cpu.submit sched.cpu ~cost:(scheduler_cost t msg) (fun () ->
              scheduler_handle t sched msg)))
    schedulers;
  let fn_model = Fn_model.default in
  Array.iter
    (fun w ->
      Fabric.register fabric (Addr.Host w.node) (fun env ->
          worker_handle t w fn_model ~from:env.Fabric.src env.Fabric.payload))
    workers;
  Array.iter
    (fun cs ->
      Fabric.register fabric cs.client_addr (fun env ->
          match env.Fabric.payload with
          | Done { task_id } ->
            cs.unfinished <- cs.unfinished - 1;
            Metrics.note_complete metrics task_id
          | Submit _ | Probe _ | Get_task _ | Launch _ | No_task _ | Finished _ -> ()))
    client_states;
  t

let submit_job t ~client tasks =
  if tasks = [] then invalid_arg "Sparrow.submit_job: empty job";
  if client < 0 || client >= Array.length t.client_states then
    invalid_arg "Sparrow.submit_job: bad client";
  let cs = t.client_states.(client) in
  let jid = cs.next_jid in
  cs.next_jid <- jid + 1;
  let tasks =
    List.mapi
      (fun tid (task : Task.t) -> { task with id = { uid = cs.uid; jid; tid } })
      tasks
  in
  List.iter
    (fun (task : Task.t) ->
      cs.unfinished <- cs.unfinished + 1;
      Metrics.note_submit t.metrics task.id)
    tasks;
  let sched = t.schedulers.(jid mod Array.length t.schedulers) in
  Fabric.send t.fabric ~src:cs.client_addr ~dst:sched.sched_addr
    (Submit { client = cs.client_addr; tasks })

let engine t = t.engine
let metrics t = t.metrics
let run t ~until = Engine.run ~until t.engine

let outstanding t =
  Array.fold_left (fun acc cs -> acc + cs.unfinished) 0 t.client_states

let run_until_drained t ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if outstanding t = 0 then true
    else if Engine.now t.engine >= deadline then false
    else begin
      Engine.run ~until:(min deadline (Engine.now t.engine + step)) t.engine;
      go ()
    end
  in
  go ()

let total_executors t = t.config.workers * t.config.executors_per_worker

let probe_backlog t node =
  if node < 0 || node >= Array.length t.workers then
    invalid_arg "Sparrow.probe_backlog: bad node";
  Queue.length t.workers.(node).probes
