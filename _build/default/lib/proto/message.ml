open Draconis_net

type executor_info = {
  exec_addr : Addr.t;
  exec_port : int;
  exec_rsrc : int;
  exec_node : int;
}

type t =
  | Job_submission of { client : Addr.t; uid : int; jid : int; tasks : Task.t list }
  | Job_ack of { uid : int; jid : int }
  | Queue_full of { uid : int; jid : int; tasks : Task.t list }
  | Task_request of { info : executor_info; rtrv_prio : int }
  | Task_assignment of { task : Task.t; client : Addr.t; port : int }
  | Noop_assignment of { port : int }
  | Task_completion of {
      task_id : Task.id;
      client : Addr.t;
      info : executor_info;
      rtrv_prio : int;
    }
  | Param_fetch of { task_id : Task.id; node : int; port : int }
  | Param_data of { task_id : Task.id; port : int; size : int }

let pp fmt = function
  | Job_submission { client; uid; jid; tasks } ->
    Format.fprintf fmt "job_submission{client=%a uid=%d jid=%d #tasks=%d}"
      Addr.pp client uid jid (List.length tasks)
  | Job_ack { uid; jid } -> Format.fprintf fmt "job_ack{uid=%d jid=%d}" uid jid
  | Queue_full { uid; jid; tasks } ->
    Format.fprintf fmt "queue_full{uid=%d jid=%d #tasks=%d}" uid jid
      (List.length tasks)
  | Task_request { info; rtrv_prio } ->
    Format.fprintf fmt "task_request{node=%d port=%d rsrc=%#x prio=%d}"
      info.exec_node info.exec_port info.exec_rsrc rtrv_prio
  | Task_assignment { task; client; port } ->
    Format.fprintf fmt "task_assignment{%a client=%a port=%d}" Task.pp task Addr.pp
      client port
  | Noop_assignment { port } -> Format.fprintf fmt "noop_assignment{port=%d}" port
  | Task_completion { task_id; client; info; rtrv_prio = _ } ->
    Format.fprintf fmt "task_completion{%a client=%a node=%d}" Task.pp_id task_id
      Addr.pp client info.exec_node
  | Param_fetch { task_id; node; port } ->
    Format.fprintf fmt "param_fetch{%a node=%d port=%d}" Task.pp_id task_id node port
  | Param_data { task_id; port; size } ->
    Format.fprintf fmt "param_data{%a port=%d size=%d}" Task.pp_id task_id port size

let opcode = function
  | Job_submission _ -> 1
  | Job_ack _ -> 2
  | Queue_full _ -> 3
  | Task_request _ -> 4
  | Task_assignment _ -> 5
  | Noop_assignment _ -> 6
  | Task_completion _ -> 7
  | Param_fetch _ -> 8
  | Param_data _ -> 9
