lib/proto/task.ml: Format List String
