lib/proto/message.ml: Addr Draconis_net Format List Task
