lib/proto/codec.ml: Addr Bytes Draconis_net Format Int32 Int64 List Message Printf Task
