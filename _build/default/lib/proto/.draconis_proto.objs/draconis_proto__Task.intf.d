lib/proto/task.mli: Format
