lib/proto/codec.mli: Format Message
