lib/proto/message.mli: Addr Draconis_net Format Task
