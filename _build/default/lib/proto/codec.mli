(** Binary wire format for {!Message.t} (paper Fig. 3).

    Layout (big-endian):
    - every packet starts with a 1-byte OP_CODE;
    - addresses are 16-bit host ids ([0xFFFF] denotes the switch);
    - TASK_INFO is a fixed 32-byte record: UID(4) JID(4) TID(4)
      FN_ID(2) FN_PAR(8) TPROPS(tag 1 + 8 payload) PAD(1) — fixed-size
      because a switch parser must know field offsets statically;
    - [job_submission] carries client(2) UID(4) JID(4) #TASKS(2)
      followed by #TASKS TASK_INFO records.

    The locality TPROPS variant carries at most {!max_locality_nodes}
    node ids on the wire; [encode] raises [Invalid_argument] beyond
    that (callers replicate data on few nodes, paper §8.5). *)

type error = Truncated | Bad_opcode of int | Bad_field of string

val pp_error : Format.formatter -> error -> unit

(** Fixed wire size of one TASK_INFO record, in bytes. *)
val task_info_size : int

(** Maximum locality node ids encodable in TPROPS. *)
val max_locality_nodes : int

(** UDP payload budget per packet (Ethernet MTU minus headers). *)
val mtu_payload : int

(** Most TASK_INFO records that fit one job_submission packet; jobs with
    more tasks must be split across packets (paper §4.3). *)
val max_tasks_per_packet : int

(** [encode msg] is the wire image of [msg].
    @raise Invalid_argument if the message violates a wire limit
    (too many tasks for one packet, too many locality nodes, field
    overflow). *)
val encode : Message.t -> bytes

(** [decode b] parses a wire image. *)
val decode : bytes -> (Message.t, error) result

(** [encoded_size msg] is [Bytes.length (encode msg)] without building
    the buffer. *)
val encoded_size : Message.t -> int
