(** Draconis application-layer protocol messages (paper §4.1).

    Embedded in a UDP payload on the wire; here the variants are carried
    directly over the simulated fabric and {!Codec} provides the binary
    wire format (with round-trip tests ensuring the two views agree).

    [client] fields carry the submitting client's address (its IP and
    port in the paper) so the switch can store it with each queued task
    and executors can reply directly. *)

open Draconis_net

(** Executor self-description sent with task requests. *)
type executor_info = {
  exec_addr : Addr.t;  (** worker node the executor runs on *)
  exec_port : int;  (** executor index within the node *)
  exec_rsrc : int;  (** EXEC_RSRC resource bitmap (paper §5.2) *)
  exec_node : int;  (** node id, for locality decisions (§5.3) *)
}

type t =
  | Job_submission of {
      client : Addr.t;
      uid : int;
      jid : int;
      tasks : Task.t list;  (** the #TASKS / TASK_INFO list *)
    }
  | Job_ack of { uid : int; jid : int }
      (** switch -> client: tasks enqueued *)
  | Queue_full of { uid : int; jid : int; tasks : Task.t list }
      (** switch -> client: error packet listing unqueued tasks (§4.3) *)
  | Task_request of { info : executor_info; rtrv_prio : int }
      (** executor -> switch pull (§4.6); RTRV_PRIO for priority policy *)
  | Task_assignment of { task : Task.t; client : Addr.t; port : int }
      (** switch -> executor (§4.1); [port] addresses the executor
          within its worker node (the UDP destination port) *)
  | Noop_assignment of { port : int }
      (** switch -> executor: queue empty, retry later (§4.6) *)
  | Task_completion of {
      task_id : Task.id;
      client : Addr.t;  (** the submitting client the switch forwards to *)
      info : executor_info;
      rtrv_prio : int;
    }
      (** executor -> client via the scheduler; the request for the next
          task is piggybacked on it (§3.1) *)
  | Param_fetch of { task_id : Task.id; node : int; port : int }
      (** executor -> client, directly: request the real parameters of a
          transmission-function task (§4.4) *)
  | Param_data of { task_id : Task.id; port : int; size : int }
      (** client -> executor: the parameters ([size] bytes; the transfer
          time is modeled from it) *)

val pp : Format.formatter -> t -> unit

(** Opcode tag as carried on the wire (OP_CODE field). *)
val opcode : t -> int
