lib/p4/resources.ml: Printf
