lib/p4/table.mli:
