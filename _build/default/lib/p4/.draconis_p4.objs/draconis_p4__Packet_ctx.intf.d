lib/p4/packet_ctx.mli:
