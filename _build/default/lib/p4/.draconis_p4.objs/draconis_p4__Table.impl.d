lib/p4/table.ml: Hashtbl List
