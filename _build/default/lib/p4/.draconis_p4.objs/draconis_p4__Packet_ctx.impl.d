lib/p4/packet_ctx.ml: Array
