lib/p4/pipeline.ml: Addr Draconis_net Draconis_sim Engine Fabric List Packet_ctx Printf Time Trace
