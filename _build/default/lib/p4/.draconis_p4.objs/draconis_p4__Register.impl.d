lib/p4/register.ml: Array Packet_ctx Printf
