lib/p4/resources.mli:
