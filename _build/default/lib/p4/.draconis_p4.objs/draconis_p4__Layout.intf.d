lib/p4/layout.mli: Format Register Resources
