lib/p4/layout.ml: Array Buffer Format List Printf Register Resources
