lib/p4/pipeline.mli: Addr Draconis_net Draconis_sim Fabric Packet_ctx Time
