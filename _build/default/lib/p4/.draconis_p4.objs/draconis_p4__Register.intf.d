lib/p4/register.mli: Packet_ctx
