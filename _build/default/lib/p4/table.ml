type 'a ternary_rule = { value : int; mask : int; priority : int; seq : int; action : 'a }

type 'a t = {
  name : string;
  default : 'a;
  exact : (int, 'a) Hashtbl.t;
  mutable ternary : 'a ternary_rule list;  (* sorted: priority desc, seq asc *)
  mutable next_seq : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~name ~default () =
  {
    name;
    default;
    exact = Hashtbl.create 64;
    ternary = [];
    next_seq = 0;
    hits = 0;
    misses = 0;
  }

let name t = t.name
let add_exact t ~key action = Hashtbl.replace t.exact key action

let add_ternary t ~value ~mask ~priority action =
  let rule = { value; mask; priority; seq = t.next_seq; action } in
  t.next_seq <- t.next_seq + 1;
  t.ternary <-
    List.sort
      (fun a b ->
        if a.priority <> b.priority then compare b.priority a.priority
        else compare a.seq b.seq)
      (rule :: t.ternary)

let remove_exact t ~key = Hashtbl.remove t.exact key

let lookup t ~key =
  match Hashtbl.find_opt t.exact key with
  | Some action ->
    t.hits <- t.hits + 1;
    action
  | None -> (
    match
      List.find_opt (fun rule -> key land rule.mask = rule.value land rule.mask) t.ternary
    with
    | Some rule ->
      t.hits <- t.hits + 1;
      rule.action
    | None ->
      t.misses <- t.misses + 1;
      t.default)

let hits t = t.hits
let misses t = t.misses
let size t = Hashtbl.length t.exact + List.length t.ternary
