(** Static switch-resource accounting (paper §7).

    Estimates whether a Draconis deployment (queue entries x priority
    levels) fits a given switch generation.  Budgets are
    reverse-engineered from the paper's reported capacities: their
    first-generation Tofino holds a 164K-task queue and 4 priority
    levels; they estimate 1M tasks and 12 levels on Tofino 2.

    The model: a queue entry spans [words_per_entry] 32-bit words stored
    in parallel register arrays, one array per word; each array must fit
    entirely inside one stage's register SRAM; a stage can host at most
    [arrays_per_stage] arrays; every priority level adds its own set of
    entry arrays plus pointer/flag registers, co-located in the same
    stages (the paper's layout, which is why retrieval needs
    recirculation across levels). *)

type profile = {
  name : string;
  stages : int;  (** match-action stages per pipeline *)
  register_bits_per_stage : int;  (** stateful-ALU SRAM per stage *)
  arrays_per_stage : int;  (** register arrays per stage *)
  overhead_stages : int;  (** stages consumed by parsing/forwarding *)
}

(** First-generation Tofino, as deployed in the paper. *)
val tofino1 : profile

(** Tofino 2, per the paper's §7 extrapolation. *)
val tofino2 : profile

(** 32-bit words needed per queue entry: UID, JID, TID, FN_ID,
    FN_PAR lo/hi, TPROPS tag + payload lo/hi, client address, and the
    locality skip counter — one parallel register array per word.  Each
    queue additionally allocates five control arrays (validity stamps,
    two pointers, two repair flags). *)
val words_per_entry : int

(** [max_queue_entries p ~priority_levels] is the largest per-level
    queue capacity that fits.
    @raise Invalid_argument if [priority_levels < 1]. *)
val max_queue_entries : profile -> priority_levels:int -> int

(** [max_priority_levels p] is the number of independent queues the
    stage layout can host. *)
val max_priority_levels : profile -> int

(** [fits p ~queue_entries ~priority_levels] checks a configuration. *)
val fits : profile -> queue_entries:int -> priority_levels:int -> bool

(** [report p ~priority_levels] renders a human-readable capacity line. *)
val report : profile -> priority_levels:int -> string
