(** Structural placement of register arrays onto pipeline stages.

    {!Resources} answers "does it fit?" arithmetically; this module
    answers it structurally: given the actual register arrays a switch
    program allocated, assign each to a match-action stage such that no
    stage exceeds its array-slot or SRAM budget — the two constraints
    that bound queue capacity and priority levels in the paper's §7.
    An array must live entirely within one stage (stages own their
    memories); programs shard wide state into per-word arrays for
    exactly this reason.

    Placement is first-fit-decreasing by size, which is optimal enough
    for the regular layouts scheduler programs produce; a failure
    reports the first register that cannot be placed. *)

type constraints = {
  stages : int;  (** usable match-action stages *)
  arrays_per_stage : int;  (** register-array slots per stage *)
  bits_per_stage : int;  (** stateful-register SRAM per stage *)
}

(** Budgets of a switch profile, net of parser/forwarding overhead. *)
val of_profile : Resources.profile -> constraints

type placement = {
  stage_of : (string * int) list;  (** register name -> stage index *)
  arrays_used : int array;  (** per-stage array slots consumed *)
  bits_used : int array;  (** per-stage SRAM bits consumed *)
}

type error =
  | Register_too_large of string  (** exceeds one stage's SRAM outright *)
  | Out_of_stage_slots of string  (** no stage can host it *)

val pp_error : Format.formatter -> error -> unit

(** [place constraints registers] assigns every register to a stage. *)
val place : constraints -> Register.t list -> (placement, error) result

(** [fits constraints registers] is [place] as a predicate. *)
val fits : constraints -> Register.t list -> bool

(** [render placement] is a human-readable per-stage summary. *)
val render : placement -> string
