type profile = {
  name : string;
  stages : int;
  register_bits_per_stage : int;
  arrays_per_stage : int;
  overhead_stages : int;
}

let words_per_entry = 11

(* Budgets chosen so the paper's reported capacities fall out: a 164K-task
   FCFS queue and 4 priority levels on their Tofino 1; ~1M tasks and 12
   levels estimated on Tofino 2 (more stages and stateful-ALU density). *)
let tofino1 =
  {
    name = "Tofino 1";
    stages = 12;
    register_bits_per_stage = 164_000 * 64;
    arrays_per_stage = 8;
    overhead_stages = 3;
  }

let tofino2 =
  {
    name = "Tofino 2";
    stages = 20;
    register_bits_per_stage = 1_000_000 * 32;
    arrays_per_stage = 12;
    overhead_stages = 3;
  }

(* Each per-level queue also allocates the stamp array plus the two
   pointer and two repair-flag registers; the flags and pointers are
   negligible in bits but occupy stateful-ALU slots alongside the entry
   arrays (the count matches Circular_queue.registers exactly). *)
let control_arrays_per_level = 5

let usable_stages p = p.stages - p.overhead_stages

let max_queue_entries p ~priority_levels =
  if priority_levels < 1 then
    invalid_arg "Resources.max_queue_entries: priority_levels must be >= 1";
  (* Each level needs [words_per_entry] entry arrays plus control arrays;
     arrays from all levels share the usable stages. *)
  let arrays_needed = priority_levels * (words_per_entry + control_arrays_per_level) in
  let slots = usable_stages p * p.arrays_per_stage in
  if arrays_needed > slots then 0
  else begin
    (* An entry array must fit in one stage; the binding constraint is
       the most loaded stage.  With level-major placement the heaviest
       stage hosts ceil(arrays_needed / usable_stages) arrays sharing
       its SRAM. *)
    let per_stage_arrays =
      (arrays_needed + usable_stages p - 1) / usable_stages p
    in
    let per_stage_arrays = max 1 per_stage_arrays in
    p.register_bits_per_stage / (32 * per_stage_arrays)
  end

let max_priority_levels p =
  let slots = usable_stages p * p.arrays_per_stage in
  slots / (words_per_entry + control_arrays_per_level)

let fits p ~queue_entries ~priority_levels =
  priority_levels >= 1
  && priority_levels <= max_priority_levels p
  && queue_entries <= max_queue_entries p ~priority_levels

let report p ~priority_levels =
  let entries = max_queue_entries p ~priority_levels in
  Printf.sprintf "%s: %d priority level(s) -> up to %d tasks/level (max %d levels)"
    p.name priority_levels entries (max_priority_levels p)
