type constraints = {
  stages : int;
  arrays_per_stage : int;
  bits_per_stage : int;
}

let of_profile (p : Resources.profile) =
  {
    stages = p.stages - p.overhead_stages;
    arrays_per_stage = p.arrays_per_stage;
    bits_per_stage = p.register_bits_per_stage;
  }

type placement = {
  stage_of : (string * int) list;
  arrays_used : int array;
  bits_used : int array;
}

type error = Register_too_large of string | Out_of_stage_slots of string

let pp_error fmt = function
  | Register_too_large name ->
    Format.fprintf fmt "register %s exceeds a single stage's SRAM" name
  | Out_of_stage_slots name ->
    Format.fprintf fmt "no stage has room for register %s" name

let place constraints registers =
  if constraints.stages < 1 then invalid_arg "Layout.place: no stages";
  let arrays_used = Array.make constraints.stages 0 in
  let bits_used = Array.make constraints.stages 0 in
  (* First-fit-decreasing by size packs the big entry arrays first and
     tucks pointer/flag cells into the gaps. *)
  let ordered =
    List.sort (fun a b -> compare (Register.bits b) (Register.bits a)) registers
  in
  let rec assign acc = function
    | [] -> Ok { stage_of = List.rev acc; arrays_used; bits_used }
    | reg :: rest ->
      let bits = Register.bits reg in
      if bits > constraints.bits_per_stage then Error (Register_too_large (Register.name reg))
      else begin
        let rec find stage =
          if stage >= constraints.stages then None
          else if
            arrays_used.(stage) < constraints.arrays_per_stage
            && bits_used.(stage) + bits <= constraints.bits_per_stage
          then Some stage
          else find (stage + 1)
        in
        match find 0 with
        | None -> Error (Out_of_stage_slots (Register.name reg))
        | Some stage ->
          arrays_used.(stage) <- arrays_used.(stage) + 1;
          bits_used.(stage) <- bits_used.(stage) + bits;
          assign ((Register.name reg, stage) :: acc) rest
      end
  in
  assign [] ordered

let fits constraints registers =
  match place constraints registers with Ok _ -> true | Error _ -> false

let render placement =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun stage arrays ->
      if arrays > 0 then
        Buffer.add_string buf
          (Printf.sprintf "stage %2d: %2d arrays, %9d bits\n" stage arrays
             placement.bits_used.(stage)))
    placement.arrays_used;
  Buffer.contents buf
