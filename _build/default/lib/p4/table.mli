(** Match-action tables (paper §2.1).

    Stages match packet fields against control-plane-installed rules and
    execute the winning rule's action.  The model supports exact and
    ternary (value/mask) keys with priorities, a default action, and hit
    counters — enough to express the forwarding and dispatch tables real
    scheduler deployments install (e.g. mapping an executor id to the
    egress node and UDP port, or an opcode to a pipeline branch).

    Keys are packed into an integer by the caller (as a P4 parser packs
    header fields); actions are values of the table's result type.
    Lookups are data-plane operations; rule installation is a
    control-plane operation, so no {!Packet_ctx} is involved — tables
    are read-only to packets and hazard-free, unlike registers. *)

type 'a t

(** [create ~name ~default ()] is an empty table whose misses yield the
    [default] action. *)
val create : name:string -> default:'a -> unit -> 'a t

val name : 'a t -> string

(** [add_exact t ~key action] installs an exact-match rule.
    Re-installing a key replaces its action. *)
val add_exact : 'a t -> key:int -> 'a -> unit

(** [add_ternary t ~value ~mask ~priority action] installs a ternary
    rule matching keys where [key land mask = value land mask]; among
    ternary matches the highest [priority] wins (ties break toward the
    earliest installed). *)
val add_ternary : 'a t -> value:int -> mask:int -> priority:int -> 'a -> unit

(** [remove_exact t ~key] uninstalls an exact rule (no-op if absent). *)
val remove_exact : 'a t -> key:int -> unit

(** [lookup t ~key] is the matched action: exact rules win over ternary,
    ternary by priority, else the default. *)
val lookup : 'a t -> key:int -> 'a

(** [hits t] / [misses t]: data-plane lookup counters. *)
val hits : 'a t -> int

val misses : 'a t -> int

(** Installed rule count (exact + ternary). *)
val size : 'a t -> int
