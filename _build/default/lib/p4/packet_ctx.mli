(** Per-packet execution context for one pipeline traversal.

    Modern programmable switches allow each register to be operated on
    {e at most once per packet} (paper §2.1.1): granting multi-stage
    access would create read-write hazards between the packets that
    occupy different stages simultaneously.  This context records which
    registers the current packet has touched so {!Register} can enforce
    the rule — an illegal "P4 program" fails loudly instead of silently
    computing something no switch could.

    A recirculated packet re-enters the pipeline as a {e new} packet and
    therefore gets a fresh context. *)

type t

(** Raised by a second access to the same register during one traversal.
    Carries the register name. *)
exception Access_violation of string

val create : unit -> t

(** Unique id of the traversal (diagnostics). *)
val id : t -> int

(** [mark_access t ~reg_id ~reg_name] records an access.
    @raise Access_violation if [reg_id] was already accessed. *)
val mark_access : t -> reg_id:int -> reg_name:string -> unit

(** [accessed t ~reg_id] is true if this packet already touched the
    register. *)
val accessed : t -> reg_id:int -> bool

(** Number of distinct registers accessed so far. *)
val access_count : t -> int
