lib/stats/sampler.mli:
