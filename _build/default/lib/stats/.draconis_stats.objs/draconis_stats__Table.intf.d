lib/stats/table.mli:
