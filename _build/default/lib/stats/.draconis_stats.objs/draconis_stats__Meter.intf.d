lib/stats/meter.mli:
