lib/stats/histogram.mli:
