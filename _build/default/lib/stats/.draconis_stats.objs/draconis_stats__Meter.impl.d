lib/stats/meter.ml: Array Hashtbl List Option
