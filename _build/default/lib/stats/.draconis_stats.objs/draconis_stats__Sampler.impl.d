lib/stats/sampler.ml: Array Float Stdlib
