(** Logarithmic-bucket histogram (HDR-style).

    Constant-memory alternative to {!Sampler} for very long runs: values
    are bucketed into [sub_buckets] linear buckets per power-of-two
    magnitude, giving a bounded relative quantile error of roughly
    [1 / sub_buckets].  Used by the throughput experiments where
    hundreds of millions of events would make exact recording wasteful. *)

type t

(** [create ~max_value ~sub_buckets ()] covers [\[0, max_value\]].
    Values above [max_value] are clamped into the top bucket and counted
    in [overflows]. *)
val create : ?sub_buckets:int -> max_value:int -> unit -> t

val record : t -> int -> unit
val count : t -> int
val overflows : t -> int

(** Quantile by bucket midpoint; [p] in [\[0, 100\]].
    @raise Invalid_argument on an empty histogram. *)
val percentile : t -> float -> int

val mean : t -> float
val max_recorded : t -> int
val clear : t -> unit
