(** Plain-text table rendering for experiment output.

    Renders aligned columns like the rows/series the paper's figures
    report, so `bench/main.exe` output can be compared side by side with
    the paper. *)

type t

(** [create ~columns] starts an empty table with the given header. *)
val create : columns:string list -> t

(** [add_row t cells] appends a row; the row is padded or truncated to
    the header width. *)
val add_row : t -> string list -> unit

val row_count : t -> int

(** [render t] is the aligned textual table. *)
val render : t -> string

(** [print ~title t] writes the table with a title banner to stdout.
    If a CSV directory is configured ({!set_csv_dir}), the table is also
    written there as [<slug-of-title>.csv]. *)
val print : title:string -> t -> unit

(** [to_csv t] is the table in RFC-4180-style CSV (fields quoted when
    they contain commas, quotes, or newlines). *)
val to_csv : t -> string

(** [set_csv_dir dir] makes every subsequent [print] also emit a CSV
    file into [dir] (created if missing); [None] disables. *)
val set_csv_dir : string option -> unit

(** Format a nanosecond duration as microseconds with 2 decimals. *)
val us : int -> string

(** Format a float with 2 decimals. *)
val f2 : float -> string

(** Format a rate as thousands of tasks per second. *)
val ktps : float -> string
