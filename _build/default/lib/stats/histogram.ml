type t = {
  sub_buckets : int;
  max_value : int;
  buckets : int array;
  mutable total : int;
  mutable overflow : int;
  mutable sum : float;
  mutable max_seen : int;
}

let bucket_count ~max_value ~sub_buckets =
  let rec magnitudes n acc = if n = 0 then acc else magnitudes (n lsr 1) (acc + 1) in
  (magnitudes max_value 0 + 1) * sub_buckets

let create ?(sub_buckets = 32) ~max_value () =
  if max_value <= 0 then invalid_arg "Histogram.create: max_value must be positive";
  if sub_buckets <= 0 then invalid_arg "Histogram.create: sub_buckets must be positive";
  {
    sub_buckets;
    max_value;
    buckets = Array.make (bucket_count ~max_value ~sub_buckets) 0;
    total = 0;
    overflow = 0;
    sum = 0.0;
    max_seen = 0;
  }

(* Index layout: magnitude m = floor(log2 (v / sub_buckets + 1)) picks a
   power-of-two band; within it, sub-bucket by linear division.  For small
   values (v < sub_buckets) this degenerates to exact counting. *)
let index t v =
  let v = if v < 0 then 0 else v in
  if v < t.sub_buckets then v
  else begin
    let rec mag n acc = if n < t.sub_buckets then acc else mag (n lsr 1) (acc + 1) in
    let m = mag v 0 in
    let base = m * t.sub_buckets in
    let width = 1 lsl m in
    let offset = (v - (t.sub_buckets lsl (m - 1))) / width in
    Stdlib.min (Array.length t.buckets - 1) (base + Stdlib.min (t.sub_buckets - 1) offset)
  end

(* Midpoint of the bucket containing index i; inverse of [index]. *)
let value_of_index t i =
  if i < t.sub_buckets then i
  else begin
    let m = i / t.sub_buckets in
    let offset = i mod t.sub_buckets in
    let width = 1 lsl m in
    (t.sub_buckets lsl (m - 1)) + (offset * width) + (width / 2)
  end

let record t v =
  let clamped = if v > t.max_value then (t.overflow <- t.overflow + 1; t.max_value) else v in
  let i = index t clamped in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. float_of_int v;
  if v > t.max_seen then t.max_seen <- v

let count t = t.total
let overflows t = t.overflow

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: p out of range";
  let target = int_of_float (Float.round (p /. 100.0 *. float_of_int (t.total - 1))) in
  let rec scan i seen =
    if i >= Array.length t.buckets then value_of_index t (Array.length t.buckets - 1)
    else begin
      let seen = seen + t.buckets.(i) in
      if seen > target then value_of_index t i else scan (i + 1) seen
    end
  in
  scan 0 0

let mean t =
  if t.total = 0 then invalid_arg "Histogram.mean: empty";
  t.sum /. float_of_int t.total

let max_recorded t = t.max_seen

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) 0;
  t.total <- 0;
  t.overflow <- 0;
  t.sum <- 0.0;
  t.max_seen <- 0
