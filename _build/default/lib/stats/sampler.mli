(** Exact sample recorder with percentile queries.

    Stores every recorded value (as an int, e.g. nanoseconds) in a
    growable array.  Percentile queries sort a snapshot lazily; the sort
    is cached until the next [record].  Exact rather than approximate
    because simulated experiments record at most a few million points
    per series and the paper reports p50/p95/p99 precisely. *)

type t

val create : unit -> t

val record : t -> int -> unit

(** Number of recorded samples. *)
val count : t -> int

(** [percentile t p] for [p] in [\[0, 100\]], by nearest-rank on the
    sorted samples.
    @raise Invalid_argument if no samples were recorded or [p] is out of
    range. *)
val percentile : t -> float -> int

val min : t -> int
val max : t -> int
val mean : t -> float
val stddev : t -> float

(** Sorted copy of all samples (ascending). *)
val sorted : t -> int array

(** [cdf t ~points] is an evenly spaced [(value, cumulative_fraction)]
    curve with [points] entries, suitable for plotting against the
    paper's CDF figures. *)
val cdf : t -> points:int -> (int * float) array

(** [merge a b] is a new sampler containing the samples of both. *)
val merge : t -> t -> t

val clear : t -> unit
