(** Figure 12: queueing delay across priority levels.

    Accelerated Google trace with 5 ms mean tasks at high load, priority
    levels mapped 12 -> 4 (1.2 / 1.7 / 64.6 / 32.2 % of tasks at levels
    1-4).  Paper expectation: median queueing delays of ~1.4 ms, 2.9 ms,
    13.3 ms and 53.5 ms for levels 1-4, strictly ordered by priority;
    the same workload under priority-unaware FCFS sits at ~39.5 ms for
    everyone — worse than levels 1-3, better than level 4. *)

val run : ?quick:bool -> unit -> unit
