(** Ablations of the design choices DESIGN.md calls out.

    - {b pull vs push} — Draconis' pull model against push-based
      placement at increasing sampling width (random, power-of-two,
      exact JSQ over nodes);
    - {b pointer correction} — recirculation and repair cost of the
      delayed-pointer-correction queue across load (the overhead the
      one-access-per-packet rule forces);
    - {b recirculation bandwidth} — R2P2-1's task drops as a function
      of the loop-back port's service rate;
    - {b sampling width} — RackSched's tail vs power-of-k for
      k in {1, 2, 4, 10}. *)

val run : ?quick:bool -> unit -> unit
