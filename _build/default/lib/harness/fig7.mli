(** Figure 7: task drops and packet recirculation with 250 us tasks.

    Paper expectation: R2P2-1's recirculated-packet share climbs to
    ~50% of all processed packets at 93% load and ~75% at 97%, and it
    starts dropping tasks (5-9%); R2P2-3 recirculates and drops
    essentially nothing; Draconis stays at 0.02-0.05% recirculation
    with zero drops. *)

val run : ?quick:bool -> unit -> unit
