(** Figures 8a/8b: the effect of the JBSQ bound on R2P2 — utilization vs
    p99 scheduling delay for R2P2-1, R2P2-3, and Draconis with 100 us
    (8a) and 250 us (8b) tasks.

    Paper expectation: R2P2-1 tracks Draconis at low utilization but
    drops tasks from ~80% load (the client-timeout resubmissions spike
    its tail); R2P2-3 never drops but its tail sits at the task service
    time from ~30-40% utilization — node-level blocking; Draconis is
    lowest throughout. *)

val run : ?quick:bool -> unit -> unit
