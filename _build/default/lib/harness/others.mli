(** §8 "Other Schedulers": the two systems the paper tried and found
    unable to run microsecond-scale workloads at all.

    Paper expectations:
    - the Spark native scheduler at 50% utilization with 500 us tasks
      accumulates ~3 s of scheduling delay, and above 50% it experiences
      unbounded queueing;
    - Firmament cannot scale past ~100 nodes x 12 executors
      (1200 executors) when running 5 ms tasks — beyond that its
      decision rate falls short of the cluster's task rate. *)

val run : ?quick:bool -> unit -> unit
