(** §7 switch-resource estimates: queue capacity and priority levels on
    Tofino 1 vs Tofino 2.

    Paper expectation: the deployed Tofino 1 holds a 164K-task queue and
    up to 4 priority levels; Tofino 2 supports ~1M tasks and up to 12
    levels. *)

val run : ?quick:bool -> unit -> unit
