open Draconis_sim
open Draconis_stats
open Draconis
open Draconis_workload

(* The priority policy recirculates every lower-level retrieval, so a
   deployment provisions the loop-back path accordingly (multiple
   recirculation ports on a Tofino); sec 8.7 reports no throughput
   impact. *)
let prio_pipeline =
  {
    Draconis_p4.Pipeline.default_config with
    recirc_slot = Draconis_sim.Time.ns 10;
    recirc_queue_limit = 4096;
  }

let levels = 4

let run ?(quick = false) () =
  let horizon = if quick then Time.ms 50 else Time.ms 300 in
  let spec = Systems.default_spec in
  (* Moderate load on 500 us-mean tasks: higher-priority queues are
     frequently empty, so lower-level retrievals pay the recirculation
     chain the figure measures. *)
  let trace =
    {
      Google_trace.default_spec with
      mean_duration = Time.us 500;
      rate_tps = 200_000.0;
      horizon;
      priority_levels = levels;
    }
  in
  let driver engine rng ~submit = Google_trace.drive engine rng trace ~submit in
  let system =
    Systems.draconis ~pipeline_config:prio_pipeline
      ~policy_of:(fun _ -> Policy.Priority { levels })
      spec
  in
  let _ = Runner.run system ~driver ~load_tps:trace.rate_tps ~horizon () in
  let table =
    Table.create
      ~columns:[ "priority level"; "get_task p50 (us)"; "get_task p90 (us)"; "tasks" ]
  in
  for level = 0 to levels - 1 do
    let sampler = Metrics.get_task_delay system.Systems.metrics ~level in
    let cells =
      if Sampler.count sampler = 0 then [ "-"; "-" ]
      else
        [ Exp_common.us (Sampler.percentile sampler 50.0);
          Exp_common.us (Sampler.percentile sampler 90.0) ]
    in
    Table.add_row table
      ((string_of_int (level + 1) :: cells) @ [ string_of_int (Sampler.count sampler) ])
  done;
  Table.print ~title:"Fig 13: get_task() latency by priority level" table
