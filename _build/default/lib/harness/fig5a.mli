(** Figure 5a: throughput vs 99th-percentile scheduling delay with
    500 us tasks, comparing all scheduling alternatives.

    Paper expectation: Draconis holds ~4.7 us p99 until utilization
    exceeds ~90% and stays lowest everywhere; RackSched runs ~3x higher,
    Draconis-DPDK-Server ~20x, R2P2 ~120x (pinned at the task service
    time by node-level blocking), Sparrow ~200x; POSIX-socket systems
    (Sparrow, the socket server) collapse past ~160 ktps. *)

(** [run ?quick ()] prints the table.  [quick] shrinks the load grid and
    horizon (used by tests). *)
val run : ?quick:bool -> unit -> unit
