lib/harness/fig9.ml: Draconis Draconis_baselines Draconis_sim Draconis_stats Draconis_workload Exp_common Google_trace List Printf Runner Sampler Systems Table Time
