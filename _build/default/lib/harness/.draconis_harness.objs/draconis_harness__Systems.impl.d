lib/harness/systems.ml: Array Client Cluster Draconis Draconis_baselines Draconis_p4 Draconis_proto Draconis_sim Engine Metrics Policy Printf Switch_program Task Time
