lib/harness/fig12.mli:
