lib/harness/resource_table.ml: Draconis Draconis_p4 Draconis_sim Draconis_stats Exp_common Layout List Resources Table
