lib/harness/runner.mli: Draconis_proto Draconis_sim Engine Format Rng Systems Time
