lib/harness/scaling.ml: Codec Draconis Draconis_baselines Draconis_p4 Draconis_proto Draconis_sim Draconis_stats Engine List Meter Metrics Printf Systems Table Task Time
