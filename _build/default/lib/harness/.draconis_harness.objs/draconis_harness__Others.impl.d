lib/harness/others.ml: Arrival Dist Draconis Draconis_baselines Draconis_sim Draconis_stats Draconis_workload Engine Exp_common List Printf Rng Runner Synthetic Systems Table Time
