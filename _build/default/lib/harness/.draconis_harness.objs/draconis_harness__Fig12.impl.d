lib/harness/fig12.ml: Draconis Draconis_p4 Draconis_sim Draconis_stats Draconis_workload Google_trace List Metrics Policy Printf Runner Sampler Systems Table Time
