lib/harness/scaling.mli:
