lib/harness/ablations.mli:
