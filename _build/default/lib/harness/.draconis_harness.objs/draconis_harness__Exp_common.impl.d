lib/harness/exp_common.ml: Arrival Draconis_sim Draconis_workload List Printf Runner Synthetic Time
