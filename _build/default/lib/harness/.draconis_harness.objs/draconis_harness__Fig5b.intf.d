lib/harness/fig5b.mli:
