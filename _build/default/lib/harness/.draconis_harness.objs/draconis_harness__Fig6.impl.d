lib/harness/fig6.ml: Draconis_baselines Draconis_sim Draconis_stats Draconis_workload Exp_common List Printf Runner Synthetic Systems Table Time
