lib/harness/fig8.ml: Draconis_stats Draconis_workload Exp_common List Printf Runner Synthetic Systems Table
