lib/harness/runner.ml: Draconis Draconis_proto Draconis_sim Draconis_stats Engine Format Meter Metrics Option Rng Sampler Systems Time
