lib/harness/exp_common.mli: Draconis_sim Draconis_workload Runner Synthetic Time
