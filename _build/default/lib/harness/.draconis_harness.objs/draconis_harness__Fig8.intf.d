lib/harness/fig8.mli:
