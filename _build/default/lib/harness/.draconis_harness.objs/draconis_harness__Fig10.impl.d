lib/harness/fig10.ml: Arrival Dist Draconis Draconis_proto Draconis_sim Draconis_stats Draconis_workload Exp_common List Metrics Policy Printf Rng Runner Sampler Systems Table Task Time
