lib/harness/fig11.mli:
