lib/harness/others.mli:
