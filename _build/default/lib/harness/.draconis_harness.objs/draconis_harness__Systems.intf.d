lib/harness/systems.mli: Cluster Draconis Draconis_baselines Draconis_net Draconis_p4 Draconis_proto Draconis_sim Engine Metrics Policy Task Time Topology
