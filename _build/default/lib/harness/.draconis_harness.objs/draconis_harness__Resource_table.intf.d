lib/harness/resource_table.mli:
