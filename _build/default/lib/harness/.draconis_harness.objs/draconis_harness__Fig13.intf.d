lib/harness/fig13.mli:
