lib/harness/ablations.ml: Cluster Draconis Draconis_baselines Draconis_p4 Draconis_sim Draconis_stats Draconis_workload Exp_common List Printf Runner Switch_program Synthetic Systems Table Time
