lib/harness/fig13.ml: Draconis Draconis_p4 Draconis_sim Draconis_stats Draconis_workload Exp_common Google_trace Metrics Policy Runner Sampler Systems Table Time
