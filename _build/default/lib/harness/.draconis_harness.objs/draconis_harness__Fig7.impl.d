lib/harness/fig7.ml: Draconis_sim Draconis_stats Draconis_workload Exp_common List Printf Runner Synthetic Systems Table Time
