lib/harness/fig5a.mli:
