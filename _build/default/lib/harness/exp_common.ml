open Draconis_sim
open Draconis_workload

let capacity_tps kind ~executors =
  float_of_int executors /. (Synthetic.mean_duration kind /. 1e9)

let loads kind ~executors ~utilizations =
  let capacity = capacity_tps kind ~executors in
  List.map (fun u -> u *. capacity) utilizations

let synthetic_driver kind ~rate_tps ~horizon : Runner.driver =
 fun engine rng ~submit ->
  Arrival.drive engine rng
    (Arrival.uniform_spec ~rate_tps ~duration:(Synthetic.duration kind) ~horizon)
    ~submit

let horizon_for ~rate_tps ?(target_tasks = 25_000) ?(min_horizon = Time.ms 50)
    ?(max_horizon = Time.ms 400) () =
  let ideal = float_of_int target_tasks /. rate_tps *. 1e9 in
  max min_horizon (min max_horizon (int_of_float ideal))

let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3)
let pct f = Printf.sprintf "%.2f%%" (100.0 *. f)
let yn b = if b then "yes" else "no"
