(** Figure 6: throughput vs p99 scheduling delay across the full
    synthetic suite (100/250/500 us fixed, bimodal, trimodal,
    exponential).

    Paper expectation: Draconis holds 4.7-20 us p99 across all six
    workloads; R2P2-3's tail pins at the task service time from
    ~30-40% utilization; RackSched sits a few microseconds above
    Draconis at low load and inflates at high load; the DPDK server
    tracks its CPU queueing. *)

val run : ?quick:bool -> unit -> unit
