open Draconis_p4
open Draconis_stats

(* Structurally place the real register allocation of a (scaled-down)
   switch program onto the profile's stages.  Scaling capacity and
   per-stage SRAM by the same factor preserves placeability and keeps
   allocation cheap. *)
let places_structurally profile ~levels ~entries =
  let scale = 1000 in
  let capacity = max 1 (entries / scale) in
  let engine = Draconis_sim.Engine.create () in
  let policy =
    if levels = 1 then Draconis.Policy.Fcfs else Draconis.Policy.Priority { levels }
  in
  let program =
    Draconis.Switch_program.create ~engine ~policy ~queue_capacity:capacity ()
  in
  let constraints =
    {
      (Layout.of_profile profile) with
      Layout.bits_per_stage = profile.Resources.register_bits_per_stage / scale;
    }
  in
  Layout.fits constraints (Draconis.Switch_program.registers program)

let run ?quick:_ () =
  let table =
    Table.create
      ~columns:
        [ "switch"; "priority levels"; "max tasks/level"; "fits paper config?";
          "places structurally?" ]
  in
  List.iter
    (fun profile ->
      List.iter
        (fun levels ->
          if levels <= Resources.max_priority_levels profile then begin
            let entries = Resources.max_queue_entries profile ~priority_levels:levels in
            (* Paper claims: 164K-task FCFS queue + up to 4 levels on
               Tofino 1; 1M tasks + up to 12 levels on Tofino 2. *)
            let paper_ok =
              match profile.Resources.name with
              | "Tofino 1" ->
                Resources.fits profile ~queue_entries:164_000 ~priority_levels:1
                && Resources.max_priority_levels profile >= 4
              | _ ->
                Resources.fits profile ~queue_entries:1_000_000 ~priority_levels:1
                && Resources.max_priority_levels profile >= 12
            in
            Table.add_row table
              [
                profile.Resources.name;
                string_of_int levels;
                string_of_int entries;
                Exp_common.yn paper_ok;
                Exp_common.yn (places_structurally profile ~levels ~entries);
              ]
          end)
        [ 1; 4; 12 ])
    [ Resources.tofino1; Resources.tofino2 ];
  Table.add_row table
    [ "Tofino 1"; "max"; string_of_int (Resources.max_priority_levels Resources.tofino1);
      "(level capacity)" ];
  Table.add_row table
    [ "Tofino 2"; "max"; string_of_int (Resources.max_priority_levels Resources.tofino2);
      "(level capacity)" ];
  Table.print ~title:"Sec 7: switch resource estimates" table
