(** Figure 10: locality-aware scheduling vs FCFS.

    Three racks, 100 us CPU tasks whose unreplicated input lives on one
    random node; intra-rack remote access costs 20 us, inter-rack
    100 us.  With rack_start_limit = 3 and global_start_limit = 9, the
    paper's locality policy places ~28% of tasks on their data-local
    node and ~39% on the local rack (vs ~10% / ~24% under FCFS), cutting
    the median end-to-end time from ~204 us to ~131 us; FCFS wins again
    past the ~66th percentile, where delaying placement stops paying. *)

val run : ?quick:bool -> unit -> unit
