open Draconis_sim
open Draconis_stats
open Draconis_workload
module CS = Draconis_baselines.Central_server

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations = if quick then [ 0.5 ] else [ 0.3; 0.5; 0.7; 0.85; 0.94 ] in
  let kinds = if quick then [ Synthetic.Fixed_100us ] else Synthetic.all in
  List.iter
    (fun kind ->
      let loads = Exp_common.loads kind ~executors ~utilizations in
      let table =
        Table.create
          ~columns:
            ("system"
            :: List.map (fun u -> Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u))
                 utilizations)
      in
      let systems =
        [
          (fun () -> Systems.draconis spec);
          (fun () -> Systems.racksched spec);
          (fun () -> Systems.r2p2 ~k:3 ~client_timeout:(Time.ms 2) spec);
          (fun () -> Systems.central_server CS.Dpdk spec);
        ]
      in
      List.iter
        (fun make ->
          let name = ref "" in
          let cells =
            List.map
              (fun load ->
                let system = make () in
                name := system.Systems.name;
                let horizon =
                  Exp_common.horizon_for ~rate_tps:load
                    ~target_tasks:(if quick then 4_000 else 20_000)
                    ()
                in
                let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
                let o = Runner.run system ~driver ~load_tps:load ~horizon () in
                Exp_common.us o.sched_p99)
              loads
          in
          Table.add_row table (!name :: cells))
        systems;
      Table.print
        ~title:
          (Printf.sprintf "Fig 6 (%s): p99 scheduling delay vs utilization"
             (Synthetic.name kind))
        table)
    kinds
