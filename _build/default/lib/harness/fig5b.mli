(** Figure 5b: scheduling throughput with a no-op workload.

    Executors retrieve a no-op task, drop it, and immediately request
    the next one; a closed-loop feeder keeps the scheduler's queue
    non-empty.  Paper expectation: Draconis scales linearly with
    executors to ~58M decisions/s at 208 executors; Draconis-DPDK-Server
    caps around ~1 Mtps (52x lower), Sparrow at ~0.5/0.9 Mtps for 1/2
    schedulers, socket-based servers lowest. *)

val run : ?quick:bool -> unit -> unit
