(** Figure 11: system throughput under resource constraints.

    Node groups G1 (resource A), G2 (A+B), G3 (A+B+C); three equal
    phases submit tasks needing A, then B, then C.  Paper expectation:
    all groups run in phase 1; only G2+G3 in phase 2; only G3 in phase
    3 — and because G3 alone cannot absorb the phase-3 load, execution
    runs past the end of submission (the paper's 110 s finish for a 90 s
    workload). *)

val run : ?quick:bool -> unit -> unit
