(** §8.2 scalability projection: "our simulations show that Draconis
    supports clusters of millions of cores when running 500 us tasks".

    The projection combines (a) the per-decision packet cost of each
    scheduler (measured from small closed-loop simulations, exactly the
    methodology the paper describes) with (b) the packet budget of its
    bottleneck — 4.7 Gpps of switch pipeline for Draconis, the single
    CPU for the server baselines — to bound the number of busy
    executors (cores) each can keep fed at a given task duration.

    [run] prints the supported-cores table for task durations from
    10 us to 5 ms, plus a validation row comparing the model's small-
    scale prediction with a measured closed-loop simulation. *)

val run : ?quick:bool -> unit -> unit
