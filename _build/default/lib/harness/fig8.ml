open Draconis_stats
open Draconis_workload

let panel kind ~quick =
  let spec = Systems.default_spec in
  let executors = spec.workers * spec.executors_per_worker in
  let utilizations =
    if quick then [ 0.4; 0.82 ] else [ 0.2; 0.35; 0.5; 0.65; 0.82; 0.93 ]
  in
  let loads = Exp_common.loads kind ~executors ~utilizations in
  (* The paper sets client timeouts to 2x the task time; with JBSQ-3
     stacking up to three deep, a 2x timeout resubmits tasks that are
     merely queued and spirals, so we use 4x — still within the 5-10x
     the paper calls typical. *)
  let timeout = 4 * int_of_float (Synthetic.mean_duration kind) in
  let table =
    Table.create
      ~columns:
        ("system"
        :: List.concat_map
             (fun u ->
               [ Printf.sprintf "p99@%.0f%% (us)" (100.0 *. u);
                 Printf.sprintf "drops@%.0f%%" (100.0 *. u) ])
             utilizations)
  in
  let systems =
    [
      (fun () -> Systems.draconis spec);
      (fun () -> Systems.r2p2 ~k:1 ~client_timeout:timeout spec);
      (fun () -> Systems.r2p2 ~k:3 ~client_timeout:timeout spec);
    ]
  in
  List.iter
    (fun make ->
      let name = ref "" in
      let cells =
        List.concat_map
          (fun load ->
            let system = make () in
            name := system.Systems.name;
            let horizon =
              Exp_common.horizon_for ~rate_tps:load
                ~target_tasks:(if quick then 5_000 else 25_000)
                ()
            in
            let driver = Exp_common.synthetic_driver kind ~rate_tps:load ~horizon in
            let o = Runner.run system ~driver ~load_tps:load ~horizon () in
            [ Exp_common.us o.sched_p99;
              (if o.recirc_drops > 0 then Printf.sprintf "%d!" o.recirc_drops else "0");
            ])
          loads
      in
      Table.add_row table (!name :: cells))
    systems;
  Table.print
    ~title:
      (Printf.sprintf "Fig 8 (%s tasks): JBSQ bound vs p99; '!' marks dropped tasks"
         (Synthetic.name kind))
    table

let run ?(quick = false) () =
  panel Synthetic.Fixed_100us ~quick;
  if not quick then panel Synthetic.Fixed_250us ~quick
