open Draconis_sim
open Draconis_stats
open Draconis
open Draconis_workload

(* The priority policy recirculates every lower-level retrieval, so a
   deployment provisions the loop-back path accordingly (multiple
   recirculation ports on a Tofino); sec 8.7 reports no throughput
   impact. *)
let prio_pipeline =
  {
    Draconis_p4.Pipeline.default_config with
    recirc_slot = Draconis_sim.Time.ns 10;
    recirc_queue_limit = 4096;
  }

let levels = 4
let percentiles = [ 25.0; 50.0; 90.0; 99.0 ]

let trace_spec ~horizon =
  {
    Google_trace.default_spec with
    mean_duration = Time.ms 5;
    (* 160 executors / 5 ms = 32 ktps capacity; run just above it so
       queues build, as the paper's up-sampled trace does. *)
    rate_tps = 33_000.0;
    horizon;
    priority_levels = levels;
  }

let row table ~name sampler =
  let cells =
    if Sampler.count sampler = 0 then List.map (fun _ -> "-") percentiles
    else
      List.map
        (fun p ->
          Printf.sprintf "%.2f" (float_of_int (Sampler.percentile sampler p) /. 1e6))
        percentiles
  in
  Table.add_row table ((name :: cells) @ [ string_of_int (Sampler.count sampler) ])

let run ?(quick = false) () =
  let horizon = if quick then Time.ms 300 else Time.s 2 in
  let spec = Systems.default_spec in
  let table =
    Table.create
      ~columns:
        ("class"
        :: List.map (fun p -> Printf.sprintf "queueing p%.0f (ms)" p) percentiles
        @ [ "tasks" ])
  in
  let driver engine rng ~submit =
    Google_trace.drive engine rng (trace_spec ~horizon) ~submit
  in
  (* Priority-aware run: per-level queueing delays. *)
  let prio =
    Systems.draconis ~pipeline_config:prio_pipeline
      ~policy_of:(fun _ -> Policy.Priority { levels })
      spec
  in
  let _ = Runner.run prio ~driver ~load_tps:33_000.0 ~horizon ~drain:(2 * horizon) () in
  for level = 0 to levels - 1 do
    row table
      ~name:(Printf.sprintf "priority %d" (level + 1))
      (Metrics.queueing_delay prio.Systems.metrics ~level)
  done;
  (* Priority-unaware FCFS on the same workload. *)
  let fcfs = Systems.draconis ~policy_of:(fun _ -> Policy.Fcfs) spec in
  let _ = Runner.run fcfs ~driver ~load_tps:33_000.0 ~horizon ~drain:(2 * horizon) () in
  row table ~name:"FCFS (all)" (Metrics.queueing_delay fcfs.Systems.metrics ~level:0);
  Table.print
    ~title:"Fig 12: queueing delay by priority level, Google trace (5ms mean)"
    table
