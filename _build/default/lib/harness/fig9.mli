(** Figure 9: scheduling-delay CDF on the (synthetic) Google cluster
    trace, 500 us mean task duration, bursty job arrivals.

    Paper expectation: Draconis' median is ~4.2 us, the best of all
    systems; R2P2-5 is the best R2P2 variant (~5.2 us median, 20-200%
    worse at the tail), with R2P2-3/7/9 clearly worse (60-160 us
    medians); RackSched's median is ~40% above Draconis; the DPDK
    server's median is orders of magnitude higher (it cannot absorb the
    trace's bursts). *)

val run : ?quick:bool -> unit -> unit
