(** Figure 13: get_task() latency across priority levels.

    Each lower priority level costs one more recirculation when higher
    queues are empty.  Paper expectation: median and 90th-percentile
    get_task() latencies differ by only 1-2 us between levels — the
    recirculation overhead of the priority policy is negligible. *)

val run : ?quick:bool -> unit -> unit
