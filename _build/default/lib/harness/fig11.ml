open Draconis_sim
open Draconis_stats
open Draconis_proto
open Draconis
open Draconis_workload

let resource_a = 1
let resource_b = 2
let resource_c = 4

(* G1 = nodes 0-3 (A), G2 = nodes 4-6 (A+B), G3 = nodes 7-9 (A+B+C). *)
let group_of_node node = if node <= 3 then 0 else if node <= 6 then 1 else 2

let rsrc_of_node node =
  match group_of_node node with
  | 0 -> resource_a
  | 1 -> resource_a lor resource_b
  | _ -> resource_a lor resource_b lor resource_c

let run ?(quick = false) () =
  let spec = Systems.default_spec in
  (* Scaled from the paper's 3 x 30 s to 3 x 1 s (0.5 s in quick mode);
     250 us tasks at 280 ktps leave G3 (48 executors, 192 ktps capacity)
     overloaded in phase 3. *)
  let phase = if quick then Time.ms 300 else Time.s 1 in
  let rate = 280_000.0 in
  let horizon = 3 * phase in
  let cluster, system =
    Systems.draconis_cluster
      ~policy_of:(fun _ -> Policy.Resource_aware { max_swaps = 4 })
      ~rsrc_of_node
      ~noop_retry:(Time.us 20)
      ~pipeline_config:
        {
          Draconis_p4.Pipeline.default_config with
          (* Constraint churn leans on the loop-back path; provision it
             like a Tofino with several recirculation ports. *)
          recirc_slot = Time.ns 10;
          recirc_queue_limit = 4096;
        }
      spec
  in
  let driver engine rng ~submit =
    Arrival.drive engine rng
      {
        (Arrival.uniform_spec ~rate_tps:rate
           ~duration:(Dist.constant (Time.us 250))
           ~horizon)
        with
        tprops_of =
          (fun _ ->
            let t = Engine.now engine in
            if t < phase then Task.Resources resource_a
            else if t < 2 * phase then Task.Resources resource_b
            else Task.Resources resource_c);
      }
      ~submit
  in
  (* Sample per-group executed-task counts on a fixed grid. *)
  let bucket = phase / 4 in
  let samples = ref [] in
  let prev = Array.make 3 0 in
  let sample () =
    let now = Array.make 3 0 in
    Array.iter
      (fun worker ->
        let g = group_of_node (Worker.node worker) in
        now.(g) <- now.(g) + Worker.tasks_executed worker)
      (Cluster.workers cluster);
    let delta = Array.mapi (fun g n -> n - prev.(g)) now in
    Array.blit now 0 prev 0 3;
    samples := (Engine.now (Cluster.engine cluster), delta) :: !samples
  in
  Engine.every (Cluster.engine cluster) ~interval:bucket ~until:(horizon + (2 * phase))
    (fun () -> sample ());
  let o = Runner.run system ~driver ~load_tps:rate ~horizon ~drain:(3 * phase) () in
  let table =
    Table.create
      ~columns:
        [ "t (s)"; "G1 ktps/node (A)"; "G2 ktps/node (A+B)"; "G3 ktps/node (A+B+C)" ]
  in
  let nodes_per_group = [| 4.; 3.; 3. |] in
  List.iter
    (fun (t, delta) ->
      let cells =
        Array.to_list
          (Array.mapi
             (fun g d ->
               Printf.sprintf "%.1f"
                 (float_of_int d /. Time.to_s bucket /. nodes_per_group.(g) /. 1e3))
             delta)
      in
      Table.add_row table (Printf.sprintf "%.2f" (Time.to_s t) :: cells))
    (List.rev !samples);
  Table.print
    ~title:
      (Printf.sprintf
         "Fig 11: per-node throughput under resource constraints (phases A|B|C of %.1fs; completed %d/%d, drained=%s)"
         (Time.to_s phase) o.completed o.submitted (Exp_common.yn o.drained))
    table
