open Draconis_sim
open Draconis_stats
open Draconis_proto
open Draconis
open Draconis_workload

let percentiles = [ 25.0; 50.0; 66.0; 90.0; 99.0 ]

let locality_driver ~workers ~rate_tps ~horizon : Runner.driver =
 fun engine rng ~submit ->
  Arrival.drive engine rng
    {
      (Arrival.uniform_spec ~rate_tps ~duration:(Dist.constant (Time.us 100)) ~horizon) with
      fn_id = Task.Fn.data_task;
      tprops_of = (fun rng -> Task.Locality [ Rng.int rng workers ]);
    }
    ~submit

let one_policy ~name ~policy_of ~rate ~horizon table =
  let spec = Systems.default_spec in
  let system = Systems.draconis ~policy_of ~racks:3 spec in
  let driver = locality_driver ~workers:spec.workers ~rate_tps:rate ~horizon in
  let _o = Runner.run system ~driver ~load_tps:rate ~horizon () in
  let metrics = system.Systems.metrics in
  let placement = Metrics.placement metrics in
  let total =
    max 1 (placement.Metrics.local + placement.Metrics.same_rack + placement.Metrics.remote)
  in
  let pct n = Printf.sprintf "%.1f%%" (100.0 *. float_of_int n /. float_of_int total) in
  let e2e = Metrics.end_to_end_delay metrics in
  Table.add_row table
    (name
     :: pct placement.Metrics.local
     :: pct placement.Metrics.same_rack
     :: pct placement.Metrics.remote
     :: List.map
          (fun p ->
            if Sampler.count e2e = 0 then "-"
            else Exp_common.us (Sampler.percentile e2e p))
          percentiles)

let run ?(quick = false) () =
  let rate = 400_000.0 in
  let horizon = if quick then Time.ms 40 else Time.ms 150 in
  let table =
    Table.create
      ~columns:
        ([ "policy"; "local"; "same rack"; "other rack" ]
        @ List.map (fun p -> Printf.sprintf "e2e p%.0f (us)" p) percentiles)
  in
  one_policy ~name:"Draconis-Locality"
    ~policy_of:(fun topology ->
      Policy.Locality_aware
        { rack_start_limit = 3; global_start_limit = 9; topology })
    ~rate ~horizon table;
  one_policy ~name:"Draconis-FCFS" ~policy_of:(fun _ -> Policy.Fcfs) ~rate ~horizon
    table;
  Table.print
    ~title:
      "Fig 10: locality-aware vs FCFS (100us data tasks, 3 racks, limits 3/9): placement mix and end-to-end delay"
    table
