(** Synthetic stand-in for the accelerated Google 2011 cluster trace
    (paper §8.4, §8.6).

    The real trace is proprietary-scale data the paper samples and
    accelerates onto a 12-node cluster; its properties that matter to
    the evaluation are (a) {e bursty} arrivals — jobs arrive in clumps
    and may carry hundreds of tasks, (b) {e heavy-tailed} task durations
    around a target mean (they use 500 us and 5 ms versions), and
    (c) 12 {e priority} levels with a skewed population that the paper
    maps onto 4 switch queues, yielding 1.2% / 1.7% / 64.6% / 32.2% of
    tasks at levels 1-4.  This generator reproduces those three
    properties statistically: lognormal durations rescaled to the target
    mean, jobs of geometric size with a Pareto burst tail, and the
    paper's exact priority mix. *)

open Draconis_sim
open Draconis_proto

type spec = {
  mean_duration : Time.t;  (** 500 us or 5 ms in the paper *)
  rate_tps : float;  (** aggregate task rate *)
  horizon : Time.t;
  priority_levels : int;  (** 0 = no priorities (FCFS runs) *)
  sigma : float;  (** lognormal shape; ~1.3 matches trace skew *)
  mean_job_size : float;  (** mean tasks per job *)
  burst_fraction : float;  (** fraction of jobs that are large bursts *)
  burst_scale : int;  (** minimum size of a burst job *)
}

(** 500 us mean, 1.3 sigma, mean job size 8, 2% bursts of >= 100 tasks,
    no priorities. *)
val default_spec : spec

(** The paper's mapped priority population for levels 1..4. *)
val priority_mix : float array

(** [job_size rng spec] samples a job's task count (>= 1). *)
val job_size : Rng.t -> spec -> int

(** [task_duration rng spec] samples a duration with the spec's mean. *)
val task_duration : Rng.t -> spec -> Time.t

(** [priority rng spec] samples a priority level in [1..levels]
    following {!priority_mix} (collapsed onto [priority_levels]); raises
    if [priority_levels = 0]. *)
val priority : Rng.t -> spec -> int

(** [drive engine rng spec ~submit] schedules bursty job submissions. *)
val drive : Engine.t -> Rng.t -> spec -> submit:(Task.t list -> unit) -> unit
