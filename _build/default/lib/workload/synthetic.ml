open Draconis_sim

type kind =
  | Fixed_100us
  | Fixed_250us
  | Fixed_500us
  | Bimodal
  | Trimodal
  | Exponential_250us

let all =
  [ Fixed_100us; Fixed_250us; Fixed_500us; Bimodal; Trimodal; Exponential_250us ]

let name = function
  | Fixed_100us -> "100us"
  | Fixed_250us -> "250us"
  | Fixed_500us -> "500us"
  | Bimodal -> "bimodal"
  | Trimodal -> "trimodal"
  | Exponential_250us -> "exp-250us"

let of_name s =
  List.find_opt (fun k -> String.equal (name k) s) all

let duration = function
  | Fixed_100us -> Dist.constant (Time.us 100)
  | Fixed_250us -> Dist.constant (Time.us 250)
  | Fixed_500us -> Dist.constant (Time.us 500)
  | Bimodal -> Dist.bimodal (Time.us 100, 0.5) (Time.us 500)
  | Trimodal ->
    Dist.choice
      [ (Time.us 100, 1.0 /. 3.0); (Time.us 250, 1.0 /. 3.0); (Time.us 500, 1.0 /. 3.0) ]
  | Exponential_250us -> Dist.exponential ~mean:(Time.us 250)

let mean_duration = function
  | Fixed_100us -> 100_000.0
  | Fixed_250us -> 250_000.0
  | Fixed_500us -> 500_000.0
  | Bimodal -> 300_000.0
  | Trimodal -> 283_333.3
  | Exponential_250us -> 250_000.0
