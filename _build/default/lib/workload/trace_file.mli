(** Task-trace files: record and replay workloads.

    A trace is a CSV of job submissions — one line per task:

    {v arrival_ns,job,task,duration_ns,priority,locality v}

    where [priority] is 0 for untagged tasks and [locality] is a
    ['/']-separated node list (empty for none).  Tasks sharing a [job]
    value and arrival time are submitted as one batch.  This lets users
    replay real cluster traces through any of the schedulers, and lets
    experiments be recorded once and re-run bit-for-bit. *)

open Draconis_sim
open Draconis_proto

(** One job: an arrival instant and its batch of tasks. *)
type job = { arrival : Time.t; tasks : Task.t list }

type t = job list

(** [generate rng spec] materializes a {!Google_trace} workload as a
    concrete trace (instead of driving it live). *)
val generate : Rng.t -> Google_trace.spec -> t

(** Total tasks in the trace. *)
val task_count : t -> int

(** [save t ~path] / [load ~path] round-trip the CSV format.
    @raise Sys_error on I/O failure; [load] raises [Failure] on a
    malformed line (with its line number). *)
val save : t -> path:string -> unit

val load : path:string -> t

(** [drive engine t ~submit] schedules every job of the trace. *)
val drive : Engine.t -> t -> submit:(Task.t list -> unit) -> unit

(** [to_string] / [of_string]: the CSV codec itself (tests, piping). *)
val to_string : t -> string

val of_string : string -> t
