open Draconis_sim
open Draconis_proto

type spec = {
  rate_tps : float;
  batch : int;
  duration : Dist.t;
  fn_id : int;
  tprops_of : Rng.t -> Task.tprops;
  horizon : Time.t;
}

let uniform_spec ~rate_tps ~duration ~horizon =
  {
    rate_tps;
    batch = 1;
    duration;
    fn_id = Task.Fn.busy_loop;
    tprops_of = (fun _ -> Task.No_props);
    horizon;
  }

let make_job rng spec =
  List.init spec.batch (fun tid ->
      Task.make ~uid:0 ~jid:0 ~tid ~tprops:(spec.tprops_of rng) ~fn_id:spec.fn_id
        ~fn_par:(spec.duration rng) ())

let drive engine rng spec ~submit =
  if spec.rate_tps <= 0.0 then invalid_arg "Arrival.drive: rate must be positive";
  if spec.batch < 1 then invalid_arg "Arrival.drive: batch must be >= 1";
  let job_rate = spec.rate_tps /. float_of_int spec.batch in
  let mean_gap_ns = 1e9 /. job_rate in
  let interarrival () =
    let u = 1.0 -. Rng.float rng in
    max 1 (int_of_float (Float.round (-.mean_gap_ns *. log u)))
  in
  let rec arrive () =
    if Engine.now engine <= spec.horizon then begin
      submit (make_job rng spec);
      ignore (Engine.schedule engine ~after:(interarrival ()) arrive)
    end
  in
  ignore (Engine.schedule engine ~after:(interarrival ()) arrive)

let expected_tasks spec = spec.rate_tps *. Time.to_s spec.horizon
