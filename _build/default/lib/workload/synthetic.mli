(** The paper's synthetic workload suite (§8, Fig. 6).

    Six task-duration distributions: fixed 100 / 250 / 500 us, a bimodal
    mix (50% 100 us + 50% 500 us), a trimodal mix (1/3 each of 100, 250,
    500 us), and an exponential with 250 us mean. *)

open Draconis_sim

type kind =
  | Fixed_100us
  | Fixed_250us
  | Fixed_500us
  | Bimodal  (** 50% 100 us, 50% 500 us *)
  | Trimodal  (** 33.3% each of 100 / 250 / 500 us *)
  | Exponential_250us

val all : kind list
val name : kind -> string
val of_name : string -> kind option

(** Duration distribution of a workload. *)
val duration : kind -> Dist.t

(** Exact mean duration (ns), used to convert load to utilization. *)
val mean_duration : kind -> float
