lib/workload/google_trace.ml: Array Dist Draconis_proto Draconis_sim Engine Float List Rng Task Time
