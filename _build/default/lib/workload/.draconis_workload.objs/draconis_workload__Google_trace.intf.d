lib/workload/google_trace.mli: Draconis_proto Draconis_sim Engine Rng Task Time
