lib/workload/arrival.mli: Dist Draconis_proto Draconis_sim Engine Rng Task Time
