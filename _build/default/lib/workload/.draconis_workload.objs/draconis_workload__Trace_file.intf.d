lib/workload/trace_file.mli: Draconis_proto Draconis_sim Engine Google_trace Rng Task Time
