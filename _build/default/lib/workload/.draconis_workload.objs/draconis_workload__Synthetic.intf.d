lib/workload/synthetic.mli: Dist Draconis_sim
