lib/workload/synthetic.ml: Dist Draconis_sim List String Time
