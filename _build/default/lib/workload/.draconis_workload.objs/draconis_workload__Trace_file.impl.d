lib/workload/trace_file.ml: Buffer Draconis_proto Draconis_sim Engine Fun Google_trace Hashtbl List Printf String Task Time
