lib/workload/arrival.ml: Dist Draconis_proto Draconis_sim Engine Float List Rng Task Time
