open Draconis_sim
open Draconis_proto

type spec = {
  mean_duration : Time.t;
  rate_tps : float;
  horizon : Time.t;
  priority_levels : int;
  sigma : float;
  mean_job_size : float;
  burst_fraction : float;
  burst_scale : int;
}

let default_spec =
  {
    mean_duration = Time.us 500;
    rate_tps = 100_000.0;
    horizon = Time.s 1;
    priority_levels = 0;
    sigma = 1.3;
    mean_job_size = 8.0;
    burst_fraction = 0.02;
    burst_scale = 100;
  }

let priority_mix = [| 0.012; 0.017; 0.646; 0.322 |]

let geometric rng ~mean =
  (* Geometric on {1, 2, ...} with the given mean. *)
  if mean <= 1.0 then 1
  else begin
    let p = 1.0 /. mean in
    let u = 1.0 -. Rng.float rng in
    max 1 (int_of_float (Float.round (log u /. log (1.0 -. p))))
  end

let job_size rng spec =
  if Rng.float rng < spec.burst_fraction then
    spec.burst_scale + geometric rng ~mean:(float_of_int spec.burst_scale)
  else geometric rng ~mean:spec.mean_job_size

let task_duration rng spec =
  (* Lognormal rescaled so its mean is exactly [mean_duration]:
     mu = ln(mean) - sigma^2 / 2. *)
  let mu = log (float_of_int spec.mean_duration) -. (spec.sigma ** 2.0 /. 2.0) in
  max 1 (Dist.lognormal ~mu ~sigma:spec.sigma rng)

let priority rng spec =
  if spec.priority_levels < 1 then
    invalid_arg "Google_trace.priority: no priority levels configured";
  let u = Rng.float rng in
  let rec pick level acc =
    if level >= Array.length priority_mix then Array.length priority_mix
    else begin
      let acc = acc +. priority_mix.(level) in
      if u < acc then level + 1 else pick (level + 1) acc
    end
  in
  min (pick 0 0.0) spec.priority_levels

let mean_tasks_per_job spec =
  ((1.0 -. spec.burst_fraction) *. spec.mean_job_size)
  +. (spec.burst_fraction *. 2.0 *. float_of_int spec.burst_scale)

let make_job rng spec =
  let size = job_size rng spec in
  List.init size (fun tid ->
      let tprops =
        if spec.priority_levels >= 1 then Task.Priority (priority rng spec)
        else Task.No_props
      in
      Task.make ~uid:0 ~jid:0 ~tid ~tprops ~fn_id:Task.Fn.busy_loop
        ~fn_par:(task_duration rng spec) ())

let drive engine rng spec ~submit =
  if spec.rate_tps <= 0.0 then invalid_arg "Google_trace.drive: rate must be positive";
  let job_rate = spec.rate_tps /. mean_tasks_per_job spec in
  let mean_gap_ns = 1e9 /. job_rate in
  let interarrival () =
    let u = 1.0 -. Rng.float rng in
    max 1 (int_of_float (Float.round (-.mean_gap_ns *. log u)))
  in
  let rec arrive () =
    if Engine.now engine <= spec.horizon then begin
      submit (make_job rng spec);
      ignore (Engine.schedule engine ~after:(interarrival ()) arrive)
    end
  in
  ignore (Engine.schedule engine ~after:(interarrival ()) arrive)
