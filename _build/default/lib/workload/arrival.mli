(** Open-loop workload driver.

    Generates Poisson job arrivals at a target aggregate task rate and
    hands each job (a batch of tasks) to a submit callback — typically a
    {!Draconis.Client.submit_job} closure.  The caller assigns task ids;
    tasks produced here carry placeholder ids.

    The driver is open-loop: arrivals do not wait for completions, so an
    overloaded scheduler accumulates queueing exactly as the paper's
    load sweeps do. *)

open Draconis_sim
open Draconis_proto

type spec = {
  rate_tps : float;  (** aggregate task arrival rate (tasks/second) *)
  batch : int;  (** tasks per job (independent tasks, §3.1) *)
  duration : Dist.t;  (** per-task service-time distribution *)
  fn_id : int;  (** function executed (usually [Task.Fn.busy_loop]) *)
  tprops_of : Rng.t -> Task.tprops;  (** per-task policy properties *)
  horizon : Time.t;  (** stop submitting after this instant *)
}

(** [uniform_spec ~rate_tps ~duration ~horizon] — batch 1, busy-loop
    tasks, no properties. *)
val uniform_spec : rate_tps:float -> duration:Dist.t -> horizon:Time.t -> spec

(** [drive engine rng spec ~submit] schedules all submissions on
    [engine] (they fire as the simulation runs).  Returns nothing;
    the expected number of submitted tasks is [rate_tps x horizon]. *)
val drive :
  Engine.t -> Rng.t -> spec -> submit:(Task.t list -> unit) -> unit

(** [expected_tasks spec] is the mean number of tasks the spec submits. *)
val expected_tasks : spec -> float
