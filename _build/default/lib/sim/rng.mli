(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulation draws from an [Rng.t]
    seeded explicitly, so a run is a pure function of its configuration:
    re-running an experiment reproduces it bit-for-bit.  [split] derives
    an independent stream, used to give each client/executor its own
    stream so adding a component does not perturb the draws of others. *)

type t

val create : seed:int -> t

(** [split t] derives a new independent generator from [t]'s stream. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit output. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool
