lib/sim/rng.mli:
