lib/sim/dist.mli: Rng Time
