lib/sim/heap.mli:
