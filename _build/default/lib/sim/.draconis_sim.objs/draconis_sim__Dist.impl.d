lib/sim/dist.ml: Float Rng Time
