lib/sim/trace.ml: Array Format Lazy List Time
