(** Simulated time.

    All simulation timestamps and durations are integer nanoseconds.
    Helpers convert to and from the microsecond/millisecond/second units
    the paper reports in. *)

type t = int

val zero : t

val ns : int -> t
val us : int -> t
val ms : int -> t
val s : int -> t

(** Fractional constructors, rounded to the nearest nanosecond. *)
val us_f : float -> t
val ms_f : float -> t
val s_f : float -> t

val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

(** [pp] prints a duration with an adaptive unit (ns/us/ms/s). *)
val pp : Format.formatter -> t -> unit
