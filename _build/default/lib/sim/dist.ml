type t = Rng.t -> Time.t

let constant d _rng = d

let uniform ~lo ~hi rng =
  if hi < lo then invalid_arg "Dist.uniform: hi < lo";
  lo + Rng.int rng (hi - lo + 1)

let exponential ~mean rng =
  let u = 1.0 -. Rng.float rng in
  (* u in (0,1]; -mean * ln(u) is Exp(1/mean). *)
  int_of_float (Float.round (-.float_of_int mean *. log u))

let bimodal (d1, p1) d2 rng = if Rng.float rng < p1 then d1 else d2

let choice cases rng =
  let u = Rng.float rng in
  let rec pick acc = function
    | [] -> invalid_arg "Dist.choice: empty case list"
    | [ (d, _) ] -> d
    | (d, p) :: rest -> if u < acc +. p then d else pick (acc +. p) rest
  in
  pick 0.0 cases

let lognormal ~mu ~sigma rng =
  (* Box-Muller transform. *)
  let u1 = 1.0 -. Rng.float rng and u2 = Rng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  max 0 (int_of_float (Float.round (exp (mu +. (sigma *. z)))))

let pareto ~scale ~alpha rng =
  let u = 1.0 -. Rng.float rng in
  max scale (int_of_float (Float.round (float_of_int scale /. (u ** (1.0 /. alpha)))))

let scale f d rng = max 0 (int_of_float (Float.round (f *. float_of_int (d rng))))

let mean_estimate d rng ~n =
  if n <= 0 then invalid_arg "Dist.mean_estimate: n must be positive";
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. float_of_int (d rng)
  done;
  !total /. float_of_int n
