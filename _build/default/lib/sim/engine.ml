type handle = { mutable dead : bool; fn : unit -> unit }

type key = { at : Time.t; seq : int }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable executed : int;
  queue : (key, handle) Heap.t;
}

let compare_key a b =
  let c = compare a.at b.at in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  { clock = 0; seq = 0; executed = 0; queue = Heap.create ~compare:compare_key () }

let now t = t.clock
let executed t = t.executed
let pending t = Heap.length t.queue

let schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d is before now=%d" at t.clock);
  let h = { dead = false; fn = f } in
  t.seq <- t.seq + 1;
  Heap.push t.queue { at; seq = t.seq } h;
  h

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + after) f

let cancel h = h.dead <- true
let cancelled h = h.dead

let step t =
  match Heap.pop t.queue with
  | exception Not_found -> false
  | key, h ->
    t.clock <- key.at;
    if not h.dead then begin
      t.executed <- t.executed + 1;
      h.fn ()
    end;
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Heap.peek t.queue with
    | exception Not_found -> continue := false
    | key, _ ->
      (match until with
      | Some limit when key.at > limit ->
        t.clock <- max t.clock limit;
        continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done;
  match until with
  | Some limit when Heap.is_empty t.queue && t.clock < limit -> t.clock <- limit
  | _ -> ()

let every t ~interval ~until f =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let rec tick () =
    if t.clock <= until then begin
      f ();
      let next = t.clock + interval in
      if next <= until then ignore (schedule_at t ~at:next tick)
    end
  in
  ignore (schedule t ~after:interval tick)
