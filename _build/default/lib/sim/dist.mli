(** Random-variate distributions used by workload generators.

    A distribution is a thunk from an {!Rng.t} to a sample.  Duration
    distributions sample {!Time.t} values; all are guaranteed
    non-negative. *)

type t = Rng.t -> Time.t

(** [constant d] always samples [d]. *)
val constant : Time.t -> t

(** [uniform ~lo ~hi] samples uniformly from [\[lo, hi\]]. *)
val uniform : lo:Time.t -> hi:Time.t -> t

(** [exponential ~mean] samples an exponential with the given mean. *)
val exponential : mean:Time.t -> t

(** [bimodal (d1, p1) d2] samples [d1] with probability [p1], else [d2]. *)
val bimodal : Time.t * float -> Time.t -> t

(** [choice cases] samples from a finite discrete distribution; weights
    must sum to approximately 1.0 (the final case absorbs rounding). *)
val choice : (Time.t * float) list -> t

(** [lognormal ~mu ~sigma] samples exp(N(mu, sigma^2)) nanoseconds. *)
val lognormal : mu:float -> sigma:float -> t

(** [pareto ~scale ~alpha] samples a Pareto with minimum [scale] and
    shape [alpha] (heavy-tailed for alpha <= 2). *)
val pareto : scale:Time.t -> alpha:float -> t

(** [scale f d] multiplies every sample of [d] by [f]. *)
val scale : float -> t -> t

(** [mean_estimate d rng ~n] is the empirical mean of [n] samples; used
    by tests and by workload calibration. *)
val mean_estimate : t -> Rng.t -> n:int -> float
