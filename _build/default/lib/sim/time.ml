type t = int

let zero = 0
let ns t = t
let us t = t * 1_000
let ms t = t * 1_000_000
let s t = t * 1_000_000_000
let us_f f = int_of_float (Float.round (f *. 1e3))
let ms_f f = int_of_float (Float.round (f *. 1e6))
let s_f f = int_of_float (Float.round (f *. 1e9))
let to_us t = float_of_int t /. 1e3
let to_ms t = float_of_int t /. 1e6
let to_s t = float_of_int t /. 1e9

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dns" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fus" (to_us t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_s t)
