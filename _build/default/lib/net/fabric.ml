open Draconis_sim

type 'msg envelope = {
  src : Addr.t;
  dst : Addr.t;
  sent_at : Time.t;
  payload : 'msg;
}

type config = {
  host_to_switch : Time.t;
  jitter : Time.t;
  loss : float;
  detour_fraction : float;
  detour_extra : Time.t;
}

let default_config =
  {
    host_to_switch = Time.ns 1_500;
    jitter = Time.ns 150;
    loss = 0.0;
    detour_fraction = 0.0;
    detour_extra = 0;
  }

type 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  handlers : (Addr.t, 'msg envelope -> unit) Hashtbl.t;
  mutable delivered : int;
  mutable lost : int;
  mutable undeliverable : int;
}

let create ?(config = default_config) engine rng =
  if config.loss < 0.0 || config.loss > 1.0 then
    invalid_arg "Fabric.create: loss must be in [0,1]";
  if config.detour_fraction < 0.0 || config.detour_fraction > 1.0 then
    invalid_arg "Fabric.create: detour_fraction must be in [0,1]";
  { engine; rng; config; handlers = Hashtbl.create 64;
    delivered = 0; lost = 0; undeliverable = 0 }

let engine t = t.engine
let register t addr handler = Hashtbl.replace t.handlers addr handler

(* Deterministic membership in the detour set: hash the host id into
   [0,1) and compare with the configured fraction. *)
let detoured t host =
  t.config.detour_fraction > 0.0
  &&
  let h = host * 0x9E3779B97F4A7C1 in
  let h = (h lxor (h lsr 31)) land 0xFFFFFF in
  float_of_int h /. float_of_int 0x1000000 < t.config.detour_fraction

let detour_of t addr =
  match addr with
  | Addr.Host h when detoured t h -> t.config.detour_extra
  | Addr.Host _ | Addr.Switch -> 0

let base_latency t src dst =
  (* Host-to-host traffic traverses the switch: two hops.  Detoured
     hosts pay the longer path to the ancestor switch on each hop that
     touches them (§3.2). *)
  let detours = detour_of t src + detour_of t dst in
  (match (src, dst) with
  | Addr.Switch, Addr.Switch -> 0
  | Addr.Switch, Addr.Host _ | Addr.Host _, Addr.Switch -> t.config.host_to_switch
  | Addr.Host _, Addr.Host _ -> 2 * t.config.host_to_switch)
  + detours

let latency_sample t src dst =
  let jitter = if t.config.jitter > 0 then Rng.int t.rng (t.config.jitter + 1) else 0 in
  base_latency t src dst + jitter

let send t ~src ~dst payload =
  if Addr.equal src dst then invalid_arg "Fabric.send: src = dst";
  Trace.emit ~at:(Engine.now t.engine) Trace.Fabric
    (lazy (Printf.sprintf "send %s -> %s" (Addr.to_string src) (Addr.to_string dst)));
  if t.config.loss > 0.0 && Rng.float t.rng < t.config.loss then t.lost <- t.lost + 1
  else begin
    let env = { src; dst; sent_at = Engine.now t.engine; payload } in
    let delay = latency_sample t src dst in
    ignore
      (Engine.schedule t.engine ~after:delay (fun () ->
           match Hashtbl.find_opt t.handlers dst with
           | Some handler ->
             t.delivered <- t.delivered + 1;
             handler env
           | None -> t.undeliverable <- t.undeliverable + 1))
  end

let delivered t = t.delivered
let lost t = t.lost
let undeliverable t = t.undeliverable
