lib/net/cpu.ml: Draconis_sim Engine Time
