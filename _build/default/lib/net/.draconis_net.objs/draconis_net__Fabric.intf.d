lib/net/fabric.mli: Addr Draconis_sim Engine Rng Time
