lib/net/fabric.ml: Addr Draconis_sim Engine Hashtbl Printf Rng Time Trace
