lib/net/topology.mli:
