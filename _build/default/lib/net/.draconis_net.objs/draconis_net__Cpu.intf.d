lib/net/cpu.mli: Draconis_sim Engine Time
