type t = Switch | Host of int

let equal a b =
  match (a, b) with
  | Switch, Switch -> true
  | Host x, Host y -> x = y
  | Switch, Host _ | Host _, Switch -> false

let compare a b =
  match (a, b) with
  | Switch, Switch -> 0
  | Switch, Host _ -> -1
  | Host _, Switch -> 1
  | Host x, Host y -> compare x y

let pp fmt = function
  | Switch -> Format.pp_print_string fmt "switch"
  | Host i -> Format.fprintf fmt "host-%d" i

let to_string a = Format.asprintf "%a" pp a

let host_id = function
  | Host i -> i
  | Switch -> invalid_arg "Addr.host_id: switch has no host id"

let is_switch = function Switch -> true | Host _ -> false
