(** Network addresses in the simulated cluster.

    The cluster consists of hosts (clients, worker nodes, server-based
    schedulers) and a single programmable switch through which all
    scheduling traffic flows (paper §3.2: the controller forwards all
    job-submission traffic through one switch). *)

type t =
  | Switch  (** the programmable switch running the scheduler *)
  | Host of int  (** a server identified by a dense integer id *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [host_id a] is the id of a host address.
    @raise Invalid_argument on [Switch]. *)
val host_id : t -> int

val is_switch : t -> bool
