type t = { nodes : int; racks : int; rack_of_node : int array }

let create ~nodes ~racks =
  if racks < 1 || racks > nodes then
    invalid_arg "Topology.create: need 1 <= racks <= nodes";
  let rack_of_node = Array.init nodes (fun i -> i * racks / nodes) in
  { nodes; racks; rack_of_node }

let nodes t = t.nodes
let racks t = t.racks

let rack_of t host =
  if host < 0 || host >= t.nodes then invalid_arg "Topology.rack_of: bad host";
  t.rack_of_node.(host)

let same_rack t a b = rack_of t a = rack_of t b

let hosts_in_rack t r =
  if r < 0 || r >= t.racks then invalid_arg "Topology.hosts_in_rack: bad rack";
  List.filter (fun h -> t.rack_of_node.(h) = r) (List.init t.nodes Fun.id)
