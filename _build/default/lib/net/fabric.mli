(** Message fabric: latency-modeled, handler-based message delivery.

    A ['msg t] connects endpoints ({!Addr.t}) over the simulated
    engine.  Sending schedules delivery at the destination's registered
    handler after the modeled one-way latency (plus optional uniform
    jitter).  Host-to-host traffic transits the switch, so its latency
    is twice the host-to-switch latency.

    The fabric is reliable by default; [loss] injects i.i.d. packet loss
    for the fault-injection tests.  All randomness comes from the
    [rng] supplied at creation, keeping runs deterministic. *)

open Draconis_sim

type 'msg envelope = {
  src : Addr.t;
  dst : Addr.t;
  sent_at : Time.t;
  payload : 'msg;
}

type 'msg t

type config = {
  host_to_switch : Time.t;  (** one-way host <-> switch latency *)
  jitter : Time.t;  (** uniform extra delay in [\[0, jitter\]] *)
  loss : float;  (** i.i.d. drop probability in [\[0, 1\]] *)
  detour_fraction : float;
      (** multi-rack deployments (paper §3.2) route scheduler traffic
          through a common ancestor switch, lengthening the path for a
          fraction of hosts (Li et al.: ~12%); hosts are assigned to the
          detour set deterministically by id *)
  detour_extra : Time.t;  (** extra one-way latency for detoured hosts *)
}

(** Calibrated default: 1.5 us one-way, 150 ns jitter, no loss, no
    detours (single-rack deployment). *)
val default_config : config

(** [detoured t host] is true when the host's scheduler path takes the
    longer route. *)
val detoured : 'msg t -> int -> bool

val create : ?config:config -> Engine.t -> Rng.t -> 'msg t

val engine : 'msg t -> Engine.t

(** [register t addr handler] installs the delivery handler for [addr].
    Re-registering replaces the previous handler. *)
val register : 'msg t -> Addr.t -> ('msg envelope -> unit) -> unit

(** [send t ~src ~dst payload] delivers to [dst]'s handler after the
    modeled latency.  Messages to an endpoint with no handler are
    counted as [undeliverable] and dropped.
    @raise Invalid_argument if [src] and [dst] are equal. *)
val send : 'msg t -> src:Addr.t -> dst:Addr.t -> 'msg -> unit

(** One-way latency sample between two endpoints (includes jitter). *)
val latency_sample : 'msg t -> Addr.t -> Addr.t -> Time.t

(** Messages delivered so far. *)
val delivered : 'msg t -> int

(** Messages lost to injected loss. *)
val lost : 'msg t -> int

(** Messages dropped for lack of a registered handler. *)
val undeliverable : 'msg t -> int
