(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sec 8) plus micro-benchmarks of the core data structures.

   Usage:
     main.exe                 run everything in paper order
     main.exe fig7 fig8       run selected experiments
     main.exe --quick [...]   smaller grids and horizons
     main.exe --jobs N [...]  worker domains for the experiment grids
                              (default: DRACONIS_JOBS or cores-1)
     main.exe --shards N      worker domains *inside* sharded runs
                              (default: DRACONIS_SHARDS or 1)
     main.exe --seed N        workload seed override (default 1000003);
                              the effective seed lands in the --json header
     main.exe --policy P      restrict the pifo experiment to one
                              discipline (edf:<us> | wfq:<us>:<w,..> |
                              aging:<levels>:<us>); unknown or malformed
                              policies abort (also: DRACONIS_POLICY)
     main.exe --json FILE     write machine-readable results (wall time,
                              events/sec, key percentiles) to FILE
     main.exe --csv DIR       also write every table as CSV under DIR
     main.exe --trace-out F   export a Chrome trace-event timeline
                              (load into Perfetto / chrome://tracing)
     main.exe --metrics-out F export per-run counters/gauges/histograms
                              (.csv extension switches to CSV)
     main.exe --int-out F     enable in-band telemetry stamping and write
                              a draconis-obs/3 metrics export (with the
                              per-run "int" sections) to F — feed it to
                              `draconis-trace int` (also: DRACONIS_INT)
     main.exe --int-budget N  INT header budget, 1..64 stamps per packet
                              (default 4); malformed values abort
     main.exe --probe-interval-us N
                              probe sampling period (default 100us)
     main.exe --max-trace-events N
                              per-run event-buffer bound (default 2^20);
                              overflow is counted, not stored
     main.exe --list          list experiment names *)

open Bechamel
open Toolkit
module H = Draconis_harness

(* -- Bechamel micro-benchmarks ------------------------------------------- *)

let micro_tests () =
  let open Draconis_sim in
  let open Draconis_proto in
  let wheel_test =
    Test.make ~name:"wheel push+pop x100"
      (Staged.stage (fun () ->
           let wheel = Wheel.create () in
           for i = 0 to 99 do
             Wheel.push wheel ((i * 7919) mod 100) i
           done;
           while not (Wheel.is_empty wheel) do
             ignore (Wheel.pop wheel)
           done))
  in
  let int_heap_test =
    Test.make ~name:"int_heap push+pop x100"
      (Staged.stage (fun () ->
           let heap = Int_heap.create () in
           for i = 0 to 99 do
             Int_heap.push heap ((i * 7919) mod 100) i
           done;
           while not (Int_heap.is_empty heap) do
             ignore (Int_heap.pop heap)
           done))
  in
  let engine_test =
    Test.make ~name:"engine schedule+run x100"
      (Staged.stage (fun () ->
           let engine = Engine.create () in
           for i = 1 to 100 do
             ignore (Engine.schedule engine ~after:i (fun () -> ()))
           done;
           Engine.run engine))
  in
  let rng = Rng.create ~seed:1 in
  let rng_test =
    Test.make ~name:"rng bits64" (Staged.stage (fun () -> ignore (Rng.bits64 rng)))
  in
  let tasks =
    List.init 10 (fun tid ->
        Task.make ~uid:1 ~jid:2 ~tid ~fn_id:Task.Fn.busy_loop ~fn_par:100_000 ())
  in
  let msg =
    Message.Job_submission
      { client = Draconis_net.Addr.Host 11; uid = 1; jid = 2; tasks }
  in
  let codec_test =
    Test.make ~name:"codec encode+decode job(10 tasks)"
      (Staged.stage (fun () ->
           match Codec.decode (Codec.encode msg) with
           | Ok _ -> ()
           | Error _ -> assert false))
  in
  let queue = Draconis.Circular_queue.create ~name:"bench" ~capacity:1024 () in
  let entry =
    Draconis.Entry.make
      ~task:(Task.make ~uid:1 ~jid:1 ~tid:1 ~fn_id:1 ~fn_par:100_000 ())
      ~client:(Draconis_net.Addr.Host 11) ()
  in
  let queue_test =
    Test.make ~name:"circular queue enqueue+dequeue"
      (Staged.stage (fun () ->
           let ctx1 = Draconis_p4.Packet_ctx.create () in
           (match Draconis.Circular_queue.enqueue queue ctx1 entry with
           | Draconis.Circular_queue.Enqueued _ -> ()
           | Draconis.Circular_queue.Rejected _ -> assert false);
           let ctx2 = Draconis_p4.Packet_ctx.create () in
           match Draconis.Circular_queue.dequeue queue ctx2 with
           | Draconis.Circular_queue.Dequeued _ -> ()
           | Draconis.Circular_queue.Empty | Draconis.Circular_queue.Repair_pending ->
             assert false))
  in
  let swap_test =
    let swap_queue = Draconis.Circular_queue.create ~name:"bench-swap" ~capacity:64 () in
    (* Keep two pending tasks so the swap always hits a valid slot. *)
    let seed_ctx = Draconis_p4.Packet_ctx.create () in
    (match Draconis.Circular_queue.enqueue swap_queue seed_ctx entry with
    | Draconis.Circular_queue.Enqueued _ -> ()
    | Draconis.Circular_queue.Rejected _ -> assert false);
    Test.make ~name:"circular queue task swap"
      (Staged.stage (fun () ->
           let ctx = Draconis_p4.Packet_ctx.create () in
           match Draconis.Circular_queue.swap swap_queue ctx ~index:0 entry with
           | Draconis.Circular_queue.Swapped _ -> ()
           | Draconis.Circular_queue.Slot_invalid -> assert false))
  in
  let table_lookup_test =
    let table = Draconis_p4.Table.create ~name:"bench" ~default:(-1) () in
    for i = 0 to 255 do
      Draconis_p4.Table.add_exact table ~key:i i
    done;
    let key = ref 0 in
    Test.make ~name:"match-action table lookup"
      (Staged.stage (fun () ->
           key := (!key + 1) land 255;
           ignore (Draconis_p4.Table.lookup table ~key:!key)))
  in
  let trace_emit_test =
    Test.make ~name:"trace emit (disabled)"
      (Staged.stage (fun () ->
           Draconis_sim.Trace.emit ~at:0 Draconis_sim.Trace.Host (lazy "x")))
  in
  [ wheel_test; int_heap_test; engine_test; rng_test; codec_test; queue_test;
    swap_test; table_lookup_test; trace_emit_test ]

let run_micro ?quick:_ () =
  print_endline "\n== Micro-benchmarks (core data structures) ==";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None
      ~stabilize:true ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (x :: _) -> x
            | Some [] | None -> nan
          in
          Printf.printf "%-40s %10.1f ns/op\n%!" name ns)
        analyzed)
    (micro_tests ())

(* -- experiment registry -------------------------------------------------- *)

let experiments : (string * string * (?quick:bool -> unit -> unit)) list =
  [
    ("fig5a", "load vs p99 scheduling delay, all systems, 500us tasks", H.Fig5a.run);
    ("fig5b", "scheduling throughput, no-op workload", H.Fig5b.run);
    ("fig6", "p99 scheduling delay across the synthetic suite", H.Fig6.run);
    ("fig7", "task drops and recirculation, 250us tasks", H.Fig7.run);
    ("fig8", "effect of the JBSQ bound on R2P2", H.Fig8.run);
    ("fig9", "scheduling-delay CDF on the Google trace", H.Fig9.run);
    ("fig10", "locality-aware scheduling vs FCFS", H.Fig10.run);
    ("fig11", "throughput under resource constraints", H.Fig11.run);
    ("fig12", "queueing delay across priority levels", H.Fig12.run);
    ("fig13", "get_task() latency across priority levels", H.Fig13.run);
    ("figf", "fault injection: failover/burst/partition recovery", H.Figf.run);
    ("pifo", "PIFO disciplines (EDF/WFQ/aging) vs circular-queue baselines",
     H.Pifo_exp.run);
    ("int", "in-band telemetry: switch queue depth vs client p99 under load",
     H.Int_exp.run);
    ("resources", "sec 7 switch resource estimates", H.Resource_table.run);
    ("scaling", "sec 8.2 cluster-scale projection", H.Scaling.run);
    ("others", "sec 8 'other schedulers' (Spark native, Firmament)", H.Others.run);
    ("ablations", "design-choice ablations", H.Ablations.run);
    ("engine-bench", "event core: heap vs wheel calendar, alloc/event", H.Engine_bench.run);
    ("shard-sim", "parallel-in-run shard scaling on the sharded cluster model", H.Shard_bench.run);
    ("cluster-shard", "real data path sharded over work-stealing window executors",
     H.Cluster_shard_bench.run);
    ("micro", "bechamel micro-benchmarks", run_micro);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  (* Flags taking a value: --csv DIR, --json FILE, --jobs N, ...  A
     value flag with no value (trailing, or straight into another flag)
     fails fast instead of being silently ignored. *)
  let rec value_of flag = function
    | [ f ] when f = flag ->
      Printf.eprintf "%s requires a value\n" flag;
      exit 1
    | f :: v :: _ when f = flag ->
      if String.length v >= 2 && String.sub v 0 2 = "--" then begin
        Printf.eprintf "%s requires a value, got flag %S\n" flag v;
        exit 1
      end;
      Some v
    | _ :: rest -> value_of flag rest
    | [] -> None
  in
  Draconis_stats.Table.set_csv_dir (value_of "--csv" args);
  let json_path = value_of "--json" args in
  let trace_path = value_of "--trace-out" args in
  let metrics_path = value_of "--metrics-out" args in
  (* DRACONIS_INT first, flags second, so the flags win.  Both paths are
     fail-loud: a malformed value aborts the invocation. *)
  (try Draconis_obs.Int_telemetry.apply_env () with
  | Invalid_argument msg ->
    (* [msg] already carries the DRACONIS_INT prefix. *)
    Printf.eprintf "%s\n" msg;
    exit 1);
  (match value_of "--int-budget" args with
  | None -> ()
  | Some v -> (
    match int_of_string_opt v with
    | None ->
      Printf.eprintf "--int-budget wants an integer, got %S\n" v;
      exit 1
    | Some n -> (
      try Draconis_obs.Int_telemetry.set_budget n with
      | Invalid_argument msg ->
        Printf.eprintf "--int-budget: %s\n" msg;
        exit 1)));
  let int_path = value_of "--int-out" args in
  if int_path <> None then
    Draconis_obs.Int_telemetry.enable ~budget:(Draconis_obs.Int_telemetry.budget ()) ();
  let probe_interval =
    match value_of "--probe-interval-us" args with
    | None -> Draconis_obs.Probe.default_interval
    | Some v -> (
      match int_of_string_opt v with
      | Some us when us >= 1 -> Draconis_sim.Time.us us
      | Some _ | None ->
        Printf.eprintf "--probe-interval-us wants a positive integer, got %S\n" v;
        exit 1)
  in
  let capacity =
    match value_of "--max-trace-events" args with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
        Printf.eprintf "--max-trace-events wants a positive integer, got %S\n" v;
        exit 1)
  in
  if trace_path <> None || metrics_path <> None || int_path <> None then
    Draconis_obs.Sink.enable ~probe_interval ?capacity ();
  (match value_of "--jobs" args with
  | None -> ()
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 1 ->
      (* Clamp to the domain cap instead of aborting, so the --json
         header's [jobs] field always records the *effective* worker
         count the sweep actually ran with. *)
      let effective = min n H.Pool.max_jobs in
      if effective < n then
        Printf.eprintf "--jobs %d exceeds the %d-domain cap; running with %d\n%!"
          n H.Pool.max_jobs effective;
      H.Pool.set_jobs effective
    | Some _ | None ->
      Printf.eprintf "--jobs wants a positive integer, got %S\n" v;
      exit 1));
  (match value_of "--shards" args with
  | None -> ()
  | Some v -> (
    match int_of_string_opt v with
    | Some n when n >= 1 -> H.Shard.set_shards n
    | Some _ | None ->
      Printf.eprintf "--shards wants a positive integer, got %S\n" v;
      exit 1));
  (match value_of "--policy" args with
  | None -> ()
  | Some v -> (
    (* Fail-loud: an unknown discipline or malformed parameters abort
       the invocation instead of silently falling back to a default. *)
    match H.Pifo_exp.set_policy (Draconis.Policy.of_string v) with
    | () -> ()
    | exception Invalid_argument msg ->
      Printf.eprintf "--policy: %s\n" msg;
      exit 1));
  (match value_of "--seed" args with
  | None -> ()
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> H.Runner.set_workload_seed n
    | None ->
      Printf.eprintf "--seed wants an integer, got %S\n" v;
      exit 1));
  let names =
    let rec drop_flags = function
      | ("--csv" | "--json" | "--jobs" | "--shards" | "--seed" | "--policy"
        | "--trace-out" | "--metrics-out" | "--int-out" | "--int-budget"
        | "--probe-interval-us" | "--max-trace-events")
        :: _ :: rest ->
        drop_flags rest
      | a :: rest when String.length a > 1 && a.[0] = '-' -> drop_flags rest
      | a :: rest -> a :: drop_flags rest
      | [] -> []
    in
    drop_flags args
  in
  if List.mem "--list" args then
    List.iter (fun (name, descr, _) -> Printf.printf "%-10s %s\n" name descr) experiments
  else begin
    let selected =
      if names = [] then experiments
      else
        List.map
          (fun name ->
            match List.find_opt (fun (n, _, _) -> n = name) experiments with
            | Some e -> e
            | None ->
              Printf.eprintf "unknown experiment %S (try --list)\n" name;
              exit 1)
          names
    in
    H.Report.reset ();
    (* stderr so stdout stays byte-identical across --jobs settings. *)
    Printf.eprintf "(running with --jobs %d --shards %d)\n%!" (H.Pool.jobs ())
      (H.Shard.shards ());
    List.iter
      (fun (name, descr, run) ->
        Printf.printf "\n#### %s: %s%s\n%!" name descr (if quick then " [quick]" else "");
        let t0 = Unix.gettimeofday () in
        (run : ?quick:bool -> unit -> unit) ~quick ();
        let wall_s = Unix.gettimeofday () -. t0 in
        H.Report.finish_experiment ~name ~wall_s;
        Printf.printf "(%s took %.1fs)\n%!" name wall_s)
      selected;
    (match json_path with
    | None -> ()
    | Some path ->
      (try
         H.Report.write ~path ~jobs:(H.Pool.jobs ()) ~shards:(H.Shard.shards ())
           ~quick
       with
      | Sys_error msg ->
        Printf.eprintf "cannot write --json report: %s\n" msg;
        exit 1);
      Printf.printf "\nwrote %s\n%!" path);
    if trace_path <> None || metrics_path <> None || int_path <> None then begin
      let runs = Draconis_obs.Sink.drain () in
      (match trace_path with
      | None -> ()
      | Some path ->
        Draconis_obs.Chrome_trace.write ~path runs;
        (* Self-check: re-parse the export so a malformed trace fails
           the invocation instead of failing later in Perfetto. *)
        (match Draconis_obs.Json.parse_file path with
        | Ok _ ->
          let events =
            List.fold_left
              (fun acc r -> acc + Draconis_obs.Recorder.event_count r)
              0 runs
          in
          Printf.printf "wrote %s (%d runs, %d events; re-parsed OK)\n%!" path
            (List.length runs) events
        | Error msg ->
          Printf.eprintf "trace export is not valid JSON: %s\n" msg;
          exit 1));
      (match metrics_path with
      | None -> ()
      | Some path ->
        Draconis_obs.Dump.write_metrics ~path runs;
        Printf.printf "wrote %s\n%!" path);
      match int_path with
      | None -> ()
      | Some path ->
        Draconis_obs.Dump.write_metrics ~path runs;
        let with_int =
          List.length
            (List.filter
               (fun r -> Draconis_obs.Recorder.int_telemetry r <> None)
               runs)
        in
        Printf.printf "wrote %s (%d/%d runs carry INT sections)\n%!" path with_int
          (List.length runs)
    end
  end
