type category = Fabric | Pipeline | Queue | Host

let category_name = function
  | Fabric -> "fabric"
  | Pipeline -> "pipeline"
  | Queue -> "queue"
  | Host -> "host"

type record = { at : Time.t; category : category; message : string }

type state = {
  mutable ring : record array;
  mutable size : int;  (* records currently held *)
  mutable next : int;  (* write cursor *)
  mutable total : int;
  mutable on : bool;
}

(* The tracer state is domain-local: every domain (the main one, and
   each Harness.Pool worker) gets its own independent ring and on/off
   flag, so parallel experiment sweeps never race on the buffer.
   Enablement therefore does not cross Domain.spawn — a pooled job that
   wants a capture must enable tracing itself (with_capture inside the
   job does exactly that). *)
let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { ring = [||]; size = 0; next = 0; total = 0; on = false })

let state () = Domain.DLS.get key

let enable ?(capacity = 8192) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be positive";
  let state = state () in
  state.ring <- Array.make capacity { at = 0; category = Host; message = "" };
  state.size <- 0;
  state.next <- 0;
  state.total <- 0;
  state.on <- true

let disable () = (state ()).on <- false
let enabled () = (state ()).on

let emit ~at category message =
  let state = state () in
  if state.on then begin
    let record = { at; category; message = Lazy.force message } in
    state.ring.(state.next) <- record;
    state.next <- (state.next + 1) mod Array.length state.ring;
    state.size <- min (state.size + 1) (Array.length state.ring);
    state.total <- state.total + 1
  end

let records () =
  let state = state () in
  let capacity = Array.length state.ring in
  List.init state.size (fun i ->
      state.ring.((state.next - state.size + i + capacity) mod capacity))

let recent n =
  let all = records () in
  let len = List.length all in
  List.filteri (fun i _ -> i >= len - n) all

let emitted () = (state ()).total

let clear () =
  let state = state () in
  state.size <- 0;
  state.next <- 0;
  state.total <- 0

let dump fmt () =
  List.iter
    (fun record ->
      Format.fprintf fmt "[%a] %-8s %s@." Time.pp record.at
        (category_name record.category)
        record.message)
    (records ())

let with_capture ?capacity f =
  let state = state () in
  let was_on = state.on in
  enable ?capacity ();
  let finish () =
    let captured = records () in
    if not was_on then disable ();
    captured
  in
  match f () with
  | result -> (result, finish ())
  | exception exn ->
    ignore (finish ());
    raise exn
