type handle = { mutable dead : bool; fn : unit -> unit }

(* Event keys are packed into a single immediate int,
   [at lsl seq_bits lor seq], so the queue never allocates per event and
   orders by (time, scheduling order) with one machine comparison.  The
   sequence field must stay below [seq_limit] for the packing to sort
   correctly; since the counter is monotone across the whole run, the
   queue is renumbered (ties keep their order, pending count is tiny
   compared to the counter) whenever the counter would overflow. *)
let seq_bits = 21
let seq_limit = 1 lsl seq_bits
let max_at = max_int asr seq_bits

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable executed : int;
  queue : handle Int_heap.t;
}

let pack ~at ~seq = (at lsl seq_bits) lor seq
let key_at key = key asr seq_bits

let create () = { clock = 0; seq = 0; executed = 0; queue = Int_heap.create () }

let now t = t.clock
let executed t = t.executed
let pending t = Int_heap.length t.queue

let renumber t =
  let pending = Int_heap.length t.queue in
  let entries = Array.make pending (0, { dead = true; fn = ignore }) in
  let i = ref 0 in
  Int_heap.drain t.queue (fun key h ->
      entries.(!i) <- (key, h);
      incr i);
  Array.iteri
    (fun seq (key, h) -> Int_heap.push t.queue (pack ~at:(key_at key) ~seq) h)
    entries;
  t.seq <- pending

let schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d is before now=%d" at t.clock);
  if at > max_at then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d exceeds the representable horizon %d"
         at max_at);
  if t.seq >= seq_limit then renumber t;
  let h = { dead = false; fn = f } in
  Int_heap.push t.queue (pack ~at ~seq:t.seq) h;
  t.seq <- t.seq + 1;
  h

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + after) f

let cancel h = h.dead <- true
let cancelled h = h.dead

let step t =
  match Int_heap.pop t.queue with
  | exception Not_found -> false
  | key, h ->
    t.clock <- key_at key;
    if not h.dead then begin
      t.executed <- t.executed + 1;
      h.fn ()
    end;
    true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> max_int | Some n -> n) in
  let continue = ref true in
  while !continue && !budget > 0 do
    match Int_heap.peek_key t.queue with
    | exception Not_found -> continue := false
    | key ->
      (match until with
      | Some limit when key_at key > limit ->
        t.clock <- max t.clock limit;
        continue := false
      | _ ->
        ignore (step t);
        decr budget)
  done;
  match until with
  | Some limit when Int_heap.is_empty t.queue && t.clock < limit -> t.clock <- limit
  | _ -> ()

let every t ~interval ~until f =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let rec tick () =
    if t.clock <= until then begin
      f ();
      let next = t.clock + interval in
      if next <= until then ignore (schedule_at t ~at:next tick)
    end
  in
  ignore (schedule t ~after:interval tick)
