(* Event keys are packed into a single immediate int,
   [at lsl seq_bits lor seq], so the queue never allocates per event and
   orders by (time, scheduling order) with one machine comparison.  The
   sequence field must stay below [seq_limit] for the packing to sort
   correctly; since the counter is monotone across the whole run, the
   queue is renumbered (ties keep their order, pending count is tiny
   compared to the counter) whenever the counter would overflow.

   Handles are packed ints too: a slot index into a pooled slab of
   per-event state (closure, flag byte, generation) plus a generation
   snapshot.  Slots recycle through a freelist when their queue entry is
   consumed, so steady-state schedule/cancel/step allocate nothing; the
   generation in the token guards a caller cancelling a handle whose
   slot has since been handed to a newer event. *)

type calendar = Heap | Wheel

let calendar_name = function Heap -> "heap" | Wheel -> "wheel"

let seq_bits = 21
let seq_limit = 1 lsl seq_bits
let max_at = max_int asr seq_bits

(* Handle tokens: [gen lsl idx_bits lor idx]. *)
let idx_bits = 24
let idx_mask = (1 lsl idx_bits) - 1
let gen_mask = max_int lsr idx_bits

type handle = int

let flag_pending = '\001'
let flag_fired = '\002'
let flag_cancelled = '\003'

type queue = Q_heap of int Int_heap.t | Q_wheel of Wheel.t

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable executed : int;
  queue : queue;
  (* handle slab: parallel arrays indexed by slot *)
  mutable fns : (unit -> unit) array;
  mutable gens : int array;
  mutable flags : Bytes.t;
  mutable free : int array;  (* stack of recycled slot indices *)
  mutable free_top : int;
  mutable slab_used : int;  (* slots ever handed out *)
}

let pack ~at ~seq = (at lsl seq_bits) lor seq
let key_at key = key asr seq_bits

let calendar_of_env () =
  match Sys.getenv_opt "DRACONIS_CALENDAR" with
  | None | Some "" -> Wheel
  | Some v -> (
    match String.lowercase_ascii v with
    | "wheel" -> Wheel
    | "heap" -> Heap
    | other ->
      invalid_arg
        (Printf.sprintf
           "Engine.create: DRACONIS_CALENDAR must be \"heap\" or \"wheel\", got %S"
           other))

let noop () = ()

let create ?calendar () =
  let kind = match calendar with Some c -> c | None -> calendar_of_env () in
  let queue =
    match kind with
    | Heap -> Q_heap (Int_heap.create ())
    | Wheel -> Q_wheel (Wheel.create ~shift:seq_bits ())
  in
  let cap = 256 in
  {
    clock = 0;
    seq = 0;
    executed = 0;
    queue;
    fns = Array.make cap noop;
    gens = Array.make cap 0;
    flags = Bytes.make cap flag_fired;
    free = Array.make cap 0;
    free_top = 0;
    slab_used = 0;
  }

let calendar t = match t.queue with Q_heap _ -> Heap | Q_wheel _ -> Wheel
let now t = t.clock
let executed t = t.executed

let pending t =
  match t.queue with Q_heap h -> Int_heap.length h | Q_wheel w -> Wheel.length w

let q_push t key tok =
  match t.queue with
  | Q_heap h -> Int_heap.push h key tok
  | Q_wheel w -> Wheel.push w key tok

let q_peek_key t =
  match t.queue with Q_heap h -> Int_heap.peek_key h | Q_wheel w -> Wheel.peek_key w

let next_at t =
  match q_peek_key t with exception Not_found -> None | key -> Some (key_at key)

(* -- handle slab ----------------------------------------------------------- *)

let slab_grow t =
  let cap = Array.length t.gens in
  if 2 * cap > idx_mask + 1 then
    invalid_arg "Engine: more than 2^24 events pending";
  let fns = Array.make (2 * cap) noop in
  let gens = Array.make (2 * cap) 0 in
  let flags = Bytes.make (2 * cap) flag_fired in
  let free = Array.make (2 * cap) 0 in
  Array.blit t.fns 0 fns 0 cap;
  Array.blit t.gens 0 gens 0 cap;
  Bytes.blit t.flags 0 flags 0 cap;
  Array.blit t.free 0 free 0 cap;
  t.fns <- fns;
  t.gens <- gens;
  t.flags <- flags;
  t.free <- free

let slab_alloc t fn =
  let idx =
    if t.free_top > 0 then begin
      t.free_top <- t.free_top - 1;
      t.free.(t.free_top)
    end
    else begin
      if t.slab_used >= Array.length t.gens then slab_grow t;
      let i = t.slab_used in
      t.slab_used <- i + 1;
      i
    end
  in
  t.fns.(idx) <- fn;
  Bytes.unsafe_set t.flags idx flag_pending;
  let g = (t.gens.(idx) + 1) land gen_mask in
  t.gens.(idx) <- g;
  (g lsl idx_bits) lor idx

(* Called exactly once per slot, when its queue entry is consumed. *)
let slab_release t idx ~flag =
  Bytes.unsafe_set t.flags idx flag;
  t.fns.(idx) <- noop;
  t.free.(t.free_top) <- idx;
  t.free_top <- t.free_top + 1

(* -- scheduling ------------------------------------------------------------ *)

let renumber t =
  let count = pending t in
  let keys = Array.make (max 1 count) 0 in
  let toks = Array.make (max 1 count) 0 in
  let live = ref 0 in
  let drain f =
    match t.queue with Q_heap h -> Int_heap.drain h f | Q_wheel w -> Wheel.drain w f
  in
  (* Drop cancelled entries while renumbering: their slots recycle now
     instead of at their (never-observable) pop. *)
  drain (fun key tok ->
      let idx = tok land idx_mask in
      if Bytes.get t.flags idx = flag_pending then begin
        keys.(!live) <- key;
        toks.(!live) <- tok;
        incr live
      end
      else slab_release t idx ~flag:flag_cancelled);
  for seq = 0 to !live - 1 do
    q_push t (pack ~at:(key_at keys.(seq)) ~seq) toks.(seq)
  done;
  t.seq <- !live

let schedule_at t ~at f =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d is before now=%d" at t.clock);
  if at > max_at then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: at=%d exceeds the representable horizon %d"
         at max_at);
  if t.seq >= seq_limit then renumber t;
  let tok = slab_alloc t f in
  q_push t (pack ~at ~seq:t.seq) tok;
  t.seq <- t.seq + 1;
  tok

let schedule t ~after f =
  if after < 0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(t.clock + after) f

let cancel t h =
  let idx = h land idx_mask in
  if t.gens.(idx) = h lsr idx_bits && Bytes.get t.flags idx = flag_pending then
    Bytes.set t.flags idx flag_cancelled

let cancelled t h =
  let idx = h land idx_mask in
  t.gens.(idx) = h lsr idx_bits && Bytes.get t.flags idx = flag_cancelled

let exec t key tok =
  t.clock <- key_at key;
  let idx = tok land idx_mask in
  if Bytes.unsafe_get t.flags idx = flag_pending then begin
    let fn = t.fns.(idx) in
    slab_release t idx ~flag:flag_fired;
    t.executed <- t.executed + 1;
    fn ()
  end
  else slab_release t idx ~flag:flag_cancelled

let step t =
  match t.queue with
  | Q_heap h -> (
    match Int_heap.pop h with
    | exception Not_found -> false
    | key, tok ->
      exec t key tok;
      true)
  | Q_wheel w -> (
    (* [pop_min] parks the binding in scratch fields: the drain loop
       allocates nothing per event. *)
    match Wheel.pop_min w with
    | exception Not_found -> false
    | () ->
      exec t (Wheel.popped_key w) (Wheel.popped_value w);
      true)

let run ?until ?max_events t =
  match until with
  | None -> (
    (* No horizon: drain without peeking, so each event costs a single
       queue operation. *)
    match max_events with
    | None -> while step t do () done
    | Some n ->
      let budget = ref n in
      while !budget > 0 && step t do
        decr budget
      done)
  | Some limit ->
    let budget = ref (match max_events with None -> max_int | Some n -> n) in
    let continue = ref true in
    while !continue && !budget > 0 do
      match q_peek_key t with
      | exception Not_found -> continue := false
      | key ->
        if key_at key > limit then continue := false
        else begin
          ignore (step t);
          decr budget
        end
    done;
    (* The clock reaches the horizon whenever every event at or before
       it has run — including when the queue is merely empty up to
       [limit], or when the budget expired with only beyond-horizon
       events left.  Only an exhausted budget with work still due before
       [limit] leaves the clock at the last executed event. *)
    if t.clock < limit then (
      match q_peek_key t with
      | exception Not_found -> t.clock <- limit
      | key when key_at key > limit -> t.clock <- limit
      | _ -> ())

let every t ~interval ~until f =
  if interval <= 0 then invalid_arg "Engine.every: interval must be positive";
  let rec tick () =
    if t.clock <= until then begin
      f ();
      let next = t.clock + interval in
      if next <= until then ignore (schedule_at t ~at:next tick)
    end
  in
  ignore (schedule t ~after:interval tick)
