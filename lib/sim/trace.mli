(** Lightweight event tracing for simulation debugging.

    Components emit categorized, timestamped records into a bounded ring
    buffer; tracing is globally off by default and costs one branch per
    emit when disabled, so instrumentation can stay in hot paths.
    Enable around the window of interest, then [dump] or [recent] to
    inspect what the switch, fabric, and hosts actually did — the
    simulated equivalent of a packet capture plus switch counters.

    The tracer state is {e domain-local}: each domain owns an
    independent ring and on/off flag, so parallel pool workers
    (see {!Draconis_harness.Pool}) never race on the buffer.
    Enablement does not cross [Domain.spawn]; a pooled job that wants a
    capture enables tracing itself.  Within one domain the tracer
    behaves as the process-global singleton it used to be;
    [with_capture] scopes enablement for tests.  For typed, exportable,
    cross-run telemetry use [Draconis_obs] instead — this module stays
    the low-tech string ring for interactive debugging. *)

type category =
  | Fabric  (** message sends and deliveries *)
  | Pipeline  (** packet admissions, recirculations, drops *)
  | Queue  (** circular-queue repairs and rejections *)
  | Host  (** client/executor events *)

val category_name : category -> string

type record = { at : Time.t; category : category; message : string }

(** [enable ~capacity ()] turns tracing on with a ring of [capacity]
    records (default 8192), discarding the oldest on overflow. *)
val enable : ?capacity:int -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool

(** [emit ~at category message] records an event if tracing is on.
    [message] is lazy so formatting is free when disabled. *)
val emit : at:Time.t -> category -> string Lazy.t -> unit

(** Records currently buffered, oldest first. *)
val records : unit -> record list

(** [recent n] is the newest [n] records, oldest first. *)
val recent : int -> record list

(** Total records emitted since [enable] (including overwritten). *)
val emitted : unit -> int

val clear : unit -> unit

(** [dump fmt ()] pretty-prints the buffer. *)
val dump : Format.formatter -> unit -> unit

(** [with_capture ?capacity f] enables tracing, runs [f], returns its
    result with the captured records, and restores the previous state. *)
val with_capture : ?capacity:int -> (unit -> 'a) -> 'a * record list
