(* Hierarchical timing wheel over packed integer keys.

   Geometry: [levels] wheels of [slots] buckets each; level [l] buckets
   are [slots^l] ticks wide, so the wheel proper spans [slots^levels]
   ticks ([span_bits] bits) ahead of the cursor.  A key's tick is its
   upper bits ([key asr shift]); the low [shift] bits (the engine's
   sequence number) ride along untouched and only matter for FIFO order
   inside a bucket, which push order already provides.

   Placement is by window, not by delta: an event goes to the smallest
   level whose current window (the aligned [slots^(l+1)]-tick range the
   cursor is in) contains its tick.  This keeps every tick mapped to
   exactly one bucket at any moment, so all pushes for one tick land in
   the same FIFO list and cascades (which move whole lists in order)
   preserve the global (tick, push-order) execution order exactly —
   bit-for-bit the order a min-heap on the packed keys produces.

   Two Int_heap side tiers make the structure total:
   - [overflow]: keys beyond the current top-level window (far-future
     timers).  They are never migrated; the heap is simply a peer
     priority structure consulted on pop/peek, so correctness never
     depends on window arithmetic for distant times.
   - [overdue]: keys behind the cursor.  The cursor only advances to
     the next scheduled tick, so this is empty in steady state; it
     absorbs the pattern where a caller stops a run mid-horizon and
     then schedules before the previously peeked event.

   Buckets are intrusive FIFO lists over a pooled node slab (parallel
   int arrays, freelist threaded through [nnext]), and each level keeps
   a one-word occupancy bitmap, so steady-state push/pop touch no GC'd
   memory at all and empty buckets cost one masked bit-scan. *)

let slot_bits = 5
let slots = 1 lsl slot_bits
let slot_mask = slots - 1
let levels = 5
let span_bits = slot_bits * levels

type t = {
  shift : int;
  (* node slab: key, value, next link; freelist threaded through nnext *)
  mutable nkey : int array;
  mutable nval : int array;
  mutable nnext : int array;
  mutable free : int;
  (* bucket FIFO lists, flat-indexed [level * slots + slot] *)
  head : int array;
  tail : int array;
  bits : int array;  (* per-level occupancy bitmap, one word each *)
  mutable cur : int;  (* cursor tick: no wheel-resident key is below it *)
  mutable count : int;  (* nodes resident in the wheel levels *)
  overdue : int Int_heap.t;
  overflow : int Int_heap.t;
  (* Cached global minimum (filled by [locate], invalidated by any
     mutation) and the last-popped binding.  Scratch fields instead of
     returned tuples keep peek/pop allocation-free, and let a peek
     immediately followed by a pop reuse one cursor scan. *)
  mutable msrc : int;  (* 0 empty, 1 wheel, 2 overdue, 3 overflow *)
  mutable mnode : int;
  mutable mkey : int;
  mutable mvalid : bool;
  mutable pkey : int;
  mutable pval : int;
}

let create ?(shift = 0) ?(capacity = 256) () =
  if shift < 0 || shift >= Sys.int_size - span_bits then
    invalid_arg "Wheel.create: shift out of range";
  let cap = max 1 capacity in
  {
    shift;
    nkey = Array.make cap 0;
    nval = Array.make cap 0;
    nnext = Array.init cap (fun i -> if i + 1 < cap then i + 1 else -1);
    free = 0;
    head = Array.make (levels * slots) (-1);
    tail = Array.make (levels * slots) (-1);
    bits = Array.make levels 0;
    cur = 0;
    count = 0;
    overdue = Int_heap.create ~capacity:16 ();
    overflow = Int_heap.create ~capacity:16 ();
    msrc = 0;
    mnode = -1;
    mkey = 0;
    mvalid = false;
    pkey = 0;
    pval = 0;
  }

let length t = t.count + Int_heap.length t.overdue + Int_heap.length t.overflow
let is_empty t = length t = 0
let overdue_length t = Int_heap.length t.overdue
let overflow_length t = Int_heap.length t.overflow

let grow t =
  let cap = Array.length t.nkey in
  let cap' = 2 * cap in
  let nkey = Array.make cap' 0 and nval = Array.make cap' 0 in
  let nnext = Array.init cap' (fun i -> if i + 1 < cap' then i + 1 else -1) in
  Array.blit t.nkey 0 nkey 0 cap;
  Array.blit t.nval 0 nval 0 cap;
  Array.blit t.nnext 0 nnext 0 cap;
  t.nkey <- nkey;
  t.nval <- nval;
  t.nnext <- nnext;
  t.free <- cap

(* Trailing-zero count via de Bruijn multiplication; bitmaps only ever
   use the low [slots] bits, so 32-bit arithmetic suffices. *)
let ctz_table =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
     21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let ctz x = ctz_table.((((x land -x) * 0x077CB531) land 0xFFFFFFFF) lsr 27)

(* Smallest level whose current window contains [tick]; the xor with the
   cursor bounds how high the differing bit is. *)
let level_of t tick =
  let d = tick lxor t.cur in
  if d < slots then 0
  else if d < 1 lsl (2 * slot_bits) then 1
  else if d < 1 lsl (3 * slot_bits) then 2
  else if d < 1 lsl (4 * slot_bits) then 3
  else 4

(* Append node [n] to its bucket, preserving FIFO order.  Does not touch
   [count]: cascades relink nodes that are already counted. *)
let link t ~level ~tick n =
  let slot = (tick lsr (level * slot_bits)) land slot_mask in
  let i = (level lsl slot_bits) lor slot in
  (if t.tail.(i) < 0 then begin
     t.head.(i) <- n;
     t.bits.(level) <- t.bits.(level) lor (1 lsl slot)
   end
   else t.nnext.(t.tail.(i)) <- n);
  t.tail.(i) <- n;
  t.nnext.(n) <- -1

let push t key v =
  let tick = key asr t.shift in
  t.mvalid <- false;
  (* An empty wheel has no resident keys to order against, so the cursor
     is free to jump straight to the new tick. *)
  if t.count = 0 then t.cur <- tick;
  if tick < t.cur then Int_heap.push t.overdue key v
  else if (tick lxor t.cur) asr span_bits <> 0 then Int_heap.push t.overflow key v
  else begin
    if t.free < 0 then grow t;
    let n = t.free in
    t.free <- t.nnext.(n);
    t.nkey.(n) <- key;
    t.nval.(n) <- v;
    link t ~level:(level_of t tick) ~tick n;
    t.count <- t.count + 1
  end

(* Move every node of bucket [(level, slot)] down to its finer-level
   bucket.  Called exactly when the cursor enters the bucket's window,
   so each node's new level is strictly below [level]. *)
let rec relink t n =
  if n >= 0 then begin
    let next = t.nnext.(n) in
    let tick = t.nkey.(n) asr t.shift in
    link t ~level:(level_of t tick) ~tick n;
    relink t next
  end

let cascade t ~level ~slot =
  let i = (level lsl slot_bits) lor slot in
  let n = t.head.(i) in
  t.head.(i) <- -1;
  t.tail.(i) <- -1;
  t.bits.(level) <- t.bits.(level) land lnot (1 lsl slot);
  relink t n

(* Advance the cursor to the next occupied tick and return the head node
   of its level-0 bucket, or [-1] if the wheel proper is empty.  Only
   moves the cursor forward to the minimum resident tick, so pushes at
   or after the engine clock never land behind it. *)
let rec find t =
  if t.count = 0 then -1
  else begin
    let b0 = t.bits.(0) land (-1 lsl (t.cur land slot_mask)) in
    if b0 <> 0 then begin
      let s = ctz b0 in
      t.cur <- t.cur land lnot slot_mask lor s;
      t.head.(s)
    end
    else find_up t 1
  end

and find_up t level =
  if level >= levels then -1
  else begin
    (* The bucket the cursor is inside was drained when its window was
       entered and can never repopulate, so scan strictly beyond it. *)
    let idx = (t.cur lsr (level * slot_bits)) land slot_mask in
    let b = t.bits.(level) land (-1 lsl (idx + 1)) in
    if b <> 0 then begin
      let s = ctz b in
      let low = level * slot_bits in
      t.cur <- t.cur land lnot ((1 lsl (low + slot_bits)) - 1) lor (s lsl low);
      cascade t ~level ~slot:s;
      find t
    end
    else find_up t (level + 1)
  end

(* Refresh the cached global minimum into the scratch fields. *)
let locate t =
  if not t.mvalid then begin
    let n = find t in
    t.mnode <- n;
    if n >= 0 then begin
      t.msrc <- 1;
      t.mkey <- t.nkey.(n)
    end
    else t.msrc <- 0;
    if not (Int_heap.is_empty t.overdue) then begin
      let k = Int_heap.peek_key t.overdue in
      if t.msrc = 0 || k < t.mkey then begin
        t.msrc <- 2;
        t.mkey <- k
      end
    end;
    if not (Int_heap.is_empty t.overflow) then begin
      let k = Int_heap.peek_key t.overflow in
      if t.msrc = 0 || k < t.mkey then begin
        t.msrc <- 3;
        t.mkey <- k
      end
    end;
    t.mvalid <- true
  end

let peek_key t =
  locate t;
  if t.msrc = 0 then raise Not_found;
  t.mkey

let pop_min t =
  locate t;
  match t.msrc with
  | 0 -> raise Not_found
  | 2 ->
    (* Side tiers are rare by design; their tuple is the only allocation
       left on any pop path. *)
    let k, v = Int_heap.pop t.overdue in
    t.pkey <- k;
    t.pval <- v;
    t.mvalid <- false
  | 3 ->
    let k, v = Int_heap.pop t.overflow in
    t.pkey <- k;
    t.pval <- v;
    t.mvalid <- false
  | _ ->
    (* [find] left the cursor on the node's tick, so its level-0 slot is
       the cursor's low bits. *)
    let n = t.mnode in
    let slot = t.cur land slot_mask in
    let next = t.nnext.(n) in
    t.head.(slot) <- next;
    if next < 0 then begin
      t.tail.(slot) <- -1;
      t.bits.(0) <- t.bits.(0) land lnot (1 lsl slot)
    end;
    t.count <- t.count - 1;
    t.pkey <- t.nkey.(n);
    t.pval <- t.nval.(n);
    t.nnext.(n) <- t.free;
    t.free <- n;
    t.mvalid <- false

let popped_key t = t.pkey
let popped_value t = t.pval

let pop t =
  pop_min t;
  (t.pkey, t.pval)

let drain t f =
  while not (is_empty t) do
    let k, v = pop t in
    f k v
  done

let clear t =
  Array.fill t.head 0 (Array.length t.head) (-1);
  Array.fill t.tail 0 (Array.length t.tail) (-1);
  Array.fill t.bits 0 levels 0;
  let cap = Array.length t.nnext in
  for i = 0 to cap - 1 do
    t.nnext.(i) <- (if i + 1 < cap then i + 1 else -1)
  done;
  t.free <- 0;
  t.count <- 0;
  t.cur <- 0;
  t.mvalid <- false;
  Int_heap.clear t.overdue;
  Int_heap.clear t.overflow
