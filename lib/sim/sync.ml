type t = {
  lps : Lp.t array;
  lookahead : Time.t;
  mutable windows : int;
}

type executor = (unit -> unit) array -> unit

let sequential thunks = Array.iter (fun f -> f ()) thunks

let create ~lookahead lps =
  if lookahead <= 0 then invalid_arg "Sync.create: lookahead must be positive";
  if Array.length lps = 0 then invalid_arg "Sync.create: no logical processes";
  let seen = Hashtbl.create (Array.length lps) in
  Array.iter
    (fun lp ->
      let id = Lp.id lp in
      if Hashtbl.mem seen id then
        invalid_arg (Printf.sprintf "Sync.create: duplicate LP id %d" id);
      Hashtbl.add seen id ())
    lps;
  { lps = Array.copy lps; lookahead; windows = 0 }

let lookahead t = t.lookahead
let lps t = Array.copy t.lps
let windows t = t.windows

let executed t =
  Array.fold_left (fun acc lp -> acc + Engine.executed (Lp.engine lp)) 0 t.lps

let drained t =
  Array.for_all
    (fun lp -> Engine.pending (Lp.engine lp) = 0 && Lp.inbox_length lp = 0)
    t.lps

(* Global floor: the earliest instant any LP still owes work at. *)
let floor t =
  Array.fold_left
    (fun acc lp ->
      match Lp.next_at lp with
      | None -> acc
      | Some a -> ( match acc with Some b when b <= a -> acc | _ -> Some a))
    None t.lps

let run ?until ?(executor = sequential) t =
  (* Everything at or before [u] has run; park every clock at [u],
     matching Engine.run's horizon semantics. *)
  let finish_at u =
    Array.iter (fun lp -> Engine.run ~until:u (Lp.engine lp)) t.lps
  in
  let rec loop () =
    match floor t with
    | None -> Option.iter finish_at until
    | Some f -> (
      match until with
      | Some u when f > u -> finish_at u
      | _ ->
        (* Events strictly below [f + lookahead] are safe: any message
           produced inside this window is stamped at least [lookahead]
           past its send time, hence at or beyond the horizon. *)
        let horizon =
          let h = f + t.lookahead - 1 in
          match until with Some u -> min h u | None -> h
        in
        Array.iter (fun lp -> Lp.inject lp ~upto:horizon) t.lps;
        Array.iter (fun lp -> Lp.set_floor lp horizon) t.lps;
        executor
          (Array.map
             (fun lp () -> Engine.run ~until:horizon (Lp.engine lp))
             t.lps);
        t.windows <- t.windows + 1;
        loop ())
  in
  loop ()
