(** Array-based binary min-heap over ordered keys.

    Used as the event queue of the simulation engine: keys are
    [(time, sequence)] pairs so that events at equal times pop in
    insertion order.  All operations are O(log n) except [peek] and
    [length], which are O(1). *)

type ('k, 'v) t

(** [create ~capacity ~compare] is an empty heap.  [capacity] sizes the
    backing arrays allocated on the first push (default 256). *)
val create : ?capacity:int -> compare:('k -> 'k -> int) -> unit -> ('k, 'v) t

val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

(** [pop h] removes and returns the minimum binding.
    @raise Not_found if the heap is empty. *)
val pop : ('k, 'v) t -> 'k * 'v

(** [peek h] returns the minimum binding without removing it.
    @raise Not_found if the heap is empty. *)
val peek : ('k, 'v) t -> 'k * 'v

val clear : ('k, 'v) t -> unit

(** [drain h f] pops every element in key order and applies [f]. *)
val drain : ('k, 'v) t -> ('k -> 'v -> unit) -> unit
