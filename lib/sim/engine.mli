(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Components
    schedule closures at future instants; [run] executes them in
    timestamp order (ties broken by scheduling order) and advances the
    clock.  Scheduling in the past is a programming error and raises.

    The engine is single-threaded by design: a simulated cluster of
    thousands of executors runs as one deterministic event loop.  To
    shard one simulation across domains, several engines are composed as
    logical processes ({!Lp}) under a conservative barrier-window
    coordinator ({!Sync}); each engine still runs single-threaded inside
    its window.

    {2 Allocation-free core}

    The hot path allocates nothing in steady state: event keys are
    packed immediate ints, handles are packed ints into a pooled slab of
    per-event slots (recycled through a freelist, with generation
    counters guarding stale cancels), and the default {!Wheel} calendar
    keeps its buckets in flat integer arrays.  The only per-event
    allocation left is the caller's closure. *)

type t

(** Event-queue implementation.  [Wheel] (the default) is a hierarchical
    timing wheel with O(1) steady-state operations, backed by an
    {!Int_heap} overflow tier for far-future events; [Heap] is the plain
    binary heap.  Both execute the exact same event order, so runs are
    bit-for-bit reproducible across calendars — set [DRACONIS_CALENDAR]
    to [heap] or [wheel] to cross-check. *)
type calendar = Heap | Wheel

val calendar_name : calendar -> string

(** Cancellable handle for a scheduled event — an immediate int, so
    scheduling never allocates a handle record. *)
type handle

(** [create ?calendar ()] — [calendar] defaults to the
    [DRACONIS_CALENDAR] environment variable ([heap] or [wheel]), or
    {!Wheel} when unset.
    @raise Invalid_argument if the environment variable is set to
    anything else. *)
val create : ?calendar:calendar -> unit -> t

(** The calendar this engine was created with. *)
val calendar : t -> calendar

(** [now t] is the current virtual time. *)
val now : t -> Time.t

(** Number of events executed so far. *)
val executed : t -> int

(** Number of events currently queued (including cancelled events whose
    queue entries have not yet been consumed). *)
val pending : t -> int

(** [next_at t] is the timestamp of the earliest queued event (cancelled
    entries included — a conservative lower bound on the next live
    event), or [None] on an empty queue.  Used by the {!Sync} barrier
    protocol to compute the global safe horizon. *)
val next_at : t -> Time.t option

(** [schedule t ~after f] runs [f] at [now t + after].
    @raise Invalid_argument if [after < 0]. *)
val schedule : t -> after:Time.t -> (unit -> unit) -> handle

(** [schedule_at t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at < now t], or if [at] exceeds the
    representable horizon of the packed event key (about 36 simulated
    minutes). *)
val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle

(** [cancel t h] prevents the event from firing.  Cancelling an event
    that already fired (or was already cancelled) is a no-op; the
    generation counter in the handle makes this safe even after the
    event's pooled slot has been recycled by a newer event. *)
val cancel : t -> handle -> unit

(** [cancelled t h] is true if [h] was cancelled before firing.  Once
    the slot has been recycled by a newer event (only possible after the
    cancelled entry left the queue), the history of the old handle is
    gone and this returns [false]. *)
val cancelled : t -> handle -> bool

(** [step t] executes the next event, returning [false] when the queue
    is empty. *)
val step : t -> bool

(** [run ?until ?max_events t] executes events until the queue is empty,
    the clock passes [until], or [max_events] have run.  Events at a
    time strictly greater than [until] stay queued.  When every event at
    or before [until] has run, the clock is left at [until] exactly —
    even if later events remain queued; only an exhausted [max_events]
    budget with work still due before the horizon leaves the clock at
    the last executed event's time. *)
val run : ?until:Time.t -> ?max_events:int -> t -> unit

(** [every t ~interval ~until f] schedules [f] repeatedly with the given
    period, starting one interval from now, stopping after [until]. *)
val every : t -> interval:Time.t -> until:Time.t -> (unit -> unit) -> unit
