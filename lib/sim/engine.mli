(** Discrete-event simulation engine.

    The engine owns a virtual clock and an event queue.  Components
    schedule closures at future instants; [run] executes them in
    timestamp order (ties broken by scheduling order) and advances the
    clock.  Scheduling in the past is a programming error and raises.

    The engine is single-threaded by design: a simulated cluster of
    thousands of executors runs as one deterministic event loop. *)

type t

(** Cancellable handle for a scheduled event. *)
type handle

val create : unit -> t

(** [now t] is the current virtual time. *)
val now : t -> Time.t

(** Number of events executed so far. *)
val executed : t -> int

(** Number of events currently queued. *)
val pending : t -> int

(** [schedule t ~after f] runs [f] at [now t + after].
    @raise Invalid_argument if [after < 0]. *)
val schedule : t -> after:Time.t -> (unit -> unit) -> handle

(** [schedule_at t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at < now t], or if [at] exceeds the
    representable horizon of the packed event key (about 36 simulated
    minutes). *)
val schedule_at : t -> at:Time.t -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing.  Cancelling an event that
    already fired (or was already cancelled) is a no-op. *)
val cancel : handle -> unit

(** [cancelled h] is true if [h] was cancelled before firing. *)
val cancelled : handle -> bool

(** [step t] executes the next event, returning [false] when the queue
    is empty. *)
val step : t -> bool

(** [run ?until ?max_events t] executes events until the queue is empty,
    the clock passes [until], or [max_events] have run.  Events at a
    time strictly greater than [until] stay queued; the clock is left at
    the later of [until] and the last executed event's time. *)
val run : ?until:Time.t -> ?max_events:int -> t -> unit

(** [every t ~interval ~until f] schedules [f] repeatedly with the given
    period, starting one interval from now, stopping after [until]. *)
val every : t -> interval:Time.t -> until:Time.t -> (unit -> unit) -> unit
