(** Logical process: one shard of a conservatively parallel simulation.

    A parallel-in-run simulation partitions the model (hosts, switches)
    into logical processes.  Each LP owns a private {!Engine} — its own
    wheel calendar and virtual clock — plus a derived {!Rng} stream and
    a thread-safe inbox for events posted by other LPs.  LPs never touch
    each other's engines directly: all cross-LP communication goes
    through {!post}, and the {!Sync} coordinator injects posted events
    into the destination engine at barrier-window boundaries.

    {2 Determinism contract}

    Inbox messages carry a [(at, src, seq)] stamp, where [src] is a
    stable model-entity id and [seq] a per-source monotone counter.
    Injection sorts by that stamp, so the order in which same-time
    cross-LP events enter an engine depends only on the stamps — never
    on which domain ran which LP first, and never on how the model was
    partitioned.  This is what makes sharded runs reproduce the
    sequential ([DRACONIS_SHARDS=1]) outcomes exactly. *)

type t

(** [create ?calendar ~id ~seed ()] — a fresh LP with an empty engine.
    The LP's {!rng} stream is derived from [(seed, id)], so re-seating
    an LP on a different domain (or re-partitioning entities across
    LPs of the same ids) never perturbs its draws.
    @raise Invalid_argument if [id] is negative. *)
val create : ?calendar:Engine.calendar -> id:int -> seed:int -> unit -> t

val id : t -> int
val engine : t -> Engine.t

(** The LP's private random stream (seeded from [(seed, id)]). *)
val rng : t -> Rng.t

(** [post t ~at ~src ~seq fn] appends a cross-LP event to [t]'s inbox.
    Thread-safe: called from whichever domain runs the sending LP.
    @raise Invalid_argument if [at] does not lie strictly beyond the
    current safe horizon (a lookahead violation: the destination may
    already have simulated past [at]). *)
val post : t -> at:Time.t -> src:int -> seq:int -> (unit -> unit) -> unit

(** Earliest work owed to this LP: the minimum of the engine's next
    event and the earliest inbox stamp.  [None] when both are empty. *)
val next_at : t -> Time.t option

(** [inject t ~upto] moves every inbox message stamped [<= upto] into
    the engine, in [(at, src, seq)] order.  Barrier-phase only (the
    caller must guarantee no concurrent {!post}). *)
val inject : t -> upto:Time.t -> unit

(** [set_floor t at] — only {!Sync} calls this: records the window
    horizon below which {!post} must refuse stamps. *)
val set_floor : t -> Time.t -> unit

(** Cross-LP messages ever posted to / injected into this LP. *)
val posted : t -> int

val injected : t -> int

(** Messages still waiting in the inbox. *)
val inbox_length : t -> int
