(** Array-based binary min-heap specialized to [int] keys.

    The event queue of the simulation engine is the hottest data
    structure in the repository: every scheduled event pays one push and
    one pop.  Specializing the key to [int] keeps keys unboxed in a flat
    [int array] and replaces the polymorphic-compare call of {!Heap}
    with a single machine comparison.  All operations are O(log n)
    except [peek], [peek_key] and [length], which are O(1). *)

type 'v t

(** [create ~capacity ()] is an empty heap.  [capacity] sizes the
    backing arrays allocated on the first push. *)
val create : ?capacity:int -> unit -> 'v t

val length : 'v t -> int
val is_empty : 'v t -> bool

val push : 'v t -> int -> 'v -> unit

(** [pop h] removes and returns the minimum binding.
    @raise Not_found if the heap is empty. *)
val pop : 'v t -> int * 'v

(** [peek h] returns the minimum binding without removing it.
    @raise Not_found if the heap is empty. *)
val peek : 'v t -> int * 'v

(** [peek_key h] is [fst (peek h)] without building the pair.
    @raise Not_found if the heap is empty. *)
val peek_key : 'v t -> int

val clear : 'v t -> unit

(** [drain h f] pops every element in key order and applies [f]. *)
val drain : 'v t -> (int -> 'v -> unit) -> unit
