(* A logical process is an engine plus a stamped inbox.  The inbox is
   the only mutable state ever touched from another domain, so a plain
   mutex suffices: posts are rare relative to engine events (one per
   cross-LP message), and injection happens only at barriers, when no
   window is running. *)

type message = { at : Time.t; src : int; seq : int; fn : unit -> unit }

type t = {
  lp_id : int;
  engine : Engine.t;
  rng : Rng.t;
  mutex : Mutex.t;
  mutable inbox : message list;
  mutable floor : Time.t;
  mutable posted : int;
  mutable injected : int;
}

(* splitmix64-style finalizer over (seed, id): distinct LPs get
   decorrelated streams even for adjacent seeds. *)
let derive_seed seed id =
  let z = seed + ((id + 1) * 0x9E3779B97F4A7C1) in
  let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B in
  z lxor (z lsr 27)

let create ?calendar ~id ~seed () =
  if id < 0 then invalid_arg "Lp.create: negative id";
  {
    lp_id = id;
    engine = Engine.create ?calendar ();
    rng = Rng.create ~seed:(derive_seed seed id);
    mutex = Mutex.create ();
    inbox = [];
    floor = -1;
    posted = 0;
    injected = 0;
  }

let id t = t.lp_id
let engine t = t.engine
let rng t = t.rng

let post t ~at ~src ~seq fn =
  Mutex.lock t.mutex;
  if at <= t.floor then begin
    let floor = t.floor in
    Mutex.unlock t.mutex;
    invalid_arg
      (Printf.sprintf
         "Lp.post: stamp at=%d does not clear the safe horizon %d of LP %d (lookahead \
          violation)"
         at floor t.lp_id)
  end;
  t.inbox <- { at; src; seq; fn } :: t.inbox;
  t.posted <- t.posted + 1;
  Mutex.unlock t.mutex

let next_at t =
  Mutex.lock t.mutex;
  let inbox_min =
    List.fold_left
      (fun acc m -> match acc with Some a when a <= m.at -> acc | _ -> Some m.at)
      None t.inbox
  in
  Mutex.unlock t.mutex;
  match (Engine.next_at t.engine, inbox_min) with
  | None, m | m, None -> m
  | Some a, Some b -> Some (min a b)

let compare_stamp a b =
  let c = compare a.at b.at in
  if c <> 0 then c
  else
    let c = compare a.src b.src in
    if c <> 0 then c else compare a.seq b.seq

let inject t ~upto =
  (* Barrier phase: no concurrent posts, but take the lock anyway so the
     invariant does not depend on the caller's discipline. *)
  Mutex.lock t.mutex;
  let due, later = List.partition (fun m -> m.at <= upto) t.inbox in
  t.inbox <- later;
  Mutex.unlock t.mutex;
  match due with
  | [] -> ()
  | due ->
    let due = List.sort compare_stamp due in
    List.iter
      (fun m ->
        ignore (Engine.schedule_at t.engine ~at:m.at m.fn);
        t.injected <- t.injected + 1)
      due

let set_floor t at =
  Mutex.lock t.mutex;
  t.floor <- at;
  Mutex.unlock t.mutex

let posted t =
  Mutex.lock t.mutex;
  let n = t.posted in
  Mutex.unlock t.mutex;
  n

let injected t = t.injected

let inbox_length t =
  Mutex.lock t.mutex;
  let n = List.length t.inbox in
  Mutex.unlock t.mutex;
  n
