(** Hierarchical timing wheel keyed on packed [int] event keys.

    A drop-in calendar for the engine's event queue, tuned for the
    near-future schedules that dominate microsecond-scale simulation
    (host-switch hops of ~1.5 us, service times of a few us): push, pop
    and peek are O(1) in steady state, against O(log n) for the binary
    heap, and touch no GC-managed memory — buckets are intrusive lists
    over a pooled slab of parallel [int] arrays.

    Keys order events exactly as {!Int_heap} does: the upper bits
    ([key asr shift]) are the timestamp tick that selects a bucket, the
    low [shift] bits (the engine's tie-breaking sequence number) select
    nothing but keep keys unique; FIFO bucket order plus
    window-aligned placement reproduces the heap's total key order
    bit-for-bit, which the calendar cross-check property tests pin.

    Geometry: 5 levels x 32 slots, so the wheel proper covers [2^25]
    ticks (~33 ms at 1 ns/tick) ahead of the cursor.  Two {!Int_heap}
    side tiers keep the structure total without migration logic:
    [overflow] holds far-future keys beyond the top-level window, and
    [overdue] holds keys behind the cursor (only reachable when a caller
    stops a run mid-horizon and then schedules earlier than the last
    peeked event).  Both are consulted as peer priority structures on
    every pop/peek, so order is correct no matter where a key lives. *)

type t

(** [create ~shift ~capacity ()] — [shift] is the bit width of the
    non-time low bits of a key (the engine passes its sequence-field
    width); [capacity] sizes the initial node slab.
    @raise Invalid_argument if [shift] leaves fewer than the wheel-span
    bits of usable tick range. *)
val create : ?shift:int -> ?capacity:int -> unit -> t

val length : t -> int
val is_empty : t -> bool

val push : t -> int -> int -> unit

(** [pop t] removes and returns the minimum binding.
    @raise Not_found if the wheel is empty. *)
val pop : t -> int * int

(** Allocation-free pop: [pop_min t] removes the minimum binding and
    parks it in scratch fields read back with {!popped_key} /
    {!popped_value}, valid until the next [pop_min].  The engine's step
    loop uses this so popping never builds a tuple.
    @raise Not_found if the wheel is empty. *)
val pop_min : t -> unit

val popped_key : t -> int
val popped_value : t -> int

(** [peek_key t] is the minimum key without removing it.
    @raise Not_found if the wheel is empty. *)
val peek_key : t -> int

(** [drain t f] pops every binding in key order and applies [f]. *)
val drain : t -> (int -> int -> unit) -> unit

val clear : t -> unit

(** {2 Introspection} — tier occupancy, for tests and benchmarks. *)

(** Keys parked behind the cursor (see the module description). *)
val overdue_length : t -> int

(** Far-future keys beyond the wheel's [2^25]-tick window. *)
val overflow_length : t -> int
