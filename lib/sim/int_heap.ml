type 'v t = {
  init_capacity : int;
  mutable keys : int array;
  mutable vals : 'v array;
  mutable size : int;
}

let create ?(capacity = 256) () =
  { init_capacity = max 1 capacity; keys = [||]; vals = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

let grow h v =
  (* The value array starts empty because we have no dummy element; the
     first push seeds it with the pushed value. *)
  if Array.length h.keys = 0 then begin
    h.keys <- Array.make h.init_capacity 0;
    h.vals <- Array.make h.init_capacity v
  end
  else begin
    let n = Array.length h.keys in
    let keys = Array.make (2 * n) 0 in
    let vals = Array.make (2 * n) h.vals.(0) in
    Array.blit h.keys 0 keys 0 n;
    Array.blit h.vals 0 vals 0 n;
    h.keys <- keys;
    h.vals <- vals
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      let k = h.keys.(i) and v = h.vals.(i) in
      h.keys.(i) <- h.keys.(parent);
      h.vals.(i) <- h.vals.(parent);
      h.keys.(parent) <- k;
      h.vals.(parent) <- v;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.keys.(l) < h.keys.(!smallest) then smallest := l;
  if r < h.size && h.keys.(r) < h.keys.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let j = !smallest in
    let k = h.keys.(i) and v = h.vals.(i) in
    h.keys.(i) <- h.keys.(j);
    h.vals.(i) <- h.vals.(j);
    h.keys.(j) <- k;
    h.vals.(j) <- v;
    sift_down h j
  end

let push h k v =
  if h.size >= Array.length h.keys then grow h v;
  h.keys.(h.size) <- k;
  h.vals.(h.size) <- v;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek_key h =
  if h.size = 0 then raise Not_found;
  h.keys.(0)

let peek h =
  if h.size = 0 then raise Not_found;
  (h.keys.(0), h.vals.(0))

let pop h =
  if h.size = 0 then raise Not_found;
  let k = h.keys.(0) and v = h.vals.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.keys.(0) <- h.keys.(h.size);
    h.vals.(0) <- h.vals.(h.size);
    sift_down h 0
  end;
  (k, v)

let clear h = h.size <- 0

let drain h f =
  while not (is_empty h) do
    let k, v = pop h in
    f k v
  done
