(** Conservative barrier-window synchronization for sharded simulation.

    Classic conservative parallel DES, specialised to the barrier-window
    (a.k.a. "bounded lag") protocol: given logical processes whose
    cross-LP messages always carry at least [lookahead] of latency, the
    coordinator repeatedly

    + computes the global floor [f] — the earliest pending event or
      inbox stamp across every LP;
    + injects every inbox message stamped below the safe horizon
      [f + lookahead] into its destination engine ({!Lp.inject});
    + runs every LP's engine up to (and including) [f + lookahead - 1] —
      in parallel when an [executor] fans the per-LP thunks out over
      domains, inline otherwise;
    + barriers, and goes again.

    Any message sent during a window is stamped [send time + latency >=
    f + lookahead], i.e. beyond the horizon, so it can never be owed to
    an engine that already ran past it — the lookahead is what makes
    optimistic rollback unnecessary.  {!Lp.post} enforces this with the
    per-window floor.

    The window sequence is a pure function of the model (the floors do
    not depend on how LPs are grouped onto domains, nor on how entities
    are grouped onto LPs), which is the backbone of the sharded/
    sequential determinism contract: a run with one worker domain and a
    run with eight execute the exact same windows. *)

type t

(** Runs a batch of per-LP thunks to completion, possibly in parallel.
    The default executor runs them inline, in array order — the
    bit-deterministic reference path ([DRACONIS_SHARDS=1]). *)
type executor = (unit -> unit) array -> unit

(** [create ~lookahead lps].
    @raise Invalid_argument if [lookahead <= 0], [lps] is empty, or two
    LPs share an id. *)
val create : lookahead:Time.t -> Lp.t array -> t

val lookahead : t -> Time.t
val lps : t -> Lp.t array

(** Barrier windows executed so far — partition-independent, so equal
    across shard counts on the same model. *)
val windows : t -> int

(** Total events executed across all LP engines. *)
val executed : t -> int

(** Every LP drained: no pending engine events, no inbox messages. *)
val drained : t -> bool

(** [run ?until ?executor t] executes windows until every LP is drained
    (or owes only events beyond [until]).  As with {!Engine.run}, when
    [until] is given every LP clock is left at [until] exactly. *)
val run : ?until:Time.t -> ?executor:executor -> t -> unit
