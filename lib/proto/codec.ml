open Draconis_net

type error = Truncated | Bad_opcode of int | Bad_field of string

let pp_error fmt = function
  | Truncated -> Format.pp_print_string fmt "truncated packet"
  | Bad_opcode op -> Format.fprintf fmt "bad opcode %d" op
  | Bad_field f -> Format.fprintf fmt "bad field: %s" f

let task_info_size = 32
let max_locality_nodes = 4
let mtu_payload = 1458
let max_tasks_per_packet = (mtu_payload - 13) / task_info_size

exception Decode of error

let switch_wire_addr = 0xFFFF

let addr_to_wire = function
  | Addr.Switch -> switch_wire_addr
  | Addr.Host i ->
    if i < 0 || i >= switch_wire_addr then
      invalid_arg "Codec: host id out of 16-bit range";
    i

let addr_of_wire w =
  if w = switch_wire_addr then Addr.Switch
  else if w >= 0 && w < switch_wire_addr then Addr.Host w
  else raise (Decode (Bad_field "address"))

let check_u16 name v =
  if v < 0 || v > 0xFFFF then invalid_arg ("Codec: " ^ name ^ " out of u16 range")

let check_u32 name v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg ("Codec: " ^ name ^ " out of u32 range")

(* -- writers ------------------------------------------------------------ *)

let put_u8 b off v = Bytes.set_uint8 b off v
let put_u16 b off v = Bytes.set_uint16_be b off v
let put_u32 b off v = Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFFFFFF))
let put_u64 b off v = Bytes.set_int64_be b off (Int64.of_int v)

let get_u8 b off = Bytes.get_uint8 b off
let get_u16 b off = Bytes.get_uint16_be b off
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF
let get_u64 b off = Int64.to_int (Bytes.get_int64_be b off)

(* -- TASK_INFO ----------------------------------------------------------- *)

let put_tprops b off = function
  | Task.No_props ->
    put_u8 b off 0;
    put_u64 b (off + 1) 0
  | Task.Resources bitmap ->
    check_u32 "resource bitmap" bitmap;
    put_u8 b off 1;
    put_u64 b (off + 1) bitmap
  | Task.Locality nodes ->
    let n = List.length nodes in
    if n > max_locality_nodes then
      invalid_arg "Codec: too many locality nodes for TPROPS";
    (* node count rides the tag byte's high nibble so the 8-byte payload
       holds four full 16-bit node ids *)
    put_u8 b off (2 lor (n lsl 4));
    put_u64 b (off + 1) 0;
    List.iteri
      (fun i node ->
        check_u16 "locality node id" node;
        put_u16 b (off + 1 + (2 * i)) node)
      nodes
  | Task.Priority p ->
    if p < 1 || p > 0xFF then invalid_arg "Codec: priority out of range";
    put_u8 b off 3;
    put_u64 b (off + 1) p
  | Task.Deadline d ->
    check_u32 "deadline" d;
    put_u8 b off 4;
    put_u64 b (off + 1) d
  | Task.Tenant id ->
    check_u32 "tenant id" id;
    put_u8 b off 5;
    put_u64 b (off + 1) id

let get_tprops b off =
  let tag_byte = get_u8 b off in
  match tag_byte land 0x0F with
  | 0 -> Task.No_props
  | 1 -> Task.Resources (get_u64 b (off + 1))
  | 2 ->
    let n = (tag_byte lsr 4) land 0x0F in
    if n > max_locality_nodes then raise (Decode (Bad_field "locality count"));
    Task.Locality (List.init n (fun i -> get_u16 b (off + 1 + (2 * i))))
  | 3 -> Task.Priority (get_u64 b (off + 1))
  | 4 -> Task.Deadline (get_u64 b (off + 1))
  | 5 -> Task.Tenant (get_u64 b (off + 1))
  | _ -> raise (Decode (Bad_field "tprops tag"))

let put_task b off (t : Task.t) =
  check_u32 "uid" t.id.uid;
  check_u32 "jid" t.id.jid;
  check_u32 "tid" t.id.tid;
  check_u16 "fn_id" t.fn_id;
  if t.fn_par < 0 then invalid_arg "Codec: negative fn_par";
  put_u32 b off t.id.uid;
  put_u32 b (off + 4) t.id.jid;
  put_u32 b (off + 8) t.id.tid;
  put_u16 b (off + 12) t.fn_id;
  put_u64 b (off + 14) t.fn_par;
  put_tprops b (off + 22) t.tprops;
  put_u8 b (off + 31) 0

let get_task b off : Task.t =
  {
    id = { uid = get_u32 b off; jid = get_u32 b (off + 4); tid = get_u32 b (off + 8) };
    fn_id = get_u16 b (off + 12);
    fn_par = get_u64 b (off + 14);
    tprops = get_tprops b (off + 22);
  }

(* -- messages ------------------------------------------------------------ *)

let encoded_size (msg : Message.t) =
  match msg with
  | Job_submission { tasks; _ } -> 13 + (task_info_size * List.length tasks)
  | Job_ack _ -> 9
  | Queue_full { tasks; _ } -> 11 + (task_info_size * List.length tasks)
  | Task_request _ -> 12
  | Task_assignment _ -> 5 + task_info_size
  | Noop_assignment _ -> 3
  | Task_completion _ -> 26
  | Param_fetch _ -> 17
  | Param_data _ -> 19

let encode (msg : Message.t) =
  let size = encoded_size msg in
  if size > mtu_payload then
    invalid_arg
      (Printf.sprintf "Codec.encode: %d bytes exceeds MTU payload %d" size
         mtu_payload);
  let b = Bytes.make size '\000' in
  put_u8 b 0 (Message.opcode msg);
  (match msg with
  | Job_submission { client; uid; jid; tasks } ->
    check_u32 "uid" uid;
    check_u32 "jid" jid;
    put_u16 b 1 (addr_to_wire client);
    put_u32 b 3 uid;
    put_u32 b 7 jid;
    put_u16 b 11 (List.length tasks);
    List.iteri (fun i t -> put_task b (13 + (task_info_size * i)) t) tasks
  | Job_ack { uid; jid } ->
    put_u32 b 1 uid;
    put_u32 b 5 jid
  | Queue_full { uid; jid; tasks } ->
    put_u32 b 1 uid;
    put_u32 b 5 jid;
    put_u16 b 9 (List.length tasks);
    List.iteri (fun i t -> put_task b (11 + (task_info_size * i)) t) tasks
  | Task_request { info; rtrv_prio } ->
    put_u16 b 1 (addr_to_wire info.exec_addr);
    put_u16 b 3 info.exec_port;
    put_u32 b 5 info.exec_rsrc;
    put_u16 b 9 info.exec_node;
    put_u8 b 11 rtrv_prio
  | Task_assignment { task; client; port } ->
    put_u16 b 1 (addr_to_wire client);
    put_u16 b 3 port;
    put_task b 5 task
  | Noop_assignment { port } -> put_u16 b 1 port
  | Task_completion { task_id; client; info; rtrv_prio } ->
    put_u32 b 1 task_id.uid;
    put_u32 b 5 task_id.jid;
    put_u32 b 9 task_id.tid;
    put_u16 b 13 (addr_to_wire client);
    put_u16 b 15 (addr_to_wire info.exec_addr);
    put_u16 b 17 info.exec_port;
    put_u32 b 19 info.exec_rsrc;
    put_u16 b 23 info.exec_node;
    put_u8 b 25 rtrv_prio
  | Param_fetch { task_id; node; port } ->
    put_u32 b 1 task_id.uid;
    put_u32 b 5 task_id.jid;
    put_u32 b 9 task_id.tid;
    put_u16 b 13 node;
    put_u16 b 15 port
  | Param_data { task_id; port; size } ->
    put_u32 b 1 task_id.uid;
    put_u32 b 5 task_id.jid;
    put_u32 b 9 task_id.tid;
    put_u16 b 13 port;
    put_u32 b 15 size);
  b

let need b n = if Bytes.length b < n then raise (Decode Truncated)

let decode_exn b : Message.t =
  need b 1;
  match get_u8 b 0 with
  | 1 ->
    need b 13;
    let client = addr_of_wire (get_u16 b 1) in
    let uid = get_u32 b 3 and jid = get_u32 b 7 in
    let n = get_u16 b 11 in
    need b (13 + (task_info_size * n));
    let tasks = List.init n (fun i -> get_task b (13 + (task_info_size * i))) in
    Job_submission { client; uid; jid; tasks }
  | 2 ->
    need b 9;
    Job_ack { uid = get_u32 b 1; jid = get_u32 b 5 }
  | 3 ->
    need b 11;
    let uid = get_u32 b 1 and jid = get_u32 b 5 in
    let n = get_u16 b 9 in
    need b (11 + (task_info_size * n));
    let tasks = List.init n (fun i -> get_task b (11 + (task_info_size * i))) in
    Queue_full { uid; jid; tasks }
  | 4 ->
    need b 12;
    Task_request
      {
        info =
          {
            exec_addr = addr_of_wire (get_u16 b 1);
            exec_port = get_u16 b 3;
            exec_rsrc = get_u32 b 5;
            exec_node = get_u16 b 9;
          };
        rtrv_prio = get_u8 b 11;
      }
  | 5 ->
    need b (5 + task_info_size);
    let client = addr_of_wire (get_u16 b 1) in
    Task_assignment { task = get_task b 5; client; port = get_u16 b 3 }
  | 6 ->
    need b 3;
    Noop_assignment { port = get_u16 b 1 }
  | 7 ->
    need b 26;
    Task_completion
      {
        task_id = { uid = get_u32 b 1; jid = get_u32 b 5; tid = get_u32 b 9 };
        client = addr_of_wire (get_u16 b 13);
        info =
          {
            exec_addr = addr_of_wire (get_u16 b 15);
            exec_port = get_u16 b 17;
            exec_rsrc = get_u32 b 19;
            exec_node = get_u16 b 23;
          };
        rtrv_prio = get_u8 b 25;
      }
  | 8 ->
    need b 17;
    Param_fetch
      {
        task_id = { uid = get_u32 b 1; jid = get_u32 b 5; tid = get_u32 b 9 };
        node = get_u16 b 13;
        port = get_u16 b 15;
      }
  | 9 ->
    need b 19;
    Param_data
      {
        task_id = { uid = get_u32 b 1; jid = get_u32 b 5; tid = get_u32 b 9 };
        port = get_u16 b 13;
        size = get_u32 b 15;
      }
  | op -> raise (Decode (Bad_opcode op))

let decode b =
  match decode_exn b with
  | msg -> Ok msg
  | exception Decode e -> Error e
  | exception Invalid_argument _ -> Error Truncated
