type id = { uid : int; jid : int; tid : int }

let pp_id fmt { uid; jid; tid } = Format.fprintf fmt "<%d,%d,%d>" uid jid tid
let equal_id a b = a.uid = b.uid && a.jid = b.jid && a.tid = b.tid
let compare_id a b = compare (a.uid, a.jid, a.tid) (b.uid, b.jid, b.tid)

type tprops =
  | No_props
  | Resources of int
  | Locality of int list
  | Priority of int
  | Deadline of int
  | Tenant of int

let pp_tprops fmt = function
  | No_props -> Format.pp_print_string fmt "none"
  | Resources bitmap -> Format.fprintf fmt "rsrc:%#x" bitmap
  | Locality nodes ->
    Format.fprintf fmt "local:[%s]"
      (String.concat ";" (List.map string_of_int nodes))
  | Priority p -> Format.fprintf fmt "prio:%d" p
  | Deadline d -> Format.fprintf fmt "deadline:%dns" d
  | Tenant t -> Format.fprintf fmt "tenant:%d" t

let equal_tprops a b =
  match (a, b) with
  | No_props, No_props -> true
  | Resources x, Resources y -> x = y
  | Locality x, Locality y -> x = y
  | Priority x, Priority y -> x = y
  | Deadline x, Deadline y -> x = y
  | Tenant x, Tenant y -> x = y
  | (No_props | Resources _ | Locality _ | Priority _ | Deadline _ | Tenant _), _ ->
    false

module Fn = struct
  let noop = 0
  let busy_loop = 1
  let data_task = 2
  let fetch_params = 3
end

type t = { id : id; fn_id : int; fn_par : int; tprops : tprops }

let pp fmt t =
  Format.fprintf fmt "task%a fn=%d par=%d props=%a" pp_id t.id t.fn_id t.fn_par
    pp_tprops t.tprops

let equal a b =
  equal_id a.id b.id && a.fn_id = b.fn_id && a.fn_par = b.fn_par
  && equal_tprops a.tprops b.tprops

let make ~uid ~jid ~tid ?(tprops = No_props) ~fn_id ~fn_par () =
  { id = { uid; jid; tid }; fn_id; fn_par; tprops }

let priority_level t = match t.tprops with Priority p -> p | _ -> 1
let required_resources t = match t.tprops with Resources r -> r | _ -> 0
let locality_nodes t = match t.tprops with Locality nodes -> nodes | _ -> []
let relative_deadline t = match t.tprops with Deadline d -> Some d | _ -> None
let tenant t = match t.tprops with Tenant x -> Some x | _ -> None
