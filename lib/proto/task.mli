(** Tasks and their scheduling metadata (paper §4.1).

    A task is identified by the tuple [<UID, JID, TID>] and carries the
    id and argument of a pre-compiled function plus policy-specific
    properties (TPROPS): a resource bitmap, data-locality node ids, or
    a priority level. *)

(** Globally unique task identifier. *)
type id = { uid : int; jid : int; tid : int }

val pp_id : Format.formatter -> id -> unit
val equal_id : id -> id -> bool
val compare_id : id -> id -> int

(** Policy-specific task properties (the TPROPS field). *)
type tprops =
  | No_props  (** plain FCFS task *)
  | Resources of int  (** bitmap of required resources (paper §5.2) *)
  | Locality of int list  (** ids of nodes holding the input data (§5.3) *)
  | Priority of int  (** priority level, 1 = highest (§6.1) *)
  | Deadline of int  (** relative deadline in ns (PIFO EDF discipline) *)
  | Tenant of int  (** tenant id for weighted fair queueing (PIFO WFQ) *)

val pp_tprops : Format.formatter -> tprops -> unit
val equal_tprops : tprops -> tprops -> bool

(** Well-known function ids understood by the simulated executors. *)
module Fn : sig
  (** Immediately completes; used by the throughput experiments. *)
  val noop : int

  (** Busy-loops for [fn_par] nanoseconds. *)
  val busy_loop : int

  (** Busy-loops for [fn_par] ns after fetching input data; the fetch
      costs extra if the data is not local (paper §8.5). *)
  val data_task : int

  (** A transmission function (paper §4.4): the submitted task carries no
      parameters; the executor contacts the submitting client to fetch
      them before busy-looping for [fn_par] nanoseconds. *)
  val fetch_params : int
end

type t = {
  id : id;
  fn_id : int;
  fn_par : int;  (** argument; for [busy_loop]/[data_task], duration in ns *)
  tprops : tprops;
}

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

(** [make ~uid ~jid ~tid ?tprops ~fn_id ~fn_par ()] builds a task. *)
val make :
  uid:int -> jid:int -> tid:int -> ?tprops:tprops -> fn_id:int -> fn_par:int ->
  unit -> t

(** [priority_level t] is the priority from TPROPS, defaulting to 1. *)
val priority_level : t -> int

(** [required_resources t] is the resource bitmap, defaulting to 0. *)
val required_resources : t -> int

(** [locality_nodes t] is the data-local node list, defaulting to []. *)
val locality_nodes : t -> int list

(** [relative_deadline t] is the relative deadline in ns, if any. *)
val relative_deadline : t -> int option

(** [tenant t] is the tenant id, if any. *)
val tenant : t -> int option
