(** Execute a {!Schedule.t} against the real switch: the
    {!Draconis.Switch_program} over {!Draconis.Circular_queue}
    registers, driven through the {!Draconis_p4.Pipeline} and the
    latency-modeled {!Draconis_net.Fabric}, with fault ops armed via
    {!Draconis_fault.Injector}.

    The rig is fully deterministic: clients at [Host 0..], executors at
    [Host 100..] (odd-indexed executors pull — they complete tasks and
    piggyback the next request; even-indexed ones absorb, so runs can
    end with queued work), all switch-side {!Draconis.Instrument}
    events and host-side deliveries recorded into one event log for
    {!Checker.check}. *)

(** An intentionally (re-)introduced protocol bug — the fuzz harness's
    self-test.  Each maps to a hidden kill switch in
    {!Draconis.Circular_queue} that disables one safety check for the
    duration of the run. *)
type bug =
  | Skip_stamp_check
      (** dequeue trusts every slot: stale/free slots get resurrected *)
  | Drop_retrieve_repair
      (** retrieve-pointer overruns are never repaired: tasks strand *)

val bug_to_string : bug -> string

(** @raise Invalid_argument on unknown names. *)
val bug_of_string : string -> bug

(** Execute once; returns the recorded run for {!Checker.check}. *)
val run : ?bug:bug -> Schedule.t -> Checker.run

(** Execute twice (replication) and check all invariants. *)
val run_checked : ?bug:bug -> Schedule.t -> Checker.report
