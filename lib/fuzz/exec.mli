(** Execute a {!Schedule.t} against the real switch: the
    {!Draconis.Switch_program} over {!Draconis.Circular_queue}
    registers, driven through the {!Draconis_p4.Pipeline} and the
    latency-modeled {!Draconis_net.Fabric}, with fault ops armed via
    {!Draconis_fault.Injector}.

    The rig is fully deterministic: clients at [Host 0..], executors at
    [Host 100..] (odd-indexed executors pull — they complete tasks and
    piggyback the next request; even-indexed ones absorb, so runs can
    end with queued work), all switch-side {!Draconis.Instrument}
    events and host-side deliveries recorded into one event log for
    {!Checker.check}. *)

(** An intentionally (re-)introduced protocol bug — the fuzz harness's
    self-test.  Each maps to a hidden kill switch in
    {!Draconis.Circular_queue} that disables one safety check for the
    duration of the run. *)
type bug =
  | Skip_stamp_check
      (** dequeue trusts every slot: stale/free slots get resurrected *)
  | Drop_retrieve_repair
      (** retrieve-pointer overruns are never repaired: tasks strand *)

val bug_to_string : bug -> string

(** @raise Invalid_argument on unknown names. *)
val bug_of_string : string -> bug

(** Execute once; returns the recorded run for {!Checker.check}. *)
val run : ?bug:bug -> Schedule.t -> Checker.run

(** Execute through the {e sharded} data path: the same switch program
    and hosts, but partitioned over {!Draconis_sim.Lp} logical
    processes under {!Draconis_sim.Sync} barrier windows, with every
    host <-> switch message stamped through the
    {!Draconis_net.Fabric.router} mailboxes.  [shards] is 1 (every
    entity on one LP) or 2 (switch LP + host LP — all traffic crosses
    the LP boundary).  The schedule's fault ops compile to the static
    [loss_at]/[cut_at]/straggler window evaluators the sharded fabric
    requires, so the recorded run is a pure function of the schedule —
    and, by the determinism contract, identical for both [shards]
    values up to host-side event interleaving (checked by the
    sharded-consistency invariant).
    @raise Invalid_argument if [shards] is not 1 or 2. *)
val run_sharded : shards:int -> Schedule.t -> Checker.run

(** Execute twice (replication) and check all invariants.  With
    [~sharded:true] (and no injected bug) the schedule also executes
    through {!run_sharded} at 1 and 2 shards, and the pair feeds the
    sharded-consistency invariant. *)
val run_checked : ?bug:bug -> ?sharded:bool -> Schedule.t -> Checker.report
