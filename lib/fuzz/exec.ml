open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis_p4
open Draconis

type bug = Skip_stamp_check | Drop_retrieve_repair

let bug_to_string = function
  | Skip_stamp_check -> "skip-stamp-check"
  | Drop_retrieve_repair -> "drop-retrieve-repair"

let bug_of_string = function
  | "skip-stamp-check" -> Skip_stamp_check
  | "drop-retrieve-repair" -> Drop_retrieve_repair
  | s ->
    invalid_arg
      (Printf.sprintf
         "Exec.bug_of_string: unknown bug %S (want skip-stamp-check|drop-retrieve-repair)"
         s)

(* Generous recirculation budget: the rig must not lose repair/swap
   packets to loop overflow, or conservation violations would be rig
   artifacts rather than protocol bugs. *)
let recirc_queue_limit = 4096

(* Livelock backstop; the rig is bounded, so a real run drains in far
   fewer events and a run that hits this fails pointer convergence. *)
let max_events = 2_000_000

let policy_of = function
  | Schedule.Fcfs -> Policy.Fcfs
  | Schedule.Prio levels -> Policy.Priority { levels }
  | Schedule.Rsrc max_swaps -> Policy.Resource_aware { max_swaps }
  | Schedule.Edf default_deadline -> Policy.Edf { default_deadline }
  | Schedule.Wfq (quantum, weights) ->
    Policy.Wfq { quantum; weights = Array.of_list weights }
  | Schedule.Aging (levels, quantum) -> Policy.Aging_priority { levels; quantum }

let tprops_of = function
  | Op.P_none -> Task.No_props
  | Op.P_prio p -> Task.Priority p
  | Op.P_rsrc r -> Task.Resources r
  | Op.P_deadline d -> Task.Deadline d
  | Op.P_tenant t -> Task.Tenant t

(* Resource bitmaps the executors advertise, round-robin by index; the
   generator draws task requirements from the same set. *)
let exec_rsrc_of i = [| 0x1; 0x2; 0x3 |].(i mod 3)

let executor_addr i = Addr.Host (100 + i)

let info_of i =
  {
    Message.exec_addr = executor_addr i;
    exec_port = i;
    exec_rsrc = exec_rsrc_of i;
    exec_node = i;
  }

(* FNV-1a over every register cell: a cheap structural fingerprint of
   the drained switch state, compared across replicated executions. *)
let fingerprint_registers regs =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001b3L
  in
  List.iter
    (fun reg ->
      for i = 0 to Draconis_p4.Register.size reg - 1 do
        mix (Draconis_p4.Register.peek reg i)
      done)
    regs;
  !h

let fuzz_target ~engine ~fabric ~slowdown =
  {
    Draconis_fault.Target.name = "fuzz-rig";
    engine;
    failover = (fun () -> 0);
    crash_node = (fun _ -> invalid_arg "fuzz rig: executors cannot crash");
    restart_node = (fun _ -> ());
    set_loss_override = Fabric.set_loss_override fabric;
    partition = Fabric.partition fabric;
    heal = Fabric.heal fabric;
    set_slowdown =
      (fun node factor ->
        if node >= 0 && node < Array.length slowdown then slowdown.(node) <- factor);
    supports_crash = false;
    supports_straggler = true;
  }

let plan_of_ops ops =
  Draconis_fault.Plan.create
    (List.filter_map
       (fun op ->
         match op with
         | Op.Loss { at; duration; loss } ->
           Some
             { Draconis_fault.Plan.at; event = Loss_burst { duration; loss } }
         | Op.Partition { at; hosts; duration } ->
           Some { Draconis_fault.Plan.at; event = Partition { hosts; duration } }
         | Op.Straggler { at; executor; factor; duration } ->
           Some
             {
               Draconis_fault.Plan.at;
               event = Straggler { node = executor; factor; duration };
             }
         | Op.Submit _ | Op.Request _ -> None)
       ops)

let run ?bug (schedule : Schedule.t) =
  Schedule.validate schedule;
  (* In-band telemetry rides along on every fuzz execution: stamps add
     no engine events, so determinism (and the replication twin) is
     unaffected, and the stamped enqueue occupancy feeds the
     int-consistency invariant. *)
  let int_was = Draconis_obs.Int_telemetry.enabled () in
  Draconis_obs.Int_telemetry.enable () ;
  Fun.protect
    ~finally:(fun () -> if not int_was then Draconis_obs.Int_telemetry.disable ())
  @@ fun () ->
  let events = ref [] in
  let record ev = events := ev :: !events in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:schedule.seed in
  let fabric = Fabric.create engine rng in
  let instrument =
    {
      (* The enqueue hook fires just after the queue noted its INT
         occupancy for the armed traversal, so reading it here pairs
         the event with the very stamp the switch took. *)
      Instrument.on_enqueue =
        (fun id ~level ->
          record
            (Checker.Enqueued
               { id; level; int_occ = Draconis_obs.Int_telemetry.noted_occupancy () }));
      on_dequeue = (fun id ~level -> record (Checker.Dequeued { id; level }));
      on_assign =
        (fun id ~node ~requested_at:_ -> record (Checker.Assigned { id; node }));
      on_reject = (fun count -> record (Checker.Rejected { count }));
      on_noop = (fun () -> record Checker.Noop);
      on_swap =
        (fun ~swapped_in ~swapped_out ~level ->
          record (Checker.Swapped { into = swapped_in; out = swapped_out; level }));
      on_recirculate = (fun ~kind -> record (Checker.Recirculated { kind }));
      on_repair_flag =
        (fun flag ~level ->
          record
            (Checker.Repair_flag
               { flag = Instrument.repair_flag_name flag; level }));
      on_rank = (fun id ~rank -> record (Checker.Ranked { id; rank }));
      on_pop_scan = (fun () -> record Checker.Pop_scan_started);
    }
  in
  let program =
    Switch_program.create ~engine ~instrument ~policy:(policy_of schedule.policy)
      ~queue_capacity:schedule.capacity ()
  in
  let pipeline =
    Pipeline.attach
      ~config:{ Pipeline.default_config with recirc_queue_limit }
      fabric
      ~wrap:(fun m -> Switch_packet.Wire m)
      (Switch_program.program program)
  in
  (* Pointer wraparound: start both pointers of every level just below
     the wrap modulus so the schedule crosses the boundary early
     (Schedule.validate rejects wrap_offset for pointer-free PIFOs). *)
  (match schedule.wrap_offset with
  | None -> ()
  | Some offset ->
    for level = 0 to Policy.queue_count (policy_of schedule.policy) - 1 do
      let q = Switch_program.queue program level in
      let wrap = Circular_queue.wrap_modulus q in
      let p = (wrap - (offset mod wrap)) mod wrap in
      Circular_queue.unsafe_set_pointers_for_test q ~add:p ~retrieve:p
    done);
  (* Clients: sinks for acks, bounces, and completions. *)
  for c = 0 to schedule.clients - 1 do
    Fabric.register fabric (Addr.Host c) (fun env ->
        match env.Fabric.payload with
        | Message.Queue_full { tasks; _ } ->
          List.iter (fun (task : Task.t) -> record (Checker.Returned { id = task.id })) tasks
        | Message.Task_completion { task_id; _ } ->
          record (Checker.Completed { id = task_id })
        | _ -> ())
  done;
  (* Executors: all record deliveries; odd-indexed ones are "pulling"
     executors that complete the task after its service time and
     piggyback the next request on the completion (§3.1), until a no-op
     tells them the queues are dry.  Even-indexed executors absorb the
     task silently, so drained runs can still end with queued work. *)
  let slowdown = Array.make schedule.executors 1.0 in
  for e = 0 to schedule.executors - 1 do
    Fabric.register fabric (executor_addr e) (fun env ->
        match env.Fabric.payload with
        | Message.Task_assignment { task; client; _ } ->
          record (Checker.Delivered { id = task.id; executor = e });
          if e mod 2 = 1 then begin
            let service =
              max 1 (int_of_float (float_of_int schedule.service *. slowdown.(e)))
            in
            ignore @@ Engine.schedule engine ~after:service (fun () ->
                Fabric.send fabric ~src:(executor_addr e) ~dst:Addr.Switch
                  (Message.Task_completion
                     { task_id = task.id; client; info = info_of e; rtrv_prio = 1 }))
          end
        | _ -> ())
  done;
  (* Workload ops become engine events; fault ops become a fault plan. *)
  List.iter
    (fun op ->
      match op with
      | Op.Submit { at; client; uid; jid; count; prop } ->
        let client = client mod schedule.clients in
        let tasks =
          List.init count (fun tid ->
              Task.make ~uid ~jid ~tid ~tprops:(tprops_of prop) ~fn_id:Task.Fn.noop
                ~fn_par:0 ())
        in
        ignore @@ Engine.schedule_at engine ~at (fun () ->
            List.iter (fun (t : Task.t) -> record (Checker.Submitted { id = t.id })) tasks;
            Fabric.send fabric ~src:(Addr.Host client) ~dst:Addr.Switch
              (Message.Job_submission { client = Addr.Host client; uid; jid; tasks }))
      | Op.Request { at; executor; prio } ->
        let executor = executor mod schedule.executors in
        ignore @@ Engine.schedule_at engine ~at (fun () ->
            Fabric.send fabric ~src:(executor_addr executor) ~dst:Addr.Switch
              (Message.Task_request { info = info_of executor; rtrv_prio = prio }))
      | Op.Loss _ | Op.Partition _ | Op.Straggler _ -> ())
    schedule.ops;
  let plan = plan_of_ops schedule.ops in
  if not (Draconis_fault.Plan.is_empty plan) then
    ignore
      (Draconis_fault.Injector.arm plan (fuzz_target ~engine ~fabric ~slowdown));
  (* Scoped bug injection: flip the queue's hidden kill switch for this
     run only. *)
  let set_bug v =
    match bug with
    | None -> ()
    | Some Skip_stamp_check -> Circular_queue.debug_skip_stamp_check := v
    | Some Drop_retrieve_repair -> Circular_queue.debug_drop_retrieve_repair := v
  in
  let access_violation = ref None in
  set_bug true;
  Fun.protect
    ~finally:(fun () -> set_bug false)
    (fun () ->
      try ignore (Engine.run ~max_events engine)
      with Draconis_p4.Packet_ctx.Access_violation name ->
        access_violation := Some name);
  (* Drained end state.  PIFO backends have no pointers or repair flags;
     their walk is the rank store in packed (pop) order, and the
     occupancy register plays the pointer-occupancy role (a claim that
     leaked the occupancy gate fails pointer convergence). *)
  let levels =
    match Switch_program.pifo program with
    | Some pifo ->
      let walk =
        List.map
          (fun words -> (Entry.of_words words).Entry.task.id)
          (Draconis_pifo.Pifo.peek_payloads pifo)
      in
      [|
        {
          Checker.add_ptr = 0;
          retrieve_ptr = 0;
          add_flag = false;
          retrieve_flag = false;
          pointer_occupancy = Draconis_pifo.Pifo.occupancy pifo;
          walk;
        };
      |]
    | None ->
    Array.init
      (Policy.queue_count (policy_of schedule.policy))
      (fun level ->
        let q = Switch_program.queue program level in
        let add_ptr = Circular_queue.peek_add_ptr q in
        let retrieve_ptr = Circular_queue.peek_retrieve_ptr q in
        let d = Circular_queue.distance q ~ahead:add_ptr ~behind:retrieve_ptr in
        let wrap = Circular_queue.wrap_modulus q in
        let span = if d > wrap / 2 then 0 else min d (4 * schedule.capacity) in
        let walk = ref [] in
        let p = ref retrieve_ptr in
        for _ = 1 to span do
          (match Circular_queue.peek_entry q ~index:!p with
          | Some (entry : Entry.t) -> walk := entry.task.id :: !walk
          | None -> ());
          p := Circular_queue.next_index q !p
        done;
        {
          Checker.add_ptr;
          retrieve_ptr;
          add_flag = Circular_queue.peek_add_repair_flag q;
          retrieve_flag = Circular_queue.peek_retrieve_repair_flag q;
          pointer_occupancy = Circular_queue.occupancy q;
          walk = List.rev !walk;
        })
  in
  {
    Checker.events = Array.of_list (List.rev !events);
    levels;
    fabric_lost = Fabric.lost fabric + Fabric.partition_dropped fabric;
    recirc_dropped = Pipeline.recirc_dropped pipeline;
    access_violation = !access_violation;
    fingerprint = fingerprint_registers (Switch_program.registers program);
  }

(* One schedule, executed twice: determinism makes the second run free
   insurance, and it feeds the replication-consistency invariant. *)
let run_checked ?bug schedule =
  let first = run ?bug schedule in
  let twin = run ?bug schedule in
  Checker.check ~twin schedule first
