open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis_p4
open Draconis

type bug = Skip_stamp_check | Drop_retrieve_repair

let bug_to_string = function
  | Skip_stamp_check -> "skip-stamp-check"
  | Drop_retrieve_repair -> "drop-retrieve-repair"

let bug_of_string = function
  | "skip-stamp-check" -> Skip_stamp_check
  | "drop-retrieve-repair" -> Drop_retrieve_repair
  | s ->
    invalid_arg
      (Printf.sprintf
         "Exec.bug_of_string: unknown bug %S (want skip-stamp-check|drop-retrieve-repair)"
         s)

(* Generous recirculation budget: the rig must not lose repair/swap
   packets to loop overflow, or conservation violations would be rig
   artifacts rather than protocol bugs. *)
let recirc_queue_limit = 4096

(* Livelock backstop; the rig is bounded, so a real run drains in far
   fewer events and a run that hits this fails pointer convergence. *)
let max_events = 2_000_000

let policy_of = function
  | Schedule.Fcfs -> Policy.Fcfs
  | Schedule.Prio levels -> Policy.Priority { levels }
  | Schedule.Rsrc max_swaps -> Policy.Resource_aware { max_swaps }
  | Schedule.Edf default_deadline -> Policy.Edf { default_deadline }
  | Schedule.Wfq (quantum, weights) ->
    Policy.Wfq { quantum; weights = Array.of_list weights }
  | Schedule.Aging (levels, quantum) -> Policy.Aging_priority { levels; quantum }

let tprops_of = function
  | Op.P_none -> Task.No_props
  | Op.P_prio p -> Task.Priority p
  | Op.P_rsrc r -> Task.Resources r
  | Op.P_deadline d -> Task.Deadline d
  | Op.P_tenant t -> Task.Tenant t

(* Resource bitmaps the executors advertise, round-robin by index; the
   generator draws task requirements from the same set. *)
let exec_rsrc_of i = [| 0x1; 0x2; 0x3 |].(i mod 3)

let executor_addr i = Addr.Host (100 + i)

let info_of i =
  {
    Message.exec_addr = executor_addr i;
    exec_port = i;
    exec_rsrc = exec_rsrc_of i;
    exec_node = i;
  }

(* FNV-1a over every register cell: a cheap structural fingerprint of
   the drained switch state, compared across replicated executions. *)
let fingerprint_registers regs =
  let h = ref 0xcbf29ce484222325L in
  let mix v =
    h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001b3L
  in
  List.iter
    (fun reg ->
      for i = 0 to Draconis_p4.Register.size reg - 1 do
        mix (Draconis_p4.Register.peek reg i)
      done)
    regs;
  !h

let fuzz_target ~engine ~fabric ~slowdown =
  {
    Draconis_fault.Target.name = "fuzz-rig";
    engine;
    failover = (fun () -> 0);
    crash_node = (fun _ -> invalid_arg "fuzz rig: executors cannot crash");
    restart_node = (fun _ -> ());
    set_loss_override = Fabric.set_loss_override fabric;
    partition = Fabric.partition fabric;
    heal = Fabric.heal fabric;
    set_slowdown =
      (fun node factor ->
        if node >= 0 && node < Array.length slowdown then slowdown.(node) <- factor);
    supports_crash = false;
    supports_straggler = true;
  }

let plan_of_ops ops =
  Draconis_fault.Plan.create
    (List.filter_map
       (fun op ->
         match op with
         | Op.Loss { at; duration; loss } ->
           Some
             { Draconis_fault.Plan.at; event = Loss_burst { duration; loss } }
         | Op.Partition { at; hosts; duration } ->
           Some { Draconis_fault.Plan.at; event = Partition { hosts; duration } }
         | Op.Straggler { at; executor; factor; duration } ->
           Some
             {
               Draconis_fault.Plan.at;
               event = Straggler { node = executor; factor; duration };
             }
         | Op.Submit _ | Op.Request _ -> None)
       ops)

(* -- pieces shared by the single-engine and the sharded rig --------------- *)

let make_instrument record =
  {
    (* The enqueue hook fires just after the queue noted its INT
       occupancy for the armed traversal, so reading it here pairs
       the event with the very stamp the switch took. *)
    Instrument.on_enqueue =
      (fun id ~level ->
        record
          (Checker.Enqueued
             { id; level; int_occ = Draconis_obs.Int_telemetry.noted_occupancy () }));
    on_dequeue = (fun id ~level -> record (Checker.Dequeued { id; level }));
    on_assign =
      (fun id ~node ~requested_at:_ -> record (Checker.Assigned { id; node }));
    on_reject = (fun count -> record (Checker.Rejected { count }));
    on_noop = (fun () -> record Checker.Noop);
    on_swap =
      (fun ~swapped_in ~swapped_out ~level ->
        record (Checker.Swapped { into = swapped_in; out = swapped_out; level }));
    on_recirculate = (fun ~kind -> record (Checker.Recirculated { kind }));
    on_repair_flag =
      (fun flag ~level ->
        record
          (Checker.Repair_flag
             { flag = Instrument.repair_flag_name flag; level }));
    on_rank = (fun id ~rank -> record (Checker.Ranked { id; rank }));
    on_pop_scan = (fun () -> record Checker.Pop_scan_started);
  }

(* Pointer wraparound: start both pointers of every level just below
   the wrap modulus so the schedule crosses the boundary early
   (Schedule.validate rejects wrap_offset for pointer-free PIFOs). *)
let set_wrap_offset program (schedule : Schedule.t) =
  match schedule.wrap_offset with
  | None -> ()
  | Some offset ->
    for level = 0 to Policy.queue_count (policy_of schedule.policy) - 1 do
      let q = Switch_program.queue program level in
      let wrap = Circular_queue.wrap_modulus q in
      let p = (wrap - (offset mod wrap)) mod wrap in
      Circular_queue.unsafe_set_pointers_for_test q ~add:p ~retrieve:p
    done

(* Clients: sinks for acks, bounces, and completions.  Executors: all
   record deliveries; odd-indexed ones are "pulling" executors that
   complete the task after its service time and piggyback the next
   request on the completion (§3.1), until a no-op tells them the
   queues are dry.  Even-indexed executors absorb the task silently, so
   drained runs can still end with queued work.  [engine_of]/[fabric_of]
   pick the engine and fabric instance a host lives on (the shared ones
   for the single-engine rig, the owning LP's for the sharded rig);
   [slow_at e now] is the executor's current straggler factor. *)
let wire_hosts ~record ~(schedule : Schedule.t) ~register ~engine_of ~fabric_of
    ~slow_at =
  for c = 0 to schedule.clients - 1 do
    register (Addr.Host c) (fun env ->
        match env.Fabric.payload with
        | Message.Queue_full { tasks; _ } ->
          List.iter (fun (task : Task.t) -> record (Checker.Returned { id = task.id })) tasks
        | Message.Task_completion { task_id; _ } ->
          record (Checker.Completed { id = task_id })
        | _ -> ())
  done;
  for e = 0 to schedule.executors - 1 do
    let addr = executor_addr e in
    register addr (fun env ->
        match env.Fabric.payload with
        | Message.Task_assignment { task; client; _ } ->
          record (Checker.Delivered { id = task.id; executor = e });
          if e mod 2 = 1 then begin
            let engine = engine_of addr in
            let service =
              max 1
                (int_of_float
                   (float_of_int schedule.service *. slow_at e (Engine.now engine)))
            in
            ignore @@ Engine.schedule engine ~after:service (fun () ->
                Fabric.send (fabric_of addr) ~src:addr ~dst:Addr.Switch
                  (Message.Task_completion
                     { task_id = task.id; client; info = info_of e; rtrv_prio = 1 }))
          end
        | _ -> ())
  done

(* Workload ops become events on the owning host's engine. *)
let inject_workload ~record ~(schedule : Schedule.t) ~engine_of ~fabric_of =
  List.iter
    (fun op ->
      match op with
      | Op.Submit { at; client; uid; jid; count; prop } ->
        let client = client mod schedule.clients in
        let addr = Addr.Host client in
        let tasks =
          List.init count (fun tid ->
              Task.make ~uid ~jid ~tid ~tprops:(tprops_of prop) ~fn_id:Task.Fn.noop
                ~fn_par:0 ())
        in
        ignore @@ Engine.schedule_at (engine_of addr) ~at (fun () ->
            List.iter (fun (t : Task.t) -> record (Checker.Submitted { id = t.id })) tasks;
            Fabric.send (fabric_of addr) ~src:addr ~dst:Addr.Switch
              (Message.Job_submission { client = addr; uid; jid; tasks }))
      | Op.Request { at; executor; prio } ->
        let executor = executor mod schedule.executors in
        let addr = executor_addr executor in
        ignore @@ Engine.schedule_at (engine_of addr) ~at (fun () ->
            Fabric.send (fabric_of addr) ~src:addr ~dst:Addr.Switch
              (Message.Task_request { info = info_of executor; rtrv_prio = prio }))
      | Op.Loss _ | Op.Partition _ | Op.Straggler _ -> ())
    schedule.ops

(* Drained end state.  PIFO backends have no pointers or repair flags;
   their walk is the rank store in packed (pop) order, and the
   occupancy register plays the pointer-occupancy role (a claim that
   leaked the occupancy gate fails pointer convergence). *)
let collect_levels program (schedule : Schedule.t) =
  match Switch_program.pifo program with
  | Some pifo ->
    let walk =
      List.map
        (fun words -> (Entry.of_words words).Entry.task.id)
        (Draconis_pifo.Pifo.peek_payloads pifo)
    in
    [|
      {
        Checker.add_ptr = 0;
        retrieve_ptr = 0;
        add_flag = false;
        retrieve_flag = false;
        pointer_occupancy = Draconis_pifo.Pifo.occupancy pifo;
        walk;
      };
    |]
  | None ->
    Array.init
      (Policy.queue_count (policy_of schedule.policy))
      (fun level ->
        let q = Switch_program.queue program level in
        let add_ptr = Circular_queue.peek_add_ptr q in
        let retrieve_ptr = Circular_queue.peek_retrieve_ptr q in
        let d = Circular_queue.distance q ~ahead:add_ptr ~behind:retrieve_ptr in
        let wrap = Circular_queue.wrap_modulus q in
        let span = if d > wrap / 2 then 0 else min d (4 * schedule.capacity) in
        let walk = ref [] in
        let p = ref retrieve_ptr in
        for _ = 1 to span do
          (match Circular_queue.peek_entry q ~index:!p with
          | Some (entry : Entry.t) -> walk := entry.task.id :: !walk
          | None -> ());
          p := Circular_queue.next_index q !p
        done;
        {
          Checker.add_ptr;
          retrieve_ptr;
          add_flag = Circular_queue.peek_add_repair_flag q;
          retrieve_flag = Circular_queue.peek_retrieve_repair_flag q;
          pointer_occupancy = Circular_queue.occupancy q;
          walk = List.rev !walk;
        })

(* -- the single-engine rig ------------------------------------------------ *)

let run ?bug (schedule : Schedule.t) =
  Schedule.validate schedule;
  (* In-band telemetry rides along on every fuzz execution: stamps add
     no engine events, so determinism (and the replication twin) is
     unaffected, and the stamped enqueue occupancy feeds the
     int-consistency invariant. *)
  let int_was = Draconis_obs.Int_telemetry.enabled () in
  Draconis_obs.Int_telemetry.enable () ;
  Fun.protect
    ~finally:(fun () -> if not int_was then Draconis_obs.Int_telemetry.disable ())
  @@ fun () ->
  let events = ref [] in
  let record ev = events := ev :: !events in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:schedule.seed in
  let fabric = Fabric.create engine rng in
  let program =
    Switch_program.create ~engine ~instrument:(make_instrument record)
      ~policy:(policy_of schedule.policy) ~queue_capacity:schedule.capacity ()
  in
  let pipeline =
    Pipeline.attach
      ~config:{ Pipeline.default_config with recirc_queue_limit }
      fabric
      ~wrap:(fun m -> Switch_packet.Wire m)
      (Switch_program.program program)
  in
  set_wrap_offset program schedule;
  let slowdown = Array.make schedule.executors 1.0 in
  wire_hosts ~record ~schedule ~register:(Fabric.register fabric)
    ~engine_of:(fun _ -> engine)
    ~fabric_of:(fun _ -> fabric)
    ~slow_at:(fun e _now -> slowdown.(e));
  (* Workload ops become engine events; fault ops become a fault plan. *)
  inject_workload ~record ~schedule
    ~engine_of:(fun _ -> engine)
    ~fabric_of:(fun _ -> fabric);
  let plan = plan_of_ops schedule.ops in
  if not (Draconis_fault.Plan.is_empty plan) then
    ignore
      (Draconis_fault.Injector.arm plan (fuzz_target ~engine ~fabric ~slowdown));
  (* Scoped bug injection: flip the queue's hidden kill switch for this
     run only. *)
  let set_bug v =
    match bug with
    | None -> ()
    | Some Skip_stamp_check -> Circular_queue.debug_skip_stamp_check := v
    | Some Drop_retrieve_repair -> Circular_queue.debug_drop_retrieve_repair := v
  in
  let access_violation = ref None in
  set_bug true;
  Fun.protect
    ~finally:(fun () -> set_bug false)
    (fun () ->
      try ignore (Engine.run ~max_events engine)
      with Draconis_p4.Packet_ctx.Access_violation name ->
        access_violation := Some name);
  {
    Checker.events = Array.of_list (List.rev !events);
    levels = collect_levels program schedule;
    fabric_lost = Fabric.lost fabric + Fabric.partition_dropped fabric;
    recirc_dropped = Pipeline.recirc_dropped pipeline;
    access_violation = !access_violation;
    fingerprint = fingerprint_registers (Switch_program.registers program);
  }

(* -- the sharded rig ------------------------------------------------------ *)

(* The sharded fabric forbids runtime fault controls (they would step
   fabric-global state), so the schedule's fault ops compile to pure
   window evaluators instead — functions of time (and host) only,
   max-composed over overlapping windows, which keeps every draw and
   drop independent of how entities were grouped onto LPs. *)
let compile_faults (schedule : Schedule.t) =
  let windows f = List.filter_map f schedule.Schedule.ops in
  let losses =
    windows (function
      | Op.Loss { at; duration; loss } -> Some (at, at + duration, loss)
      | _ -> None)
  in
  let cuts =
    windows (function
      | Op.Partition { at; hosts; duration } -> Some (at, at + duration, hosts)
      | _ -> None)
  in
  let slows =
    windows (function
      | Op.Straggler { at; executor; factor; duration } ->
        Some (at, at + duration, executor, factor)
      | _ -> None)
  in
  let loss_at now =
    List.fold_left
      (fun acc (a, b, p) -> if now >= a && now < b then Float.max acc p else acc)
      0.0 losses
  in
  let cut_at now host =
    List.exists (fun (a, b, hs) -> now >= a && now < b && List.mem host hs) cuts
  in
  let slow_at e now =
    List.fold_left
      (fun acc (a, b, x, f) ->
        if x = e && now >= a && now < b then Float.max acc f else acc)
      1.0 slows
  in
  (loss_at, cut_at, slow_at)

(* Time backstop for [Sync.run]: the barrier loop has no event budget,
   so a wedged run must be cut off by the clock instead.  A healthy
   schedule drains within microseconds of its last op; anything still
   live this far past it is a livelock, and the truncated logs of the
   two partitionings stay comparable because the window sequence is
   partition-independent. *)
let drain_slack = Time.ms 50

let sharded_horizon (schedule : Schedule.t) =
  let op_end acc op =
    max acc
      (match op with
      | Op.Submit { at; _ } | Op.Request { at; _ } -> at
      | Op.Loss { at; duration; _ }
      | Op.Partition { at; duration; _ }
      | Op.Straggler { at; duration; _ } ->
        at + duration)
  in
  List.fold_left op_end 0 schedule.Schedule.ops + drain_slack

let run_sharded ~shards (schedule : Schedule.t) =
  if shards < 1 || shards > 2 then
    invalid_arg
      (Printf.sprintf
         "Exec.run_sharded: %d shards (want 1 — every entity on one LP — or 2 \
          — switch LP + host LP)"
         shards);
  Schedule.validate schedule;
  let int_was = Draconis_obs.Int_telemetry.enabled () in
  Draconis_obs.Int_telemetry.enable () ;
  Fun.protect
    ~finally:(fun () -> if not int_was then Draconis_obs.Int_telemetry.disable ())
  @@ fun () ->
  let events = ref [] in
  let record ev = events := ev :: !events in
  let lps = Array.init shards (fun id -> Lp.create ~id ~seed:schedule.seed ()) in
  let sync = Sync.create ~lookahead:(Fabric.lookahead Fabric.default_config) lps in
  let loss_at, cut_at, slow_at = compile_faults schedule in
  (* LP 0 owns the switch; with two shards every host (clients at
     [Host 0..], executors at [Host 100..]) moves to LP 1, so all
     client/executor <-> switch traffic crosses the LP boundary through
     stamped mailboxes. *)
  let host_lp = shards - 1 in
  let instances =
    Fabric.router ~loss_at ~cut_at ~lps ~switch_lp:0
      ~lp_of_host:(fun _ -> host_lp)
      ~hosts:(100 + schedule.executors) ~seed:schedule.seed ()
  in
  let switch_fabric = instances.(0) in
  let host_fabric = instances.(host_lp) in
  let host_engine = Lp.engine lps.(host_lp) in
  let program =
    Switch_program.create ~engine:(Lp.engine lps.(0))
      ~instrument:(make_instrument record) ~policy:(policy_of schedule.policy)
      ~queue_capacity:schedule.capacity ()
  in
  let pipeline =
    Pipeline.attach
      ~config:{ Pipeline.default_config with recirc_queue_limit }
      switch_fabric
      ~wrap:(fun m -> Switch_packet.Wire m)
      (Switch_program.program program)
  in
  set_wrap_offset program schedule;
  wire_hosts ~record ~schedule ~register:(Fabric.register host_fabric)
    ~engine_of:(fun _ -> host_engine)
    ~fabric_of:(fun _ -> host_fabric)
    ~slow_at;
  inject_workload ~record ~schedule
    ~engine_of:(fun _ -> host_engine)
    ~fabric_of:(fun _ -> host_fabric);
  let access_violation = ref None in
  (try Sync.run ~until:(sharded_horizon schedule) sync
   with Draconis_p4.Packet_ctx.Access_violation name ->
     access_violation := Some name);
  {
    Checker.events = Array.of_list (List.rev !events);
    levels = collect_levels program schedule;
    fabric_lost =
      Array.fold_left
        (fun acc f -> acc + Fabric.lost f + Fabric.partition_dropped f)
        0 instances;
    recirc_dropped = Pipeline.recirc_dropped pipeline;
    access_violation = !access_violation;
    fingerprint = fingerprint_registers (Switch_program.registers program);
  }

(* One schedule, executed twice: determinism makes the second run free
   insurance, and it feeds the replication-consistency invariant.  With
   [sharded] the schedule additionally runs through the LP data path
   under both partitionings (everything on one LP, then switch/hosts
   split), feeding the sharded-consistency invariant.  The sharded legs
   only run bug-free: the injected-bug self-test belongs to the
   single-engine rig, whose event budget bounds a wedged queue. *)
let run_checked ?bug ?(sharded = false) schedule =
  let first = run ?bug schedule in
  let twin = run ?bug schedule in
  let pair =
    if sharded && bug = None then
      Some (run_sharded ~shards:1 schedule, run_sharded ~shards:2 schedule)
    else None
  in
  Checker.check ~twin ?sharded:pair schedule first
