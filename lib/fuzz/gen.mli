(** Seeded schedule generator.

    [schedule ~seed ()] is a pure function of [seed] (and [ops]): the
    same seed always yields the same schedule, on any host.  The
    grammar is weighted toward the adversarial corners of the queue
    protocol — tiny capacities, same-tick bursts, duplicate
    submissions, invalid retrieve priorities, pointer starts just below
    the 32-bit wrap, and (on ~30% of schedules) composed fault windows
    from {!Draconis_fault}. *)

(** Generate one schedule.  [ops] bounds the op count (default 40).
    @raise Invalid_argument if [ops < 1]. *)
val schedule : ?ops:int -> seed:int -> unit -> Schedule.t
