(** Schedule minimization: delta debugging (ddmin) over the op list
    followed by per-op simplifications (multi-task submissions to one
    task, dropping the wraparound start, collapsing timing), bounded by
    an execution budget. *)

type outcome = {
  schedule : Schedule.t;  (** smallest still-failing schedule found *)
  executions : int;  (** predicate evaluations spent *)
}

(** [minimize ~fails schedule] greedily shrinks while [fails] holds.
    [fails] must be true for [schedule] itself (the caller checks);
    [budget] (default 500) caps predicate evaluations. *)
val minimize : ?budget:int -> fails:(Schedule.t -> bool) -> Schedule.t -> outcome
