open Draconis_sim

let format_tag = "draconis-fuzz/1"

type policy = Fcfs | Prio of int | Rsrc of int

type t = {
  seed : int;
  capacity : int;
  policy : policy;
  clients : int;
  executors : int;
  service : Time.t;
  wrap_offset : int option;
  ops : Op.t list;
}

let levels = function Fcfs -> 1 | Prio l -> l | Rsrc _ -> 1

let policy_to_string = function
  | Fcfs -> "fcfs"
  | Prio l -> Printf.sprintf "prio:%d" l
  | Rsrc s -> Printf.sprintf "rsrc:%d" s

let policy_of_string s =
  match String.split_on_char ':' s with
  | [ "fcfs" ] -> Fcfs
  | [ "prio"; l ] -> (
    match int_of_string_opt l with
    | Some l -> Prio l
    | None -> invalid_arg (Printf.sprintf "Schedule: bad policy %S" s))
  | [ "rsrc"; m ] -> (
    match int_of_string_opt m with
    | Some m -> Rsrc m
    | None -> invalid_arg (Printf.sprintf "Schedule: bad policy %S" s))
  | _ -> invalid_arg (Printf.sprintf "Schedule: bad policy %S (want fcfs|prio:N|rsrc:N)" s)

let validate t =
  if t.capacity < 1 then invalid_arg "Schedule.validate: capacity must be >= 1";
  if t.clients < 1 then invalid_arg "Schedule.validate: clients must be >= 1";
  if t.executors < 1 then invalid_arg "Schedule.validate: executors must be >= 1";
  if t.service < 1 then invalid_arg "Schedule.validate: service must be positive";
  (match t.policy with
  | Fcfs -> ()
  | Prio l ->
    if l < 1 || l > 8 then invalid_arg "Schedule.validate: priority levels outside 1..8"
  | Rsrc m -> if m < 0 then invalid_arg "Schedule.validate: negative swap bound");
  (match t.wrap_offset with
  | None -> ()
  | Some o -> if o < 0 then invalid_arg "Schedule.validate: negative wrap offset");
  List.iter Op.validate t.ops;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      if Op.at a > Op.at b then invalid_arg "Schedule.validate: ops not time-sorted"
      else sorted rest
    | _ -> ()
  in
  sorted t.ops

let sort_ops ops = List.stable_sort (fun a b -> compare (Op.at a) (Op.at b)) ops

let config_line t =
  Printf.sprintf "seed=%d capacity=%d policy=%s clients=%d executors=%d service=%d%s"
    t.seed t.capacity (policy_to_string t.policy) t.clients t.executors t.service
    (match t.wrap_offset with
    | None -> ""
    | Some o -> Printf.sprintf " wrap_offset=%d" o)

let to_string t =
  String.concat "\n"
    (format_tag :: config_line t :: List.map Op.to_string t.ops)
  ^ "\n"

let parse_config line =
  let fields =
    List.filter_map
      (fun tok ->
        if tok = "" then None
        else
          match String.index_opt tok '=' with
          | None ->
            invalid_arg
              (Printf.sprintf "Schedule: config line: bad field %S (want key=value)" tok)
          | Some i ->
            Some
              (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      (String.split_on_char ' ' (String.trim line))
  in
  let fields = ref fields in
  let take key =
    match List.assoc_opt key !fields with
    | None -> invalid_arg (Printf.sprintf "Schedule: config line: missing %S" key)
    | Some v ->
      fields := List.remove_assoc key !fields;
      v
  in
  let take_opt key =
    match List.assoc_opt key !fields with
    | None -> None
    | Some v ->
      fields := List.remove_assoc key !fields;
      Some v
  in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Schedule: config line: bad integer %S" s)
  in
  let seed = int_of (take "seed") in
  let capacity = int_of (take "capacity") in
  let policy = policy_of_string (take "policy") in
  let clients = int_of (take "clients") in
  let executors = int_of (take "executors") in
  let service = int_of (take "service") in
  let wrap_offset = Option.map int_of (take_opt "wrap_offset") in
  (match !fields with
  | [] -> ()
  | (key, _) :: _ ->
    invalid_arg (Printf.sprintf "Schedule: config line: unknown field %S" key));
  { seed; capacity; policy; clients; executors; service; wrap_offset; ops = [] }

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | tag :: config :: ops when tag = format_tag ->
    let t = { (parse_config config) with ops = List.map Op.of_string ops } in
    validate t;
    t
  | tag :: _ ->
    invalid_arg
      (Printf.sprintf "Schedule.of_string: bad format tag %S (want %S)" tag format_tag)
  | [] -> invalid_arg "Schedule.of_string: empty input"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
