open Draconis_sim

let format_tag = "draconis-fuzz/1"

type policy =
  | Fcfs
  | Prio of int
  | Rsrc of int
  | Edf of int  (** default relative deadline, ns *)
  | Wfq of int * int list  (** quantum ns, tenant weights *)
  | Aging of int * int  (** levels, quantum ns *)

type t = {
  seed : int;
  capacity : int;
  policy : policy;
  clients : int;
  executors : int;
  service : Time.t;
  wrap_offset : int option;
  ops : Op.t list;
}

let levels = function
  | Fcfs | Rsrc _ | Edf _ | Wfq _ | Aging _ -> 1
  | Prio l -> l

let is_pifo = function
  | Edf _ | Wfq _ | Aging _ -> true
  | Fcfs | Prio _ | Rsrc _ -> false

let policy_to_string = function
  | Fcfs -> "fcfs"
  | Prio l -> Printf.sprintf "prio:%d" l
  | Rsrc s -> Printf.sprintf "rsrc:%d" s
  | Edf d -> Printf.sprintf "edf:%d" d
  | Wfq (q, ws) ->
    Printf.sprintf "wfq:%d:%s" q (String.concat "+" (List.map string_of_int ws))
  | Aging (l, q) -> Printf.sprintf "aging:%d:%d" l q

let policy_of_string s =
  let bad () = invalid_arg (Printf.sprintf "Schedule: bad policy %S" s) in
  let int_of v = match int_of_string_opt v with Some i -> i | None -> bad () in
  match String.split_on_char ':' s with
  | [ "fcfs" ] -> Fcfs
  | [ "prio"; l ] -> Prio (int_of l)
  | [ "rsrc"; m ] -> Rsrc (int_of m)
  | [ "edf"; d ] -> Edf (int_of d)
  | [ "wfq"; q; ws ] ->
    Wfq (int_of q, List.map int_of (String.split_on_char '+' ws))
  | [ "aging"; l; q ] -> Aging (int_of l, int_of q)
  | _ ->
    invalid_arg
      (Printf.sprintf
         "Schedule: bad policy %S (want fcfs|prio:N|rsrc:N|edf:NS|wfq:NS:W+W|aging:N:NS)"
         s)

let validate t =
  if t.capacity < 1 then invalid_arg "Schedule.validate: capacity must be >= 1";
  if t.clients < 1 then invalid_arg "Schedule.validate: clients must be >= 1";
  if t.executors < 1 then invalid_arg "Schedule.validate: executors must be >= 1";
  if t.service < 1 then invalid_arg "Schedule.validate: service must be positive";
  (match t.policy with
  | Fcfs -> ()
  | Prio l ->
    if l < 1 || l > 8 then invalid_arg "Schedule.validate: priority levels outside 1..8"
  | Rsrc m -> if m < 0 then invalid_arg "Schedule.validate: negative swap bound"
  | Edf d -> if d < 1 then invalid_arg "Schedule.validate: edf deadline must be >= 1"
  | Wfq (q, ws) ->
    if q < 1 then invalid_arg "Schedule.validate: wfq quantum must be >= 1";
    if ws = [] || List.length ws > 8 then
      invalid_arg "Schedule.validate: wfq wants 1..8 tenant weights";
    List.iter
      (fun w -> if w < 1 then invalid_arg "Schedule.validate: wfq weights must be >= 1")
      ws
  | Aging (l, q) ->
    if l < 1 || l > 8 then invalid_arg "Schedule.validate: aging levels outside 1..8";
    if q < 1 then invalid_arg "Schedule.validate: aging quantum must be >= 1");
  if is_pifo t.policy then begin
    (* Mirror Switch_program's PIFO geometry checks so a bad schedule
       fails at validation, not deep inside the rig. *)
    let scan_width = min 16 t.capacity in
    if t.capacity > 4096 || t.capacity mod scan_width <> 0 then
      invalid_arg "Schedule.validate: pifo capacity must be a multiple of min(16,capacity) and <= 4096";
    if t.wrap_offset <> None then
      invalid_arg "Schedule.validate: wrap_offset is meaningless for pifo policies"
  end;
  (match t.wrap_offset with
  | None -> ()
  | Some o -> if o < 0 then invalid_arg "Schedule.validate: negative wrap offset");
  List.iter Op.validate t.ops;
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      if Op.at a > Op.at b then invalid_arg "Schedule.validate: ops not time-sorted"
      else sorted rest
    | _ -> ()
  in
  sorted t.ops

let sort_ops ops = List.stable_sort (fun a b -> compare (Op.at a) (Op.at b)) ops

let config_line t =
  Printf.sprintf "seed=%d capacity=%d policy=%s clients=%d executors=%d service=%d%s"
    t.seed t.capacity (policy_to_string t.policy) t.clients t.executors t.service
    (match t.wrap_offset with
    | None -> ""
    | Some o -> Printf.sprintf " wrap_offset=%d" o)

let to_string t =
  String.concat "\n"
    (format_tag :: config_line t :: List.map Op.to_string t.ops)
  ^ "\n"

let parse_config line =
  let fields =
    List.filter_map
      (fun tok ->
        if tok = "" then None
        else
          match String.index_opt tok '=' with
          | None ->
            invalid_arg
              (Printf.sprintf "Schedule: config line: bad field %S (want key=value)" tok)
          | Some i ->
            Some
              (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
      (String.split_on_char ' ' (String.trim line))
  in
  let fields = ref fields in
  let take key =
    match List.assoc_opt key !fields with
    | None -> invalid_arg (Printf.sprintf "Schedule: config line: missing %S" key)
    | Some v ->
      fields := List.remove_assoc key !fields;
      v
  in
  let take_opt key =
    match List.assoc_opt key !fields with
    | None -> None
    | Some v ->
      fields := List.remove_assoc key !fields;
      Some v
  in
  let int_of s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Schedule: config line: bad integer %S" s)
  in
  let seed = int_of (take "seed") in
  let capacity = int_of (take "capacity") in
  let policy = policy_of_string (take "policy") in
  let clients = int_of (take "clients") in
  let executors = int_of (take "executors") in
  let service = int_of (take "service") in
  let wrap_offset = Option.map int_of (take_opt "wrap_offset") in
  (match !fields with
  | [] -> ()
  | (key, _) :: _ ->
    invalid_arg (Printf.sprintf "Schedule: config line: unknown field %S" key));
  { seed; capacity; policy; clients; executors; service; wrap_offset; ops = [] }

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | tag :: config :: ops when tag = format_tag ->
    let t = { (parse_config config) with ops = List.map Op.of_string ops } in
    validate t;
    t
  | tag :: _ ->
    invalid_arg
      (Printf.sprintf "Schedule.of_string: bad format tag %S (want %S)" tag format_tag)
  | [] -> invalid_arg "Schedule.of_string: empty input"

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
