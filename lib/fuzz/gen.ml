open Draconis_sim

(* Weighted choice: pick from [(weight, value); ...]. *)
let choose rng choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let roll = Rng.int rng total in
  let rec pick acc = function
    | [] -> assert false
    | (w, v) :: rest -> if roll < acc + w then v else pick (acc + w) rest
  in
  pick 0 choices

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* Small capacities keep the queue bouncing off both the full and the
   empty edge, which is where the repair protocol lives. *)
let capacities = [| 1; 2; 3; 4; 8; 16 |]

(* Time gaps between ops, ns.  Zero gaps produce same-tick bursts that
   interleave inside the pipeline; large gaps let repairs drain. *)
let gaps = [| 0; 0; 1; 10; 100; 1_000; 10_000 |]

(* PIFO capacities: multiples of min(16, capacity), including multi-row
   stores (32/48) so pops exercise multi-traversal scans. *)
let pifo_capacities = [| 2; 4; 8; 16; 32; 48 |]

let gen_policy rng =
  choose rng
    [
      (5, Schedule.Fcfs);
      (2, Schedule.Prio (2 + Rng.int rng 3));
      (2, Schedule.Rsrc (1 + Rng.int rng 3));
      (2, Schedule.Edf (Time.us (1 + Rng.int rng 100)));
      ( 2,
        Schedule.Wfq
          ( Time.us (1 + Rng.int rng 20),
            List.init (2 + Rng.int rng 3) (fun _ -> 1 + Rng.int rng 8) ) );
      (1, Schedule.Aging (2 + Rng.int rng 3, Time.us (1 + Rng.int rng 50)));
    ]

let gen_prop rng policy =
  match policy with
  | Schedule.Fcfs -> Op.P_none
  | Schedule.Prio levels ->
    (* Mostly valid priorities; occasionally overflowing ones to hit
       the switch program's invalid-priority clamp (0 is not
       expressible in the TPROPS wire field). *)
    if Rng.int rng 10 = 0 then Op.P_prio (levels + 3)
    else Op.P_prio (1 + Rng.int rng levels)
  | Schedule.Rsrc _ ->
    (* Resource masks the executors advertise are 0x1/0x2/0x3. *)
    Op.P_rsrc (pick rng [| 0x1; 0x2; 0x3 |])
  | Schedule.Edf _ ->
    (* Mix tight/loose deadlines, the occasional missing one (default
       deadline path), and a u32-max one that forces a rank clamp. *)
    if Rng.int rng 10 = 0 then Op.P_none
    else if Rng.int rng 10 = 0 then Op.P_deadline 0xFFFFFFFF
    else Op.P_deadline (Time.us (1 + Rng.int rng 200))
  | Schedule.Wfq (_, weights) ->
    (* Mostly valid tenants; sometimes out-of-range ids that clamp to
       the last weight, or a missing prop (tenant 0). *)
    let n = List.length weights in
    if Rng.int rng 10 = 0 then Op.P_tenant (n + Rng.int rng 4)
    else if Rng.int rng 10 = 0 then Op.P_none
    else Op.P_tenant (Rng.int rng n)
  | Schedule.Aging (levels, _) ->
    if Rng.int rng 10 = 0 then Op.P_prio (levels + 3)
    else Op.P_prio (1 + Rng.int rng levels)

let gen_fault rng ~executors ~at =
  choose rng
    [
      ( 3,
        fun () ->
          Op.Loss
            {
              at;
              duration = Time.us (1 + Rng.int rng 50);
              loss = 0.1 +. (Rng.float rng *. 0.8);
            } );
      ( 2,
        fun () ->
          (* Partition a client, an executor, or both off the fabric. *)
          let hosts =
            choose rng
              [
                (1, [ 0 ]);
                (1, [ 100 + Rng.int rng executors ]);
                (1, [ 0; 100 + Rng.int rng executors ]);
              ]
          in
          Op.Partition { at; hosts; duration = Time.us (1 + Rng.int rng 50) } );
      ( 2,
        fun () ->
          Op.Straggler
            {
              at;
              executor = Rng.int rng executors;
              factor = 2.0 +. (Rng.float rng *. 8.0);
              duration = Time.us (1 + Rng.int rng 100);
            } );
    ]
    ()

let schedule ?(ops = 40) ~seed () =
  if ops < 1 then invalid_arg "Gen.schedule: ops must be >= 1";
  let rng = Rng.create ~seed in
  let policy = gen_policy rng in
  let capacity =
    if Schedule.is_pifo policy then pick rng pifo_capacities else pick rng capacities
  in
  let clients = 1 + Rng.int rng 3 in
  let executors = 1 + Rng.int rng 6 in
  let service = Time.us (1 + Rng.int rng 5) in
  let wrap_offset =
    (* Half the schedules start right below the pointer wrap boundary
       (rank stores have no pointers to wrap). *)
    if (not (Schedule.is_pifo policy)) && Rng.bool rng then
      Some (Rng.int rng ((2 * capacity) + 1))
    else None
  in
  (* ~30% of schedules carry fault windows; conservation stays strict on
     the rest (Checker relaxes it only when lossy faults are present). *)
  let with_faults = Rng.int rng 10 < 3 in
  let now = ref 0 in
  let uid = ref 0 in
  let submits = ref [] in
  let acc = ref [] in
  for _ = 1 to ops do
    now := !now + pick rng gaps;
    let op =
      choose rng
        [
          ( 5,
            fun () ->
              let op =
                Op.Submit
                  {
                    at = !now;
                    client = Rng.int rng clients;
                    uid = !uid;
                    jid = Rng.int rng 4;
                    count = 1 + Rng.int rng 3;
                    prop = gen_prop rng policy;
                  }
              in
              incr uid;
              submits := op :: !submits;
              op );
          ( 6,
            fun () ->
              Op.Request
                {
                  at = !now;
                  executor = Rng.int rng executors;
                  prio =
                    (* Invalid priorities (0 / too large) exercise the
                       no-op answer path. *)
                    (if Rng.int rng 12 = 0 then
                       choose rng [ (1, 0); (1, Schedule.levels policy + 4) ]
                     else 1 + Rng.int rng (Schedule.levels policy));
                } );
          ( (if !submits = [] then 0 else 1),
            fun () ->
              (* Duplicate submission: re-send an earlier job verbatim,
                 modelling a client retransmit. *)
              Op.with_at (pick rng (Array.of_list !submits)) !now );
          ( (if with_faults then 1 else 0),
            fun () -> gen_fault rng ~executors ~at:!now );
        ]
        ()
    in
    acc := op :: !acc
  done;
  let t =
    {
      Schedule.seed;
      capacity;
      policy;
      clients;
      executors;
      service;
      wrap_offset;
      ops = Schedule.sort_ops (List.rev !acc);
    }
  in
  Schedule.validate t;
  t
