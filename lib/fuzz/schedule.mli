(** A complete fuzz schedule: rig configuration plus a time-sorted list
    of {!Op.t}, with a line-based text serialization used for shrunk
    reproducers ([draconis-fuzz replay FILE]).

    File format (line-oriented, blank lines and [#] comments ignored):
    {v
    draconis-fuzz/1
    seed=7 capacity=8 policy=fcfs clients=2 executors=4 service=2000
    submit at=0 client=0 uid=0 jid=0 count=2
    request at=1200 executor=1 prio=1
    v} *)

open Draconis_sim

val format_tag : string

(** Queue policy of the rig: FCFS, [Prio levels], resource-aware with a
    swap bound, or a PIFO-backed discipline ([Edf default_deadline_ns],
    [Wfq (quantum_ns, weights)], [Aging (levels, quantum_ns)]). *)
type policy =
  | Fcfs
  | Prio of int
  | Rsrc of int
  | Edf of int
  | Wfq of int * int list
  | Aging of int * int

type t = {
  seed : int;  (** generator seed; also seeds the rig RNG *)
  capacity : int;  (** per-level circular-queue capacity *)
  policy : policy;
  clients : int;
  executors : int;
  service : Time.t;  (** base executor service time per task *)
  wrap_offset : int option;
      (** when [Some o], pointers start at [wrap - o] so the schedule
          crosses the 32-bit wrap boundary almost immediately *)
  ops : Op.t list;  (** must be sorted by {!Op.at} *)
}

(** Queue levels the policy needs (= priority levels, else 1). *)
val levels : policy -> int

(** True for the rank-store disciplines (Edf/Wfq/Aging). *)
val is_pifo : policy -> bool

val policy_to_string : policy -> string

(** @raise Invalid_argument on unknown policy strings. *)
val policy_of_string : string -> policy

(** @raise Invalid_argument when any field or op is out of range, or
    ops are not time-sorted. *)
val validate : t -> unit

(** Stable-sort ops by time (generator/shrinker helper). *)
val sort_ops : Op.t list -> Op.t list

val to_string : t -> string

(** Parse and validate. @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val save : t -> string -> unit
val load : string -> t
