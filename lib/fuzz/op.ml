open Draconis_sim

type prop =
  | P_none
  | P_prio of int
  | P_rsrc of int
  | P_deadline of int
  | P_tenant of int

type t =
  | Submit of {
      at : Time.t;
      client : int;
      uid : int;
      jid : int;
      count : int;
      prop : prop;
    }
  | Request of { at : Time.t; executor : int; prio : int }
  | Loss of { at : Time.t; duration : Time.t; loss : float }
  | Partition of { at : Time.t; hosts : int list; duration : Time.t }
  | Straggler of { at : Time.t; executor : int; factor : float; duration : Time.t }

let at = function
  | Submit { at; _ }
  | Request { at; _ }
  | Loss { at; _ }
  | Partition { at; _ }
  | Straggler { at; _ } ->
    at

let with_at op at =
  match op with
  | Submit s -> Submit { s with at }
  | Request r -> Request { r with at }
  | Loss l -> Loss { l with at }
  | Partition p -> Partition { p with at }
  | Straggler s -> Straggler { s with at }

(* Loss and partitions remove packets in flight, which relaxes the
   end-to-end conservation invariant; stragglers only delay completions
   and relax nothing. *)
let is_lossy = function
  | Loss _ | Partition _ -> true
  | Submit _ | Request _ | Straggler _ -> false

let is_fault = function
  | Loss _ | Partition _ | Straggler _ -> true
  | Submit _ | Request _ -> false

(* -- replay-line serialization --------------------------------------------- *)

(* One op per line: `kind key=value key=value ...`, all times in ns.
   The format round-trips exactly so a shrunk reproducer can be replayed
   byte-for-byte (`draconis-fuzz replay FILE`). *)

let float_to_string f = Printf.sprintf "%g" f

let prop_to_string = function
  | P_none -> ""
  | P_prio p -> Printf.sprintf " prio=%d" p
  | P_rsrc r -> Printf.sprintf " rsrc=%d" r
  | P_deadline d -> Printf.sprintf " deadline=%d" d
  | P_tenant t -> Printf.sprintf " tenant=%d" t

let to_string = function
  | Submit { at; client; uid; jid; count; prop } ->
    Printf.sprintf "submit at=%d client=%d uid=%d jid=%d count=%d%s" at client uid
      jid count (prop_to_string prop)
  | Request { at; executor; prio } ->
    Printf.sprintf "request at=%d executor=%d prio=%d" at executor prio
  | Loss { at; duration; loss } ->
    Printf.sprintf "loss at=%d dur=%d p=%s" at duration (float_to_string loss)
  | Partition { at; hosts; duration } ->
    Printf.sprintf "partition at=%d hosts=%s dur=%d" at
      (String.concat "+" (List.map string_of_int hosts))
      duration
  | Straggler { at; executor; factor; duration } ->
    Printf.sprintf "straggler at=%d executor=%d factor=%s dur=%d" at executor
      (float_to_string factor) duration

let pp fmt t = Format.pp_print_string fmt (to_string t)

let parse_fields line fields =
  List.filter_map
    (fun tok ->
      if tok = "" then None
      else
        match String.index_opt tok '=' with
        | None ->
          invalid_arg
            (Printf.sprintf "Op.of_string: %S: bad field %S (want key=value)" line tok)
        | Some i ->
          Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)))
    fields

let take line fields key =
  match List.assoc_opt key !fields with
  | None -> invalid_arg (Printf.sprintf "Op.of_string: %S: missing field %S" line key)
  | Some v ->
    fields := List.remove_assoc key !fields;
    v

let take_opt fields key =
  match List.assoc_opt key !fields with
  | None -> None
  | Some v ->
    fields := List.remove_assoc key !fields;
    Some v

let int_of line s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Op.of_string: %S: bad integer %S" line s)

let float_of line s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Op.of_string: %S: bad number %S" line s)

let of_string line =
  match String.split_on_char ' ' (String.trim line) with
  | [] | [ "" ] -> invalid_arg "Op.of_string: empty line"
  | kind :: rest ->
    let fields = ref (parse_fields line rest) in
    let op =
      match kind with
      | "submit" ->
        let at = int_of line (take line fields "at") in
        let client = int_of line (take line fields "client") in
        let uid = int_of line (take line fields "uid") in
        let jid = int_of line (take line fields "jid") in
        let count = int_of line (take line fields "count") in
        let prop =
          let candidates =
            List.filter_map
              (fun (key, wrap) ->
                Option.map (fun v -> (key, wrap (int_of line v))) (take_opt fields key))
              [
                ("prio", fun p -> P_prio p);
                ("rsrc", fun r -> P_rsrc r);
                ("deadline", fun d -> P_deadline d);
                ("tenant", fun t -> P_tenant t);
              ]
          in
          match candidates with
          | [] -> P_none
          | [ (_, prop) ] -> prop
          | picked ->
            invalid_arg
              (Printf.sprintf "Op.of_string: %S: conflicting task properties (%s)"
                 line
                 (String.concat ", " (List.map fst picked)))
        in
        Submit { at; client; uid; jid; count; prop }
      | "request" ->
        let at = int_of line (take line fields "at") in
        let executor = int_of line (take line fields "executor") in
        let prio = int_of line (take line fields "prio") in
        Request { at; executor; prio }
      | "loss" ->
        let at = int_of line (take line fields "at") in
        let duration = int_of line (take line fields "dur") in
        let loss = float_of line (take line fields "p") in
        Loss { at; duration; loss }
      | "partition" ->
        let at = int_of line (take line fields "at") in
        let hosts =
          List.map (int_of line) (String.split_on_char '+' (take line fields "hosts"))
        in
        let duration = int_of line (take line fields "dur") in
        Partition { at; hosts; duration }
      | "straggler" ->
        let at = int_of line (take line fields "at") in
        let executor = int_of line (take line fields "executor") in
        let factor = float_of line (take line fields "factor") in
        let duration = int_of line (take line fields "dur") in
        Straggler { at; executor; factor; duration }
      | other ->
        invalid_arg
          (Printf.sprintf
             "Op.of_string: unknown op kind %S (want \
              submit/request/loss/partition/straggler)"
             other)
    in
    (match !fields with
    | [] -> ()
    | (key, _) :: _ ->
      invalid_arg (Printf.sprintf "Op.of_string: %S: unknown field %S" line key));
    op

let validate op =
  let nonneg what v =
    if v < 0 then invalid_arg (Printf.sprintf "Op.validate: negative %s" what)
  in
  nonneg "time" (at op);
  match op with
  | Submit { client; uid; jid; count; prop; _ } ->
    nonneg "client" client;
    nonneg "uid" uid;
    nonneg "jid" jid;
    if count < 1 then invalid_arg "Op.validate: submit count must be >= 1";
    (match prop with
    | P_none -> ()
    (* Priorities beyond the policy's level count are legitimate
       adversarial input (the switch clamps them to the lowest level);
       only values the TPROPS wire field cannot carry are rejected. *)
    | P_prio p -> if p < 1 || p > 0xFF then invalid_arg "Op.validate: prio range"
    | P_rsrc r -> if r < 1 then invalid_arg "Op.validate: rsrc must be >= 1"
    (* Deadlines/tenants up to the full u32 TPROPS field are legal
       adversarial input: huge deadlines hit the rank clamp and
       out-of-range tenants hit the weight-table clamp. *)
    | P_deadline d ->
      if d < 0 || d > 0xFFFFFFFF then invalid_arg "Op.validate: deadline range"
    | P_tenant t ->
      if t < 0 || t > 0xFFFFFFFF then invalid_arg "Op.validate: tenant range")
  | Request { executor; prio; _ } ->
    nonneg "executor" executor;
    nonneg "prio" prio
  | Loss { duration; loss; _ } ->
    if duration <= 0 then invalid_arg "Op.validate: loss duration must be positive";
    if loss < 0.0 || loss > 1.0 || Float.is_nan loss then
      invalid_arg "Op.validate: loss outside [0,1]"
  | Partition { hosts; duration; _ } ->
    if hosts = [] then invalid_arg "Op.validate: empty partition host list";
    List.iter (nonneg "partition host") hosts;
    if duration <= 0 then invalid_arg "Op.validate: partition duration must be positive"
  | Straggler { executor; factor; duration; _ } ->
    nonneg "executor" executor;
    if factor < 1.0 || Float.is_nan factor then
      invalid_arg "Op.validate: straggler factor must be >= 1.0";
    if duration <= 0 then invalid_arg "Op.validate: straggler duration must be positive"
