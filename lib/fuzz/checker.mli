(** Invariant checking: replay a recorded execution against the
    {!Oracle} and an end-state audit of the real register state.

    {!Exec.run} records every switch-side {!Draconis.Instrument} event
    and every host-side delivery into an event log; [check] replays
    that log through the oracle and compares the drained end state
    (pointers, repair flags, stamped entries) level by level.  Each
    invariant keeps an evaluation counter so a sweep can prove every
    invariant was actually exercised, and every violation carries a
    causal trace — the event window leading up to the divergence. *)

open Draconis_proto

(** One entry of the recorded execution, in engine order.  Switch-side
    events come from {!Draconis.Instrument} hooks; [Submitted] /
    [Delivered] / [Returned] / [Completed] are host-side. *)
type event =
  | Submitted of { id : Task.id }  (** client sent a job copy holding this task *)
  | Enqueued of { id : Task.id; level : int; int_occ : int option }
      (** [int_occ] is the occupancy the switch's INT stamp recorded for
          this admission (None when the site took no occupancy stamp,
          e.g. a PIFO probe continuation) — checked against the oracle
          by the int-consistency invariant *)
  | Dequeued of { id : Task.id; level : int }
  | Swapped of { into : Task.id; out : Task.id; level : int }
  | Assigned of { id : Task.id; node : int }
  | Rejected of { count : int }
  | Noop
  | Repair_flag of { flag : string; level : int }
  | Recirculated of { kind : string }
  | Ranked of { id : Task.id; rank : int }
      (** the switch computed this task's PIFO rank at admission *)
  | Pop_scan_started  (** a PIFO pop began its scan (occupancy was read) *)
  | Delivered of { id : Task.id; executor : int }
      (** assignment arrived at an executor *)
  | Returned of { id : Task.id }  (** queue_full bounced the task to its client *)
  | Completed of { id : Task.id }  (** completion arrived back at the client *)

val event_to_string : event -> string
val id_to_string : Task.id -> string

(** Drained end state of one queue level. *)
type level_state = {
  add_ptr : int;
  retrieve_ptr : int;
  add_flag : bool;
  retrieve_flag : bool;
  pointer_occupancy : int;
  walk : Task.id list;
      (** stamped entries walked from retrieve to add pointer *)
}

type run = {
  events : event array;
  levels : level_state array;
  fabric_lost : int;  (** injected loss + partition drops *)
  recirc_dropped : int;
  access_violation : string option;
      (** register name, when the one-access-per-register-per-packet
          rule was violated *)
  fingerprint : int64;  (** FNV-1a over every register cell after drain *)
}

(** The invariant registry, in reporting order: no-lost-task,
    no-duplicate-task, fifo-order, occupancy-bound,
    pointer-convergence, stamp-validity, single-register-access,
    replication-consistency, pifo-order, int-consistency,
    sharded-consistency. *)
val invariants : string list

type violation = {
  invariant : string;
  detail : string;
  trace : string list;  (** event window leading up to the divergence *)
}

type report = {
  checks : (string * int) list;  (** evaluations per invariant *)
  violations : violation list;
  strict : bool;
      (** whether conservation was checked exactly (no lossy faults, no
          recirculation drops, no access violation) *)
}

(** [check ?twin ?sharded schedule run] replays and audits.  When
    [twin] is the result of a second execution of the same schedule,
    replication consistency (identical fingerprints and event logs) is
    checked too.  When [sharded] is a pair of {!Exec.run_sharded}
    results for the same schedule at 1 and 2 shards, the
    sharded-consistency invariant checks cross-LP outcome equality:
    identical register fingerprints, drained queue state, drop
    counters, and switch-side event sequence (stamp-ordered, so exact),
    with host-side events compared as a multiset (their interleaving
    across LP engines is the one thing partitioning may legally
    change). *)
val check : ?twin:run -> ?sharded:run * run -> Schedule.t -> run -> report

val ok : report -> bool
