(** Campaign driver: sweep a seed list through generate → execute
    (twice, for replication) → check, aggregate per-invariant
    evaluation counters, and shrink every failure into a small
    replayable artifact. *)

type failure = {
  seed : int;
  invariant : string;  (** first violated invariant *)
  detail : string;
  trace : string list;
  shrunk : Schedule.t;  (** minimized reproducer *)
  shrink_executions : int;
  artifact : string option;  (** where the reproducer was saved *)
}

type campaign = {
  seeds : int list;
  ops : int;
  bug : Exec.bug option;
  sharded : bool;  (** sharded smoke legs were requested *)
  checks : (string * int) list;  (** evaluations per invariant, summed *)
  failures : failure list;
}

val default_ops : int
val default_shrink_budget : int

(** Generate and check one seed. *)
val run_seed : ?bug:Exec.bug -> ?ops:int -> ?sharded:bool -> int -> Checker.report

(** [run_campaign ~seeds ()] sweeps the seed list.  [artifacts] is a
    directory to write shrunk reproducers into ([seed-N.fuzz]).
    Shrinking requires the {e same} invariant to fire again, so the
    minimizer cannot drift onto a different bug.  With [~sharded:true]
    every (bug-free) schedule also executes through the sharded LP data
    path at 1 and 2 shards ({!Exec.run_sharded}), feeding the
    sharded-consistency invariant. *)
val run_campaign :
  ?bug:Exec.bug ->
  ?ops:int ->
  ?shrink_budget:int ->
  ?artifacts:string ->
  ?sharded:bool ->
  seeds:int list ->
  unit ->
  campaign

val ok : campaign -> bool

(** Invariants never evaluated during the campaign (a smoke sweep
    treats a non-empty answer as failure). *)
val unexercised : campaign -> string list

val to_json : campaign -> string
val render_text : campaign -> string

(** Human rendering of a single replayed schedule's report. *)
val render_report : Schedule.t -> Checker.report -> string
