open Draconis_proto

(* Each level is a plain FIFO list of task ids, head first.  Everything
   is O(n) over tiny lists — clarity beats speed in the oracle. *)
type t = { capacity : int; levels : Task.id list array }

let create ~levels ~capacity () =
  if levels < 1 then invalid_arg "Oracle.create: levels must be >= 1";
  if capacity < 1 then invalid_arg "Oracle.create: capacity must be >= 1";
  { capacity; levels = Array.make levels [] }

let levels t = Array.length t.levels

let check_level t level =
  if level < 0 || level >= Array.length t.levels then
    invalid_arg (Printf.sprintf "Oracle: level %d out of range" level)

let size t ~level =
  check_level t level;
  List.length t.levels.(level)

let contents t ~level =
  check_level t level;
  t.levels.(level)

type push_outcome = Pushed | Overflow

let push t ~level id =
  check_level t level;
  if List.length t.levels.(level) >= t.capacity then Overflow
  else begin
    t.levels.(level) <- t.levels.(level) @ [ id ];
    Pushed
  end

let head t ~level =
  check_level t level;
  match t.levels.(level) with [] -> None | id :: _ -> Some id

let pop t ~level =
  check_level t level;
  match t.levels.(level) with
  | [] -> None
  | id :: rest ->
    t.levels.(level) <- rest;
    Some id

let mem t id =
  Array.exists (List.exists (fun other -> Task.compare_id other id = 0)) t.levels

(* Remove the first occurrence anywhere — used by the checker to resync
   after reporting a violation, so one divergence does not cascade. *)
let remove t id =
  let removed = ref false in
  Array.iteri
    (fun level ids ->
      if not !removed then
        t.levels.(level) <-
          List.filter
            (fun other ->
              if (not !removed) && Task.compare_id other id = 0 then begin
                removed := true;
                false
              end
              else true)
            ids)
    t.levels;
  !removed

(* Swap replaces [out_id] in place, preserving FIFO position — mirroring
   the switch's in-slot entry exchange that moves neither pointer. *)
type swap_outcome = Swapped | Not_found

let swap t ~out_id ~in_id =
  let found = ref false in
  Array.iteri
    (fun level ids ->
      if not !found then
        t.levels.(level) <-
          List.map
            (fun id ->
              if (not !found) && Task.compare_id id out_id = 0 then begin
                found := true;
                in_id
              end
              else id)
            ids)
    t.levels;
  if !found then Swapped else Not_found

let total t = Array.fold_left (fun acc ids -> acc + List.length ids) 0 t.levels
