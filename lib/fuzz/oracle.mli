(** Naive semantic oracle for the switch's queue state: one bounded
    FIFO list of task ids per priority level.

    The checker replays the recorded event log against this model; any
    divergence between what the real pipeline did and what the oracle
    allows is an invariant violation.  The oracle deliberately knows
    nothing about pointers, stamps, or repairs — it is the spec the
    optimistic protocol must be equivalent to. *)

open Draconis_proto

type t

(** @raise Invalid_argument if [levels < 1] or [capacity < 1]. *)
val create : levels:int -> capacity:int -> unit -> t

val levels : t -> int
val size : t -> level:int -> int

(** Queue contents, head first. *)
val contents : t -> level:int -> Task.id list

type push_outcome = Pushed | Overflow

val push : t -> level:int -> Task.id -> push_outcome

val head : t -> level:int -> Task.id option
val pop : t -> level:int -> Task.id option

(** Is the id queued at any level? *)
val mem : t -> Task.id -> bool

(** Remove the first occurrence of [id] at any level; returns whether
    one was found.  Checker resync helper — after a reported
    divergence it realigns the oracle so one bug yields one
    violation, not a cascade. *)
val remove : t -> Task.id -> bool

type swap_outcome = Swapped | Not_found

(** [swap t ~out_id ~in_id] replaces [out_id] with [in_id] in place
    (same level, same FIFO position) — the oracle's view of the
    pointer-free task-swap primitive. *)
val swap : t -> out_id:Task.id -> in_id:Task.id -> swap_outcome

(** Tasks queued across all levels. *)
val total : t -> int
