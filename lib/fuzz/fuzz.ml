(* Campaign driver: sweep seeds, aggregate per-invariant counters,
   shrink failures into replayable artifacts. *)

type failure = {
  seed : int;
  invariant : string;
  detail : string;
  trace : string list;
  shrunk : Schedule.t;
  shrink_executions : int;
  artifact : string option;
}

type campaign = {
  seeds : int list;
  ops : int;
  bug : Exec.bug option;
  sharded : bool;
  checks : (string * int) list;  (** evaluations per invariant, summed *)
  failures : failure list;
}

let default_ops = 40
let default_shrink_budget = 500

let run_seed ?bug ?(ops = default_ops) ?sharded seed =
  Exec.run_checked ?bug ?sharded (Gen.schedule ~ops ~seed ())

(* Shrinking predicate: the same invariant must fire again, so the
   minimizer cannot drift onto a different bug while deleting ops.
   The sharded legs are expensive, so they only re-run when the
   invariant being chased needs them. *)
let fails_same ?bug invariant s =
  let sharded = String.equal invariant "sharded-consistency" in
  let report = Exec.run_checked ?bug ~sharded s in
  List.exists (fun v -> v.Checker.invariant = invariant) report.Checker.violations

let artifact_path dir seed = Filename.concat dir (Printf.sprintf "seed-%d.fuzz" seed)

let run_campaign ?bug ?(ops = default_ops) ?(shrink_budget = default_shrink_budget)
    ?artifacts ?(sharded = false) ~seeds () =
  let totals = Hashtbl.create 16 in
  List.iter (fun inv -> Hashtbl.replace totals inv 0) Checker.invariants;
  let failures = ref [] in
  List.iter
    (fun seed ->
      let schedule = Gen.schedule ~ops ~seed () in
      let report = Exec.run_checked ?bug ~sharded schedule in
      List.iter
        (fun (inv, n) -> Hashtbl.replace totals inv (Hashtbl.find totals inv + n))
        report.Checker.checks;
      match report.Checker.violations with
      | [] -> ()
      | first :: _ ->
        let { Shrink.schedule = shrunk; executions } =
          Shrink.minimize ~budget:shrink_budget
            ~fails:(fails_same ?bug first.Checker.invariant)
            schedule
        in
        let artifact =
          Option.map
            (fun dir ->
              let path = artifact_path dir seed in
              Schedule.save shrunk path;
              path)
            artifacts
        in
        failures :=
          {
            seed;
            invariant = first.Checker.invariant;
            detail = first.Checker.detail;
            trace = first.Checker.trace;
            shrunk;
            shrink_executions = executions;
            artifact;
          }
          :: !failures)
    seeds;
  {
    seeds;
    ops;
    bug;
    sharded;
    checks = List.map (fun inv -> (inv, Hashtbl.find totals inv)) Checker.invariants;
    failures = List.rev !failures;
  }

let ok campaign = campaign.failures = []

(** Invariants whose evaluation counter stayed at zero — a sweep meant
    to exercise everything treats a non-empty answer as failure. *)
let unexercised campaign =
  List.filter_map (fun (inv, n) -> if n = 0 then Some inv else None) campaign.checks

(* -- reports --------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json campaign =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"draconis-fuzz/1\",\n";
  add "  \"seeds\": %d,\n" (List.length campaign.seeds);
  add "  \"ops\": %d,\n" campaign.ops;
  add "  \"bug\": %s,\n"
    (match campaign.bug with
    | None -> "null"
    | Some b -> Printf.sprintf "%S" (Exec.bug_to_string b));
  add "  \"sharded\": %b,\n" campaign.sharded;
  add "  \"checks\": {";
  List.iteri
    (fun i (inv, n) -> add "%s\"%s\": %d" (if i = 0 then "" else ", ") inv n)
    campaign.checks;
  add "},\n";
  add "  \"violations\": %d,\n" (List.length campaign.failures);
  add "  \"failures\": [";
  List.iteri
    (fun i f ->
      add "%s\n    {\"seed\": %d, \"invariant\": \"%s\", \"detail\": \"%s\", \
           \"shrunk_ops\": %d, \"shrink_executions\": %d, \"artifact\": %s}"
        (if i = 0 then "" else ",")
        f.seed (json_escape f.invariant) (json_escape f.detail)
        (List.length f.shrunk.Schedule.ops)
        f.shrink_executions
        (match f.artifact with
        | None -> "null"
        | Some p -> Printf.sprintf "\"%s\"" (json_escape p)))
    campaign.failures;
  if campaign.failures <> [] then add "\n  ";
  add "]\n}\n";
  Buffer.contents buf

let render_text campaign =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "draconis-fuzz: %d seed(s), %d op(s) each%s%s\n"
    (List.length campaign.seeds)
    campaign.ops
    (if campaign.sharded then ", sharded smoke on" else "")
    (match campaign.bug with
    | None -> ""
    | Some b -> Printf.sprintf ", injected bug: %s" (Exec.bug_to_string b));
  add "invariant evaluations:\n";
  List.iter (fun (inv, n) -> add "  %-24s %d\n" inv n) campaign.checks;
  (match unexercised campaign with
  | [] -> ()
  | missing -> add "UNEXERCISED: %s\n" (String.concat ", " missing));
  (match campaign.failures with
  | [] -> add "no invariant violations\n"
  | failures ->
    add "%d failing seed(s):\n" (List.length failures);
    List.iter
      (fun f ->
        add "  seed %d: %s — %s\n" f.seed f.invariant f.detail;
        add "    shrunk to %d op(s) in %d execution(s)%s\n"
          (List.length f.shrunk.Schedule.ops)
          f.shrink_executions
          (match f.artifact with
          | None -> ""
          | Some p -> Printf.sprintf ", artifact: %s" p);
        List.iter (fun line -> add "      | %s\n" line) f.trace)
      failures);
  Buffer.contents buf

let render_report (schedule : Schedule.t) (report : Checker.report) =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "schedule: seed=%d capacity=%d policy=%s ops=%d%s\n" schedule.seed
    schedule.capacity
    (Schedule.policy_to_string schedule.policy)
    (List.length schedule.ops)
    (if report.Checker.strict then "" else " (conservation relaxed: lossy run)");
  List.iter (fun (inv, n) -> add "  %-24s %d\n" inv n) report.Checker.checks;
  (match report.Checker.violations with
  | [] -> add "no invariant violations\n"
  | violations ->
    add "%d violation(s):\n" (List.length violations);
    List.iter
      (fun v ->
        add "  %s — %s\n" v.Checker.invariant v.Checker.detail;
        List.iter (fun line -> add "    | %s\n" line) v.Checker.trace)
      violations);
  Buffer.contents buf
