(* Delta debugging (ddmin) over the op list, then a few per-op
   simplification passes.  The predicate [fails] decides what counts as
   "still reproduces"; the caller typically requires the same invariant
   to fire, so shrinking cannot wander onto a different bug. *)

type outcome = { schedule : Schedule.t; executions : int }

let with_ops (s : Schedule.t) ops = { s with ops }

let split_chunks n ops =
  let len = List.length ops in
  let base = len / n and extra = len mod n in
  let rec take k acc rest =
    if k = 0 then (List.rev acc, rest)
    else
      match rest with
      | [] -> (List.rev acc, [])
      | x :: tl -> take (k - 1) (x :: acc) tl
  in
  let rec go i rest acc =
    if i = n then List.rev acc
    else begin
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest = take size [] rest in
      go (i + 1) rest (chunk :: acc)
    end
  in
  go 0 ops [] |> List.filter (fun c -> c <> [])

let minimize ?(budget = 500) ~fails (schedule : Schedule.t) =
  let executions = ref 0 in
  let attempt s =
    if !executions >= budget then false
    else begin
      incr executions;
      fails s
    end
  in
  (* -- ddmin over the op list --------------------------------------------- *)
  let rec ddmin ops n =
    let len = List.length ops in
    if len <= 1 || !executions >= budget then ops
    else begin
      let n = max 2 (min n len) in
      let chunks = split_chunks n ops in
      let removal_that_fails =
        List.find_map
          (fun chunk ->
            let reduced = List.filter (fun op -> not (List.memq op chunk)) ops in
            if reduced <> [] && attempt (with_ops schedule reduced) then Some reduced
            else None)
          chunks
      in
      match removal_that_fails with
      | Some reduced -> ddmin reduced (max 2 (n - 1))
      | None -> if n >= len then ops else ddmin ops (min (2 * n) len)
    end
  in
  let ops = ddmin schedule.ops 2 in
  let best = ref (with_ops schedule ops) in
  let try_improve candidate = if attempt candidate then best := candidate in
  (* -- per-op simplifications --------------------------------------------- *)
  (* Multi-task submissions down to one task. *)
  List.iteri
    (fun i op ->
      match op with
      | Op.Submit ({ count; _ } as s) when count > 1 ->
        try_improve
          (with_ops !best
             (List.mapi
                (fun j o -> if j = i then Op.Submit { s with count = 1 } else o)
                (!best).ops))
      | _ -> ())
    (!best).ops;
  (* Drop the wraparound start. *)
  (match !best.wrap_offset with
  | Some _ -> try_improve { !best with wrap_offset = None }
  | None -> ());
  (* Collapse all timing: same-tick if possible, else rank * 1us. *)
  try_improve (with_ops !best (List.map (fun op -> Op.with_at op 0) (!best).ops));
  (if List.exists (fun op -> Op.at op <> 0) (!best).ops then
     let _, compacted =
       List.fold_left
         (fun (i, acc) op -> (i + 1, Op.with_at op (i * 1_000) :: acc))
         (0, []) (!best).ops
     in
     try_improve (with_ops !best (List.rev compacted)));
  { schedule = !best; executions = !executions }
