open Draconis_proto

(* -- the recorded execution ------------------------------------------------ *)

type event =
  | Submitted of { id : Task.id }
  | Enqueued of { id : Task.id; level : int; int_occ : int option }
  | Dequeued of { id : Task.id; level : int }
  | Swapped of { into : Task.id; out : Task.id; level : int }
  | Assigned of { id : Task.id; node : int }
  | Rejected of { count : int }
  | Noop
  | Repair_flag of { flag : string; level : int }
  | Recirculated of { kind : string }
  | Ranked of { id : Task.id; rank : int }
  | Pop_scan_started
  | Delivered of { id : Task.id; executor : int }
  | Returned of { id : Task.id }
  | Completed of { id : Task.id }

let id_to_string (id : Task.id) = Printf.sprintf "%d.%d.%d" id.uid id.jid id.tid

let event_to_string = function
  | Submitted { id } -> Printf.sprintf "submitted %s" (id_to_string id)
  | Enqueued { id; level; int_occ } ->
    Printf.sprintf "enqueued %s L%d%s" (id_to_string id) level
      (match int_occ with None -> "" | Some o -> Printf.sprintf " occ=%d" o)
  | Dequeued { id; level } -> Printf.sprintf "dequeued %s L%d" (id_to_string id) level
  | Swapped { into; out; level } ->
    Printf.sprintf "swapped in=%s out=%s L%d" (id_to_string into) (id_to_string out)
      level
  | Assigned { id; node } -> Printf.sprintf "assigned %s node=%d" (id_to_string id) node
  | Rejected { count } -> Printf.sprintf "rejected %d" count
  | Noop -> "noop"
  | Repair_flag { flag; level } -> Printf.sprintf "repair-flag %s L%d" flag level
  | Recirculated { kind } -> Printf.sprintf "recirculated %s" kind
  | Ranked { id; rank } -> Printf.sprintf "ranked %s rank=%d" (id_to_string id) rank
  | Pop_scan_started -> "pop-scan"
  | Delivered { id; executor } ->
    Printf.sprintf "delivered %s exec=%d" (id_to_string id) executor
  | Returned { id } -> Printf.sprintf "returned %s" (id_to_string id)
  | Completed { id } -> Printf.sprintf "completed %s" (id_to_string id)

type level_state = {
  add_ptr : int;
  retrieve_ptr : int;
  add_flag : bool;
  retrieve_flag : bool;
  pointer_occupancy : int;
  walk : Task.id list;  (** stamped entries from retrieve to add pointer *)
}

type run = {
  events : event array;
  levels : level_state array;
  fabric_lost : int;  (** loss + partition drops *)
  recirc_dropped : int;
  access_violation : string option;
  fingerprint : int64;
}

(* -- invariant registry ---------------------------------------------------- *)

let invariants =
  [
    "no-lost-task";
    "no-duplicate-task";
    "fifo-order";
    "occupancy-bound";
    "pointer-convergence";
    "stamp-validity";
    "single-register-access";
    "replication-consistency";
    "pifo-order";
    "int-consistency";
    "sharded-consistency";
  ]

type violation = { invariant : string; detail : string; trace : string list }

type report = {
  checks : (string * int) list;
  violations : violation list;
  strict : bool;
}

let trace_window = 32

(* -- the replay ------------------------------------------------------------ *)

(* Events that execute on the switch LP: their relative order is fixed
   by the mailbox stamps, so it must be identical across partitionings.
   Host-side events run on whichever LP owns the host; only their
   multiset is partition-independent. *)
let switch_side = function
  | Submitted _ | Delivered _ | Returned _ | Completed _ -> false
  | Enqueued _ | Dequeued _ | Swapped _ | Assigned _ | Rejected _ | Noop
  | Repair_flag _ | Recirculated _ | Ranked _ | Pop_scan_started ->
    true

let check ?twin ?sharded schedule run =
  let checks = Hashtbl.create 16 in
  List.iter (fun inv -> Hashtbl.replace checks inv 0) invariants;
  let checked inv = Hashtbl.replace checks inv (Hashtbl.find checks inv + 1) in
  let violations = ref [] in
  (* The causal trace of a mid-log violation is the log up to that
     event; end-state violations carry the tail of the whole log. *)
  let trace_upto n =
    let lo = max 0 (n - trace_window) in
    List.init (n - lo) (fun i -> event_to_string run.events.(lo + i))
  in
  let violate ~at invariant detail =
    violations := { invariant; detail; trace = trace_upto at } :: !violations
  in
  let n = Array.length run.events in
  (* Conservation is exact only when no packet can legitimately vanish:
     lossy fault windows eat wire packets and recirculation overflow
     eats repair/swap/resubmit packets. *)
  let strict =
    (not (List.exists Op.is_lossy schedule.Schedule.ops))
    && run.recirc_dropped = 0
    && run.access_violation = None
  in
  let oracle =
    Oracle.create
      ~levels:(Schedule.levels schedule.Schedule.policy)
      ~capacity:schedule.Schedule.capacity ()
  in
  (* The swap primitive of constraint-based policies reorders the queue
     by design (§5.1), and duplicate submissions make physical copies of
     one id indistinguishable to the oracle — so FIFO order is only an
     invariant of the non-swapping policies.  PIFO disciplines release
     by rank, not FIFO; they get the dedicated pifo-order invariant
     below instead.  Conservation and occupancy stay exact either way. *)
  let pifo = Schedule.is_pifo schedule.Schedule.policy in
  let reorders =
    (match schedule.Schedule.policy with Schedule.Rsrc _ -> true | _ -> false)
    || pifo
  in
  (* PIFO-order bookkeeping: ranks stamped at admission, the queued set
     in enqueue order, and outstanding scan starts.  A dequeue may
     legally miss entries admitted after its scan began; entries
     admitted before the EARLIEST outstanding scan start were visible
     to every active scan, so releasing a larger rank past one of them
     is a real ordering violation (same-rank ties are free). *)
  let last_rank = Hashtbl.create 64 in
  let pifo_queued = ref [] in
  let scan_starts = Queue.create () in
  let pifo_dequeue ~at id =
    let rec split acc = function
      | [] -> None
      | (id', r, e) :: rest when Task.compare_id id' id = 0 ->
        Some ((r, e), List.rev_append acc rest)
      | x :: rest -> split (x :: acc) rest
    in
    match split [] !pifo_queued with
    | None -> () (* stamp-validity flags unknown dequeues already *)
    | Some ((rank, _), rest) ->
      pifo_queued := rest;
      checked "pifo-order";
      let horizon =
        match Queue.peek_opt scan_starts with Some s -> s | None -> at
      in
      let offender =
        List.fold_left
          (fun best (id', r', e') ->
            if e' < horizon && r' < rank then
              match best with
              | Some (_, rb, _) when rb <= r' -> best
              | _ -> Some (id', r', e')
            else best)
          None rest
      in
      (match offender with
      | None -> ()
      | Some (id', r', _) ->
        violate ~at "pifo-order"
          (Printf.sprintf
             "dequeued %s (rank %d) while %s (rank %d, admitted before the \
              scan began) was still queued"
             (id_to_string id) rank (id_to_string id') r'));
      ignore (Queue.take_opt scan_starts)
  in
  let submitted = Hashtbl.create 64 in
  let accounted = Hashtbl.create 64 in
  let bump tbl id =
    Hashtbl.replace tbl id (1 + Option.value ~default:0 (Hashtbl.find_opt tbl id))
  in
  let i = ref 0 in
  while !i < n do
    let at = !i in
    (match run.events.(at) with
    | Submitted { id } -> bump submitted id
    | Dequeued { id = out; level }
      when at + 2 < n
           && (match (run.events.(at + 1), run.events.(at + 2)) with
              | Enqueued e, Swapped s ->
                Task.compare_id e.id s.into = 0
                && Task.compare_id s.out out = 0
                && e.level = level && s.level = level
              | _ -> false) ->
      (* The in-slot exchange of the swap primitive: the switch emits
         dequeue(out) / enqueue(into) / swap as one synchronous triple,
         and the oracle replaces in place (FIFO position preserved,
         pointers untouched). *)
      let into =
        match run.events.(at + 1) with Enqueued e -> e.id | _ -> assert false
      in
      checked "stamp-validity";
      (match Oracle.swap oracle ~out_id:out ~in_id:into with
      | Oracle.Swapped -> ()
      | Oracle.Not_found ->
        violate ~at:(at + 2) "stamp-validity"
          (Printf.sprintf "swap popped %s at L%d, which the oracle never queued"
             (id_to_string out) level));
      i := at + 2
    | Ranked { id; rank } -> Hashtbl.replace last_rank id rank
    | Pop_scan_started -> if pifo then Queue.add at scan_starts
    | Enqueued { id; level; int_occ } -> (
      if pifo then
        pifo_queued :=
          !pifo_queued
          @ [ (id, Option.value ~default:0 (Hashtbl.find_opt last_rank id), at) ];
      (* In-band telemetry cross-check: the switch stamped the occupancy
         its admission decision was made against; the oracle's pre-push
         size is the ground truth.  Circular levels must match exactly
         (the stamp is the repair-corrected pointer distance).  The PIFO
         occupancy gate also counts admitted entries whose probes are
         still in flight, so its stamp may exceed the model but never
         undercut it. *)
      (match int_occ with
      | None -> ()
      | Some noted ->
        checked "int-consistency";
        let model = Oracle.size oracle ~level in
        if (if pifo then noted < model else noted <> model) then
          violate ~at "int-consistency"
            (Printf.sprintf
               "enqueue of %s at L%d stamped occupancy %d but the oracle holds %d%s"
               (id_to_string id) level noted model
               (if pifo then " (a PIFO stamp may only exceed the model)" else "")));
      checked "occupancy-bound";
      match Oracle.push oracle ~level id with
      | Oracle.Pushed -> ()
      | Oracle.Overflow ->
        violate ~at "occupancy-bound"
          (Printf.sprintf "enqueue of %s at L%d beyond capacity %d" (id_to_string id)
             level schedule.Schedule.capacity))
    | Dequeued { id; level } -> (
      if pifo then pifo_dequeue ~at id;
      if not reorders then checked "fifo-order";
      checked "stamp-validity";
      match Oracle.head oracle ~level with
      | Some head when Task.compare_id head id = 0 -> ignore (Oracle.pop oracle ~level)
      | _ ->
        if Oracle.remove oracle id then begin
          if not reorders then
            violate ~at "fifo-order"
              (Printf.sprintf "dequeue of %s at L%d out of FIFO order (head was %s)"
                 (id_to_string id) level
                 (match Oracle.head oracle ~level with
                 | Some h -> id_to_string h
                 | None -> "<empty>"))
        end
        else
          violate ~at "stamp-validity"
            (Printf.sprintf
               "dequeue of %s at L%d, which the oracle never queued (stale or free \
                slot resurrected)"
               (id_to_string id) level))
    | Swapped _ (* orphan swap: its pair was consumed above *)
    | Assigned _ | Rejected _ | Noop | Repair_flag _ | Recirculated _ -> ()
    | Delivered { id; _ } | Returned { id } -> bump accounted id
    | Completed _ -> ());
    incr i
  done;
  (* -- end state ----------------------------------------------------------- *)
  Array.iteri
    (fun level st ->
      checked "pointer-convergence";
      let fail detail = violate ~at:n "pointer-convergence" detail in
      if run.recirc_dropped = 0 then begin
        if st.add_flag then
          fail (Printf.sprintf "L%d: add-repair flag still set after drain" level);
        if st.retrieve_flag then
          fail (Printf.sprintf "L%d: retrieve-repair flag still set after drain" level)
      end;
      let oracle_ids = Oracle.contents oracle ~level in
      if List.length st.walk <> List.length oracle_ids then
        fail
          (Printf.sprintf "L%d: queue walk holds %d tasks, oracle %d" level
             (List.length st.walk) (List.length oracle_ids))
      else if
        (let order l = if reorders then List.sort Task.compare_id l else l in
         not
           (List.for_all2
              (fun a b -> Task.compare_id a b = 0)
              (order st.walk) (order oracle_ids)))
      then
        fail
          (Printf.sprintf "L%d: queue contents diverge from oracle ([%s] vs [%s])"
             level
             (String.concat " " (List.map id_to_string st.walk))
             (String.concat " " (List.map id_to_string oracle_ids)));
      if
        (not st.add_flag) && (not st.retrieve_flag)
        && st.pointer_occupancy <> List.length st.walk
      then
        fail
          (Printf.sprintf "L%d: pointer occupancy %d but %d stamped entries" level
             st.pointer_occupancy (List.length st.walk)))
    run.levels;
  (* Conservation: every copy of a submitted task must end up assigned,
     bounced back, or still queued.  Remaining copies come from the
     walk, which the pointer-convergence pass just tied to the oracle. *)
  let remaining = Hashtbl.create 64 in
  Array.iter (fun st -> List.iter (bump remaining) st.walk) run.levels;
  let count tbl id = Option.value ~default:0 (Hashtbl.find_opt tbl id) in
  Hashtbl.iter
    (fun id sub ->
      let acc = count accounted id + count remaining id in
      checked "no-duplicate-task";
      if acc > sub then
        violate ~at:n "no-duplicate-task"
          (Printf.sprintf "%s: submitted %d time(s) but accounted %d time(s)"
             (id_to_string id) sub acc);
      if strict then begin
        checked "no-lost-task";
        if acc < sub then
          violate ~at:n "no-lost-task"
            (Printf.sprintf
               "%s: submitted %d time(s) but only %d assigned/bounced/queued"
               (id_to_string id) sub acc)
      end)
    submitted;
  (* A delivery or bounce for a task never submitted is fabrication. *)
  Hashtbl.iter
    (fun id acc ->
      if count submitted id = 0 then begin
        checked "no-duplicate-task";
        violate ~at:n "no-duplicate-task"
          (Printf.sprintf "%s: accounted %d time(s) but never submitted"
             (id_to_string id) acc)
      end)
    accounted;
  checked "single-register-access";
  (match run.access_violation with
  | None -> ()
  | Some name ->
    violate ~at:n "single-register-access"
      (Printf.sprintf "register %S accessed twice in one packet traversal" name));
  (match twin with
  | None -> ()
  | Some other ->
    checked "replication-consistency";
    if run.fingerprint <> other.fingerprint then
      violate ~at:n "replication-consistency"
        (Printf.sprintf "register fingerprints diverge (%Lx vs %Lx)" run.fingerprint
           other.fingerprint)
    else if
      Array.length run.events <> Array.length other.events
      || not (Array.for_all2 ( = ) run.events other.events)
    then violate ~at:n "replication-consistency" "event logs diverge across replicas");
  (* Sharded consistency: the same schedule executed through the LP
     data path under two partitionings (everything on one LP vs switch
     and hosts split across two).  The switch state, loss counters, and
     the switch-side event sequence are stamp-ordered and must match
     exactly; host-side events may interleave differently across
     engines, so they compare as a sorted multiset. *)
  (match sharded with
  | None -> ()
  | Some (a, b) ->
    checked "sharded-consistency";
    let fail detail = violate ~at:n "sharded-consistency" detail in
    let split (r : run) =
      let sw = ref [] and host = ref [] in
      Array.iter
        (fun ev -> if switch_side ev then sw := ev :: !sw else host := ev :: !host)
        r.events;
      (List.rev !sw, List.sort compare !host)
    in
    let sw_a, host_a = split a in
    let sw_b, host_b = split b in
    if a.fingerprint <> b.fingerprint then
      fail
        (Printf.sprintf "register fingerprints diverge across LP partitionings (%Lx vs %Lx)"
           a.fingerprint b.fingerprint)
    else if a.levels <> b.levels then
      fail "drained queue state diverges across LP partitionings"
    else if a.fabric_lost <> b.fabric_lost || a.recirc_dropped <> b.recirc_dropped
    then
      fail
        (Printf.sprintf
           "drop counters diverge across LP partitionings (lost %d vs %d, \
            recirc-dropped %d vs %d)"
           a.fabric_lost b.fabric_lost a.recirc_dropped b.recirc_dropped)
    else if a.access_violation <> b.access_violation then
      fail "access violations diverge across LP partitionings"
    else if sw_a <> sw_b then
      fail
        (Printf.sprintf
           "switch-side event sequences diverge across LP partitionings (%d vs %d \
            events)"
           (List.length sw_a) (List.length sw_b))
    else if host_a <> host_b then
      fail
        (Printf.sprintf
           "host-side event multisets diverge across LP partitionings (%d vs %d \
            events)"
           (List.length host_a) (List.length host_b)));
  {
    checks = List.map (fun inv -> (inv, Hashtbl.find checks inv)) invariants;
    violations = List.rev !violations;
    strict;
  }

let ok report = report.violations = []
