(** One operation in an adversarial fuzz schedule.

    A schedule is a time-sorted list of these; {!Draconis_fuzz.Exec}
    turns each into simulator events against the real switch pipeline.
    Ops serialize to single replay lines (`kind key=value ...`) that
    round-trip exactly, so shrunk reproducers are plain text. *)

open Draconis_sim

(** Task property attached to every task of a submission ([P_deadline]
    is a relative deadline in ns; [P_tenant] a WFQ tenant id). *)
type prop =
  | P_none
  | P_prio of int
  | P_rsrc of int
  | P_deadline of int
  | P_tenant of int

type t =
  | Submit of {
      at : Time.t;
      client : int;  (** client host index, [0 .. clients-1] *)
      uid : int;
      jid : int;
      count : int;  (** tasks in the job *)
      prop : prop;
    }
      (** A job submission.  Two [Submit] ops with the same [uid]/[jid]
          model a duplicate (retransmitted) submission. *)
  | Request of { at : Time.t; executor : int; prio : int }
      (** An executor-initiated task request with retrieve priority
          [prio] (0 or out-of-range values exercise the no-op path). *)
  | Loss of { at : Time.t; duration : Time.t; loss : float }
      (** Fabric-wide loss burst window. *)
  | Partition of { at : Time.t; hosts : int list; duration : Time.t }
      (** Partition the given host addresses off the fabric. *)
  | Straggler of { at : Time.t; executor : int; factor : float; duration : Time.t }
      (** Slow one executor's service time by [factor]. *)

val at : t -> Time.t
val with_at : t -> Time.t -> t

(** True for ops that can destroy packets in flight ([Loss],
    [Partition]) — their presence relaxes the conservation invariant. *)
val is_lossy : t -> bool

(** True for any fault-window op. *)
val is_fault : t -> bool

val to_string : t -> string

(** @raise Invalid_argument on malformed lines, with the offending
    line quoted. *)
val of_string : string -> t

(** @raise Invalid_argument when a field is out of range. *)
val validate : t -> unit

val pp : Format.formatter -> t -> unit
