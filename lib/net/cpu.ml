open Draconis_sim

type t = {
  engine : Engine.t;
  mutable free_at : Time.t;
  mutable slowdown : float;
  mutable backlog : int;
  mutable completed : int;
  mutable busy : Time.t;
}

let create engine =
  { engine; free_at = 0; slowdown = 1.0; backlog = 0; completed = 0; busy = 0 }

let set_slowdown t factor =
  if factor < 1.0 || Float.is_nan factor then
    invalid_arg "Cpu.set_slowdown: factor must be >= 1.0";
  t.slowdown <- factor

let slowdown t = t.slowdown

let submit t ~cost k =
  if cost < 0 then invalid_arg "Cpu.submit: negative cost";
  let cost =
    if t.slowdown = 1.0 then cost
    else int_of_float (Float.round (float_of_int cost *. t.slowdown))
  in
  let now = Engine.now t.engine in
  let start = max now t.free_at in
  let finish = start + cost in
  t.free_at <- finish;
  t.backlog <- t.backlog + 1;
  t.busy <- t.busy + cost;
  ignore
    (Engine.schedule_at t.engine ~at:finish (fun () ->
         t.backlog <- t.backlog - 1;
         t.completed <- t.completed + 1;
         k ()))

let backlog t = t.backlog
let completed t = t.completed
let busy_time t = t.busy

let utilization t ~over =
  if over <= 0 then invalid_arg "Cpu.utilization: non-positive window";
  float_of_int t.busy /. float_of_int over
