(** Rack topology of the simulated cluster.

    The locality experiments (paper §8.5) divide worker nodes into racks
    with distinct intra-rack and inter-rack storage-access latencies.
    Hosts are assigned to racks round-robin blocks: with [nodes] hosts
    and [racks] racks, host [i] lives in rack [i * racks / nodes]. *)

type t

(** [create ~nodes ~racks] assigns [nodes] hosts to [racks] racks in
    contiguous, maximally even blocks.
    @raise Invalid_argument unless [1 <= racks <= nodes]. *)
val create : nodes:int -> racks:int -> t

val nodes : t -> int
val racks : t -> int

(** [rack_of t host] is the rack index of [host] in [\[0, racks)]. *)
val rack_of : t -> int -> int

(** [same_rack t a b] is true if hosts [a] and [b] share a rack. *)
val same_rack : t -> int -> int -> bool

(** [hosts_in_rack t r] lists the hosts of rack [r], ascending. *)
val hosts_in_rack : t -> int -> int list

(** [partition t ~groups] maps each host to a logical-process group in
    [\[0, groups)], for sharded simulation: contiguous, maximally even,
    and rack-aligned whenever [groups <= racks] (whole racks never
    straddle a group, so intra-rack traffic stays LP-local).  With
    [groups > racks] the split falls back to contiguous host blocks.
    @raise Invalid_argument unless [1 <= groups <= nodes t]. *)
val partition : t -> groups:int -> int array

(** [group_of t ~groups host] is [ (partition t ~groups).(host) ]. *)
val group_of : t -> groups:int -> int -> int
