(** Message fabric: latency-modeled, handler-based message delivery.

    A ['msg t] connects endpoints ({!Addr.t}) over the simulated
    engine.  Sending schedules delivery at the destination's registered
    handler after the modeled one-way latency (plus optional uniform
    jitter).  Host-to-host traffic transits the switch, so its latency
    is twice the host-to-switch latency.

    The fabric is reliable by default; three fault knobs inject loss:
    - [loss]: i.i.d. per-packet drop probability;
    - [burst]: a Gilbert-Elliott two-state channel that alternates
      between a good state (drops at [loss]) and a bad state (drops at
      [loss_bad]), stepping the chain once per packet — correlated loss
      bursts rather than independent drops;
    - {!partition} / {!set_loss_override}: runtime controls used by the
      fault injector for timed partition and loss-burst windows.

    All randomness comes from the [rng] supplied at creation, keeping
    runs deterministic.  Every drop path emits a {!Draconis_sim.Trace}
    record, so [Trace.recent] shows fault activity. *)

open Draconis_sim

type 'msg envelope = {
  src : Addr.t;
  dst : Addr.t;
  sent_at : Time.t;
  payload : 'msg;
  int_ : Draconis_obs.Int_telemetry.stack option;
      (** INT stamp stack riding this message ({!Draconis_obs.Int_telemetry});
          drained into the ambient collector at delivery, accounted as
          dropped on any loss path *)
}

type 'msg t

(** Gilbert-Elliott channel parameters: per-packet transition
    probabilities between the good and bad state, and the bad-state
    loss rate (the good state drops at the base [loss]). *)
type burst = { p_enter : float; p_exit : float; loss_bad : float }

type config = {
  host_to_switch : Time.t;  (** one-way host <-> switch latency *)
  jitter : Time.t;  (** uniform extra delay in [\[0, jitter\]] *)
  loss : float;  (** i.i.d. drop probability in [\[0, 1\]] (good state) *)
  burst : burst option;  (** Gilbert-Elliott burst loss; [None] = i.i.d. only *)
  detour_fraction : float;
      (** multi-rack deployments (paper §3.2) route scheduler traffic
          through a common ancestor switch, lengthening the path for a
          fraction of hosts (Li et al.: ~12%); hosts are assigned to the
          detour set deterministically by id *)
  detour_extra : Time.t;  (** extra one-way latency for detoured hosts *)
}

(** Calibrated default: 1.5 us one-way, 150 ns jitter, no loss, no
    bursts, no detours (single-rack deployment). *)
val default_config : config

(** [detoured t host] is true when the host's scheduler path takes the
    longer route. *)
val detoured : 'msg t -> int -> bool

(** [lookahead config] is the conservative-synchronization lookahead the
    fabric's latency model guarantees: the minimum one-way latency of
    any link, i.e. [host_to_switch] (jitter and detours only add).  A
    sharded run may safely use it as the {!Draconis_sim.Sync} window
    bound.
    @raise Invalid_argument if the config models a zero-latency link
    ([host_to_switch = 0]), which admits no conservative window. *)
val lookahead : config -> Time.t

(** @raise Invalid_argument if any probability ([loss], [detour_fraction],
    burst parameters) is outside [\[0,1\]], or any latency
    ([host_to_switch], [jitter], [detour_extra]) is negative. *)
val create : ?config:config -> Engine.t -> Rng.t -> 'msg t

val engine : 'msg t -> Engine.t

(** [register t addr handler] installs the delivery handler for [addr].
    Re-registering replaces the previous handler. *)
val register : 'msg t -> Addr.t -> ('msg envelope -> unit) -> unit

(** [send t ?int_ ~src ~dst payload] delivers to [dst]'s handler after
    the modeled latency.  Messages to an endpoint with no handler are
    counted as [undeliverable] and dropped.  [int_] attaches an INT
    stamp stack to the message.
    @raise Invalid_argument if [src] and [dst] are equal. *)
val send :
  'msg t ->
  ?int_:Draconis_obs.Int_telemetry.stack ->
  src:Addr.t ->
  dst:Addr.t ->
  'msg ->
  unit

(** One-way latency sample between two endpoints (includes jitter). *)
val latency_sample : 'msg t -> Addr.t -> Addr.t -> Time.t

(** {2 Runtime fault controls} — used by the fault injector
    ({!Draconis_fault.Injector}) for timed fault windows. *)

(** [set_loss_override t (Some p)] makes every packet drop with
    probability [p], replacing the configured loss model until
    [set_loss_override t None].
    @raise Invalid_argument if [p] is outside [\[0,1\]]. *)
val set_loss_override : 'msg t -> float option -> unit

val loss_override : 'msg t -> float option

(** [partition t hosts] cuts the listed hosts off: every packet to or
    from them is dropped (and counted) until healed.  Partitions are
    refcounted, so overlapping windows compose; {!heal} undoes one
    [partition] of each listed host. *)
val partition : 'msg t -> int list -> unit

val heal : 'msg t -> int list -> unit

(** [partitioned t addr] — is this endpoint currently cut off?  The
    switch itself is never partitioned (its failure is modeled by
    fail-over instead). *)
val partitioned : 'msg t -> Addr.t -> bool

(** True while the Gilbert-Elliott channel is in the bad state. *)
val in_burst : 'msg t -> bool

(** {2 Counters} *)

(** Messages delivered so far. *)
val delivered : 'msg t -> int

(** Messages lost to injected loss (i.i.d., burst, or override). *)
val lost : 'msg t -> int

(** Messages dropped because an endpoint was partitioned. *)
val partition_dropped : 'msg t -> int

(** Messages dropped for lack of a registered handler. *)
val undeliverable : 'msg t -> int

(** {2 Cross-LP mailbox}

    When the simulation is sharded ({!Draconis_sim.Lp} /
    {!Draconis_sim.Sync}), a message whose destination lives on another
    logical process cannot be scheduled on the sender's engine.  It goes
    through a [Mailbox] instead: one per destination LP, stamping each
    event into the destination's next safe window.  The stamp is
    [(arrival time, src, seq)] with [src] a stable model-entity id and
    [seq] the sender's own monotone counter, so injection order — and
    with it the sharded run's outcome — is independent of both the
    domain schedule and the partitioning.  [post] rejects any latency
    below the mailbox's lookahead: such a message could land inside a
    window the destination has already simulated. *)
module Mailbox : sig
  type t

  (** [create ~lookahead lp] — the inbound channel of [lp].
      @raise Invalid_argument if [lookahead <= 0]. *)
  val create : lookahead:Time.t -> Draconis_sim.Lp.t -> t

  val lp : t -> Draconis_sim.Lp.t
  val lookahead : t -> Time.t

  (** [post t ~now ~latency ~src ~seq fn] stamps [fn] to run on the
      destination LP at [now + latency].
      @raise Invalid_argument if [latency < lookahead t] (a lookahead
      violation), or if the stamp fails {!Draconis_sim.Lp.post}'s safe-
      horizon check. *)
  val post :
    t -> now:Time.t -> latency:Time.t -> src:int -> seq:int -> (unit -> unit) -> unit

  (** Messages posted through this mailbox. *)
  val posted : t -> int
end

(** {2 Sharded router}

    [router] builds one fabric instance per logical process, all sharing
    a routing context: handlers register on the instance of the LP their
    entity lives on, and {e every} send — same-LP or cross-LP — is
    stamped into the destination LP's inbox ({!Draconis_sim.Lp.post})
    with [(arrival, entity id, seq)].  Latency jitter and loss are drawn
    from the {e sender entity}'s private stream (seeded from
    [(seed, entity)]), and faults are static time windows, so the
    outcome of a sharded run is independent of both the partitioning and
    the domain schedule.  Entity ids: the switch is 0, host [h] is
    [h + 1].

    Restrictions compared to the classic fabric: [config.burst] is
    rejected (the Gilbert-Elliott chain steps fabric-global state per
    packet), and the runtime fault controls ({!set_loss_override},
    {!partition}, {!heal}) raise — fault plans must compile to
    [loss_at]/[cut_at] windows.  Ambient observability (Recorder, Trace,
    INT stamp draining) is skipped on the sharded path: it lives in
    domain-local storage that helper domains do not carry. *)

(** [router ~lps ~switch_lp ~lp_of_host ~hosts ~seed ()] returns one
    instance per LP (same index as [lps]).  [lp_of_host] maps each host
    id in [\[0, hosts)] to its LP index; the switch lives on
    [switch_lp].  [loss_at now] is an extra i.i.d. drop probability
    (composed with [config.loss] by max) and [cut_at now host] cuts a
    host off — both must be pure functions of their arguments.
    @raise Invalid_argument on an empty [lps], out-of-range LP indexes,
    a [burst] config, or any invalid latency/probability parameter. *)
val router :
  ?config:config ->
  ?loss_at:(Time.t -> float) ->
  ?cut_at:(Time.t -> int -> bool) ->
  lps:Draconis_sim.Lp.t array ->
  switch_lp:int ->
  lp_of_host:(int -> int) ->
  hosts:int ->
  seed:int ->
  unit ->
  'msg t array

(** [router_defer t ~src ~at fn] posts [fn] to the {e switch} LP's inbox
    at [at + lookahead], stamped with [src]'s entity id and the same
    per-entity sequence counter as [src]'s sends.  This is the deferral
    channel for cross-LP side effects that are not messages — metric
    mutations ({!Draconis_core} [Metrics.remote]) — keeping their
    application order a pure function of the stamps.
    @raise Invalid_argument on a non-router instance. *)
val router_defer : 'msg t -> src:Addr.t -> at:Draconis_sim.Time.t -> (unit -> unit) -> unit
