(** Single-threaded CPU model.

    Server-based schedulers (Sparrow, the Draconis socket/DPDK servers)
    are bottlenecked by one node's per-message processing cost (paper
    §2.3.1, §8.2).  This models that: work items queue FIFO and are
    served one at a time, each occupying the CPU for its stated cost.
    The completion callback fires when the item finishes service. *)

open Draconis_sim

type t

val create : Engine.t -> t

(** [set_slowdown t f] degrades the CPU: every subsequently submitted
    item costs [f] times its stated cost — the fault injector's
    straggler model for server-based schedulers.  [1.0] restores full
    speed; items already in service keep their original cost.
    @raise Invalid_argument if [f < 1.0]. *)
val set_slowdown : t -> float -> unit

val slowdown : t -> float

(** [submit t ~cost k] enqueues a work item.  [k] runs when the item
    completes service (queueing delay + [cost], scaled by the current
    slowdown, after now).
    @raise Invalid_argument if [cost < 0]. *)
val submit : t -> cost:Time.t -> (unit -> unit) -> unit

(** Items waiting or in service right now. *)
val backlog : t -> int

(** Total items completed. *)
val completed : t -> int

(** Total busy time accumulated (ns). *)
val busy_time : t -> Time.t

(** [utilization t ~over] is busy time divided by [over]. *)
val utilization : t -> over:Time.t -> float
