type t = { nodes : int; racks : int; rack_of_node : int array }

let create ~nodes ~racks =
  if racks < 1 || racks > nodes then
    invalid_arg "Topology.create: need 1 <= racks <= nodes";
  let rack_of_node = Array.init nodes (fun i -> i * racks / nodes) in
  { nodes; racks; rack_of_node }

let nodes t = t.nodes
let racks t = t.racks

let rack_of t host =
  if host < 0 || host >= t.nodes then invalid_arg "Topology.rack_of: bad host";
  t.rack_of_node.(host)

let same_rack t a b = rack_of t a = rack_of t b

let hosts_in_rack t r =
  if r < 0 || r >= t.racks then invalid_arg "Topology.hosts_in_rack: bad rack";
  List.filter (fun h -> t.rack_of_node.(h) = r) (List.init t.nodes Fun.id)

(* Rack-aligned when possible: whole racks map to a group, so the only
   cross-LP links are the ones that were already cross-rack.  Past one
   group per rack, racks have to split; plain contiguous host blocks
   keep the partition even. *)
let partition t ~groups =
  if groups < 1 || groups > t.nodes then
    invalid_arg "Topology.partition: need 1 <= groups <= nodes";
  if groups <= t.racks then
    Array.map (fun rack -> rack * groups / t.racks) t.rack_of_node
  else Array.init t.nodes (fun host -> host * groups / t.nodes)

let group_of t ~groups host =
  if host < 0 || host >= t.nodes then invalid_arg "Topology.group_of: bad host";
  if groups < 1 || groups > t.nodes then
    invalid_arg "Topology.group_of: need 1 <= groups <= nodes";
  if groups <= t.racks then t.rack_of_node.(host) * groups / t.racks
  else host * groups / t.nodes
