open Draconis_sim
module Obs = Draconis_obs

type 'msg envelope = {
  src : Addr.t;
  dst : Addr.t;
  sent_at : Time.t;
  payload : 'msg;
  (* INT stamp stack riding this message; drained into the ambient
     collector when (and only when) the message actually lands, so
     telemetry loss mirrors packet loss. *)
  int_ : Obs.Int_telemetry.stack option;
}

type burst = { p_enter : float; p_exit : float; loss_bad : float }

type config = {
  host_to_switch : Time.t;
  jitter : Time.t;
  loss : float;
  burst : burst option;
  detour_fraction : float;
  detour_extra : Time.t;
}

let default_config =
  {
    host_to_switch = Time.ns 1_500;
    jitter = Time.ns 150;
    loss = 0.0;
    burst = None;
    detour_fraction = 0.0;
    detour_extra = 0;
  }

(* Sharded routing context, shared by the per-LP instances of a
   [router].  Every send stamps its delivery into the destination LP's
   inbox with [(arrival, entity, seq)], drawing latency jitter and loss
   from the {e sender entity}'s own stream — so neither the LP
   partitioning nor the domain schedule can shift a draw or reorder two
   same-time deliveries.  Faults are static time windows ([win_loss],
   [win_cut]) instead of the mutable runtime controls, for the same
   reason. *)
type 'msg shard = {
  s_lookahead : Time.t;
  lps : Lp.t array;
  switch_lp : int;
  lp_of_host : int array;  (* host id -> LP index *)
  eid_rng : Rng.t array;  (* entity id (switch 0, host h -> h+1) -> stream *)
  eid_seq : int array;  (* entity id -> monotone mailbox-stamp counter *)
  win_loss : Time.t -> float;
  win_cut : Time.t -> int -> bool;
  instances : 'msg t option array;  (* per-LP instance, same index as [lps] *)
}

and 'msg t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  (* [Some (ctx, lp_index)] on a per-LP instance of a sharded router;
     [None] on the classic single-engine fabric. *)
  shard : ('msg shard * int) option;
  (* Dense dispatch: host handlers indexed by id, the switch in its own
     slot — one bounds check and an array read per delivery instead of a
     Hashtbl probe. *)
  mutable host_handlers : ('msg envelope -> unit) option array;
  mutable switch_handler : ('msg envelope -> unit) option;
  (* Gilbert-Elliott channel state: [bad] flips per send according to the
     configured transition probabilities. *)
  mutable bad : bool;
  (* Fault-injection override: when set, replaces the configured loss
     probability (and suspends the burst model) until cleared. *)
  mutable loss_override : float option;
  (* Partitioned hosts, refcounted so overlapping fault windows compose:
     a host is cut off while its count is positive. *)
  partitioned : (int, int) Hashtbl.t;
  (* Precomputed: no configured loss, no burst model, no injected
     override, no active partition — the common case, where [send] skips
     every drop branch with a single flag test. *)
  mutable lossless : bool;
  mutable delivered : int;
  mutable lost : int;
  mutable partition_dropped : int;
  mutable undeliverable : int;
}

let check_probability ~what p =
  if p < 0.0 || p > 1.0 || Float.is_nan p then
    invalid_arg (Printf.sprintf "Fabric.create: %s must be in [0,1]" what)

let recompute_lossless t =
  t.lossless <-
    t.loss_override = None
    && t.config.loss = 0.0
    && t.config.burst = None
    && Hashtbl.length t.partitioned = 0

let create ?(config = default_config) engine rng =
  check_probability ~what:"loss" config.loss;
  check_probability ~what:"detour_fraction" config.detour_fraction;
  (match config.burst with
  | None -> ()
  | Some { p_enter; p_exit; loss_bad } ->
    check_probability ~what:"burst.p_enter" p_enter;
    check_probability ~what:"burst.p_exit" p_exit;
    check_probability ~what:"burst.loss_bad" loss_bad);
  if config.host_to_switch < 0 then
    invalid_arg "Fabric.create: host_to_switch must be non-negative";
  if config.jitter < 0 then invalid_arg "Fabric.create: jitter must be non-negative";
  if config.detour_extra < 0 then
    invalid_arg "Fabric.create: detour_extra must be non-negative";
  let t =
    { engine; rng; config; shard = None; host_handlers = Array.make 64 None;
      switch_handler = None; bad = false;
      loss_override = None; partitioned = Hashtbl.create 8; lossless = false;
      delivered = 0; lost = 0; partition_dropped = 0; undeliverable = 0 }
  in
  recompute_lossless t;
  t

let engine t = t.engine

let register t addr handler =
  match addr with
  | Addr.Switch -> t.switch_handler <- Some handler
  | Addr.Host h ->
    if h < 0 then invalid_arg "Fabric.register: negative host id";
    let len = Array.length t.host_handlers in
    if h >= len then begin
      let len' = ref (2 * len) in
      while h >= !len' do
        len' := 2 * !len'
      done;
      let grown = Array.make !len' None in
      Array.blit t.host_handlers 0 grown 0 len;
      t.host_handlers <- grown
    end;
    t.host_handlers.(h) <- Some handler

let handler_of t = function
  | Addr.Switch -> t.switch_handler
  | Addr.Host h ->
    if h >= 0 && h < Array.length t.host_handlers then
      Array.unsafe_get t.host_handlers h
    else None

(* The runtime fault controls mutate fabric-global state mid-run, which
   a sharded router cannot honour deterministically (an LP may already
   have simulated past the change).  Sharded runs express faults as
   static windows instead ([router ~loss_at ~cut_at]). *)
let require_unsharded t what =
  match t.shard with
  | None -> ()
  | Some _ ->
    invalid_arg
      (Printf.sprintf
         "Fabric.%s: runtime fault controls are not available on a sharded \
          router instance; compile the fault plan to static windows \
          (router ~loss_at ~cut_at) instead"
         what)

let set_loss_override t p =
  require_unsharded t "set_loss_override";
  Option.iter (check_probability ~what:"loss override") p;
  t.loss_override <- p;
  recompute_lossless t

let loss_override t = t.loss_override

let partition t hosts =
  require_unsharded t "partition";
  List.iter
    (fun host ->
      let n = Option.value ~default:0 (Hashtbl.find_opt t.partitioned host) in
      Hashtbl.replace t.partitioned host (n + 1))
    hosts;
  recompute_lossless t

let heal t hosts =
  require_unsharded t "heal";
  List.iter
    (fun host ->
      match Hashtbl.find_opt t.partitioned host with
      | None | Some 1 -> Hashtbl.remove t.partitioned host
      | Some n -> Hashtbl.replace t.partitioned host (n - 1))
    hosts;
  recompute_lossless t

let partitioned t = function
  | Addr.Switch -> false
  | Addr.Host h -> Hashtbl.mem t.partitioned h

(* Deterministic membership in the detour set: hash the host id into
   [0,1) and compare with the configured fraction. *)
let detoured t host =
  t.config.detour_fraction > 0.0
  &&
  let h = host * 0x9E3779B97F4A7C1 in
  let h = (h lxor (h lsr 31)) land 0xFFFFFF in
  float_of_int h /. float_of_int 0x1000000 < t.config.detour_fraction

let detour_of t addr =
  match addr with
  | Addr.Host h when detoured t h -> t.config.detour_extra
  | Addr.Host _ | Addr.Switch -> 0

let base_latency t src dst =
  (* Host-to-host traffic traverses the switch: two hops.  Detoured
     hosts pay the longer path to the ancestor switch on each hop that
     touches them (§3.2). *)
  let hops =
    match (src, dst) with
    | Addr.Switch, Addr.Switch -> 0
    | Addr.Switch, Addr.Host _ | Addr.Host _, Addr.Switch -> t.config.host_to_switch
    | Addr.Host _, Addr.Host _ -> 2 * t.config.host_to_switch
  in
  if t.config.detour_fraction = 0.0 then hops
  else hops + detour_of t src + detour_of t dst

let latency_sample t src dst =
  let jitter = if t.config.jitter > 0 then Rng.int t.rng (t.config.jitter + 1) else 0 in
  base_latency t src dst + jitter

(* Per-send loss probability.  An injector override wins; otherwise the
   Gilbert-Elliott channel (when configured) steps its two-state chain
   once per packet and picks the state's loss rate; otherwise the plain
   i.i.d. knob. *)
let loss_probability t =
  match t.loss_override with
  | Some p -> p
  | None -> (
    match t.config.burst with
    | None -> t.config.loss
    | Some { p_enter; p_exit; loss_bad } ->
      let flip_p = if t.bad then p_exit else p_enter in
      if flip_p > 0.0 && Rng.float t.rng < flip_p then t.bad <- not t.bad;
      if t.bad then loss_bad else t.config.loss)

let deliver t ?int_ ~src ~dst ~now payload =
  let env = { src; dst; sent_at = now; payload; int_ } in
  let delay = latency_sample t src dst in
  ignore
    (Engine.schedule t.engine ~after:delay (fun () ->
         match handler_of t dst with
         | Some handler ->
           t.delivered <- t.delivered + 1;
           Obs.Recorder.count "fabric.delivered" 1;
           Option.iter Obs.Int_telemetry.deliver_stack env.int_;
           handler env
         | None ->
           t.undeliverable <- t.undeliverable + 1;
           Obs.Recorder.count "fabric.undeliverable" 1;
           Option.iter Obs.Int_telemetry.drop_stack env.int_;
           if Trace.enabled () then
             Trace.emit ~at:(Engine.now t.engine) Trace.Fabric
               (lazy
                 (Printf.sprintf "DROP (no handler) %s -> %s" (Addr.to_string src)
                    (Addr.to_string dst)))))

(* Drop decisions, off the lossless fast path.  The evaluation order
   (partition check, then the loss model's rng draws) is load-bearing
   for reproducibility of seeded runs. *)
let send_lossy t ?int_ ~src ~dst ~now payload =
  if partitioned t src || partitioned t dst then begin
    Option.iter Obs.Int_telemetry.drop_stack int_;
    t.partition_dropped <- t.partition_dropped + 1;
    Obs.Recorder.count "fabric.partition_dropped" 1;
    if Obs.Recorder.active () then
      Obs.Recorder.mark ~at:now ~track:"fabric" "drop: partition";
    if Trace.enabled () then
      Trace.emit ~at:now Trace.Fabric
        (lazy
          (Printf.sprintf "DROP (partition) %s -> %s" (Addr.to_string src)
             (Addr.to_string dst)))
  end
  else begin
    let p = loss_probability t in
    if p > 0.0 && Rng.float t.rng < p then begin
      Option.iter Obs.Int_telemetry.drop_stack int_;
      t.lost <- t.lost + 1;
      Obs.Recorder.count "fabric.lost" 1;
      if Obs.Recorder.active () then
        Obs.Recorder.mark ~at:now ~track:"fabric"
          (if t.bad then "drop: loss (burst)" else "drop: loss");
      if Trace.enabled () then
        Trace.emit ~at:now Trace.Fabric
          (lazy
            (Printf.sprintf "DROP (loss p=%.3f%s) %s -> %s" p
               (if t.bad then ", burst" else "")
               (Addr.to_string src) (Addr.to_string dst)))
    end
    else deliver t ?int_ ~src ~dst ~now payload
  end

(* -- sharded send path --------------------------------------------------- *)

let entity_id = function Addr.Switch -> 0 | Addr.Host h -> h + 1

let check_entity s addr what =
  let e = entity_id addr in
  if e >= Array.length s.eid_seq then
    invalid_arg
      (Printf.sprintf "Fabric.send: %s %s outside the routed host range [0, %d)"
         what (Addr.to_string addr)
         (Array.length s.eid_seq - 1));
  e

let lp_of_addr s = function
  | Addr.Switch -> s.switch_lp
  | Addr.Host h -> s.lp_of_host.(h)

(* Same decision order as the legacy [send_lossy]/[deliver] pair —
   partition check (no draw), then the loss draw, then the jitter draw —
   but every draw comes from the sender entity's own stream and every
   fault check is a pure function of simulated time, so the draw
   sequence is identical under any partitioning.  Ambient observability
   (Recorder/Trace/INT) is skipped: it is domain-local state that helper
   domains do not carry. *)
let send_sharded t (s, _) ?int_ ~src ~dst payload =
  let now = Engine.now t.engine in
  let se = check_entity s src "src" in
  ignore (check_entity s dst "dst");
  let cut = function Addr.Switch -> false | Addr.Host h -> s.win_cut now h in
  if cut src || cut dst then t.partition_dropped <- t.partition_dropped + 1
  else begin
    let rng = s.eid_rng.(se) in
    let p = Float.max t.config.loss (s.win_loss now) in
    if p > 0.0 && Rng.float rng < p then t.lost <- t.lost + 1
    else begin
      let jitter = if t.config.jitter > 0 then Rng.int rng (t.config.jitter + 1) else 0 in
      let latency = base_latency t src dst + jitter in
      (* [base_latency] is at least one host<->switch hop for any
         src <> dst pair, which is exactly the lookahead — the guard only
         fires if the latency model drifts out from under the contract. *)
      if latency < s.s_lookahead then
        invalid_arg
          (Printf.sprintf
             "Fabric.send: sharded latency %d below the lookahead %d (conservative \
              window violation)"
             latency s.s_lookahead);
      let seq = s.eid_seq.(se) in
      s.eid_seq.(se) <- seq + 1;
      let dlp = lp_of_addr s dst in
      let env = { src; dst; sent_at = now; payload; int_ } in
      Lp.post s.lps.(dlp) ~at:(now + latency) ~src:se ~seq (fun () ->
          match s.instances.(dlp) with
          | None -> assert false (* filled before the router is returned *)
          | Some inst -> (
            match handler_of inst dst with
            | Some handler ->
              inst.delivered <- inst.delivered + 1;
              handler env
            | None -> inst.undeliverable <- inst.undeliverable + 1))
    end
  end

let send t ?int_ ~src ~dst payload =
  if Addr.equal src dst then invalid_arg "Fabric.send: src = dst";
  match t.shard with
  | Some ctx -> send_sharded t ctx ?int_ ~src ~dst payload
  | None ->
    let now = Engine.now t.engine in
    Obs.Recorder.count "fabric.sent" 1;
    if Trace.enabled () then
      Trace.emit ~at:now Trace.Fabric
        (lazy (Printf.sprintf "send %s -> %s" (Addr.to_string src) (Addr.to_string dst)));
    if t.lossless then deliver t ?int_ ~src ~dst ~now payload
    else send_lossy t ?int_ ~src ~dst ~now payload

let in_burst t = t.bad
let delivered t = t.delivered
let lost t = t.lost
let partition_dropped t = t.partition_dropped
let undeliverable t = t.undeliverable

(* The slowest guarantee the latency model makes is the fastest link:
   one host<->switch hop with zero jitter.  Everything else (second hop,
   jitter, detours) only adds. *)
let lookahead config =
  if config.host_to_switch <= 0 then
    invalid_arg
      "Fabric.lookahead: host_to_switch must be positive for conservative \
       synchronization";
  config.host_to_switch

module Mailbox = struct
  type nonrec t = { dst : Lp.t; lookahead : Time.t }

  let create ~lookahead lp =
    if lookahead <= 0 then invalid_arg "Fabric.Mailbox.create: lookahead must be positive";
    { dst = lp; lookahead }

  let lp t = t.dst
  let lookahead t = t.lookahead

  let post t ~now ~latency ~src ~seq fn =
    if latency < t.lookahead then
      invalid_arg
        (Printf.sprintf
           "Fabric.Mailbox.post: latency %d is below the lookahead %d (conservative \
            window violation)"
           latency t.lookahead);
    Lp.post t.dst ~at:(now + latency) ~src ~seq fn

  let posted t = Lp.posted t.dst
end

(* -- sharded router ------------------------------------------------------- *)

(* Per-entity stream seed: splitmix-style (seed, entity) mix, so a
   stream depends only on the model entity, never on the LP it happens
   to be grouped onto (the same contract as Lp's own seeding). *)
let mix seed eid =
  let h = ref (seed lxor ((eid + 1) * 0x9E3779B97F4A7C1)) in
  h := (!h lxor (!h lsr 30)) * 0xBF58476D1CE4E5B;
  h := (!h lxor (!h lsr 27)) * 0x94D049BB133111E;
  (!h lxor (!h lsr 31)) land max_int

let router ?(config = default_config) ?(loss_at = fun _ -> 0.0)
    ?(cut_at = fun _ _ -> false) ~lps ~switch_lp ~lp_of_host ~hosts ~seed () =
  let la = lookahead config in
  if config.burst <> None then
    invalid_arg
      "Fabric.router: burst loss steps a fabric-global channel per packet and \
       cannot be sharded deterministically; compile it to static loss windows \
       (loss_at) instead";
  check_probability ~what:"loss" config.loss;
  check_probability ~what:"detour_fraction" config.detour_fraction;
  if config.jitter < 0 then invalid_arg "Fabric.router: jitter must be non-negative";
  if config.detour_extra < 0 then
    invalid_arg "Fabric.router: detour_extra must be non-negative";
  let n = Array.length lps in
  if n = 0 then invalid_arg "Fabric.router: no LPs";
  if switch_lp < 0 || switch_lp >= n then
    invalid_arg (Printf.sprintf "Fabric.router: switch_lp %d outside [0, %d)" switch_lp n);
  if hosts < 0 then invalid_arg "Fabric.router: negative host count";
  let map = Array.init hosts lp_of_host in
  Array.iteri
    (fun h l ->
      if l < 0 || l >= n then
        invalid_arg
          (Printf.sprintf "Fabric.router: host %d mapped to LP %d outside [0, %d)" h l n))
    map;
  let s =
    {
      s_lookahead = la;
      lps;
      switch_lp;
      lp_of_host = map;
      eid_rng = Array.init (hosts + 1) (fun e -> Rng.create ~seed:(mix seed e));
      eid_seq = Array.make (hosts + 1) 0;
      win_loss = loss_at;
      win_cut = cut_at;
      instances = Array.make n None;
    }
  in
  Array.mapi
    (fun i lp ->
      let inst =
        {
          engine = Lp.engine lp;
          rng = Lp.rng lp;
          config;
          shard = Some (s, i);
          host_handlers = Array.make (max 64 hosts) None;
          switch_handler = None;
          bad = false;
          loss_override = None;
          partitioned = Hashtbl.create 1;
          lossless = true;
          delivered = 0;
          lost = 0;
          partition_dropped = 0;
          undeliverable = 0;
        }
      in
      s.instances.(i) <- Some inst;
      inst)
    lps

let router_defer t ~src ~at fn =
  match t.shard with
  | None -> invalid_arg "Fabric.router_defer: not a sharded router instance"
  | Some (s, _) ->
    let se = check_entity s src "src" in
    let seq = s.eid_seq.(se) in
    s.eid_seq.(se) <- seq + 1;
    Lp.post s.lps.(s.switch_lp) ~at:(at + s.s_lookahead) ~src:se ~seq fn
