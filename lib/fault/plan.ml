open Draconis_sim

type event =
  | Switch_failover
  | Crash of { node : int; down_for : Time.t option }
  | Loss_burst of { duration : Time.t; loss : float }
  | Partition of { hosts : int list; duration : Time.t }
  | Straggler of { node : int; factor : float; duration : Time.t }

type timed = { at : Time.t; event : event }

type t = { events : timed list }

let empty = { events = [] }
let is_empty t = t.events = []

let validate_event (timed : timed) =
  if timed.at < 0 then invalid_arg "Plan.create: negative event time";
  match timed.event with
  | Switch_failover -> ()
  | Crash { node; down_for } ->
    if node < 0 then invalid_arg "Plan.create: crash: negative node";
    (match down_for with
    | Some d when d <= 0 -> invalid_arg "Plan.create: crash: non-positive down time"
    | Some _ | None -> ())
  | Loss_burst { duration; loss } ->
    if duration <= 0 then invalid_arg "Plan.create: burst: non-positive duration";
    if loss < 0.0 || loss > 1.0 || Float.is_nan loss then
      invalid_arg "Plan.create: burst: loss outside [0,1]"
  | Partition { hosts; duration } ->
    if hosts = [] then invalid_arg "Plan.create: partition: empty host list";
    if List.exists (fun h -> h < 0) hosts then
      invalid_arg "Plan.create: partition: negative host id";
    if duration <= 0 then invalid_arg "Plan.create: partition: non-positive duration"
  | Straggler { node; factor; duration } ->
    if node < 0 then invalid_arg "Plan.create: straggler: negative node";
    if factor < 1.0 || Float.is_nan factor then
      invalid_arg "Plan.create: straggler: factor must be >= 1.0";
    if duration <= 0 then invalid_arg "Plan.create: straggler: non-positive duration"

let create events =
  List.iter validate_event events;
  { events = List.stable_sort (fun a b -> compare a.at b.at) events }

let events t = t.events

(* ------------------------------------------------------------------ *)
(* String syntax: `kind@time[:key=value,...]`, events `;`-separated.  *)

let time_to_string (t : Time.t) =
  if t = 0 then "0ns"
  else if t mod 1_000_000_000 = 0 then Printf.sprintf "%ds" (t / 1_000_000_000)
  else if t mod 1_000_000 = 0 then Printf.sprintf "%dms" (t / 1_000_000)
  else if t mod 1_000 = 0 then Printf.sprintf "%dus" (t / 1_000)
  else Printf.sprintf "%dns" t

let time_of_string s =
  let s = String.trim s in
  let n = String.length s in
  let digits =
    let rec go i =
      if i < n && (match s.[i] with '0' .. '9' | '.' -> true | _ -> false) then
        go (i + 1)
      else i
    in
    go 0
  in
  if digits = 0 then invalid_arg (Printf.sprintf "Plan.of_string: bad time %S" s);
  let value =
    match float_of_string_opt (String.sub s 0 digits) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Plan.of_string: bad time %S" s)
  in
  match String.sub s digits (n - digits) with
  | "ns" -> int_of_float (Float.round value)
  | "us" -> Time.us_f value
  | "ms" -> Time.ms_f value
  | "s" -> Time.s_f value
  | unit_ ->
    invalid_arg
      (Printf.sprintf "Plan.of_string: unknown time unit %S (want ns/us/ms/s)" unit_)

let float_to_string f =
  (* %g keeps `0.8` as "0.8" and `4.` as "4", both re-parseable. *)
  Printf.sprintf "%g" f

let event_to_string = function
  | Switch_failover -> "failover"
  | Crash { node; down_for } ->
    let down =
      match down_for with
      | None -> ""
      | Some d -> Printf.sprintf ",down=%s" (time_to_string d)
    in
    Printf.sprintf "crash:node=%d%s" node down
  | Loss_burst { duration; loss } ->
    Printf.sprintf "burst:dur=%s,loss=%s" (time_to_string duration)
      (float_to_string loss)
  | Partition { hosts; duration } ->
    Printf.sprintf "partition:hosts=%s,dur=%s"
      (String.concat "+" (List.map string_of_int hosts))
      (time_to_string duration)
  | Straggler { node; factor; duration } ->
    Printf.sprintf "straggler:node=%d,factor=%s,dur=%s" node
      (float_to_string factor) (time_to_string duration)

let timed_to_string { at; event } =
  (* Splice the `@time` between the kind and its parameters. *)
  match String.index_opt (event_to_string event) ':' with
  | None -> Printf.sprintf "%s@%s" (event_to_string event) (time_to_string at)
  | Some i ->
    let s = event_to_string event in
    Printf.sprintf "%s@%s%s" (String.sub s 0 i) (time_to_string at)
      (String.sub s i (String.length s - i))

let to_string t = String.concat ";" (List.map timed_to_string t.events)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let split_on sep s = String.split_on_char sep s |> List.map String.trim

let parse_params spec s =
  List.filter_map
    (fun kv ->
      if kv = "" then None
      else
        match String.index_opt kv '=' with
        | None ->
          invalid_arg
            (Printf.sprintf "Plan.of_string: %S: bad parameter %S (want key=value)"
               spec kv)
        | Some i ->
          Some
            ( String.sub kv 0 i,
              String.sub kv (i + 1) (String.length kv - i - 1) ))
    (split_on ',' s)

let take_param spec params key =
  match List.assoc_opt key !params with
  | None ->
    invalid_arg (Printf.sprintf "Plan.of_string: %S: missing parameter %S" spec key)
  | Some v ->
    params := List.remove_assoc key !params;
    v

let take_param_opt params key =
  match List.assoc_opt key !params with
  | None -> None
  | Some v ->
    params := List.remove_assoc key !params;
    Some v

let parse_int spec s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Plan.of_string: %S: bad integer %S" spec s)

let parse_float spec s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Plan.of_string: %S: bad number %S" spec s)

let event_of_spec spec =
  let head, params_str =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i -> (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  in
  let kind, at =
    match String.index_opt head '@' with
    | None ->
      invalid_arg
        (Printf.sprintf "Plan.of_string: %S: missing @time (e.g. failover@5ms)" spec)
    | Some i ->
      ( String.trim (String.sub head 0 i),
        time_of_string (String.sub head (i + 1) (String.length head - i - 1)) )
  in
  let params = ref (parse_params spec params_str) in
  let event =
    match kind with
    | "failover" -> Switch_failover
    | "crash" ->
      let node = parse_int spec (take_param spec params "node") in
      let down_for = Option.map time_of_string (take_param_opt params "down") in
      Crash { node; down_for }
    | "burst" ->
      let duration = time_of_string (take_param spec params "dur") in
      let loss = parse_float spec (take_param spec params "loss") in
      Loss_burst { duration; loss }
    | "partition" ->
      let hosts =
        List.map (parse_int spec)
          (String.split_on_char '+' (take_param spec params "hosts"))
      in
      let duration = time_of_string (take_param spec params "dur") in
      Partition { hosts; duration }
    | "straggler" ->
      let node = parse_int spec (take_param spec params "node") in
      let factor = parse_float spec (take_param spec params "factor") in
      let duration = time_of_string (take_param spec params "dur") in
      Straggler { node; factor; duration }
    | _ ->
      invalid_arg
        (Printf.sprintf
           "Plan.of_string: unknown fault kind %S (want \
            failover/crash/burst/partition/straggler)"
           kind)
  in
  (match !params with
  | [] -> ()
  | (key, _) :: _ ->
    invalid_arg (Printf.sprintf "Plan.of_string: %S: unknown parameter %S" spec key));
  { at; event }

let of_string s =
  create (List.filter_map
            (fun spec -> if spec = "" then None else Some (event_of_spec spec))
            (split_on ';' s))
