open Draconis_sim
open Draconis_net
open Draconis
open Draconis_baselines

type t = {
  name : string;
  engine : Engine.t;
  failover : unit -> int;
  crash_node : int -> unit;
  restart_node : int -> unit;
  set_loss_override : float option -> unit;
  partition : int list -> unit;
  heal : int list -> unit;
  set_slowdown : int -> float -> unit;
  supports_crash : bool;
  supports_straggler : bool;
}

let unsupported name op _ =
  invalid_arg (Printf.sprintf "Fault target %s: %s unsupported" name op)

let of_cluster ?(name = "draconis") cluster =
  let fabric = Cluster.fabric cluster in
  {
    name;
    engine = Cluster.engine cluster;
    failover = (fun () -> Cluster.fail_over_switch cluster);
    crash_node = Cluster.crash_worker cluster;
    restart_node = Cluster.restart_worker cluster;
    set_loss_override = Fabric.set_loss_override fabric;
    partition = Fabric.partition fabric;
    heal = Fabric.heal fabric;
    set_slowdown = Cluster.set_node_slowdown cluster;
    supports_crash = true;
    supports_straggler = true;
  }

let of_central_server ?(name = "central-server") server =
  let fabric = Central_server.fabric server in
  {
    name;
    engine = Central_server.engine server;
    failover = (fun () -> Central_server.fail_over_server server);
    crash_node = Central_server.crash_worker server;
    restart_node = Central_server.restart_worker server;
    set_loss_override = Fabric.set_loss_override fabric;
    partition = Fabric.partition fabric;
    heal = Fabric.heal fabric;
    set_slowdown = Central_server.set_node_slowdown server;
    supports_crash = true;
    supports_straggler = true;
  }

let of_r2p2 ?(name = "r2p2") r2p2 =
  let fabric = R2p2.fabric r2p2 in
  {
    name;
    engine = R2p2.engine r2p2;
    failover = (fun () -> R2p2.fail_over_switch r2p2);
    crash_node = unsupported name "crash";
    restart_node = unsupported name "restart";
    set_loss_override = Fabric.set_loss_override fabric;
    partition = Fabric.partition fabric;
    heal = Fabric.heal fabric;
    set_slowdown = (fun _ -> unsupported name "straggler");
    supports_crash = false;
    supports_straggler = false;
  }

let of_racksched ?(name = "racksched") racksched =
  let fabric = Racksched.fabric racksched in
  {
    name;
    engine = Racksched.engine racksched;
    failover = (fun () -> Racksched.fail_over_switch racksched);
    crash_node = unsupported name "crash";
    restart_node = unsupported name "restart";
    set_loss_override = Fabric.set_loss_override fabric;
    partition = Fabric.partition fabric;
    heal = Fabric.heal fabric;
    set_slowdown = (fun _ -> unsupported name "straggler");
    supports_crash = false;
    supports_straggler = false;
  }
