open Draconis_sim
open Draconis_stats
open Draconis

type report = {
  system : string;
  failovers : int;
  queued_lost : int;
  recovery : Time.t option;
  timeouts : int;
  resubmitted : int;
  abandoned : int;
  submitted : int;
  completed : int;
  unstarted : int;
  availability : float;
}

let default_bucket = Time.us 100

let measure ?(bucket = default_bucket) ~metrics ~injector ~until () =
  let decisions = Metrics.decisions metrics in
  let recovery =
    match Injector.first_failover injector with
    | None -> None
    | Some at -> (
      match Meter.first_after decisions ~after:at with
      | None -> None
      | Some first -> Some (first - at))
  in
  let availability =
    if until <= 0 then 0.0
    else begin
      let buckets = (until + bucket - 1) / bucket in
      let occupied =
        Array.fold_left
          (fun acc (b, _) -> if b * bucket < until then acc + 1 else acc)
          0
          (Meter.timeline decisions ~bucket)
      in
      float_of_int occupied /. float_of_int buckets
    end
  in
  {
    system = (Injector.target injector).Target.name;
    failovers = List.length (Injector.failovers injector);
    queued_lost = Injector.queued_lost injector;
    recovery;
    timeouts = Metrics.timeouts metrics;
    resubmitted = Metrics.resubmitted metrics;
    abandoned = Metrics.abandoned metrics;
    submitted = Metrics.submitted metrics;
    completed = Metrics.completed metrics;
    unstarted = Metrics.unstarted metrics;
    availability;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>%s:@;\
     <1 2>failovers        %d (%d queued task(s) lost)@;\
     <1 2>recovery         %s@;\
     <1 2>timeouts         %d (%d resubmitted, %d abandoned)@;\
     <1 2>tasks            %d submitted, %d completed, %d unstarted@;\
     <1 2>availability     %.1f%%@]"
    r.system r.failovers r.queued_lost
    (match r.recovery with
    | None -> "-"
    | Some t -> Format.asprintf "%a" Time.pp t)
    r.timeouts r.resubmitted r.abandoned r.submitted r.completed r.unstarted
    (100.0 *. r.availability)
