(** Fault-injection capability surface of a schedulable system.

    A target bundles the hooks the {!Injector} pulls when a plan event
    fires, so one injector works uniformly across the Draconis cluster
    and the baselines.  Fabric-level faults (loss bursts, partitions)
    and switch fail-over are supported by every target; executor-level
    faults (crash/restart, straggler slowdown) only by systems built on
    the core pull-model executors ([supports_crash] /
    [supports_straggler] advertise this — {!Injector.arm} rejects a
    plan that exceeds the target's capabilities, rather than failing
    mid-run). *)

open Draconis_sim

type t = {
  name : string;
  engine : Engine.t;
  failover : unit -> int;
      (** kill the scheduler and bring up a fresh standby; returns the
          queued tasks (or believed-occupancy slots) lost *)
  crash_node : int -> unit;
  restart_node : int -> unit;
  set_loss_override : float option -> unit;
  partition : int list -> unit;
  heal : int list -> unit;
  set_slowdown : int -> float -> unit;
  supports_crash : bool;
  supports_straggler : bool;
}

(** Full capability set. *)
val of_cluster : ?name:string -> Draconis.Cluster.t -> t

(** Full capability set ([failover] clears the server's in-memory
    queue). *)
val of_central_server : ?name:string -> Draconis_baselines.Central_server.t -> t

(** Fabric faults and fail-over only; push executors have no
    crash/straggler hooks. *)
val of_r2p2 : ?name:string -> Draconis_baselines.R2p2.t -> t

(** Fabric faults and fail-over only. *)
val of_racksched : ?name:string -> Draconis_baselines.Racksched.t -> t
