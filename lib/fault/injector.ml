open Draconis_sim

type t = {
  target : Target.t;
  mutable fired : (Time.t * string) list; (* newest first *)
  mutable failovers : (Time.t * int) list; (* newest first *)
  mutable bursts : float list; (* loss of each active burst window *)
  stragglers : (int, float list) Hashtbl.t; (* node -> active factors *)
}

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

let note t what =
  let at = Engine.now t.target.Target.engine in
  t.fired <- (at, what) :: t.fired;
  if Trace.enabled () then Trace.emit ~at Trace.Host (lazy ("fault: " ^ what))

let apply_bursts t =
  match t.bursts with
  | [] -> t.target.Target.set_loss_override None
  | losses ->
    t.target.Target.set_loss_override (Some (List.fold_left max 0.0 losses))

let apply_straggler t node =
  let factors = Option.value ~default:[] (Hashtbl.find_opt t.stragglers node) in
  t.target.Target.set_slowdown node (List.fold_left max 1.0 factors)

let fire t (event : Plan.event) =
  let engine = t.target.Target.engine in
  match event with
  | Plan.Switch_failover ->
    let lost = t.target.Target.failover () in
    t.failovers <- (Engine.now engine, lost) :: t.failovers;
    note t (Printf.sprintf "failover (%d queued lost)" lost)
  | Plan.Crash { node; down_for } ->
    t.target.Target.crash_node node;
    note t
      (Printf.sprintf "crash node %d%s" node
         (match down_for with
         | None -> " (permanent)"
         | Some d -> Printf.sprintf " (down %.0f us)" (Time.to_us d)));
    (match down_for with
    | None -> ()
    | Some d ->
      ignore
        (Engine.schedule engine ~after:d (fun () ->
             t.target.Target.restart_node node;
             note t (Printf.sprintf "restart node %d" node))))
  | Plan.Loss_burst { duration; loss } ->
    t.bursts <- loss :: t.bursts;
    apply_bursts t;
    note t (Printf.sprintf "loss burst start (p=%.3f)" loss);
    ignore
      (Engine.schedule engine ~after:duration (fun () ->
           t.bursts <- remove_one loss t.bursts;
           apply_bursts t;
           note t (Printf.sprintf "loss burst end (p=%.3f)" loss)))
  | Plan.Partition { hosts; duration } ->
    t.target.Target.partition hosts;
    let hosts_str = String.concat "+" (List.map string_of_int hosts) in
    note t (Printf.sprintf "partition hosts %s" hosts_str);
    ignore
      (Engine.schedule engine ~after:duration (fun () ->
           t.target.Target.heal hosts;
           note t (Printf.sprintf "heal hosts %s" hosts_str)))
  | Plan.Straggler { node; factor; duration } ->
    Hashtbl.replace t.stragglers node
      (factor :: Option.value ~default:[] (Hashtbl.find_opt t.stragglers node));
    apply_straggler t node;
    note t (Printf.sprintf "straggler node %d (x%.1f)" node factor);
    ignore
      (Engine.schedule engine ~after:duration (fun () ->
           Hashtbl.replace t.stragglers node
             (remove_one factor
                (Option.value ~default:[] (Hashtbl.find_opt t.stragglers node)));
           apply_straggler t node;
           note t (Printf.sprintf "straggler node %d recovered" node)))

let validate plan (target : Target.t) =
  List.iter
    (fun { Plan.at = _; event } ->
      match event with
      | Plan.Crash _ when not target.supports_crash ->
        invalid_arg
          (Printf.sprintf
             "Injector.arm: plan uses crash but target %s does not support it"
             target.name)
      | Plan.Straggler _ when not target.supports_straggler ->
        invalid_arg
          (Printf.sprintf
             "Injector.arm: plan uses straggler but target %s does not support it"
             target.name)
      | _ -> ())
    (Plan.events plan)

let arm plan target =
  validate plan target;
  let t =
    { target; fired = []; failovers = []; bursts = []; stragglers = Hashtbl.create 8 }
  in
  List.iter
    (fun { Plan.at; event } ->
      ignore (Engine.schedule_at target.Target.engine ~at (fun () -> fire t event)))
    (Plan.events plan);
  t

let target t = t.target
let fired t = List.rev t.fired
let failovers t = List.rev t.failovers

let first_failover t =
  match List.rev t.failovers with [] -> None | (at, _) :: _ -> Some at

let queued_lost t = List.fold_left (fun acc (_, lost) -> acc + lost) 0 t.failovers
