(** Recovery metrics for a faulted run (paper §3.3).

    Summarizes how a system rode out an armed fault plan: how much
    queued state each fail-over destroyed, how long until the standby
    scheduler made its first assignment (time-to-first-assignment), how
    much work the clients re-drove (timeouts, resubmissions,
    abandonments), and what fraction of the run the scheduler was
    making decisions at all (availability over the
    {!Draconis_stats.Meter.timeline} of scheduling decisions).

    All fields derive from integer simulated-time counters, so two runs
    with the same seed produce byte-identical reports — the determinism
    check behind the [--jobs 1] vs [--jobs n] acceptance test. *)

open Draconis_sim

type report = {
  system : string;
  failovers : int;
  queued_lost : int;  (** tasks queued at the scheduler when it died *)
  recovery : Time.t option;
      (** first fail-over to the standby's first scheduling decision;
          [None] if no fail-over fired or nothing was assigned after *)
  timeouts : int;
  resubmitted : int;
  abandoned : int;
  submitted : int;
  completed : int;
  unstarted : int;
  availability : float;
      (** fraction of [bucket]-sized slots in [\[0, until)] with at
          least one scheduling decision *)
}

(** 100 us availability buckets. *)
val default_bucket : Time.t

(** [measure ?bucket ~metrics ~injector ~until ()] builds the report
    for a run observed through [metrics] over the window
    [\[0, until)]. *)
val measure :
  ?bucket:Time.t ->
  metrics:Draconis.Metrics.t ->
  injector:Injector.t ->
  until:Time.t ->
  unit ->
  report

val pp : Format.formatter -> report -> unit
