(** Declarative fault plans.

    A plan is a schedule of timed fault events — switch fail-over,
    worker crash/restart windows, loss bursts, partitions, straggler
    degradation — that {!Injector.arm} turns into engine events against
    a {!Target.t}.  The plan itself contains no randomness: every event
    fires at an exact simulated time, and any randomness a fault induces
    (which packets a loss burst eats) is drawn from the run's single
    seeded RNG, so identical seeds reproduce identical runs.

    Plans round-trip through a compact string syntax used by the
    [--fault] CLI flag, e.g.

    {v failover@5ms
       crash@2ms:node=3,down=1ms
       burst@1ms:dur=500us,loss=0.8
       partition@1ms:hosts=0+1+2,dur=2ms
       straggler@1ms:node=2,factor=4,dur=2ms v}

    Events are separated by [';']; times are a number with an
    [ns]/[us]/[ms]/[s] suffix. *)

open Draconis_sim

type event =
  | Switch_failover
      (** the scheduler's switch (or server host, for server targets)
          dies and a fresh standby takes over: queued state is lost *)
  | Crash of { node : int; down_for : Time.t option }
      (** all executors on [node] crash, losing in-flight tasks;
          restarted after [down_for] ([None] = never restarted) *)
  | Loss_burst of { duration : Time.t; loss : float }
      (** every packet drops with probability [loss] for [duration];
          overlapping bursts apply the maximum loss *)
  | Partition of { hosts : int list; duration : Time.t }
      (** all traffic to or from [hosts] is dropped for [duration];
          overlapping partitions compose (refcounted in the fabric) *)
  | Straggler of { node : int; factor : float; duration : Time.t }
      (** [node]'s executors run [factor] times slower for [duration];
          overlapping windows apply the maximum factor *)

type timed = { at : Time.t; event : event }

type t

val empty : t
val is_empty : t -> bool

(** [create events] sorts the events by time (stable) and validates
    them.
    @raise Invalid_argument on a negative time, a probability outside
    [\[0,1\]], a non-positive duration, a factor below 1, a negative
    node id, or an empty host list. *)
val create : timed list -> t

(** Events in firing order. *)
val events : t -> timed list

(** [of_string s] parses the [--fault] syntax above ([';']-separated
    events).  Whitespace around events and parameters is ignored.
    @raise Invalid_argument with a descriptive message on a syntax
    error, an unknown event kind, an unknown or missing parameter, or a
    value that fails {!create}'s validation. *)
val of_string : string -> t

(** Round-trips through {!of_string}. *)
val to_string : t -> string

val event_to_string : event -> string
val pp : Format.formatter -> t -> unit
