(** Arms a {!Plan.t} against a {!Target.t}.

    Every plan event becomes an engine event at its exact simulated
    time, so runs with the same seed and plan are byte-identical.  The
    injector tracks what fired (for logs and recovery measurement) and
    composes overlapping windows: concurrent loss bursts apply the
    maximum loss, concurrent stragglers on one node the maximum factor,
    and partitions refcount in the fabric. *)

open Draconis_sim

type t

(** [arm plan target] schedules every event.  Call before running the
    engine (events must lie in the future).
    @raise Invalid_argument if the plan uses crash or straggler events
    against a target that does not support them. *)
val arm : Plan.t -> Target.t -> t

val target : t -> Target.t

(** Fired events, chronological: time and a human-readable description.
    Also emitted as [Trace.Host] records prefixed ["fault: "]. *)
val fired : t -> (Time.t * string) list

(** Fail-overs fired so far: time and queued tasks lost. *)
val failovers : t -> (Time.t * int) list

val first_failover : t -> Time.t option

(** Total queued tasks lost across all fail-overs. *)
val queued_lost : t -> int
