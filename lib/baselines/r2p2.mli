(** R2P2 baseline: in-network Join-Bounded-Shortest-Queue scheduling
    (paper §2.2, §8.3).

    The switch keeps one occupancy counter per executor and pushes each
    arriving task to an executor whose queue holds fewer than [k] tasks,
    preferring emptier queues: it first scans for a counter equal to 0,
    then 1, and so on — each scan window costing a packet recirculation,
    O(n x k) recirculations in the worst case.  If every queue is full
    the packet keeps recirculating until a slot frees; when the
    recirculation port overflows, the task is {e dropped} (the client
    times out and resubmits) — the Fig. 7/8 failure mode of R2P2-1.

    Counters are partitioned across [window] register arrays so one
    traversal may probe [window] executors while touching each array
    once, matching a multi-stage hardware layout.

    Executors are push-model with a local queue of up to [k] tasks
    (1 in service + k-1 waiting), which is where node-level blocking
    arises for k > 1. *)

open Draconis_sim
open Draconis_net
open Draconis_p4
open Draconis_proto
open Draconis

type pkt =
  | Wire of Message.t
  | Search of {
      task : Task.t;
      client : Addr.t;
      cursor : int;  (** next executor index to probe (window-aligned) *)
      round : int;  (** current JBSQ bound being sought *)
      scanned : int;  (** executors probed in this round *)
    }
  | Steal_fixup of { victim : int option; thief : int option }
      (** work-stealing extension: counter corrections after a steal
          moved a queued task between executors behind the switch's
          back; processed over two traversals because the victim and
          thief may share register arrays *)

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  jbsq_k : int;  (** executor queue bound; R2P2-k *)
  window : int;  (** counters probed per traversal; must divide the
                     executor count *)
  work_stealing : bool;
      (** extension probing the paper's §2.2.1 claim: idle executors
          steal queued (not yet running) tasks from a random peer node.
          Every steal costs a request/transfer round trip plus a counter
          fix-up packet through the switch — the coordination overhead
          the paper cites for leaving stealing out *)
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  client_timeout : Time.t option;  (** drop recovery (paper: ~2x task time) *)
}

(** Paper shape: 10x16 executors, 2 clients, k = 3, window = 16. *)
val default_config : config

type t

val create : config -> t

val engine : t -> Engine.t
val fabric : t -> Message.t Fabric.t
val metrics : t -> Metrics.t
val pipeline : t -> (Message.t, pkt) Pipeline.t
val client : t -> int -> Client.t
val clients : t -> Client.t array

(** [fail_over_switch t] models the switch dying and a standby with
    zeroed registers taking over: counters and idle masks reset (every
    executor believed idle) and recirculating search packets are lost.
    Tasks already pushed to executors keep running.  Returns the
    believed occupancy wiped from the registers. *)
val fail_over_switch : t -> int

(** Current counter value for an executor (control-plane view). *)
val counter : t -> int -> int

(** Successful steals (work-stealing extension). *)
val steals : t -> int

val run : t -> until:Time.t -> unit
val run_until_drained : t -> deadline:Time.t -> bool
val outstanding : t -> int
val total_executors : t -> int
