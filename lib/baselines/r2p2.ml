open Draconis_sim
open Draconis_net
open Draconis_p4
open Draconis_proto
open Draconis

type pkt =
  | Wire of Message.t
  | Search of {
      task : Task.t;
      client : Addr.t;
      cursor : int;
      round : int;
      scanned : int;
    }
  | Steal_fixup of { victim : int option; thief : int option }
      (** work-stealing extension: counter corrections after a task
          moved between executors behind the switch's back; split across
          two traversals because victim and thief may share arrays *)

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  jbsq_k : int;
  window : int;
  work_stealing : bool;
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  client_timeout : Time.t option;
}

let default_config =
  {
    seed = 42;
    workers = 10;
    executors_per_worker = 16;
    clients = 2;
    jbsq_k = 3;
    window = 4;
    work_stealing = false;
    fabric_config = Fabric.default_config;
    pipeline_config = Pipeline.default_config;
    client_timeout = None;
  }

type switch = {
  n : int;  (* total executors *)
  epw : int;
  k : int;
  window : int;
  counters : Register.t array;  (* counter for executor e lives in
                                   array (e mod window), slot (e / window) *)
  idle_mask : Register.t;  (* cell w = bitmask of idle executors in
                              window w; lets one traversal find an idle
                              executor with a single register access *)
  dest : (Addr.t * int) Table.t;
      (* executor index -> (worker node, UDP port), installed by the
         network controller as a match-action table *)
  metrics : Metrics.t;
  engine : Engine.t;
  mutable steals : int;
}

type t = {
  config : config;
  engine : Engine.t;
  fabric : Message.t Fabric.t;
  pipeline : (Message.t, pkt) Pipeline.t;
  switch : switch;
  metrics : Metrics.t;
  clients : Client.t array;
}

(* One search pass: probe [window] consecutive executors, each touching a
   distinct counter array (legal single accesses), and push the task to
   the first whose occupancy is below the JBSQ bound; if none qualifies,
   recirculate and probe the next window.  This narrow-window
   first-fit reproduces the measured behaviour of the R2P2 artifact:
   with k = 1 it is an idle-executor hunt that recirculates (and, at
   load, drops) exactly as Fig. 7 shows, while with k >= 3 it accepts
   almost immediately — near-zero recirculation — but routinely stacks
   a task behind a busy executor, the node-level blocking that pins its
   tail at the task service time from ~30-40% utilization (Fig. 8). *)
let ctz m =
  let rec go m i = if m land 1 = 1 then i else go (m lsr 1) (i + 1) in
  if m = 0 then invalid_arg "ctz 0" else go m 0

let search_step (sw : switch) ctx ~task ~client ~cursor ~round ~scanned =
  let slot = cursor / sw.window in
  let accepted = ref None in
  (* Idle-first: one access to the window's idle mask claims its lowest
     idle executor, keeping JBSQ's prefer-empty behaviour without
     re-reading every counter. *)
  let mask_old =
    Register.read_modify_write sw.idle_mask ctx slot (fun m -> m land (m - 1))
  in
  let claimed_offset = if mask_old <> 0 then Some (ctz mask_old) else None in
  (match claimed_offset with
  | Some offset ->
    let old =
      Register.read_modify_write sw.counters.(offset) ctx slot (fun c ->
          if c < sw.k then c + 1 else c)
    in
    (* The mask bit can be momentarily stale; the counter condition is
       authoritative. *)
    if old < sw.k then accepted := Some (cursor + offset)
  | None -> ());
  (* Bounded-queue fallback (k > 1): stack behind a busy executor, the
     shallowest occupancy level first — "find an executor whose queue
     size is zero ... then one, and so on" (§2.2).  Each deeper level
     costs a full recirculation sweep, and stacking at all is where
     R2P2-k>=3 trades recirculation for node-level blocking. *)
  let bound = min round (sw.k - 1) in
  if !accepted = None && sw.k > 1 then
    for offset = 0 to sw.window - 1 do
      if Some offset <> claimed_offset then begin
        let old =
          Register.read_modify_write sw.counters.(offset) ctx slot (fun c ->
              if !accepted = None && c <= bound && c < sw.k then c + 1 else c)
        in
        if !accepted = None && old <= bound && old < sw.k then
          accepted := Some (cursor + offset)
      end
    done;
  match !accepted with
  | Some e ->
    let dst, port = Table.lookup sw.dest ~key:e in
    Metrics.note_assign sw.metrics task.Task.id ~requested_at:(Engine.now sw.engine);
    [ Pipeline.Emit (dst, Message.Task_assignment { task; client; port }) ]
  | None ->
    let scanned = scanned + sw.window in
    let cursor = (cursor + sw.window) mod sw.n in
    let round, scanned =
      if scanned >= sw.n then (min (round + 1) (sw.k - 1), 0) else (round, scanned)
    in
    [ Pipeline.Recirculate (Search { task; client; cursor; round; scanned }) ]

let program (sw : switch) : (Message.t, pkt) Pipeline.program =
 fun ctx pkt ->
  match pkt with
  | Wire (Job_submission { client; uid; jid; tasks }) ->
    (match tasks with
    | [] -> [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
    | task :: rest ->
      Metrics.note_enqueue sw.metrics task.Task.id ~level:0;
      (* The scan starts at a window picked by hashing the task id, as
         the hardware hashes packet fields. *)
      let slots = sw.n / sw.window in
      let id = task.Task.id in
      let h = (id.uid * 1_000_003) + (id.jid * 8191) + id.tid in
      let h = h * 0x9E3779B97F4A7C1 in
      let h = (h lxor (h lsr 31)) land max_int in
      let start = h mod slots * sw.window in
      let continuation =
        if rest = [] then []
        else
          [ Pipeline.Recirculate
              (Wire (Job_submission { client; uid; jid; tasks = rest }));
          ]
      in
      search_step sw ctx ~task ~client ~cursor:start ~round:1 ~scanned:0
      @ continuation)
  | Search { task; client; cursor; round; scanned } ->
    search_step sw ctx ~task ~client ~cursor ~round ~scanned
  | Wire (Task_completion { info; client; _ } as completion) ->
    (* The reply passes through the switch, which decrements the
       executor's counter (re-marking it idle when it empties) and
       forwards the completion to the client. *)
    let e = (info.exec_node * sw.epw) + info.exec_port in
    let offset = e mod sw.window and slot = e / sw.window in
    let old =
      Register.read_modify_write sw.counters.(offset) ctx slot (fun c ->
          max 0 (c - 1))
    in
    if old = 1 then
      ignore
        (Register.read_modify_write sw.idle_mask ctx slot (fun m ->
             m lor (1 lsl offset)));
    [ Pipeline.Emit (client, completion) ]
  | Steal_fixup { victim; thief } -> (
    match (victim, thief) with
    | Some v, rest ->
      (* Victim lost a queued task: decrement, re-marking idle if it
         somehow emptied. *)
      let offset = v mod sw.window and slot = v / sw.window in
      let old =
        Register.read_modify_write sw.counters.(offset) ctx slot (fun c ->
            max 0 (c - 1))
      in
      if old = 1 then
        ignore
          (Register.read_modify_write sw.idle_mask ctx slot (fun m ->
               m lor (1 lsl offset)));
      if rest = None then []
      else [ Pipeline.Recirculate (Steal_fixup { victim = None; thief = rest }) ]
    | None, Some th ->
      (* Thief gained a task: increment and clear its idle bit. *)
      let offset = th mod sw.window and slot = th / sw.window in
      ignore (Register.read_modify_write sw.counters.(offset) ctx slot (fun c -> c + 1));
      ignore
        (Register.read_modify_write sw.idle_mask ctx slot (fun m ->
             m land lnot (1 lsl offset)));
      []
    | None, None -> [])
  | Wire
      ( Job_ack _ | Queue_full _ | Task_request _ | Task_assignment _
      | Noop_assignment _ | Param_fetch _ | Param_data _ ) ->
    [ Pipeline.Drop ]

let create config =
  if config.workers * config.executors_per_worker mod config.window <> 0 then
    invalid_arg "R2p2.create: window must divide the executor count";
  if config.jbsq_k < 1 then invalid_arg "R2p2.create: jbsq_k must be >= 1";
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric = Fabric.create ~config:config.fabric_config engine rng in
  let metrics = Metrics.create engine in
  let n = config.workers * config.executors_per_worker in
  let sw =
    {
      n;
      epw = config.executors_per_worker;
      k = config.jbsq_k;
      window = config.window;
      counters =
        Array.init config.window (fun i ->
            Register.create
              ~name:(Printf.sprintf "r2p2.counters%d" i)
              ~size:(n / config.window) ());
      idle_mask =
        (let mask = Register.create ~name:"r2p2.idle_mask" ~size:(n / config.window) () in
         for slot = 0 to (n / config.window) - 1 do
           Register.poke mask slot ((1 lsl config.window) - 1)
         done;
         mask);
      dest =
        (let table =
           Table.create ~name:"r2p2.dest" ~default:(Addr.Host 0, 0) ()
         in
         for e = 0 to n - 1 do
           Table.add_exact table ~key:e
             (Addr.Host (e / config.executors_per_worker), e mod config.executors_per_worker)
         done;
         table);
      metrics;
      engine;
      steals = 0;
    }
  in
  let pipeline =
    Pipeline.attach ~config:config.pipeline_config fabric
      ~wrap:(fun msg -> Wire msg)
      (program sw)
  in
  let fn_model = Fn_model.default in
  let steal_rng = Rng.split rng in
  let hop = config.fabric_config.Fabric.host_to_switch in
  (* One steal in flight per node, to keep idle executors from mounting
     a steal storm. *)
  let steal_busy = Array.make config.workers false in
  let all_execs = Array.make config.workers [||] in
  (* Work-stealing extension (§2.2.1): when an executor idles, ask a
     random peer node for its newest queued task.  The control messages
     are modeled as explicit latency (thief->victim, victim->thief data
     transfer) plus a counter fix-up packet into the switch pipeline —
     the coordination overhead the paper cites. *)
  let rec try_steal ~thief_node ~thief_port =
    if config.work_stealing && not steal_busy.(thief_node) && config.workers > 1 then begin
      steal_busy.(thief_node) <- true;
      let victim_node =
        let v = Rng.int steal_rng (config.workers - 1) in
        if v >= thief_node then v + 1 else v
      in
      ignore
        (Engine.schedule engine ~after:(2 * hop) (fun () ->
             (* At the victim: pick the most loaded executor. *)
             let best = ref None in
             Array.iter
               (fun exec ->
                 if Push_executor.occupancy exec >= 2 then
                   match !best with
                   | Some b when Push_executor.occupancy b >= Push_executor.occupancy exec
                     -> ()
                   | _ -> best := Some exec)
               all_execs.(victim_node);
             let stolen = Option.bind !best Push_executor.try_steal in
             (match stolen with
             | Some (task, client) ->
               sw.steals <- sw.steals + 1;
               let victim_exec =
                 (victim_node * config.executors_per_worker)
                 + Push_executor.port (Option.get !best)
               in
               let thief_exec =
                 (thief_node * config.executors_per_worker) + thief_port
               in
               (* Counter fix-up reaches the switch one hop later. *)
               ignore
                 (Engine.schedule engine ~after:hop (fun () ->
                      Pipeline.inject pipeline
                        (Steal_fixup
                           { victim = Some victim_exec; thief = Some thief_exec })));
               (* Task transfer back to the thief. *)
               ignore
                 (Engine.schedule engine ~after:(2 * hop) (fun () ->
                      steal_busy.(thief_node) <- false;
                      Push_executor.push all_execs.(thief_node).(thief_port) task ~client))
             | None ->
               ignore
                 (Engine.schedule engine ~after:(2 * hop) (fun () ->
                      steal_busy.(thief_node) <- false)))))
    end
  and maybe_steal_after_completion ~node ~port =
    if config.work_stealing then
      ignore
        (Engine.schedule engine ~after:1 (fun () ->
             if not (Push_executor.busy all_execs.(node).(port)) then
               try_steal ~thief_node:node ~thief_port:port))
  in
  (* JBSQ workers: push executors that reply through the switch. *)
  for node = 0 to config.workers - 1 do
    let executors =
      Array.init config.executors_per_worker (fun port ->
          let exec =
            Push_executor.create ~engine ~node ~port ~fn_model
              ~on_complete:(fun task ~client ->
                Fabric.send fabric ~src:(Addr.Host node) ~dst:Addr.Switch
                  (Message.Task_completion
                     {
                       task_id = task.id;
                       client;
                       info =
                         {
                           exec_addr = Addr.Host node;
                           exec_port = port;
                           exec_rsrc = 0;
                           exec_node = node;
                         };
                       rtrv_prio = 1;
                     });
                maybe_steal_after_completion ~node ~port)
              ()
          in
          Push_executor.set_on_task_start exec (fun task ~node ->
              Metrics.note_exec_start metrics task ~node);
          exec)
    in
    all_execs.(node) <- executors;
    Fabric.register fabric (Addr.Host node) (fun env ->
        match env.Fabric.payload with
        | Message.Task_assignment { task; client; port } ->
          if port >= 0 && port < Array.length executors then
            Push_executor.push executors.(port) task ~client
        | Message.Job_submission _ | Message.Job_ack _ | Message.Queue_full _
        | Message.Task_request _ | Message.Noop_assignment _
        | Message.Task_completion _ | Message.Param_fetch _ | Message.Param_data _ ->
          ())
  done;
  let clients =
    Array.init config.clients (fun i ->
        Client.create
          ~config:
            {
              (Client.default_config ~host:(config.workers + i) ~uid:i) with
              timeout = config.client_timeout;
            }
          ~fabric ~metrics ())
  in
  { config; engine; fabric; pipeline; switch = sw; metrics; clients }

let engine t = t.engine
let fabric t = t.fabric
let metrics t = t.metrics
let pipeline t = t.pipeline

let fail_over_switch t =
  (* Standby switch comes up with zeroed registers: every executor is
     believed idle again and any recirculating Search packet (a task
     hunting for a slot) is lost with the dead switch.  Tasks already
     pushed to executors keep running — only the switch's view resets —
     so the returned count is the believed occupancy that was lost, and
     mid-search tasks are recovered by client timeouts. *)
  let sw = t.switch in
  let slots = sw.n / sw.window in
  let believed = ref 0 in
  for offset = 0 to sw.window - 1 do
    for slot = 0 to slots - 1 do
      believed := !believed + Register.peek sw.counters.(offset) slot;
      Register.poke sw.counters.(offset) slot 0
    done
  done;
  for slot = 0 to slots - 1 do
    Register.poke sw.idle_mask slot ((1 lsl sw.window) - 1)
  done;
  Pipeline.flush_in_flight t.pipeline;
  if Trace.enabled () then
    Trace.emit ~at:(Engine.now t.engine) Trace.Pipeline
      (lazy
        (Printf.sprintf "r2p2 switch FAIL-OVER: %d believed-occupancy slot(s) reset"
           !believed));
  !believed

let client t i =
  if i < 0 || i >= Array.length t.clients then invalid_arg "R2p2.client: bad index";
  t.clients.(i)

let clients t = t.clients

let steals t = t.switch.steals

let counter t e =
  if e < 0 || e >= t.switch.n then invalid_arg "R2p2.counter: bad executor";
  Register.peek t.switch.counters.(e mod t.switch.window) (e / t.switch.window)

let run t ~until = Engine.run ~until t.engine

let outstanding t =
  Array.fold_left (fun acc c -> acc + Client.outstanding c) 0 t.clients

let run_until_drained t ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if outstanding t = 0 then true
    else if Engine.now t.engine >= deadline then false
    else begin
      Engine.run ~until:(min deadline (Engine.now t.engine + step)) t.engine;
      go ()
    end
  in
  go ()

let total_executors t = t.switch.n
