(** Server-based centralized schedulers speaking the Draconis protocol
    (paper §8: Draconis-Socket-Server and Draconis-DPDK-Server).

    One host runs the scheduler: a FIFO task queue in server memory,
    pull-model executors, piggybacked requests — the same protocol as
    the switch.  Unlike the switch, the server has ample memory, so an
    optimized implementation {e parks} idle pull requests instead of
    answering with no-ops, and matches them with tasks as work arrives.
    Every packet handled (in or out) costs the single node CPU time,
    which caps throughput (~160 ktps for POSIX sockets, ~1.1 Mtps for
    DPDK) and inflates latency as load approaches the cap — the
    single-node bottleneck of §2.3.1. *)

open Draconis_sim
open Draconis_net
open Draconis

type variant =
  | Socket  (** POSIX-socket Draconis server (paper's ~160 ktps cap) *)
  | Dpdk  (** kernel-bypass Draconis server *)
  | Firmament
      (** Firmament-style centralized scheduler: min-cost-flow placement
          amortized to a per-packet cost whose ceiling matches the
          paper's "cannot scale past 1200 executors at 5 ms tasks" *)
  | Spark_native
      (** Spark's native scheduler: millisecond-scale per-task overhead;
          the paper measured 3 s scheduling delays at 50% utilization
          with 500 us tasks *)

(** Calibrated per-packet CPU cost of a variant. *)
val per_packet_cost : variant -> Time.t

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  variant : variant;
  queue_capacity : int;  (** server memory is ample; bound for safety *)
  noop_retry : Time.t;
  fabric_config : Fabric.config;
  client_timeout : Time.t option;
}

(** Paper shape: 10x16 executors, 2 clients, DPDK variant. *)
val default_config : config

type t

val create : config -> t

(** [start t] launches the executors' pull loops. *)
val start : t -> unit

val engine : t -> Engine.t
val fabric : t -> Draconis_proto.Message.t Fabric.t
val metrics : t -> Metrics.t
val client : t -> int -> Client.t
val clients : t -> Client.t array

(** {2 Fault injection} *)

(** [fail_over_server t] models the server host dying and a cold standby
    taking over: the in-memory task queue and parked pull requests are
    lost.  Returns the number of queued tasks lost; clients recover them
    via timeouts, executors re-announce via watchdogs. *)
val fail_over_server : t -> int

(** [crash_worker t i] crashes every executor on worker [i]. *)
val crash_worker : t -> int -> unit

val restart_worker : t -> int -> unit

(** [set_node_slowdown t i f] straggler degradation (f >= 1.0). *)
val set_node_slowdown : t -> int -> float -> unit

(** Tasks currently queued at the server. *)
val queue_length : t -> int

(** Pull requests currently parked (idle executors). *)
val idle_executors : t -> int

(** Messages the server CPU has processed. *)
val packets_processed : t -> int

val run : t -> until:Time.t -> unit
val run_until_drained : t -> deadline:Time.t -> bool
val outstanding : t -> int
val total_executors : t -> int
