open Draconis_sim
open Draconis_net
open Draconis_proto
open Draconis

type variant = Socket | Dpdk | Firmament | Spark_native

let per_packet_cost = function
  | Socket -> Time.ns 1_250
  | Dpdk -> Time.ns 250
  (* ~240k decisions/s ceiling: 1200 executors of 5 ms tasks, the
     paper's reported Firmament limit. *)
  | Firmament -> Time.ns 850
  (* Millisecond-scale per-task framework overhead. *)
  | Spark_native -> Time.us 40

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  variant : variant;
  queue_capacity : int;
  noop_retry : Time.t;
  fabric_config : Fabric.config;
  client_timeout : Time.t option;
}

let default_config =
  {
    seed = 42;
    workers = 10;
    executors_per_worker = 16;
    clients = 2;
    variant = Dpdk;
    queue_capacity = 4_000_000;
    noop_retry = Time.us 4;
    fabric_config = Fabric.default_config;
    client_timeout = None;
  }

type queued = { task : Task.t; client : Addr.t }

type t = {
  config : config;
  engine : Engine.t;
  fabric : Message.t Fabric.t;
  metrics : Metrics.t;
  server_addr : Addr.t;
  cpu : Cpu.t;
  queue : queued Queue.t;
  (* Idle executors whose pull requests the server has parked; a server
     has the memory to hold requests until work arrives, so — unlike the
     switch — it never answers with a no-op.  [parked] deduplicates
     watchdog re-sends. *)
  idle : (Message.executor_info * Time.t) Queue.t;
  parked : (Addr.t * int, unit) Hashtbl.t;
  workers : Worker.t array;
  clients : Client.t array;
}

let cost t = per_packet_cost t.config.variant

(* Every outbound packet occupies the CPU like an inbound one. *)
let send_costed t ~dst msg =
  Cpu.submit t.cpu ~cost:(cost t) (fun () ->
      Fabric.send t.fabric ~src:t.server_addr ~dst msg)

let assign t (info : Message.executor_info) { task; client } ~requested_at =
  Metrics.note_assign t.metrics task.id ~requested_at;
  send_costed t ~dst:info.exec_addr
    (Message.Task_assignment { task; client; port = info.exec_port })

(* Match parked executors with queued tasks until one side runs dry. *)
let exec_key (info : Message.executor_info) = (info.exec_addr, info.exec_port)

let rec pump t =
  if not (Queue.is_empty t.queue) then begin
    match Queue.take_opt t.idle with
    | None -> ()
    | Some (info, requested_at) ->
      (* Skip entries invalidated by a duplicate park. *)
      if Hashtbl.mem t.parked (exec_key info) then begin
        Hashtbl.remove t.parked (exec_key info);
        let item = Queue.take t.queue in
        assign t info item ~requested_at
      end;
      pump t
  end

let enqueue_tasks t ~client ~uid ~jid tasks =
  let accepted, bounced =
    List.partition
      (fun _ -> Queue.length t.queue < t.config.queue_capacity)
      tasks
  in
  List.iter
    (fun (task : Task.t) ->
      Metrics.note_enqueue t.metrics task.id ~level:0;
      Queue.add { task; client } t.queue)
    accepted;
  if bounced <> [] then begin
    Metrics.note_reject t.metrics (List.length bounced);
    send_costed t ~dst:client (Message.Queue_full { uid; jid; tasks = bounced })
  end
  else send_costed t ~dst:client (Message.Job_ack { uid; jid });
  pump t

let serve_request t (info : Message.executor_info) ~requested_at =
  match Queue.take_opt t.queue with
  | None ->
    if not (Hashtbl.mem t.parked (exec_key info)) then begin
      Hashtbl.replace t.parked (exec_key info) ();
      Queue.add (info, requested_at) t.idle
    end
  | Some item -> assign t info item ~requested_at

let handle t (msg : Message.t) ~arrived_at =
  match msg with
  | Job_submission { client; uid; jid; tasks } -> enqueue_tasks t ~client ~uid ~jid tasks
  | Task_request { info; rtrv_prio = _ } -> serve_request t info ~requested_at:arrived_at
  | Task_completion { client; info; _ } ->
    send_costed t ~dst:client msg;
    serve_request t info ~requested_at:arrived_at
  | Job_ack _ | Queue_full _ | Task_assignment _ | Noop_assignment _
  | Param_fetch _ | Param_data _ ->
    ()

let create (config : config) =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric = Fabric.create ~config:config.fabric_config engine rng in
  let metrics = Metrics.create engine in
  let server_host = config.workers in
  let server_addr = Addr.Host server_host in
  let cpu = Cpu.create engine in
  let fn_model = Fn_model.default in
  let workers =
    Array.init config.workers (fun node ->
        Worker.create ~node ~executors:config.executors_per_worker ~fabric
          ~make_config:(fun ~port ->
            {
              Executor.node;
              port;
              rsrc = 0xFFFFFFFF;
              noop_retry = config.noop_retry;
              fn_model;
              scheduler = server_addr;
              (* The server parks requests and deduplicates, so a
                 watchdog re-send is safe and recovers lost packets. *)
              watchdog = Some (Time.ms 1);
            })
          ())
  in
  let clients =
    Array.init config.clients (fun i ->
        Client.create
          ~config:
            {
              (Client.default_config ~host:(server_host + 1 + i) ~uid:i) with
              timeout = config.client_timeout;
              schedulers = [| server_addr |];
            }
          ~fabric ~metrics ())
  in
  let t =
    { config; engine; fabric; metrics; server_addr; cpu; queue = Queue.create ();
      idle = Queue.create (); parked = Hashtbl.create 256; workers; clients }
  in
  Array.iter
    (fun worker ->
      Worker.set_on_task_start worker (fun task ~node ->
          Metrics.note_exec_start metrics task ~node))
    workers;
  (* Every arriving packet occupies the scheduler CPU before it is
     acted on — the single-node bottleneck of §2.3.1. *)
  Fabric.register fabric server_addr (fun env ->
      let arrived_at = Engine.now engine in
      Cpu.submit cpu ~cost:(cost t) (fun () -> handle t env.Fabric.payload ~arrived_at));
  t

let start t =
  let stagger = max 1 (Time.us 1 / max 1 t.config.executors_per_worker) in
  Array.iter (fun worker -> Worker.start worker ~stagger) t.workers

let engine t = t.engine
let fabric t = t.fabric
let metrics t = t.metrics

let fail_over_server t =
  (* The server host dies and a cold standby takes over: the in-memory
     task queue and the parked pull requests are gone.  Executors
     recover via their watchdog re-sends; lost tasks via client
     timeouts. *)
  let lost = Queue.length t.queue in
  Queue.clear t.queue;
  Queue.clear t.idle;
  Hashtbl.reset t.parked;
  if Trace.enabled () then
    Trace.emit ~at:(Engine.now t.engine) Trace.Host
      (lazy (Printf.sprintf "server FAIL-OVER: %d queued task(s) lost" lost));
  lost

let stagger t = max 1 (Time.us 1 / max 1 t.config.executors_per_worker)

let crash_worker t i =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Central_server.crash_worker: bad index";
  Worker.crash t.workers.(i)

let restart_worker t i =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Central_server.restart_worker: bad index";
  Worker.restart t.workers.(i) ~stagger:(stagger t)

let set_node_slowdown t i factor =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Central_server.set_node_slowdown: bad index";
  Worker.set_slowdown t.workers.(i) factor

let client t i =
  if i < 0 || i >= Array.length t.clients then
    invalid_arg "Central_server.client: bad index";
  t.clients.(i)

let clients t = t.clients
let queue_length t = Queue.length t.queue
let idle_executors t = Queue.length t.idle
let packets_processed t = Cpu.completed t.cpu
let run t ~until = Engine.run ~until t.engine

let outstanding t =
  Array.fold_left (fun acc c -> acc + Client.outstanding c) 0 t.clients

let run_until_drained t ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if outstanding t = 0 then true
    else if Engine.now t.engine >= deadline then false
    else begin
      Engine.run ~until:(min deadline (Engine.now t.engine + step)) t.engine;
      go ()
    end
  in
  go ()

let total_executors t = t.config.workers * t.config.executors_per_worker
