open Draconis_sim
open Draconis_net
open Draconis_p4
open Draconis_proto
open Draconis

type pkt = Wire of Message.t | Incr of { node : int }

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  samples : int;
  intra : Node_worker.intra_policy;
  dispatch_overhead : Time.t;
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  client_timeout : Time.t option;
}

let default_config =
  {
    seed = 42;
    workers = 10;
    executors_per_worker = 16;
    clients = 2;
    samples = 2;
    intra = Node_worker.Fcfs;
    dispatch_overhead = Time.us_f 3.5;
    fabric_config = Fabric.default_config;
    pipeline_config = Pipeline.default_config;
    client_timeout = None;
  }

type switch = {
  workers : int;
  samples : int;
  qlen : Register.t array;  (* one single-cell register per node *)
  metrics : Metrics.t;
  engine : Engine.t;
}

type t = {
  config : config;
  engine : Engine.t;
  fabric : Message.t Fabric.t;
  pipeline : (Message.t, pkt) Pipeline.t;
  switch : switch;
  metrics : Metrics.t;
  clients : Client.t array;
}

(* Deterministic per-task sampling hash, standing in for the switch's
   CRC-based hash of packet fields. *)
let mix x =
  let x = x * 0x9E3779B97F4A7C1 in
  let x = x lxor (x lsr 29) in
  let x = x * 0xBF58476D1CE4E5B in
  (x lxor (x lsr 32)) land max_int

(* [count] distinct nodes from a per-task hash stream. *)
let sample_nodes (id : Task.id) ~workers ~count =
  let count = min count workers in
  let chosen = Array.make count 0 in
  let h = ref (mix ((id.uid * 1_000_003) + (id.jid * 8191) + id.tid)) in
  for i = 0 to count - 1 do
    let pick = ref (!h mod workers) in
    h := mix (!h + 1);
    let taken p =
      let rec scan j = j < i && (chosen.(j) = p || scan (j + 1)) in
      scan 0
    in
    while taken !pick do
      pick := (!pick + 1) mod workers
    done;
    chosen.(i) <- !pick
  done;
  chosen

(* Power-of-k choices: the first k-1 sampled counters are plain reads;
   the last is read and conditionally incremented against their minimum
   in a single access (it wins ties).  When an earlier sample wins, its
   increment rides a one-hop recirculation — the brief staleness this
   creates mirrors the real system's update lag. *)
let schedule_task (sw : switch) ctx ~task ~client =
  let nodes = sample_nodes task.Task.id ~workers:sw.workers ~count:sw.samples in
  Metrics.note_assign sw.metrics task.Task.id ~requested_at:(Engine.now sw.engine);
  let k = Array.length nodes in
  if k = 1 then begin
    let node = nodes.(0) in
    ignore (Register.read_and_increment sw.qlen.(node) ctx 0);
    [ Pipeline.Emit (Addr.Host node, Message.Task_assignment { task; client; port = 0 }) ]
  end
  else begin
    let best = ref nodes.(0) in
    let best_len = ref (Register.read sw.qlen.(nodes.(0)) ctx 0) in
    for i = 1 to k - 2 do
      let len = Register.read sw.qlen.(nodes.(i)) ctx 0 in
      if len < !best_len then begin
        best := nodes.(i);
        best_len := len
      end
    done;
    let last = nodes.(k - 1) in
    let last_len =
      Register.read_modify_write sw.qlen.(last) ctx 0 (fun c ->
          if c <= !best_len then c + 1 else c)
    in
    if last_len <= !best_len then
      [ Pipeline.Emit (Addr.Host last, Message.Task_assignment { task; client; port = 0 }) ]
    else
      [ Pipeline.Emit (Addr.Host !best, Message.Task_assignment { task; client; port = 0 });
        Pipeline.Recirculate (Incr { node = !best });
      ]
  end

let program (sw : switch) : (Message.t, pkt) Pipeline.program =
 fun ctx pkt ->
  match pkt with
  | Wire (Job_submission { client; uid; jid; tasks }) ->
    (match tasks with
    | [] -> [ Pipeline.Emit (client, Message.Job_ack { uid; jid }) ]
    | task :: rest ->
      Metrics.note_enqueue sw.metrics task.Task.id ~level:0;
      let continuation =
        if rest = [] then []
        else
          [ Pipeline.Recirculate (Wire (Job_submission { client; uid; jid; tasks = rest })) ]
      in
      schedule_task sw ctx ~task ~client @ continuation)
  | Incr { node } ->
    ignore (Register.read_and_increment sw.qlen.(node) ctx 0);
    []
  | Wire (Task_completion { info; client; _ } as completion) ->
    ignore
      (Register.read_modify_write sw.qlen.(info.exec_node) ctx 0 (fun c -> max 0 (c - 1)));
    [ Pipeline.Emit (client, completion) ]
  | Wire
      ( Job_ack _ | Queue_full _ | Task_request _ | Task_assignment _
      | Noop_assignment _ | Param_fetch _ | Param_data _ ) ->
    [ Pipeline.Drop ]

let create (config : config) =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric = Fabric.create ~config:config.fabric_config engine rng in
  let metrics = Metrics.create engine in
  let sw =
    {
      workers = config.workers;
      samples = max 1 config.samples;
      qlen =
        Array.init config.workers (fun i ->
            Register.create ~name:(Printf.sprintf "racksched.qlen%d" i) ~size:1 ());
      metrics;
      engine;
    }
  in
  let pipeline =
    Pipeline.attach ~config:config.pipeline_config fabric
      ~wrap:(fun msg -> Wire msg)
      (program sw)
  in
  let fn_model = Fn_model.default in
  for node = 0 to config.workers - 1 do
    let worker =
      Node_worker.create ~engine ~node ~executors:config.executors_per_worker
        ~fn_model ~dispatch_overhead:config.dispatch_overhead
        ~dispatch_jitter:(Time.us 4) ~rng:(Rng.split rng) ~intra:config.intra
        ~on_complete:(fun task ~client ->
          Fabric.send fabric ~src:(Addr.Host node) ~dst:Addr.Switch
            (Message.Task_completion
               {
                 task_id = task.id;
                 client;
                 info =
                   {
                     exec_addr = Addr.Host node;
                     exec_port = 0;
                     exec_rsrc = 0;
                     exec_node = node;
                   };
                 rtrv_prio = 1;
               }))
        ()
    in
    Node_worker.set_on_task_start worker (fun task ~node ->
        Metrics.note_exec_start metrics task ~node);
    Fabric.register fabric (Addr.Host node) (fun env ->
        match env.Fabric.payload with
        | Message.Task_assignment { task; client; port = _ } ->
          Node_worker.deliver worker task ~client
        | Message.Job_submission _ | Message.Job_ack _ | Message.Queue_full _
        | Message.Task_request _ | Message.Noop_assignment _
        | Message.Task_completion _ | Message.Param_fetch _ | Message.Param_data _ ->
          ())
  done;
  let clients =
    Array.init config.clients (fun i ->
        Client.create
          ~config:
            {
              (Client.default_config ~host:(config.workers + i) ~uid:i) with
              timeout = config.client_timeout;
            }
          ~fabric ~metrics ())
  in
  { config; engine; fabric; pipeline; switch = sw; metrics; clients }

let engine t = t.engine
let fabric t = t.fabric
let metrics t = t.metrics
let pipeline t = t.pipeline

let fail_over_switch t =
  (* Standby switch starts with zeroed queue-length counters and no
     in-flight packets.  RackSched queues tasks at the nodes, not the
     switch, so no queued work is lost — but the counters now under-read
     until completions re-balance them. *)
  Array.iter (fun reg -> Register.poke reg 0 0) t.switch.qlen;
  Pipeline.flush_in_flight t.pipeline;
  if Trace.enabled () then
    Trace.emit ~at:(Engine.now t.engine) Trace.Pipeline
      (lazy "racksched switch FAIL-OVER: qlen counters reset");
  0

let client t i =
  if i < 0 || i >= Array.length t.clients then invalid_arg "Racksched.client: bad index";
  t.clients.(i)

let clients t = t.clients

let queue_length t node =
  if node < 0 || node >= t.switch.workers then
    invalid_arg "Racksched.queue_length: bad node";
  Register.peek t.switch.qlen.(node) 0

let run t ~until = Engine.run ~until t.engine

let outstanding t =
  Array.fold_left (fun acc c -> acc + Client.outstanding c) 0 t.clients

let run_until_drained t ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if outstanding t = 0 then true
    else if Engine.now t.engine >= deadline then false
    else begin
      Engine.run ~until:(min deadline (Engine.now t.engine + step)) t.engine;
      go ()
    end
  in
  go ()

let total_executors t = t.config.workers * t.config.executors_per_worker
