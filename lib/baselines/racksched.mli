(** RackSched baseline: power-of-two-choices inter-node scheduling on
    the switch plus an intra-node cFCFS scheduler (paper §2.2, §8).

    The switch tracks one queue-length counter per worker node.  For
    each arriving task it samples two nodes by hashing the task id,
    compares their counters, and pushes the task to the shorter queue;
    sampling avoids recirculation storms but picks a sub-optimal node
    under load (the counter it compares may not be the cluster minimum),
    which is where RackSched's high-load tail inflation comes from.

    Each counter is a separate register so a packet may legally read one
    and conditionally increment the other; when the {e first} sample
    wins, its increment rides a one-hop recirculation (the brief
    staleness this creates mirrors the real system's update lag).

    Worker nodes run {!Node_worker}: a node-level queue feeding
    executors through a dispatcher that costs 3–4 us per task. *)

open Draconis_sim
open Draconis_net
open Draconis_p4
open Draconis_proto
open Draconis

type pkt =
  | Wire of Message.t
  | Incr of { node : int }  (** deferred increment of a sampled counter *)

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  samples : int;  (** power-of-k sampling width (2 in the paper; 1 =
                      random placement, [workers] = exact JSQ) *)
  intra : Node_worker.intra_policy;
      (** intra-node policy: cFCFS for light-tailed workloads, processor
          sharing for heavy-tailed ones (paper §2.2) *)
  dispatch_overhead : Time.t;  (** intra-node scheduler cost per task *)
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  client_timeout : Time.t option;
}

(** Paper shape: 10x16 executors, 2 clients, 3.5 us intra-node cost. *)
val default_config : config

type t

val create : config -> t

val engine : t -> Engine.t
val fabric : t -> Message.t Fabric.t
val metrics : t -> Metrics.t
val pipeline : t -> (Message.t, pkt) Pipeline.t
val client : t -> int -> Client.t
val clients : t -> Client.t array

(** [fail_over_switch t] models the switch dying and a standby with
    zeroed queue-length counters taking over; in-flight packets are
    lost.  RackSched queues tasks at the nodes, so no queued work is
    lost (returns 0), but the counters under-read until completions
    re-balance them. *)
val fail_over_switch : t -> int

(** Queue-length counter of a node (control-plane view). *)
val queue_length : t -> int -> int

val run : t -> until:Time.t -> unit
val run_until_drained : t -> deadline:Time.t -> bool
val outstanding : t -> int
val total_executors : t -> int
