type t = {
  id : int;
  name : string;
  cell_bits : int;
  cells : int array;
  mutable accesses : int;
}

(* Atomic: registers are created from whichever domain builds the
   cluster, and ids must stay globally unique for access tracking. *)
let next_id = Atomic.make 0

let create ~name ~size ?(cell_bits = 32) () =
  if size <= 0 then invalid_arg "Register.create: size must be positive";
  (* Tofino stateful ALUs address 8/16/32-bit cells or a paired 64-bit
     lane (two 32-bit words read/written as one access). *)
  if cell_bits <> 8 && cell_bits <> 16 && cell_bits <> 32 && cell_bits <> 64 then
    invalid_arg "Register.create: cell_bits must be 8, 16, 32 or 64";
  {
    id = 1 + Atomic.fetch_and_add next_id 1;
    name;
    cell_bits;
    cells = Array.make size 0;
    accesses = 0;
  }

let name t = t.name
let size t = Array.length t.cells
let cell_bits t = t.cell_bits
let bits t = t.cell_bits * Array.length t.cells

let check_bounds t i =
  if i < 0 || i >= Array.length t.cells then
    invalid_arg (Printf.sprintf "Register %s: index %d out of bounds [0,%d)"
                   t.name i (Array.length t.cells))

let access t ctx =
  Packet_ctx.mark_access ctx ~reg_id:t.id ~reg_name:t.name;
  t.accesses <- t.accesses + 1

let read t ctx i =
  check_bounds t i;
  access t ctx;
  t.cells.(i)

let write t ctx i v =
  check_bounds t i;
  access t ctx;
  t.cells.(i) <- v

let read_modify_write t ctx i f =
  check_bounds t i;
  access t ctx;
  let old = t.cells.(i) in
  t.cells.(i) <- f old;
  old

let read_and_increment t ctx i = read_modify_write t ctx i (fun v -> v + 1)

let peek t i =
  check_bounds t i;
  t.cells.(i)

let poke t i v =
  check_bounds t i;
  t.cells.(i) <- v

let access_count t = t.accesses
