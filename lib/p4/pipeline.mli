(** Switch pipeline: serial packet admission, program execution,
    bounded recirculation.

    The pipeline is parameterized over two packet types: ['wire] is what
    travels the fabric (the protocol messages hosts exchange), ['pkt] is
    the pipeline's internal view, which additionally includes the packet
    kinds a program fabricates and recirculates (repair packets, swap
    packets, ...).  [wrap] injects an arriving wire message into the
    internal type; internal packets never leave the switch except as
    emitted wire messages.

    Packets are admitted one at a time (a hardware pipeline starts one
    packet per clock; the per-packet admission slot models the inverse
    packet rate).  Each traversal runs the installed program under a
    fresh {!Packet_ctx.t} and produces outputs: emit to an endpoint,
    recirculate, or drop.

    Recirculation re-submits a packet from egress to ingress as a new
    packet (paper §4.3).  The recirculation port has far less bandwidth
    than the front-panel ports (paper §8.3); it is modeled as a
    fixed-rate server with a bounded queue, and overflow {e drops} the
    packet — exactly the mechanism behind R2P2-1's task losses. *)

open Draconis_sim
open Draconis_net

type ('wire, 'pkt) output =
  | Emit of Addr.t * 'wire  (** send out a front-panel port *)
  | Recirculate of 'pkt  (** loop back to ingress as a new packet *)
  | Drop  (** drop silently *)

(** A switch program maps one traversal to its outputs. *)
type ('wire, 'pkt) program = Packet_ctx.t -> 'pkt -> ('wire, 'pkt) output list

type config = {
  pipeline_latency : Time.t;  (** ingress-to-egress traversal time *)
  packet_slot : Time.t;  (** serial admission interval (1 / packet rate) *)
  recirc_latency : Time.t;  (** extra egress-to-ingress loop time *)
  recirc_slot : Time.t;  (** recirculation service interval (1 / recirc pps) *)
  recirc_queue_limit : int;  (** recirc packets queued before drops begin *)
}

(** Calibrated to a Tofino-class switch: 400 ns traversal, ~1 ns
    admission slot, 600 ns recirculation hop at 1/100 of line rate with
    a 64-packet loop queue. *)
val default_config : config

type ('wire, 'pkt) t

(** [attach ?config ?on_ingress fabric ~wrap program] builds the
    pipeline and registers it as the fabric handler for
    {!Addr.Switch}.  [on_ingress] observes every wire message the
    moment it is delivered at the switch, before admission — the only
    point where fabric transit can be split from pipeline time (used
    for phase attribution).  The program may be swapped later with
    {!set_program} (used when one experiment compares switch
    programs). *)
val attach :
  ?config:config ->
  ?on_ingress:('wire -> unit) ->
  'wire Fabric.t ->
  wrap:('wire -> 'pkt) ->
  ('wire, 'pkt) program ->
  ('wire, 'pkt) t

val set_program : ('wire, 'pkt) t -> ('wire, 'pkt) program -> unit

(** [flush_in_flight t] drops every packet currently inside the
    pipeline or waiting in the recirculation loop (they are counted as
    {!flushed} when their scheduled traversal fires) and resets the
    admission/recirculation ports to idle — what a fail-over standby
    sees: none of the dead switch's in-flight state. *)
val flush_in_flight : ('wire, 'pkt) t -> unit

(** [inject t pkt] submits a packet at ingress directly (bypassing the
    fabric); used by unit tests. *)
val inject : ('wire, 'pkt) t -> 'pkt -> unit

(** Counters. *)
val processed : ('wire, 'pkt) t -> int

val recirculated : ('wire, 'pkt) t -> int
val recirc_dropped : ('wire, 'pkt) t -> int

(** Packets discarded by {!flush_in_flight} fail-overs. *)
val flushed : ('wire, 'pkt) t -> int

val emitted : ('wire, 'pkt) t -> int

(** [recirculation_fraction t] is recirculated over total traversals —
    the paper's Fig. 7 metric. *)
val recirculation_fraction : ('wire, 'pkt) t -> float
