exception Access_violation of string

(* A traversal touches at most a few dozen registers; a flat array with
   linear scan beats a hash table on this hot path. *)
type t = { id : int; mutable accessed : int array; mutable count : int }

(* Atomic: packet contexts are allocated by simulations that may run in
   parallel worker domains (see Draconis_harness.Pool). *)
let counter = Atomic.make 0

let create () =
  { id = 1 + Atomic.fetch_and_add counter 1; accessed = Array.make 16 0; count = 0 }

let id t = t.id

let mem t reg_id =
  let rec scan i = i < t.count && (t.accessed.(i) = reg_id || scan (i + 1)) in
  scan 0

let mark_access t ~reg_id ~reg_name =
  if mem t reg_id then raise (Access_violation reg_name);
  if t.count >= Array.length t.accessed then begin
    let bigger = Array.make (2 * Array.length t.accessed) 0 in
    Array.blit t.accessed 0 bigger 0 t.count;
    t.accessed <- bigger
  end;
  t.accessed.(t.count) <- reg_id;
  t.count <- t.count + 1

let accessed t ~reg_id = mem t reg_id
let access_count t = t.count
