open Draconis_sim
open Draconis_net
module Obs = Draconis_obs

type ('wire, 'pkt) output = Emit of Addr.t * 'wire | Recirculate of 'pkt | Drop
type ('wire, 'pkt) program = Packet_ctx.t -> 'pkt -> ('wire, 'pkt) output list

type config = {
  pipeline_latency : Time.t;
  packet_slot : Time.t;
  recirc_latency : Time.t;
  recirc_slot : Time.t;
  recirc_queue_limit : int;
}

let default_config =
  {
    pipeline_latency = Time.ns 400;
    packet_slot = Time.ns 1;
    recirc_latency = Time.ns 600;
    recirc_slot = Time.ns 100;
    recirc_queue_limit = 64;
  }

type ('wire, 'pkt) t = {
  engine : Engine.t;
  fabric : 'wire Fabric.t;
  config : config;
  mutable program : ('wire, 'pkt) program;
  mutable ingress_free_at : Time.t;
  mutable recirc_free_at : Time.t;
  (* Bumped by [flush_in_flight]; packets scheduled under an older epoch
     vanish when their closure fires (a fail-over standby never sees the
     dead switch's in-flight or recirculating packets). *)
  mutable epoch : int;
  mutable processed : int;
  mutable recirculated : int;
  mutable recirc_dropped : int;
  mutable flushed : int;
  mutable emitted : int;
}

let rec admit ?int_ t pkt =
  let now = Engine.now t.engine in
  let start = max now t.ingress_free_at in
  t.ingress_free_at <- start + t.config.packet_slot;
  let exit_time = start + t.config.pipeline_latency in
  let epoch = t.epoch in
  ignore
    (Engine.schedule_at t.engine ~at:exit_time (fun () ->
         if epoch = t.epoch then traverse ?int_ t pkt
         else begin
           Option.iter Obs.Int_telemetry.drop_stack int_;
           t.flushed <- t.flushed + 1;
           Obs.Recorder.count "pipeline.flushed" 1
         end))

and traverse ?int_ t pkt =
  t.processed <- t.processed + 1;
  Obs.Recorder.count "pipeline.processed" 1;
  (* Arm the per-traversal stamp builder so the program's queue/bank
     accesses can contribute the values they already hold; the committed
     stamp rides whichever outputs continue the packet's chain. *)
  let stamping = int_ <> None && Obs.Int_telemetry.enabled () in
  if stamping then Obs.Int_telemetry.begin_traversal ();
  let ctx = Packet_ctx.create () in
  let outputs = t.program ctx pkt in
  let int_ =
    if stamping then
      Option.map (Obs.Int_telemetry.commit_traversal ~at:(Engine.now t.engine)) int_
    else int_
  in
  let has_recirc =
    List.exists (function Recirculate _ -> true | Emit _ | Drop -> false) outputs
  in
  let emits =
    List.fold_left
      (fun n -> function Emit _ -> n + 1 | Recirculate _ | Drop -> n)
      0 outputs
  in
  (* The stamp stack follows the chain: recirculated packets inherit it;
     otherwise the traversal is terminal and the stack leaves on the last
     emitted message (or drains at the switch when nothing is emitted,
     e.g. a repair application). *)
  (if (not has_recirc) && emits = 0 then Option.iter Obs.Int_telemetry.deliver_stack int_);
  let seen_emits = ref 0 in
  List.iter
    (fun output ->
      match output with
      | Drop -> ()
      | Emit (dst, wire) ->
        incr seen_emits;
        t.emitted <- t.emitted + 1;
        let int_ = if (not has_recirc) && !seen_emits = emits then int_ else None in
        Fabric.send t.fabric ?int_ ~src:Addr.Switch ~dst wire
      | Recirculate out_pkt -> recirculate ?int_ t out_pkt)
    outputs

and recirculate ?int_ t pkt =
  (* The loop-back port serves at [recirc_slot] intervals with a bounded
     queue; overflow means the switch cannot recirculate and drops. *)
  let now = Engine.now t.engine in
  let backlog =
    if t.recirc_free_at <= now then 0
    else (t.recirc_free_at - now) / max 1 t.config.recirc_slot
  in
  if backlog >= t.config.recirc_queue_limit then begin
    if Trace.enabled () then
      Trace.emit ~at:now Trace.Pipeline
        (lazy (Printf.sprintf "recirculation DROP (backlog %d)" backlog));
    Option.iter Obs.Int_telemetry.drop_stack int_;
    t.recirc_dropped <- t.recirc_dropped + 1;
    Obs.Recorder.count "pipeline.recirc_dropped" 1;
    if Obs.Recorder.active () then
      Obs.Recorder.mark ~at:now ~track:"pipeline" "recirc drop"
  end
  else begin
    t.recirculated <- t.recirculated + 1;
    Obs.Recorder.count "pipeline.recirculated" 1;
    let start = max now t.recirc_free_at in
    t.recirc_free_at <- start + t.config.recirc_slot;
    let reentry = start + t.config.recirc_latency in
    let epoch = t.epoch in
    ignore
      (Engine.schedule_at t.engine ~at:reentry (fun () ->
           if epoch = t.epoch then admit ?int_ t pkt
           else begin
             Option.iter Obs.Int_telemetry.drop_stack int_;
             t.flushed <- t.flushed + 1;
             Obs.Recorder.count "pipeline.flushed" 1
           end))
  end

let attach ?(config = default_config) ?on_ingress fabric ~wrap program =
  let t =
    {
      engine = Fabric.engine fabric;
      fabric;
      config;
      program;
      ingress_free_at = 0;
      recirc_free_at = 0;
      epoch = 0;
      processed = 0;
      recirculated = 0;
      recirc_dropped = 0;
      flushed = 0;
      emitted = 0;
    }
  in
  Fabric.register fabric Addr.Switch (fun env ->
      (match on_ingress with
      | None -> ()
      | Some f -> f env.Fabric.payload);
      let int_ =
        if Obs.Int_telemetry.enabled () then
          Some (Obs.Int_telemetry.ingress_stack ~sent_at:env.Fabric.sent_at)
        else None
      in
      admit ?int_ t (wrap env.Fabric.payload));
  t

let set_program t program = t.program <- program

let flush_in_flight t =
  let now = Engine.now t.engine in
  if Trace.enabled () then
    Trace.emit ~at:now Trace.Pipeline (lazy "pipeline flushed (fail-over)");
  if Obs.Recorder.active () then
    Obs.Recorder.mark ~at:now ~track:"pipeline" "flush (fail-over)";
  t.epoch <- t.epoch + 1;
  (* The standby's ports start idle. *)
  t.ingress_free_at <- now;
  t.recirc_free_at <- now

let inject t pkt =
  let int_ =
    if Obs.Int_telemetry.enabled () then
      Some (Obs.Int_telemetry.ingress_stack ~sent_at:(Engine.now t.engine))
    else None
  in
  admit ?int_ t pkt
let processed t = t.processed
let recirculated t = t.recirculated
let recirc_dropped t = t.recirc_dropped
let flushed t = t.flushed
let emitted t = t.emitted

let recirculation_fraction t =
  if t.processed = 0 then 0.0
  else float_of_int t.recirculated /. float_of_int t.processed
