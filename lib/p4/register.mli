(** Switch register arrays with the one-access-per-packet rule enforced.

    A register array is a stage-local memory of 32-bit words.  Each
    traversal (identified by its {!Packet_ctx.t}) may perform exactly
    one operation on a given array: a read, a write, or one atomic
    read-modify-write (e.g. [read_and_increment]).  A second operation
    raises {!Packet_ctx.Access_violation}.

    This is the constraint that makes naive queues impossible on real
    switches (check-then-increment needs two accesses) and that
    Draconis' delayed-pointer-correction design exists to satisfy. *)

type t

(** [create ~name ~size ()] is a zero-initialised array of [size]
    cells, 32 bits wide by default.  [cell_bits] may be 8, 16, 32 or
    64: the Tofino stateful ALU addresses sub-word cells or a paired
    64-bit lane (two 32-bit words moved in one access) — the PIFO rank
    store uses the pair to keep (rank, tie-break) in one cell.  [name]
    appears in violation messages and resource accounting. *)
val create : name:string -> size:int -> ?cell_bits:int -> unit -> t

val name : t -> string
val size : t -> int

(** Width of one cell in bits (8, 16, 32 or 64). *)
val cell_bits : t -> int

(** Storage the array consumes, in bits (cells x cell width). *)
val bits : t -> int

(** [read t ctx i] reads cell [i] (single access). *)
val read : t -> Packet_ctx.t -> int -> int

(** [write t ctx i v] writes cell [i] (single access). *)
val write : t -> Packet_ctx.t -> int -> int -> unit

(** [read_and_increment t ctx i] atomically returns the old value of
    cell [i] and increments it — the primitive Draconis builds its
    queue pointers on (paper §4.2). *)
val read_and_increment : t -> Packet_ctx.t -> int -> int

(** [read_modify_write t ctx i f] atomically returns the old value and
    stores [f old].  Models a stateful ALU operation. *)
val read_modify_write : t -> Packet_ctx.t -> int -> (int -> int) -> int

(** [peek t i] reads without a context — control-plane access, not
    usable from the data path (tests and invariant checks only). *)
val peek : t -> int -> int

(** [poke t i v] control-plane write (initialisation from the switch
    CPU, as a real deployment would do via the driver). *)
val poke : t -> int -> int -> unit

(** Number of data-path operations performed over the array's lifetime. *)
val access_count : t -> int
