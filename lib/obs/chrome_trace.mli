(** Chrome trace-event exporter.

    Renders a list of run {!Recorder}s as Chrome trace-event JSON
    (object form, [traceEvents] array), loadable in Perfetto or
    [chrome://tracing].  Each recorder becomes one process (pid = list
    index, process name = run label); each track becomes a numbered
    thread with a [thread_name] metadata record.  Span begin/end map to
    phases B/E, instants to [i], counters to [C] with a [value]
    argument.  Timestamps convert from simulated nanoseconds to the
    format's microseconds with three decimals, losslessly. *)

(** JSON string-body escaping, shared with {!Dump}. *)
val escape : string -> string

val to_buffer : Buffer.t -> Recorder.t list -> unit
val to_string : Recorder.t list -> string
val write : path:string -> Recorder.t list -> unit
