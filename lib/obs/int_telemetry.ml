open Draconis_sim
open Draconis_stats

(* -- stamp format ---------------------------------------------------------- *)

type stage =
  | Ingress
  | Submission
  | Request
  | Completion
  | Swap
  | Resubmit
  | Repair_add
  | Repair_retrieve
  | Prio_scan
  | Pifo_probe
  | Pifo_scan
  | Pifo_claim
  | Forward

let stage_to_string = function
  | Ingress -> "ingress"
  | Submission -> "submission"
  | Request -> "request"
  | Completion -> "completion"
  | Swap -> "swap"
  | Resubmit -> "resubmit"
  | Repair_add -> "repair-add"
  | Repair_retrieve -> "repair-retrieve"
  | Prio_scan -> "prio-scan"
  | Pifo_probe -> "pifo-probe"
  | Pifo_scan -> "pifo-scan"
  | Pifo_claim -> "pifo-claim"
  | Forward -> "forward"

let stage_of_string = function
  | "ingress" -> Ingress
  | "submission" -> Submission
  | "request" -> Request
  | "completion" -> Completion
  | "swap" -> Swap
  | "resubmit" -> Resubmit
  | "repair-add" -> Repair_add
  | "repair-retrieve" -> Repair_retrieve
  | "prio-scan" -> Prio_scan
  | "pifo-probe" -> Pifo_probe
  | "pifo-scan" -> Pifo_scan
  | "pifo-claim" -> Pifo_claim
  | "forward" -> Forward
  | s -> invalid_arg (Printf.sprintf "Int_telemetry.stage_of_string: unknown stage %S" s)

type probe_outcome = No_probe | Probe_hit | Probe_miss | Claim_won | Claim_lost

let probe_outcome_to_string = function
  | No_probe -> "none"
  | Probe_hit -> "probe-hit"
  | Probe_miss -> "probe-miss"
  | Claim_won -> "claim-won"
  | Claim_lost -> "claim-lost"

type stamp = {
  stage : stage;
  at : Time.t;
  hop : int;
  level : int;
  occupancy : int;
  bank : int;
  probe : probe_outcome;
}

(* Newest-first so appending a hop shares the tail: when a traversal fans
   out (repair recirculation plus an acknowledgement), both continuations
   extend the same immutable prefix without copying. *)
type stack = { stamps : stamp list; depth : int; hops : int; lost : int }

let stack_depth s = s.depth
let stack_lost s = s.lost
let stack_stamps s = List.rev s.stamps

(* -- configuration --------------------------------------------------------- *)

let default_budget = 4
let max_budget = 64
let enabled_flag = ref false
let budget_ref = ref default_budget

let enabled () = !enabled_flag
let budget () = !budget_ref

let set_budget n =
  if n < 1 || n > max_budget then
    invalid_arg
      (Printf.sprintf "Int_telemetry.set_budget: header budget must be in 1..%d, got %d"
         max_budget n)
  else budget_ref := n

let enable ?budget () =
  Option.iter set_budget budget;
  enabled_flag := true

let disable () = enabled_flag := false

(* DRACONIS_INT value grammar: "0" disables, "N" (1..max_budget) enables
   with header budget N.  Malformed values abort rather than silently
   defaulting, matching DRACONIS_JOBS / DRACONIS_SHARDS. *)
let configure_of_string raw =
  match int_of_string_opt (String.trim raw) with
  | Some 0 -> disable ()
  | Some n when n >= 1 && n <= max_budget -> enable ~budget:n ()
  | Some _ | None ->
    invalid_arg
      (Printf.sprintf
         "DRACONIS_INT: expected 0 (disabled) or a header budget in 1..%d, got %S"
         max_budget raw)

let apply_env () =
  match Sys.getenv_opt "DRACONIS_INT" with
  | None -> ()
  | Some raw -> configure_of_string raw

(* -- per-traversal stamp builder ------------------------------------------- *)

(* One mutable builder per domain, armed by the pipeline around each
   program invocation.  Stamping sites (switch program dispatch, circular
   queue pointer stages, PIFO bank probes) contribute fields they already
   hold in hand — never by issuing an extra register access — and the
   pipeline folds the assembled stamp onto the packet's stack at commit.
   Every note is a field write guarded by [armed]; with telemetry
   disabled no site reaches here (call sites gate on [enabled]). *)
type builder = {
  mutable armed : bool;
  mutable b_stage : stage;
  mutable b_level : int;
  mutable b_occupancy : int;
  mutable b_bank : int;
  mutable b_probe : probe_outcome;
}

let builder_key : builder Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { armed = false; b_stage = Forward; b_level = -1; b_occupancy = -1; b_bank = -1;
        b_probe = No_probe })

let begin_traversal () =
  let b = Domain.DLS.get builder_key in
  b.armed <- true;
  b.b_stage <- Forward;
  b.b_level <- -1;
  b.b_occupancy <- -1;
  b.b_bank <- -1;
  b.b_probe <- No_probe

let note_stage s =
  let b = Domain.DLS.get builder_key in
  if b.armed then b.b_stage <- s

let note_level l =
  let b = Domain.DLS.get builder_key in
  if b.armed then b.b_level <- l

let note_occupancy o =
  let b = Domain.DLS.get builder_key in
  if b.armed then b.b_occupancy <- o

let note_bank k =
  let b = Domain.DLS.get builder_key in
  if b.armed then b.b_bank <- k

let note_probe p =
  let b = Domain.DLS.get builder_key in
  if b.armed then b.b_probe <- p

let noted_occupancy () =
  let b = Domain.DLS.get builder_key in
  if b.armed && b.b_occupancy >= 0 then Some b.b_occupancy else None

let ingress_stack ~sent_at =
  {
    stamps =
      [ { stage = Ingress; at = sent_at; hop = 0; level = -1; occupancy = -1; bank = -1;
          probe = No_probe } ];
    depth = 1;
    hops = 0;
    lost = 0;
  }

let commit_traversal ~at stack =
  let b = Domain.DLS.get builder_key in
  b.armed <- false;
  if stack.depth >= !budget_ref then
    { stack with hops = stack.hops + 1; lost = stack.lost + 1 }
  else
    {
      stamps =
        { stage = b.b_stage; at; hop = stack.hops; level = b.b_level;
          occupancy = b.b_occupancy; bank = b.b_bank; probe = b.b_probe }
        :: stack.stamps;
      depth = stack.depth + 1;
      hops = stack.hops + 1;
      lost = stack.lost;
    }

(* -- host-side collector --------------------------------------------------- *)

module Collector = struct
  let default_window = Time.us 100
  let depth_max = 1 lsl 20

  type bucket = { mutable b_count : int; mutable b_max : int; b_hist : Histogram.t }

  type queue_series = {
    buckets : (int, bucket) Hashtbl.t;
    overall : Histogram.t;
    mutable q_samples : int;
    mutable q_max : int;
  }

  type bank_stats = {
    mutable bk_stamps : int;
    mutable probe_hit : int;
    mutable probe_miss : int;
    mutable claim_won : int;
    mutable claim_lost : int;
  }

  type stage_stats = { mutable s_count : int; s_lat : Histogram.t }

  type t = {
    window : Time.t;
    queues : (int, queue_series) Hashtbl.t;
    banks : (int, bank_stats) Hashtbl.t;
    stages : (stage, stage_stats) Hashtbl.t;
    chains : (string, int ref) Hashtbl.t;
    mutable stacks : int;
    mutable dropped_stacks : int;
    mutable stamps : int;
    mutable lost : int;
  }

  let create ?(window = default_window) () =
    if window <= 0 then invalid_arg "Int_telemetry.Collector.create: window must be positive";
    {
      window;
      queues = Hashtbl.create 8;
      banks = Hashtbl.create 16;
      stages = Hashtbl.create 16;
      chains = Hashtbl.create 32;
      stacks = 0;
      dropped_stacks = 0;
      stamps = 0;
      lost = 0;
    }

  let queue_of t level =
    match Hashtbl.find_opt t.queues level with
    | Some q -> q
    | None ->
      let q =
        { buckets = Hashtbl.create 32;
          overall = Histogram.create ~max_value:depth_max ();
          q_samples = 0; q_max = 0 }
      in
      Hashtbl.replace t.queues level q;
      q

  let bank_of t bank =
    match Hashtbl.find_opt t.banks bank with
    | Some b -> b
    | None ->
      let b = { bk_stamps = 0; probe_hit = 0; probe_miss = 0; claim_won = 0; claim_lost = 0 } in
      Hashtbl.replace t.banks bank b;
      b

  let stage_of t stage =
    match Hashtbl.find_opt t.stages stage with
    | Some s -> s
    | None ->
      let s = { s_count = 0; s_lat = Histogram.create ~max_value:(Time.ms 100) () } in
      Hashtbl.replace t.stages stage s;
      s

  let record_depth t ~level ~at occupancy =
    let q = queue_of t level in
    let idx = at / t.window in
    let b =
      match Hashtbl.find_opt q.buckets idx with
      | Some b -> b
      | None ->
        let b = { b_count = 0; b_max = 0; b_hist = Histogram.create ~max_value:depth_max () } in
        Hashtbl.replace q.buckets idx b;
        b
    in
    b.b_count <- b.b_count + 1;
    if occupancy > b.b_max then b.b_max <- occupancy;
    Histogram.record b.b_hist occupancy;
    Histogram.record q.overall occupancy;
    q.q_samples <- q.q_samples + 1;
    if occupancy > q.q_max then q.q_max <- occupancy

  let deliver t (s : stack) =
    t.stacks <- t.stacks + 1;
    t.lost <- t.lost + s.lost;
    t.stamps <- t.stamps + s.depth;
    let ordered = List.rev s.stamps in
    let prev = ref None in
    List.iter
      (fun stamp ->
        let s = stage_of t stamp.stage in
        s.s_count <- s.s_count + 1;
        (match !prev with
        | Some at when stamp.at >= at -> Histogram.record s.s_lat (stamp.at - at)
        | Some _ | None -> ());
        prev := Some stamp.at;
        if stamp.occupancy >= 0 then
          record_depth t ~level:stamp.level ~at:stamp.at stamp.occupancy;
        if stamp.bank >= 0 then begin
          let b = bank_of t stamp.bank in
          b.bk_stamps <- b.bk_stamps + 1;
          match stamp.probe with
          | No_probe -> ()
          | Probe_hit -> b.probe_hit <- b.probe_hit + 1
          | Probe_miss -> b.probe_miss <- b.probe_miss + 1
          | Claim_won -> b.claim_won <- b.claim_won + 1
          | Claim_lost -> b.claim_lost <- b.claim_lost + 1
        end)
      ordered;
    let chain = String.concat ">" (List.map (fun s -> stage_to_string s.stage) ordered) in
    (match Hashtbl.find_opt t.chains chain with
    | Some r -> incr r
    | None -> Hashtbl.replace t.chains chain (ref 1))

  let drop t (s : stack) =
    t.dropped_stacks <- t.dropped_stacks + 1;
    t.lost <- t.lost + s.lost

  let stacks t = t.stacks
  let dropped_stacks t = t.dropped_stacks
  let stamps t = t.stamps
  let lost t = t.lost

  let depth_percentile t ~level p =
    match Hashtbl.find_opt t.queues level with
    | Some q when q.q_samples > 0 -> Some (Histogram.percentile q.overall p)
    | Some _ | None -> None

  let chains t =
    Hashtbl.fold (fun chain r acc -> (chain, !r) :: acc) t.chains []
    |> List.sort (fun (ca, na) (cb, nb) ->
           match compare nb na with 0 -> String.compare ca cb | c -> c)

  let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  (* One counter sample per (queue, window bucket): the bucket's p99
     depth, timestamped at the bucket start so Chrome renders the series
     as a stepped counter track. *)
  let emit_series t f =
    List.iter
      (fun level ->
        let q = Hashtbl.find t.queues level in
        let name =
          if level >= 0 then Printf.sprintf "int.depth.q%d" level else "int.depth.pifo"
        in
        List.iter
          (fun idx ->
            let b = Hashtbl.find q.buckets idx in
            if b.b_count > 0 then
              f ~at:(idx * t.window) ~name (Histogram.percentile b.b_hist 99.0))
          (sorted_keys q.buckets))
      (sorted_keys t.queues)

  let hist_json h =
    if Histogram.count h = 0 then "{\"count\":0}"
    else
      Printf.sprintf "{\"count\":%d,\"p50\":%d,\"p99\":%d,\"max\":%d}" (Histogram.count h)
        (Histogram.percentile h 50.0)
        (Histogram.percentile h 99.0)
        (Histogram.max_recorded h)

  (* The [int] section of the draconis-obs/3 dump.  Per-queue [samples]
     and [max] are redundant with the bucketed series on purpose:
     [draconis-trace int] re-derives them offline and fails loudly on a
     mismatch (the occupancy re-check). *)
  let to_json t =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"budget\":%d,\"window_ns\":%d,\"stacks\":%d,\"dropped_stacks\":%d,\
          \"stamps\":%d,\"lost\":%d"
         !budget_ref t.window t.stacks t.dropped_stacks t.stamps t.lost);
    let stage_keys =
      Hashtbl.fold (fun k _ acc -> k :: acc) t.stages []
      |> List.sort (fun a b -> String.compare (stage_to_string a) (stage_to_string b))
    in
    Buffer.add_string buf ",\"stages\":{";
    List.iteri
      (fun i stage ->
        let s = Hashtbl.find t.stages stage in
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":{\"count\":%d,\"to_stage_ns\":%s}" (stage_to_string stage)
             s.s_count (hist_json s.s_lat)))
      stage_keys;
    Buffer.add_string buf "},\"queues\":{";
    List.iteri
      (fun i level ->
        let q = Hashtbl.find t.queues level in
        if i > 0 then Buffer.add_char buf ',';
        let name = if level >= 0 then string_of_int level else "pifo" in
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":{\"samples\":%d,\"max\":%d,\"overall\":%s,\"series\":["
             name q.q_samples q.q_max (hist_json q.overall));
        List.iteri
          (fun j idx ->
            let b = Hashtbl.find q.buckets idx in
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "[%d,%d,%d,%d,%d]" (idx * t.window) b.b_count
                 (Histogram.percentile b.b_hist 50.0)
                 (Histogram.percentile b.b_hist 99.0)
                 b.b_max))
          (sorted_keys q.buckets);
        Buffer.add_string buf "]}")
      (sorted_keys t.queues);
    Buffer.add_string buf "},\"banks\":{";
    List.iteri
      (fun i bank ->
        let b = Hashtbl.find t.banks bank in
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "\"%d\":{\"stamps\":%d,\"probe_hit\":%d,\"probe_miss\":%d,\"claim_won\":%d,\
              \"claim_lost\":%d}"
             bank b.bk_stamps b.probe_hit b.probe_miss b.claim_won b.claim_lost))
      (sorted_keys t.banks);
    Buffer.add_string buf "},\"chains\":[";
    List.iteri
      (fun i (chain, n) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "{\"chain\":\"%s\",\"count\":%d}" chain n))
      (chains t);
    Buffer.add_string buf "]}";
    Buffer.contents buf
end

(* -- ambient collector ----------------------------------------------------- *)

let collector_key : Collector.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_collector () = Domain.DLS.get collector_key

let with_collector c f =
  let previous = Domain.DLS.get collector_key in
  Domain.DLS.set collector_key (Some c);
  Fun.protect ~finally:(fun () -> Domain.DLS.set collector_key previous) f

let deliver_stack stack =
  match current_collector () with None -> () | Some c -> Collector.deliver c stack

let drop_stack stack =
  match current_collector () with None -> () | Some c -> Collector.drop c stack
