type check = {
  key : string;
  field : string;
  base : float;
  cur : float;
  allowed : float;
  ok : bool;
}

type t = {
  tol_pct : float;
  checks : check list;
  missing : string list;
  extra : string list;
  notes : string list;
}

let ( let* ) = Result.bind

(* Deterministic outcome fields and their absolute slack floors.  The
   floors absorb quantisation noise (a 1-tick percentile step, a task
   landing either side of the horizon) on near-zero baselines, where a
   pure percentage band would be vacuous. *)
let floor_ns = 1000.0
let floor_count = 8.0

let fields =
  [
    ("sched_p50_ns", floor_ns);
    ("sched_p99_ns", floor_ns);
    ("sched_mean_ns", floor_ns);
    ("decisions_per_sec", 50.0);
    ("submitted", floor_count);
    ("completed", floor_count);
    ("timeouts", floor_count);
    ("rejected", floor_count);
    ("swaps", floor_count);
    ("recirculations", floor_count);
    ("repair_flags", floor_count);
  ]

let number name json =
  Option.bind (Json.member name json) Json.to_number

let string_field name json ~default =
  match Json.member name json with
  | Some v -> Option.value (Json.to_string v) ~default
  | None -> default

let outcome_key ~experiment outcome =
  Printf.sprintf "%s/%s@%g" experiment
    (string_field "system" outcome ~default:"?")
    (Option.value (number "load_tps" outcome) ~default:0.0)

(* (key, outcome) pairs in file order. *)
let outcomes json =
  match Json.member "experiments" json with
  | Some (Json.List experiments) ->
    List.concat_map
      (fun e ->
        let name = string_field "name" e ~default:"?" in
        match Json.member "outcomes" e with
        | Some (Json.List outcomes) ->
          List.map (fun o -> (outcome_key ~experiment:name o, o)) outcomes
        | _ -> [])
      experiments
  | _ -> []

let load path =
  let* json = Json.parse_file path in
  let schema = string_field "schema" json ~default:"" in
  if schema <> "draconis-bench/1" then
    Error (Printf.sprintf "%s: expected a draconis-bench report, got schema %S" path schema)
  else Ok json

let make_check ~tol_pct ~key ~field ~allowed_floor base cur =
  let allowed = Float.max allowed_floor (tol_pct *. Float.abs base) in
  { key; field; base; cur; allowed; ok = Float.abs (cur -. base) <= allowed }

let phase_pairs outcome =
  match Json.member "phases" outcome with
  | Some (Json.Obj pairs) -> pairs
  | _ -> []

let compare_outcome ~tol_pct ~key base cur =
  let field_checks =
    List.filter_map
      (fun (field, floor) ->
        match (number field base, number field cur) with
        | Some b, Some c -> Some (make_check ~tol_pct ~key ~field ~allowed_floor:floor b c)
        | _ -> None)
      fields
  in
  let drained v =
    match Json.member "drained" v with Some (Json.Bool b) -> b | _ -> false
  in
  let drained_check =
    let b = drained base and c = drained cur in
    {
      key;
      field = "drained";
      base = (if b then 1.0 else 0.0);
      cur = (if c then 1.0 else 0.0);
      allowed = 0.0;
      ok = b = c;
    }
  in
  (* Per-phase percentiles ride along when both reports carry them. *)
  let phase_checks =
    let cur_phases = phase_pairs cur in
    List.concat_map
      (fun (phase, bv) ->
        match List.assoc_opt phase cur_phases with
        | None -> []
        | Some cv ->
          List.filter_map
            (fun pct ->
              match (number pct bv, number pct cv) with
              | Some b, Some c ->
                Some
                  (make_check ~tol_pct ~key
                     ~field:(Printf.sprintf "phase.%s.%s" phase pct)
                     ~allowed_floor:floor_ns b c)
              | _ -> None)
            [ "p50_ns"; "p99_ns" ])
      (phase_pairs base)
  in
  field_checks @ [ drained_check ] @ phase_checks

let informational name base cur =
  match (number name base, number name cur) with
  | Some b, Some c when b <> c -> Some (Printf.sprintf "%s: base %g, current %g" name b c)
  | _ -> None

let run ~tol_pct base cur =
  let base_outcomes = outcomes base in
  let cur_outcomes = outcomes cur in
  let checks, missing =
    List.fold_left
      (fun (checks, missing) (key, b) ->
        match List.assoc_opt key cur_outcomes with
        | None -> (checks, key :: missing)
        | Some c -> (checks @ compare_outcome ~tol_pct ~key b c, missing))
      ([], []) base_outcomes
  in
  let extra =
    List.filter_map
      (fun (key, _) ->
        if List.mem_assoc key base_outcomes then None else Some key)
      cur_outcomes
  in
  let notes =
    List.filter_map Fun.id
      [
        (match (Json.member "quick" base, Json.member "quick" cur) with
        | Some (Json.Bool b), Some (Json.Bool c) when b <> c ->
          Some (Printf.sprintf "quick flag differs: base %b, current %b" b c)
        | _ -> None);
        informational "total_events" base cur;
        informational "jobs" base cur;
        informational "shards" base cur;
      ]
  in
  { tol_pct; checks; missing = List.rev missing; extra; notes }

let compare_files ?(tol_pct = 0.10) ~base_path ~cur_path () =
  let* base = load base_path in
  let* cur = load cur_path in
  Ok (run ~tol_pct base cur)

let passed t = t.missing = [] && List.for_all (fun c -> c.ok) t.checks

let pp_value field v =
  if field = "drained" then (if v = 0.0 then "false" else "true")
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render t =
  let buf = Buffer.create 1024 in
  let failures = List.filter (fun c -> not c.ok) t.checks in
  Buffer.add_string buf
    (Printf.sprintf "compared %d field(s) across %d outcome(s), tolerance %.1f%%\n"
       (List.length t.checks)
       (List.length
          (List.sort_uniq compare (List.map (fun c -> c.key) t.checks)))
       (100.0 *. t.tol_pct));
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "FAIL %s %s: base %s, current %s (|delta| %s > allowed %s)\n" c.key
           c.field (pp_value c.field c.base) (pp_value c.field c.cur)
           (pp_value "" (Float.abs (c.cur -. c.base)))
           (pp_value "" c.allowed)))
    failures;
  List.iter
    (fun key -> Buffer.add_string buf (Printf.sprintf "FAIL missing from current: %s\n" key))
    t.missing;
  List.iter
    (fun key -> Buffer.add_string buf (Printf.sprintf "note: only in current: %s\n" key))
    t.extra;
  List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) t.notes;
  Buffer.add_string buf
    (if passed t then "PASS: no regressions beyond tolerance\n"
     else
       Printf.sprintf "FAIL: %d regression(s)\n"
         (List.length failures + List.length t.missing));
  Buffer.contents buf
