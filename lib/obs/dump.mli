(** Flat metrics exporter: the registry of every run as JSON or CSV.

    JSON shape ([draconis-obs/1] schema): a [runs] array with one entry
    per recorder holding its label, event/drop totals, counters,
    gauges, histogram summaries (count/min/max/mean/p50/p99), and probe
    time series as [[t_ns, value]] pairs.  The CSV form flattens the
    same data into [label,kind,name,time_ns,value] rows (one row per
    series point).  {!write_metrics} picks CSV when [path] ends in
    [.csv], JSON otherwise. *)

val metrics_json : Recorder.t list -> string
val metrics_csv : Recorder.t list -> string
val write_metrics : path:string -> Recorder.t list -> unit
