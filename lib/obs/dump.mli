(** Flat metrics exporter: the registry of every run as JSON or CSV.

    JSON shape ([draconis-obs/2] schema): a [runs] array with one entry
    per recorder holding its label, event total and [dropped_events]
    count (events discarded at the recorder's capacity bound),
    counters, gauges, histogram summaries (count/min/max/mean/p50/p99),
    probe time series as [[t_ns, value]] pairs, and — when the run
    carried phase attribution — an [attribution] object
    ({!Attribution.to_json}).  The CSV form flattens the registry into
    RFC 4180 [label,kind,name,time_ns,value] rows (one row per series
    point, plus [recorder] rows for the event/drop totals).
    {!write_metrics} picks CSV when [path] ends in [.csv], JSON
    otherwise. *)

val metrics_json : Recorder.t list -> string
val metrics_csv : Recorder.t list -> string
val write_metrics : path:string -> Recorder.t list -> unit
