open Draconis_sim

type key = int * int * int

type stage =
  | Created
  | In_flight
  | At_switch
  | Recirculating
  | Queued of int
  | Examined
  | Dispatched
  | Running
  | Finished

type journey = {
  key : key;
  submit_at : Time.t;
  mutable last_at : Time.t;
  mutable stage : stage;
  phases : int array;
  mutable sched : Time.t;  (* -1 until the first executor start *)
  mutable flags : int;
}

type t = {
  journeys : (key, journey) Hashtbl.t;
  collector : Attribution.t;
  check : bool;
}

(* Only explicit booleans are accepted: treating any junk value as
   "on" would hide typos (DRACONIS_PHASE_CHECK=ture), and treating it
   as "off" would silently disarm the check — the same fail-loudly
   contract as DRACONIS_CALENDAR. *)
let env_check () =
  match Sys.getenv_opt "DRACONIS_PHASE_CHECK" with
  | None | Some "" | Some "0" -> false
  | Some "1" -> true
  | Some v ->
    invalid_arg
      (Printf.sprintf "Trace_ctx: DRACONIS_PHASE_CHECK must be \"1\" or \"0\", got %S" v)

let create ?check ?top_k () =
  {
    journeys = Hashtbl.create 4096;
    collector = Attribution.create ?top_k ();
    check = (match check with Some c -> c | None -> env_check ());
  }

let collector t = t.collector
let in_flight t = Hashtbl.length t.journeys
let find t key = Hashtbl.find_opt t.journeys key

(* Every milestone charges the interval since the previous one to a
   single phase and advances the cursor, so per task the buckets always
   telescope to (last milestone - submit) exactly. *)
let charge j ~at phase =
  let i = Phase.index phase in
  j.phases.(i) <- j.phases.(i) + (at - j.last_at);
  j.last_at <- at

(* The phase of an interval ending at a switch traversal: the first
   traversal after a fabric arrival is match-action (pipeline) time;
   any later one was reached through the loop-back port. *)
let traverse_phase j =
  match j.stage with
  | Recirculating | Examined -> Phase.Recirc
  | Created | In_flight | At_switch | Queued _ | Dispatched | Running | Finished ->
    Phase.Pipeline

let submit t key ~at =
  Hashtbl.replace t.journeys key
    {
      key;
      submit_at = at;
      last_at = at;
      stage = Created;
      phases = Array.make Phase.count 0;
      sched = -1;
      flags = 0;
    }

let sent t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at Phase.Client;
    j.stage <- In_flight

let arrive t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at Phase.Fabric;
    j.stage <- At_switch

let spin t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at (traverse_phase j);
    j.stage <- Recirculating

let enqueue t key ~at ~level =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at (traverse_phase j);
    j.stage <- Queued level

let reject t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at (traverse_phase j);
    j.stage <- Created;
    j.flags <- j.flags lor Attribution.flag_reject

let dequeue t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at Phase.Queue;
    j.stage <- Examined

let assign t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    (* Dequeue and assignment share the traversal tick, so this charge
       is zero-width; it only moves the cursor to the dispatch edge. *)
    charge j ~at Phase.Queue;
    j.stage <- Dispatched

let exec_start t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at Phase.Dispatch;
    j.stage <- Running;
    if j.sched < 0 then j.sched <- at - j.submit_at

let exec_done t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at Phase.Service;
    j.stage <- Finished

let add_flag t key bit =
  match find t key with None -> () | Some j -> j.flags <- j.flags lor bit

let flag_swap t key = add_flag t key Attribution.flag_swap
let flag_resubmit t key = add_flag t key Attribution.flag_resubmit

let repair_window t ~level =
  Hashtbl.iter
    (fun _ j ->
      match j.stage with
      | Queued l when l = level -> j.flags <- j.flags lor Attribution.flag_repair
      | _ -> ())
    t.journeys

let scheduling_prefix j =
  List.fold_left
    (fun acc phase ->
      if Phase.in_scheduling phase then acc + j.phases.(Phase.index phase) else acc)
    0 Phase.all

let complete t key ~at =
  match find t key with
  | None -> ()
  | Some j ->
    charge j ~at Phase.Reply;
    Hashtbl.remove t.journeys key;
    let total = at - j.submit_at in
    if t.check then begin
      let sum = Array.fold_left ( + ) 0 j.phases in
      let uid, jid, tid = key in
      if sum <> total then
        failwith
          (Printf.sprintf
             "Trace_ctx: task %d.%d.%d phase sum %d ns <> end-to-end %d ns" uid jid
             tid sum total);
      (* Sub-check: the scheduling-phase prefix matches the measured
         scheduling delay whenever a single journey reached the
         executor (resubmission can legitimately split it). *)
      if j.sched >= 0 && j.flags land Attribution.flag_resubmit = 0 then begin
        let prefix = scheduling_prefix j in
        if prefix <> j.sched then
          failwith
            (Printf.sprintf
               "Trace_ctx: task %d.%d.%d scheduling prefix %d ns <> scheduling \
                delay %d ns"
               uid jid tid prefix j.sched)
      end
    end;
    Attribution.add t.collector
      { Attribution.key = j.key; total; sched = j.sched; phases = j.phases;
        flags = j.flags };
    (* Phase samples also land in the ambient recorder's histograms, so
       the standard metrics export carries per-phase p50/p99 without a
       schema change. *)
    if Recorder.active () then begin
      List.iter
        (fun phase ->
          Recorder.record ("phase." ^ Phase.name phase) j.phases.(Phase.index phase))
        Phase.all;
      Recorder.record "phase.total" total;
      if j.sched >= 0 then Recorder.record "phase.sched" j.sched
    end

let finish t =
  Attribution.note_incomplete t.collector (Hashtbl.length t.journeys);
  t.collector

(* -- ambient (domain-local) context ---------------------------------------- *)

let dls : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get dls
let active () = Domain.DLS.get dls <> None
let install t = Domain.DLS.set dls (Some t)
let uninstall () = Domain.DLS.set dls None

let with_ctx t f =
  let previous = Domain.DLS.get dls in
  Domain.DLS.set dls (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls previous) f
