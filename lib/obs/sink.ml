open Draconis_sim

type config = { probe_interval : Time.t; capacity : int }

(* The sink is shared by every pool worker domain, so the (cold) state
   transitions and the per-run deposits are mutex-protected.  The hot
   emit path never touches the sink — recorders are domain-local. *)
let mutex = Mutex.create ()
let state : config option ref = ref None
let runs : Recorder.t list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let enable ?(probe_interval = Probe.default_interval) ?(capacity = Recorder.default_capacity) () =
  if probe_interval <= 0 then invalid_arg "Sink.enable: probe_interval must be positive";
  if capacity < 1 then invalid_arg "Sink.enable: capacity must be positive";
  locked (fun () ->
      state := Some { probe_interval; capacity };
      runs := [])

let disable () =
  locked (fun () ->
      state := None;
      runs := [])

let config () = locked (fun () -> !state)
let enabled () = config () <> None

let put recorder = locked (fun () -> runs := recorder :: !runs)

let drain () =
  let deposited = locked (fun () ->
      let r = !runs in
      runs := [];
      r)
  in
  (* Pool jobs finish in a nondeterministic order; sorting by label
     (then event count, then first-event timestamp, for duplicate
     labels) makes the exported files stable across --jobs settings.
     Without the timestamp, duplicate-label recorders with equal event
     counts kept their deposit order — which depends on job completion
     order. *)
  List.stable_sort
    (fun a b ->
      match String.compare (Recorder.label a) (Recorder.label b) with
      | 0 -> (
        match compare (Recorder.event_count a) (Recorder.event_count b) with
        | 0 -> compare (Recorder.first_event_at a) (Recorder.first_event_at b)
        | c -> c)
      | c -> c)
    deposited
