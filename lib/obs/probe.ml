open Draconis_sim

let default_interval = Time.us 100

let attach engine ?(interval = default_interval) ~until sources =
  if interval <= 0 then invalid_arg "Probe.attach: interval must be positive";
  if sources <> [] then begin
    let sample_all () =
      let now = Engine.now engine in
      List.iter (fun (name, read) -> Recorder.probe_sample ~at:now name (read ())) sources
    in
    (* One immediate sample anchors every series at the attach time, so
       even a run shorter than [interval] exports a data point. *)
    sample_all ();
    if until > Engine.now engine then Engine.every engine ~interval ~until sample_all
  end
