(** Offline phase-attribution analyzer behind [draconis-trace analyze].

    Loads a metrics export ({!Dump.metrics_json}, schema
    [draconis-obs/1] or [/2]) and reduces each run to its per-phase
    latency decomposition: count / sum / mean / p50 / p99 / max per
    {!Phase.t}, critical-path counts, anomaly tags, and the top-K
    slowest tasks with their full breakdowns.

    Beyond restating what the writer recorded, {!load} re-verifies
    exactness offline with integer arithmetic: the per-phase sums must
    add up to the recorded end-to-end total, and every top-K breakdown
    must sum to its task's total.  [verified] reports that independent
    check; [exact] is the writer's claim. *)

type phase_row = {
  phase : string;
  count : int;
  sum_ns : int;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  max_ns : int;
}

type top_entry = {
  task : string;
  total_ns : int;
  sched_ns : int;
  flags : string;
  breakdown : (string * int) list;
}

type attribution = {
  tasks : int;
  incomplete : int;
  exact : bool;  (** writer's in-run claim *)
  verified : bool;  (** offline integer re-check of all sums *)
  total_sum_ns : int;
  phases : phase_row list;  (** in file (causal) order *)
  critical : (string * int) list;
  anomalies : (string * int) list;
  top : top_entry list;
}

type run = {
  label : string;
  events : int;
  dropped_events : int;
  attribution : attribution option;
      (** [None] for runs recorded without phase attribution
          (baselines, plain obs runs). *)
}

val load : path:string -> (run list, string) result

(** Human-readable report: one block per run with the phase table,
    critical-path shares, anomalies, and top-K breakdown lines. *)
val render_text : run list -> string

(** [draconis-trace/1] JSON document. *)
val render_json : run list -> string

(** RFC 4180 CSV, one row per (run, phase):
    [label,phase,count,sum_ns,mean_ns,p50_ns,p99_ns,max_ns,share_pct]. *)
val render_csv : run list -> string
