let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace-event timestamps are microseconds; the simulator's are
   nanoseconds, so three decimals preserve them exactly. *)
let ts_us at = Printf.sprintf "%d.%03d" (at / 1000) (abs (at mod 1000))

type emitter = {
  buf : Buffer.t;
  mutable first : bool;
}

let emit_record e fields =
  if e.first then e.first <- false else Buffer.add_string e.buf ",\n";
  Buffer.add_char e.buf '{';
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Buffer.add_char e.buf ',';
      Buffer.add_char e.buf '"';
      Buffer.add_string e.buf name;
      Buffer.add_string e.buf "\":";
      Buffer.add_string e.buf value)
    fields;
  Buffer.add_char e.buf '}'

let quoted s = "\"" ^ escape s ^ "\""

let emit_metadata e ~pid ?tid ~name arg =
  emit_record e
    ([ ("ph", quoted "M"); ("pid", string_of_int pid) ]
    @ (match tid with None -> [] | Some tid -> [ ("tid", string_of_int tid) ])
    @ [ ("name", quoted name); ("args", "{\"name\":" ^ quoted arg ^ "}") ])

let emit_run e ~pid recorder =
  emit_metadata e ~pid ~name:"process_name" (Recorder.label recorder);
  (* Tracks become numbered threads, in order of first appearance —
     deterministic because the event order is. *)
  let tids = Hashtbl.create 16 in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some tid -> tid
    | None ->
      let tid = Hashtbl.length tids in
      Hashtbl.replace tids track tid;
      emit_metadata e ~pid ~tid ~name:"thread_name" track;
      tid
  in
  Recorder.iter_events recorder (fun event ->
      let tid = tid_of event.Event.track in
      let shared =
        [
          ("ph", quoted (Event.phase_name event.phase));
          ("pid", string_of_int pid);
          ("tid", string_of_int tid);
          ("ts", ts_us event.at);
          ("name", quoted event.name);
          ("cat", quoted "draconis");
        ]
      in
      match event.phase with
      | Event.Counter v ->
        emit_record e (shared @ [ ("args", Printf.sprintf "{\"value\":%d}" v) ])
      | Event.Instant -> emit_record e (shared @ [ ("s", quoted "t") ])
      | Event.Span_begin | Event.Span_end -> emit_record e shared)

let to_buffer buf recorders =
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let e = { buf; first = true } in
  List.iteri (fun pid recorder -> emit_run e ~pid recorder) recorders;
  Buffer.add_string buf "\n]}\n"

let to_string recorders =
  let buf = Buffer.create 65536 in
  to_buffer buf recorders;
  Buffer.contents buf

let write ~path recorders =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      to_buffer buf recorders;
      Buffer.output_buffer oc buf)
