open Draconis_sim
open Draconis_stats

type t = {
  label : string;
  capacity : int;
  mutable events : Event.t array;
  mutable len : int;
  mutable dropped : int;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  histograms : (string, Sampler.t) Hashtbl.t;
  series : (string, (Time.t * int) list ref) Hashtbl.t;
  mutable attribution : string option;
  mutable int_telemetry : string option;
}

let default_capacity = 1 lsl 20

let create ?(capacity = default_capacity) ~label () =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be positive";
  {
    label;
    capacity;
    events = [||];
    len = 0;
    dropped = 0;
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    series = Hashtbl.create 16;
    attribution = None;
    int_telemetry = None;
  }

let label t = t.label
let event_count t = t.len
let dropped t = t.dropped
let set_attribution t json = t.attribution <- Some json
let attribution t = t.attribution
let set_int_telemetry t json = t.int_telemetry <- Some json
let int_telemetry t = t.int_telemetry

(* Timestamp of the first stored event; [max_int] for an empty buffer so
   empty recorders sort after populated ones with equal labels/counts. *)
let first_event_at t = if t.len > 0 then t.events.(0).Event.at else max_int

(* Grow-on-demand up to [capacity]; past capacity the newest events are
   counted instead of stored, so what remains is a valid (balanced up to
   the truncation point, time-ordered) prefix of the run. *)
let push t event =
  if t.len >= t.capacity then t.dropped <- t.dropped + 1
  else begin
    if t.len >= Array.length t.events then begin
      let next = max 1024 (min t.capacity (2 * max 1 (Array.length t.events))) in
      let bigger = Array.make next Event.dummy in
      Array.blit t.events 0 bigger 0 t.len;
      t.events <- bigger
    end;
    t.events.(t.len) <- event;
    t.len <- t.len + 1
  end

let events t = List.init t.len (fun i -> t.events.(i))

let iter_events t f =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

(* -- registry -------------------------------------------------------------- *)

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters name r;
    r

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let observe t name v =
  let sampler =
    match Hashtbl.find_opt t.histograms name with
    | Some s -> s
    | None ->
      let s = Sampler.create () in
      Hashtbl.replace t.histograms name s;
      s
  in
  Sampler.record sampler v

let sorted_assoc tbl value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_assoc t.counters ( ! )
let gauges t = sorted_assoc t.gauges ( ! )
let histograms t = sorted_assoc t.histograms Fun.id
let series t = sorted_assoc t.series (fun points -> List.rev !points)

(* -- typed emission -------------------------------------------------------- *)

let span_begin t ~at ~track name =
  push t { Event.at; track; name; phase = Event.Span_begin }

let span_end t ~at ~track name =
  push t { Event.at; track; name; phase = Event.Span_end }

let instant t ~at ~track name =
  push t { Event.at; track; name; phase = Event.Instant }

let counter_event t ~at ~track name v =
  push t { Event.at; track; name; phase = Event.Counter v }

let sample t ~at name v =
  (match Hashtbl.find_opt t.series name with
  | Some points -> points := (at, v) :: !points
  | None -> Hashtbl.replace t.series name (ref [ (at, v) ]));
  counter_event t ~at ~track:name name v

(* -- ambient (domain-local) recorder -------------------------------------- *)

(* Installation is domain-local: each Harness.Pool worker domain carries
   its own slot, so parallel runs record into disjoint recorders with no
   locking on the emit path.  The disabled path is one DLS read and a
   match. *)
let key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current () = Domain.DLS.get key
let active () = Domain.DLS.get key <> None
let install t = Domain.DLS.set key (Some t)
let uninstall () = Domain.DLS.set key None

let with_recorder t f =
  let previous = Domain.DLS.get key in
  Domain.DLS.set key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set key previous) f

let count name n =
  match current () with None -> () | Some t -> add t name n

let gauge name v =
  match current () with None -> () | Some t -> set_gauge t name v

let record name v =
  match current () with None -> () | Some t -> observe t name v

let begin_span ~at ~track name =
  match current () with None -> () | Some t -> span_begin t ~at ~track name

let end_span ~at ~track name =
  match current () with None -> () | Some t -> span_end t ~at ~track name

let mark ~at ~track name =
  match current () with None -> () | Some t -> instant t ~at ~track name

let probe_sample ~at name v =
  match current () with None -> () | Some t -> sample t ~at name v
