(** Process-wide capture switch and run collector.

    [--trace-out] / [--metrics-out] turn observability on for a whole
    invocation: the front ends call {!enable}, the experiment runner
    then creates one {!Recorder} per run (any pool worker domain),
    records through it, and {!put}s it here when the run finishes.
    After all experiments, the front end {!drain}s the collected runs
    — sorted by label so output files are identical for any [--jobs]
    setting — and hands them to the exporters.

    When the sink is disabled (the default) the runner skips recorder
    creation entirely, so a run with observability off pays only the
    per-emit disabled-path branch. *)

open Draconis_sim

type config = {
  probe_interval : Time.t;  (** sim-time sampling period for probes *)
  capacity : int;  (** per-run event buffer bound *)
}

(** [enable ?probe_interval ?capacity ()] — defaults:
    {!Probe.default_interval}, {!Recorder.default_capacity}.  Clears
    any previously collected runs. *)
val enable : ?probe_interval:Time.t -> ?capacity:int -> unit -> unit

val disable : unit -> unit
val enabled : unit -> bool
val config : unit -> config option

(** [put recorder] deposits a finished run (thread-safe). *)
val put : Recorder.t -> unit

(** Collected runs sorted by label; clears the sink. *)
val drain : unit -> Recorder.t list
