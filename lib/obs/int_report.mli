(** Offline INT telemetry reports ([draconis-trace int]).

    Loads a [draconis-obs/3] metrics export, extracts the per-run
    ["int"] sections written by {!Int_telemetry.Collector.to_json}, and
    renders queue-depth heatmaps, per-stage hop latency, rank-store bank
    activity, top-K recirculation chains, and stamp-loss accounting.

    The per-queue totals in the dump are deliberately redundant with the
    bucketed depth series; {!recheck} re-derives them offline and
    reports any mismatch (the occupancy re-check). *)

type bucket = { b_at : int; b_count : int; b_p50 : int; b_p99 : int; b_max : int }

type queue = {
  qname : string;
  samples : int;
  qmax : int;
  overall_p50 : int;
  overall_p99 : int;
  series : bucket list;
}

type bank = {
  bname : string;
  bk_stamps : int;
  probe_hit : int;
  probe_miss : int;
  claim_won : int;
  claim_lost : int;
}

type stage_row = { sname : string; s_count : int; s_p50 : int; s_p99 : int; s_max : int }

type section = {
  budget : int;
  window_ns : int;
  stacks : int;
  dropped_stacks : int;
  stamps : int;
  lost : int;
  stages : stage_row list;
  queues : queue list;
  banks : bank list;
  chains : (string * int) list;
}

type run = { label : string; int_ : section option }

val load : path:string -> (run list, string) result
(** Parse a metrics export.  Unlike [Analyze.load] this demands schema
    [draconis-obs/3] exactly — earlier schemas cannot carry an ["int"]
    section, so pointing the command at one is a usage error worth
    failing loudly on. *)

val recheck : section -> string list
(** Internal-consistency failures (empty = pass): per-queue sample
    counts and maxima must re-derive from the bucketed series, bucket
    quantiles must be monotone, and per-stage stamp counts must sum to
    the section total. *)

val render_text : ?top:int -> run list -> string
(** Human-readable report; [top] bounds the recirculation-chain list
    (default 10). *)

val render_json : run list -> string
val render_csv : run list -> string
(** CSV of the raw depth series, one row per queue bucket. *)
