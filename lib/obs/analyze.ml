type phase_row = {
  phase : string;
  count : int;
  sum_ns : int;
  mean_ns : float;
  p50_ns : int;
  p99_ns : int;
  max_ns : int;
}

type top_entry = {
  task : string;
  total_ns : int;
  sched_ns : int;
  flags : string;
  breakdown : (string * int) list;
}

type attribution = {
  tasks : int;
  incomplete : int;
  exact : bool;
  verified : bool;
  total_sum_ns : int;
  phases : phase_row list;
  critical : (string * int) list;
  anomalies : (string * int) list;
  top : top_entry list;
}

type run = {
  label : string;
  events : int;
  dropped_events : int;
  attribution : attribution option;
}

(* -- extraction ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let number name json ~default =
  match Json.member name json with
  | Some v -> (match Json.to_number v with Some f -> f | None -> default)
  | None -> default

let int_field name json ~default = int_of_float (number name json ~default:(float_of_int default))

let bool_field name json ~default =
  match Json.member name json with Some (Json.Bool b) -> b | _ -> default

let string_field name json ~default =
  match Json.member name json with
  | Some v -> Option.value (Json.to_string v) ~default
  | None -> default

let obj_fields name json =
  match Json.member name json with Some (Json.Obj fields) -> fields | _ -> []

let int_pairs name json =
  List.filter_map
    (fun (k, v) -> Option.map (fun f -> (k, int_of_float f)) (Json.to_number v))
    (obj_fields name json)

let parse_phase (name, v) =
  {
    phase = name;
    count = int_field "count" v ~default:0;
    sum_ns = int_field "sum_ns" v ~default:0;
    mean_ns = number "mean_ns" v ~default:0.0;
    p50_ns = int_field "p50_ns" v ~default:0;
    p99_ns = int_field "p99_ns" v ~default:0;
    max_ns = int_field "max_ns" v ~default:0;
  }

let parse_top v =
  {
    task = string_field "task" v ~default:"?";
    total_ns = int_field "total_ns" v ~default:0;
    sched_ns = int_field "sched_ns" v ~default:(-1);
    flags = string_field "flags" v ~default:"-";
    breakdown = obj_fields "phases" v
                |> List.filter_map (fun (k, v) ->
                       Option.map (fun f -> (k, int_of_float f)) (Json.to_number v));
  }

let parse_attribution v =
  let phases = List.map parse_phase (obj_fields "phases" v) in
  let top =
    match Json.member "top" v with
    | Some (Json.List entries) -> List.map parse_top entries
    | _ -> []
  in
  let total_sum_ns = int_field "total_sum_ns" v ~default:0 in
  (* Independent integer re-check of the telescoping invariant: phase
     sums must reconstitute the end-to-end total, globally and for every
     reported task. *)
  let verified =
    List.fold_left (fun acc p -> acc + p.sum_ns) 0 phases = total_sum_ns
    && List.for_all
         (fun t -> List.fold_left (fun acc (_, v) -> acc + v) 0 t.breakdown = t.total_ns)
         top
  in
  {
    tasks = int_field "tasks" v ~default:0;
    incomplete = int_field "incomplete" v ~default:0;
    exact = bool_field "exact" v ~default:false;
    verified;
    total_sum_ns;
    phases;
    critical = int_pairs "critical" v;
    anomalies = int_pairs "anomalies" v;
    top;
  }

let parse_run v =
  {
    label = string_field "label" v ~default:"?";
    events = int_field "events" v ~default:0;
    (* draconis-obs/1 called the field [dropped]. *)
    dropped_events =
      int_field "dropped_events" v ~default:(int_field "dropped" v ~default:0);
    attribution = Option.map parse_attribution (Json.member "attribution" v);
  }

let load ~path =
  let* json = Json.parse_file path in
  let schema = string_field "schema" json ~default:"" in
  if schema <> "draconis-obs/1" && schema <> "draconis-obs/2" && schema <> "draconis-obs/3"
  then
    Error (Printf.sprintf "%s: expected a draconis-obs metrics export, got schema %S" path schema)
  else
    match Json.member "runs" json with
    | Some (Json.List runs) -> Ok (List.map parse_run runs)
    | _ -> Error (Printf.sprintf "%s: missing \"runs\" array" path)

(* -- rendering ------------------------------------------------------------- *)

let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3)

let share sum total =
  if total <= 0 then "-"
  else Printf.sprintf "%.1f%%" (100.0 *. float_of_int sum /. float_of_int total)

let phase_table a =
  let table =
    Draconis_stats.Table.create
      ~columns:[ "phase"; "count"; "mean (us)"; "p50 (us)"; "p99 (us)"; "max (us)"; "share" ]
  in
  List.iter
    (fun p ->
      if p.count > 0 then
        Draconis_stats.Table.add_row table
          [
            p.phase; string_of_int p.count;
            Printf.sprintf "%.1f" (p.mean_ns /. 1e3);
            us p.p50_ns; us p.p99_ns; us p.max_ns;
            share p.sum_ns a.total_sum_ns;
          ])
    a.phases;
  table

let counts_line pairs =
  String.concat ", "
    (List.filter_map
       (fun (name, n) -> if n > 0 then Some (Printf.sprintf "%s %d" name n) else None)
       pairs)

let top_line i (t : top_entry) =
  let dominant =
    List.fold_left (fun acc (_, v as p) ->
        match acc with Some (_, best) when best >= v -> acc | _ -> Some p)
      None t.breakdown
  in
  Printf.sprintf "  %2d. task %-12s total %8s us  sched %8s us  flags %-10s %s" (i + 1)
    t.task (us t.total_ns)
    (if t.sched_ns >= 0 then us t.sched_ns else "-")
    t.flags
    (match dominant with
    | Some (phase, v) -> Printf.sprintf "dominant %s %s us (%s)" phase (us v) (share v t.total_ns)
    | None -> "")

let render_text runs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "== %s ==\nevents %d (dropped_events %d)\n" r.label r.events
           r.dropped_events);
      (match r.attribution with
      | None -> Buffer.add_string buf "no phase attribution recorded for this run\n"
      | Some a ->
        Buffer.add_string buf
          (Printf.sprintf "tasks %d sealed, %d incomplete; exact sum: %s\n" a.tasks
             a.incomplete
             (if a.exact && a.verified then "yes (re-verified offline)"
              else if a.exact then "claimed, OFFLINE CHECK FAILED"
              else "NO"));
        Buffer.add_string buf (Draconis_stats.Table.render (phase_table a));
        let critical = counts_line a.critical in
        if critical <> "" then
          Buffer.add_string buf (Printf.sprintf "critical path (dominant phase): %s\n" critical);
        let anomalies = counts_line a.anomalies in
        if anomalies <> "" then
          Buffer.add_string buf (Printf.sprintf "anomalies: %s\n" anomalies);
        if a.top <> [] then begin
          Buffer.add_string buf "slowest tasks:\n";
          List.iteri (fun i t -> Buffer.add_string buf (top_line i t ^ "\n")) a.top
        end);
      Buffer.add_char buf '\n')
    runs;
  Buffer.contents buf

let escape = Chrome_trace.escape

let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let pairs_json pairs =
  String.concat ","
    (List.map (fun (name, n) -> Printf.sprintf "\"%s\":%d" (escape name) n) pairs)

let attribution_json a =
  Printf.sprintf
    "{\"tasks\":%d,\"incomplete\":%d,\"exact\":%b,\"verified\":%b,\"total_sum_ns\":%d,\
     \"phases\":{%s},\"critical\":{%s},\"anomalies\":{%s},\"top\":[%s]}"
    a.tasks a.incomplete a.exact a.verified a.total_sum_ns
    (String.concat ","
       (List.map
          (fun p ->
            Printf.sprintf
              "\"%s\":{\"count\":%d,\"sum_ns\":%d,\"mean_ns\":%s,\"p50_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d}"
              (escape p.phase) p.count p.sum_ns (json_float p.mean_ns) p.p50_ns p.p99_ns
              p.max_ns)
          a.phases))
    (pairs_json a.critical) (pairs_json a.anomalies)
    (String.concat ","
       (List.map
          (fun t ->
            Printf.sprintf
              "{\"task\":\"%s\",\"total_ns\":%d,\"sched_ns\":%d,\"flags\":\"%s\",\"phases\":{%s}}"
              (escape t.task) t.total_ns t.sched_ns (escape t.flags)
              (pairs_json t.breakdown))
          a.top))

let render_json runs =
  Printf.sprintf "{\n  \"schema\": \"draconis-trace/1\",\n  \"runs\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf "    {\"label\":\"%s\",\"events\":%d,\"dropped_events\":%d%s}"
              (escape r.label) r.events r.dropped_events
              (match r.attribution with
              | None -> ""
              | Some a -> ",\"attribution\":" ^ attribution_json a))
          runs))

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv runs =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "label,phase,count,sum_ns,mean_ns,p50_ns,p99_ns,max_ns,share_pct\n";
  List.iter
    (fun r ->
      match r.attribution with
      | None -> ()
      | Some a ->
        List.iter
          (fun p ->
            Buffer.add_string buf
              (Printf.sprintf "%s,%s,%d,%d,%s,%d,%d,%d,%s\n" (csv_escape r.label)
                 (csv_escape p.phase) p.count p.sum_ns (json_float p.mean_ns) p.p50_ns
                 p.p99_ns p.max_ns
                 (if a.total_sum_ns > 0 then
                    Printf.sprintf "%.2f"
                      (100.0 *. float_of_int p.sum_ns /. float_of_int a.total_sum_ns)
                  else "")))
          a.phases)
    runs;
  Buffer.contents buf
