(** Bench-report regression guard behind [draconis-trace compare].

    Diffs two [draconis-bench/1] JSON reports ({!Draconis_harness.Report}).
    Outcomes are matched by (experiment, system, load); each
    deterministic field is checked symmetrically against
    [|cur - base| <= max(floor, tol_pct * |base|)] where [floor] is a
    per-field absolute slack (1 us for latency fields, a few tasks for
    counters).  [drained] must match exactly, and every baseline
    outcome must still exist — a missing experiment or outcome is a
    failure, not a silent skip.

    Probe overhead makes engine event counts and wall time legitimately
    vary between observed and unobserved runs, so [events],
    [wall_s]-derived fields, and extra outcomes present only in the
    current report are reported as notes, never failures.  Per-phase
    percentiles ([phases], present when a run carried attribution) are
    compared with the latency tolerance when both sides have them. *)

type check = {
  key : string;  (** ["experiment/system\@load"] *)
  field : string;
  base : float;
  cur : float;
  allowed : float;  (** absolute delta permitted *)
  ok : bool;
}

type t = {
  tol_pct : float;
  checks : check list;  (** deterministic (file, field-spec) order *)
  missing : string list;  (** baseline outcomes absent from current — failures *)
  extra : string list;  (** current-only outcomes — informational *)
  notes : string list;
}

(** [compare_files ?tol_pct ~base_path ~cur_path] — [tol_pct] defaults
    to [0.10] (±10%). *)
val compare_files :
  ?tol_pct:float -> base_path:string -> cur_path:string -> unit -> (t, string) result

val passed : t -> bool

(** Failing checks first, then missing keys, notes, and a PASS/FAIL
    verdict line.  Deterministic. *)
val render : t -> string
