type bucket = { b_at : int; b_count : int; b_p50 : int; b_p99 : int; b_max : int }

type queue = {
  qname : string;
  samples : int;
  qmax : int;
  overall_p50 : int;
  overall_p99 : int;
  series : bucket list;
}

type bank = {
  bname : string;
  bk_stamps : int;
  probe_hit : int;
  probe_miss : int;
  claim_won : int;
  claim_lost : int;
}

type stage_row = { sname : string; s_count : int; s_p50 : int; s_p99 : int; s_max : int }

type section = {
  budget : int;
  window_ns : int;
  stacks : int;
  dropped_stacks : int;
  stamps : int;
  lost : int;
  stages : stage_row list;
  queues : queue list;
  banks : bank list;
  chains : (string * int) list;
}

type run = { label : string; int_ : section option }

(* -- extraction ------------------------------------------------------------ *)

let ( let* ) = Result.bind

let number name json ~default =
  match Json.member name json with
  | Some v -> ( match Json.to_number v with Some f -> f | None -> default)
  | None -> default

let int_field name json ~default =
  int_of_float (number name json ~default:(float_of_int default))

let string_field name json ~default =
  match Json.member name json with
  | Some v -> Option.value (Json.to_string v) ~default
  | None -> default

let obj_fields name json =
  match Json.member name json with Some (Json.Obj fields) -> fields | _ -> []

let hist_fields name json =
  let v = Option.value (Json.member name json) ~default:(Json.Obj []) in
  (int_field "p50" v ~default:0, int_field "p99" v ~default:0, int_field "max" v ~default:0)

let parse_bucket v =
  match v with
  | Json.List [ a; b; c; d; e ] ->
    let n x = match Json.to_number x with Some f -> int_of_float f | None -> 0 in
    Some { b_at = n a; b_count = n b; b_p50 = n c; b_p99 = n d; b_max = n e }
  | _ -> None

let parse_queue (name, v) =
  let p50, p99, _ = hist_fields "overall" v in
  {
    qname = name;
    samples = int_field "samples" v ~default:0;
    qmax = int_field "max" v ~default:0;
    overall_p50 = p50;
    overall_p99 = p99;
    series =
      (match Json.member "series" v with
      | Some (Json.List buckets) -> List.filter_map parse_bucket buckets
      | _ -> []);
  }

let parse_bank (name, v) =
  {
    bname = name;
    bk_stamps = int_field "stamps" v ~default:0;
    probe_hit = int_field "probe_hit" v ~default:0;
    probe_miss = int_field "probe_miss" v ~default:0;
    claim_won = int_field "claim_won" v ~default:0;
    claim_lost = int_field "claim_lost" v ~default:0;
  }

let parse_stage (name, v) =
  let p50, p99, mx = hist_fields "to_stage_ns" v in
  { sname = name; s_count = int_field "count" v ~default:0; s_p50 = p50; s_p99 = p99;
    s_max = mx }

let parse_section v =
  {
    budget = int_field "budget" v ~default:0;
    window_ns = int_field "window_ns" v ~default:0;
    stacks = int_field "stacks" v ~default:0;
    dropped_stacks = int_field "dropped_stacks" v ~default:0;
    stamps = int_field "stamps" v ~default:0;
    lost = int_field "lost" v ~default:0;
    stages = List.map parse_stage (obj_fields "stages" v);
    queues = List.map parse_queue (obj_fields "queues" v);
    banks = List.map parse_bank (obj_fields "banks" v);
    chains =
      (match Json.member "chains" v with
      | Some (Json.List entries) ->
        List.map
          (fun e ->
            (string_field "chain" e ~default:"?", int_field "count" e ~default:0))
          entries
      | _ -> []);
  }

let parse_run v =
  {
    label = string_field "label" v ~default:"?";
    int_ = Option.map parse_section (Json.member "int" v);
  }

let load ~path =
  let* json = Json.parse_file path in
  let schema = string_field "schema" json ~default:"" in
  if schema <> "draconis-obs/3" then
    Error
      (Printf.sprintf
         "%s: expected a draconis-obs/3 metrics export (with an \"int\" section), got \
          schema %S"
         path schema)
  else
    match Json.member "runs" json with
    | Some (Json.List runs) -> Ok (List.map parse_run runs)
    | _ -> Error (Printf.sprintf "%s: missing \"runs\" array" path)

(* -- offline re-check ------------------------------------------------------ *)

(* The dump carries per-queue totals redundantly with the bucketed
   series; re-deriving them proves the depth time series is internally
   consistent (the occupancy re-check).  Returns human-readable failure
   descriptions; empty = pass. *)
let recheck section =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let stage_total = List.fold_left (fun acc s -> acc + s.s_count) 0 section.stages in
  if section.stamps > 0 && stage_total <> section.stamps then
    fail "stage counts sum to %d, section claims %d stamps" stage_total section.stamps;
  List.iter
    (fun q ->
      let derived = List.fold_left (fun acc b -> acc + b.b_count) 0 q.series in
      if derived <> q.samples then
        fail "queue %s: series buckets hold %d samples, section claims %d" q.qname
          derived q.samples;
      let derived_max = List.fold_left (fun acc b -> max acc b.b_max) 0 q.series in
      if derived_max <> q.qmax then
        fail "queue %s: series max is %d, section claims %d" q.qname derived_max q.qmax;
      List.iter
        (fun b ->
          if not (b.b_p50 <= b.b_p99 && b.b_p99 <= b.b_max) then
            fail "queue %s: bucket at %dns has non-monotone depth quantiles (%d/%d/%d)"
              q.qname b.b_at b.b_p50 b.b_p99 b.b_max)
        q.series;
      if q.overall_p99 > q.qmax then
        fail "queue %s: overall p99 %d exceeds max %d" q.qname q.overall_p99 q.qmax)
    section.queues;
  List.rev !failures

(* -- rendering ------------------------------------------------------------- *)

let heat_chars = " .:-=+*#%@"

let heat_strip q =
  if q.series = [] || q.qmax = 0 then ""
  else begin
    (* Downsample to at most 64 cells, folding by max so spikes stay
       visible. *)
    let cells = 64 in
    let buckets = Array.of_list q.series in
    let n = Array.length buckets in
    let group = (n + cells - 1) / cells in
    let strip = Buffer.create cells in
    let i = ref 0 in
    while !i < n do
      let hi = min n (!i + group) in
      let m = ref 0 in
      for j = !i to hi - 1 do
        if buckets.(j).b_p99 > !m then m := buckets.(j).b_p99
      done;
      let idx = !m * (String.length heat_chars - 1) / max 1 q.qmax in
      Buffer.add_char strip heat_chars.[min (String.length heat_chars - 1) idx];
      i := hi
    done;
    Buffer.contents strip
  end

let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3)

let render_text ?(top = 10) runs =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" r.label);
      match r.int_ with
      | None -> Buffer.add_string buf "no INT telemetry recorded for this run\n\n"
      | Some s ->
        let checks = recheck s in
        Buffer.add_string buf
          (Printf.sprintf
             "budget %d, window %s us; %d stacks delivered (%d dropped in flight), %d \
              stamps, %d lost to the header budget\n"
             s.budget
             (us s.window_ns)
             s.stacks s.dropped_stacks s.stamps s.lost);
        Buffer.add_string buf
          (if checks = [] then "occupancy re-check: ok\n"
           else "occupancy re-check: FAILED\n");
        List.iter (fun c -> Buffer.add_string buf ("  !! " ^ c ^ "\n")) checks;
        if s.queues <> [] then begin
          Buffer.add_string buf "queue depth over time (p99 per window):\n";
          List.iter
            (fun q ->
              Buffer.add_string buf
                (Printf.sprintf "  q%-5s |%s| p50 %d p99 %d max %d (%d samples)\n"
                   q.qname (heat_strip q) q.overall_p50 q.overall_p99 q.qmax q.samples))
            s.queues
        end;
        if s.stages <> [] then begin
          let table =
            Draconis_stats.Table.create
              ~columns:[ "stage"; "stamps"; "hop p50 (us)"; "hop p99 (us)"; "hop max (us)" ]
          in
          List.iter
            (fun st ->
              Draconis_stats.Table.add_row table
                [ st.sname; string_of_int st.s_count; us st.s_p50; us st.s_p99;
                  us st.s_max ])
            s.stages;
          Buffer.add_string buf (Draconis_stats.Table.render table)
        end;
        if s.banks <> [] then begin
          let probes =
            List.fold_left (fun acc b -> acc + b.probe_hit + b.probe_miss) 0 s.banks
          in
          let claims =
            List.fold_left (fun acc b -> acc + b.claim_won + b.claim_lost) 0 s.banks
          in
          Buffer.add_string buf
            (Printf.sprintf "rank-store banks: %d active, %d probes, %d claims\n"
               (List.length s.banks) probes claims)
        end;
        if s.chains <> [] then begin
          Buffer.add_string buf (Printf.sprintf "top %d recirculation chains:\n" top);
          List.iteri
            (fun i (chain, n) ->
              if i < top then
                Buffer.add_string buf (Printf.sprintf "  %6dx %s\n" n chain))
            s.chains
        end;
        Buffer.add_char buf '\n')
    runs;
  Buffer.contents buf

let escape = Chrome_trace.escape

let section_json s =
  let checks = recheck s in
  Printf.sprintf
    "{\"budget\":%d,\"window_ns\":%d,\"stacks\":%d,\"dropped_stacks\":%d,\"stamps\":%d,\
     \"lost\":%d,\"recheck_ok\":%b,\"queues\":{%s},\"chains\":[%s]}"
    s.budget s.window_ns s.stacks s.dropped_stacks s.stamps s.lost (checks = [])
    (String.concat ","
       (List.map
          (fun q ->
            Printf.sprintf "\"%s\":{\"samples\":%d,\"p50\":%d,\"p99\":%d,\"max\":%d}"
              (escape q.qname) q.samples q.overall_p50 q.overall_p99 q.qmax)
          s.queues))
    (String.concat ","
       (List.map
          (fun (chain, n) ->
            Printf.sprintf "{\"chain\":\"%s\",\"count\":%d}" (escape chain) n)
          s.chains))

let render_json runs =
  Printf.sprintf "{\n  \"schema\": \"draconis-trace-int/1\",\n  \"runs\": [\n%s\n  ]\n}\n"
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf "    {\"label\":\"%s\"%s}" (escape r.label)
              (match r.int_ with None -> "" | Some s -> ",\"int\":" ^ section_json s))
          runs))

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv runs =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "label,queue,time_ns,count,depth_p50,depth_p99,depth_max\n";
  List.iter
    (fun r ->
      match r.int_ with
      | None -> ()
      | Some s ->
        List.iter
          (fun q ->
            List.iter
              (fun b ->
                Buffer.add_string buf
                  (Printf.sprintf "%s,%s,%d,%d,%d,%d,%d\n" (csv_escape r.label)
                     (csv_escape q.qname) b.b_at b.b_count b.b_p50 b.b_p99 b.b_max))
              q.series)
          s.queues)
    runs;
  Buffer.contents buf
