open Draconis_sim

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Counter of int

type t = {
  at : Time.t;
  track : string;
  name : string;
  phase : phase;
}

let phase_name = function
  | Span_begin -> "B"
  | Span_end -> "E"
  | Instant -> "i"
  | Counter _ -> "C"

let dummy = { at = 0; track = ""; name = ""; phase = Instant }

let pp fmt e =
  match e.phase with
  | Counter v -> Format.fprintf fmt "[%a] C %s/%s=%d" Time.pp e.at e.track e.name v
  | phase ->
    Format.fprintf fmt "[%a] %s %s/%s" Time.pp e.at (phase_name phase) e.track e.name
