(** In-band network telemetry (INT) for the switch data path.

    Each pipeline traversal appends one compact {!stamp} — stage id, sim
    timestamp, queue/bank occupancy seen at access time, recirculation
    ordinal, and (for the rank store) bank id + probe outcome — to the
    packet's {!stack}, bounded by a validated header budget (default
    {!default_budget}, mirroring real INT hop limits).  Overflowing
    stamps are counted in [lost] instead of stored, so loss is
    accountable end to end.

    Stamps cost {e zero extra register accesses}: every field is a value
    the stamping site already read as part of its one permitted access
    (the enqueue occupancy comes from the add/retrieve pointers the
    pointer stage just fetched; the PIFO bank id from the probe that
    just claimed it).  The whole channel is gated on {!enabled} — the
    disabled path is one ref read per site, like [Trace.enabled].

    Host side, a {!Collector} drains stacks at reply delivery into
    per-queue/per-bank windowed depth series and per-stage latency
    histograms, exported as the ["int"] section of the draconis-obs/3
    metrics dump and rendered by [draconis-trace int]. *)

open Draconis_sim

(** Pipeline stage a stamp was taken in; [Ingress] marks the wire
    arrival (stamped with the fabric envelope's send time, so the first
    hop latency includes fabric transit). *)
type stage =
  | Ingress
  | Submission
  | Request
  | Completion
  | Swap
  | Resubmit
  | Repair_add
  | Repair_retrieve
  | Prio_scan
  | Pifo_probe
  | Pifo_scan
  | Pifo_claim
  | Forward

val stage_to_string : stage -> string

(** @raise Invalid_argument on an unknown stage name. *)
val stage_of_string : string -> stage

type probe_outcome = No_probe | Probe_hit | Probe_miss | Claim_won | Claim_lost

val probe_outcome_to_string : probe_outcome -> string

type stamp = {
  stage : stage;
  at : Time.t;
  hop : int;  (** recirculation ordinal: 0 on the first traversal *)
  level : int;  (** queue level, [-1] when not a levelled-queue access *)
  occupancy : int;  (** occupancy observed at access time, [-1] when unknown *)
  bank : int;  (** rank-store bank id, [-1] outside the rank store *)
  probe : probe_outcome;
}

(** Immutable stamp stack carried on an in-flight packet. *)
type stack

val stack_depth : stack -> int
val stack_lost : stack -> int

(** Stored stamps, oldest first. *)
val stack_stamps : stack -> stamp list

(** {2 Configuration} *)

val default_budget : int
val max_budget : int

(** Fast-path gate consulted by every stamping site; [false] by default. *)
val enabled : unit -> bool

val enable : ?budget:int -> unit -> unit
val disable : unit -> unit
val budget : unit -> int

(** @raise Invalid_argument unless [1 <= n <= max_budget]. *)
val set_budget : int -> unit

(** Parse a [DRACONIS_INT] value: ["0"] disables, ["N"] (1..{!max_budget})
    enables with header budget [N].
    @raise Invalid_argument on anything else — malformed values abort
    rather than silently defaulting. *)
val configure_of_string : string -> unit

(** Apply [DRACONIS_INT] from the environment (no-op when unset). *)
val apply_env : unit -> unit

(** {2 Per-traversal stamp builder}

    The pipeline arms a domain-local builder around each program
    invocation; stamping sites contribute fields via [note_*] (no-ops
    when unarmed), and {!commit_traversal} folds the assembled stamp
    onto the packet's stack.  Call sites must gate on {!enabled}. *)

val begin_traversal : unit -> unit
val note_stage : stage -> unit
val note_level : int -> unit
val note_occupancy : int -> unit
val note_bank : int -> unit
val note_probe : probe_outcome -> unit

(** Occupancy noted so far in the armed traversal, for in-situ checkers
    (the fuzz int-consistency invariant reads it at enqueue time). *)
val noted_occupancy : unit -> int option

(** Fresh stack for a wire arrival, holding the ingress stamp. *)
val ingress_stack : sent_at:Time.t -> stack

(** Disarm the builder and append its stamp at time [at]; past the
    header budget the stamp is counted in [lost] instead. *)
val commit_traversal : at:Time.t -> stack -> stack

(** {2 Host-side collector} *)

module Collector : sig
  type t

  (** Default depth-series bucket width: 100 µs. *)
  val default_window : Time.t

  (** @raise Invalid_argument on a non-positive window. *)
  val create : ?window:Time.t -> unit -> t

  (** Absorb a delivered packet's stamp stack. *)
  val deliver : t -> stack -> unit

  (** Account a stack lost in flight (fabric drop, recirc overflow,
      fail-over flush). *)
  val drop : t -> stack -> unit

  val stacks : t -> int
  val dropped_stacks : t -> int
  val stamps : t -> int
  val lost : t -> int

  (** Overall depth percentile for a queue level ([-1] = rank store);
      [None] if the level was never observed. *)
  val depth_percentile : t -> level:int -> float -> int option

  (** Recirculation chains with delivery counts, most frequent first
      (ties by chain string). *)
  val chains : t -> (string * int) list

  (** Emit one sample per (queue, window bucket): the bucket's p99
      depth, named [int.depth.q<level>] / [int.depth.pifo]. *)
  val emit_series : t -> (at:Time.t -> name:string -> int -> unit) -> unit

  (** The ["int"] section of the draconis-obs/3 dump. *)
  val to_json : t -> string
end

(** {2 Ambient collector} — domain-local, like the ambient
    {!Recorder}; delivery sites drain through it with O(1) disabled
    cost. *)

val current_collector : unit -> Collector.t option
val with_collector : Collector.t -> (unit -> 'a) -> 'a
val deliver_stack : stack -> unit
val drop_stack : stack -> unit
