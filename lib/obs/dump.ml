open Draconis_stats

let escape = Chrome_trace.escape

let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let histogram_json sampler =
  let n = Sampler.count sampler in
  if n = 0 then "{\"count\":0}"
  else
    Printf.sprintf
      "{\"count\":%d,\"min\":%d,\"max\":%d,\"mean\":%s,\"p50\":%d,\"p99\":%d}" n
      (Sampler.min sampler) (Sampler.max sampler)
      (json_float (Sampler.mean sampler))
      (Sampler.percentile sampler 50.0)
      (Sampler.percentile sampler 99.0)

let fields_json pairs value_of =
  String.concat ","
    (List.map (fun (name, v) -> Printf.sprintf "\"%s\":%s" (escape name) (value_of v)) pairs)

let run_json recorder =
  let series_json points =
    "["
    ^ String.concat "," (List.map (fun (t, v) -> Printf.sprintf "[%d,%d]" t v) points)
    ^ "]"
  in
  let attribution =
    match Recorder.attribution recorder with
    | None -> ""
    | Some json -> Printf.sprintf ",\n     \"attribution\":%s" json
  in
  let int_section =
    match Recorder.int_telemetry recorder with
    | None -> ""
    | Some json -> Printf.sprintf ",\n     \"int\":%s" json
  in
  Printf.sprintf
    "    {\"label\":\"%s\",\"events\":%d,\"dropped_events\":%d,\n\
     \     \"counters\":{%s},\n\
     \     \"gauges\":{%s},\n\
     \     \"histograms\":{%s},\n\
     \     \"series\":{%s}%s%s}"
    (escape (Recorder.label recorder))
    (Recorder.event_count recorder)
    (Recorder.dropped recorder)
    (fields_json (Recorder.counters recorder) string_of_int)
    (fields_json (Recorder.gauges recorder) string_of_int)
    (fields_json (Recorder.histograms recorder) histogram_json)
    (fields_json (Recorder.series recorder) series_json)
    attribution int_section

(* Schema v3 = v2 plus the optional per-run ["int"] telemetry section. *)
let metrics_json recorders =
  Printf.sprintf "{\n  \"schema\": \"draconis-obs/3\",\n  \"runs\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map run_json recorders))

(* RFC 4180: quote any field containing a separator, a quote, or a line
   break (CR or LF), doubling embedded quotes. *)
let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let metrics_csv recorders =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "label,kind,name,time_ns,value\n";
  let row label kind name time value =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s,%s\n" (csv_escape label) kind (csv_escape name) time
         value)
  in
  List.iter
    (fun recorder ->
      let label = Recorder.label recorder in
      row label "recorder" "events" "" (string_of_int (Recorder.event_count recorder));
      row label "recorder" "dropped_events" "" (string_of_int (Recorder.dropped recorder));
      List.iter
        (fun (name, v) -> row label "counter" name "" (string_of_int v))
        (Recorder.counters recorder);
      List.iter
        (fun (name, v) -> row label "gauge" name "" (string_of_int v))
        (Recorder.gauges recorder);
      List.iter
        (fun (name, sampler) ->
          if Sampler.count sampler > 0 then begin
            row label "histogram" (name ^ ".count") "" (string_of_int (Sampler.count sampler));
            row label "histogram" (name ^ ".mean") "" (json_float (Sampler.mean sampler));
            row label "histogram" (name ^ ".p50") ""
              (string_of_int (Sampler.percentile sampler 50.0));
            row label "histogram" (name ^ ".p99") ""
              (string_of_int (Sampler.percentile sampler 99.0))
          end)
        (Recorder.histograms recorder);
      List.iter
        (fun (name, points) ->
          List.iter
            (fun (t, v) -> row label "series" name (string_of_int t) (string_of_int v))
            points)
        (Recorder.series recorder))
    recorders;
  Buffer.contents buf

let write_metrics ~path recorders =
  let csv = Filename.check_suffix path ".csv" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (if csv then metrics_csv recorders else metrics_json recorders))
