(** Minimal JSON reader for export validation.

    The repository writes its JSON by hand (no JSON dependency is
    baked into the image), so the exporters need an independent reader
    to prove what they wrote actually parses: the round-trip tests and
    the [obs-smoke] self-check both re-parse every exported file with
    this module.  Full RFC 8259 value grammar; numbers are read as
    floats. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val parse_file : string -> (t, string) result

(** [member name json] is the field of an object, [None] otherwise. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_string : t -> string option
val to_number : t -> float option
