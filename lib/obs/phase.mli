(** The causal phases of one task's life, client to client.

    Every completed task's end-to-end delay is decomposed into exactly
    these phases (see {!Trace_ctx}); the decomposition is a partition,
    so the per-task phase values sum to the measured delay to the tick.

    - [Client]: client-side time — submission bookkeeping, full-queue
      retry backoff, timeout/resubmission wait (loss limbo is charged
      here because the client is the component that recovers it).
    - [Fabric]: wire transit of the submission from client to switch.
    - [Pipeline]: switch ingress serialization plus the first
      match-action traversal after arrival.
    - [Queue]: circular-queue residency, enqueue to dequeue/swap-out.
    - [Recirc]: recirculation penalty — multi-task submission hops,
      swap hops, and switch-side resubmission transit.
    - [Dispatch]: assignment emission at the switch to the executor
      starting the task (includes parameter fetch for §4.4 tasks).
    - [Service]: executor run time.
    - [Reply]: completion leaving the executor to the client observing
      it (executor → switch → client). *)

type t =
  | Client
  | Fabric
  | Pipeline
  | Queue
  | Recirc
  | Dispatch
  | Service
  | Reply

(** All phases, in causal order. *)
val all : t list

val count : int

(** [index t] is the phase's position in {!all}, in [\[0, count)]. *)
val index : t -> int

val name : t -> string
val of_name : string -> t option

(** Phases that make up the scheduling delay (submission to executor
    start); [Service] and [Reply] lie beyond it. *)
val in_scheduling : t -> bool

val pp : Format.formatter -> t -> unit
