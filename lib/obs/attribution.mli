(** Aggregation of per-task phase decompositions ({!Trace_ctx} seals
    each completed task into a collector): per-phase histograms,
    critical-path extraction (which phase dominates each task), the
    top-K slowest tasks with their full breakdowns, and anomaly tags
    for tasks hit by swaps, repair windows, resubmissions, or queue
    rejections.

    All listings follow {!Phase.all} order and top-K ties break on the
    task key, so every rendering is deterministic. *)

open Draconis_sim
open Draconis_stats

(** Task key: (uid, jid, tid). *)
type key = int * int * int

(** {2 Anomaly flag bits} *)

val flag_swap : int
val flag_repair : int
val flag_resubmit : int
val flag_reject : int

(** ["swap+repair"]-style rendering; ["-"] when no flags are set. *)
val flags_to_string : int -> string

(** One sealed task: its end-to-end total, scheduling delay ([-1] if it
    never started), per-phase buckets indexed by {!Phase.index}, and
    anomaly flags. *)
type breakdown = {
  key : key;
  total : Time.t;
  sched : Time.t;
  phases : int array;
  flags : int;
}

type t

(** [create ?top_k ()] — [top_k] bounds the slowest-task list (10). *)
val create : ?top_k:int -> unit -> t

(** [add t b] folds one sealed task in (histograms, sums, critical
    path, anomalies, top-K). *)
val add : t -> breakdown -> unit

(** [note_incomplete t n] records journeys that never completed. *)
val note_incomplete : t -> int -> unit

val sealed : t -> int
val incomplete : t -> int

(** [exact t] — whether every sealed task's phases summed exactly to
    its end-to-end delay (always true by construction; re-verified per
    seal so the exported report can prove it). *)
val exact : t -> bool

val total_sampler : t -> Sampler.t
val sched_sampler : t -> Sampler.t
val phase_sampler : t -> Phase.t -> Sampler.t

(** Exact integer sum of the phase across all sealed tasks. *)
val phase_sum : t -> Phase.t -> int

val total_sum : t -> int

(** Slowest sealed tasks, worst first, at most [top_k]. *)
val top : t -> breakdown list

(** [(name, count)] anomaly tags, fixed order. *)
val anomalies : t -> (string * int) list

(** [(phase, p50_ns, p99_ns)] per phase; [[]] before the first seal. *)
val phase_percentiles : t -> (string * int * int) list

(** Tasks per dominant phase, {!Phase.all} order. *)
val critical_counts : t -> (string * int) list

(** JSON object fragment embedded in the metrics dump ([attribution]
    field of the [draconis-obs/2] run schema). *)
val to_json : t -> string

val to_table : t -> Table.t
val pp_summary : Format.formatter -> t -> unit
