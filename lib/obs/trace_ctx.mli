(** Per-task causal trace context.

    One context per run tracks every submitted task as an ordered
    sequence of milestones (submit → sent → arrive → traversals →
    queue → dispatch → execution → reply).  Each milestone charges the
    interval since the previous one to exactly one {!Phase.t} bucket
    and advances a per-task cursor, so by construction the buckets of a
    completed task {e telescope}: they sum to the client-observed
    end-to-end delay to the tick, whatever path the task took
    (recirculation hops, swaps, repair windows, queue-full bounces,
    timeout resubmissions).

    Under the debug check (explicit [~check:true], or the
    [DRACONIS_PHASE_CHECK] environment variable) every seal re-verifies
    the sum and raises [Failure] on any discrepancy; the
    scheduling-phase prefix is additionally checked against the
    measured scheduling delay for tasks that executed exactly once.

    Milestones for unknown task keys are ignored, so components can
    emit unconditionally once a context is installed.  Sealed journeys
    are folded into an {!Attribution.t} and dropped, keeping memory
    proportional to in-flight tasks.  Like {!Recorder}, installation is
    domain-local: parallel pool workers never share a context. *)

open Draconis_sim

(** Task key: (uid, jid, tid). *)
type key = int * int * int

type t

(** [create ?check ?top_k ()] — [check] defaults to the
    [DRACONIS_PHASE_CHECK] environment variable ("1" enables,
    "0"/empty disable).
    @raise Invalid_argument on any other value of the variable. *)
val create : ?check:bool -> ?top_k:int -> unit -> t

val collector : t -> Attribution.t

(** Journeys submitted but not yet sealed. *)
val in_flight : t -> int

(** {2 Milestones} — all idempotent against unknown keys. *)

(** Task accepted by a client; starts (or restarts) the journey. *)
val submit : t -> key -> at:Time.t -> unit

(** Client put the task on the wire (initial send, full-queue retry, or
    timeout resubmission).  Charges {!Phase.Client}. *)
val sent : t -> key -> at:Time.t -> unit

(** Submission packet delivered at the switch.  Charges {!Phase.Fabric}. *)
val arrive : t -> key -> at:Time.t -> unit

(** Task rode a traversal without landing (multi-task continuation,
    swap hop, switch resubmission).  Charges pipeline time for the
    first traversal after arrival, recirculation after. *)
val spin : t -> key -> at:Time.t -> unit

(** Task landed in circular queue [level]. *)
val enqueue : t -> key -> at:Time.t -> level:int -> unit

(** Task bounced by a full queue (client will retry).  Tags
    {!Attribution.flag_reject}. *)
val reject : t -> key -> at:Time.t -> unit

(** Task left the queue (pop or swap-out).  Charges {!Phase.Queue}. *)
val dequeue : t -> key -> at:Time.t -> unit

(** Assignment emitted towards an executor. *)
val assign : t -> key -> at:Time.t -> unit

(** Executor began running the task.  Charges {!Phase.Dispatch}; the
    first start fixes the task's scheduling delay. *)
val exec_start : t -> key -> at:Time.t -> unit

(** Executor finished.  Charges {!Phase.Service}. *)
val exec_done : t -> key -> at:Time.t -> unit

(** Client observed completion.  Charges {!Phase.Reply}, verifies the
    sum under the debug check, seals the journey into the collector,
    and feeds [phase.*] histograms of the ambient {!Recorder}. *)
val complete : t -> key -> at:Time.t -> unit

(** {2 Anomaly tags} *)

val flag_swap : t -> key -> unit
val flag_resubmit : t -> key -> unit

(** Tag every task currently queued at [level] as overlapping a
    pointer-repair window (§4.7). *)
val repair_window : t -> level:int -> unit

(** [finish t] records still-open journeys as incomplete and returns
    the collector. *)
val finish : t -> Attribution.t

(** {2 Ambient context} — mirrors {!Recorder}'s domain-local slot. *)

val current : unit -> t option
val active : unit -> bool
val install : t -> unit
val uninstall : unit -> unit
val with_ctx : t -> (unit -> 'a) -> 'a
