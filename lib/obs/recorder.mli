(** Per-run event buffer and metrics registry.

    A recorder owns everything one simulation run observes: the typed
    event timeline ({!Event.t}, bounded by [capacity]), and a registry
    of named counters, gauges, histograms, and probe time series.  A
    recorder is single-domain by construction — one run executes
    entirely on one domain — so recording takes no locks.

    {2 Ambient installation}

    Components (fabric, pipeline, switch program, executors, clients)
    emit through the {e ambient} recorder: a domain-local slot set with
    {!install} / {!with_recorder}.  When no recorder is installed every
    ambient call is one domain-local read and a branch — O(1), no
    allocation — so instrumentation stays in hot paths.  Parallel
    {!Draconis_harness.Pool} workers each install their own recorder in
    their own domain and never race.

    Merging a pooled sweep is done by collecting each job's recorder in
    submission order; within a recorder, events are already in emission
    order with non-decreasing timestamps, so the concatenation is the
    deterministic (run, time, seq) merge. *)

open Draconis_sim
open Draconis_stats

type t

(** Default event capacity: 2^20 events. *)
val default_capacity : int

(** [create ?capacity ~label ()] — [label] names the run in exports
    (e.g. ["Draconis\@48000tps"]).  Once [capacity] events are stored,
    later events are counted in {!dropped} instead of stored, keeping
    the retained prefix valid. *)
val create : ?capacity:int -> label:string -> unit -> t

val label : t -> string
val event_count : t -> int

(** Events discarded because the buffer reached capacity. *)
val dropped : t -> int

(** [set_attribution t json] attaches a pre-rendered
    {!Attribution.to_json} fragment; {!Dump} embeds it in the run's
    metrics export. *)
val set_attribution : t -> string -> unit

val attribution : t -> string option

(** [set_int_telemetry t json] attaches a pre-rendered
    {!Int_telemetry.Collector.to_json} fragment; {!Dump} embeds it as
    the run's ["int"] section. *)
val set_int_telemetry : t -> string -> unit

val int_telemetry : t -> string option

(** Timestamp of the first stored event ([max_int] when the buffer is
    empty); {!Sink.drain}'s deterministic-order tie-break. *)
val first_event_at : t -> Time.t

(** Stored events, in emission order. *)
val events : t -> Event.t list

val iter_events : t -> (Event.t -> unit) -> unit

(** {2 Registry} — all listings are sorted by name for deterministic
    export. *)

(** [add t name n] bumps named counter [name] by [n], creating it at 0
    on first use. *)
val add : t -> string -> int -> unit

(** [counter_value t name] is the counter's total ([0] if never bumped). *)
val counter_value : t -> string -> int

val set_gauge : t -> string -> int -> unit

(** [observe t name v] records [v] into the named histogram. *)
val observe : t -> string -> int -> unit

val counters : t -> (string * int) list
val gauges : t -> (string * int) list
val histograms : t -> (string * Sampler.t) list

(** Probe time series, chronological. *)
val series : t -> (string * (Time.t * int) list) list

(** {2 Typed emission} (explicit recorder) *)

val span_begin : t -> at:Time.t -> track:string -> string -> unit
val span_end : t -> at:Time.t -> track:string -> string -> unit
val instant : t -> at:Time.t -> track:string -> string -> unit
val counter_event : t -> at:Time.t -> track:string -> string -> int -> unit

(** [sample t ~at name v] appends [(at, v)] to the named time series
    {e and} emits a counter event on track [name] so probes show up in
    the exported timeline. *)
val sample : t -> at:Time.t -> string -> int -> unit

(** {2 Ambient recorder} *)

val current : unit -> t option
val active : unit -> bool
val install : t -> unit
val uninstall : unit -> unit

(** [with_recorder t f] installs [t] for the duration of [f] in the
    calling domain, restoring the previous installation after. *)
val with_recorder : t -> (unit -> 'a) -> 'a

(** {2 Ambient emission} — no-ops when no recorder is installed.
    Callers that must format a track or name should guard with
    {!active} (or cache the string) so the disabled path stays free. *)

val count : string -> int -> unit
val gauge : string -> int -> unit
val record : string -> int -> unit
val begin_span : at:Time.t -> track:string -> string -> unit
val end_span : at:Time.t -> track:string -> string -> unit
val mark : at:Time.t -> track:string -> string -> unit
val probe_sample : at:Time.t -> string -> int -> unit
