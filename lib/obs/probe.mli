(** Periodic samplers over simulated time.

    A probe reads instantaneous state the event counters cannot express
    — queue occupancy, executors currently busy, cumulative
    recirculations — on a fixed sim-time interval, and feeds each
    reading into the ambient {!Recorder} as a time-series point plus a
    counter event (so the sampled series render as counter tracks in
    the exported timeline).

    Probes read, never mutate: attaching them changes the engine's
    event count but not the simulation's behaviour or its RNG stream. *)

open Draconis_sim

(** 100 us of simulated time. *)
val default_interval : Time.t

(** [attach engine ?interval ~until sources] samples every [(name,
    read)] source now and then every [interval] until [until].  With an
    empty [sources] list nothing is scheduled.
    @raise Invalid_argument if [interval <= 0]. *)
val attach :
  Engine.t -> ?interval:Time.t -> until:Time.t -> (string * (unit -> int)) list -> unit
