type t =
  | Client
  | Fabric
  | Pipeline
  | Queue
  | Recirc
  | Dispatch
  | Service
  | Reply

let all = [ Client; Fabric; Pipeline; Queue; Recirc; Dispatch; Service; Reply ]
let count = List.length all

let index = function
  | Client -> 0
  | Fabric -> 1
  | Pipeline -> 2
  | Queue -> 3
  | Recirc -> 4
  | Dispatch -> 5
  | Service -> 6
  | Reply -> 7

let name = function
  | Client -> "client"
  | Fabric -> "fabric"
  | Pipeline -> "pipeline"
  | Queue -> "queue"
  | Recirc -> "recirc"
  | Dispatch -> "dispatch"
  | Service -> "service"
  | Reply -> "reply"

let of_name = function
  | "client" -> Some Client
  | "fabric" -> Some Fabric
  | "pipeline" -> Some Pipeline
  | "queue" -> Some Queue
  | "recirc" -> Some Recirc
  | "dispatch" -> Some Dispatch
  | "service" -> Some Service
  | "reply" -> Some Reply
  | _ -> None

let in_scheduling = function
  | Client | Fabric | Pipeline | Queue | Recirc | Dispatch -> true
  | Service | Reply -> false

let pp fmt t = Format.pp_print_string fmt (name t)
