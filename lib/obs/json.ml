type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance cur;
    skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> error cur (Printf.sprintf "expected %c, got %c" c got)
  | None -> error cur (Printf.sprintf "expected %c, got end of input" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.text && String.sub cur.text cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur (Printf.sprintf "expected %s" word)

let hex_digit cur c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> error cur "bad \\u escape"

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | None -> error cur "unterminated escape"
      | Some c ->
        advance cur;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if cur.pos + 4 > String.length cur.text then error cur "truncated \\u escape";
          let code =
            List.fold_left
              (fun acc i -> (acc * 16) + hex_digit cur cur.text.[cur.pos + i])
              0 [ 0; 1; 2; 3 ]
          in
          cur.pos <- cur.pos + 4;
          (* Minimal UTF-8 encoding of the BMP scalar; surrogate halves
             become U+FFFD.  Exports only escape control characters, so
             this path is cold. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else if code >= 0xD800 && code <= 0xDFFF then
            Buffer.add_string buf "\xEF\xBF\xBD"
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> error cur (Printf.sprintf "bad escape \\%c" c)));
      loop ()
    | Some c when Char.code c < 0x20 -> error cur "control character in string"
    | Some c ->
      advance cur;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let consume_while pred =
    while
      match peek cur with
      | Some c when pred c -> true
      | _ -> false
    do
      advance cur
    done
  in
  if peek cur = Some '-' then advance cur;
  consume_while (fun c -> c >= '0' && c <= '9');
  if peek cur = Some '.' then begin
    advance cur;
    consume_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek cur with
  | Some ('e' | 'E') ->
    advance cur;
    (match peek cur with Some ('+' | '-') -> advance cur | _ -> ());
    consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let raw = String.sub cur.text start (cur.pos - start) in
  match float_of_string_opt raw with
  | Some f -> f
  | None -> error cur (Printf.sprintf "bad number %S" raw)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin
      advance cur;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws cur;
        let name = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          members ((name, v) :: acc)
        | Some '}' ->
          advance cur;
          List.rev ((name, v) :: acc)
        | _ -> error cur "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin
      advance cur;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value cur in
        skip_ws cur;
        match peek cur with
        | Some ',' ->
          advance cur;
          elements (v :: acc)
        | Some ']' ->
          advance cur;
          List.rev (v :: acc)
        | _ -> error cur "expected , or ] in array"
      in
      List (elements [])
    end
  | Some '"' -> String (parse_string cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> Number (parse_number cur)
  | Some c -> error cur (Printf.sprintf "unexpected character %c" c)

let parse text =
  let cur = { text; pos = 0 } in
  match parse_value cur with
  | v ->
    skip_ws cur;
    if cur.pos <> String.length text then
      Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let parse_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_list = function List items -> Some items | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_number = function Number f -> Some f | _ -> None
