(** Typed timeline events.

    The observability layer replaces free-form trace strings with four
    event shapes, chosen because they map one-to-one onto the Chrome
    trace-event phases that Perfetto renders natively:

    - a {e span} is a [Span_begin]/[Span_end] pair on one track (an
      executor running a task);
    - an {e instant} marks a point occurrence (a drop, a repair-flag
      trip);
    - a {e counter} carries a sampled value and renders as a counter
      track (queue occupancy over time).

    Events carry no sequence number: a {!Recorder.t} stores them in
    emission order, which for a single-domain simulation run is also
    non-decreasing in [at]. *)

open Draconis_sim

type phase =
  | Span_begin
  | Span_end
  | Instant
  | Counter of int  (** sampled value *)

type t = {
  at : Time.t;  (** simulated time, ns *)
  track : string;  (** timeline row, e.g. ["exec 3:2"] or ["fabric"] *)
  name : string;  (** event or counter name *)
  phase : phase;
}

(** Chrome trace-event phase letter: B, E, i, or C. *)
val phase_name : phase -> string

(** Placeholder used to pre-fill buffers. *)
val dummy : t

val pp : Format.formatter -> t -> unit
