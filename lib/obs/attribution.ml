open Draconis_sim
open Draconis_stats

type key = int * int * int

let flag_swap = 1
let flag_repair = 2
let flag_resubmit = 4
let flag_reject = 8

let flag_names =
  [ (flag_swap, "swap"); (flag_repair, "repair"); (flag_resubmit, "resubmit");
    (flag_reject, "reject") ]

let flags_to_string flags =
  let names =
    List.filter_map
      (fun (bit, name) -> if flags land bit <> 0 then Some name else None)
      flag_names
  in
  if names = [] then "-" else String.concat "+" names

type breakdown = {
  key : key;
  total : Time.t;
  sched : Time.t;  (* -1 when the task never reached an executor start *)
  phases : int array;  (* Phase.count buckets, ns *)
  flags : int;
}

type t = {
  top_k : int;
  samplers : Sampler.t array;
  total : Sampler.t;
  sched : Sampler.t;
  phase_sums : int array;
  mutable total_sum : int;
  mutable sealed : int;
  mutable incomplete : int;
  mutable mismatches : int;
  critical : int array;  (* tasks whose dominant phase is i *)
  mutable swapped : int;
  mutable repaired : int;
  mutable resubmitted : int;
  mutable rejected : int;
  mutable top : breakdown list;  (* sorted: total desc, then key asc *)
}

let create ?(top_k = 10) () =
  {
    top_k;
    samplers = Array.init Phase.count (fun _ -> Sampler.create ());
    total = Sampler.create ();
    sched = Sampler.create ();
    phase_sums = Array.make Phase.count 0;
    total_sum = 0;
    sealed = 0;
    incomplete = 0;
    mismatches = 0;
    critical = Array.make Phase.count 0;
    swapped = 0;
    repaired = 0;
    resubmitted = 0;
    rejected = 0;
    top = [];
  }

let compare_breakdown (a : breakdown) (b : breakdown) =
  match compare b.total a.total with 0 -> compare a.key b.key | c -> c

let insert_top t b =
  let rec insert = function
    | [] -> [ b ]
    | x :: rest -> if compare_breakdown b x < 0 then b :: x :: rest else x :: insert rest
  in
  let top = insert t.top in
  t.top <- (if List.length top > t.top_k then List.filteri (fun i _ -> i < t.top_k) top
            else top)

let dominant phases =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > phases.(!best) then best := i) phases;
  !best

let add t (b : breakdown) =
  t.sealed <- t.sealed + 1;
  let sum = Array.fold_left ( + ) 0 b.phases in
  if sum <> b.total then t.mismatches <- t.mismatches + 1;
  Array.iteri
    (fun i v ->
      Sampler.record t.samplers.(i) v;
      t.phase_sums.(i) <- t.phase_sums.(i) + v)
    b.phases;
  Sampler.record t.total b.total;
  t.total_sum <- t.total_sum + b.total;
  if b.sched >= 0 then Sampler.record t.sched b.sched;
  t.critical.(dominant b.phases) <- t.critical.(dominant b.phases) + 1;
  if b.flags land flag_swap <> 0 then t.swapped <- t.swapped + 1;
  if b.flags land flag_repair <> 0 then t.repaired <- t.repaired + 1;
  if b.flags land flag_resubmit <> 0 then t.resubmitted <- t.resubmitted + 1;
  if b.flags land flag_reject <> 0 then t.rejected <- t.rejected + 1;
  insert_top t b

let note_incomplete t n = t.incomplete <- t.incomplete + n

let sealed t = t.sealed
let incomplete t = t.incomplete
let exact t = t.mismatches = 0
let total_sampler t = t.total
let sched_sampler t = t.sched
let phase_sampler t phase = t.samplers.(Phase.index phase)
let phase_sum t phase = t.phase_sums.(Phase.index phase)
let total_sum t = t.total_sum
let top t = t.top

let anomalies t =
  [ ("swapped", t.swapped); ("repaired", t.repaired);
    ("resubmitted", t.resubmitted); ("rejected", t.rejected) ]

(* Per-phase (name, p50, p99) for harness report columns; empty until a
   task has been sealed. *)
let phase_percentiles t =
  if t.sealed = 0 then []
  else
    List.map
      (fun phase ->
        let s = t.samplers.(Phase.index phase) in
        (Phase.name phase, Sampler.percentile s 50.0, Sampler.percentile s 99.0))
      Phase.all

let critical_counts t =
  List.map (fun phase -> (Phase.name phase, t.critical.(Phase.index phase))) Phase.all

(* -- JSON fragment for the metrics dump ------------------------------------ *)

let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let phase_json s sum =
  if Sampler.count s = 0 then Printf.sprintf "{\"count\":0,\"sum_ns\":%d}" sum
  else
    Printf.sprintf
      "{\"count\":%d,\"sum_ns\":%d,\"mean_ns\":%s,\"p50_ns\":%d,\"p99_ns\":%d,\"max_ns\":%d}"
      (Sampler.count s) sum
      (json_float (Sampler.mean s))
      (Sampler.percentile s 50.0)
      (Sampler.percentile s 99.0)
      (Sampler.max s)

let breakdown_json (b : breakdown) =
  let uid, jid, tid = b.key in
  Printf.sprintf
    "{\"task\":\"%d.%d.%d\",\"total_ns\":%d,\"sched_ns\":%d,\"flags\":\"%s\",\"phases\":{%s}}"
    uid jid tid b.total b.sched (flags_to_string b.flags)
    (String.concat ","
       (List.map
          (fun phase ->
            Printf.sprintf "\"%s\":%d" (Phase.name phase) b.phases.(Phase.index phase))
          Phase.all))

let to_json t =
  Printf.sprintf
    "{\"tasks\":%d,\"incomplete\":%d,\"exact\":%b,\"total_sum_ns\":%d,\
     \"phases\":{%s},\"critical\":{%s},\"anomalies\":{%s},\"top\":[%s]}"
    t.sealed t.incomplete (exact t) t.total_sum
    (String.concat ","
       (List.map
          (fun phase ->
            let i = Phase.index phase in
            Printf.sprintf "\"%s\":%s" (Phase.name phase)
              (phase_json t.samplers.(i) t.phase_sums.(i)))
          Phase.all))
    (String.concat ","
       (List.map (fun (name, n) -> Printf.sprintf "\"%s\":%d" name n) (critical_counts t)))
    (String.concat ","
       (List.map (fun (name, n) -> Printf.sprintf "\"%s\":%d" name n) (anomalies t)))
    (String.concat "," (List.map breakdown_json t.top))

(* -- text rendering (draconis-sim run --phases) ----------------------------- *)

let us ns = Printf.sprintf "%.1f" (float_of_int ns /. 1e3)

let to_table t =
  let table =
    Table.create
      ~columns:[ "phase"; "count"; "p50 (us)"; "p99 (us)"; "max (us)"; "share" ]
  in
  List.iter
    (fun phase ->
      let i = Phase.index phase in
      let s = t.samplers.(i) in
      if Sampler.count s > 0 then
        Table.add_row table
          [
            Phase.name phase;
            string_of_int (Sampler.count s);
            us (Sampler.percentile s 50.0);
            us (Sampler.percentile s 99.0);
            us (Sampler.max s);
            (if t.total_sum > 0 then
               Printf.sprintf "%.1f%%"
                 (100.0 *. float_of_int t.phase_sums.(i) /. float_of_int t.total_sum)
             else "-");
          ])
    Phase.all;
  if Sampler.count t.total > 0 then
    Table.add_row table
      [
        "total";
        string_of_int (Sampler.count t.total);
        us (Sampler.percentile t.total 50.0);
        us (Sampler.percentile t.total 99.0);
        us (Sampler.max t.total);
        "100.0%";
      ];
  table

let pp_summary fmt t =
  Format.fprintf fmt "%d task(s) attributed (%d incomplete), exact-sum %s" t.sealed
    t.incomplete
    (if exact t then "yes" else "NO")
