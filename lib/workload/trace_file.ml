open Draconis_sim
open Draconis_proto

type job = { arrival : Time.t; tasks : Task.t list }
type t = job list

let generate rng (spec : Google_trace.spec) =
  (* Reuse the live driver against a scratch engine, capturing instead
     of submitting: identical statistics by construction. *)
  let engine = Engine.create () in
  let jobs = ref [] in
  Google_trace.drive engine rng spec ~submit:(fun tasks ->
      jobs := { arrival = Engine.now engine; tasks } :: !jobs);
  Engine.run engine;
  List.rev !jobs

let task_count t = List.fold_left (fun acc job -> acc + List.length job.tasks) 0 t

let locality_to_string nodes = String.concat "/" (List.map string_of_int nodes)

let locality_of_string s =
  if s = "" then []
  else List.map int_of_string (String.split_on_char '/' s)

let task_line ~arrival ~job_index (task : Task.t) =
  let priority, locality =
    match task.tprops with
    | Task.Priority p -> (p, "")
    | Task.Locality nodes -> (0, locality_to_string nodes)
    | Task.No_props | Task.Resources _ | Task.Deadline _ | Task.Tenant _ ->
      (0, "")
  in
  Printf.sprintf "%d,%d,%d,%d,%d,%s" arrival job_index task.id.tid task.fn_par
    priority locality

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "arrival_ns,job,task,duration_ns,priority,locality\n";
  List.iteri
    (fun job_index job ->
      List.iter
        (fun task ->
          Buffer.add_string buf (task_line ~arrival:job.arrival ~job_index task);
          Buffer.add_char buf '\n')
        job.tasks)
    t;
  Buffer.contents buf

let parse_line ~line_number line =
  match String.split_on_char ',' line with
  | [ arrival; job; task; duration; priority; locality ] -> (
    try
      let tprops =
        match (int_of_string priority, locality_of_string locality) with
        | 0, [] -> Task.No_props
        | 0, nodes -> Task.Locality nodes
        | p, _ -> Task.Priority p
      in
      ( int_of_string arrival,
        int_of_string job,
        Task.make ~uid:0 ~jid:0 ~tid:(int_of_string task) ~tprops
          ~fn_id:Task.Fn.busy_loop ~fn_par:(int_of_string duration) () )
    with Failure _ -> failwith (Printf.sprintf "trace line %d: bad field" line_number))
  | _ -> failwith (Printf.sprintf "trace line %d: expected 6 fields" line_number)

let of_string contents =
  let lines = String.split_on_char '\n' contents in
  let parsed =
    List.concat
      (List.mapi
         (fun i line ->
           let line = String.trim line in
           if line = "" || i = 0 then []
           else [ parse_line ~line_number:(i + 1) line ])
         lines)
  in
  (* Group consecutive tasks of the same job id into batches. *)
  let jobs = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (arrival, job_index, task) ->
      match Hashtbl.find_opt jobs job_index with
      | Some batch -> batch := (arrival, task) :: !batch
      | None ->
        Hashtbl.replace jobs job_index (ref [ (arrival, task) ]);
        order := job_index :: !order)
    parsed;
  List.rev_map
    (fun job_index ->
      let batch = List.rev !(Hashtbl.find jobs job_index) in
      let arrival = match batch with (a, _) :: _ -> a | [] -> 0 in
      { arrival; tasks = List.map snd batch })
    !order
  |> List.sort (fun a b -> compare a.arrival b.arrival)

let save t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let drive engine t ~submit =
  List.iter
    (fun job ->
      ignore (Engine.schedule_at engine ~at:job.arrival (fun () -> submit job.tasks)))
    t
