type t = {
  mutable total : int;
  mutable first : int option;
  mutable last : int;
  mutable marks : (int * int) list; (* (time, weight), newest first *)
}

let create () = { total = 0; first = None; last = 0; marks = [] }

let mark t ?(weight = 1) ~now () =
  t.total <- t.total + weight;
  if t.first = None then t.first <- Some now;
  t.last <- now;
  t.marks <- (now, weight) :: t.marks

let total t = t.total

let rate_per_sec t =
  match t.first with
  | None -> 0.0
  | Some first ->
    let span = t.last - first in
    if span <= 0 then 0.0 else float_of_int t.total /. (float_of_int span /. 1e9)

let first_after t ~after =
  List.fold_left
    (fun best (time, _) ->
      if time < after then best
      else
        match best with
        | Some b when b <= time -> best
        | Some _ | None -> Some time)
    None t.marks

let rate_over t ~duration =
  if duration <= 0 then invalid_arg "Meter.rate_over: non-positive duration";
  float_of_int t.total /. (float_of_int duration /. 1e9)

let timeline t ~bucket =
  if bucket <= 0 then invalid_arg "Meter.timeline: non-positive bucket";
  match t.first with
  | None -> [||]
  | Some _ ->
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (time, weight) ->
        let b = time / bucket in
        let prev = Option.value ~default:0 (Hashtbl.find_opt tbl b) in
        Hashtbl.replace tbl b (prev + weight))
      t.marks;
    let entries = Hashtbl.fold (fun b w acc -> (b, w) :: acc) tbl [] in
    let a = Array.of_list entries in
    Array.sort compare a;
    a

let clear t =
  t.total <- 0;
  t.first <- None;
  t.last <- 0;
  t.marks <- []
