type t = { columns : string list; mutable rows : string list list }

let create ~columns = { columns; rows = [] }

let add_row t cells =
  let width = List.length t.columns in
  let n = List.length cells in
  let cells =
    if n = width then cells
    else if n < width then cells @ List.init (width - n) (fun _ -> "")
    else List.filteri (fun i _ -> i < width) cells
  in
  t.rows <- t.rows @ [ cells ]

let row_count t = List.length t.rows

let render t =
  let all = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  let render_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  render_row t.columns;
  List.iteri (fun i w -> if i > 0 then Buffer.add_string buf "  ";
               Buffer.add_string buf (String.make w '-')) (Array.to_list widths);
  Buffer.add_char buf '\n';
  List.iter render_row t.rows;
  Buffer.contents buf

(* RFC 4180: quote fields containing a separator, quote, or line break
   (CR or LF), doubling embedded quotes. *)
let csv_field field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let to_csv t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map csv_field row));
      Buffer.add_char buf '\n')
    (t.columns :: t.rows);
  Buffer.contents buf

let csv_dir = ref None
let set_csv_dir dir = csv_dir := dir

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '-')
    (String.lowercase_ascii title)

let print ~title t =
  Printf.printf "\n== %s ==\n%s%!" title (render t);
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir (slug title ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_csv t))

let us ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e3)
let f2 x = Printf.sprintf "%.2f" x
let ktps r = Printf.sprintf "%.1fk" (r /. 1e3)
