(** Event-rate meter.

    Counts discrete events (scheduling decisions, packets, drops) and
    reports rates over a window of simulated time.  [mark] may carry a
    weight for batched events. *)

type t

val create : unit -> t

(** [mark t ?weight ~now ()] records [weight] (default 1) events at
    simulated time [now] (nanoseconds). *)
val mark : t -> ?weight:int -> now:int -> unit -> unit

val total : t -> int

(** [rate_per_sec t] is total events divided by the span between first
    and last mark, in events per simulated second.  Zero if fewer than
    two distinct timestamps were marked. *)
val rate_per_sec : t -> float

(** [first_after t ~after] is the earliest mark timestamp at or after
    [after], if any — e.g. the first scheduling decision after a fault,
    for recovery-time measurement. *)
val first_after : t -> after:int -> int option

(** [rate_over t ~duration] divides total by an externally known
    duration (ns); preferred when the measurement window is the
    experiment window rather than the first/last event. *)
val rate_over : t -> duration:int -> float

(** [timeline t ~bucket] is the per-bucket event count, bucketed by
    [bucket] nanoseconds of simulated time, for timeline plots
    (paper Fig. 11). *)
val timeline : t -> bucket:int -> (int * int) array

val clear : t -> unit
