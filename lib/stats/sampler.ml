type t = {
  mutable data : int array;
  mutable size : int;
  mutable sorted_cache : int array option;
}

let create () = { data = Array.make 1024 0; size = 0; sorted_cache = None }

let record t v =
  if t.size >= Array.length t.data then begin
    let bigger = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 bigger 0 t.size;
    t.data <- bigger
  end;
  t.data.(t.size) <- v;
  t.size <- t.size + 1;
  t.sorted_cache <- None

let count t = t.size

let sorted t =
  match t.sorted_cache with
  | Some a -> a
  | None ->
    let a = Array.sub t.data 0 t.size in
    Array.sort Int.compare a;
    t.sorted_cache <- Some a;
    a

let percentile t p =
  if t.size = 0 then invalid_arg "Sampler.percentile: no samples";
  (* NaN fails both comparisons below, so reject it explicitly. *)
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Sampler.percentile: p out of range";
  let a = sorted t in
  let rank = int_of_float (Float.round (p /. 100.0 *. float_of_int (t.size - 1))) in
  (* Rounding can land one past either end (e.g. p just below 100 on a
     large sample); clamp rather than trip the array bounds check. *)
  let rank = if rank < 0 then 0 else if rank >= t.size then t.size - 1 else rank in
  a.(rank)

let min t =
  if t.size = 0 then invalid_arg "Sampler.min: no samples";
  (sorted t).(0)

let max t =
  if t.size = 0 then invalid_arg "Sampler.max: no samples";
  (sorted t).(t.size - 1)

let mean t =
  if t.size = 0 then invalid_arg "Sampler.mean: no samples";
  let total = ref 0.0 in
  for i = 0 to t.size - 1 do
    total := !total +. float_of_int t.data.(i)
  done;
  !total /. float_of_int t.size

let stddev t =
  if t.size = 0 then invalid_arg "Sampler.stddev: no samples";
  let m = mean t in
  let acc = ref 0.0 in
  for i = 0 to t.size - 1 do
    let d = float_of_int t.data.(i) -. m in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int t.size)

let cdf t ~points =
  if points <= 0 then invalid_arg "Sampler.cdf: points must be positive";
  if t.size = 0 then [||]
  else begin
    let a = sorted t in
    Array.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        let rank = Stdlib.min (t.size - 1)
            (int_of_float (Float.round (frac *. float_of_int (t.size - 1)))) in
        (a.(rank), frac))
  end

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    record t a.data.(i)
  done;
  for i = 0 to b.size - 1 do
    record t b.data.(i)
  done;
  t

let clear t =
  t.size <- 0;
  t.sorted_cache <- None
