open Draconis_sim
open Draconis_net
open Draconis_proto
module Obs = Draconis_obs

type config = {
  host : int;
  uid : int;
  retry_delay : Time.t;
  timeout : Time.t option;
  max_resubmissions : int;
  schedulers : Addr.t array;
  param_size : int;
}

let default_config ~host ~uid =
  {
    host;
    uid;
    retry_delay = Time.us 50;
    timeout = None;
    max_resubmissions = 3;
    schedulers = [| Addr.Switch |];
    param_size = 0;
  }

type t = {
  config : config;
  fabric : Message.t Fabric.t;
  engine : Engine.t;
  metrics : Metrics.t;
  addr : Addr.t;
  obs_track : string;  (* cached so the disabled path never formats *)
  outstanding : (Task.id, Task.t) Hashtbl.t;
  resubmissions : (Task.id, int) Hashtbl.t;
  mutable next_jid : int;
  mutable jobs_submitted : int;
  mutable completions : int;
  mutable resubmitted : int;
  mutable abandoned : int;
  mutable queue_full_bounces : int;
}

let scheduler_for t ~jid =
  t.config.schedulers.(jid mod Array.length t.config.schedulers)

let rec send_chunks t ~jid tasks =
  if tasks <> [] then begin
    let rec take n acc rest =
      match (n, rest) with
      | 0, _ | _, [] -> (List.rev acc, rest)
      | n, x :: rest -> take (n - 1) (x :: acc) rest
    in
    let chunk, rest = take Codec.max_tasks_per_packet [] tasks in
    List.iter
      (fun (task : Task.t) -> Causal.sent task.id ~at:(Engine.now t.engine))
      chunk;
    Fabric.send t.fabric ~src:t.addr ~dst:(scheduler_for t ~jid)
      (Message.Job_submission
         { client = t.addr; uid = t.config.uid; jid; tasks = chunk });
    send_chunks t ~jid rest
  end

let arm_timeout t (task : Task.t) =
  match t.config.timeout with
  | None -> ()
  | Some timeout ->
    let rec check () =
      if Hashtbl.mem t.outstanding task.id then begin
        Metrics.note_timeout t.metrics task.id;
        let tries = Option.value ~default:0 (Hashtbl.find_opt t.resubmissions task.id) in
        if tries < t.config.max_resubmissions then begin
          Hashtbl.replace t.resubmissions task.id (tries + 1);
          t.resubmitted <- t.resubmitted + 1;
          Metrics.note_resubmit t.metrics task.id;
          Obs.Recorder.count "client.resubmitted" 1;
          if Obs.Recorder.active () then
            Obs.Recorder.mark ~at:(Engine.now t.engine) ~track:t.obs_track "resubmit";
          Causal.flag_resubmit task.id;
          send_chunks t ~jid:task.id.jid [ task ];
          ignore (Engine.schedule t.engine ~after:timeout check)
        end
        else begin
          (* Resubmission budget exhausted: give the task up so the
             client can drain instead of retrying forever.  A straggling
             completion for it is ignored (the outstanding check in
             [handle_completion]). *)
          Hashtbl.remove t.outstanding task.id;
          Hashtbl.remove t.resubmissions task.id;
          t.abandoned <- t.abandoned + 1;
          Metrics.note_abandon t.metrics task.id;
          Obs.Recorder.count "client.abandoned" 1;
          if Obs.Recorder.active () then
            Obs.Recorder.mark ~at:(Engine.now t.engine) ~track:t.obs_track "abandon";
          if Trace.enabled () then
            Trace.emit ~at:(Engine.now t.engine) Trace.Host
              (lazy
                (Printf.sprintf
                   "client %d ABANDONS task %d.%d.%d after %d resubmissions"
                   t.config.uid task.id.uid task.id.jid task.id.tid tries))
        end
      end
    in
    ignore (Engine.schedule t.engine ~after:timeout check)

let handle_queue_full t tasks =
  t.queue_full_bounces <- t.queue_full_bounces + List.length tasks;
  Obs.Recorder.count "client.queue_full_bounces" (List.length tasks);
  ignore
    (Engine.schedule t.engine ~after:t.config.retry_delay (fun () ->
         (* Retry only tasks still outstanding (a timeout resubmission
            may have completed them meanwhile). *)
         let pending = List.filter (fun (task : Task.t) -> Hashtbl.mem t.outstanding task.id) tasks in
         match pending with
         | [] -> ()
         | first :: _ -> send_chunks t ~jid:first.id.jid pending))

let handle_completion t (task_id : Task.id) =
  if Hashtbl.mem t.outstanding task_id then begin
    Hashtbl.remove t.outstanding task_id;
    Hashtbl.remove t.resubmissions task_id;
    t.completions <- t.completions + 1;
    Metrics.note_complete t.metrics task_id;
    Causal.complete task_id ~at:(Engine.now t.engine);
    Obs.Recorder.count "client.completed" 1
  end

let create ~config ~fabric ~metrics () =
  let t =
    {
      config;
      fabric;
      engine = Fabric.engine fabric;
      metrics;
      addr = Addr.Host config.host;
      obs_track = Printf.sprintf "client %d" config.uid;
      outstanding = Hashtbl.create 1024;
      resubmissions = Hashtbl.create 64;
      next_jid = 0;
      jobs_submitted = 0;
      completions = 0;
      resubmitted = 0;
      abandoned = 0;
      queue_full_bounces = 0;
    }
  in
  Fabric.register fabric t.addr (fun env ->
      match env.Fabric.payload with
      | Message.Queue_full { tasks; _ } -> handle_queue_full t tasks
      | Message.Task_completion { task_id; _ } -> handle_completion t task_id
      | Message.Param_fetch { task_id; node; port } ->
        (* Serve the stored parameters of a transmission-function task
           (§4.4) straight back to the requesting executor. *)
        Fabric.send t.fabric ~src:t.addr ~dst:(Addr.Host node)
          (Message.Param_data { task_id; port; size = t.config.param_size })
      | Message.Job_ack _ -> ()
      | Message.Job_submission _ | Message.Task_request _ | Message.Task_assignment _
      | Message.Noop_assignment _ | Message.Param_data _ ->
        ());
  t

let submit_job t tasks =
  if tasks = [] then invalid_arg "Client.submit_job: empty job";
  let jid = t.next_jid in
  t.next_jid <- t.next_jid + 1;
  t.jobs_submitted <- t.jobs_submitted + 1;
  let tasks =
    List.mapi
      (fun tid (task : Task.t) ->
        { task with id = { uid = t.config.uid; jid; tid } })
      tasks
  in
  Obs.Recorder.count "client.submitted" (List.length tasks);
  List.iter
    (fun (task : Task.t) ->
      Hashtbl.replace t.outstanding task.id task;
      Metrics.note_submit t.metrics task.id;
      Causal.submit task.id ~at:(Engine.now t.engine);
      arm_timeout t task)
    tasks;
  send_chunks t ~jid tasks;
  jid

let config t = t.config
let addr t = t.addr
let engine t = t.engine
let outstanding t = Hashtbl.length t.outstanding
let jobs_submitted t = t.jobs_submitted
let completions t = t.completions
let resubmitted t = t.resubmitted
let abandoned t = t.abandoned
let queue_full_bounces t = t.queue_full_bounces
