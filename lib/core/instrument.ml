open Draconis_sim
open Draconis_proto

type repair_flag = Add_flag | Retrieve_flag

type t = {
  on_enqueue : Task.id -> level:int -> unit;
  on_dequeue : Task.id -> level:int -> unit;
  on_assign : Task.id -> node:int -> requested_at:Time.t -> unit;
  on_reject : int -> unit;
  on_noop : unit -> unit;
  on_swap : swapped_in:Task.id -> swapped_out:Task.id -> level:int -> unit;
  on_recirculate : kind:string -> unit;
  on_repair_flag : repair_flag -> level:int -> unit;
  on_rank : Task.id -> rank:int -> unit;
  on_pop_scan : unit -> unit;
}

let default =
  {
    on_enqueue = (fun _ ~level:_ -> ());
    on_dequeue = (fun _ ~level:_ -> ());
    on_assign = (fun _ ~node:_ ~requested_at:_ -> ());
    on_reject = (fun _ -> ());
    on_noop = (fun () -> ());
    on_swap = (fun ~swapped_in:_ ~swapped_out:_ ~level:_ -> ());
    on_recirculate = (fun ~kind:_ -> ());
    on_repair_flag = (fun _ ~level:_ -> ());
    on_rank = (fun _ ~rank:_ -> ());
    on_pop_scan = (fun () -> ());
  }

let repair_flag_name = function Add_flag -> "add" | Retrieve_flag -> "retrieve"
