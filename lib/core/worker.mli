(** A worker node hosting multiple pull-model executors.

    Owns the node's fabric address and demultiplexes incoming
    assignments to its executors by destination port, as the node's NIC
    delivers UDP datagrams to per-executor sockets. *)

open Draconis_sim
open Draconis_net
open Draconis_proto

type t

(** [create ~node ~executors ~fabric ~make_config ()] builds a worker
    with [executors] executors whose configs come from
    [make_config ~port]; registers the node's fabric handler. *)
val create :
  node:int ->
  executors:int ->
  fabric:Message.t Fabric.t ->
  make_config:(port:int -> Executor.config) ->
  unit ->
  t

(** [start t ~stagger] starts all executors, spacing their initial
    requests [stagger] apart to avoid a synchronized thundering herd. *)
val start : t -> stagger:Time.t -> unit

val stop : t -> unit

(** [crash t] crashes every executor on the node (see
    {!Executor.crash}): in-flight tasks vanish and the node goes silent
    until {!restart}. *)
val crash : t -> unit

(** [restart t ~stagger] revives the node's executors, spacing their
    first pull requests [stagger] apart like {!start}. *)
val restart : t -> stagger:Time.t -> unit

(** True while every executor on the node is stopped/crashed. *)
val crashed : t -> bool

(** [set_slowdown t f] applies straggler degradation factor [f] to every
    executor on the node ([1.0] restores full speed). *)
val set_slowdown : t -> float -> unit

val node : t -> int
val executor : t -> int -> Executor.t
val executor_count : t -> int
val iter_executors : t -> (Executor.t -> unit) -> unit

(** [set_on_task_start t f] installs the hook on every executor. *)
val set_on_task_start : t -> (Task.t -> node:int -> unit) -> unit

val tasks_executed : t -> int
val busy_time : t -> Time.t
