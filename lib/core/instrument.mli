(** Measurement hooks into the switch program.

    The experiment harness observes scheduler-internal events (enqueue,
    dequeue, assignment, rejection, swapping, recirculation, repair-flag
    trips) through these callbacks; a real deployment would gather the
    same numbers from switch counters.  All hooks default to no-ops. *)

open Draconis_sim
open Draconis_proto

(** Which circular-queue repair flag tripped (paper §4.7). *)
type repair_flag = Add_flag | Retrieve_flag

type t = {
  on_enqueue : Task.id -> level:int -> unit;
      (** task stored in the switch queue at [level] *)
  on_dequeue : Task.id -> level:int -> unit;
      (** task left the switch queue (popped or swap-assigned) *)
  on_assign : Task.id -> node:int -> requested_at:Time.t -> unit;
      (** task_assignment emitted to an executor on [node];
          [requested_at] is when the winning task_request reached the
          switch (get_task() latency, Fig. 13) *)
  on_reject : int -> unit;  (** tasks bounced by a full queue *)
  on_noop : unit -> unit;  (** no-op assignment sent *)
  on_swap : swapped_in:Task.id -> swapped_out:Task.id -> level:int -> unit;
      (** a swap packet exchanged its carried task ([swapped_in]) for a
          pending one ([swapped_out]) at [level] (§5.1) *)
  on_recirculate : kind:string -> unit;
      (** the program produced a recirculation; [kind] names the packet
          ("swap", "resubmit", "repair-add", "repair-retrieve",
          "submission", "prio-request", "pifo-probe", "pifo-scan",
          "pifo-claim", "pifo-restart") *)
  on_repair_flag : repair_flag -> level:int -> unit;
      (** a pointer-repair flag was set at [level] (§4.7) — the queue
          enters its degraded window until the repair packet lands *)
  on_rank : Task.id -> rank:int -> unit;
      (** a PIFO-backed policy computed [rank] for a task being admitted
          (fires just before the matching [on_enqueue]) *)
  on_pop_scan : unit -> unit;
      (** a PIFO pop began a fresh rank-store scan (including restarts
          after a lost claim) *)
}

val default : t

(** ["add"] or ["retrieve"]. *)
val repair_flag_name : repair_flag -> string
