(** Draconis client (paper §3.1, §3.3).

    Submits single tasks or batches of independent tasks as
    job_submission packets (splitting jobs larger than one MTU across
    packets, §4.3), retries tasks bounced by a full queue after a short
    wait, and — like the paper's fault model — exposes task failures by
    resubmitting tasks that time out.  Completion and submission events
    feed the shared {!Metrics}. *)

open Draconis_sim
open Draconis_net
open Draconis_proto

type config = {
  host : int;  (** the client's host id (must not collide with workers) *)
  uid : int;  (** user id stamped on submissions *)
  retry_delay : Time.t;  (** wait before retrying a Queue_full bounce *)
  timeout : Time.t option;  (** per-task timeout; [None] disables *)
  max_resubmissions : int;  (** cap on timeout-driven resubmissions *)
  schedulers : Addr.t array;
      (** submission targets; jobs round-robin across them (one switch
          for Draconis, 1-2 server hosts for Sparrow deployments) *)
  param_size : int;
      (** bytes served per transmission-function parameter fetch (§4.4) *)
}

(** 50 us retry delay, no timeout, scheduler = the switch. *)
val default_config : host:int -> uid:int -> config

type t

(** [create ~config ~fabric ~metrics ()] registers the client's fabric
    handler. *)
val create :
  config:config -> fabric:Message.t Fabric.t -> metrics:Metrics.t -> unit -> t

(** [submit_job t tasks] assigns a fresh job id, rewrites each task's
    [uid]/[jid]/[tid] to match, and sends the job (possibly as several
    packets).  Returns the job id.
    @raise Invalid_argument on an empty task list. *)
val submit_job : t -> Task.t list -> int

val config : t -> config
val addr : t -> Addr.t

(** The engine this client schedules on — its LP's engine in a sharded
    cluster, where pre-staged submissions must land on the owning LP. *)
val engine : t -> Draconis_sim.Engine.t

(** Tasks submitted and not yet completed. *)
val outstanding : t -> int

val jobs_submitted : t -> int
val completions : t -> int

(** Timeout-driven resubmissions sent by this client. *)
val resubmitted : t -> int

(** Tasks given up on after [max_resubmissions] straight timeouts; an
    abandoned task leaves {!outstanding} (and is never retried again),
    so a run with a dead destination still drains. *)
val abandoned : t -> int

val queue_full_bounces : t -> int
