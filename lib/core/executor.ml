open Draconis_sim
open Draconis_net
open Draconis_proto
module Obs = Draconis_obs

type config = {
  node : int;
  port : int;
  rsrc : int;
  noop_retry : Time.t;
  fn_model : Fn_model.t;
  scheduler : Addr.t;
  watchdog : Time.t option;
}

type t = {
  config : config;
  fabric : Message.t Fabric.t;
  engine : Engine.t;
  addr : Addr.t;
  obs_track : string;  (* cached so the disabled path never formats *)
  mutable on_task_start : Task.t -> node:int -> unit;
  mutable busy : bool;
  mutable pending_fetch : (Task.t * Addr.t) option;
      (* a transmission-function task awaiting its parameters (§4.4) *)
  mutable stopped : bool;
  mutable generation : int;  (* bumped on every send/receive, so a
                                stale watchdog check is a no-op *)
  mutable epoch : int;  (* bumped on crash: the finish closure of a task
                           that was running when the executor died is a
                           no-op — the task just vanishes *)
  mutable slowdown : float;  (* straggler degradation factor, >= 1 *)
  mutable tasks_executed : int;
  mutable busy_time : Time.t;
}

let create ~config ~fabric () =
  {
    config;
    fabric;
    engine = Fabric.engine fabric;
    addr = Addr.Host config.node;
    obs_track = Printf.sprintf "exec %d:%d" config.node config.port;
    on_task_start = (fun _ ~node:_ -> ());
    busy = false;
    pending_fetch = None;
    stopped = false;
    generation = 0;
    epoch = 0;
    slowdown = 1.0;
    tasks_executed = 0;
    busy_time = 0;
  }

let info t : Message.executor_info =
  {
    exec_addr = t.addr;
    exec_port = t.config.port;
    exec_rsrc = t.config.rsrc;
    exec_node = t.config.node;
  }

let rec send_request t =
  if not t.stopped then begin
    t.generation <- t.generation + 1;
    Fabric.send t.fabric ~src:t.addr ~dst:t.config.scheduler
      (Message.Task_request { info = info t; rtrv_prio = 1 });
    match t.config.watchdog with
    | None -> ()
    | Some window ->
      let generation = t.generation in
      ignore
        (Engine.schedule t.engine ~after:window (fun () ->
             if (not t.stopped) && (not t.busy) && t.generation = generation then
               send_request t))
  end

let start ?(after = 0) t =
  if after = 0 then send_request t
  else ignore (Engine.schedule t.engine ~after (fun () -> send_request t))

let set_on_task_start t f = t.on_task_start <- f
let stop t = t.stopped <- true

let set_slowdown t factor =
  if factor < 1.0 || Float.is_nan factor then
    invalid_arg "Executor.set_slowdown: factor must be >= 1.0";
  t.slowdown <- factor

let slowdown t = t.slowdown

let crash t =
  if not t.stopped then begin
    if Trace.enabled () then
      Trace.emit ~at:(Engine.now t.engine) Trace.Host
        (lazy
          (Printf.sprintf "executor %d:%d CRASH%s" t.config.node t.config.port
             (if t.busy then " (task in flight lost)" else "")));
    if Obs.Recorder.active () then begin
      let now = Engine.now t.engine in
      (* Close the in-flight task span so every B has a matching E. *)
      if t.busy then Obs.Recorder.end_span ~at:now ~track:t.obs_track "task";
      Obs.Recorder.mark ~at:now ~track:t.obs_track "crash"
    end
  end;
  t.stopped <- true;
  t.busy <- false;
  t.pending_fetch <- None;
  t.generation <- t.generation + 1;
  t.epoch <- t.epoch + 1

let restart t =
  if t.stopped then begin
    if Trace.enabled () then
      Trace.emit ~at:(Engine.now t.engine) Trace.Host
        (lazy (Printf.sprintf "executor %d:%d RESTART" t.config.node t.config.port));
    t.stopped <- false;
    t.generation <- t.generation + 1;
    send_request t
  end

let rec execute t (task : Task.t) ~client =
  t.busy <- true;
  if task.fn_id = Task.Fn.fetch_params && t.pending_fetch = None then begin
    (* Transmission function (§4.4): fetch the real parameters from the
       submitting client before running. *)
    t.pending_fetch <- Some (task, client);
    Fabric.send t.fabric ~src:t.addr ~dst:client
      (Message.Param_fetch { task_id = task.id; node = t.config.node; port = t.config.port })
  end
  else run t task ~client

and run t (task : Task.t) ~client =
  t.on_task_start task ~node:t.config.node;
  Causal.exec_start task.id ~at:(Engine.now t.engine);
  Obs.Recorder.begin_span ~at:(Engine.now t.engine) ~track:t.obs_track "task";
  let service = Fn_model.service_time t.config.fn_model task ~node:t.config.node in
  let service =
    if t.slowdown = 1.0 then service
    else int_of_float (Float.round (float_of_int service *. t.slowdown))
  in
  let epoch = t.epoch in
  let finish () =
    if epoch = t.epoch then begin
      t.busy <- false;
      t.tasks_executed <- t.tasks_executed + 1;
      t.busy_time <- t.busy_time + service;
      Causal.exec_done task.id ~at:(Engine.now t.engine);
      Obs.Recorder.end_span ~at:(Engine.now t.engine) ~track:t.obs_track "task";
      Obs.Recorder.count "exec.tasks" 1;
      Obs.Recorder.record "exec.service_ns" service;
      if not t.stopped then begin
        if task.fn_id = Task.Fn.noop then
          (* No-op tasks are dropped without a reply; just pull the next
             one (the paper's throughput-workload behaviour, §8.2). *)
          send_request t
        else
          (* Completion to the client via the scheduler, with the next
             task request piggybacked (§3.1). *)
          Fabric.send t.fabric ~src:t.addr ~dst:t.config.scheduler
            (Message.Task_completion
               { task_id = task.id; client; info = info t; rtrv_prio = 1 })
      end
    end
  in
  if service = 0 then finish ()
  else ignore (Engine.schedule t.engine ~after:service finish)

(* 100 Gbps parameter transfer: ~0.08 ns/byte on the wire. *)
let transfer_time ~size = size * 8 / 100

let deliver t (msg : Message.t) =
  if not t.stopped then begin
    t.generation <- t.generation + 1;
    match msg with
    | Task_assignment { task; client; port = _ } -> execute t task ~client
    | Noop_assignment _ ->
      ignore (Engine.schedule t.engine ~after:t.config.noop_retry (fun () -> send_request t))
    | Param_data { task_id; size; port = _ } -> (
      match t.pending_fetch with
      | Some (task, client) when Task.equal_id task.id task_id ->
        t.pending_fetch <- None;
        let epoch = t.epoch in
        ignore
          (Engine.schedule t.engine ~after:(transfer_time ~size) (fun () ->
               if epoch = t.epoch then run t task ~client))
      | Some _ | None -> ())
    | Job_submission _ | Job_ack _ | Queue_full _ | Task_request _ | Task_completion _
    | Param_fetch _ ->
      (* Not executor traffic; ignore (a real executor's UDP socket
         would never see these). *)
      ()
  end

let config t = t.config
let busy t = t.busy
let stopped t = t.stopped
let tasks_executed t = t.tasks_executed
let busy_time t = t.busy_time
