open Draconis_sim
open Draconis_net
open Draconis_p4

(* Faults a sharded run can express: pure functions of simulated time
   (and endpoint), precompiled to windows, so every LP evaluates them
   identically without runtime mutation of shared fabric state. *)
type static_faults = {
  loss_windows : (Time.t * Time.t * float) array;
  cut_windows : (Time.t * Time.t * int list) array;
  slow_windows : (Time.t * Time.t * int * float) array;
}

let no_faults = { loss_windows = [||]; cut_windows = [||]; slow_windows = [||] }

type config = {
  seed : int;
  workers : int;
  executors_per_worker : int;
  clients : int;
  racks : int;
  policy_of : Topology.t -> Policy.t;
  queue_capacity : int;
  fabric_config : Fabric.config;
  pipeline_config : Pipeline.config;
  noop_retry : Time.t;
  rsrc_of_node : int -> int;
  client_timeout : Time.t option;
  shards : int option;
  static_faults : static_faults;
}

let default_config =
  {
    seed = 42;
    workers = 10;
    executors_per_worker = 16;
    clients = 2;
    racks = 1;
    policy_of = (fun _ -> Policy.Fcfs);
    queue_capacity = 164_000;
    fabric_config = Fabric.default_config;
    pipeline_config = Pipeline.default_config;
    noop_retry = Time.us 4;
    rsrc_of_node = (fun _ -> 0xFFFFFFFF);
    client_timeout = None;
    shards = None;
    static_faults = no_faults;
  }

type t = {
  config : config;
  engine : Engine.t;  (* the switch LP's engine in sharded mode *)
  fabric : Draconis_proto.Message.t Fabric.t;
  pipeline : (Draconis_proto.Message.t, Switch_packet.t) Pipeline.t;
  mutable program : Switch_program.t;
  topology : Topology.t;
  metrics : Metrics.t;
  workers : Worker.t array;
  clients : Client.t array;
  sync : Sync.t option;  (* [Some] iff the cluster is sharded *)
}

(* The switch program + pipeline assembly, shared by both modes: only
   the fabric instance (and therefore the engine) differs. *)
let build_switch (config : config) ~topology ~metrics ~fabric =
  let engine = Fabric.engine fabric in
  let policy = config.policy_of topology in
  let program =
    Switch_program.create ~engine
      ~instrument:(Metrics.instrument metrics)
      ~policy ~queue_capacity:config.queue_capacity ()
  in
  let pipeline =
    (* Per-task fabric-arrival mark: the only point where fabric
       transit can be split from pipeline match-action time. *)
    let on_ingress (msg : Draconis_proto.Message.t) =
      match msg with
      | Draconis_proto.Message.Job_submission { tasks; _ } ->
        List.iter
          (fun (task : Draconis_proto.Task.t) ->
            Causal.arrive task.id ~at:(Engine.now engine))
          tasks
      | _ -> ()
    in
    Pipeline.attach ~config:config.pipeline_config ~on_ingress fabric
      ~wrap:(fun msg -> Switch_packet.Wire msg)
      (Switch_program.program program)
  in
  (program, pipeline)

let make_worker (config : config) ~fn_model ~fabric node =
  Worker.create ~node ~executors:config.executors_per_worker ~fabric
    ~make_config:(fun ~port ->
      {
        Executor.node;
        port;
        rsrc = config.rsrc_of_node node;
        noop_retry = config.noop_retry;
        fn_model;
        scheduler = Addr.Switch;
        watchdog = Some (Time.us 200);
      })
    ()

let make_client (config : config) ~fabric ~metrics i =
  let host = config.workers + i in
  Client.create
    ~config:
      { (Client.default_config ~host ~uid:i) with timeout = config.client_timeout }
    ~fabric ~metrics ()

let create_legacy (config : config) =
  if config.static_faults <> no_faults then
    invalid_arg
      "Cluster.create: static fault windows require sharded mode (shards = Some n); \
       the classic cluster takes faults from the runtime injector";
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric = Fabric.create ~config:config.fabric_config engine rng in
  let topology = Topology.create ~nodes:config.workers ~racks:config.racks in
  let metrics = Metrics.create ~topology engine in
  let program, pipeline = build_switch config ~topology ~metrics ~fabric in
  let fn_model = Fn_model.with_topology topology in
  let workers =
    Array.init config.workers (fun node -> make_worker config ~fn_model ~fabric node)
  in
  let clients =
    Array.init config.clients (fun i -> make_client config ~fabric ~metrics i)
  in
  let t =
    { config; engine; fabric; pipeline; program; topology; metrics; workers; clients;
      sync = None }
  in
  Array.iter
    (fun worker ->
      Worker.set_on_task_start worker (fun task ~node ->
          Metrics.note_exec_start metrics task ~node))
    workers;
  t

(* -- sharded construction ------------------------------------------------- *)

(* Window evaluators over the precompiled fault arrays: pure functions
   of (time, endpoint), so every LP agrees without shared mutable
   state.  Loss windows compose with each other (and the config's base
   loss, in Fabric) by max; straggler windows by max factor. *)
let loss_evaluator (f : static_faults) now =
  Array.fold_left
    (fun acc (a, b, p) -> if now >= a && now < b then Float.max acc p else acc)
    0.0 f.loss_windows

let cut_evaluator (f : static_faults) now host =
  Array.exists (fun (a, b, hosts) -> now >= a && now < b && List.mem host hosts) f.cut_windows

let slow_evaluator (f : static_faults) node now =
  Array.fold_left
    (fun acc (a, b, n, factor) ->
      if n = node && now >= a && now < b then Float.max acc factor else acc)
    1.0 f.slow_windows

let check_faults (config : config) =
  let f = config.static_faults in
  let hosts = config.workers + config.clients in
  Array.iter
    (fun (a, b, p) ->
      if a > b then invalid_arg "Cluster.create: loss window ends before it starts";
      if p < 0.0 || p > 1.0 || Float.is_nan p then
        invalid_arg "Cluster.create: loss window probability outside [0,1]")
    f.loss_windows;
  Array.iter
    (fun (a, b, hs) ->
      if a > b then invalid_arg "Cluster.create: cut window ends before it starts";
      List.iter
        (fun h ->
          if h < 0 || h >= hosts then
            invalid_arg
              (Printf.sprintf "Cluster.create: cut window host %d outside [0, %d)" h hosts))
        hs)
    f.cut_windows;
  Array.iter
    (fun (a, b, n, factor) ->
      if a > b then invalid_arg "Cluster.create: straggler window ends before it starts";
      if n < 0 || n >= config.workers then
        invalid_arg
          (Printf.sprintf "Cluster.create: straggler window node %d outside [0, %d)" n
             config.workers);
      if factor < 1.0 || Float.is_nan factor then
        invalid_arg "Cluster.create: straggler factor must be >= 1.0")
    f.slow_windows

let create_sharded (config : config) shards =
  check_faults config;
  let hosts = config.workers + config.clients in
  if shards < 1 then invalid_arg "Cluster.create: shards must be >= 1";
  (* LP 0 holds the whole switch pipeline (shared program state, queue,
     PIFO store, metrics); every other LP is a rack-aligned group of
     hosts.  More shards than 1 + hosts would leave empty LPs — a
     misconfiguration, not a preference. *)
  if shards > 1 + hosts then
    invalid_arg
      (Printf.sprintf
         "Cluster.create: %d shards exceed the %d LP groups this topology admits \
          (1 switch LP + %d hosts: %d workers + %d clients); lower --shards"
         shards (1 + hosts) hosts config.workers config.clients);
  let topology = Topology.create ~nodes:config.workers ~racks:config.racks in
  let lp_of_host = Array.make hosts 0 in
  if shards > 1 then begin
    let host_groups = shards - 1 in
    let worker_groups = min host_groups config.workers in
    let part = Topology.partition topology ~groups:worker_groups in
    for w = 0 to config.workers - 1 do
      lp_of_host.(w) <- 1 + part.(w)
    done;
    for i = 0 to config.clients - 1 do
      lp_of_host.(config.workers + i) <- 1 + (i mod host_groups)
    done
  end;
  let lps = Array.init shards (fun id -> Lp.create ~id ~seed:config.seed ()) in
  let sync = Sync.create ~lookahead:(Fabric.lookahead config.fabric_config) lps in
  let instances =
    Fabric.router ~config:config.fabric_config
      ~loss_at:(loss_evaluator config.static_faults)
      ~cut_at:(cut_evaluator config.static_faults)
      ~lps ~switch_lp:0
      ~lp_of_host:(fun h -> lp_of_host.(h))
      ~hosts ~seed:config.seed ()
  in
  let switch_fabric = instances.(0) in
  let metrics = Metrics.create ~topology (Fabric.engine switch_fabric) in
  let program, pipeline = build_switch config ~topology ~metrics ~fabric:switch_fabric in
  (* Every non-switch entity gets a metrics facade on its own LP clock:
     mutations travel to the switch LP as stamped closures
     (Fabric.router_defer), so sampler order is partition-independent. *)
  let remote_metrics host =
    let fab = instances.(lp_of_host.(host)) in
    Metrics.remote metrics ~engine:(Fabric.engine fab)
      ~post:(fun ~at fn -> Fabric.router_defer fab ~src:(Addr.Host host) ~at fn)
  in
  let fn_model = Fn_model.with_topology topology in
  let workers =
    Array.init config.workers (fun node ->
        make_worker config ~fn_model ~fabric:instances.(lp_of_host.(node)) node)
  in
  let clients =
    Array.init config.clients (fun i ->
        make_client config ~fabric:instances.(lp_of_host.(config.workers + i))
          ~metrics:(remote_metrics (config.workers + i))
          i)
  in
  let t =
    { config; engine = Fabric.engine switch_fabric; fabric = switch_fabric; pipeline;
      program; topology; metrics; workers; clients; sync = Some sync }
  in
  Array.iteri
    (fun node worker ->
      let facade = remote_metrics node in
      Worker.set_on_task_start worker (fun task ~node ->
          Metrics.note_exec_start facade task ~node))
    workers;
  (* Straggler windows become boundary events pre-scheduled on the
     worker's own LP (its executors live there): at every window edge
     the node's current factor is recomputed from the full window set,
     so overlapping windows compose by max.  Pre-run insertion keeps the
     same-time order of these events ahead of any task event, for every
     partitioning. *)
  Array.iter
    (fun (a, b, node, _) ->
      let e = Fabric.engine instances.(lp_of_host.(node)) in
      List.iter
        (fun edge ->
          ignore
            (Engine.schedule_at e ~at:edge (fun () ->
                 Worker.set_slowdown workers.(node)
                   (slow_evaluator config.static_faults node edge))))
        [ a; b ])
    config.static_faults.slow_windows;
  t

let create (config : config) =
  if config.workers < 1 then invalid_arg "Cluster.create: need workers";
  if config.clients < 1 then invalid_arg "Cluster.create: need clients";
  match config.shards with
  | None -> create_legacy config
  | Some n -> create_sharded config n

let start t =
  (* Stagger initial pulls so 160 executors do not hit the switch in the
     same nanosecond. *)
  let stagger = max 1 (Time.us 1 / max 1 t.config.executors_per_worker) in
  Array.iter (fun worker -> Worker.start worker ~stagger) t.workers

(* [?executor] fans each barrier window's per-LP thunks out over a
   worker team (sharded mode only); the default runs them inline — the
   bit-deterministic reference, which every executor must reproduce. *)
let run ?executor t ~until =
  match t.sync with
  | None -> Engine.run ~until t.engine
  | Some sync -> Sync.run ~until ?executor sync

let outstanding t =
  Array.fold_left (fun acc client -> acc + Client.outstanding client) 0 t.clients

let run_until_drained ?executor t ~deadline =
  let step = Time.ms 1 in
  let rec go () =
    if outstanding t = 0 then true
    else if Engine.now t.engine >= deadline then false
    else begin
      run ?executor t ~until:(min deadline (Engine.now t.engine + step));
      go ()
    end
  in
  go ()

let engine t = t.engine
let fabric t = t.fabric
let pipeline t = t.pipeline
let program t = t.program
let topology t = t.topology
let metrics t = t.metrics
let sync t = t.sync

(* Events executed so far: summed over every LP engine when sharded. *)
let events t =
  match t.sync with None -> Engine.executed t.engine | Some sync -> Sync.executed sync

let fail_over_switch t =
  let lost = Switch_program.total_occupancy t.program in
  let policy = t.config.policy_of t.topology in
  let fresh =
    Switch_program.create ~engine:t.engine
      ~instrument:(Metrics.instrument t.metrics)
      ~policy ~queue_capacity:t.config.queue_capacity ()
  in
  t.program <- fresh;
  Pipeline.set_program t.pipeline (Switch_program.program fresh);
  (* The dead switch's in-flight and recirculating packets (repairs,
     swaps, submissions mid-pipeline) never reach the standby. *)
  Pipeline.flush_in_flight t.pipeline;
  if Trace.enabled () then
    Trace.emit ~at:(Engine.now t.engine) Trace.Pipeline
      (lazy (Printf.sprintf "switch FAIL-OVER: %d queued task(s) lost" lost));
  lost

let stagger t = max 1 (Time.us 1 / max 1 t.config.executors_per_worker)

let crash_worker t i =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Cluster.crash_worker: bad index";
  Worker.crash t.workers.(i)

let restart_worker t i =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Cluster.restart_worker: bad index";
  Worker.restart t.workers.(i) ~stagger:(stagger t)

let set_node_slowdown t i factor =
  if i < 0 || i >= Array.length t.workers then
    invalid_arg "Cluster.set_node_slowdown: bad index";
  Worker.set_slowdown t.workers.(i) factor

let worker t i =
  if i < 0 || i >= Array.length t.workers then invalid_arg "Cluster.worker: bad index";
  t.workers.(i)

let client t i =
  if i < 0 || i >= Array.length t.clients then invalid_arg "Cluster.client: bad index";
  t.clients.(i)

let clients t = t.clients
let workers t = t.workers
let total_executors t = Array.length t.workers * t.config.executors_per_worker

let busy_executors t =
  let busy = ref 0 in
  Array.iter
    (fun worker ->
      Worker.iter_executors worker (fun exec -> if Executor.busy exec then incr busy))
    t.workers;
  !busy
